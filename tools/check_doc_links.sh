#!/usr/bin/env bash
# Fail on dead relative links in the documentation.
#
# Scans README.md and docs/*.md for markdown links `[text](target)`,
# skips absolute URLs (scheme://...) and pure in-page anchors (#...),
# strips any trailing anchor from relative targets, resolves the rest
# against the linking file's directory, and exits non-zero listing
# every target that does not exist in the repository.
#
# Usage: tools/check_doc_links.sh   (from the repository root)

set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

fail=0
checked=0

for f in README.md docs/*.md; do
  [ -f "$f" ] || continue
  dir="$(dirname "$f")"
  # one link target per line: everything between `](` and the closing `)`
  while IFS= read -r target; do
    [ -n "$target" ] || continue
    case "$target" in
    *://* | mailto:* | '#'*) continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    case "$path" in
    /*) resolved=".$path" ;;
    *) resolved="$dir/$path" ;;
    esac
    checked=$((checked + 1))
    if [ ! -e "$resolved" ]; then
      echo "DEAD LINK: $f -> $target (resolved: $resolved)"
      fail=1
    fi
  done < <(grep -o ']([^)]*)' "$f" | sed 's/^](//; s/)$//')
done

if [ "$fail" -ne 0 ]; then
  echo "docs link check: FAILED"
  exit 1
fi
echo "docs link check: ok ($checked relative links resolved)"
