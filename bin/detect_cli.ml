(* detect-cli: command-line front end for the detectable-objects
   reproduction.

   - [list]        enumerate the paper experiments
   - [exp ID …]    run one or more experiments (all by default)
   - [torture]     randomized crash-torture a chosen object
   - [trace]       run one seeded execution and print its history
   - [modelcheck]  bounded exhaustive exploration of a tiny workload *)

open Cmdliner
open Nvm
open Runtime
open History
open Sched

(* ------------------------------------------------------------------ *)
(* object selection *)

type obj_kind =
  | Drw
  | Dcas
  | Dmax
  | Dcounter
  | Dfaa
  | Dswap
  | Dtas
  | Dbounded
  | Dqueue
  | Dprotected
  | Urw
  | Ucas
  | Broken_rw_refail
  | Broken_rw_reexec
  | Broken_drw_no_toggle
  | Broken_dcas_no_vec

let obj_choices =
  [
    ("drw", Drw);
    ("dcas", Dcas);
    ("dmax", Dmax);
    ("dcounter", Dcounter);
    ("dfaa", Dfaa);
    ("dswap", Dswap);
    ("dtas", Dtas);
    ("dbounded", Dbounded);
    ("dqueue", Dqueue);
    ("dprotected", Dprotected);
    ("urw", Urw);
    ("ucas", Ucas);
    ("broken-rw-refail", Broken_rw_refail);
    ("broken-rw-reexec", Broken_rw_reexec);
    ("broken-drw-no-toggle", Broken_drw_no_toggle);
    ("broken-dcas-no-vec", Broken_dcas_no_vec);
  ]

let i n = Value.Int n

(* [model]/[persist] select the memory model the instance runs on:
   non-atomic fault models only bite when crashes can lose volatile
   state, so faulted torture builds Shared_cache machines whose objects
   persist every shared access (the Section 6 transformation). *)
let mk_of_kind ?(model = Machine.Private_cache) ?(persist = false) kind ~n () =
  let m = Machine.create ~model () in
  let inst =
    match kind with
    | Drw ->
        Detectable.Drw.instance (Detectable.Drw.create ~persist m ~n ~init:(i 0))
    | Dcas ->
        Detectable.Dcas.instance
          (Detectable.Dcas.create ~persist m ~n ~init:(i 0))
    | Dmax ->
        Detectable.Dmax.instance (Detectable.Dmax.create ~persist m ~n ~init:0)
    | Dcounter ->
        Detectable.Transform.instance
          (Detectable.Transform.counter ~persist m ~n ~init:0)
    | Dfaa ->
        Detectable.Transform.instance
          (Detectable.Transform.faa ~persist m ~n ~init:0)
    | Dswap ->
        Detectable.Transform.instance
          (Detectable.Transform.swap ~persist m ~n ~init:(i 0))
    | Dtas -> Detectable.Transform.instance (Detectable.Transform.tas ~persist m ~n)
    | Dbounded ->
        Detectable.Transform.instance
          (Detectable.Transform.bounded_counter ~persist m ~n ~lo:0 ~hi:3 ~init:0)
    | Dprotected ->
        Detectable.Dprotected.instance
          (Detectable.Dprotected.create ~persist m ~n ~init:0)
    | Dqueue ->
        Detectable.Dqueue.instance
          (Detectable.Dqueue.create ~persist m ~n ~capacity:256)
    | Urw -> Baselines.Urw.instance (Baselines.Urw.create ~persist m ~n ~init:(i 0))
    | Ucas ->
        Baselines.Ucas.instance (Baselines.Ucas.create ~persist m ~n ~init:(i 0))
    | Broken_rw_refail -> Baselines.Broken.rw_no_aux_refail ~persist m ~n ~init:(i 0)
    | Broken_rw_reexec -> Baselines.Broken.rw_no_aux_reexec ~persist m ~n ~init:(i 0)
    | Broken_drw_no_toggle -> Baselines.Broken.drw_no_toggle ~persist m ~n ~init:(i 0)
    | Broken_dcas_no_vec -> Baselines.Broken.dcas_no_vec ~persist m ~n ~init:(i 0)
  in
  (m, inst)

let workloads_of_kind kind ~seed ~procs ~ops =
  let prng = Dtc_util.Prng.create seed in
  match kind with
  | Drw | Urw | Broken_rw_refail | Broken_rw_reexec | Broken_drw_no_toggle ->
      Workload.register prng ~procs ~ops_per_proc:ops ~values:3
  | Dcas | Ucas | Broken_dcas_no_vec ->
      Workload.cas prng ~procs ~ops_per_proc:ops ~values:3
  | Dmax -> Workload.max_register prng ~procs ~ops_per_proc:ops ~values:8
  | Dcounter | Dbounded | Dprotected -> Workload.counter prng ~procs ~ops_per_proc:ops
  | Dfaa -> Workload.faa prng ~procs ~ops_per_proc:ops ~max_delta:4
  | Dswap -> Workload.swap prng ~procs ~ops_per_proc:ops ~values:3
  | Dtas -> Workload.tas prng ~procs ~ops_per_proc:ops
  | Dqueue -> Workload.queue prng ~procs ~ops_per_proc:ops ~values:5

(* ------------------------------------------------------------------ *)
(* common options *)

let obj_arg =
  let doc =
    "Object under test: " ^ String.concat ", " (List.map fst obj_choices) ^ "."
  in
  Arg.(
    required
    & opt (some (enum obj_choices)) None
    & info [ "o"; "object" ] ~docv:"OBJECT" ~doc)

let procs_arg =
  Arg.(value & opt int 3 & info [ "p"; "procs" ] ~docv:"N" ~doc:"Process count.")

let ops_arg =
  Arg.(
    value & opt int 3
    & info [ "k"; "ops" ] ~docv:"K" ~doc:"Operations per process.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let policy_arg =
  let choices = [ ("retry", Session.Retry); ("giveup", Session.Give_up) ] in
  Arg.(
    value
    & opt (enum choices) Session.Retry
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:"What the caller does after a fail verdict: retry or giveup.")

let gc_conv =
  let parse s =
    match Dtc_util.Gc_tune.parse s with
    | t -> Ok t
    | exception Invalid_argument m -> Error (`Msg m)
  in
  let print ppf t = Format.pp_print_string ppf (Dtc_util.Gc_tune.to_string t) in
  Arg.conv ~docv:"GC" (parse, print)

let gc_arg =
  Arg.(
    value
    & opt gc_conv Dtc_util.Gc_tune.none
    & info [ "gc" ] ~docv:"SPEC"
        ~doc:
          "Per-domain GC tuning for the hot loops, e.g. \
           $(b,minor-heap=8M,space-overhead=200) (sizes in words, k/M \
           suffixes).  Applied inside each worker domain (and restored \
           after sequential runs); defaults leave the runtime untouched.")

let lin_engine_arg =
  let choices =
    [
      ("incremental", (`Incremental : Lin_check.engine)); ("batch", `Batch);
    ]
  in
  Arg.(
    value
    & opt (enum choices) `Incremental
    & info [ "lin-engine" ] ~docv:"ENGINE"
        ~doc:
          "Linearizability-checker engine: $(b,incremental) maintains the \
           Wing-Gong frontier event by event, so a verdict costs O(new \
           events) and shared history prefixes are checked once; $(b,batch) \
           re-checks every history from scratch (the reference engine).  \
           Both return identical verdicts.")

(* ------------------------------------------------------------------ *)
(* list *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Experiments.Registry.entry) ->
        Printf.printf "%-4s %-28s %s\n" e.id e.paper_artefact e.descr)
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the paper experiments.")
    Term.(const run $ const ())

(* exp *)

let exp_cmd =
  let ids =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"ID" ~doc:"Experiment ids (default: all).")
  in
  let run ids =
    match ids with
    | [] ->
        Experiments.Registry.run_all ();
        `Ok ()
    | ids ->
        let rec go = function
          | [] -> `Ok ()
          | id :: rest -> (
              match Experiments.Registry.find id with
              | Some e ->
                  Experiments.Registry.run_one e;
                  go rest
              | None -> `Error (false, "unknown experiment id: " ^ id))
        in
        go ids
  in
  Cmd.v
    (Cmd.info "exp" ~doc:"Run paper experiments (tables to stdout).")
    Term.(ret (const run $ ids))

(* torture / campaign: shared options and helpers *)

let fault_conv =
  let parse s =
    match Fault_model.of_string s with
    | Ok f -> Ok f
    | Error m -> Error (`Msg m)
  in
  let print ppf f = Format.pp_print_string ppf (Fault_model.to_string f) in
  Arg.conv ~docv:"FAULT" (parse, print)

let kind_name kind =
  List.assoc kind (List.map (fun (k, v) -> (v, k)) obj_choices)

let torture_spec_of ~kind ~procs ~ops ~policy ~crash_prob ~max_crashes
    ~lin_engine ~fault ~watchdog =
  let model, persist =
    match (fault : Fault_model.t) with
    | Fault_model.Atomic -> (Machine.Private_cache, false)
    | _ -> (Machine.Shared_cache, true)
  in
  Torture.default_spec_of ~label:(kind_name kind)
    ~mk:(mk_of_kind ~model ~persist kind ~n:procs)
    ~workloads_of_seed:(fun s -> workloads_of_kind kind ~seed:s ~procs ~ops)
    ~policy ~crash_prob ~max_crashes ~max_steps:100_000 ~lin_engine ~fault
    ~watchdog ()

(* SIGINT/SIGTERM flip an atomic stop flag the engines poll between
   trials; the run then flushes its final checkpoint lines (including an
   "interrupted" event) and exits with the distinct status below, so
   shells and supervisors can tell "partial, resumable" from failure. *)
let exit_interrupted = 20

let interrupted_exit_info =
  Cmd.Exit.info exit_interrupted
    ~doc:
      "on SIGINT/SIGTERM: the campaign stopped between trials, flushed its \
       checkpoint journal (when $(b,--checkpoint) is set), and reported how \
       many trials are journaled; finish it with $(b,--resume)."

let install_stop_flag () =
  let stop = Atomic.make false in
  let handle = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
  (try Sys.set_signal Sys.sigint handle with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigterm handle
   with Invalid_argument _ | Sys_error _ -> ());
  fun () -> Atomic.get stop

let interrupted_exit ~completed ~total =
  Printf.eprintf
    "interrupted: %d/%d trials journaled; rerun with --resume to finish\n%!"
    completed total;
  exit exit_interrupted

(* exact (round-trippable) command-line spellings for the worker argv:
   Fault_model.to_string prints drop's keep probability with %.2f, which
   would silently change the worker's fault stream, so floats travel as
   %h hex literals (float_of_string restores the exact bits) *)
let fault_exact_arg = function
  | Fault_model.Atomic -> "atomic"
  | Fault_model.Reorder -> "reorder"
  | Fault_model.Drop { keep_prob } -> Printf.sprintf "drop:%h" keep_prob
  | Fault_model.Torn { granularity } -> Printf.sprintf "torn:%d" granularity

let trials_arg =
  Arg.(value & opt int 200 & info [ "trials" ] ~docv:"T" ~doc:"Random runs.")

let crash_prob_arg =
  Arg.(
    value & opt float 0.05
    & info [ "crash-prob" ] ~docv:"P" ~doc:"Per-step crash probability.")

let max_crashes_arg =
  Arg.(
    value & opt int 3
    & info [ "max-crashes" ] ~docv:"C" ~doc:"Crash budget per trial.")

let fault_arg =
  Arg.(
    value
    & opt fault_conv Fault_model.default
    & info [ "fault" ] ~docv:"FAULT"
        ~doc:
          "Crash fault model: $(b,atomic) (every dirty cache line \
           persists — the historical semantics), $(b,drop) or \
           $(b,drop:P) (each dirty line independently persists with \
           probability P, default 0.5), $(b,torn) or $(b,torn:G) \
           (dirty tuple values persist component-wise in chunks of G, \
           default 1 — a torn multi-word write), $(b,reorder) \
           (an adversarial prefix of a random persist order).  \
           Non-atomic models run the object on a shared-cache machine \
           with a persist instruction after every shared access.")

let watchdog_arg =
  Arg.(
    value & opt int 10_000
    & info [ "watchdog" ] ~docv:"STEPS"
        ~doc:
          "Per-operation step budget: a single operation or recovery \
           exceeding it turns the trial into a budget_exhausted verdict \
           instead of spinning to the trial step limit.")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Journal one JSONL line per completed trial to $(docv) \
           (schema detectable-torture-checkpoint/v2), so an interrupted \
           campaign can be resumed with $(b,--resume).")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Load completed trials from the $(b,--checkpoint) journal and \
           run only the missing ones; the merged report is \
           byte-identical to an uninterrupted campaign's.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Print the merged run report as a detectable-torture/v4 JSON \
           document instead of the text summary.")

let no_timing_arg =
  Arg.(
    value & flag
    & info [ "no-timing" ]
        ~doc:
          "Omit the timing block (throughput, allocation, supervision) \
           from the report, leaving exactly the deterministic fields — \
           byte-identical across domain counts, worker schedules, chaos \
           and resume splits.")

let report_arg =
  Arg.(
    value & opt (some string) None
    & info [ "report" ] ~docv:"FILE"
        ~doc:
          "Also write the JSON run report to $(docv) (independent of \
           $(b,--json); always includes the timing block).")

let no_shrink_arg =
  Arg.(
    value & flag
    & info [ "no-shrink" ]
        ~doc:"Skip minimising the first failing trial's schedule.")

let report_outputs ~json ~no_timing ~supervision ~report_file report =
  let timing = not no_timing in
  if json then print_string (Torture.to_json ~timing ~supervision report)
  else Format.printf "%a" (Torture.pp_report ~timing ~supervision ()) report;
  (match report_file with
  | Some path ->
      let oc = open_out path in
      output_string oc (Torture.to_json ~supervision report);
      close_out oc;
      if not json then Printf.printf "report written to %s\n" path
  | None -> ());
  if report.Torture.not_linearized > 0 then `Error (false, "violations found")
  else if report.Torture.engine_faults > 0 then
    `Error (false, "engine faults recorded (object code raised)")
  else `Ok ()

(* torture *)

let torture_cmd =
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"W"
          ~doc:
            "Shard the trials over this many OCaml domains (1 = sequential). \
             The merged report is bit-identical for any value: trial i always \
             runs on the child seed stream derived from (seed, i).")
  in
  let run kind procs ops trials crash_prob max_crashes policy lin_engine seed
      domains fault watchdog checkpoint resume json no_timing report_file
      no_shrink gc =
    if resume && checkpoint = None then
      `Error (false, "--resume requires --checkpoint FILE")
    else begin
      let spec =
        torture_spec_of ~kind ~procs ~ops ~policy ~crash_prob ~max_crashes
          ~lin_engine ~fault ~watchdog
      in
      let should_stop = install_stop_flag () in
      match
        Torture.run ~domains ~root_seed:seed ~trials ~shrink:(not no_shrink)
          ?checkpoint ~resume ~gc ~should_stop spec
      with
      | exception Torture.Interrupted { completed; total } ->
          interrupted_exit ~completed ~total
      | report ->
          report_outputs ~json ~no_timing ~supervision:Torture.no_supervision
            ~report_file report
    end
  in
  Cmd.v
    (Cmd.info "torture"
       ~exits:(interrupted_exit_info :: Cmd.Exit.defaults)
       ~doc:
         "Randomized crash-torture: many seeded runs, random schedules and \
          crash points, every history checked for durable linearizability + \
          detectability.  A configurable fault model ($(b,--fault)) decides \
          what a crash does to dirty cache lines.  Trials shard \
          deterministically over OCaml domains ($(b,--domains)), journal to \
          a resumable checkpoint ($(b,--checkpoint), $(b,--resume)) and \
          merge into a structured run report ($(b,--json), $(b,--report)) \
          with verdict counts, a crash-point histogram, step and space \
          distributions, and the first failing trial's minimised schedule.")
    Term.(
      ret
        (const run $ obj_arg $ procs_arg $ ops_arg $ trials_arg
       $ crash_prob_arg $ max_crashes_arg $ policy_arg $ lin_engine_arg
       $ seed_arg $ domains $ fault_arg $ watchdog_arg $ checkpoint_arg
       $ resume_arg $ json_arg $ no_timing_arg $ report_arg $ no_shrink_arg
       $ gc_arg))

(* campaign: multi-process supervised torture *)

let chaos_conv =
  let parse s =
    match Campaign.chaos_of_string s with
    | Ok c -> Ok c
    | Error m -> Error (`Msg m)
  in
  let print ppf c = Format.pp_print_string ppf (Campaign.chaos_to_string c) in
  Arg.conv ~docv:"CHAOS" (parse, print)

let campaign_cmd =
  let workers =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"W"
          ~doc:
            "Initial worker-process parallelism.  The merged report's \
             deterministic fields are bit-identical for any value — and to \
             the equivalent $(b,torture --domains) run.")
  in
  let heartbeat_every =
    Arg.(
      value & opt int 16
      & info [ "heartbeat-every" ] ~docv:"T"
          ~doc:"Worker heartbeat period, in trials.")
  in
  let heartbeat_timeout =
    Arg.(
      value & opt float 30.0
      & info [ "heartbeat-timeout" ] ~docv:"SECS"
          ~doc:
            "Silence (no trials, no heartbeats) after which a worker is \
             declared hung, SIGKILLed, and its remaining range reassigned.")
  in
  let retry_budget =
    Arg.(
      value & opt int 3
      & info [ "retry-budget" ] ~docv:"N"
          ~doc:
            "Respawns allowed per failed range before the supervisor \
             degrades (halves parallelism, ultimately falling back to \
             in-process execution so the campaign always terminates).")
  in
  let backoff_base =
    Arg.(
      value & opt float 0.05
      & info [ "backoff-base" ] ~docv:"SECS"
          ~doc:"Backoff before retry k is base * 2^(k-1), capped below.")
  in
  let backoff_cap =
    Arg.(
      value & opt float 2.0
      & info [ "backoff-cap" ] ~docv:"SECS" ~doc:"Backoff ceiling.")
  in
  let chaos =
    Arg.(
      value
      & opt chaos_conv Campaign.no_chaos
      & info [ "chaos" ] ~docv:"SPEC"
          ~doc:
            "Deterministic fault injection for the supervisor itself: \
             $(b,kill=P,hang=Q,seed=S) makes each spawned worker self-kill \
             (probability P) or hang (probability Q) after a seeded number \
             of trials.  The final report must stay byte-identical to an \
             undisturbed run — only the timing block's supervision \
             counters change.")
  in
  let run kind procs ops trials crash_prob max_crashes policy lin_engine seed
      workers fault watchdog chaos heartbeat_every heartbeat_timeout
      retry_budget backoff_base backoff_cap checkpoint resume json no_timing
      report_file no_shrink =
    if resume && checkpoint = None then
      `Error (false, "--resume requires --checkpoint FILE")
    else begin
      let spec =
        torture_spec_of ~kind ~procs ~ops ~policy ~crash_prob ~max_crashes
          ~lin_engine ~fault ~watchdog
      in
      let config =
        {
          Campaign.default_config with
          workers;
          heartbeat_every;
          heartbeat_timeout;
          retry_budget;
          backoff_base;
          backoff_cap;
          chaos;
        }
      in
      let worker_argv ~lo ~hi ~fault:fault_plan =
        let base =
          [
            Sys.executable_name;
            "torture-worker";
            "-o";
            kind_name kind;
            "-p";
            string_of_int procs;
            "-k";
            string_of_int ops;
            "--policy";
            (match policy with
            | Session.Retry -> "retry"
            | Session.Give_up -> "giveup");
            "--lin-engine";
            (match (lin_engine : Lin_check.engine) with
            | `Incremental -> "incremental"
            | `Batch -> "batch");
            "--crash-prob";
            Printf.sprintf "%h" crash_prob;
            "--max-crashes";
            string_of_int max_crashes;
            "--fault";
            fault_exact_arg fault;
            "--watchdog";
            string_of_int watchdog;
            "-s";
            string_of_int seed;
            "--lo";
            string_of_int lo;
            "--hi";
            string_of_int hi;
            "--heartbeat-every";
            string_of_int heartbeat_every;
          ]
        in
        let chaos_args =
          match fault_plan with
          | Campaign.No_fault -> []
          | Campaign.Kill_after k -> [ "--chaos-kill-after"; string_of_int k ]
          | Campaign.Hang_after k -> [ "--chaos-hang-after"; string_of_int k ]
        in
        Array.of_list (base @ chaos_args)
      in
      let should_stop = install_stop_flag () in
      match
        Campaign.run ?checkpoint ~resume ~shrink:(not no_shrink) ~should_stop
          ~config ~worker_argv ~root_seed:seed ~trials spec
      with
      | exception Torture.Interrupted { completed; total } ->
          interrupted_exit ~completed ~total
      | report, counters ->
          report_outputs ~json ~no_timing
            ~supervision:(Campaign.supervision counters chaos)
            ~report_file report
    end
  in
  Cmd.v
    (Cmd.info "campaign"
       ~exits:(interrupted_exit_info :: Cmd.Exit.defaults)
       ~doc:
         "Multi-process supervised torture: fork $(b,--workers) \
          $(b,torture-worker) processes, each streaming per-trial JSONL \
          records and heartbeats over its pipe; the supervisor detects \
          worker death (waitpid) and hangs ($(b,--heartbeat-timeout)), \
          reassigns remaining ranges with capped exponential backoff and a \
          $(b,--retry-budget), halves parallelism when a range keeps \
          failing, and ultimately falls back to in-process execution — so \
          the campaign always terminates with a verdict byte-identical to \
          the equivalent $(b,torture) run.  $(b,--chaos) injects \
          deterministic worker kills/hangs to prove exactly that.")
    Term.(
      ret
        (const run $ obj_arg $ procs_arg $ ops_arg $ trials_arg
       $ crash_prob_arg $ max_crashes_arg $ policy_arg $ lin_engine_arg
       $ seed_arg $ workers $ fault_arg $ watchdog_arg $ chaos
       $ heartbeat_every $ heartbeat_timeout $ retry_budget $ backoff_base
       $ backoff_cap $ checkpoint_arg $ resume_arg $ json_arg $ no_timing_arg
       $ report_arg $ no_shrink_arg))

(* torture-worker: the internal campaign worker process *)

let torture_worker_cmd =
  let lo =
    Arg.(
      required
      & opt (some int) None
      & info [ "lo" ] ~docv:"I" ~doc:"First trial index (inclusive).")
  in
  let hi =
    Arg.(
      required
      & opt (some int) None
      & info [ "hi" ] ~docv:"J" ~doc:"One past the last trial index.")
  in
  let heartbeat_every =
    Arg.(
      value & opt int 16
      & info [ "heartbeat-every" ] ~docv:"T"
          ~doc:"Emit a heartbeat event every T completed trials.")
  in
  let chaos_kill_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos-kill-after" ] ~docv:"K"
          ~doc:"Chaos injection: self-kill (exit 70) after K trials.")
  in
  let chaos_hang_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos-hang-after" ] ~docv:"K"
          ~doc:"Chaos injection: stop emitting after K trials.")
  in
  let run kind procs ops crash_prob max_crashes policy lin_engine seed fault
      watchdog lo hi heartbeat_every kill_after hang_after =
    let spec =
      torture_spec_of ~kind ~procs ~ops ~policy ~crash_prob ~max_crashes
        ~lin_engine ~fault ~watchdog
    in
    let fault_plan =
      match (kill_after, hang_after) with
      | Some k, _ -> Campaign.Kill_after k
      | None, Some k -> Campaign.Hang_after k
      | None, None -> Campaign.No_fault
    in
    Campaign.worker_main ~fault:fault_plan ~heartbeat_every ~root_seed:seed ~lo
      ~hi spec;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "torture-worker"
       ~doc:
         "(internal) Campaign worker process: run trials [$(b,--lo), \
          $(b,--hi)) of the campaign seeded by $(b,--seed), streaming one \
          JSONL trial record per trial plus periodic heartbeat events to \
          stdout.  Spawned by $(b,campaign); stable enough to drive by \
          hand, but its flags mirror whatever $(b,campaign) needs.")
    Term.(
      ret
        (const run $ obj_arg $ procs_arg $ ops_arg $ crash_prob_arg
       $ max_crashes_arg $ policy_arg $ lin_engine_arg $ seed_arg $ fault_arg
       $ watchdog_arg $ lo $ hi $ heartbeat_every $ chaos_kill_after
       $ chaos_hang_after))

(* trace *)

let trace_cmd =
  let crash_at =
    Arg.(
      value & opt (some int) None
      & info [ "crash-at" ] ~docv:"STEP"
          ~doc:"Inject a system-wide crash just before this global step.")
  in
  let run kind procs ops seed crash_at policy =
    let machine, inst = mk_of_kind kind ~n:procs () in
    let prng = Dtc_util.Prng.create seed in
    let cfg =
      {
        Driver.schedule = Schedule.random prng;
        crash_plan =
          (match crash_at with
          | None -> Crash_plan.none
          | Some k -> Crash_plan.at_steps [ k ]);
        policy;
        max_steps = 100_000;
      }
    in
    let workloads = workloads_of_kind kind ~seed ~procs ~ops in
    let res = Driver.run machine inst ~workloads cfg in
    Printf.printf "object:  %s\nsteps:   %d\ncrashes: %d\n"
      inst.Obj_inst.descr res.Driver.steps res.Driver.crashes;
    Format.printf "summary: %a@.@." Hist.pp_stats (Hist.stats res.Driver.history);
    Format.printf "%a@." Event.pp_history res.Driver.history;
    (match Driver.check inst res with
    | Lin_check.Ok_linearizable w ->
        Format.printf "verdict: linearizable; witness order:@.";
        List.iter (fun op -> Format.printf "  %a@." Spec.pp_op op) w
    | Lin_check.Violation msg -> Format.printf "verdict: VIOLATION — %s@." msg);
    `Ok ()
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run one seeded execution and print its event history and verdict.")
    Term.(
      ret
        (const run $ obj_arg $ procs_arg $ ops_arg $ seed_arg $ crash_at
       $ policy_arg))

(* modelcheck *)

let modelcheck_cmd =
  let switches =
    Arg.(
      value & opt int 2
      & info [ "switches" ] ~docv:"D" ~doc:"Context-switch budget.")
  in
  let crashes =
    Arg.(value & opt int 1 & info [ "crashes" ] ~docv:"C" ~doc:"Crash budget.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"W"
          ~doc:
            "Explore the top-level decision frontier on this many OCaml \
             domains (1 = sequential).")
  in
  let no_prune =
    Arg.(
      value & flag
      & info [ "no-prune" ]
          ~doc:
            "Disable the visited-set subtree memoisation (replays every DFS \
             node from scratch, like the original engine).")
  in
  let exact_configs =
    Arg.(
      value & flag
      & info [ "exact-configs" ]
          ~doc:
            "Keep full snapshots in the configuration set to audit \
             fingerprint collisions (more memory).")
  in
  let engine =
    Arg.(
      value
      & opt
          (enum
             [
               ("undo", (`Undo : Modelcheck.Explore.engine));
               ("replay", `Replay);
             ])
          `Undo
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Execution substrate: $(b,undo) backtracks one live \
             machine/session over the store's write journal; $(b,replay) \
             rebuilds from the root at every DFS node (the historical \
             engine).  Both visit the same nodes and report identical \
             counters.")
  in
  let reduction =
    Arg.(
      value
      & opt
          (enum
             [
               ("none", (`None : Modelcheck.Explore.reduction));
               ("dpor", `Dpor);
               ("dpor+sym", `Dpor_sym);
               ("dpor+sym-memo", `Dpor_sym_memo);
             ])
          `None
      & info [ "reduction" ] ~docv:"RED"
          ~doc:
            "Search-space reduction: $(b,none) explores the full \
             delay-bounded family; $(b,dpor) prunes commuting \
             interleavings of independent steps with sleep sets and \
             source sets; $(b,dpor+sym) additionally prunes process \
             symmetry on objects that declare an id-symmetric layout; \
             $(b,dpor+sym-memo) additionally memoises subtrees on \
             symmetry-canonical keys and counts configurations with \
             exact orbit weights (id-symmetric objects under uniform \
             workloads; degrades to dpor+sym otherwise).  Reduced \
             counters are certified lower bounds over what was actually \
             visited; see docs/LOWERBOUND.md.")
  in
  let node_budget =
    Arg.(
      value & opt int 0
      & info [ "node-budget" ] ~docv:"B"
          ~doc:
            "Stop after physically visiting B DFS nodes (0 = unlimited). \
             A capped run reports partial counters — valid lower bounds \
             over what was visited.")
  in
  let run kind procs ops switches crashes domains no_prune exact_configs engine
      lin_engine reduction node_budget policy seed gc =
    let workloads = workloads_of_kind kind ~seed ~procs ~ops in
    let cfg =
      {
        Modelcheck.Explore.default_config with
        switch_budget = switches;
        crash_budget = crashes;
        policy;
        domains;
        prune = not no_prune;
        exact_configs;
        engine;
        lin_engine;
        reduction;
        node_budget;
        gc;
      }
    in
    let out =
      Modelcheck.Explore.explore ~mk:(mk_of_kind kind ~n:procs) ~workloads cfg
    in
    let m = out.Modelcheck.Explore.metrics in
    Printf.printf
      "executions: %d\nnodes: %d\ndistinct shared configs: %d\nviolations: %d\n"
      out.Modelcheck.Explore.executions out.Modelcheck.Explore.nodes
      out.Modelcheck.Explore.distinct_shared_configs
      out.Modelcheck.Explore.total_violations;
    let hit_rate =
      let total = m.Modelcheck.Explore.dedup_hits + out.Modelcheck.Explore.nodes in
      if total = 0 then 0.0
      else
        float_of_int m.Modelcheck.Explore.dedup_hits /. float_of_int total
    in
    Printf.printf
      "dedup: %d hits (%.1f%%), %d replays saved, %d states tracked%s\n"
      m.Modelcheck.Explore.dedup_hits (100.0 *. hit_rate)
      m.Modelcheck.Explore.nodes_saved m.Modelcheck.Explore.peak_visited
      (if exact_configs then
         Printf.sprintf ", %d fingerprint collisions"
           m.Modelcheck.Explore.fingerprint_collisions
       else "");
    Printf.printf
      "throughput: %.0f nodes/sec over %.2fs on %d domain(s), %s engine\n"
      m.Modelcheck.Explore.nodes_per_sec m.Modelcheck.Explore.elapsed_s
      m.Modelcheck.Explore.domains_used m.Modelcheck.Explore.engine;
    Printf.printf
      "allocation: %.0f bytes/node (%.0f minor words, %.0f promoted, %d \
       minor GCs)\n"
      m.Modelcheck.Explore.bytes_per_node m.Modelcheck.Explore.minor_words
      m.Modelcheck.Explore.promoted_words
      m.Modelcheck.Explore.minor_collections;
    if m.Modelcheck.Explore.reduction <> "none" then
      Printf.printf
        "reduction: %s, %d sleep-set skips, %d symmetry skips, %d source-set \
         skips%s%s\n"
        m.Modelcheck.Explore.reduction m.Modelcheck.Explore.sleep_skips
        m.Modelcheck.Explore.sym_skips m.Modelcheck.Explore.source_skips
        (if m.Modelcheck.Explore.canonical_orbits > 0 then
           Printf.sprintf " (%d canonical orbits)"
             m.Modelcheck.Explore.canonical_orbits
         else "")
        (if out.Modelcheck.Explore.capped then
           " (node budget reached: counters are partial lower bounds)"
         else "")
    else if out.Modelcheck.Explore.capped then
      print_endline
        "node budget reached: counters are partial lower bounds";
    if m.Modelcheck.Explore.engine = "undo" then (
      let hits = m.Modelcheck.Explore.intern_hits
      and misses = m.Modelcheck.Explore.intern_misses in
      Printf.printf
        "undo: %d cells rewound (%.0f cells/sec), intern hit rate %.1f%% \
         (%d hits / %d misses)\n"
        m.Modelcheck.Explore.rewound_cells
        m.Modelcheck.Explore.rewound_cells_per_sec
        (100.0 *. m.Modelcheck.Explore.intern_hit_rate)
        hits misses;
      match m.Modelcheck.Explore.journal_depth_hist with
      | [] -> ()
      | hist ->
          Printf.printf "journal depth (log2 buckets): %s\n"
            (String.concat " "
               (List.map (fun (b, n) -> Printf.sprintf "%d:%d" b n) hist)));
    Printf.printf
      "checker: %s engine, %d leaf checks (%.0f checks/sec, %.3fs), %.1f%% \
       event reuse (%d of %d events pushed)\n"
      m.Modelcheck.Explore.lin_engine m.Modelcheck.Explore.leaf_checks
      m.Modelcheck.Explore.lin_checks_per_sec m.Modelcheck.Explore.lin_elapsed_s
      (100.0 *. m.Modelcheck.Explore.lin_reuse_rate)
      m.Modelcheck.Explore.lin_events_pushed
      m.Modelcheck.Explore.lin_events_total;
    (match m.Modelcheck.Explore.frontier_hist with
    | [] -> ()
    | hist ->
        Printf.printf "checker frontier size (log2 buckets): %s\n"
          (String.concat " "
             (List.map (fun (b, n) -> Printf.sprintf "%d:%d" b n) hist)));
    (match m.Modelcheck.Explore.replay_depth_hist with
    | [] -> ()
    | hist ->
        let deepest, _ = List.hd (List.rev hist) in
        let busiest_d, busiest_n =
          List.fold_left
            (fun (bd, bn) (d, n) -> if n > bn then (d, n) else (bd, bn))
            (0, 0) hist
        in
        Printf.printf
          "replay depth: max %d decisions, busiest depth %d (%d nodes)\n"
          deepest busiest_d busiest_n);
    List.iter
      (fun (v : Modelcheck.Explore.violation) ->
        Printf.printf "\nsample violation: %s\nschedule: %s\n" v.msg
          (String.concat " "
             (List.map
                (Format.asprintf "%a" Modelcheck.Explore.pp_decision)
                v.decisions));
        Format.printf "%a@." Event.pp_history v.history;
        (* shrink to a minimal reproduction *)
        match
          Modelcheck.Shrink.minimise
            ~mk:(mk_of_kind kind ~n:procs)
            ~workloads ~policy ~engine ~lin_engine ~reduction v.decisions
        with
        | Some r ->
            Printf.printf
              "minimised to %d decisions (%d replays): %s  [prefix, then free run]\n"
              (List.length r.Modelcheck.Shrink.decisions)
              r.Modelcheck.Shrink.attempts
              (String.concat " "
                 (List.map
                    (Format.asprintf "%a" Modelcheck.Explore.pp_decision)
                    r.Modelcheck.Shrink.decisions))
        | None ->
            print_endline
              "(the violation did not reproduce under prefix-then-free-run \
               replay; schedule shown above is exact)")
      out.Modelcheck.Explore.violations;
    if out.Modelcheck.Explore.total_violations = 0 then `Ok ()
    else `Error (false, "violations found")
  in
  Cmd.v
    (Cmd.info "modelcheck"
       ~doc:
         "Delay-bounded exhaustive exploration of a tiny workload, all crash \
          points included.")
    Term.(
      ret
        (const run $ obj_arg $ procs_arg $ ops_arg $ switches $ crashes
       $ domains $ no_prune $ exact_configs $ engine $ lin_engine_arg
       $ reduction $ node_budget $ policy_arg $ seed_arg $ gc_arg))

(* witness *)

let witness_cmd =
  let run () =
    List.iter
      (fun (e : Perturb.Witnesses.entry) ->
        match Perturb.Perturbing.verify_witness e.spec e.witness with
        | Ok () ->
            Format.printf "%-16s doubly-perturbing: %a@." e.obj_name
              Perturb.Perturbing.pp_witness e.witness
        | Error m -> Format.printf "%-16s REJECTED: %s@." e.obj_name m)
      Perturb.Witnesses.all;
    let alphabet = [ Spec.read_op; Spec.write_max_op 1; Spec.write_max_op 2 ] in
    Format.printf "%-16s %s@." "max_register"
      (if
         Perturb.Witnesses.max_register_has_no_witness ~alphabet ~max_h1:2
           ~max_ext:2
       then "no witness within bound: NOT doubly-perturbing (Lemma 4)"
       else "WITNESS FOUND (unexpected)")
  in
  Cmd.v
    (Cmd.info "witness"
       ~doc:
         "Verify the paper's doubly-perturbing witnesses (Lemmas 3, 5-8) and           the max register's non-witness (Lemma 4).")
    Term.(const run $ const ())

(* attack *)

let attack_cmd =
  let switches =
    Arg.(
      value & opt int 2
      & info [ "switches" ] ~docv:"D" ~doc:"Context-switch budget.")
  in
  let run kind procs switches =
    let e =
      match kind with
      | Drw | Urw | Broken_rw_refail | Broken_rw_reexec | Broken_drw_no_toggle
        ->
          Perturb.Witnesses.register
      | Dcas | Ucas | Broken_dcas_no_vec -> Perturb.Witnesses.cas
      | Dcounter | Dbounded | Dprotected -> Perturb.Witnesses.counter
      | Dfaa -> Perturb.Witnesses.faa
      | Dswap -> Perturb.Witnesses.swap
      | Dtas -> Perturb.Witnesses.tas
      | Dqueue -> Perturb.Witnesses.queue
      | Dmax ->
          (* not doubly-perturbing; attack with a max-register workload *)
          {
            Perturb.Witnesses.obj_name = "max_register";
            spec = Spec.max_register 0;
            witness = Perturb.Witnesses.register.Perturb.Witnesses.witness;
            attack =
              [|
                [ Spec.write_max_op 1 ];
                [ Spec.read_op; Spec.write_max_op 2; Spec.read_op ];
              |];
          }
    in
    let reports =
      Perturb.Adversary.attack
        ~mk:(mk_of_kind kind ~n:procs)
        ~workloads:e.Perturb.Witnesses.attack ~switch_budget:switches ()
    in
    List.iter
      (fun (r : Perturb.Adversary.report) ->
        Printf.printf "policy %-6s: %d violations / %d executions
"
          (match r.policy with Session.Retry -> "retry" | Session.Give_up -> "giveup")
          r.violations r.executions;
        match r.sample with
        | Some v ->
            Printf.printf "  sample: %s
" v.Modelcheck.Explore.msg;
            Format.printf "%a@." Event.pp_history v.Modelcheck.Explore.history
        | None -> ())
      reports;
    if Perturb.Adversary.survives reports then begin
      print_endline "verdict: survives the auxiliary-state adversary";
      `Ok ()
    end
    else begin
      print_endline "verdict: VIOLATED (Theorem 2 in action)";
      `Error (false, "adversary found violations")
    end
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:
         "Launch the Theorem 2 adversary (the object's doubly-perturbing           witness as a concurrent crash attack).")
    Term.(ret (const run $ obj_arg $ procs_arg $ switches))

let () =
  let doc =
    "Detectable recoverable objects on a simulated NVM machine — \
     reproduction of Ben-Baruch, Hendler and Rusanovsky (PODC 2020)."
  in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "detect-cli" ~version:"1.0.0" ~doc)
          [
            list_cmd;
            exp_cmd;
            torture_cmd;
            campaign_cmd;
            torture_worker_cmd;
            trace_cmd;
            modelcheck_cmd;
            witness_cmd;
            attack_cmd;
          ]))
