(* Tests for the durable-linearizability + detectability checker on
   hand-crafted histories. *)

open Nvm
open History

let i n = Value.Int n
let reg = Spec.register (i 0)
let casc = Spec.cas_cell (i 0)

let inv pid uid op = Event.Inv { pid; uid; op }
let ret pid uid v = Event.Ret { pid; uid; v }
let rret pid uid v = Event.Rec_ret { pid; uid; v }
let rfail pid uid = Event.Rec_fail { pid; uid }

(* every hand-crafted history is judged by BOTH engines; they must agree
   on the verdict class and, for violations, on the exact message *)
let both spec h =
  let vb = Lin_check.check spec h in
  let vi = Lin_check.check_incremental spec h in
  (match (vb, vi) with
  | Lin_check.Ok_linearizable _, Lin_check.Ok_linearizable _ -> ()
  | Lin_check.Violation mb, Lin_check.Violation mi ->
      Alcotest.(check string) "engines agree on the message" mb mi
  | Lin_check.Ok_linearizable _, Lin_check.Violation mi ->
      Alcotest.failf "batch OK but incremental rejects: %s" mi
  | Lin_check.Violation mb, Lin_check.Ok_linearizable _ ->
      Alcotest.failf "incremental OK but batch rejects: %s" mb);
  vb

let ok spec h =
  match both spec h with
  | Lin_check.Ok_linearizable _ -> ()
  | Lin_check.Violation msg -> Alcotest.failf "expected OK, got: %s" msg

let bad spec h =
  match both spec h with
  | Lin_check.Ok_linearizable _ -> Alcotest.fail "expected a violation"
  | Lin_check.Violation _ -> ()

let test_empty () = ok reg []

let test_sequential () =
  ok reg
    [
      inv 0 0 (Spec.write_op (i 5));
      ret 0 0 Spec.ack;
      inv 1 1 Spec.read_op;
      ret 1 1 (i 5);
    ]

let test_wrong_response () =
  bad reg
    [
      inv 0 0 (Spec.write_op (i 5));
      ret 0 0 Spec.ack;
      inv 1 1 Spec.read_op;
      ret 1 1 (i 7);
    ]

let test_concurrent_reorder () =
  (* two overlapping writes; the read may see either, as long as order is
     consistent *)
  ok reg
    [
      inv 0 0 (Spec.write_op (i 1));
      inv 1 1 (Spec.write_op (i 2));
      ret 0 0 Spec.ack;
      ret 1 1 Spec.ack;
      inv 0 2 Spec.read_op;
      ret 0 2 (i 1);
    ]

let test_real_time_order_enforced () =
  (* a write completed strictly before a read cannot be reordered after
     it: the read must not return the overwritten initial value once a
     later completed write exists *)
  bad reg
    [
      inv 0 0 (Spec.write_op (i 1));
      ret 0 0 Spec.ack;
      inv 0 1 (Spec.write_op (i 2));
      ret 0 1 Spec.ack;
      inv 1 2 Spec.read_op;
      ret 1 2 (i 1);
    ]

let test_pending_op_may_linearize () =
  (* p0's write never completes, but the read seeing it is fine *)
  ok reg
    [
      inv 0 0 (Spec.write_op (i 9));
      inv 1 1 Spec.read_op;
      ret 1 1 (i 9);
    ]

let test_pending_op_may_not_linearize () =
  ok reg [ inv 0 0 (Spec.write_op (i 9)); inv 1 1 Spec.read_op; ret 1 1 (i 0) ]

let test_rec_ret_counts_as_linearized () =
  ok reg
    [
      inv 0 0 (Spec.write_op (i 3));
      Event.Crash;
      rret 0 0 Spec.ack;
      inv 1 1 Spec.read_op;
      ret 1 1 (i 3);
    ]

let test_rec_fail_forbids_linearization () =
  (* recovery said the write never happened, yet a read observed it *)
  bad reg
    [
      inv 0 0 (Spec.write_op (i 3));
      Event.Crash;
      rfail 0 0;
      inv 1 1 Spec.read_op;
      ret 1 1 (i 3);
    ]

let test_rec_fail_consistent () =
  ok reg
    [
      inv 0 0 (Spec.write_op (i 3));
      Event.Crash;
      rfail 0 0;
      inv 1 1 Spec.read_op;
      ret 1 1 (i 0);
    ]

let test_rec_fail_blocks_nothing () =
  (* ops invoked after a failed op's verdict are not blocked by it *)
  ok reg
    [
      inv 0 0 (Spec.write_op (i 3));
      Event.Crash;
      rfail 0 0;
      inv 0 1 (Spec.write_op (i 4));
      ret 0 1 Spec.ack;
      inv 1 2 Spec.read_op;
      ret 1 2 (i 4);
    ]

let test_cas_double_success_impossible () =
  (* two successful cas(0,1) with no one resetting: impossible *)
  bad casc
    [
      inv 0 0 (Spec.cas_op (i 0) (i 1));
      ret 0 0 (Value.Bool true);
      inv 1 1 (Spec.cas_op (i 0) (i 1));
      ret 1 1 (Value.Bool true);
    ]

let test_cas_success_then_failure () =
  ok casc
    [
      inv 0 0 (Spec.cas_op (i 0) (i 1));
      ret 0 0 (Value.Bool true);
      inv 1 1 (Spec.cas_op (i 0) (i 1));
      ret 1 1 (Value.Bool false);
    ]

let test_cas_recovered_success_proves_linearization () =
  (* q's successful cas(1,0) proves p's crashed cas(0,1) took effect, so a
     fail verdict for p is a violation *)
  bad casc
    [
      inv 0 0 (Spec.cas_op (i 0) (i 1));
      Event.Crash;
      rfail 0 0;
      inv 1 1 (Spec.cas_op (i 1) (i 0));
      ret 1 1 (Value.Bool true);
    ]

let test_malformed_double_outcome () =
  bad reg
    [
      inv 0 0 (Spec.write_op (i 1));
      ret 0 0 Spec.ack;
      rret 0 0 Spec.ack;
    ]

let test_malformed_unknown_uid () = bad reg [ ret 0 7 Spec.ack ]

let test_malformed_duplicate_inv () =
  bad reg [ inv 0 0 Spec.read_op; inv 0 0 Spec.read_op ]

(* Regression for the identity-CAS finding: the behaviour Algorithm 2 as
   published can produce — a failed cas(1,1) while the value is 1
   throughout — must be rejected.  (Our implementation runs identity CAS
   read-only precisely so this history can no longer arise.) *)
let test_identity_cas_spurious_failure_rejected () =
  bad casc
    [
      inv 0 0 (Spec.cas_op (i 0) (i 1));
      ret 0 0 (Value.Bool true);
      inv 1 1 (Spec.cas_op (i 1) (i 1));
      ret 1 1 (Value.Bool false);
    ]

let test_identity_cas_success_accepted () =
  ok casc
    [
      inv 0 0 (Spec.cas_op (i 0) (i 1));
      ret 0 0 (Value.Bool true);
      inv 1 1 (Spec.cas_op (i 1) (i 1));
      ret 1 1 (Value.Bool true);
      inv 0 2 Spec.read_op;
      ret 0 2 (i 1);
    ]

(* ------------------------------------------------------------------ *)
(* histories beyond the one-word bitmask (> Lin_check.word_ops ops) *)

let long_history n =
  List.concat
    (List.init n (fun k ->
         if k mod 2 = 0 then
           [ inv 0 k (Spec.write_op (i (k mod 7))); ret 0 k Spec.ack ]
         else [ inv 0 k Spec.read_op; ret 0 k (i ((k - 1) mod 7)) ]))

let test_long_history_accepted () =
  Alcotest.(check bool)
    "70 > word_ops" true
    (70 > Lin_check.word_ops);
  ok reg (long_history 70)

let test_long_history_corrupted () =
  (* corrupt one read deep past the word boundary *)
  let h =
    List.map
      (function
        | Event.Ret { pid; uid = 67; v = _ } -> ret pid 67 (i 6)
        | e -> e)
      (long_history 70)
  in
  bad reg h

(* ------------------------------------------------------------------ *)
(* the incremental session: mark/rewind semantics *)

let test_session_rewind_different_suffix () =
  let s = Lin_check.Session.create reg in
  Lin_check.Session.push_history s
    [ inv 0 0 (Spec.write_op (i 5)); ret 0 0 Spec.ack ];
  let m = Lin_check.Session.mark s in
  Lin_check.Session.push_history s [ inv 1 1 Spec.read_op; ret 1 1 (i 7) ];
  (match Lin_check.Session.verdict s with
  | Lin_check.Violation _ -> ()
  | Lin_check.Ok_linearizable _ -> Alcotest.fail "bad suffix accepted");
  Lin_check.Session.rewind s m;
  (match Lin_check.Session.verdict s with
  | Lin_check.Ok_linearizable _ -> ()
  | Lin_check.Violation msg -> Alcotest.failf "prefix rejected: %s" msg);
  Lin_check.Session.push_history s [ inv 1 1 Spec.read_op; ret 1 1 (i 5) ];
  match Lin_check.Session.verdict s with
  | Lin_check.Ok_linearizable _ -> ()
  | Lin_check.Violation msg -> Alcotest.failf "good suffix rejected: %s" msg

let test_session_rewind_past_malformed () =
  let s = Lin_check.Session.create reg in
  Lin_check.Session.push_event s (inv 0 0 Spec.read_op);
  let m = Lin_check.Session.mark s in
  Lin_check.Session.push_event s (inv 0 0 Spec.read_op);
  (match Lin_check.Session.verdict s with
  | Lin_check.Violation msg ->
      Alcotest.(check string)
        "batch message" msg
        (match
           Lin_check.check reg [ inv 0 0 Spec.read_op; inv 0 0 Spec.read_op ]
         with
        | Lin_check.Violation m -> m
        | Lin_check.Ok_linearizable _ -> "?")
  | Lin_check.Ok_linearizable _ -> Alcotest.fail "duplicate inv accepted");
  Lin_check.Session.rewind s m;
  Lin_check.Session.push_event s (ret 0 0 (i 0));
  match Lin_check.Session.verdict s with
  | Lin_check.Ok_linearizable _ -> ()
  | Lin_check.Violation msg ->
      Alcotest.failf "clean suffix after rewind rejected: %s" msg

let test_session_stale_mark_rejected () =
  (* same LIFO contract as Nvm.Mem: rewinding to a mark invalidates every
     mark taken after it *)
  let s = Lin_check.Session.create reg in
  let m1 = Lin_check.Session.mark s in
  Lin_check.Session.push_event s (inv 0 0 Spec.read_op);
  let m2 = Lin_check.Session.mark s in
  Lin_check.Session.rewind s m1;
  Alcotest.check_raises "stale mark"
    (Invalid_argument
       "Lin_check.Session.rewind: stale mark (marks must be used in LIFO \
        order)") (fun () -> Lin_check.Session.rewind s m2)

(* ------------------------------------------------------------------ *)
(* visited-set hashing on deep values (regression: the old visited set
   keyed on polymorphic Hashtbl.hash, which stops sampling after a few
   nodes, so deep states whose difference is buried collapse into one
   bucket; Value.intern fingerprints hash the whole structure) *)

let deep_chain k =
  let rec go k acc = if k = 0 then acc else go (k - 1) (Value.pair (i 0) acc) in
  go k (i k)

let test_deep_value_fingerprints () =
  let n = 200 in
  let chains = List.init n (fun k -> deep_chain (k + 16)) in
  let distinct f =
    let t = Hashtbl.create 64 in
    List.iter (fun c -> Hashtbl.replace t (f c) ()) chains;
    Hashtbl.length t
  in
  let poly = distinct Hashtbl.hash in
  let interned = distinct (fun c -> (Value.intern c).Value.da) in
  Alcotest.(check int) "interned fingerprints are collision-free" n interned;
  if poly > n / 4 then
    Alcotest.failf
      "expected polymorphic hash to collapse deep chains (got %d distinct \
       of %d) — the regression premise no longer holds"
      poly n

(* a register whose abstract state drags the whole write history behind
   it as a deep chain: every distinct linearization prefix has a deep,
   mostly-identical state, so the checker's memo table lives on its
   fingerprint hashing *)
let deep_reg =
  {
    Spec.obj_name = "deep_register";
    init = Value.pair (i 0) Value.Bot;
    step =
      (fun st op ->
        match (op.Spec.name, op.Spec.args) with
        | "read", [||] -> (st, Value.nth st 0)
        | "write", [| v |] -> (Value.pair v st, Spec.ack)
        | _ -> invalid_arg "deep_register: unknown op");
  }

let test_deep_state_parity () =
  (* concurrent writes of the SAME value: all reachable states at a given
     linearized-set size are deep chains differing only in depth/suffix *)
  let h =
    [
      inv 0 0 (Spec.write_op (i 0));
      inv 1 1 (Spec.write_op (i 0));
      ret 0 0 Spec.ack;
      ret 1 1 Spec.ack;
      inv 0 2 Spec.read_op;
      inv 1 3 (Spec.write_op (i 0));
      ret 0 2 (i 0);
      ret 1 3 Spec.ack;
    ]
  in
  ok deep_reg h;
  bad deep_reg (h @ [ inv 0 4 Spec.read_op; ret 0 4 (i 9) ]);
  (* crash + detectability on the deep spec *)
  ok deep_reg
    [
      inv 0 0 (Spec.write_op (i 0));
      Event.Crash;
      rfail 0 0;
      inv 1 1 Spec.read_op;
      ret 1 1 (i 0);
    ]

let test_witness_is_reported () =
  match
    Lin_check.check reg
      [ inv 0 0 (Spec.write_op (i 5)); ret 0 0 Spec.ack ]
  with
  | Lin_check.Ok_linearizable w ->
      Alcotest.(check int) "one op linearized" 1 (List.length w)
  | Lin_check.Violation msg -> Alcotest.failf "unexpected: %s" msg

(* Property: every crash-free sequential history generated from the spec
   itself is accepted by both engines — with the SAME witness, since a
   complete sequential history has exactly one linearization.  The 80-op
   bound deliberately exceeds [Lin_check.word_ops] so the chunked-bitset
   slow path is exercised on random data. *)
let prop_sequential_accepted =
  let gen = QCheck.(list (option (int_bound 9))) in
  QCheck.Test.make ~name:"sequential histories accepted"
    ~count:Test_support.qcheck_count gen (fun cmds ->
      let ops =
        List.map
          (function Some x -> Spec.write_op (i x) | None -> Spec.read_op)
          cmds
      in
      let ops =
        if List.length ops > 80 then List.filteri (fun k _ -> k < 80) ops
        else ops
      in
      let responses = Spec.run reg ops in
      let events =
        List.concat
          (List.mapi
             (fun k (op, r) -> [ inv 0 k op; ret 0 k r ])
             (List.combine ops responses))
      in
      match
        (Lin_check.check reg events, Lin_check.check_incremental reg events)
      with
      | Lin_check.Ok_linearizable wb, Lin_check.Ok_linearizable wi -> wb = wi
      | _ -> false)

(* Property: corrupting one read response of a non-trivial sequential
   history is rejected by both engines. *)
let prop_corrupted_rejected =
  let gen = QCheck.(pair (int_range 1 9) (int_range 1 9)) in
  QCheck.Test.make ~name:"corrupted read rejected"
    ~count:Test_support.qcheck_count gen (fun (x, y) ->
      QCheck.assume (x <> y);
      let events =
        [
          inv 0 0 (Spec.write_op (i x));
          ret 0 0 Spec.ack;
          inv 0 1 Spec.read_op;
          ret 0 1 (i y);
        ]
      in
      (not (Lin_check.is_ok (Lin_check.check reg events)))
      && not (Lin_check.is_ok (Lin_check.check_incremental reg events)))

(* Property: a session driven through random push/mark/rewind traffic
   always agrees with a batch check of whatever history it currently
   holds.  Commands: [Some (Some x)] push a write+ret pair, [Some None]
   push a read+ret pair (response read off a shadow run), [None] mark
   here — and at the end every outstanding mark is rewound in LIFO
   order, re-checking parity after each rewind. *)
let prop_session_rewind_parity =
  let gen = QCheck.(list (option (option (int_bound 4)))) in
  QCheck.Test.make ~name:"session mark/rewind parity"
    ~count:Test_support.qcheck_count gen (fun cmds ->
      let cmds = List.filteri (fun k _ -> k < 40) cmds in
      let s = Lin_check.Session.create reg in
      let hist = ref [] (* newest first *) in
      let cur = ref (i 0) in
      let marks = ref [] in
      let push e =
        hist := e :: !hist;
        Lin_check.Session.push_event s e
      in
      let agree () =
        let batch = Lin_check.check reg (List.rev !hist) in
        match (batch, Lin_check.Session.verdict s) with
        | Lin_check.Ok_linearizable _, Lin_check.Ok_linearizable _ -> true
        | Lin_check.Violation mb, Lin_check.Violation mi -> mb = mi
        | _ -> false
      in
      let uid = ref 0 in
      let ok =
        List.for_all
          (fun cmd ->
            (match cmd with
            | Some (Some x) ->
                push (inv 0 !uid (Spec.write_op (i x)));
                push (ret 0 !uid Spec.ack);
                cur := i x;
                incr uid
            | Some None ->
                push (inv 0 !uid Spec.read_op);
                push (ret 0 !uid !cur);
                incr uid
            | None ->
                marks := (Lin_check.Session.mark s, !hist, !cur) :: !marks);
            agree ())
          cmds
      in
      ok
      && List.for_all
           (fun (m, h, c) ->
             Lin_check.Session.rewind s m;
             hist := h;
             cur := c;
             agree ())
           !marks)

let suites =
  [
    ( "history.lin_check",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "sequential" `Quick test_sequential;
        Alcotest.test_case "wrong response" `Quick test_wrong_response;
        Alcotest.test_case "concurrent reorder" `Quick test_concurrent_reorder;
        Alcotest.test_case "real-time order" `Quick
          test_real_time_order_enforced;
        Alcotest.test_case "pending may linearize" `Quick
          test_pending_op_may_linearize;
        Alcotest.test_case "pending may not linearize" `Quick
          test_pending_op_may_not_linearize;
        Alcotest.test_case "rec_ret linearizes" `Quick
          test_rec_ret_counts_as_linearized;
        Alcotest.test_case "rec_fail forbids" `Quick
          test_rec_fail_forbids_linearization;
        Alcotest.test_case "rec_fail consistent" `Quick test_rec_fail_consistent;
        Alcotest.test_case "rec_fail blocks nothing" `Quick
          test_rec_fail_blocks_nothing;
        Alcotest.test_case "cas double success" `Quick
          test_cas_double_success_impossible;
        Alcotest.test_case "cas success then failure" `Quick
          test_cas_success_then_failure;
        Alcotest.test_case "recovered cas evidence" `Quick
          test_cas_recovered_success_proves_linearization;
        Alcotest.test_case "malformed: double outcome" `Quick
          test_malformed_double_outcome;
        Alcotest.test_case "malformed: unknown uid" `Quick
          test_malformed_unknown_uid;
        Alcotest.test_case "malformed: duplicate inv" `Quick
          test_malformed_duplicate_inv;
        Alcotest.test_case "identity cas spurious failure (regression)"
          `Quick test_identity_cas_spurious_failure_rejected;
        Alcotest.test_case "identity cas success" `Quick
          test_identity_cas_success_accepted;
        Alcotest.test_case "witness reported" `Quick test_witness_is_reported;
        Alcotest.test_case "long history accepted (bitset path)" `Quick
          test_long_history_accepted;
        Alcotest.test_case "long history corrupted (bitset path)" `Quick
          test_long_history_corrupted;
        Alcotest.test_case "session rewind, different suffix" `Quick
          test_session_rewind_different_suffix;
        Alcotest.test_case "session rewind past malformed" `Quick
          test_session_rewind_past_malformed;
        Alcotest.test_case "session stale mark rejected" `Quick
          test_session_stale_mark_rejected;
        Alcotest.test_case "deep value fingerprints (regression)" `Quick
          test_deep_value_fingerprints;
        Alcotest.test_case "deep state parity" `Quick test_deep_state_parity;
        QCheck_alcotest.to_alcotest prop_sequential_accepted;
        QCheck_alcotest.to_alcotest prop_corrupted_rejected;
        QCheck_alcotest.to_alcotest prop_session_rewind_parity;
      ] );
  ]
