(* Tests for the explorer's search-space reductions (sleep-set DPOR and
   process-symmetry canonicalisation) and their soundness contracts:

   - verdict parity: [`None], [`Dpor] and [`Dpor_sym] agree on whether a
     workload violates, on the broken ablations and on random workloads
     (reduction prunes redundant interleavings, never the bug);
   - witness invariance: Shrink returns the identical 1-minimal witness
     whichever reduction found the violation (candidate replays are
     single concrete schedules — nothing to prune);
   - the symmetry quotient: canonical fingerprints are invariant under
     process-id permutation where raw fingerprints are not, and
     [`Dpor_sym] degrades to exactly [`Dpor] on objects that do not
     declare an id-symmetric layout;
   - lower bounds: reduced searches visit a subset of the unreduced
     search's work but certify the same Theorem 1 configuration counts
     (the committed bench/BENCH_lowerbound.json is the full-size version
     of the growth check here). *)

open Nvm
open History
open Sched

let i n = Value.Int n

let mk_no_vec () =
  let m = Runtime.Machine.create () in
  (m, Baselines.Broken.dcas_no_vec m ~n:2 ~init:(i 0))

let no_vec_workload =
  [| [ Spec.cas_op (i 0) (i 1) ]; [ Spec.cas_op (i 1) (i 0) ] |]

let mk_reexec () =
  let m = Runtime.Machine.create () in
  (m, Baselines.Broken.rw_no_aux_reexec m ~n:2 ~init:(i 0))

let fig2_workload =
  [|
    [ Spec.write_op (i 1) ]; [ Spec.read_op; Spec.write_op (i 0); Spec.read_op ];
  |]

let reductions : Modelcheck.Explore.reduction list =
  [ `None; `Dpor; `Dpor_sym; `Dpor_sym_memo ]

let explore_with ?(switches = 2) ?(crashes = 1) ~mk ~workloads red =
  Modelcheck.Explore.explore ~mk ~workloads
    {
      Modelcheck.Explore.default_config with
      switch_budget = switches;
      crash_budget = crashes;
      reduction = red;
    }

(* --- verdict parity on the ablations ------------------------------- *)

let check_verdict_parity ~name ~mk ~workloads () =
  let outs = List.map (explore_with ~mk ~workloads) reductions in
  let violates (o : Modelcheck.Explore.outcome) =
    o.Modelcheck.Explore.total_violations > 0
  in
  let base = violates (List.hd outs) in
  List.iter2
    (fun red out ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s verdict" name
           (Modelcheck.Explore.reduction_name red))
        base (violates out))
    reductions outs;
  (* a reduced search never does more work than the unreduced one *)
  let unreduced = List.hd outs in
  List.iter
    (fun (out : Modelcheck.Explore.outcome) ->
      Alcotest.(check bool)
        (name ^ ": reduced executions <= unreduced")
        true
        (out.Modelcheck.Explore.executions
        <= unreduced.Modelcheck.Explore.executions);
      Alcotest.(check bool)
        (name ^ ": reduced configs <= unreduced")
        true
        (out.Modelcheck.Explore.distinct_shared_configs
        <= unreduced.Modelcheck.Explore.distinct_shared_configs))
    (List.tl outs)

let test_parity_no_vec () =
  check_verdict_parity ~name:"dcas_no_vec" ~mk:mk_no_vec
    ~workloads:no_vec_workload ()

let test_parity_reexec () =
  check_verdict_parity ~name:"rw_no_aux_reexec" ~mk:mk_reexec
    ~workloads:fig2_workload ()

let test_parity_healthy_dcas () =
  (* a correct object stays violation-free under every reduction *)
  List.iter
    (fun red ->
      let out =
        explore_with
          ~mk:(fun () -> Test_support.mk_dcas ~n:2 ())
          ~workloads:[| [ Spec.cas_op (i 0) (i 1) ]; [ Spec.cas_op (i 1) (i 2) ] |]
          red
      in
      Alcotest.(check int)
        (Modelcheck.Explore.reduction_name red ^ " violations")
        0 out.Modelcheck.Explore.total_violations)
    reductions

let prop_parity_random_workloads =
  (* verdict parity over randomly generated cas workloads on the ablated
     (violating) object — each seed is a fresh property case *)
  QCheck.Test.make ~name:"reduction verdict parity on random workloads"
    ~count:12 QCheck.small_nat (fun seed ->
      let workloads =
        Workload.cas
          (Dtc_util.Prng.create (seed + 1))
          ~procs:2 ~ops_per_proc:2 ~values:2
      in
      let outs =
        List.map (explore_with ~mk:mk_no_vec ~workloads) reductions
      in
      let violates (o : Modelcheck.Explore.outcome) =
        o.Modelcheck.Explore.total_violations > 0
      in
      let base = violates (List.hd outs) in
      List.for_all (fun o -> violates o = base) (List.tl outs)
      && List.for_all
           (fun (o : Modelcheck.Explore.outcome) ->
             o.Modelcheck.Explore.executions
             <= (List.hd outs).Modelcheck.Explore.executions)
           (List.tl outs))

(* --- witness invariance through Shrink ----------------------------- *)

let test_shrink_witness_invariant () =
  (* one violation, minimised under every reduction argument: identical
     decisions, message and attempt count (candidate replays are single
     concrete schedules, so the reduction has nothing to prune) *)
  let out = explore_with ~mk:mk_no_vec ~workloads:no_vec_workload `Dpor in
  match out.Modelcheck.Explore.violations with
  | [] -> Alcotest.fail "expected the ablation to violate under dpor"
  | v :: _ -> (
      let minimise red =
        Modelcheck.Shrink.minimise ~mk:mk_no_vec ~workloads:no_vec_workload
          ~reduction:red v.Modelcheck.Explore.decisions
      in
      match List.map minimise reductions with
      | [ Some a; Some b; Some c; Some d ] ->
          let sig_of (r : Modelcheck.Shrink.result) =
            ( List.map
                (Format.asprintf "%a" Modelcheck.Explore.pp_decision)
                r.Modelcheck.Shrink.decisions,
              r.Modelcheck.Shrink.msg,
              r.Modelcheck.Shrink.attempts )
          in
          Alcotest.(check bool) "none = dpor" true (sig_of a = sig_of b);
          Alcotest.(check bool) "dpor = dpor+sym" true (sig_of b = sig_of c);
          Alcotest.(check bool) "dpor+sym = dpor+sym-memo" true
            (sig_of c = sig_of d)
      | _ -> Alcotest.fail "witness did not reproduce under some reduction")

(* --- the symmetry quotient ----------------------------------------- *)

let run_to_completion session =
  let rec go () =
    match Session.runnable session with
    | [] -> ()
    | pid :: _ ->
        Session.step session pid;
        go ()
  in
  go ()

let mem_after ~n workloads =
  let m = Runtime.Machine.create () in
  let inst =
    Detectable.Dcas.instance (Detectable.Dcas.create m ~n ~init:(i 0))
  in
  let session = Session.create m inst ~workloads in
  run_to_completion session;
  Runtime.Machine.mem m

let test_canonical_fingerprint_quotient () =
  (* the same solo CAS run by p0 vs by p1: raw fingerprints differ (the
     private blocks and the flip vector are pid-indexed), canonical
     fingerprints agree (the configurations are one transposition apart) *)
  let a = mem_after ~n:2 [| [ Spec.cas_op (i 0) (i 1) ]; [] |] in
  let b = mem_after ~n:2 [| []; [ Spec.cas_op (i 0) (i 1) ] |] in
  Alcotest.(check bool)
    "raw fingerprints differ" true
    (Mem.live_fingerprint_full a <> Mem.live_fingerprint_full b);
  Alcotest.(check bool)
    "canonical fingerprints agree" true
    (Modelcheck.Sym.canonical_fingerprint ~n:2 a
    = Modelcheck.Sym.canonical_fingerprint ~n:2 b);
  (* distinct orbits must stay distinct: p0's CAS vs no CAS at all *)
  let c = mem_after ~n:2 [| []; [] |] in
  Alcotest.(check bool)
    "distinct orbits distinguished" true
    (Modelcheck.Sym.canonical_fingerprint ~n:2 a
    <> Modelcheck.Sym.canonical_fingerprint ~n:2 c)

let test_swap_invariant () =
  (* freshly created: all processes interchangeable; after p0 runs a CAS
     the transposition (0 1) no longer fixes the configuration *)
  let fresh = mem_after ~n:2 [| []; [] |] in
  Alcotest.(check bool)
    "initial config is swap-invariant" true
    (Modelcheck.Sym.swap_invariant ~n:2 fresh 0 1);
  let after = mem_after ~n:2 [| [ Spec.cas_op (i 0) (i 1) ]; [] |] in
  Alcotest.(check bool)
    "post-CAS config is not swap-invariant" false
    (Modelcheck.Sym.swap_invariant ~n:2 after 0 1)

let test_sym_prunes_symmetric_workloads () =
  (* three processes running the identical workload on an id-symmetric
     object: the symmetry reduction fires and verdicts are unchanged *)
  let workloads = Array.make 3 [ Spec.cas_op (i 0) (i 1) ] in
  let mk () = Test_support.mk_dcas ~n:3 () in
  let dpor = explore_with ~mk ~workloads ~crashes:0 `Dpor in
  let sym = explore_with ~mk ~workloads ~crashes:0 `Dpor_sym in
  Alcotest.(check bool)
    "symmetry skips happened" true
    (sym.Modelcheck.Explore.metrics.Modelcheck.Explore.sym_skips > 0);
  Alcotest.(check int) "verdicts agree"
    dpor.Modelcheck.Explore.total_violations
    sym.Modelcheck.Explore.total_violations;
  Alcotest.(check bool)
    "symmetry explores no more nodes" true
    (sym.Modelcheck.Explore.nodes <= dpor.Modelcheck.Explore.nodes)

let test_sym_inert_on_asymmetric_object () =
  (* Algorithm 1 stores the writer pid in shared cells, so it does not
     declare id_symmetric — [`Dpor_sym] must behave exactly like [`Dpor] *)
  let mk () = Test_support.mk_drw ~n:2 () in
  let workloads = Array.make 2 [ Spec.write_op (i 1); Spec.read_op ] in
  let dpor = explore_with ~mk ~workloads `Dpor in
  let sym = explore_with ~mk ~workloads `Dpor_sym in
  Alcotest.(check int) "sym_skips = 0" 0
    sym.Modelcheck.Explore.metrics.Modelcheck.Explore.sym_skips;
  Alcotest.(check int) "executions equal" dpor.Modelcheck.Explore.executions
    sym.Modelcheck.Explore.executions;
  Alcotest.(check int) "nodes equal" dpor.Modelcheck.Explore.nodes
    sym.Modelcheck.Explore.nodes;
  Alcotest.(check int) "configs equal"
    dpor.Modelcheck.Explore.distinct_shared_configs
    sym.Modelcheck.Explore.distinct_shared_configs;
  Alcotest.(check int) "violations equal"
    dpor.Modelcheck.Explore.total_violations
    sym.Modelcheck.Explore.total_violations

(* --- sleep sets and the node budget -------------------------------- *)

let test_sleep_skips_fire () =
  let out =
    explore_with
      ~mk:(fun () -> Test_support.mk_dcas ~n:2 ())
      ~workloads:[| [ Spec.cas_op (i 0) (i 1) ]; [ Spec.cas_op (i 1) (i 2) ] |]
      `Dpor
  in
  Alcotest.(check bool)
    "sleep-set pruning happened" true
    (out.Modelcheck.Explore.metrics.Modelcheck.Explore.sleep_skips > 0);
  Alcotest.(check string) "metrics label" "dpor"
    out.Modelcheck.Explore.metrics.Modelcheck.Explore.reduction

let test_node_budget_caps () =
  let run budget =
    Modelcheck.Explore.explore
      ~mk:(fun () -> Test_support.mk_dcas ~n:2 ())
      ~workloads:[| [ Spec.cas_op (i 0) (i 1) ]; [ Spec.cas_op (i 1) (i 2) ] |]
      {
        Modelcheck.Explore.default_config with
        switch_budget = 2;
        crash_budget = 1;
        node_budget = budget;
      }
  in
  let capped = run 50 and free = run 0 in
  Alcotest.(check bool) "capped flag set" true capped.Modelcheck.Explore.capped;
  Alcotest.(check int) "stopped at the budget" 50
    capped.Modelcheck.Explore.nodes;
  Alcotest.(check bool) "no cap without budget" false
    free.Modelcheck.Explore.capped;
  Alcotest.(check bool)
    "capped counters are lower bounds" true
    (capped.Modelcheck.Explore.distinct_shared_configs
    <= free.Modelcheck.Explore.distinct_shared_configs)

(* --- the Theorem 1 growth check, smoke-sized ----------------------- *)

let test_lowerbound_growth_small () =
  (* graded CAS chains (process p runs cas(0,1)..cas(p,p+1)): the
     reduced explorer's distinct-configuration count must clear 2^(N-1)
     — the full N<=6 sweep is the committed bench/BENCH_lowerbound.json *)
  List.iter
    (fun n ->
      let workloads =
        Array.init n (fun p ->
            List.init (p + 1) (fun k -> Spec.cas_op (i k) (i (k + 1))))
      in
      let out =
        Modelcheck.Explore.explore
          ~mk:(fun () -> Test_support.mk_dcas ~n ())
          ~workloads
          {
            Modelcheck.Explore.default_config with
            switch_budget = 1;
            crash_budget = 0;
            reduction = `Dpor;
          }
      in
      Alcotest.(check bool)
        (Printf.sprintf "N=%d: configs >= 2^(N-1)" n)
        true
        (out.Modelcheck.Explore.distinct_shared_configs >= 1 lsl (n - 1));
      Alcotest.(check bool)
        (Printf.sprintf "N=%d: not capped" n)
        false out.Modelcheck.Explore.capped)
    [ 2; 3; 4 ]

(* --- symmetry-canonical memoisation -------------------------------- *)

let uniform_cas n = Array.make n [ Spec.cas_op (i 0) (i 1); Spec.cas_op (i 1) (i 2) ]

let explore_full ?(switches = 2) ?(crashes = 0) ?(exact = false) ?(domains = 1)
    ~mk ~workloads red =
  Modelcheck.Explore.explore ~mk ~workloads
    {
      Modelcheck.Explore.default_config with
      switch_budget = switches;
      crash_budget = crashes;
      reduction = red;
      exact_configs = exact;
      domains;
    }

let test_memo_weighted_count_matches_unreduced () =
  (* orbit-size-weighted canonical counting reconstructs exactly the
     unreduced search's configuration count: the budget-limited reachable
     set is closed under process permutation (uniform workloads,
     id-symmetric object, equivariant switch accounting), so summing
     orbit sizes over visited orbit representatives recovers its full
     cardinality *)
  let mk () = Test_support.mk_dcas ~n:3 () in
  let workloads = uniform_cas 3 in
  let none = explore_full ~mk ~workloads `None in
  let memo = explore_full ~mk ~workloads `Dpor_sym_memo in
  Alcotest.(check int) "weighted configs = unreduced configs"
    none.Modelcheck.Explore.distinct_shared_configs
    memo.Modelcheck.Explore.distinct_shared_configs;
  let orbits =
    memo.Modelcheck.Explore.metrics.Modelcheck.Explore.canonical_orbits
  in
  Alcotest.(check bool) "orbits counted" true (orbits > 0);
  Alcotest.(check bool) "orbits compress the count" true
    (orbits < memo.Modelcheck.Explore.distinct_shared_configs);
  Alcotest.(check int) "verdict parity"
    none.Modelcheck.Explore.total_violations
    memo.Modelcheck.Explore.total_violations;
  Alcotest.(check string) "metrics label" "dpor+sym-memo"
    memo.Modelcheck.Explore.metrics.Modelcheck.Explore.reduction

let prop_canonical_quotient_sound =
  (* the soundness audit for canonical fingerprints as quotient keys:
     under [exact_configs] a canonical set buckets full snapshots by
     canonical fingerprint and checks π-relatedness
     ({!Sym.related_shared}) inside each bucket, counting any
     equal-fingerprint-but-unrelated pair as a collision.  Zero
     collisions over randomised uniform workloads is exactly the
     property that makes orbit-weighted counting a lower bound. *)
  QCheck.Test.make ~name:"canonical fingerprint is a sound quotient key"
    ~count:6 QCheck.small_nat (fun seed ->
      let shared =
        match
          Array.to_list
            (Workload.cas
               (Dtc_util.Prng.create (seed + 1))
               ~procs:1 ~ops_per_proc:3 ~values:3)
        with
        | [ ops ] -> ops
        | _ -> assert false
      in
      let out =
        explore_full
          ~mk:(fun () -> Test_support.mk_dcas ~n:3 ())
          ~workloads:(Array.make 3 shared) ~exact:true `Dpor_sym_memo
      in
      out.Modelcheck.Explore.metrics.Modelcheck.Explore.fingerprint_collisions
      = 0)

let test_memo_degrades_on_nonuniform_workloads () =
  (* non-uniform workloads break the relabeling argument, so the mode
     must degrade to exactly [`Dpor_sym]: same nodes, executions and raw
     (unweighted) configuration count, no orbit accounting *)
  let mk () = Test_support.mk_dcas ~n:2 () in
  let workloads =
    [| [ Spec.cas_op (i 0) (i 1) ]; [ Spec.cas_op (i 1) (i 2) ] |]
  in
  let sym = explore_full ~mk ~workloads `Dpor_sym in
  let memo = explore_full ~mk ~workloads `Dpor_sym_memo in
  Alcotest.(check int) "nodes equal" sym.Modelcheck.Explore.nodes
    memo.Modelcheck.Explore.nodes;
  Alcotest.(check int) "executions equal" sym.Modelcheck.Explore.executions
    memo.Modelcheck.Explore.executions;
  Alcotest.(check int) "configs equal (raw, unweighted)"
    sym.Modelcheck.Explore.distinct_shared_configs
    memo.Modelcheck.Explore.distinct_shared_configs;
  Alcotest.(check int) "no orbit accounting" 0
    memo.Modelcheck.Explore.metrics.Modelcheck.Explore.canonical_orbits

let test_memo_parity_under_crashes () =
  (* crashed paths fall back to raw memo keys; the two key families
     share the table without perturbing the verdict *)
  let mk () = Test_support.mk_dcas ~n:2 () in
  let workloads = uniform_cas 2 in
  let none = explore_full ~mk ~workloads ~crashes:1 `None in
  let memo = explore_full ~mk ~workloads ~crashes:1 `Dpor_sym_memo in
  Alcotest.(check int) "verdict parity under crashes"
    none.Modelcheck.Explore.total_violations
    memo.Modelcheck.Explore.total_violations

let test_source_skips_fire () =
  (* the source-set rule needs a process whose pending request is local
     (dcas's private announcement writes) and no remaining crash budget *)
  let out =
    explore_full
      ~mk:(fun () -> Test_support.mk_dcas ~n:3 ())
      ~workloads:(uniform_cas 3) `Dpor
  in
  Alcotest.(check bool) "source-set pruning happened" true
    (out.Modelcheck.Explore.metrics.Modelcheck.Explore.source_skips > 0);
  Alcotest.(check bool) "source pruning cut executions" true
    (out.Modelcheck.Explore.executions
    <= (explore_full
          ~mk:(fun () -> Test_support.mk_dcas ~n:3 ())
          ~workloads:(uniform_cas 3) `None)
         .Modelcheck.Explore.executions)

let test_parallel_root_reduction_parity () =
  (* the parallel explorers now apply sleep/symmetry reduction at the
     root frontier too: totals must match the sequential search and the
     root-level symmetry skips must actually fire *)
  let mk () = Test_support.mk_dcas ~n:3 () in
  let workloads = uniform_cas 3 in
  List.iter
    (fun red ->
      let seq = explore_full ~mk ~workloads red in
      let par = explore_full ~mk ~workloads ~domains:2 red in
      let name what =
        Printf.sprintf "%s: parallel %s = sequential"
          (Modelcheck.Explore.reduction_name red)
          what
      in
      Alcotest.(check int) (name "violations")
        seq.Modelcheck.Explore.total_violations
        par.Modelcheck.Explore.total_violations;
      Alcotest.(check int) (name "configs")
        seq.Modelcheck.Explore.distinct_shared_configs
        par.Modelcheck.Explore.distinct_shared_configs;
      if red = `Dpor_sym then
        Alcotest.(check bool) "root symmetry skips fire in parallel" true
          (par.Modelcheck.Explore.metrics.Modelcheck.Explore.sym_skips > 0))
    [ `Dpor; `Dpor_sym ]

let suites =
  [
    ( "reduction",
      [
        Alcotest.test_case "verdict parity (dcas_no_vec)" `Quick
          test_parity_no_vec;
        Alcotest.test_case "verdict parity (rw_no_aux_reexec)" `Quick
          test_parity_reexec;
        Alcotest.test_case "healthy object stays clean" `Quick
          test_parity_healthy_dcas;
        QCheck_alcotest.to_alcotest prop_parity_random_workloads;
        Alcotest.test_case "shrink witness invariance" `Quick
          test_shrink_witness_invariant;
        Alcotest.test_case "sleep skips fire" `Quick test_sleep_skips_fire;
        Alcotest.test_case "node budget caps" `Quick test_node_budget_caps;
        Alcotest.test_case "lower-bound growth (small N)" `Quick
          test_lowerbound_growth_small;
      ] );
    ( "symmetry",
      [
        Alcotest.test_case "canonical fingerprint is a quotient" `Quick
          test_canonical_fingerprint_quotient;
        Alcotest.test_case "swap invariance tracks the run" `Quick
          test_swap_invariant;
        Alcotest.test_case "prunes symmetric workloads" `Quick
          test_sym_prunes_symmetric_workloads;
        Alcotest.test_case "inert on id-asymmetric objects" `Quick
          test_sym_inert_on_asymmetric_object;
      ] );
    ( "sym-memo",
      [
        Alcotest.test_case "weighted count matches unreduced" `Quick
          test_memo_weighted_count_matches_unreduced;
        QCheck_alcotest.to_alcotest prop_canonical_quotient_sound;
        Alcotest.test_case "degrades on non-uniform workloads" `Quick
          test_memo_degrades_on_nonuniform_workloads;
        Alcotest.test_case "verdict parity under crashes" `Quick
          test_memo_parity_under_crashes;
        Alcotest.test_case "source skips fire" `Quick test_source_skips_fire;
        Alcotest.test_case "parallel root reduction parity" `Quick
          test_parallel_root_reduction_parity;
      ] );
  ]
