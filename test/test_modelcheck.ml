(* Tests for the bounded exhaustive explorer itself. *)

open Nvm
open History
open Sched

let i n = Value.Int n

let test_deterministic_replay () =
  (* same configuration twice gives identical statistics *)
  let cfg =
    { Modelcheck.Explore.default_config with switch_budget = 2; crash_budget = 0 }
  in
  let run () =
    Modelcheck.Explore.explore
      ~mk:(fun () -> Test_support.mk_dcas ~n:2 ())
      ~workloads:[| [ Spec.cas_op (i 0) (i 1) ]; [ Spec.read_op ] |]
      cfg
  in
  let a = run () and b = run () in
  Alcotest.(check int) "executions" a.Modelcheck.Explore.executions
    b.Modelcheck.Explore.executions;
  Alcotest.(check int) "nodes" a.Modelcheck.Explore.nodes
    b.Modelcheck.Explore.nodes;
  Alcotest.(check int) "configs" a.Modelcheck.Explore.distinct_shared_configs
    b.Modelcheck.Explore.distinct_shared_configs

let test_switch_budget_monotone () =
  (* a larger budget explores at least as many executions *)
  let run budget =
    (Modelcheck.Explore.explore
       ~mk:(fun () -> Test_support.mk_dcas ~n:2 ())
       ~workloads:[| [ Spec.cas_op (i 0) (i 1) ]; [ Spec.cas_op (i 0) (i 2) ] |]
       {
         Modelcheck.Explore.default_config with
         switch_budget = budget;
         crash_budget = 0;
       })
      .Modelcheck.Explore.executions
  in
  let e0 = run 0 and e1 = run 1 and e2 = run 2 in
  Alcotest.(check bool) "0 <= 1" true (e0 <= e1);
  Alcotest.(check bool) "1 <= 2" true (e1 <= e2);
  (* budget 0: each process runs as a solo block; with two processes there
     are exactly 2 executions *)
  Alcotest.(check int) "budget 0 = two block orders" 2 e0

let test_crash_budget_zero_means_no_crash () =
  let out =
    Modelcheck.Explore.explore
      ~mk:(fun () -> Test_support.mk_dcas ~n:1 ())
      ~workloads:[| [ Spec.cas_op (i 0) (i 1) ] |]
      { Modelcheck.Explore.default_config with crash_budget = 0; switch_budget = 0 }
  in
  Alcotest.(check int) "single execution" 1 out.Modelcheck.Explore.executions;
  List.iter
    (fun (v : Modelcheck.Explore.violation) ->
      Alcotest.failf "unexpected violation %s" v.msg)
    out.Modelcheck.Explore.violations

let test_configs_counted_up_to_equivalence () =
  (* a solo CAS on a 1-process object visits exactly 2 distinct shared
     configurations: initial and post-CAS *)
  let out =
    Modelcheck.Explore.explore
      ~mk:(fun () -> Test_support.mk_dcas ~n:1 ())
      ~workloads:[| [ Spec.cas_op (i 0) (i 1) ] |]
      { Modelcheck.Explore.default_config with crash_budget = 0; switch_budget = 0 }
  in
  Alcotest.(check int) "two configs" 2
    out.Modelcheck.Explore.distinct_shared_configs

let test_crash_points_covers_all () =
  let out =
    Modelcheck.Explore.crash_points
      ~mk:(fun () -> Test_support.mk_dcas ~n:1 ())
      ~workloads:[| [ Spec.cas_op (i 0) (i 1) ] |]
      ~schedule:(fun () -> Schedule.round_robin ())
      ()
  in
  (* one crash-free run + one run per step of the crash-free run *)
  Alcotest.(check bool) "several executions" true
    (out.Modelcheck.Explore.executions > 5)

let test_violation_reports_schedule () =
  let out =
    Modelcheck.Explore.explore
      ~mk:(fun () ->
        let m = Runtime.Machine.create () in
        (m, Baselines.Broken.dcas_no_vec m ~n:2 ~init:(i 0)))
      ~workloads:[| [ Spec.cas_op (i 0) (i 1) ]; [ Spec.cas_op (i 1) (i 0) ] |]
      Modelcheck.Explore.default_config
  in
  match out.Modelcheck.Explore.violations with
  | [] -> Alcotest.fail "expected a violation sample"
  | v :: _ ->
      Alcotest.(check bool) "has schedule" true (v.decisions <> []);
      Alcotest.(check bool) "has history" true (v.history <> []);
      Alcotest.(check bool) "schedule contains the crash" true
        (List.mem Modelcheck.Explore.Crash v.decisions)

(* --- pruned / parallel engines agree with the original engine ---

   Memoisation stores exact subtree summaries, so every externally
   observable counter (executions, truncated, violations, distinct shared
   configurations) must be bit-identical to the unpruned engine; only the
   number of physically replayed nodes may shrink.  The same holds for the
   domain-partitioned engine, whose workers split the top-level frontier. *)

let mk_no_vec () =
  let m = Runtime.Machine.create () in
  (m, Baselines.Broken.dcas_no_vec m ~n:2 ~init:(i 0))

let no_vec_workload =
  [| [ Spec.cas_op (i 0) (i 1) ]; [ Spec.cas_op (i 1) (i 0) ] |]

let mk_reexec () =
  let m = Runtime.Machine.create () in
  (m, Baselines.Broken.rw_no_aux_reexec m ~n:2 ~init:(i 0))

(* Figure 2 workload: p writes, q reads around q's own write. *)
let fig2_workload =
  [|
    [ Spec.write_op (i 1) ]; [ Spec.read_op; Spec.write_op (i 0); Spec.read_op ];
  |]

let check_engines_agree ~mk ~workloads ~switches ~crashes () =
  let base =
    {
      Modelcheck.Explore.default_config with
      switch_budget = switches;
      crash_budget = crashes;
    }
  in
  let run cfg = Modelcheck.Explore.explore ~mk ~workloads cfg in
  let unpruned = run { base with prune = false } in
  let agree label (out : Modelcheck.Explore.outcome) =
    Alcotest.(check int)
      (label ^ ": total_violations")
      unpruned.Modelcheck.Explore.total_violations
      out.Modelcheck.Explore.total_violations;
    Alcotest.(check int)
      (label ^ ": distinct_shared_configs")
      unpruned.Modelcheck.Explore.distinct_shared_configs
      out.Modelcheck.Explore.distinct_shared_configs;
    Alcotest.(check int)
      (label ^ ": executions")
      unpruned.Modelcheck.Explore.executions
      out.Modelcheck.Explore.executions;
    Alcotest.(check int)
      (label ^ ": truncated")
      unpruned.Modelcheck.Explore.truncated out.Modelcheck.Explore.truncated
  in
  let pruned = run { base with prune = true; exact_configs = true } in
  agree "pruned" pruned;
  (* every replay the pruned engine skipped is accounted for *)
  Alcotest.(check int) "pruned: nodes + nodes_saved = unpruned nodes"
    unpruned.Modelcheck.Explore.nodes
    (pruned.Modelcheck.Explore.nodes
    + pruned.Modelcheck.Explore.metrics.Modelcheck.Explore.nodes_saved);
  Alcotest.(check int) "pruned: no fingerprint collisions" 0
    pruned.Modelcheck.Explore.metrics.Modelcheck.Explore.fingerprint_collisions;
  let parallel = run { base with prune = true; domains = 2 } in
  agree "parallel" parallel;
  Alcotest.(check int) "parallel: ran on 2 domains" 2
    parallel.Modelcheck.Explore.metrics.Modelcheck.Explore.domains_used;
  pruned

let test_engines_agree_no_vec () =
  let pruned =
    check_engines_agree ~mk:mk_no_vec ~workloads:no_vec_workload ~switches:2
      ~crashes:1 ()
  in
  (* the no-vec ablation actually violates, so agreement is not vacuous *)
  Alcotest.(check bool) "violations present" true
    (pruned.Modelcheck.Explore.total_violations > 0);
  Alcotest.(check bool) "dedup engaged" true
    (pruned.Modelcheck.Explore.metrics.Modelcheck.Explore.dedup_hits > 0)

let test_engines_agree_reexec () =
  ignore
    (check_engines_agree ~mk:mk_reexec ~workloads:fig2_workload ~switches:2
       ~crashes:1 ())

(* --- the undo engine agrees with the replay engine ---

   The undo engine visits the same DFS nodes in the same order as the
   replay engine (same runnable ordering, same digests, same memo keys),
   so EVERY externally observable number — including physically visited
   nodes and the memo statistics — and the violation samples must be
   byte-identical; only wall-clock differs. *)

let viol_sig (o : Modelcheck.Explore.outcome) =
  List.map
    (fun (v : Modelcheck.Explore.violation) -> (v.decisions, v.msg))
    o.Modelcheck.Explore.violations

let check_undo_matches_replay ?(domains = 1) ~mk ~workloads ~switches ~crashes
    () =
  let cfg engine =
    {
      Modelcheck.Explore.default_config with
      switch_budget = switches;
      crash_budget = crashes;
      domains;
      engine;
    }
  in
  let run e = Modelcheck.Explore.explore ~mk ~workloads (cfg e) in
  let r = run `Replay and u = run `Undo in
  let ck label f =
    Alcotest.(check int) label (f r) (f u)
  in
  ck "executions" (fun o -> o.Modelcheck.Explore.executions);
  ck "truncated" (fun o -> o.Modelcheck.Explore.truncated);
  ck "nodes" (fun o -> o.Modelcheck.Explore.nodes);
  ck "total_violations" (fun o -> o.Modelcheck.Explore.total_violations);
  ck "distinct_shared_configs"
    (fun o -> o.Modelcheck.Explore.distinct_shared_configs);
  ck "dedup_hits"
    (fun o -> o.Modelcheck.Explore.metrics.Modelcheck.Explore.dedup_hits);
  ck "nodes_saved"
    (fun o -> o.Modelcheck.Explore.metrics.Modelcheck.Explore.nodes_saved);
  ck "peak_visited"
    (fun o -> o.Modelcheck.Explore.metrics.Modelcheck.Explore.peak_visited);
  Alcotest.(check bool) "violation samples identical" true
    (viol_sig r = viol_sig u);
  Alcotest.(check string) "undo run is labelled undo" "undo"
    u.Modelcheck.Explore.metrics.Modelcheck.Explore.engine;
  u

let test_undo_engine_drw () =
  ignore
    (check_undo_matches_replay
       ~mk:(fun () -> Test_support.mk_drw ~n:2 ())
       ~workloads:[| [ Spec.write_op (i 1); Spec.read_op ]; [ Spec.write_op (i 2) ] |]
       ~switches:2 ~crashes:1 ())

let test_undo_engine_dcas () =
  ignore
    (check_undo_matches_replay
       ~mk:(fun () -> Test_support.mk_dcas ~n:2 ())
       ~workloads:[| [ Spec.cas_op (i 0) (i 1) ]; [ Spec.cas_op (i 1) (i 0) ] |]
       ~switches:2 ~crashes:1 ())

let test_undo_engine_broken_violating () =
  (* on the broken baselines the agreement covers real violation sets *)
  let u =
    check_undo_matches_replay ~mk:mk_no_vec ~workloads:no_vec_workload
      ~switches:2 ~crashes:1 ()
  in
  Alcotest.(check bool) "no_vec violates" true
    (u.Modelcheck.Explore.total_violations > 0);
  Alcotest.(check bool) "undo engine rewinds" true
    (u.Modelcheck.Explore.metrics.Modelcheck.Explore.rewound_cells > 0);
  let u2 =
    check_undo_matches_replay ~mk:mk_reexec ~workloads:fig2_workload
      ~switches:2 ~crashes:1 ()
  in
  Alcotest.(check bool) "reexec violates" true
    (u2.Modelcheck.Explore.total_violations > 0)

let test_undo_engine_parallel () =
  ignore
    (check_undo_matches_replay ~domains:2 ~mk:mk_no_vec
       ~workloads:no_vec_workload ~switches:2 ~crashes:1 ())

(* --- the incremental lin-checker agrees with the batch reference ---

   Same contract as undo-vs-replay: the checker engine must not change
   ANY externally observable number, only the leaf-check cost. *)

let check_lin_engines_agree ~mk ~workloads ~switches ~crashes () =
  let cfg lin_engine =
    {
      Modelcheck.Explore.default_config with
      switch_budget = switches;
      crash_budget = crashes;
      lin_engine;
    }
  in
  let run e = Modelcheck.Explore.explore ~mk ~workloads (cfg e) in
  let b = run `Batch and inc = run `Incremental in
  let ck label f = Alcotest.(check int) label (f b) (f inc) in
  ck "executions" (fun o -> o.Modelcheck.Explore.executions);
  ck "truncated" (fun o -> o.Modelcheck.Explore.truncated);
  ck "nodes" (fun o -> o.Modelcheck.Explore.nodes);
  ck "total_violations" (fun o -> o.Modelcheck.Explore.total_violations);
  ck "distinct_shared_configs"
    (fun o -> o.Modelcheck.Explore.distinct_shared_configs);
  ck "leaf_checks"
    (fun o -> o.Modelcheck.Explore.metrics.Modelcheck.Explore.leaf_checks);
  ck "lin_events_total"
    (fun o -> o.Modelcheck.Explore.metrics.Modelcheck.Explore.lin_events_total);
  Alcotest.(check bool) "violation samples identical" true
    (viol_sig b = viol_sig inc);
  Alcotest.(check string) "batch run labelled batch" "batch"
    b.Modelcheck.Explore.metrics.Modelcheck.Explore.lin_engine;
  Alcotest.(check string) "incremental run labelled incremental" "incremental"
    inc.Modelcheck.Explore.metrics.Modelcheck.Explore.lin_engine;
  (* only the incremental engine skips re-pushing shared prefixes *)
  let pushed (o : Modelcheck.Explore.outcome) =
    o.Modelcheck.Explore.metrics.Modelcheck.Explore.lin_events_pushed
  in
  Alcotest.(check bool) "incremental pushes fewer (or equal) events" true
    (pushed inc <= pushed b);
  Alcotest.(check bool) "incremental reuse measured" true
    (inc.Modelcheck.Explore.metrics.Modelcheck.Explore.lin_reuse_rate >= 0.0);
  Alcotest.(check bool) "frontier histogram populated" true
    (inc.Modelcheck.Explore.metrics.Modelcheck.Explore.frontier_hist <> []);
  inc

let test_lin_engines_agree_drw () =
  let inc =
    check_lin_engines_agree
      ~mk:(fun () -> Test_support.mk_drw ~n:2 ())
      ~workloads:
        [| [ Spec.write_op (i 1); Spec.read_op ]; [ Spec.write_op (i 2) ] |]
      ~switches:2 ~crashes:1 ()
  in
  Alcotest.(check bool) "frontier actually reused" true
    (inc.Modelcheck.Explore.metrics.Modelcheck.Explore.lin_reuse_rate > 0.0)

let test_lin_engines_agree_broken () =
  (* on a violating object the parity covers real violation messages *)
  let inc =
    check_lin_engines_agree ~mk:mk_no_vec ~workloads:no_vec_workload
      ~switches:2 ~crashes:1 ()
  in
  Alcotest.(check bool) "violations present" true
    (inc.Modelcheck.Explore.total_violations > 0)

let prop_undo_replay_random_workloads =
  (* engine equivalence over randomly generated cas workloads on the
     ablated (violating) object — each seed is a fresh property case *)
  QCheck.Test.make ~name:"undo = replay on random workloads" ~count:12
    QCheck.small_nat (fun seed ->
      let workloads =
        Workload.cas
          (Dtc_util.Prng.create (seed + 1))
          ~procs:2 ~ops_per_proc:2 ~values:2
      in
      let cfg engine =
        {
          Modelcheck.Explore.default_config with
          switch_budget = 2;
          crash_budget = 1;
          engine;
        }
      in
      let run e = Modelcheck.Explore.explore ~mk:mk_no_vec ~workloads (cfg e) in
      let r = run `Replay and u = run `Undo in
      r.Modelcheck.Explore.executions = u.Modelcheck.Explore.executions
      && r.Modelcheck.Explore.truncated = u.Modelcheck.Explore.truncated
      && r.Modelcheck.Explore.nodes = u.Modelcheck.Explore.nodes
      && r.Modelcheck.Explore.total_violations
         = u.Modelcheck.Explore.total_violations
      && r.Modelcheck.Explore.distinct_shared_configs
         = u.Modelcheck.Explore.distinct_shared_configs
      && viol_sig r = viol_sig u)

let test_metrics_sanity () =
  let out =
    Modelcheck.Explore.explore
      ~mk:(fun () -> Test_support.mk_dcas ~n:2 ())
      ~workloads:[| [ Spec.cas_op (i 0) (i 1) ]; [ Spec.cas_op (i 0) (i 2) ] |]
      { Modelcheck.Explore.default_config with switch_budget = 1 }
  in
  let m = out.Modelcheck.Explore.metrics in
  Alcotest.(check bool) "visited set populated" true
    (m.Modelcheck.Explore.peak_visited > 0);
  Alcotest.(check bool) "throughput measured" true
    (m.Modelcheck.Explore.nodes_per_sec > 0.0);
  Alcotest.(check bool) "elapsed measured" true
    (m.Modelcheck.Explore.elapsed_s >= 0.0);
  Alcotest.(check int) "sequential run reports one domain" 1
    m.Modelcheck.Explore.domains_used;
  (* the depth histogram accounts for every replayed node exactly once *)
  Alcotest.(check int) "depth histogram sums to nodes"
    out.Modelcheck.Explore.nodes
    (List.fold_left
       (fun acc (_, n) -> acc + n)
       0 m.Modelcheck.Explore.replay_depth_hist);
  (* histogram is sorted by depth with no duplicate buckets *)
  let depths = List.map fst m.Modelcheck.Explore.replay_depth_hist in
  Alcotest.(check bool) "histogram sorted" true
    (depths = List.sort_uniq compare depths)

let suites =
  [
    ( "modelcheck.explore",
      [
        Alcotest.test_case "deterministic replay" `Quick
          test_deterministic_replay;
        Alcotest.test_case "switch budget monotone" `Quick
          test_switch_budget_monotone;
        Alcotest.test_case "crash budget zero" `Quick
          test_crash_budget_zero_means_no_crash;
        Alcotest.test_case "configs up to equivalence" `Quick
          test_configs_counted_up_to_equivalence;
        Alcotest.test_case "crash_points coverage" `Quick
          test_crash_points_covers_all;
        Alcotest.test_case "violation sample" `Quick
          test_violation_reports_schedule;
        Alcotest.test_case "engines agree (dcas_no_vec)" `Quick
          test_engines_agree_no_vec;
        Alcotest.test_case "engines agree (rw_no_aux_reexec)" `Quick
          test_engines_agree_reexec;
        Alcotest.test_case "undo = replay (drw)" `Quick test_undo_engine_drw;
        Alcotest.test_case "undo = replay (dcas)" `Quick test_undo_engine_dcas;
        Alcotest.test_case "undo = replay (broken, violating)" `Quick
          test_undo_engine_broken_violating;
        Alcotest.test_case "undo = replay (parallel)" `Quick
          test_undo_engine_parallel;
        Alcotest.test_case "lin engines agree (drw)" `Quick
          test_lin_engines_agree_drw;
        Alcotest.test_case "lin engines agree (broken, violating)" `Quick
          test_lin_engines_agree_broken;
        QCheck_alcotest.to_alcotest prop_undo_replay_random_workloads;
        Alcotest.test_case "metrics sanity" `Quick test_metrics_sanity;
      ] );
  ]
