(* Tests for Nvm.Mem and Nvm.Cache: the store, snapshots,
   memory-equivalence, footprint accounting and the shared-cache layer. *)

open Nvm

let v = Test_support.value_testable
let i n = Value.Int n

let test_alloc_read_write () =
  let m = Mem.create () in
  let a = Mem.alloc m ~name:"a" ~kind:Loc.Shared (i 1) in
  let b = Mem.alloc m ~name:"b" ~kind:(Loc.Private 0) Value.Bot in
  Alcotest.check v "init a" (i 1) (Mem.read m a);
  Alcotest.check v "init b" Value.Bot (Mem.read m b);
  Mem.write m a (i 5);
  Alcotest.check v "after write" (i 5) (Mem.read m a);
  Alcotest.(check int) "n_locs" 2 (Mem.n_locs m)

let test_many_allocs () =
  (* force internal growth past the initial capacity *)
  let m = Mem.create () in
  let locs =
    List.init 200 (fun k ->
        Mem.alloc m ~name:(Printf.sprintf "x%d" k) ~kind:Loc.Shared (i k))
  in
  List.iteri
    (fun k loc -> Alcotest.check v "kept value" (i k) (Mem.read m loc))
    locs

let test_cas () =
  let m = Mem.create () in
  let a = Mem.alloc m ~name:"a" ~kind:Loc.Shared (i 0) in
  Alcotest.(check bool) "cas hits" true (Mem.cas m a (i 0) (i 1));
  Alcotest.(check bool) "cas misses" false (Mem.cas m a (i 0) (i 2));
  Alcotest.check v "value" (i 1) (Mem.read m a)

let test_faa () =
  let m = Mem.create () in
  let a = Mem.alloc m ~name:"a" ~kind:Loc.Shared (i 10) in
  Alcotest.(check int) "returns old" 10 (Mem.faa m a 5);
  Alcotest.(check int) "added" 15 (Value.to_int (Mem.read m a));
  Alcotest.(check int) "negative delta" 15 (Mem.faa m a (-3));
  Alcotest.(check int) "subtracted" 12 (Value.to_int (Mem.read m a))

let test_reset () =
  let m = Mem.create () in
  let a = Mem.alloc m ~name:"a" ~kind:Loc.Shared (i 1) in
  Mem.write m a (i 99);
  Mem.reset m;
  Alcotest.check v "back to init" (i 1) (Mem.read m a)

let test_snapshot_restore () =
  let m = Mem.create () in
  let a = Mem.alloc m ~name:"a" ~kind:Loc.Shared (i 1) in
  let snap = Mem.snapshot m in
  Mem.write m a (i 2);
  Mem.restore m snap;
  Alcotest.check v "restored" (i 1) (Mem.read m a)

let test_restore_rolls_back_max_bits () =
  (* Regression: [restore] used to put values back but leave the per-location
     high-water marks at whatever the abandoned branch drove them to, so a
     model-checking replay that explored a wide write first would inflate
     [max_shared_bits] for every sibling branch explored after it. *)
  let m = Mem.create () in
  let a = Mem.alloc m ~name:"a" ~kind:Loc.Shared (i 1) in
  let snap = Mem.snapshot m in
  Alcotest.(check int) "baseline high-water" 1 (Mem.max_shared_bits m);
  Mem.write m a (i 255);
  Alcotest.(check int) "wide write raises it" 8 (Mem.max_shared_bits m);
  Mem.restore m snap;
  Alcotest.(check int) "restore rolls it back" 1 (Mem.max_shared_bits m);
  Alcotest.(check int) "per-loc mark rolls back too" 1 (Mem.max_bits_of m a);
  (* and a snapshot taken *after* the wide write must preserve the mark *)
  Mem.write m a (i 255);
  let snap8 = Mem.snapshot m in
  Mem.restore m snap;
  Alcotest.(check int) "dropped again" 1 (Mem.max_shared_bits m);
  Mem.restore m snap8;
  Alcotest.(check int) "snapshot carries its own mark" 8
    (Mem.max_shared_bits m)

let test_equal_shared_ignores_private () =
  let mk () =
    let m = Mem.create () in
    let a = Mem.alloc m ~name:"a" ~kind:Loc.Shared (i 1) in
    let p = Mem.alloc m ~name:"p" ~kind:(Loc.Private 0) (i 0) in
    (m, a, p)
  in
  let m1, _, p1 = mk () in
  let m2, a2, _ = mk () in
  Mem.write m1 p1 (i 42);
  Alcotest.(check bool) "private differences invisible" true
    (Mem.equal_shared (Mem.snapshot m1) (Mem.snapshot m2));
  Alcotest.(check int) "hash agrees" (Mem.hash_shared (Mem.snapshot m1))
    (Mem.hash_shared (Mem.snapshot m2));
  Mem.write m2 a2 (i 7);
  Alcotest.(check bool) "shared differences visible" false
    (Mem.equal_shared (Mem.snapshot m1) (Mem.snapshot m2));
  Alcotest.(check bool) "equal_full sees private" false
    (Mem.equal_full (Mem.snapshot m1) (Mem.snapshot m2))

let test_footprint () =
  let m = Mem.create () in
  let a = Mem.alloc m ~name:"a" ~kind:Loc.Shared (i 1) in
  let _p = Mem.alloc m ~name:"p" ~kind:(Loc.Private 0) (i 1023) in
  Alcotest.(check int) "shared bits exclude private" 1 (Mem.shared_bits m);
  Mem.write m a (i 255);
  Alcotest.(check int) "current" 8 (Mem.shared_bits m);
  Mem.write m a (i 0);
  Alcotest.(check int) "current drops" 1 (Mem.shared_bits m);
  Alcotest.(check int) "high-water sticks" 8 (Mem.max_shared_bits m);
  Alcotest.(check int) "per-loc max" 8 (Mem.max_bits_of m a)

let test_foreign_loc_rejected () =
  let m1 = Mem.create () in
  let m2 = Mem.create () in
  let a1 = Mem.alloc m1 ~name:"a" ~kind:Loc.Shared (i 1) in
  ignore (Mem.alloc m2 ~name:"b" ~kind:Loc.Shared (i 1));
  (* same id exists in m2, so read succeeds; an out-of-range id must not *)
  let ghost = Mem.alloc m1 ~name:"g" ~kind:Loc.Shared (i 2) in
  (match Mem.read m2 ghost with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for out-of-range loc");
  ignore a1

(* --- Cache (shared-cache model) --- *)

let test_cache_read_through () =
  let m = Mem.create () in
  let a = Mem.alloc m ~name:"a" ~kind:Loc.Shared (i 1) in
  let c = Cache.create m in
  Alcotest.check v "reads backing" (i 1) (Cache.read c a)

let test_cache_write_not_persistent () =
  let m = Mem.create () in
  let a = Mem.alloc m ~name:"a" ~kind:Loc.Shared (i 1) in
  let c = Cache.create m in
  Cache.write c a (i 2);
  Alcotest.check v "cache sees new" (i 2) (Cache.read c a);
  Alcotest.check v "NVM sees old" (i 1) (Mem.read m a);
  Cache.persist c a;
  Alcotest.check v "persist writes back" (i 2) (Mem.read m a)

let test_cache_crash_drops () =
  let m = Mem.create () in
  let a = Mem.alloc m ~name:"a" ~kind:Loc.Shared (i 1) in
  let b = Mem.alloc m ~name:"b" ~kind:Loc.Shared (i 1) in
  let c = Cache.create m in
  Cache.write c a (i 2);
  Cache.write c b (i 3);
  (* adversarial: keep only [b] *)
  Cache.crash c ~keep:(fun loc -> loc == b);
  Alcotest.check v "a lost" (i 1) (Mem.read m a);
  Alcotest.check v "b survived" (i 3) (Mem.read m b);
  Alcotest.check v "cache empty after crash" (i 1) (Cache.read c a)

let test_cache_cas_faa () =
  let m = Mem.create () in
  let a = Mem.alloc m ~name:"a" ~kind:Loc.Shared (i 0) in
  let c = Cache.create m in
  Alcotest.(check bool) "cas via cache" true (Cache.cas c a (i 0) (i 1));
  Alcotest.(check bool) "cas sees cache" false (Cache.cas c a (i 0) (i 2));
  Alcotest.(check int) "faa via cache" 1 (Cache.faa c a 4);
  Alcotest.check v "NVM untouched" (i 0) (Mem.read m a);
  Cache.persist_all c;
  Alcotest.check v "fence persists" (i 5) (Mem.read m a)

let test_cache_dirty_tracking () =
  let m = Mem.create () in
  let a = Mem.alloc m ~name:"a" ~kind:Loc.Shared (i 0) in
  let b = Mem.alloc m ~name:"b" ~kind:Loc.Shared (i 0) in
  let c = Cache.create m in
  Alcotest.(check int) "clean" 0 (List.length (Cache.dirty_locs c));
  Cache.write c a (i 1);
  Cache.write c b (i 2);
  Alcotest.(check int) "two dirty" 2 (List.length (Cache.dirty_locs c));
  Cache.persist c a;
  Alcotest.(check int) "one dirty" 1 (List.length (Cache.dirty_locs c))

(* the dirty-set checkpoint token must not depend on hash-table
   iteration order: two caches holding the same dirty state — built by
   writing in different orders — produce structurally equal [entries],
   in allocation-id order (a Hashtbl.fold here once made the undo
   engine's snapshots order-nondeterministic) *)
let test_cache_entries_deterministic () =
  let m = Mem.create () in
  let locs =
    Array.init 8 (fun k ->
        Mem.alloc m ~name:(Printf.sprintf "e%d" k) ~kind:Loc.Shared (i 0))
  in
  let c1 = Cache.create m and c2 = Cache.create m in
  Array.iteri (fun k loc -> Cache.write c1 loc (i (100 + k))) locs;
  List.iter
    (fun k -> Cache.write c2 locs.(k) (i (100 + k)))
    [ 5; 2; 7; 0; 3; 6; 1; 4 ];
  let ids entries = List.map (fun ((l : Loc.t), _) -> l.Loc.id) entries in
  Alcotest.(check (list int))
    "same dirty state, same entries" (ids (Cache.entries c1))
    (ids (Cache.entries c2));
  Alcotest.(check bool) "values agree too" true
    (List.for_all2
       (fun (_, a) (_, b) -> Value.equal a b)
       (Cache.entries c1) (Cache.entries c2));
  Alcotest.(check (list int))
    "ascending allocation ids"
    (List.sort compare (ids (Cache.entries c1)))
    (ids (Cache.entries c1))

(* --- fault-model crashes --- *)

let test_crash_faulted_atomic_keeps_all () =
  let m = Mem.create () in
  let a = Mem.alloc m ~name:"a" ~kind:Loc.Shared (i 1) in
  let b = Mem.alloc m ~name:"b" ~kind:Loc.Shared (i 1) in
  let c = Cache.create m in
  Cache.write c a (i 2);
  Cache.write c b (i 3);
  let p1 = Dtc_util.Prng.create 77 and p2 = Dtc_util.Prng.create 77 in
  Cache.crash_faulted c ~fault:Fault_model.Atomic ~prng:p1;
  Alcotest.check v "a persisted" (i 2) (Mem.read m a);
  Alcotest.check v "b persisted" (i 3) (Mem.read m b);
  (* atomic must consume no randomness: the prng is still in step with
     an untouched twin *)
  Alcotest.(check int64) "no draws consumed"
    (Dtc_util.Prng.next_int64 p2) (Dtc_util.Prng.next_int64 p1)

let test_crash_faulted_drop_extremes () =
  let mk () =
    let m = Mem.create () in
    let a = Mem.alloc m ~name:"a" ~kind:Loc.Shared (i 1) in
    let b = Mem.alloc m ~name:"b" ~kind:Loc.Shared (i 1) in
    let c = Cache.create m in
    Cache.write c a (i 2);
    Cache.write c b (i 3);
    (m, a, b, c)
  in
  let m, a, b, c = mk () in
  Cache.crash_faulted c
    ~fault:(Fault_model.Drop { keep_prob = 0.0 })
    ~prng:(Dtc_util.Prng.create 1);
  Alcotest.check v "keep=0 drops a" (i 1) (Mem.read m a);
  Alcotest.check v "keep=0 drops b" (i 1) (Mem.read m b);
  let m, a, b, c = mk () in
  Cache.crash_faulted c
    ~fault:(Fault_model.Drop { keep_prob = 1.0 })
    ~prng:(Dtc_util.Prng.create 1);
  Alcotest.check v "keep=1 keeps a" (i 2) (Mem.read m a);
  Alcotest.check v "keep=1 keeps b" (i 3) (Mem.read m b)

let test_crash_faulted_deterministic () =
  (* same dirty set + same prng seed => identical NVM image, for every
     model; across seeds, each line ends up holding either its old or
     its new value, never anything else *)
  let image fault seed =
    let m = Mem.create () in
    let locs =
      Array.init 6 (fun k ->
          Mem.alloc m ~name:(Printf.sprintf "l%d" k) ~kind:Loc.Shared (i k))
    in
    let c = Cache.create m in
    Array.iteri (fun k loc -> Cache.write c loc (i (100 + k))) locs;
    Cache.crash_faulted c ~fault ~prng:(Dtc_util.Prng.create seed);
    Array.to_list (Array.map (Mem.read m) locs)
  in
  List.iter
    (fun fault ->
      List.iter
        (fun seed ->
          Alcotest.(check bool)
            "replayable" true
            (image fault seed = image fault seed);
          List.iteri
            (fun k value ->
              if
                (not (Value.equal value (i k)))
                && not (Value.equal value (i (100 + k)))
              then Alcotest.failf "line %d holds neither old nor new value" k)
            (image fault seed))
        [ 1; 2; 3; 42 ])
    [
      Fault_model.Drop { keep_prob = 0.5 };
      Fault_model.Reorder;
      Fault_model.Torn { granularity = 1 };
    ]

let test_crash_faulted_torn_tears_tuples () =
  (* with a dirty composite value, torn persistence can commit some
     components of the new tuple and lose others; every component is
     individually old-or-new, and some seed exhibits a genuine mix *)
  let run seed =
    let m = Mem.create () in
    let a =
      Mem.alloc m ~name:"t" ~kind:Loc.Shared
        (Value.Tup [| i 0; i 0; i 0; i 0 |])
    in
    let c = Cache.create m in
    Cache.write c a (Value.Tup [| i 1; i 1; i 1; i 1 |]);
    Cache.crash_faulted c
      ~fault:(Fault_model.Torn { granularity = 1 })
      ~prng:(Dtc_util.Prng.create seed);
    match Mem.read m a with
    | Value.Tup parts ->
        Array.iter
          (fun p ->
            if not (Value.equal p (i 0) || Value.equal p (i 1)) then
              Alcotest.fail "torn component is neither old nor new")
          parts;
        let news =
          Array.fold_left
            (fun acc p -> if Value.equal p (i 1) then acc + 1 else acc)
            0 parts
        in
        news
    | _ -> Alcotest.fail "tuple shape lost"
  in
  let mixes =
    List.filter
      (fun seed ->
        let n = run seed in
        n > 0 && n < 4)
      (List.init 32 (fun s -> s + 1))
  in
  Alcotest.(check bool) "some seed tears the tuple mid-way" true (mixes <> [])

(* --- write journal (the undo engine's substrate) --- *)

let test_mark_rewind_basic () =
  let m = Mem.create () in
  let a = Mem.alloc m ~name:"a" ~kind:Loc.Shared (i 0) in
  let b = Mem.alloc m ~name:"b" ~kind:Loc.Shared (i 10) in
  Mem.set_journal m true;
  let mk = Mem.mark m in
  Mem.write m a (i 5);
  Alcotest.(check bool) "cas journals too" true (Mem.cas m a (i 5) (i 6));
  Alcotest.(check int) "faa journals too" 10 (Mem.faa m b 7);
  Alcotest.(check bool) "journal grew" true (Mem.journal_depth m > 0);
  Mem.rewind m mk;
  Alcotest.check v "a restored" (i 0) (Mem.read m a);
  Alcotest.check v "b restored" (i 10) (Mem.read m b);
  Alcotest.(check int) "journal back to the mark" 0 (Mem.journal_depth m);
  Alcotest.(check bool) "restorations counted" true (Mem.rewound_cells m >= 3)

let test_rewind_restores_max_bits () =
  (* The journal must roll back the per-location high-water marks along
     with the contents — the same stale-accounting class of bug that
     [restore] had before bf9564b, now on the incremental path. *)
  let m = Mem.create () in
  let a = Mem.alloc m ~name:"a" ~kind:Loc.Shared (i 1) in
  Mem.set_journal m true;
  let mk = Mem.mark m in
  Alcotest.(check int) "baseline high-water" 1 (Mem.max_shared_bits m);
  Mem.write m a (i 255);
  Alcotest.(check int) "wide write raises it" 8 (Mem.max_shared_bits m);
  Mem.rewind m mk;
  Alcotest.(check int) "rewind rolls it back" 1 (Mem.max_shared_bits m);
  Alcotest.(check int) "per-loc mark rolls back too" 1 (Mem.max_bits_of m a);
  (* marks are positions, not snapshots: a mark taken after the wide
     write keeps the raised mark through deeper rewinds *)
  Mem.write m a (i 255);
  let mk8 = Mem.mark m in
  Mem.write m a (i 0);
  Mem.rewind m mk8;
  Alcotest.(check int) "inner rewind keeps the raised mark" 8
    (Mem.max_shared_bits m)

let test_journal_discipline () =
  let m = Mem.create () in
  let a = Mem.alloc m ~name:"a" ~kind:Loc.Shared (i 0) in
  (match Mem.mark m with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mark must require journaling");
  Mem.set_journal m true;
  let mk = Mem.mark m in
  Mem.write m a (i 1);
  let inner = Mem.mark m in
  Mem.rewind m mk;
  (* [inner] is now deeper than the log: stale, must be rejected *)
  (match Mem.rewind m inner with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "stale (non-LIFO) mark must be rejected");
  (* allocations since a mark make it unrewindable *)
  let mk2 = Mem.mark m in
  ignore (Mem.alloc m ~name:"late" ~kind:Loc.Shared (i 0));
  (match Mem.rewind m mk2 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "rewinding past an allocation must be rejected");
  (* turning the journal off invalidates everything *)
  Mem.set_journal m false;
  match Mem.rewind m mk with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "rewind must require journaling"

let prop_mark_rewind_roundtrip =
  QCheck.Test.make ~name:"mark/rewind roundtrip (values + max_bits)"
    ~count:Test_support.qcheck_count
    QCheck.(
      pair
        (list (pair (int_bound 9) small_signed_int))
        (list (pair (int_bound 9) small_signed_int)))
    (fun (before, after) ->
      let m = Mem.create () in
      let locs =
        Array.init 10 (fun k ->
            Mem.alloc m ~name:(Printf.sprintf "l%d" k) ~kind:Loc.Shared (i 0))
      in
      Mem.set_journal m true;
      List.iter (fun (k, x) -> Mem.write m locs.(k) (i x)) before;
      let reference = Mem.snapshot m in
      let max_bits_ref = Mem.max_shared_bits m in
      let mk = Mem.mark m in
      List.iter (fun (k, x) -> Mem.write m locs.(k) (i x)) after;
      Mem.rewind m mk;
      Mem.equal_full (Mem.snapshot m) reference
      && Mem.max_shared_bits m = max_bits_ref)

let prop_snapshot_roundtrip =
  QCheck.Test.make ~name:"snapshot/restore roundtrip"
    ~count:Test_support.qcheck_count
    QCheck.(list (pair (int_bound 9) small_signed_int))
    (fun writes ->
      let m = Mem.create () in
      let locs =
        Array.init 10 (fun k ->
            Mem.alloc m ~name:(Printf.sprintf "l%d" k) ~kind:Loc.Shared (i 0))
      in
      let snap0 = Mem.snapshot m in
      List.iter (fun (k, x) -> Mem.write m locs.(k) (i x)) writes;
      let snap1 = Mem.snapshot m in
      Mem.restore m snap0;
      let back0 = Mem.equal_full (Mem.snapshot m) snap0 in
      Mem.restore m snap1;
      let back1 = Mem.equal_full (Mem.snapshot m) snap1 in
      back0 && back1)

(* --- arena/journal growth discipline (ISSUE 8) ------------------- *)

(* the cell arena grows by doubling from any starting capacity; growth
   must be invisible to reads, initial values and space accounting *)
let test_arena_growth_from_one () =
  let m = Mem.create ~capacity:1 () in
  let locs =
    List.init 150 (fun k ->
        Mem.alloc m ~name:(Printf.sprintf "g%d" k) ~kind:Loc.Shared (i k))
  in
  Alcotest.(check int) "n_locs" 150 (Mem.n_locs m);
  List.iteri
    (fun k loc ->
      Alcotest.check v "kept value" (i k) (Mem.read m loc);
      Alcotest.(check bool) "loc_by_id inverse" true (Mem.loc_by_id m k == loc))
    locs;
  Mem.reset m;
  List.iteri
    (fun k loc -> Alcotest.check v "reset to init" (i k) (Mem.read m loc))
    locs

(* mark/rewind round-trips byte-identically across the journal's
   capacity-doubling boundaries: values, high-water marks and the live
   fingerprint accumulators must all come back *)
let prop_journal_growth_roundtrip =
  QCheck.Test.make
    ~name:"mark/rewind roundtrip across journal growth boundaries"
    ~count:Test_support.qcheck_count
    QCheck.(pair (int_bound 300) (int_bound 300))
    (fun (n_before, n_after) ->
      (* capacity:1 forces the cell arena to double during allocation;
         the journal arrays start empty and double under the writes *)
      let m = Mem.create ~capacity:1 () in
      let locs =
        Array.init 7 (fun k ->
            Mem.alloc m ~name:(Printf.sprintf "l%d" k) ~kind:Loc.Shared (i 0))
      in
      let prng = Dtc_util.Prng.create 99 in
      let mutate step =
        let k = Dtc_util.Prng.int prng 7 in
        let x = Dtc_util.Prng.int prng 1024 in
        match step mod 3 with
        | 0 -> Mem.write m locs.(k) (i x)
        | 1 ->
            let cur = Mem.read m locs.(k) in
            ignore (Mem.cas m locs.(k) cur (i x) : bool)
        | _ -> ignore (Mem.faa m locs.(k) (x - 512) : int)
      in
      Mem.set_journal m true;
      for s = 1 to n_before do mutate s done;
      let reference = Mem.snapshot m in
      let bits_ref = Mem.max_shared_bits m in
      let fa_ref, fb_ref = Mem.live_fingerprint_full m in
      let mk = Mem.mark m in
      for s = 1 to n_after do mutate s done;
      Mem.rewind m mk;
      Mem.equal_full (Mem.snapshot m) reference
      && Mem.max_shared_bits m = bits_ref
      && Mem.live_fingerprint_full m = (fa_ref, fb_ref))

(* the incremental (journal-on) fingerprint accumulators must agree with
   the journal-off full scan, and with the snapshot digest, at any point
   in any mutation history *)
let prop_live_fingerprint_consistent =
  QCheck.Test.make
    ~name:"live fingerprints: accumulators = scan = snapshot digest"
    ~count:Test_support.qcheck_count
    QCheck.(list (pair (int_bound 9) small_signed_int))
    (fun writes ->
      let m = Mem.create ~capacity:2 () in
      let locs =
        Array.init 10 (fun k ->
            let kind = if k mod 3 = 2 then Loc.Private 0 else Loc.Shared in
            Mem.alloc m ~name:(Printf.sprintf "l%d" k) ~kind (i 0))
      in
      Mem.set_journal m true;
      List.iter (fun (k, x) -> Mem.write m locs.(k) (i x)) writes;
      let live_shared = Mem.live_fingerprint_shared m in
      let live_full = (Mem.live_full_a m, Mem.live_full_b m) in
      let snap_shared = Mem.fingerprint_shared (Mem.snapshot m) in
      (* dropping the journal switches the live reads to the scan path
         without touching contents *)
      Mem.set_journal m false;
      Mem.live_fingerprint_shared m = live_shared
      && Mem.live_fingerprint_full m = live_full
      && live_shared = snap_shared)

let suites =
  [
    ( "nvm.mem",
      [
        Alcotest.test_case "alloc/read/write" `Quick test_alloc_read_write;
        Alcotest.test_case "growth" `Quick test_many_allocs;
        Alcotest.test_case "cas" `Quick test_cas;
        Alcotest.test_case "faa" `Quick test_faa;
        Alcotest.test_case "reset" `Quick test_reset;
        Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
        Alcotest.test_case "restore rolls back footprint high-water" `Quick
          test_restore_rolls_back_max_bits;
        Alcotest.test_case "memory-equivalence" `Quick
          test_equal_shared_ignores_private;
        Alcotest.test_case "footprint accounting" `Quick test_footprint;
        Alcotest.test_case "foreign loc rejected" `Quick
          test_foreign_loc_rejected;
        Alcotest.test_case "journal mark/rewind" `Quick test_mark_rewind_basic;
        Alcotest.test_case "rewind restores max_bits high-water" `Quick
          test_rewind_restores_max_bits;
        Alcotest.test_case "journal mark discipline" `Quick
          test_journal_discipline;
        QCheck_alcotest.to_alcotest prop_mark_rewind_roundtrip;
        QCheck_alcotest.to_alcotest prop_snapshot_roundtrip;
        Alcotest.test_case "arena growth from capacity 1" `Quick
          test_arena_growth_from_one;
        QCheck_alcotest.to_alcotest prop_journal_growth_roundtrip;
        QCheck_alcotest.to_alcotest prop_live_fingerprint_consistent;
      ] );
    ( "nvm.cache",
      [
        Alcotest.test_case "read-through" `Quick test_cache_read_through;
        Alcotest.test_case "writes volatile until persist" `Quick
          test_cache_write_not_persistent;
        Alcotest.test_case "crash write-back mask" `Quick test_cache_crash_drops;
        Alcotest.test_case "cas/faa in cache" `Quick test_cache_cas_faa;
        Alcotest.test_case "dirty tracking" `Quick test_cache_dirty_tracking;
        Alcotest.test_case "entries deterministic (id-sorted)" `Quick
          test_cache_entries_deterministic;
        Alcotest.test_case "faulted crash: atomic keeps all, draw-free"
          `Quick test_crash_faulted_atomic_keeps_all;
        Alcotest.test_case "faulted crash: drop extremes" `Quick
          test_crash_faulted_drop_extremes;
        Alcotest.test_case "faulted crash: deterministic, old-or-new" `Quick
          test_crash_faulted_deterministic;
        Alcotest.test_case "faulted crash: torn tears tuples" `Quick
          test_crash_faulted_torn_tears_tuples;
      ] );
  ]
