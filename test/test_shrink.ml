(* Tests for the counterexample minimiser. *)

open Nvm
open History

let i n = Value.Int n

let mk_no_vec () =
  let m = Runtime.Machine.create () in
  (m, Baselines.Broken.dcas_no_vec m ~n:2 ~init:(i 0))

let workloads = [| [ Spec.cas_op (i 0) (i 1) ]; [ Spec.cas_op (i 1) (i 0) ] |]

let find_violation () =
  let out =
    Modelcheck.Explore.explore ~mk:mk_no_vec ~workloads
      Modelcheck.Explore.default_config
  in
  match out.Modelcheck.Explore.violations with
  | v :: _ -> v
  | [] -> Alcotest.fail "expected the ablation to violate"

let test_minimise_shrinks () =
  let v = find_violation () in
  match
    Modelcheck.Shrink.minimise ~mk:mk_no_vec ~workloads
      v.Modelcheck.Explore.decisions
  with
  | None -> Alcotest.fail "original violation did not reproduce"
  | Some r ->
      Alcotest.(check bool) "no longer than the original" true
        (List.length r.Modelcheck.Shrink.decisions
        <= List.length v.Modelcheck.Explore.decisions);
      Alcotest.(check bool) "still mentions a violation" true
        (String.length r.Modelcheck.Shrink.msg > 0);
      (* 1-minimality: deleting any single remaining decision loses the
         violation *)
      let n = List.length r.Modelcheck.Shrink.decisions in
      for k = 0 to n - 1 do
        let candidate =
          List.filteri (fun idx _ -> idx <> k) r.Modelcheck.Shrink.decisions
        in
        match Modelcheck.Shrink.reproduces ~mk:mk_no_vec ~workloads candidate with
        | Some _ -> Alcotest.failf "deleting decision %d still violates" k
        | None -> ()
      done

let test_minimised_still_reproduces () =
  let v = find_violation () in
  match
    Modelcheck.Shrink.minimise ~mk:mk_no_vec ~workloads
      v.Modelcheck.Explore.decisions
  with
  | None -> Alcotest.fail "did not reproduce"
  | Some r -> (
      match
        Modelcheck.Shrink.reproduces ~mk:mk_no_vec ~workloads
          r.Modelcheck.Shrink.decisions
      with
      | Some _ -> ()
      | None -> Alcotest.fail "minimised sequence does not reproduce")

let test_reproduces_none_for_correct_object () =
  (* an arbitrary schedule against the real Dcas yields no violation *)
  let mk () = Test_support.mk_dcas ~n:2 () in
  let decisions =
    [
      Modelcheck.Explore.Step 0;
      Modelcheck.Explore.Step 1;
      Modelcheck.Explore.Crash;
      Modelcheck.Explore.Step 0;
      Modelcheck.Explore.Step 1;
    ]
  in
  match Modelcheck.Shrink.reproduces ~mk ~workloads decisions with
  | None -> ()
  | Some (_, msg) -> Alcotest.failf "unexpected violation: %s" msg

let test_minimise_none_for_correct_object () =
  let mk () = Test_support.mk_dcas ~n:2 () in
  match Modelcheck.Shrink.minimise ~mk ~workloads [ Modelcheck.Explore.Crash ] with
  | None -> ()
  | Some _ -> Alcotest.fail "minimise invented a violation"

let test_tolerant_replay_skips_dead_steps () =
  (* steps of finished processes are skipped, not errors *)
  let mk () = Test_support.mk_dcas ~n:2 () in
  let decisions = List.init 200 (fun _ -> Modelcheck.Explore.Step 0) in
  match Modelcheck.Shrink.reproduces ~mk ~workloads decisions with
  | None -> ()
  | Some (_, msg) -> Alcotest.failf "unexpected violation: %s" msg

let test_engine_parity () =
  (* the undo-substrate shrinker tries the same candidates in the same
     order as the replay one, so every field of the result — including
     the number of physical attempts — must be identical *)
  let v = find_violation () in
  let run engine =
    Modelcheck.Shrink.minimise ~mk:mk_no_vec ~workloads ~engine
      v.Modelcheck.Explore.decisions
  in
  match (run `Replay, run `Undo) with
  | Some r, Some u ->
      Alcotest.(check bool) "same minimised decisions" true
        (r.Modelcheck.Shrink.decisions = u.Modelcheck.Shrink.decisions);
      Alcotest.(check string) "same message" r.Modelcheck.Shrink.msg
        u.Modelcheck.Shrink.msg;
      Alcotest.(check bool) "same history" true
        (r.Modelcheck.Shrink.history = u.Modelcheck.Shrink.history);
      Alcotest.(check int) "same attempts" r.Modelcheck.Shrink.attempts
        u.Modelcheck.Shrink.attempts
  | _ -> Alcotest.fail "engines disagree on reproducibility"

let test_lin_engine_parity () =
  (* the shadowing incremental lin-session must judge every shrink
     candidate exactly as the batch checker does, on both substrates —
     rewind-heavy traffic by construction, since the shrinker rewinds
     the session across every rejected candidate *)
  let v = find_violation () in
  let run engine lin_engine =
    Modelcheck.Shrink.minimise ~mk:mk_no_vec ~workloads ~engine ~lin_engine
      v.Modelcheck.Explore.decisions
  in
  List.iter
    (fun engine ->
      match (run engine `Batch, run engine `Incremental) with
      | Some b, Some inc ->
          Alcotest.(check bool) "same minimised decisions" true
            (b.Modelcheck.Shrink.decisions = inc.Modelcheck.Shrink.decisions);
          Alcotest.(check string) "same message" b.Modelcheck.Shrink.msg
            inc.Modelcheck.Shrink.msg;
          Alcotest.(check int) "same attempts" b.Modelcheck.Shrink.attempts
            inc.Modelcheck.Shrink.attempts
      | _ -> Alcotest.fail "lin engines disagree on reproducibility")
    [ `Replay; `Undo ]

let test_undo_refuses_non_repro () =
  let mk () = Test_support.mk_dcas ~n:2 () in
  match
    Modelcheck.Shrink.minimise ~mk ~workloads ~engine:`Undo
      [ Modelcheck.Explore.Crash ]
  with
  | None -> ()
  | Some _ -> Alcotest.fail "undo minimise invented a violation"

let suites =
  [
    ( "modelcheck.shrink",
      [
        Alcotest.test_case "minimise shrinks to 1-minimal" `Quick
          test_minimise_shrinks;
        Alcotest.test_case "minimised reproduces" `Quick
          test_minimised_still_reproduces;
        Alcotest.test_case "no violation for correct object" `Quick
          test_reproduces_none_for_correct_object;
        Alcotest.test_case "minimise refuses non-repro" `Quick
          test_minimise_none_for_correct_object;
        Alcotest.test_case "tolerant replay" `Quick
          test_tolerant_replay_skips_dead_steps;
        Alcotest.test_case "undo = replay engine parity" `Quick
          test_engine_parity;
        Alcotest.test_case "undo refuses non-repro" `Quick
          test_undo_refuses_non_repro;
        Alcotest.test_case "lin engine parity (both substrates)" `Quick
          test_lin_engine_parity;
      ] );
  ]
