(* Tests for the Session/Driver protocol: event bookkeeping, crash
   handling, verdict stability, policies, schedulers and crash plans. *)

open Nvm
open History
open Sched

let i n = Value.Int n

let test_driver_sequential () =
  let machine, inst = Test_support.mk_drw ~n:1 () in
  let res =
    Driver.run machine inst
      ~workloads:[| [ Spec.write_op (i 4); Spec.read_op ] |]
      Driver.default_config
  in
  Alcotest.(check int) "no crashes" 0 res.crashes;
  Alcotest.(check bool) "complete" false res.incomplete;
  Alcotest.(check int) "4 events" 4 (List.length res.history);
  Test_support.assert_ok inst res ~ctx:"sequential"

let test_driver_step_budget () =
  let machine, inst = Test_support.mk_drw ~n:1 () in
  let cfg = { Driver.default_config with max_steps = 3 } in
  let res =
    Driver.run machine inst ~workloads:[| [ Spec.write_op (i 4) ] |] cfg
  in
  Alcotest.(check bool) "flagged incomplete" true res.incomplete;
  Alcotest.(check int) "stopped at budget" 3 res.steps

let test_session_runnable_and_steps () =
  let machine, inst = Test_support.mk_dcas ~n:2 () in
  let session =
    Session.create machine inst
      ~workloads:[| [ Spec.read_op ]; [ Spec.read_op ] |]
  in
  Alcotest.(check (list int)) "both runnable" [ 0; 1 ] (Session.runnable session);
  Session.step session 0;
  Alcotest.(check int) "one step" 1 (Session.steps session);
  (* drive everything *)
  let rec drain () =
    match Session.runnable session with
    | [] -> ()
    | pid :: _ ->
        Session.step session pid;
        drain ()
  in
  drain ();
  Alcotest.(check bool) "finished" true (Session.finished session)

let test_session_step_not_runnable () =
  let machine, inst = Test_support.mk_dcas ~n:1 () in
  let session = Session.create machine inst ~workloads:[| [] |] in
  match Session.step session 0 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "stepping a finished process must fail"

let test_crash_restarts_all () =
  let machine, inst = Test_support.mk_drw ~n:2 () in
  let session =
    Session.create machine inst
      ~workloads:[| [ Spec.write_op (i 1) ]; [ Spec.write_op (i 2) ] |]
  in
  Session.step session 0;
  Session.step session 0;
  Session.crash session ~keep:(fun _ -> true);
  Alcotest.(check int) "one crash" 1 (Session.crashes session);
  Alcotest.(check bool) "crash event recorded" true
    (List.mem Event.Crash (Session.history session));
  (* both processes must be alive again (recovery or fresh client) *)
  Alcotest.(check (list int)) "both restarted" [ 0; 1 ]
    (Session.runnable session)

(* Verdict stability: no operation instance ever gets two outcome events,
   no matter how many crashes strike. *)
let test_verdict_stability () =
  for seed = 1 to 60 do
    let prng = Dtc_util.Prng.create seed in
    let machine, inst = Test_support.mk_drw ~n:3 () in
    let workloads =
      Workload.register (Dtc_util.Prng.split prng) ~procs:3 ~ops_per_proc:3
        ~values:3
    in
    let cfg =
      {
        Driver.schedule = Schedule.random (Dtc_util.Prng.split prng);
        crash_plan =
          Crash_plan.random ~max_crashes:4 ~prob:0.1 (Dtc_util.Prng.split prng);
        policy = Session.Retry;
        max_steps = 20_000;
      }
    in
    let res = Driver.run machine inst ~workloads cfg in
    Hashtbl.iter
      (fun uid count ->
        if count > 1 then
          Alcotest.failf "seed %d: op #%d has %d outcomes@.%a" seed uid count
            Event.pp_history res.history)
      (Test_support.outcomes_per_uid res.history)
  done

(* With Give_up, a failed operation is skipped: the number of Rec_fail
   events for distinct uids equals the number of abandoned ops. *)
let test_giveup_skips () =
  (* Crash p0 exactly at its first step: the write cannot have started,
     recovery must fail, Give_up abandons it. *)
  let machine, inst = Test_support.mk_drw ~n:1 () in
  let cfg =
    {
      Driver.default_config with
      policy = Session.Give_up;
      crash_plan = Crash_plan.at_steps [ 1 ];
    }
  in
  let res =
    Driver.run machine inst
      ~workloads:[| [ Spec.write_op (i 1); Spec.read_op ] |]
      cfg
  in
  Test_support.assert_ok inst res ~ctx:"giveup";
  (* the read must still have completed *)
  let reads =
    List.filter
      (function
        | Event.Ret { v; _ } -> not (Value.equal v Spec.ack) | _ -> false)
      res.history
  in
  Alcotest.(check bool) "a read completed" true (List.length reads >= 1)

let test_retry_reinvokes () =
  let machine, inst = Test_support.mk_drw ~n:1 () in
  let cfg =
    {
      Driver.default_config with
      policy = Session.Retry;
      crash_plan = Crash_plan.at_steps [ 1 ];
    }
  in
  let res =
    Driver.run machine inst ~workloads:[| [ Spec.write_op (i 1) ] |] cfg
  in
  Test_support.assert_ok inst res ~ctx:"retry";
  (* the retried write appears as a second instance and completes *)
  let invs =
    List.length
      (List.filter (function Event.Inv _ -> true | _ -> false) res.history)
  in
  let rets =
    List.length
      (List.filter (function Event.Ret _ -> true | _ -> false) res.history)
  in
  Alcotest.(check bool) "second instance invoked" true (invs >= 2);
  Alcotest.(check bool) "eventually completed" true (rets >= 1)

(* --- schedulers --- *)

let test_round_robin_cycles () =
  let s = Schedule.round_robin () in
  let picks = List.init 6 (fun k -> s.Schedule.choose ~runnable:[ 0; 1; 2 ] ~step:k) in
  Alcotest.(check (list int)) "cycle" [ 0; 1; 2; 0; 1; 2 ] picks

let test_round_robin_skips_dead () =
  let s = Schedule.round_robin () in
  let a = s.Schedule.choose ~runnable:[ 1; 3 ] ~step:0 in
  let b = s.Schedule.choose ~runnable:[ 1; 3 ] ~step:1 in
  let c = s.Schedule.choose ~runnable:[ 1; 3 ] ~step:2 in
  Alcotest.(check (list int)) "skips" [ 1; 3; 1 ] [ a; b; c ]

let test_scripted () =
  let s = Schedule.scripted [ 2; 2; 0 ] in
  Alcotest.(check int) "first" 2 (s.Schedule.choose ~runnable:[ 0; 1; 2 ] ~step:0);
  Alcotest.(check int) "second" 2 (s.Schedule.choose ~runnable:[ 0; 1; 2 ] ~step:1);
  (* 0 not runnable: falls through to head of runnable *)
  Alcotest.(check int) "skips non-runnable" 1
    (s.Schedule.choose ~runnable:[ 1; 2 ] ~step:2);
  (* script exhausted *)
  Alcotest.(check int) "fallback" 1 (s.Schedule.choose ~runnable:[ 1; 2 ] ~step:3)

let test_solo () =
  let s = Schedule.solo 1 in
  Alcotest.(check int) "prefers 1" 1 (s.Schedule.choose ~runnable:[ 0; 1 ] ~step:0);
  Alcotest.(check int) "falls back" 0 (s.Schedule.choose ~runnable:[ 0; 2 ] ~step:1)

let test_random_schedule_picks_runnable () =
  let prng = Dtc_util.Prng.create 5 in
  let s = Schedule.random prng in
  for step = 0 to 100 do
    let runnable = [ 1; 4; 7 ] in
    let p = s.Schedule.choose ~runnable ~step in
    if not (List.mem p runnable) then Alcotest.fail "picked non-runnable"
  done

(* --- crash plans --- *)

let test_at_steps_fires_once () =
  let plan = Crash_plan.at_steps [ 5 ] in
  let fired = ref 0 in
  for step = 0 to 10 do
    if plan.Crash_plan.should_crash ~step then incr fired
  done;
  Alcotest.(check int) "once" 1 !fired

(* duplicate entries are distinct crash events: [at_steps [4; 4]] fires
   on two consecutive consults (a sort_uniq here once silently dropped
   the second crash) *)
let test_at_steps_duplicates_fire_twice () =
  let plan = Crash_plan.at_steps [ 4; 4 ] in
  let fired = ref 0 in
  for step = 0 to 10 do
    if plan.Crash_plan.should_crash ~step then incr fired
  done;
  Alcotest.(check int) "both duplicates fire" 2 !fired

let test_random_plan_capped () =
  let prng = Dtc_util.Prng.create 9 in
  let plan = Crash_plan.random ~max_crashes:2 ~prob:1.0 prng in
  let fired = ref 0 in
  for step = 0 to 100 do
    if plan.Crash_plan.should_crash ~step then incr fired
  done;
  Alcotest.(check int) "capped" 2 !fired

let test_none_never_fires () =
  for step = 0 to 50 do
    if Crash_plan.none.Crash_plan.should_crash ~step then
      Alcotest.fail "none fired"
  done

(* --- workload generators --- *)

let test_workload_shapes () =
  let prng = Dtc_util.Prng.create 5 in
  let wl = Workload.register (Dtc_util.Prng.split prng) ~procs:4 ~ops_per_proc:6 ~values:3 in
  Alcotest.(check int) "procs" 4 (Array.length wl);
  Array.iter (fun ops -> Alcotest.(check int) "ops" 6 (List.length ops)) wl;
  Array.iter
    (List.iter (fun (o : Spec.op) ->
         match (o.Spec.name, o.Spec.args) with
         | "read", [||] -> ()
         | "write", [| Value.Int v |] ->
             Alcotest.(check bool) "value in range" true (v >= 0 && v < 3)
         | _ -> Alcotest.fail "unexpected op"))
    wl

let test_workload_faa_deltas_positive () =
  let prng = Dtc_util.Prng.create 6 in
  let wl = Workload.faa (Dtc_util.Prng.split prng) ~procs:3 ~ops_per_proc:10 ~max_delta:4 in
  Array.iter
    (List.iter (fun (o : Spec.op) ->
         match (o.Spec.name, o.Spec.args) with
         | "faa", [| Value.Int d |] ->
             Alcotest.(check bool) "delta in [1,4]" true (d >= 1 && d <= 4)
         | "read", [||] -> ()
         | _ -> Alcotest.fail "unexpected op"))
    wl

let test_workload_total_enqueues () =
  let wl =
    [|
      [ Spec.enq_op (i 1); Spec.deq_op; Spec.enq_op (i 2) ];
      [ Spec.deq_op ];
      [ Spec.enq_op (i 3) ];
    |]
  in
  Alcotest.(check int) "counts enqs" 3 (Workload.total_enqueues wl)

let test_workload_determinism () =
  let mk seed =
    Workload.queue (Dtc_util.Prng.create seed) ~procs:3 ~ops_per_proc:5 ~values:4
  in
  Alcotest.(check bool) "same seed, same workload" true (mk 42 = mk 42);
  Alcotest.(check bool) "different seeds differ" true (mk 42 <> mk 43)

(* --- undo-mode checkpointing --- *)

let undo_workloads =
  [| [ Spec.cas_op (i 0) (i 1) ]; [ Spec.cas_op (i 1) (i 0) ] |]

let test_undo_mark_rewind_roundtrip () =
  let machine, inst = Test_support.mk_dcas ~n:2 () in
  let session = Session.create ~undo:true machine inst ~workloads:undo_workloads in
  let fp () = Mem.live_fingerprint_full (Runtime.Machine.mem machine) in
  let dig0 = Session.state_digest session and fp0 = fp () in
  let runnable0 = Session.runnable session in
  let m = Session.mark session in
  (* advance through steps AND a crash (recovery restarts every fiber) *)
  Session.step session 0;
  Session.step session 1;
  Session.crash session ~keep:(fun _ -> true);
  (match Session.runnable session with
  | pid :: _ -> Session.step session pid
  | [] -> ());
  Alcotest.(check bool) "configuration moved" true
    (Session.state_digest session <> dig0 || fp () <> fp0);
  Session.rewind session m;
  Alcotest.(check int) "state digest restored" dig0
    (Session.state_digest session);
  Alcotest.(check bool) "memory fingerprint restored" true (fp () = fp0);
  Alcotest.(check (list int)) "runnable set restored" runnable0
    (Session.runnable session);
  Alcotest.(check int) "step counter restored" 0 (Session.steps session);
  Alcotest.(check int) "crash counter restored" 0 (Session.crashes session);
  Alcotest.(check int) "history restored" 2
    (List.length (Session.history session));
  (* the rolled-back configuration is live: ghost replay rebuilds the
     discarded fibers on demand and the run completes *)
  let rec drain () =
    match Session.runnable session with
    | [] -> ()
    | pid :: _ ->
        Session.step session pid;
        drain ()
  in
  drain ();
  Alcotest.(check bool) "finished after rewind" true (Session.finished session)

let test_undo_rewind_is_repeatable () =
  (* rewinding and re-running the same decisions must reproduce the same
     digest — the property the explorer's memoisation keys depend on *)
  let machine, inst = Test_support.mk_dcas ~n:2 () in
  let session = Session.create ~undo:true machine inst ~workloads:undo_workloads in
  let m = Session.mark session in
  let run () =
    Session.step session 0;
    Session.crash session ~keep:(fun _ -> true);
    (match Session.runnable session with
    | pid :: _ -> Session.step session pid
    | [] -> ());
    Session.state_digest session
  in
  let d1 = run () in
  Session.rewind session m;
  let d2 = run () in
  Alcotest.(check int) "same decisions, same digest" d1 d2

let test_mark_requires_undo_mode () =
  let machine, inst = Test_support.mk_dcas ~n:1 () in
  let session =
    Session.create machine inst ~workloads:[| [ Spec.read_op ] |]
  in
  match Session.mark session with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mark must require undo mode"

let suites =
  [
    ( "sched.driver",
      [
        Alcotest.test_case "sequential run" `Quick test_driver_sequential;
        Alcotest.test_case "step budget" `Quick test_driver_step_budget;
        Alcotest.test_case "giveup skips failed op" `Quick test_giveup_skips;
        Alcotest.test_case "retry re-invokes" `Quick test_retry_reinvokes;
      ] );
    ( "sched.session",
      [
        Alcotest.test_case "runnable/steps" `Quick test_session_runnable_and_steps;
        Alcotest.test_case "step not runnable rejected" `Quick
          test_session_step_not_runnable;
        Alcotest.test_case "crash restarts all" `Quick test_crash_restarts_all;
        Alcotest.test_case "verdict stability" `Slow test_verdict_stability;
        Alcotest.test_case "undo mark/rewind roundtrip" `Quick
          test_undo_mark_rewind_roundtrip;
        Alcotest.test_case "undo rewind repeatable" `Quick
          test_undo_rewind_is_repeatable;
        Alcotest.test_case "mark requires undo mode" `Quick
          test_mark_requires_undo_mode;
      ] );
    ( "sched.schedule",
      [
        Alcotest.test_case "round robin" `Quick test_round_robin_cycles;
        Alcotest.test_case "round robin skips" `Quick test_round_robin_skips_dead;
        Alcotest.test_case "scripted" `Quick test_scripted;
        Alcotest.test_case "solo" `Quick test_solo;
        Alcotest.test_case "random picks runnable" `Quick
          test_random_schedule_picks_runnable;
      ] );
    ( "sched.workload",
      [
        Alcotest.test_case "shapes and ranges" `Quick test_workload_shapes;
        Alcotest.test_case "faa deltas" `Quick test_workload_faa_deltas_positive;
        Alcotest.test_case "total enqueues" `Quick test_workload_total_enqueues;
        Alcotest.test_case "determinism" `Quick test_workload_determinism;
      ] );
    ( "sched.crash_plan",
      [
        Alcotest.test_case "at_steps once" `Quick test_at_steps_fires_once;
        Alcotest.test_case "at_steps duplicates fire twice" `Quick
          test_at_steps_duplicates_fire_twice;
        Alcotest.test_case "random capped" `Quick test_random_plan_capped;
        Alcotest.test_case "none" `Quick test_none_never_fires;
      ] );
  ]
