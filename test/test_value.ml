(* Tests for Nvm.Value: equality, ordering, hashing, bit accounting and
   tuple accessors. *)

open Nvm

let v = Test_support.value_testable

(* Generator for random values, depth-bounded. *)
let value_gen =
  let open QCheck.Gen in
  sized_size (int_bound 3) (fix (fun self n ->
      if n = 0 then
        oneof
          [
            return Value.Unit;
            return Value.Bot;
            map (fun b -> Value.Bool b) bool;
            map (fun i -> Value.Int i) small_signed_int;
            map (fun s -> Value.Str s) (string_size (int_bound 6));
          ]
      else
        frequency
          [
            (3, self 0);
            ( 1,
              map
                (fun xs -> Value.Tup (Array.of_list xs))
                (list_size (int_bound 4) (self (n - 1))) );
          ]))

let arb_value = QCheck.make ~print:Value.to_string value_gen

let test_equal_basic () =
  Alcotest.check v "int" (Value.Int 3) (Value.Int 3);
  Alcotest.(check bool) "int/bool differ" false
    (Value.equal (Value.Int 1) (Value.Bool true));
  Alcotest.(check bool) "tuples" true
    (Value.equal
       (Value.triple (Value.Int 1) (Value.Bool true) Value.Bot)
       (Value.triple (Value.Int 1) (Value.Bool true) Value.Bot));
  Alcotest.(check bool) "tuple length matters" false
    (Value.equal (Value.pair (Value.Int 1) (Value.Int 2)) (Value.Tup [| Value.Int 1 |]))

let test_bits () =
  Alcotest.(check int) "bool" 1 (Value.bits (Value.Bool true));
  Alcotest.(check int) "unit" 0 (Value.bits Value.Unit);
  Alcotest.(check int) "bot" 1 (Value.bits Value.Bot);
  Alcotest.(check int) "int 0" 1 (Value.bits (Value.Int 0));
  Alcotest.(check int) "int 1" 1 (Value.bits (Value.Int 1));
  Alcotest.(check int) "int 7" 3 (Value.bits (Value.Int 7));
  Alcotest.(check int) "int 8" 4 (Value.bits (Value.Int 8));
  Alcotest.(check int) "string" 24 (Value.bits (Value.Str "abc"));
  Alcotest.(check int) "tuple sums" 4
    (Value.bits (Value.pair (Value.Int 7) (Value.Bool false)))

let test_bool_vec () =
  let vec = Value.bool_vec 4 in
  Alcotest.(check int) "4 bits" 4 (Value.bits vec);
  for k = 0 to 3 do
    Alcotest.check v "all false" (Value.Bool false) (Value.nth vec k)
  done

let test_accessors () =
  Alcotest.(check int) "to_int" 42 (Value.to_int (Value.Int 42));
  Alcotest.(check bool) "to_bool" true (Value.to_bool (Value.Bool true));
  Alcotest.(check string) "to_str" "x" (Value.to_str (Value.Str "x"));
  let t = Value.triple (Value.Int 1) (Value.Int 2) (Value.Int 3) in
  Alcotest.check v "nth 1" (Value.Int 2) (Value.nth t 1);
  let t' = Value.set_nth t 1 (Value.Int 9) in
  Alcotest.check v "set_nth result" (Value.Int 9) (Value.nth t' 1);
  Alcotest.check v "set_nth preserves original" (Value.Int 2) (Value.nth t 1)

let test_accessor_errors () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> Value.to_int (Value.Bool true));
  expect_invalid (fun () -> Value.to_bool Value.Bot);
  expect_invalid (fun () -> Value.nth (Value.Int 1) 0);
  expect_invalid (fun () -> Value.nth (Value.pair Value.Bot Value.Bot) 5);
  expect_invalid (fun () -> Value.set_nth (Value.Int 1) 0 Value.Bot)

let prop_equal_refl =
  QCheck.Test.make ~name:"equal is reflexive" ~count:Test_support.qcheck_count
    arb_value (fun x -> Value.equal x x)

let prop_compare_consistent =
  QCheck.Test.make ~name:"compare = 0 iff equal"
    ~count:Test_support.qcheck_count
    QCheck.(pair arb_value arb_value)
    (fun (x, y) -> Value.equal x y = (Value.compare x y = 0))

let prop_compare_antisym =
  QCheck.Test.make ~name:"compare antisymmetric"
    ~count:Test_support.qcheck_count
    QCheck.(pair arb_value arb_value)
    (fun (x, y) -> Value.compare x y = -Value.compare y x)

let prop_hash_consistent =
  QCheck.Test.make ~name:"equal values hash equal"
    ~count:Test_support.qcheck_count
    QCheck.(pair arb_value arb_value)
    (fun (x, y) ->
      (not (Value.equal x y)) || Value.hash x = Value.hash y)

let prop_set_nth_roundtrip =
  QCheck.Test.make ~name:"set_nth/nth roundtrip"
    ~count:Test_support.qcheck_count
    QCheck.(triple arb_value (int_bound 3) arb_value)
    (fun (t, k, x) ->
      match t with
      | Value.Tup xs when k < Array.length xs ->
          Value.equal (Value.nth (Value.set_nth t k x) k) x
      | _ -> QCheck.assume_fail ())

(* --- hash-consing --- *)

let test_intern_canonical () =
  (* two structurally equal values built independently intern to the
     same physical node within a domain, so [==] certifies equality *)
  let x = Value.pair (Value.Int 3) (Value.Str "ab") in
  let y = Value.pair (Value.Int 3) (Value.Str "ab") in
  Alcotest.(check bool) "distinct nodes in" false (x == y);
  let hx = Value.intern x and hy = Value.intern y in
  Alcotest.(check bool) "same node out" true (hx == hy);
  Alcotest.(check bool) "hc_equal" true (Value.hc_equal hx hy);
  Alcotest.(check int) "cached hash" (Value.hash x) hx.Value.h;
  let hz = Value.intern (Value.pair (Value.Int 4) (Value.Str "ab")) in
  Alcotest.(check bool) "different values differ" false
    (Value.hc_equal hx hz)

let test_intern_stats_move () =
  let _, m0 = Value.intern_stats () in
  ignore (Value.intern (Value.Str "intern-stats-probe"));
  let h1, m1 = Value.intern_stats () in
  ignore (Value.intern (Value.Str "intern-stats-probe"));
  let h2, m2 = Value.intern_stats () in
  Alcotest.(check bool) "first sight is a miss" true (m1 > m0);
  Alcotest.(check int) "second sight is a hit" (h1 + 1) h2;
  Alcotest.(check int) "and not a miss" m1 m2

let prop_intern_respects_equal =
  QCheck.Test.make ~name:"intern canonical iff structurally equal"
    ~count:Test_support.qcheck_count
    QCheck.(pair arb_value arb_value)
    (fun (x, y) ->
      let hx = Value.intern x and hy = Value.intern y in
      Value.hc_equal hx hy = Value.equal x y
      && (hx == hy) = Value.equal x y)

let rec deep_copy = function
  | Value.Tup xs -> Value.Tup (Array.map deep_copy xs)
  | Value.Str s -> Value.Str (String.init (String.length s) (String.get s))
  | v -> v

let prop_intern_digests_fixed =
  QCheck.Test.make ~name:"interned digests are value-determined"
    ~count:Test_support.qcheck_count arb_value (fun x ->
      (* intern a physically distinct structural copy: the cached hash
         and fingerprint digests must depend only on the value *)
      let h1 = Value.intern x and h2 = Value.intern (deep_copy x) in
      h1 == h2
      && h1.Value.da = h2.Value.da
      && h1.Value.db = h2.Value.db
      && h1.Value.h = Value.hash x)

let prop_bits_nonneg =
  QCheck.Test.make ~name:"bits >= 0" ~count:Test_support.qcheck_count arb_value
    (fun x -> Value.bits x >= 0)

let suites =
  [
    ( "nvm.value",
      [
        Alcotest.test_case "equal basics" `Quick test_equal_basic;
        Alcotest.test_case "bit accounting" `Quick test_bits;
        Alcotest.test_case "bool_vec" `Quick test_bool_vec;
        Alcotest.test_case "accessors" `Quick test_accessors;
        Alcotest.test_case "accessor errors" `Quick test_accessor_errors;
        QCheck_alcotest.to_alcotest prop_equal_refl;
        QCheck_alcotest.to_alcotest prop_compare_consistent;
        QCheck_alcotest.to_alcotest prop_compare_antisym;
        QCheck_alcotest.to_alcotest prop_hash_consistent;
        QCheck_alcotest.to_alcotest prop_set_nth_roundtrip;
        QCheck_alcotest.to_alcotest prop_bits_nonneg;
        Alcotest.test_case "intern canonicalises" `Quick test_intern_canonical;
        Alcotest.test_case "intern hit/miss counters" `Quick
          test_intern_stats_move;
        QCheck_alcotest.to_alcotest prop_intern_respects_equal;
        QCheck_alcotest.to_alcotest prop_intern_digests_fixed;
      ] );
  ]
