(* Tests for the history utilities. *)

open Nvm
open History

let i n = Value.Int n
let inv pid uid op = Event.Inv { pid; uid; op }
let ret pid uid v = Event.Ret { pid; uid; v }
let rret pid uid v = Event.Rec_ret { pid; uid; v }
let rfail pid uid = Event.Rec_fail { pid; uid }

let sample =
  [
    inv 0 0 (Spec.write_op (i 1));
    inv 1 1 Spec.read_op;
    ret 1 1 (i 0);
    Event.Crash;
    rret 0 0 Spec.ack;
    inv 1 2 (Spec.write_op (i 2));
    Event.Crash;
    rfail 1 2;
    inv 0 3 Spec.read_op;
  ]

let test_ops () =
  let infos = Hist.ops sample in
  Alcotest.(check int) "four ops" 4 (List.length infos);
  let find uid = List.find (fun (o : Hist.op_info) -> o.uid = uid) infos in
  (match (find 0).outcome with
  | Hist.Recovered v -> Alcotest.check Test_support.value_testable "recovered" Spec.ack v
  | _ -> Alcotest.fail "uid 0 should be recovered");
  (match (find 1).outcome with
  | Hist.Completed v -> Alcotest.check Test_support.value_testable "completed" (i 0) v
  | _ -> Alcotest.fail "uid 1 should be completed");
  Alcotest.(check bool) "uid 2 failed" true ((find 2).outcome = Hist.Failed);
  Alcotest.(check bool) "uid 3 pending" true ((find 3).outcome = Hist.Pending)

let test_stats () =
  let s = Hist.stats sample in
  Alcotest.(check int) "invocations" 4 s.Hist.invocations;
  Alcotest.(check int) "completed" 1 s.Hist.completed;
  Alcotest.(check int) "recovered" 1 s.Hist.recovered;
  Alcotest.(check int) "failed" 1 s.Hist.failed;
  Alcotest.(check int) "pending" 1 s.Hist.pending;
  Alcotest.(check int) "crashes" 2 s.Hist.crashes

let test_by_pid () =
  let groups = Hist.by_pid sample in
  Alcotest.(check (list int)) "pids" [ 0; 1 ] (List.map fst groups);
  Alcotest.(check int) "p0 ops" 2 (List.length (List.assoc 0 groups));
  Alcotest.(check int) "p1 ops" 2 (List.length (List.assoc 1 groups))

let test_responses () =
  Alcotest.(check (list Test_support.value_testable))
    "in outcome order"
    [ i 0; Spec.ack ]
    (Hist.responses sample)

let test_project () =
  let p1 = Hist.project sample ~pid:1 in
  Alcotest.(check int) "p1 events (incl. crashes)" 6 (List.length p1);
  Alcotest.(check bool) "crashes kept" true (List.mem Event.Crash p1)

let test_well_formed () =
  Alcotest.(check bool) "sample ok" true (Hist.well_formed sample = Ok ());
  (match Hist.well_formed [ ret 0 9 Spec.ack ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown uid accepted");
  (match Hist.well_formed [ inv 0 0 Spec.read_op; inv 0 0 Spec.read_op ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate inv accepted");
  match
    Hist.well_formed [ inv 0 0 Spec.read_op; ret 0 0 (i 1); rfail 0 0 ]
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double outcome accepted"

(* property: stats of a genuine driver history add up *)
let prop_stats_consistent =
  QCheck.Test.make ~name:"stats partition the invocations" ~count:100
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let workloads =
        Sched.Workload.register (Dtc_util.Prng.create seed) ~procs:3
          ~ops_per_proc:3 ~values:2
      in
      let _, res =
        Test_support.run_one ~seed (Test_support.mk_drw ~n:3) workloads
      in
      let s = Hist.stats res.Sched.Driver.history in
      s.Hist.invocations
      = s.Hist.completed + s.Hist.recovered + s.Hist.failed + s.Hist.pending)

(* --- Bitset Small-path representation stability (ISSUE 8) ---------

   The checker's hot sets stay [Small] whenever the operands are: a
   [Small]/[Small] union or intersection must never promote to [Big],
   and when one operand already contains the other, the contained
   result must be the physical operand — no constructor at all. *)

let is_small = function Bitset.Small _ -> true | Bitset.Big _ -> false

let test_bitset_small_in_small_out () =
  let a = Bitset.set (Bitset.set Bitset.empty 3) 40 in
  let b = Bitset.set (Bitset.set Bitset.empty 3) 7 in
  Alcotest.(check bool) "operands are Small" true (is_small a && is_small b);
  let u = Bitset.union a b in
  Alcotest.(check bool) "Small/Small union stays Small" true (is_small u);
  Alcotest.(check bool) "Small/Small inter stays Small" true
    (is_small (Bitset.inter a b));
  List.iter
    (fun k ->
      Alcotest.(check bool) (Printf.sprintf "union has %d" k) true
        (Bitset.mem u k))
    [ 3; 7; 40 ];
  Alcotest.(check int) "union cardinal" 3 (Bitset.cardinal u);
  (* physical operand reuse when one side contains the other *)
  Alcotest.(check bool) "union t t == t" true (Bitset.union a a == a);
  Alcotest.(check bool) "union u a == u" true (Bitset.union u a == u);
  Alcotest.(check bool) "union a u == u" true (Bitset.union a u == u);
  Alcotest.(check bool) "inter u a == a" true (Bitset.inter u a == a);
  Alcotest.(check bool) "inter a u == a" true (Bitset.inter a u == a);
  (* boundary: index word_bits - 1 is the last Small index *)
  let top = Bitset.set Bitset.empty (Bitset.word_bits - 1) in
  Alcotest.(check bool) "last Small index stays Small" true (is_small top);
  Alcotest.(check bool) "index word_bits promotes to Big" false
    (is_small (Bitset.set Bitset.empty Bitset.word_bits));
  Alcotest.(check bool) "subset" true
    (Bitset.subset a u && Bitset.subset b u && not (Bitset.subset u a));
  Alcotest.(check bool) "equal reflexive" true
    (Bitset.equal u (Bitset.union a b))

(* the Small fast paths must not allocate: run each operation in a tight
   loop under Alloc_stats and require the total to stay far below one
   word per iteration.  A genuine per-iteration allocation costs at
   least 2 words/iter (a boxed block); the harness itself (snapshots,
   GC-sampling granularity) contributes a few hundred words total, so
   half a word per iteration separates the two regimes decisively. *)
let test_bitset_small_paths_allocation_free () =
  let a = Bitset.set (Bitset.set Bitset.empty 3) 40 in
  let b = Bitset.set Bitset.empty 3 in
  let u = Bitset.union a b in
  let iters = 10_000 in
  let budget = float_of_int iters /. 2.0 in
  let check_no_alloc what f =
    let (), d = Dtc_util.Alloc_stats.measure f in
    let words = Dtc_util.Alloc_stats.allocated_words d in
    if words > budget then
      Alcotest.failf "%s allocated %.0f words over %d iterations" what words
        iters
  in
  let sink_b = ref true and sink_i = ref 0 in
  check_no_alloc "union (operand reuse)" (fun () ->
      for _ = 1 to iters do
        sink_b := Bitset.union u a == u
      done);
  check_no_alloc "inter (operand reuse)" (fun () ->
      for _ = 1 to iters do
        sink_b := Bitset.inter u a == a
      done);
  check_no_alloc "subset" (fun () ->
      for _ = 1 to iters do
        sink_b := Bitset.subset b u
      done);
  check_no_alloc "equal" (fun () ->
      for _ = 1 to iters do
        sink_b := Bitset.equal a u
      done);
  let fold_step k acc = k + acc in
  check_no_alloc "fold" (fun () ->
      for _ = 1 to iters do
        sink_i := Bitset.fold fold_step u 0
      done);
  ignore (!sink_b : bool);
  Alcotest.(check int) "fold sums the members" (3 + 7 + 40)
    (Bitset.fold fold_step (Bitset.set u 7) 0)

let suites =
  [
    ( "history.hist",
      [
        Alcotest.test_case "ops" `Quick test_ops;
        Alcotest.test_case "stats" `Quick test_stats;
        Alcotest.test_case "by_pid" `Quick test_by_pid;
        Alcotest.test_case "responses" `Quick test_responses;
        Alcotest.test_case "project" `Quick test_project;
        Alcotest.test_case "well_formed" `Quick test_well_formed;
        QCheck_alcotest.to_alcotest prop_stats_consistent;
      ] );
    ( "history.bitset",
      [
        Alcotest.test_case "Small-in/Small-out" `Quick
          test_bitset_small_in_small_out;
        Alcotest.test_case "Small fast paths allocation-free" `Quick
          test_bitset_small_paths_allocation_free;
      ] );
  ]
