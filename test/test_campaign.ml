(* Tests for the multi-process campaign supervisor (lib/campaign).

   The test binary doubles as its own worker: when spawned as
   [test_main.exe campaign-worker OBJ ROOT LO HI HB FAULT] it runs
   {!Campaign.worker_main} on the named slice instead of the Alcotest
   suites (see the dispatch at the top of test_main.ml).  That keeps the
   supervisor tests hermetic — no dependency on detect_cli being built —
   while still exercising real processes, real pipes and real waitpid.

   The contract under test is the one the paper's determinism gives us
   for free: trial [i] is a pure function of [(spec, root_seed, i)], so
   whatever the supervisor has to do — rescue dead workers, SIGKILL hung
   ones, degrade parallelism, fall back in-process — the merged report
   must be byte-identical to a plain single-process {!Torture.run}. *)

open Sched

let dcas_spec () =
  Torture.default_spec_of ~label:"dcas"
    ~mk:(fun () -> Test_support.mk_dcas ~n:3 ())
    ~workloads_of_seed:(fun s ->
      Workload.cas (Dtc_util.Prng.create s) ~procs:3 ~ops_per_proc:3 ~values:2)
    ()

let broken_spec () =
  Torture.default_spec_of ~label:"broken-dcas-no-vec" ~crash_prob:0.15
    ~max_crashes:3
    ~mk:(fun () ->
      let m = Runtime.Machine.create () in
      (m, Baselines.Broken.dcas_no_vec m ~n:3 ~init:(Nvm.Value.Int 0)))
    ~workloads_of_seed:(fun s ->
      Workload.cas (Dtc_util.Prng.create s) ~procs:3 ~ops_per_proc:3 ~values:2)
    ()

let spec_of_name = function
  | "dcas" -> dcas_spec ()
  | "broken" -> broken_spec ()
  | o -> failwith ("campaign-worker: unknown test object " ^ o)

let name_of_spec (spec : Torture.spec) =
  match spec.Torture.label with
  | "dcas" -> "dcas"
  | "broken-dcas-no-vec" -> "broken"
  | l -> failwith ("no worker name for spec " ^ l)

let fault_to_string = function
  | Campaign.No_fault -> "none"
  | Campaign.Kill_after k -> Printf.sprintf "kill:%d" k
  | Campaign.Hang_after k -> Printf.sprintf "hang:%d" k

let fault_of_string s =
  match String.split_on_char ':' s with
  | [ "none" ] -> Campaign.No_fault
  | [ "kill"; k ] -> Campaign.Kill_after (int_of_string k)
  | [ "hang"; k ] -> Campaign.Hang_after (int_of_string k)
  | _ -> failwith ("campaign-worker: bad fault spec " ^ s)

(* the worker half: argv = [_; "campaign-worker"; OBJ; ROOT; LO; HI; HB;
   FAULT], dispatched from test_main before Alcotest sees argv *)
let worker_mode () =
  let obj = Sys.argv.(2) in
  let root_seed = int_of_string Sys.argv.(3) in
  let lo = int_of_string Sys.argv.(4) in
  let hi = int_of_string Sys.argv.(5) in
  let heartbeat_every = int_of_string Sys.argv.(6) in
  let fault = fault_of_string Sys.argv.(7) in
  Campaign.worker_main ~fault ~heartbeat_every ~root_seed ~lo ~hi
    (spec_of_name obj);
  exit 0

let run_campaign ?checkpoint ?resume ?(config = Campaign.default_config)
    ~root_seed ~trials spec =
  let obj = name_of_spec spec in
  let worker_argv ~lo ~hi ~fault =
    [|
      Sys.executable_name; "campaign-worker"; obj; string_of_int root_seed;
      string_of_int lo; string_of_int hi;
      string_of_int config.Campaign.heartbeat_every; fault_to_string fault;
    |]
  in
  Campaign.run ?checkpoint ?resume ~config ~worker_argv ~root_seed ~trials spec

(* fast supervisor settings: no backoff waits, tight heartbeats *)
let fast ?(workers = 2) ?chaos_plan ?(retry_budget = 3)
    ?(heartbeat_timeout = 30.0) () =
  {
    Campaign.default_config with
    Campaign.workers;
    heartbeat_every = 2;
    heartbeat_timeout;
    retry_budget;
    backoff_base = 0.0;
    backoff_cap = 0.0;
    chaos_plan;
  }

let body r = Torture.to_json ~timing:false r

(* --- clean supervision --- *)

let test_clean_campaign_matches_torture () =
  List.iter
    (fun mkspec ->
      let spec = mkspec () in
      let base = Torture.run ~root_seed:51 ~trials:36 spec in
      let r, c = run_campaign ~config:(fast ~workers:3 ()) ~root_seed:51
          ~trials:36 spec
      in
      Alcotest.(check string) "campaign = torture (byte-identical)" (body base)
        (body r);
      Alcotest.(check int) "one worker per range" 3 c.Campaign.workers_spawned;
      Alcotest.(check int) "no deaths" 0 c.Campaign.worker_deaths;
      Alcotest.(check int) "no rescues" 0 c.Campaign.rescues)
    [ dcas_spec; broken_spec ]

(* --- worker death at every trial index --- *)

(* kill the first spawn after [k] trials; the rescue respawn runs
   fault-free.  Sweeping k over every index of a single-worker campaign
   covers death before the first trial, between every pair of trials,
   and after the last one. *)
let kill_first_spawn_at k ~spawn ~range_len:_ =
  if spawn = 0 then Campaign.Kill_after k else Campaign.No_fault

let test_kill_at_every_index () =
  let spec = dcas_spec () in
  let trials = 10 in
  let base = body (Torture.run ~root_seed:77 ~trials spec) in
  for k = 0 to trials do
    let config = fast ~workers:1 ~chaos_plan:(kill_first_spawn_at k) () in
    let r, c = run_campaign ~config ~root_seed:77 ~trials spec in
    Alcotest.(check string)
      (Printf.sprintf "kill at trial %d: byte-identical" k)
      base (body r);
    if k < trials then begin
      Alcotest.(check bool)
        (Printf.sprintf "kill at trial %d: death recorded" k)
        true
        (c.Campaign.worker_deaths >= 1 && c.Campaign.rescues >= 1);
      Alcotest.(check bool)
        (Printf.sprintf "kill at trial %d: retry spawned" k)
        true (c.Campaign.retries >= 1)
    end
  done

(* the same as a property over random (kill index, parallelism) — and on
   the violating object, so rescue parity covers failure capture *)
let prop_kill_random =
  QCheck.Test.make ~name:"campaign: random kill schedule is invisible"
    ~count:6
    QCheck.(triple (int_range 0 16) (int_range 1 3) bool)
    (fun (k, workers, use_broken) ->
      let spec = if use_broken then broken_spec () else dcas_spec () in
      let trials = 16 in
      let base = body (Torture.run ~root_seed:5 ~trials spec) in
      let config = fast ~workers ~chaos_plan:(kill_first_spawn_at k) () in
      let r, _ = run_campaign ~config ~root_seed:5 ~trials spec in
      body r = base)

(* --- hang detection --- *)

let test_hang_detected_and_rescued () =
  let spec = dcas_spec () in
  let trials = 12 in
  let base = body (Torture.run ~root_seed:91 ~trials spec) in
  let plan ~spawn ~range_len:_ =
    if spawn = 0 then Campaign.Hang_after 3 else Campaign.No_fault
  in
  let config =
    fast ~workers:2 ~chaos_plan:plan ~heartbeat_timeout:0.4 ()
  in
  let r, c = run_campaign ~config ~root_seed:91 ~trials spec in
  Alcotest.(check string) "hang is invisible in the report" base (body r);
  Alcotest.(check bool) "hang detected" true (c.Campaign.worker_hangs >= 1);
  Alcotest.(check bool) "hung range rescued" true (c.Campaign.rescues >= 1)

(* --- graceful degradation down to the in-process fallback --- *)

let test_degradation_and_inproc_fallback () =
  let spec = dcas_spec () in
  let trials = 15 in
  let base = body (Torture.run ~root_seed:13 ~trials spec) in
  (* every spawn dies immediately and there are no retries: the
     supervisor must halve 4 -> 2 -> 1 and then finish in-process *)
  let plan ~spawn:_ ~range_len:_ = Campaign.Kill_after 0 in
  let config = fast ~workers:4 ~chaos_plan:plan ~retry_budget:0 () in
  let r, c = run_campaign ~config ~root_seed:13 ~trials spec in
  Alcotest.(check string) "fallback report byte-identical" base (body r);
  Alcotest.(check bool) "parallelism halved" true
    (c.Campaign.degradations >= 2);
  Alcotest.(check int) "every trial fell back in-process" trials
    c.Campaign.inproc_trials;
  Alcotest.(check bool) "deaths and rescues recorded" true
    (c.Campaign.worker_deaths >= 1 && c.Campaign.rescues >= 1)

(* --- checkpointing across engines --- *)

let with_temp_journal f =
  let path = Filename.temp_file "campaign-test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_lines path =
  let ic = open_in_bin path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let write_lines path lines =
  let oc = open_out_bin path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc

let string_contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* a campaign journal (trials + lifecycle events) truncated mid-stream —
   the supervisor crashed — must resume to the uninterrupted report,
   whether the resuming engine is another campaign or a plain
   single-process torture run; and vice versa for a torture journal *)
let test_campaign_checkpoint_resume () =
  let spec = dcas_spec () in
  let trials = 24 in
  let base = body (Torture.run ~root_seed:29 ~trials spec) in
  with_temp_journal (fun path ->
      let config = fast ~workers:2 ~chaos_plan:(kill_first_spawn_at 4) () in
      let r, _ =
        run_campaign ~checkpoint:path ~config ~root_seed:29 ~trials spec
      in
      Alcotest.(check string) "journaled chaos campaign byte-identical" base
        (body r);
      let lines = read_lines path in
      Alcotest.(check bool) "lifecycle events journaled" true
        (List.exists (fun l -> string_contains l {|"event"|}) lines);
      (* supervisor crash: keep the header and the first 10 stream lines *)
      write_lines path (List.filteri (fun i _ -> i < 11) lines);
      (* a plain torture run finishes the campaign's journal *)
      let cross =
        Torture.run ~root_seed:29 ~trials ~checkpoint:path ~resume:true spec
      in
      Alcotest.(check string) "torture resumes a campaign journal" base
        (body cross);
      (* the journal is now complete: a campaign resume re-runs nothing *)
      let r2, c2 =
        run_campaign ~checkpoint:path ~resume:true
          ~config:(fast ~workers:2 ()) ~root_seed:29 ~trials spec
      in
      Alcotest.(check string) "no-op campaign resume agrees" base (body r2);
      Alcotest.(check int) "nothing respawned" 0 c2.Campaign.workers_spawned)

let test_campaign_resumes_torture_journal () =
  let spec = dcas_spec () in
  let trials = 24 in
  let base = body (Torture.run ~root_seed:43 ~trials spec) in
  with_temp_journal (fun path ->
      ignore (Torture.run ~root_seed:43 ~trials ~checkpoint:path spec);
      let lines = read_lines path in
      write_lines path (List.filteri (fun i _ -> i < 9) lines);
      let r, c =
        run_campaign ~checkpoint:path ~resume:true
          ~config:(fast ~workers:2 ()) ~root_seed:43 ~trials spec
      in
      Alcotest.(check string) "campaign resumes a torture journal" base
        (body r);
      Alcotest.(check bool) "remaining range ran in workers" true
        (c.Campaign.workers_spawned >= 1))

(* --- chaos spec parsing (the --chaos CLI surface) --- *)

let test_chaos_of_string () =
  (match Campaign.chaos_of_string "kill=0.3,hang=0.1,seed=9" with
  | Ok c ->
      Alcotest.(check (float 1e-9)) "kill" 0.3 c.Campaign.kill_prob;
      Alcotest.(check (float 1e-9)) "hang" 0.1 c.Campaign.hang_prob;
      Alcotest.(check int) "seed" 9 c.Campaign.chaos_seed
  | Error m -> Alcotest.failf "parse failed: %s" m);
  (match Campaign.chaos_of_string "kill=1" with
  | Ok c -> Alcotest.(check (float 1e-9)) "bare kill" 1.0 c.Campaign.kill_prob
  | Error m -> Alcotest.failf "parse failed: %s" m);
  List.iter
    (fun s ->
      match Campaign.chaos_of_string s with
      | Ok _ -> Alcotest.failf "accepted invalid chaos spec %S" s
      | Error _ -> ())
    [ "kill=1.5"; "kill=0.8,hang=0.8"; "frob=1"; "kill=x"; "hang=-0.1" ];
  match Campaign.chaos_of_string (Campaign.chaos_to_string Campaign.no_chaos)
  with
  | Ok c -> Alcotest.(check bool) "round-trip" true (c = Campaign.no_chaos)
  | Error m -> Alcotest.failf "round-trip failed: %s" m

let suites =
  [
    ( "campaign.supervisor",
      [
        Alcotest.test_case "clean campaign = torture (clean + violating)"
          `Quick test_clean_campaign_matches_torture;
        Alcotest.test_case "worker killed at every trial index" `Quick
          test_kill_at_every_index;
        QCheck_alcotest.to_alcotest prop_kill_random;
        Alcotest.test_case "hung worker detected and rescued" `Quick
          test_hang_detected_and_rescued;
        Alcotest.test_case "degradation down to in-process fallback" `Quick
          test_degradation_and_inproc_fallback;
      ] );
    ( "campaign.checkpoint",
      [
        Alcotest.test_case "supervisor crash + resume byte-identical" `Quick
          test_campaign_checkpoint_resume;
        Alcotest.test_case "campaign resumes a torture journal" `Quick
          test_campaign_resumes_torture_journal;
      ] );
    ( "campaign.chaos-spec",
      [ Alcotest.test_case "chaos spec parsing" `Quick test_chaos_of_string ] );
  ]
