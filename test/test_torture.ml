(* Tests for the sharded, deterministic parallel crash-torture engine
   (lib/torture): the determinism contract (merged reports bit-identical
   across domain counts), report aggregation sanity, failure capture +
   schedule minimisation on a broken object, and the JSON rendering. *)

open Sched

let dcas_spec ?(policy = Session.Retry) () =
  Torture.default_spec_of ~label:"dcas" ~policy
    ~mk:(fun () -> Test_support.mk_dcas ~n:3 ())
    ~workloads_of_seed:(fun s ->
      Workload.cas (Dtc_util.Prng.create s) ~procs:3 ~ops_per_proc:3 ~values:2)
    ()

let broken_spec () =
  Torture.default_spec_of ~label:"broken-dcas-no-vec" ~crash_prob:0.15
    ~max_crashes:3
    ~mk:(fun () ->
      let m = Runtime.Machine.create () in
      (m, Baselines.Broken.dcas_no_vec m ~n:3 ~init:(Nvm.Value.Int 0)))
    ~workloads_of_seed:(fun s ->
      Workload.cas (Dtc_util.Prng.create s) ~procs:3 ~ops_per_proc:3 ~values:2)
    ()

(* The acceptance criterion: for a fixed root seed, the merged report is
   bit-identical whether the trials ran on 1 domain or 4.  [to_json
   ~timing:false] renders exactly the fields the contract covers, so
   string equality is the strongest possible check. *)
let test_domains_deterministic () =
  let spec = dcas_spec () in
  let r1 = Torture.run ~domains:1 ~root_seed:42 ~trials:60 spec in
  let r4 = Torture.run ~domains:4 ~root_seed:42 ~trials:60 spec in
  Alcotest.(check string)
    "domains 1 vs 4: identical merged reports"
    (Torture.to_json ~timing:false r1)
    (Torture.to_json ~timing:false r4);
  Alcotest.(check int) "domains recorded" 4 r4.Torture.domains_used

let test_rerun_deterministic () =
  let spec = dcas_spec () in
  let a = Torture.run ~root_seed:7 ~trials:40 spec in
  let b = Torture.run ~root_seed:7 ~trials:40 spec in
  Alcotest.(check string) "same seed, same report"
    (Torture.to_json ~timing:false a)
    (Torture.to_json ~timing:false b);
  let c = Torture.run ~root_seed:8 ~trials:40 spec in
  Alcotest.(check bool) "different seed, different report" true
    (Torture.to_json ~timing:false a <> Torture.to_json ~timing:false c)

let test_aggregation_sane () =
  let spec = dcas_spec () in
  let r = Torture.run ~root_seed:1 ~trials:50 spec in
  Alcotest.(check int) "every trial classified" 50
    (r.Torture.linearized + r.Torture.not_linearized + r.Torture.incomplete);
  Alcotest.(check int) "correct object: no violations" 0 r.Torture.not_linearized;
  Alcotest.(check bool) "crashes happened at 5% over 50 trials" true
    (r.Torture.crashes_injected > 0);
  Alcotest.(check int) "histogram totals match injected crashes"
    r.Torture.crashes_injected
    (List.fold_left (fun acc (_, n) -> acc + n) 0 r.Torture.crash_hist);
  Alcotest.(check bool) "steps distribution populated" true
    (r.Torture.steps.Torture.d_min > 0
    && r.Torture.steps.Torture.d_min <= r.Torture.steps.Torture.d_max
    && r.Torture.steps.Torture.d_total >= r.Torture.steps.Torture.d_max);
  Alcotest.(check bool) "space distribution populated" true
    (r.Torture.max_shared_bits.Torture.d_min > 0);
  Alcotest.(check bool) "no failure captured" true
    (r.Torture.first_failure = None)

let test_broken_object_fails_and_shrinks () =
  let r = Torture.run ~root_seed:1 ~trials:60 (broken_spec ()) in
  Alcotest.(check bool) "ablation violates" true (r.Torture.not_linearized > 0);
  match r.Torture.first_failure with
  | None -> Alcotest.fail "no first_failure despite violations"
  | Some f ->
      Alcotest.(check bool) "schedule captured" true (f.Torture.schedule <> []);
      Alcotest.(check bool) "failure message non-empty" true
        (String.length f.Torture.msg > 0);
      (match f.Torture.minimised with
      | Some ds ->
          Alcotest.(check bool) "minimised no longer than schedule" true
            (List.length ds <= List.length f.Torture.schedule);
          (* the minimised prefix must still reproduce under tolerant
             replay — the same contract Shrink promises *)
          let spec = broken_spec () in
          (match
             Modelcheck.Shrink.reproduces ~mk:spec.Torture.mk
               ~workloads:(spec.Torture.workloads_of_seed f.Torture.seed)
               ~policy:spec.Torture.policy
               ~max_steps:spec.Torture.max_steps ds
           with
          | Some _ -> ()
          | None -> Alcotest.fail "minimised schedule does not reproduce")
      | None ->
          (* tolerant replay can fail to reproduce a deeply random
             failure; the raw schedule must then still be reported *)
          ());
      (* first failure must be the lowest failing trial index: rerunning
         that single trial as a 1-trial campaign from the same stream is
         not possible (streams are root-indexed), but the index must be
         within range *)
      Alcotest.(check bool) "trial index in range" true
        (f.Torture.trial >= 0 && f.Torture.trial < 60)

let test_shrink_disabled () =
  let r = Torture.run ~root_seed:1 ~trials:60 ~shrink:false (broken_spec ()) in
  match r.Torture.first_failure with
  | None -> Alcotest.fail "no first_failure despite violations"
  | Some f ->
      Alcotest.(check bool) "no minimisation when disabled" true
        (f.Torture.minimised = None && f.Torture.shrink_attempts = 0)

let test_json_shape () =
  let r = Torture.run ~root_seed:3 ~trials:20 (dcas_spec ()) in
  let j = Torture.to_json r in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun marker ->
      if not (contains j marker) then
        Alcotest.failf "marker %S missing from JSON" marker)
    [
      {|"schema": "detectable-torture/v1"|}; {|"verdicts"|}; {|"recoveries"|};
      {|"crashes"|}; {|"histogram"|}; {|"steps"|}; {|"max_shared_bits"|};
      {|"first_failure"|}; {|"timing"|};
    ];
  Alcotest.(check bool) "timing:false omits the timing block" false
    (contains (Torture.to_json ~timing:false r) {|"timing"|})

(* The checker engine must be invisible in the merged report: batch and
   incremental campaigns over the same seed produce bit-identical JSON,
   on a clean object and on a violating one (where the parity covers the
   captured failure and its minimised schedule too). *)
let test_lin_engine_parity () =
  let with_engine mkspec lin_engine = { (mkspec ()) with Torture.lin_engine } in
  List.iter
    (fun mkspec ->
      let run e =
        Torture.run ~root_seed:11 ~trials:40 (with_engine mkspec e)
      in
      Alcotest.(check string)
        "batch vs incremental: identical merged reports"
        (Torture.to_json ~timing:false (run `Batch))
        (Torture.to_json ~timing:false (run `Incremental)))
    [ (fun () -> dcas_spec ()); broken_spec ]

let test_give_up_policy_runs () =
  let r = Torture.run ~root_seed:5 ~trials:30 (dcas_spec ~policy:Session.Give_up ()) in
  Alcotest.(check int) "give-up dcas stays correct" 0 r.Torture.not_linearized

let suites =
  [
    ( "torture.engine",
      [
        Alcotest.test_case "domains 1 = domains 4 (bit-identical)" `Quick
          test_domains_deterministic;
        Alcotest.test_case "rerun deterministic, seed-sensitive" `Quick
          test_rerun_deterministic;
        Alcotest.test_case "aggregation sane" `Quick test_aggregation_sane;
        Alcotest.test_case "broken object fails and shrinks" `Quick
          test_broken_object_fails_and_shrinks;
        Alcotest.test_case "shrink disabled" `Quick test_shrink_disabled;
        Alcotest.test_case "json shape" `Quick test_json_shape;
        Alcotest.test_case "give-up policy" `Quick test_give_up_policy_runs;
        Alcotest.test_case "lin engine parity (clean + violating)" `Quick
          test_lin_engine_parity;
      ] );
  ]
