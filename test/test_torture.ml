(* Tests for the sharded, deterministic parallel crash-torture engine
   (lib/torture): the determinism contract (merged reports bit-identical
   across domain counts), report aggregation sanity, failure capture +
   schedule minimisation on a broken object, and the JSON rendering. *)

open Sched

let dcas_spec ?(policy = Session.Retry) () =
  Torture.default_spec_of ~label:"dcas" ~policy
    ~mk:(fun () -> Test_support.mk_dcas ~n:3 ())
    ~workloads_of_seed:(fun s ->
      Workload.cas (Dtc_util.Prng.create s) ~procs:3 ~ops_per_proc:3 ~values:2)
    ()

let broken_spec () =
  Torture.default_spec_of ~label:"broken-dcas-no-vec" ~crash_prob:0.15
    ~max_crashes:3
    ~mk:(fun () ->
      let m = Runtime.Machine.create () in
      (m, Baselines.Broken.dcas_no_vec m ~n:3 ~init:(Nvm.Value.Int 0)))
    ~workloads_of_seed:(fun s ->
      Workload.cas (Dtc_util.Prng.create s) ~procs:3 ~ops_per_proc:3 ~values:2)
    ()

(* The acceptance criterion: for a fixed root seed, the merged report is
   bit-identical whether the trials ran on 1 domain or 4.  [to_json
   ~timing:false] renders exactly the fields the contract covers, so
   string equality is the strongest possible check. *)
let test_domains_deterministic () =
  let spec = dcas_spec () in
  let r1 = Torture.run ~domains:1 ~root_seed:42 ~trials:60 spec in
  let r4 = Torture.run ~domains:4 ~root_seed:42 ~trials:60 spec in
  Alcotest.(check string)
    "domains 1 vs 4: identical merged reports"
    (Torture.to_json ~timing:false r1)
    (Torture.to_json ~timing:false r4);
  Alcotest.(check int) "domains recorded" 4 r4.Torture.domains_used

let test_rerun_deterministic () =
  let spec = dcas_spec () in
  let a = Torture.run ~root_seed:7 ~trials:40 spec in
  let b = Torture.run ~root_seed:7 ~trials:40 spec in
  Alcotest.(check string) "same seed, same report"
    (Torture.to_json ~timing:false a)
    (Torture.to_json ~timing:false b);
  let c = Torture.run ~root_seed:8 ~trials:40 spec in
  Alcotest.(check bool) "different seed, different report" true
    (Torture.to_json ~timing:false a <> Torture.to_json ~timing:false c)

(* Scratch-reuse regression (ISSUE 8): each worker domain now creates
   one [Session.make_scratch] and recycles it across every trial of its
   shard.  At [domains = trials] each scratch serves exactly one trial
   (effectively the old fresh-tables-per-trial behaviour); at
   [domains = 1] a single scratch is reused for all of them.  Byte-equal
   reports prove the recycled hash tables leak no state between trials —
   on a clean object and on a violating one (where failure capture and
   shrinking also run through the scratch). *)
let test_scratch_reuse_deterministic () =
  List.iter
    (fun mkspec ->
      let spec = mkspec () in
      let fresh = Torture.run ~domains:24 ~root_seed:13 ~trials:24 spec in
      let reused = Torture.run ~domains:1 ~root_seed:13 ~trials:24 spec in
      Alcotest.(check string)
        "one scratch per trial vs one scratch for all: identical reports"
        (Torture.to_json ~timing:false fresh)
        (Torture.to_json ~timing:false reused);
      Alcotest.(check bool) "allocation metered" true
        (reused.Torture.bytes_per_trial > 0.0))
    [ (fun () -> dcas_spec ()); broken_spec ]

let classified (r : Torture.report) =
  r.Torture.linearized + r.Torture.not_linearized + r.Torture.incomplete
  + r.Torture.budget_exhausted + r.Torture.engine_faults

let test_aggregation_sane () =
  let spec = dcas_spec () in
  let r = Torture.run ~root_seed:1 ~trials:50 spec in
  Alcotest.(check int) "every trial classified" 50 (classified r);
  Alcotest.(check int) "correct object: no violations" 0 r.Torture.not_linearized;
  Alcotest.(check bool) "crashes happened at 5% over 50 trials" true
    (r.Torture.crashes_injected > 0);
  Alcotest.(check int) "histogram totals match injected crashes"
    r.Torture.crashes_injected
    (List.fold_left (fun acc (_, n) -> acc + n) 0 r.Torture.crash_hist);
  Alcotest.(check bool) "steps distribution populated" true
    (r.Torture.steps.Torture.d_min > 0
    && r.Torture.steps.Torture.d_min <= r.Torture.steps.Torture.d_max
    && r.Torture.steps.Torture.d_total >= r.Torture.steps.Torture.d_max);
  Alcotest.(check bool) "space distribution populated" true
    (r.Torture.max_shared_bits.Torture.d_min > 0);
  Alcotest.(check bool) "no failure captured" true
    (r.Torture.first_failure = None)

let test_broken_object_fails_and_shrinks () =
  let r = Torture.run ~root_seed:1 ~trials:60 (broken_spec ()) in
  Alcotest.(check bool) "ablation violates" true (r.Torture.not_linearized > 0);
  match r.Torture.first_failure with
  | None -> Alcotest.fail "no first_failure despite violations"
  | Some f ->
      Alcotest.(check bool) "schedule captured" true (f.Torture.schedule <> []);
      Alcotest.(check bool) "failure message non-empty" true
        (String.length f.Torture.msg > 0);
      (match f.Torture.minimised with
      | Some ds ->
          Alcotest.(check bool) "minimised no longer than schedule" true
            (List.length ds <= List.length f.Torture.schedule);
          (* the minimised prefix must still reproduce under tolerant
             replay — the same contract Shrink promises *)
          let spec = broken_spec () in
          (match
             Modelcheck.Shrink.reproduces ~mk:spec.Torture.mk
               ~workloads:(spec.Torture.workloads_of_seed f.Torture.seed)
               ~policy:spec.Torture.policy
               ~max_steps:spec.Torture.max_steps ds
           with
          | Some _ -> ()
          | None -> Alcotest.fail "minimised schedule does not reproduce")
      | None ->
          (* tolerant replay can fail to reproduce a deeply random
             failure; the raw schedule must then still be reported *)
          ());
      (* first failure must be the lowest failing trial index: rerunning
         that single trial as a 1-trial campaign from the same stream is
         not possible (streams are root-indexed), but the index must be
         within range *)
      Alcotest.(check bool) "trial index in range" true
        (f.Torture.trial >= 0 && f.Torture.trial < 60)

let test_shrink_disabled () =
  let r = Torture.run ~root_seed:1 ~trials:60 ~shrink:false (broken_spec ()) in
  match r.Torture.first_failure with
  | None -> Alcotest.fail "no first_failure despite violations"
  | Some f ->
      Alcotest.(check bool) "no minimisation when disabled" true
        (f.Torture.minimised = None && f.Torture.shrink_attempts = 0)

let test_json_shape () =
  let r = Torture.run ~root_seed:3 ~trials:20 (dcas_spec ()) in
  let j = Torture.to_json r in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun marker ->
      if not (contains j marker) then
        Alcotest.failf "marker %S missing from JSON" marker)
    [
      {|"schema": "detectable-torture/v4"|}; {|"verdicts"|}; {|"recoveries"|};
      {|"crashes"|}; {|"histogram"|}; {|"steps"|}; {|"max_shared_bits"|};
      {|"first_failure"|}; {|"first_engine_fault"|}; {|"timing"|};
      {|"fault": "atomic"|}; {|"watchdog"|}; {|"budget_exhausted"|};
      {|"engine_faults"|}; {|"shards_rescued"|}; {|"alloc"|};
      {|"bytes_per_trial"|}; {|"supervision"|}; {|"workers_spawned"|};
      {|"rescues"|}; {|"degradations"|}; {|"inproc_trials"|};
    ];
  (* --no-timing strips timing entirely, supervision included — that is
     the byte-identity surface campaign/chaos/resume runs are compared
     on *)
  let plain = Torture.to_json ~timing:false r in
  Alcotest.(check bool) "timing:false omits the timing block" false
    (contains plain {|"timing"|});
  Alcotest.(check bool) "timing:false omits supervision too" false
    (contains plain {|"supervision"|})

(* The checker engine must be invisible in the merged report: batch and
   incremental campaigns over the same seed produce bit-identical JSON,
   on a clean object and on a violating one (where the parity covers the
   captured failure and its minimised schedule too). *)
let test_lin_engine_parity () =
  let with_engine mkspec lin_engine = { (mkspec ()) with Torture.lin_engine } in
  List.iter
    (fun mkspec ->
      let run e =
        Torture.run ~root_seed:11 ~trials:40 (with_engine mkspec e)
      in
      Alcotest.(check string)
        "batch vs incremental: identical merged reports"
        (Torture.to_json ~timing:false (run `Batch))
        (Torture.to_json ~timing:false (run `Incremental)))
    [ (fun () -> dcas_spec ()); broken_spec ]

let test_give_up_policy_runs () =
  let r = Torture.run ~root_seed:5 ~trials:30 (dcas_spec ~policy:Session.Give_up ()) in
  Alcotest.(check int) "give-up dcas stays correct" 0 r.Torture.not_linearized

(* --- fault models --- *)

let fault_choices =
  [
    Nvm.Fault_model.Atomic;
    Nvm.Fault_model.Drop { keep_prob = 0.7 };
    Nvm.Fault_model.Torn { granularity = 1 };
    Nvm.Fault_model.Reorder;
  ]

(* dcas on the shared-cache machine with persist instrumentation — the
   setup where non-atomic fault models actually lose state *)
let faulted_dcas_spec fault =
  Torture.default_spec_of
    ~label:("dcas+" ^ Nvm.Fault_model.to_string fault)
    ~fault
    ~mk:
      (Test_support.mk_dcas ~persist:true ~model:Runtime.Machine.Shared_cache
         ~n:3)
    ~workloads_of_seed:(fun s ->
      Workload.cas (Dtc_util.Prng.create s) ~procs:3 ~ops_per_proc:3 ~values:2)
    ()

(* the acceptance criterion extended to every fault model: for random
   (seed, trials, fault), the merged report is bit-identical whether the
   trials ran on 1 domain or 4 *)
let prop_fault_models_domain_deterministic =
  QCheck.Test.make
    ~name:"fault models: domains 1 = domains 4 (bit-identical)" ~count:8
    QCheck.(
      triple (int_range 1 1_000_000) (int_range 5 20) (int_range 0 3))
    (fun (seed, trials, fi) ->
      let spec = faulted_dcas_spec (List.nth fault_choices fi) in
      let r1 = Torture.run ~domains:1 ~root_seed:seed ~trials spec in
      let r4 = Torture.run ~domains:4 ~root_seed:seed ~trials spec in
      Torture.to_json ~timing:false r1 = Torture.to_json ~timing:false r4)

(* Drop loses unpersisted lines an instrumented algorithm never depends
   on, so the paper's detectable CAS survives it by design *)
let test_dcas_survives_drop () =
  let r =
    Torture.run ~root_seed:2 ~trials:100
      (faulted_dcas_spec (Nvm.Fault_model.Drop { keep_prob = 0.5 }))
  in
  Alcotest.(check int) "dcas survives drop" 0 r.Torture.not_linearized;
  Alcotest.(check int) "all classified" 100 (classified r)

(* torn persistence breaks the per-word atomicity the paper's model
   assumes, so it flags even correct composite-word algorithms given
   enough trials — here the ablated CAS, whose recovery guesses from a
   word that can now tear *)
let test_faulted_broken_flagged () =
  let spec =
    Torture.default_spec_of ~label:"broken-dcas-no-vec+torn" ~crash_prob:0.15
      ~max_crashes:3
      ~fault:(Nvm.Fault_model.Torn { granularity = 1 })
      ~mk:(fun () ->
        let m = Runtime.Machine.create ~model:Runtime.Machine.Shared_cache () in
        (m, Baselines.Broken.dcas_no_vec ~persist:true m ~n:3 ~init:(Nvm.Value.Int 0)))
      ~workloads_of_seed:(fun s ->
        Workload.cas (Dtc_util.Prng.create s) ~procs:3 ~ops_per_proc:3 ~values:2)
      ()
  in
  let r = Torture.run ~root_seed:1 ~trials:150 spec in
  Alcotest.(check bool) "ablation flagged under torn" true
    (r.Torture.not_linearized > 0);
  Alcotest.(check int) "all classified" 150 (classified r);
  match r.Torture.first_failure with
  | None -> Alcotest.fail "no first_failure despite violations"
  | Some f ->
      Alcotest.(check bool) "schedule captured" true (f.Torture.schedule <> [])

(* --- containment --- *)

(* a third-party exception out of object code (anything but the
   Invalid_argument/Failure correctness convention) becomes that trial's
   engine_fault verdict; sibling trials keep running and the campaign
   completes *)
let raising_spec () =
  Torture.default_spec_of ~label:"raising-dcas"
    ~mk:(fun () ->
      let m, inst = Test_support.mk_dcas ~n:3 () in
      let invoke ~pid (op : History.Spec.op) =
        if
          op.History.Spec.name = "cas"
          && Nvm.Value.equal op.History.Spec.args.(0) (Nvm.Value.Int 1)
          && Nvm.Value.equal op.History.Spec.args.(1) (Nvm.Value.Int 1)
        then raise Not_found
        else inst.Obj_inst.invoke ~pid op
      in
      (m, { inst with Obj_inst.invoke }))
    ~workloads_of_seed:(fun s ->
      Workload.cas (Dtc_util.Prng.create s) ~procs:3 ~ops_per_proc:3 ~values:2)
    ()

let test_engine_fault_contained () =
  let r = Torture.run ~root_seed:9 ~trials:40 (raising_spec ()) in
  Alcotest.(check bool) "some trials fault" true (r.Torture.engine_faults > 0);
  Alcotest.(check bool) "sibling trials still complete" true
    (r.Torture.linearized > 0);
  Alcotest.(check int) "campaign completes: all classified" 40 (classified r);
  (match r.Torture.first_engine_fault with
  | None -> Alcotest.fail "no first_engine_fault despite faults"
  | Some ef ->
      Alcotest.(check bool) "fault message names the exception" true
        (String.length ef.Torture.ef_msg > 0));
  (* deterministic like every other verdict *)
  let r' = Torture.run ~root_seed:9 ~trials:40 (raising_spec ()) in
  Alcotest.(check string) "faulting campaigns replay identically"
    (Torture.to_json ~timing:false r)
    (Torture.to_json ~timing:false r')

(* an operation that spins forever is cut by the per-operation watchdog
   into a budget_exhausted verdict instead of hanging the campaign *)
let spinning_spec () =
  Torture.default_spec_of ~label:"spinning" ~watchdog:200
    ~mk:(fun () ->
      let m, inst = Test_support.mk_dcas ~n:3 () in
      let sl = Runtime.Machine.alloc_shared m "SPIN" (Nvm.Value.Int 0) in
      let invoke ~pid:_ _op =
        let rec spin () =
          ignore (Runtime.Fiber.read sl);
          spin ()
        in
        spin ()
      in
      (m, { inst with Obj_inst.invoke }))
    ~workloads_of_seed:(fun s ->
      Workload.cas (Dtc_util.Prng.create s) ~procs:3 ~ops_per_proc:1 ~values:2)
    ()

let test_watchdog_cuts_spinning_object () =
  let r = Torture.run ~root_seed:3 ~trials:4 (spinning_spec ()) in
  Alcotest.(check int) "every trial budget_exhausted" 4
    r.Torture.budget_exhausted;
  Alcotest.(check int) "all classified" 4 (classified r)

(* --- checkpoint / resume --- *)

let with_temp_journal f =
  let path = Filename.temp_file "torture-test" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let read_lines path =
  let ic = open_in_bin path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let write_lines path lines =
  let oc = open_out_bin path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc

(* interrupt a campaign (simulated by truncating its journal), resume,
   and require the merged report byte-identical to an uninterrupted
   campaign — on a clean object and on a violating one (covering the
   escape round-trip of recorded failure messages) *)
let test_checkpoint_resume_identity () =
  List.iter
    (fun mkspec ->
      let spec = mkspec () in
      let uninterrupted = Torture.run ~root_seed:21 ~trials:30 spec in
      with_temp_journal (fun path ->
          let journaled =
            Torture.run ~root_seed:21 ~trials:30 ~checkpoint:path spec
          in
          Alcotest.(check string) "journaling does not perturb the report"
            (Torture.to_json ~timing:false uninterrupted)
            (Torture.to_json ~timing:false journaled);
          (* keep the header + the first 11 trial lines: a mid-campaign kill *)
          let lines = read_lines path in
          Alcotest.(check int) "header + one line per trial" 31
            (List.length lines);
          write_lines path (List.filteri (fun i _ -> i < 12) lines);
          let resumed =
            Torture.run ~root_seed:21 ~trials:30 ~checkpoint:path ~resume:true
              spec
          in
          Alcotest.(check string) "resumed = uninterrupted (byte-identical)"
            (Torture.to_json ~timing:false uninterrupted)
            (Torture.to_json ~timing:false resumed);
          (* resuming a complete journal re-runs nothing and still agrees *)
          let noop =
            Torture.run ~root_seed:21 ~trials:30 ~checkpoint:path ~resume:true
              spec
          in
          Alcotest.(check string) "no-op resume agrees"
            (Torture.to_json ~timing:false uninterrupted)
            (Torture.to_json ~timing:false noop)))
    [ (fun () -> dcas_spec ()); broken_spec ]

(* a journal written under different campaign parameters must be
   rejected, field by field *)
let test_checkpoint_header_validated () =
  with_temp_journal (fun path ->
      ignore (Torture.run ~root_seed:21 ~trials:20 ~checkpoint:path (dcas_spec ()));
      let expect_reject what run =
        match run () with
        | (_ : Torture.report) ->
            Alcotest.failf "journal accepted despite %s mismatch" what
        | exception Invalid_argument _ -> ()
      in
      expect_reject "root_seed" (fun () ->
          Torture.run ~root_seed:22 ~trials:20 ~checkpoint:path ~resume:true
            (dcas_spec ()));
      expect_reject "trials" (fun () ->
          Torture.run ~root_seed:21 ~trials:25 ~checkpoint:path ~resume:true
            (dcas_spec ()));
      expect_reject "crash_prob" (fun () ->
          Torture.run ~root_seed:21 ~trials:20 ~checkpoint:path ~resume:true
            (broken_spec ()));
      expect_reject "fault" (fun () ->
          Torture.run ~root_seed:21 ~trials:20 ~checkpoint:path ~resume:true
            (faulted_dcas_spec Nvm.Fault_model.Reorder)))

(* --- journal hardening: duplicates, corruption, torn tails --- *)

let string_contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let has_prefix p l =
  String.length l >= String.length p && String.sub l 0 (String.length p) = p

(* the journal line for trial [i], rewritten to claim index [j] — the
   forgery overlapping shard ranges would produce *)
let reindexed_line lines ~from_i ~to_i =
  let old_p = Printf.sprintf {|{ "i": %d,|} from_i in
  let new_p = Printf.sprintf {|{ "i": %d,|} to_i in
  match List.find_opt (has_prefix old_p) lines with
  | None -> Alcotest.failf "no journal line for trial %d" from_i
  | Some l ->
      new_p
      ^ String.sub l (String.length old_p) (String.length l - String.length old_p)

let expect_invalid what sub run =
  match run () with
  | (_ : Torture.report) -> Alcotest.failf "journal accepted despite %s" what
  | exception Invalid_argument m ->
      if not (string_contains m sub) then
        Alcotest.failf "%s diagnostic %S does not mention %S" what m sub

(* replaying trial lines verbatim (two shards raced on the same range)
   must dedupe idempotently and change nothing *)
let test_checkpoint_duplicates_deduped () =
  let spec = dcas_spec () in
  with_temp_journal (fun path ->
      let full = Torture.run ~root_seed:21 ~trials:30 ~checkpoint:path spec in
      let lines = read_lines path in
      let dups = List.filteri (fun i _ -> i >= 5 && i < 9) lines in
      write_lines path (lines @ dups);
      let resumed =
        Torture.run ~root_seed:21 ~trials:30 ~checkpoint:path ~resume:true spec
      in
      Alcotest.(check string) "identical duplicates are idempotent"
        (Torture.to_json ~timing:false full)
        (Torture.to_json ~timing:false resumed))

(* a duplicate trial index carrying a different result means overlapping
   shard ranges disagreed — hard error naming both lines *)
let test_checkpoint_conflict_rejected () =
  let spec = dcas_spec () in
  with_temp_journal (fun path ->
      ignore (Torture.run ~root_seed:21 ~trials:30 ~checkpoint:path spec);
      let lines = read_lines path in
      write_lines path (lines @ [ reindexed_line lines ~from_i:4 ~to_i:3 ]);
      expect_invalid "conflicting duplicate" "conflicts" (fun () ->
          Torture.run ~root_seed:21 ~trials:30 ~checkpoint:path ~resume:true
            spec))

let test_checkpoint_out_of_range_rejected () =
  let spec = dcas_spec () in
  with_temp_journal (fun path ->
      ignore (Torture.run ~root_seed:21 ~trials:30 ~checkpoint:path spec);
      let lines = read_lines path in
      write_lines path (lines @ [ reindexed_line lines ~from_i:4 ~to_i:77 ]);
      expect_invalid "out-of-range index" "out of range" (fun () ->
          Torture.run ~root_seed:21 ~trials:30 ~checkpoint:path ~resume:true
            spec))

(* garbage anywhere but the final line is corruption, not a torn tail,
   and the diagnostic names the file line *)
let test_checkpoint_midfile_corruption_rejected () =
  let spec = dcas_spec () in
  with_temp_journal (fun path ->
      ignore (Torture.run ~root_seed:21 ~trials:30 ~checkpoint:path spec);
      let lines = read_lines path in
      write_lines path
        (List.mapi (fun i l -> if i = 10 then "{ \"i\": garbage" else l) lines);
      expect_invalid "mid-file corruption" "line 11" (fun () ->
          Torture.run ~root_seed:21 ~trials:30 ~checkpoint:path ~resume:true
            spec))

(* a writer killed mid-write leaves a torn, newline-less tail: resume
   must tolerate it, heal the file back to a line boundary, and still
   produce the uninterrupted report byte-for-byte *)
let test_checkpoint_torn_tail_healed () =
  let spec = dcas_spec () in
  let uninterrupted = Torture.run ~root_seed:21 ~trials:30 spec in
  with_temp_journal (fun path ->
      ignore (Torture.run ~root_seed:21 ~trials:30 ~checkpoint:path spec);
      let lines = read_lines path in
      let keep = List.filteri (fun i _ -> i < 12) lines in
      let oc = open_out_bin path in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        keep;
      output_string oc {|{ "i": 12, "seed": 99|};
      close_out oc;
      let resumed =
        Torture.run ~root_seed:21 ~trials:30 ~checkpoint:path ~resume:true spec
      in
      Alcotest.(check string) "torn tail healed, report byte-identical"
        (Torture.to_json ~timing:false uninterrupted)
        (Torture.to_json ~timing:false resumed);
      (* the heal truncated the torn bytes before appending: every line
         in the final journal parses *)
      List.iteri
        (fun k l ->
          if String.trim l <> "" then
            match Tiny_json.parse l with
            | (_ : Tiny_json.t) -> ()
            | exception Tiny_json.Error m ->
                Alcotest.failf "journal line %d unparseable after heal: %s"
                  (k + 1) m)
        (read_lines path))

(* --- cooperative interruption --- *)

(* a should_stop that trips mid-campaign must raise Interrupted with the
   journaled progress, and a resume must finish the campaign
   byte-identically — the SIGINT/SIGTERM contract of detect_cli *)
let test_should_stop_interrupts_and_resumes () =
  let spec = dcas_spec () in
  let uninterrupted = Torture.run ~root_seed:33 ~trials:40 spec in
  with_temp_journal (fun path ->
      let calls = Atomic.make 0 in
      let should_stop () = Atomic.fetch_and_add calls 1 >= 12 in
      (match
         Torture.run ~domains:2 ~root_seed:33 ~trials:40 ~checkpoint:path
           ~should_stop spec
       with
      | (_ : Torture.report) ->
          Alcotest.fail "campaign completed despite should_stop"
      | exception Torture.Interrupted { completed; total } ->
          Alcotest.(check int) "total carried" 40 total;
          Alcotest.(check bool) "partial progress journaled" true
            (completed > 0 && completed < 40));
      let resumed =
        Torture.run ~root_seed:33 ~trials:40 ~checkpoint:path ~resume:true spec
      in
      Alcotest.(check string) "resume after interrupt = uninterrupted"
        (Torture.to_json ~timing:false uninterrupted)
        (Torture.to_json ~timing:false resumed))

let suites =
  [
    ( "torture.engine",
      [
        Alcotest.test_case "domains 1 = domains 4 (bit-identical)" `Quick
          test_domains_deterministic;
        Alcotest.test_case "rerun deterministic, seed-sensitive" `Quick
          test_rerun_deterministic;
        Alcotest.test_case "scratch reuse leaks no state across trials" `Quick
          test_scratch_reuse_deterministic;
        Alcotest.test_case "aggregation sane" `Quick test_aggregation_sane;
        Alcotest.test_case "broken object fails and shrinks" `Quick
          test_broken_object_fails_and_shrinks;
        Alcotest.test_case "shrink disabled" `Quick test_shrink_disabled;
        Alcotest.test_case "json shape" `Quick test_json_shape;
        Alcotest.test_case "give-up policy" `Quick test_give_up_policy_runs;
        Alcotest.test_case "lin engine parity (clean + violating)" `Quick
          test_lin_engine_parity;
      ] );
    ( "torture.faults",
      [
        QCheck_alcotest.to_alcotest prop_fault_models_domain_deterministic;
        Alcotest.test_case "dcas survives drop" `Quick test_dcas_survives_drop;
        Alcotest.test_case "torn flags the no-vec ablation" `Quick
          test_faulted_broken_flagged;
      ] );
    ( "torture.containment",
      [
        Alcotest.test_case "raising object contained as engine fault" `Quick
          test_engine_fault_contained;
        Alcotest.test_case "watchdog cuts spinning object" `Quick
          test_watchdog_cuts_spinning_object;
      ] );
    ( "torture.checkpoint",
      [
        Alcotest.test_case "interrupt + resume byte-identical" `Quick
          test_checkpoint_resume_identity;
        Alcotest.test_case "mismatched journal header rejected" `Quick
          test_checkpoint_header_validated;
        Alcotest.test_case "identical duplicates deduped" `Quick
          test_checkpoint_duplicates_deduped;
        Alcotest.test_case "conflicting duplicate rejected" `Quick
          test_checkpoint_conflict_rejected;
        Alcotest.test_case "out-of-range index rejected" `Quick
          test_checkpoint_out_of_range_rejected;
        Alcotest.test_case "mid-file corruption rejected" `Quick
          test_checkpoint_midfile_corruption_rejected;
        Alcotest.test_case "torn tail healed on resume" `Quick
          test_checkpoint_torn_tail_healed;
        Alcotest.test_case "should_stop interrupts, resume completes" `Quick
          test_should_stop_interrupts_and_resumes;
      ] );
  ]
