(* Tests for Dtc_util: the deterministic PRNG and the table printer. *)

open Dtc_util

let test_determinism () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_distinct_seeds () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next_int64 a = Prng.next_int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_copy_independent () =
  let a = Prng.create 3 in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  let xa = Prng.next_int64 a and xb = Prng.next_int64 b in
  Alcotest.(check int64) "copy continues the same stream" xa xb;
  ignore (Prng.next_int64 a);
  (* advancing a must not advance b *)
  let xa' = Prng.next_int64 a and xb' = Prng.next_int64 b in
  Alcotest.(check bool) "independent afterwards" true (xa' <> xb' || xa' = xb')

let test_split_independent () =
  let a = Prng.create 11 in
  let b = Prng.split a in
  let xs = List.init 32 (fun _ -> Prng.next_int64 a) in
  let ys = List.init 32 (fun _ -> Prng.next_int64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Prng.int in [0, bound)" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let g = Prng.create seed in
      let x = Prng.int g bound in
      x >= 0 && x < bound)

let prop_float_in_unit =
  QCheck.Test.make ~name:"Prng.float in [0, 1)" ~count:500 QCheck.small_int
    (fun seed ->
      let g = Prng.create seed in
      let x = Prng.float g in
      x >= 0.0 && x < 1.0)

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"Prng.shuffle is a permutation" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let g = Prng.create seed in
      let arr = Array.of_list xs in
      Prng.shuffle g arr;
      List.sort compare (Array.to_list arr) = List.sort compare xs)

let prop_pick_member =
  QCheck.Test.make ~name:"Prng.pick returns a member" ~count:500
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      QCheck.assume (xs <> []);
      let g = Prng.create seed in
      List.mem (Prng.pick g xs) xs)

let test_int_rejects_nonpositive () =
  let g = Prng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let test_int_distribution () =
  (* [Prng.int] draws by rejection sampling, so residues must land near
     uniform even for bounds that do not divide the generator's range.  With
     60_000 draws over 7 buckets the expected count per bucket is ~8571; a
     +/-5% band is ~27 standard deviations, so a deterministic seed passing
     once will keep passing unless the sampler regresses to a biased mod. *)
  let g = Prng.create 42 in
  let bound = 7 and draws = 60_000 in
  let counts = Array.make bound 0 in
  for _ = 1 to draws do
    let x = Prng.int g bound in
    counts.(x) <- counts.(x) + 1
  done;
  let expected = float_of_int draws /. float_of_int bound in
  Array.iteri
    (fun k c ->
      let dev = abs_float (float_of_int c -. expected) /. expected in
      if dev > 0.05 then
        Alcotest.failf "bucket %d has %d draws (%.1f%% off uniform)" k c
          (100.0 *. dev))
    counts

let test_int_large_bound_unbiased_tail () =
  (* A bound just above half the positive range makes the naive [r mod bound]
     visibly biased (low residues would be twice as likely); rejection
     sampling must still return values across the whole interval. *)
  let g = Prng.create 9 in
  let bound = (max_int / 2) + 2 in
  let high = ref 0 in
  for _ = 1 to 2_000 do
    let x = Prng.int g bound in
    if x < 0 || x >= bound then Alcotest.fail "out of range";
    if x > bound / 2 then incr high
  done;
  (* under uniformity ~half the draws exceed bound/2; the biased mod would
     fold the upper range onto low residues and push this toward a quarter *)
  Alcotest.(check bool) "upper half populated" true (!high > 800)

let test_stream_matches_split_chain () =
  (* the determinism backbone of the sharded torture engine:
     [stream root ~index:i] equals the i-th successive [split] of
     [create root], but is derived in O(1) without advancing a shared
     generator — so any worker can reconstruct any trial's stream *)
  let root = 12345 in
  let g = Prng.create root in
  for index = 0 to 31 do
    let via_split = Prng.split g in
    let via_stream = Prng.stream root ~index in
    for _ = 1 to 4 do
      Alcotest.(check int64)
        (Printf.sprintf "stream %d tracks the %d-th split" index index)
        (Prng.next_int64 via_split)
        (Prng.next_int64 via_stream)
    done
  done

let test_stream_independent_of_order () =
  (* drawing stream 7 before stream 3 yields the same streams as the
     reverse order — nothing is shared *)
  let a7 = Prng.stream 99 ~index:7 and a3 = Prng.stream 99 ~index:3 in
  let b3 = Prng.stream 99 ~index:3 and b7 = Prng.stream 99 ~index:7 in
  Alcotest.(check int64) "stream 3 stable" (Prng.next_int64 a3) (Prng.next_int64 b3);
  Alcotest.(check int64) "stream 7 stable" (Prng.next_int64 a7) (Prng.next_int64 b7);
  Alcotest.(check bool) "streams 3 and 7 differ" true
    (Prng.next_int64 (Prng.stream 99 ~index:3)
    <> Prng.next_int64 (Prng.stream 99 ~index:7))

let test_stream_seed_deterministic () =
  Alcotest.(check int) "stream_seed is a pure function"
    (Prng.stream_seed 4 ~index:11) (Prng.stream_seed 4 ~index:11);
  Alcotest.(check bool) "stream_seed non-negative" true
    (Prng.stream_seed 4 ~index:11 >= 0);
  Alcotest.check_raises "negative index"
    (Invalid_argument "Prng.stream: index must be non-negative") (fun () ->
      ignore (Prng.stream 1 ~index:(-1)))

let test_table_render () =
  let t = Table.create ~title:"demo" [ "a"; "bb"; "ccc" ] in
  Table.add_row t [ "1"; "2"; "3" ];
  Table.add_int_row t [ 10; 20; 30 ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true
    (String.length s > 0 && String.sub s 0 7 = "== demo");
  Alcotest.(check bool) "has row" true
    (let contains hay needle =
       let nh = String.length hay and nn = String.length needle in
       let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
       go 0
     in
     contains s "10" && contains s "30")

let test_table_padding () =
  let t = Table.create ~title:"t" [ "col" ] in
  Table.add_row t [];
  (* shorter row padded *)
  Alcotest.(check bool) "renders" true (String.length (Table.render t) > 0)

let test_table_too_many_cells () =
  let t = Table.create ~title:"t" [ "col" ] in
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Table.add_row: more cells than headers") (fun () ->
      Table.add_row t [ "a"; "b" ])

let suites =
  [
    ( "util.prng",
      [
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "distinct seeds" `Quick test_distinct_seeds;
        Alcotest.test_case "copy" `Quick test_copy_independent;
        Alcotest.test_case "split" `Quick test_split_independent;
        Alcotest.test_case "int rejects non-positive" `Quick
          test_int_rejects_nonpositive;
        Alcotest.test_case "int distribution near uniform" `Quick
          test_int_distribution;
        Alcotest.test_case "int unbiased at large bounds" `Quick
          test_int_large_bound_unbiased_tail;
        Alcotest.test_case "stream = successive splits" `Quick
          test_stream_matches_split_chain;
        Alcotest.test_case "stream order-independent" `Quick
          test_stream_independent_of_order;
        Alcotest.test_case "stream_seed" `Quick test_stream_seed_deterministic;
        QCheck_alcotest.to_alcotest prop_int_in_bounds;
        QCheck_alcotest.to_alcotest prop_float_in_unit;
        QCheck_alcotest.to_alcotest prop_shuffle_permutation;
        QCheck_alcotest.to_alcotest prop_pick_member;
      ] );
    ( "util.table",
      [
        Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "padding" `Quick test_table_padding;
        Alcotest.test_case "too many cells" `Quick test_table_too_many_cells;
      ] );
  ]
