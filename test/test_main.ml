(* Aggregated test entry point: every suite from every test module, run
   under a single Alcotest binary so `dune runtest` covers the whole
   repository. *)

(* The campaign supervisor tests respawn this very binary as their
   worker process (argv.(1) = "campaign-worker"); dispatch before
   Alcotest parses argv. *)
let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "campaign-worker" then
    Test_campaign.worker_mode ();
  Alcotest.run "detectable-objects"
    (List.concat
       [
         Test_util.suites;
         Test_value.suites;
         Test_mem.suites;
         Test_runtime.suites;
         Test_spec.suites;
         Test_lin_check.suites;
         Test_session.suites;
         Test_drw.suites;
         Test_dcas.suites;
         Test_dmax.suites;
         Test_transform.suites;
         Test_dqueue.suites;
         Test_nrl.suites;
         Test_baselines.suites;
         Test_broken.suites;
         Test_modelcheck.suites;
         Test_reduction.suites;
         Test_perturb.suites;
         Test_shared_cache.suites;
         Test_extras.suites;
         Test_compose.suites;
         Test_rlock.suites;
         Test_experiments.suites;
         Test_ulog.suites;
         Test_hist.suites;
         Test_reference.suites;
         Test_lemma_proofs.suites;
         Test_shrink.suites;
         Test_torture.suites;
         Test_campaign.suites;
       ])
