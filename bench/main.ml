(* Benchmark & experiment harness.

   Running `dune exec bench/main.exe` regenerates, in order:

   - every experiment table E1-E10 (the paper's figures, theorems and
     complexity claims — see DESIGN.md's per-experiment index);
   - T1a: simulated primitive-steps-per-operation costs (the
     hardware-independent cost model of each implementation);
   - T1b: Bechamel wall-clock micro-benchmarks of the same workloads (the
     cost of implementation + simulator on this machine). *)

open Dtc_util
open Nvm
open Runtime
open History
open Sched

let i n = Value.Int n

(* ------------------------------------------------------------------ *)
(* T1a: simulated steps per operation *)

let solo_steps ~mk ~ops_of =
  let machine, inst = mk () in
  let ops = ops_of () in
  let cfg = { Driver.default_config with max_steps = 10_000_000 } in
  let res = Driver.run machine inst ~workloads:[| ops |] cfg in
  if res.Driver.incomplete then failwith "bench run incomplete";
  float_of_int res.Driver.steps /. float_of_int (List.length ops)

let steps_table () =
  let t =
    Table.create
      ~title:
        "T1a: simulated primitive steps per operation (solo, 100 ops, incl. \
         announce/clear protocol)"
      [ "implementation"; "workload"; "steps/op" ]
  in
  let k = 100 in
  let row label mk ops_of =
    Table.add_row t
      [ label; "100 ops"; Printf.sprintf "%.1f" (solo_steps ~mk ~ops_of) ]
  in
  let writes () = List.init k (fun j -> Spec.write_op (i (j mod 4))) in
  let cases () =
    List.init k (fun j ->
        if j mod 2 = 0 then Spec.cas_op (i 0) (i 1) else Spec.cas_op (i 1) (i 0))
  in
  row "drw (Alg.1, N=3)"
    (fun () ->
      let m = Machine.create () in
      (m, Detectable.Drw.instance (Detectable.Drw.create m ~n:3 ~init:(i 0))))
    writes;
  row "urw (unbounded tags, N=3)"
    (fun () ->
      let m = Machine.create () in
      (m, Baselines.Urw.instance (Baselines.Urw.create m ~n:3 ~init:(i 0))))
    writes;
  row "plain register (not recoverable)"
    (fun () ->
      let m = Machine.create () in
      (m, Baselines.Plain.register m ~init:(i 0)))
    writes;
  row "dcas (Alg.2, N=3)"
    (fun () ->
      let m = Machine.create () in
      (m, Detectable.Dcas.instance (Detectable.Dcas.create m ~n:3 ~init:(i 0))))
    cases;
  row "ucas (unbounded tags, N=3)"
    (fun () ->
      let m = Machine.create () in
      (m, Baselines.Ucas.instance (Baselines.Ucas.create m ~n:3 ~init:(i 0))))
    cases;
  row "plain cas (not recoverable)"
    (fun () ->
      let m = Machine.create () in
      (m, Baselines.Plain.cas_cell m ~init:(i 0)))
    cases;
  row "dmax (Alg.3, N=3)"
    (fun () ->
      let m = Machine.create () in
      (m, Detectable.Dmax.instance (Detectable.Dmax.create m ~n:3 ~init:0)))
    (fun () ->
      List.init k (fun j -> if j mod 2 = 0 then Spec.write_max_op j else Spec.read_op));
  row "dcounter (capsule, N=3)"
    (fun () ->
      let m = Machine.create () in
      ( m,
        Detectable.Transform.instance
          (Detectable.Transform.counter m ~n:3 ~init:0) ))
    (fun () -> List.init k (fun _ -> Spec.inc_op));
  row "plain counter (not recoverable)"
    (fun () ->
      let m = Machine.create () in
      (m, Baselines.Plain.counter m ~init:0))
    (fun () -> List.init k (fun _ -> Spec.inc_op));
  row "dqueue (N=3)"
    (fun () ->
      let m = Machine.create () in
      ( m,
        Detectable.Dqueue.instance (Detectable.Dqueue.create m ~n:3 ~capacity:128)
      ))
    (fun () ->
      List.init k (fun j -> if j mod 2 = 0 then Spec.enq_op (i j) else Spec.deq_op));
  row "plain queue (not recoverable)"
    (fun () ->
      let m = Machine.create () in
      (m, Baselines.Plain.queue m ~capacity:128))
    (fun () ->
      List.init k (fun j -> if j mod 2 = 0 then Spec.enq_op (i j) else Spec.deq_op));
  row "dprotected (lock-based, N=3)"
    (fun () ->
      let m = Machine.create () in
      (m, Detectable.Dprotected.instance (Detectable.Dprotected.create m ~n:3 ~init:0)))
    (fun () -> List.init k (fun _ -> Spec.inc_op));
  row "ulog register (universal, N=3)"
    (fun () ->
      let m = Machine.create () in
      ( m,
        Detectable.Ulog.instance
          (Detectable.Ulog.create m ~n:3 ~capacity:(k + 4)
             ~spec:(Spec.register (i 0))) ))
    writes;
  t

(* The N-dependence of Algorithm 1's write (its toggle-raising loop). *)
let drw_scaling_table () =
  let t =
    Table.create
      ~title:"T1a': Algorithm 1 write cost grows linearly in N (the toggle loop)"
      [ "N"; "steps per write (solo)" ]
  in
  List.iter
    (fun n ->
      let steps =
        solo_steps
          ~mk:(fun () ->
            let m = Machine.create () in
            (m, Detectable.Drw.instance (Detectable.Drw.create m ~n ~init:(i 0))))
          ~ops_of:(fun () -> List.init 50 (fun j -> Spec.write_op (i (j mod 3))))
      in
      Table.add_row t [ string_of_int n; Printf.sprintf "%.1f" steps ])
    [ 2; 4; 8; 16; 32 ];
  t

(* ------------------------------------------------------------------ *)
(* T1b: Bechamel wall-clock micro-benchmarks *)

let bech_workload ~mk ~ops () =
  let machine, inst = mk () in
  let cfg = { Driver.default_config with max_steps = 1_000_000 } in
  ignore (Driver.run machine inst ~workloads:[| ops |] cfg)

let bechamel_tests () =
  let open Bechamel in
  let mk_test name mk ops =
    Test.make ~name (Staged.stage (bech_workload ~mk ~ops))
  in
  let writes = List.init 50 (fun j -> Spec.write_op (i (j mod 4))) in
  let cases =
    List.init 50 (fun j ->
        if j mod 2 = 0 then Spec.cas_op (i 0) (i 1) else Spec.cas_op (i 1) (i 0))
  in
  let qops =
    List.init 50 (fun j -> if j mod 2 = 0 then Spec.enq_op (i j) else Spec.deq_op)
  in
  Test.make_grouped ~name:"bench" ~fmt:"%s.%s"
    [
      mk_test "drw.write"
        (fun () ->
          let m = Machine.create () in
          (m, Detectable.Drw.instance (Detectable.Drw.create m ~n:3 ~init:(i 0))))
        writes;
      mk_test "urw.write"
        (fun () ->
          let m = Machine.create () in
          (m, Baselines.Urw.instance (Baselines.Urw.create m ~n:3 ~init:(i 0))))
        writes;
      mk_test "plain.write"
        (fun () ->
          let m = Machine.create () in
          (m, Baselines.Plain.register m ~init:(i 0)))
        writes;
      mk_test "dcas.cas"
        (fun () ->
          let m = Machine.create () in
          (m, Detectable.Dcas.instance (Detectable.Dcas.create m ~n:3 ~init:(i 0))))
        cases;
      mk_test "ucas.cas"
        (fun () ->
          let m = Machine.create () in
          (m, Baselines.Ucas.instance (Baselines.Ucas.create m ~n:3 ~init:(i 0))))
        cases;
      mk_test "plain.cas"
        (fun () ->
          let m = Machine.create () in
          (m, Baselines.Plain.cas_cell m ~init:(i 0)))
        cases;
      mk_test "dqueue.enqdeq"
        (fun () ->
          let m = Machine.create () in
          ( m,
            Detectable.Dqueue.instance
              (Detectable.Dqueue.create m ~n:3 ~capacity:128) ))
        qops;
      mk_test "plain_queue.enqdeq"
        (fun () ->
          let m = Machine.create () in
          (m, Baselines.Plain.queue m ~capacity:128))
        qops;
    ]

let run_bechamel () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg [ instance ] (bechamel_tests ()) in
  let results = Analyze.all ols instance raw in
  let t =
    Table.create ~title:"T1b: wall-clock per 50-op solo workload (Bechamel OLS)"
      [ "benchmark"; "time/run"; "us/op" ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> rows := (name, est) :: !rows
      | _ -> ())
    results;
  List.iter
    (fun (name, ns) ->
      Table.add_row t
        [
          name;
          Printf.sprintf "%.0f ns" ns;
          Printf.sprintf "%.2f" (ns /. 1000.0 /. 50.0);
        ])
    (List.sort compare !rows);
  Table.print t

(* ------------------------------------------------------------------ *)
(* Checker-throughput benchmark, JSON output (`bench/main.exe --json`).

   Emits one machine-readable record per engine configuration on the
   Dcas N=3 acceptance workload, so the model checker's throughput —
   nodes/sec, dedup hit rate, budget reach — is a benchmark trajectory
   future PRs can track.  The tier-1 test suite smoke-runs this mode and
   parses the output (bench/json_check.ml), so the format must stay
   valid JSON. *)

let mk_dcas_n3 () =
  let m = Machine.create () in
  (m, Detectable.Dcas.instance (Detectable.Dcas.create m ~n:3 ~init:(i 0)))

let dcas_n3_workload =
  [|
    [ Spec.cas_op (i 0) (i 1) ];
    [ Spec.cas_op (i 1) (i 2) ];
    [ Spec.cas_op (i 0) (i 2) ];
  |]

let mk_drw_n2 () =
  let m = Machine.create () in
  (m, Detectable.Drw.instance (Detectable.Drw.create m ~n:2 ~init:(i 0)))

let drw_n2_workload =
  [| [ Spec.write_op (i 1); Spec.read_op ]; [ Spec.write_op (i 2) ] |]

let engine_json ~engine ~workload (cfg : Modelcheck.Explore.config)
    (out : Modelcheck.Explore.outcome) =
  let m = out.Modelcheck.Explore.metrics in
  let hit_rate =
    let total = m.Modelcheck.Explore.dedup_hits + out.Modelcheck.Explore.nodes in
    if total = 0 then 0.0
    else float_of_int m.Modelcheck.Explore.dedup_hits /. float_of_int total
  in
  Printf.sprintf
    {|    { "engine": %S, "workload": %S, "substrate": %S,
      "switch_budget": %d, "crash_budget": %d,
      "domains": %d, "prune": %b, "reduction": %S,
      "executions": %d, "truncated": %d, "nodes": %d,
      "total_violations": %d, "distinct_shared_configs": %d,
      "dedup_hits": %d, "dedup_hit_rate": %.4f, "nodes_saved": %d,
      "peak_visited": %d, "elapsed_s": %.6f, "nodes_per_sec": %.1f,
      "rewound_cells": %d, "rewound_cells_per_sec": %.1f,
      "intern_hit_rate": %.4f,
      "lin_engine": %S, "leaf_checks": %d, "lin_elapsed_s": %.6f,
      "lin_checks_per_sec": %.1f, "lin_reuse_rate": %.4f }|}
    engine workload m.Modelcheck.Explore.engine
    cfg.Modelcheck.Explore.switch_budget
    cfg.Modelcheck.Explore.crash_budget m.Modelcheck.Explore.domains_used
    cfg.Modelcheck.Explore.prune m.Modelcheck.Explore.reduction
    out.Modelcheck.Explore.executions
    out.Modelcheck.Explore.truncated out.Modelcheck.Explore.nodes
    out.Modelcheck.Explore.total_violations
    out.Modelcheck.Explore.distinct_shared_configs
    m.Modelcheck.Explore.dedup_hits hit_rate
    m.Modelcheck.Explore.nodes_saved m.Modelcheck.Explore.peak_visited
    m.Modelcheck.Explore.elapsed_s m.Modelcheck.Explore.nodes_per_sec
    m.Modelcheck.Explore.rewound_cells
    m.Modelcheck.Explore.rewound_cells_per_sec
    m.Modelcheck.Explore.intern_hit_rate m.Modelcheck.Explore.lin_engine
    m.Modelcheck.Explore.leaf_checks m.Modelcheck.Explore.lin_elapsed_s
    m.Modelcheck.Explore.lin_checks_per_sec
    m.Modelcheck.Explore.lin_reuse_rate

let checker_json ~budget ~smoke =
  let base =
    {
      Modelcheck.Explore.default_config with
      switch_budget = budget;
      crash_budget = 1;
    }
  in
  (* On a single-core box extra domains only buy stop-the-world GC
     synchronisation, so follow the runtime's recommendation. *)
  let domains = min 8 (Domain.recommended_domain_count ()) in
  let dcas_runs =
    [
      ("seed_unpruned", { base with Modelcheck.Explore.prune = false });
      ("pruned", base);
      ("pruned_parallel", { base with Modelcheck.Explore.domains = domains });
      ( "pruned_parallel_budget_plus",
        {
          base with
          Modelcheck.Explore.switch_budget = base.Modelcheck.Explore.switch_budget + 1;
          domains;
        } );
    ]
  in
  (* the acceptance pair: DRW at switch_budget = 4, one row per execution
     substrate, single domain, identical configuration otherwise — the
     nodes/sec ratio of the two rows is the undo engine's speedup.
     Skipped under --smoke (the replay row alone runs for ~a minute). *)
  let drw_runs =
    if smoke then []
    else
      let drw =
        {
          Modelcheck.Explore.default_config with
          switch_budget = 4;
          crash_budget = 1;
        }
      in
      [
        ("replay_drw_sw4", { drw with Modelcheck.Explore.engine = `Replay });
        ("undo_drw_sw4", { drw with Modelcheck.Explore.engine = `Undo });
      ]
  in
  let results =
    List.map
      (fun (engine, cfg) ->
        let out =
          Modelcheck.Explore.explore ~mk:mk_dcas_n3 ~workloads:dcas_n3_workload
            cfg
        in
        engine_json ~engine ~workload:"dcas_n3_one_cas_each" cfg out)
      dcas_runs
    @ List.map
        (fun (engine, cfg) ->
          let out =
            Modelcheck.Explore.explore ~mk:mk_drw_n2 ~workloads:drw_n2_workload
              cfg
          in
          engine_json ~engine ~workload:"drw_n2_write_read" cfg out)
        drw_runs
  in
  Printf.printf
    "{\n  \"schema\": \"detectable-bench/checker-v1\",\n  \"workload\": \
     \"dcas_n3_one_cas_each\",\n  \"base_switch_budget\": %d,\n  \"engines\": \
     [\n%s\n  ]\n}\n"
    budget
    (String.concat ",\n" results)

(* ------------------------------------------------------------------ *)
(* Torture bench baselines (`--baseline` / `--compare`).

   `--baseline` runs the standard torture campaigns and writes
   BENCH_torture.json (schema detectable-bench/torture-v2): per campaign
   the full deterministic run report plus the measured throughput and
   allocation profile, and two explicit perf gates —
   [min_trials_per_sec], the throughput floor (1.5x what the artifact
   recorded before the ISSUE 8 allocation overhaul), and
   [max_bytes_per_trial], an allocation ceiling at 4x the measured
   per-trial footprint.  `--compare FILE` reruns the same campaigns at
   the file's recorded (root_seed, trials) and diffs: the deterministic
   counters must match exactly (they are a pure function of the code and
   the seed — any drift is a behavioral change that must be acknowledged
   by regenerating the baseline); throughput must stay within tolerance
   of the recorded value AND above the recorded floor scaled by the
   tolerance (default 10x, machines differ); the fresh bytes_per_trial
   must stay under the recorded ceiling exactly — allocation counts
   don't depend on the machine, so the ceiling needs no tolerance.
   `dune build @bench-check` runs the comparison against the committed
   baseline. *)

(* Throughput floors written into regenerated baselines: 1.5x (torture
   trials/sec) and 1.3x (modelcheck undo nodes/sec) over the numbers the
   committed artifacts recorded before the allocation-discipline
   overhaul, per ISSUE 8's acceptance gates.  Keyed by case label so a
   renamed/added case simply gets no floor until one is decided. *)
let torture_tps_floor = function
  | "dcas_n3_mix" -> 5472.0 (* 1.5 x 3648.3 *)
  | "dqueue_n3_mix" -> 1798.0 (* 1.5 x 1198.7 *)
  | "drw_n3_mix" -> 4463.0 (* 1.5 x 2975.2 *)
  | _ -> 0.0

let mc_nps_floor = function
  | "drw_n2_write_read" -> 393_906.0 (* 1.3 x 303004.5 *)
  | "dcas_n3_one_cas_each" -> 427_144.0 (* 1.3 x 328572.5 *)
  | _ -> 0.0

let alloc_ceiling_factor = 4.0

let torture_campaigns : Torture.spec list =
  [
    Torture.default_spec_of ~label:"dcas_n3_mix" ~mk:mk_dcas_n3
      ~workloads_of_seed:(fun s ->
        Workload.cas (Prng.create s) ~procs:3 ~ops_per_proc:3 ~values:2)
      ();
    Torture.default_spec_of ~label:"dqueue_n3_mix"
      ~mk:(fun () ->
        let m = Machine.create () in
        ( m,
          Detectable.Dqueue.instance (Detectable.Dqueue.create m ~n:3 ~capacity:64)
        ))
      ~workloads_of_seed:(fun s ->
        Workload.queue (Prng.create s) ~procs:3 ~ops_per_proc:3 ~values:3)
      ();
    Torture.default_spec_of ~label:"drw_n3_mix"
      ~mk:(fun () ->
        let m = Machine.create () in
        (m, Detectable.Drw.instance (Detectable.Drw.create m ~n:3 ~init:(i 0))))
      ~workloads_of_seed:(fun s ->
        Workload.register (Prng.create s) ~procs:3 ~ops_per_proc:3 ~values:2)
      ();
  ]

let indent_lines ~by s =
  String.split_on_char '\n' s
  |> List.map (fun l -> if l = "" then l else by ^ l)
  |> String.concat "\n"

let torture_baseline ~out ~trials ~root_seed ~domains =
  let campaigns =
    List.map
      (fun (spec : Torture.spec) ->
        let r = Torture.run ~domains ~root_seed ~trials spec in
        Printf.sprintf
          "    {\n\
          \      \"report\":\n\
           %s,\n\
          \      \"perf\": { \"elapsed_s\": %.6f, \"trials_per_sec\": %.1f, \
           \"domains\": %d,\n\
          \        \"alloc\": { \"minor_words\": %.0f, \"promoted_words\": \
           %.0f, \"minor_collections\": %d, \"bytes_per_trial\": %.1f },\n\
          \        \"min_trials_per_sec\": %.1f, \"max_bytes_per_trial\": \
           %.0f }\n\
          \    }"
          (indent_lines ~by:"      "
             (String.trim (Torture.to_json ~timing:false r)))
          r.Torture.elapsed_s r.Torture.trials_per_sec r.Torture.domains_used
          r.Torture.alloc_minor_words r.Torture.alloc_promoted_words
          r.Torture.alloc_minor_collections r.Torture.bytes_per_trial
          (torture_tps_floor spec.Torture.label)
          (r.Torture.bytes_per_trial *. alloc_ceiling_factor))
      torture_campaigns
  in
  let doc =
    Printf.sprintf
      "{\n\
      \  \"schema\": \"detectable-bench/torture-v2\",\n\
      \  \"root_seed\": %d,\n\
      \  \"trials\": %d,\n\
      \  \"campaigns\": [\n%s\n  ]\n}\n"
      root_seed trials
      (String.concat ",\n" campaigns)
  in
  let oc = open_out out in
  output_string oc doc;
  close_out oc;
  Printf.printf "torture baseline (%d campaigns, %d trials each) written to %s\n"
    (List.length torture_campaigns) trials out

let torture_compare ~j ~file ~tolerance ~domains =
  let open Tiny_json in
  let fail_cnt = ref 0 in
  (try
     let root_seed = get_int (member "root_seed" j) in
     let trials = get_int (member "trials" j) in
     List.iter
       (fun campaign ->
         let base = member "report" campaign in
         let label = get_str (member "object" base) in
         match
           List.find_opt
             (fun (s : Torture.spec) -> s.Torture.label = label)
             torture_campaigns
         with
         | None ->
             incr fail_cnt;
             Printf.printf
               "%-16s UNKNOWN campaign (renamed/removed?) — regenerate the \
                baseline with --baseline\n"
               label
         | Some spec ->
             let fresh = Torture.run ~domains ~root_seed ~trials spec in
             let verdicts = member "verdicts" base in
             let mismatches =
               List.filter_map
                 (fun (name, want, got) ->
                   if want = got then None
                   else Some (Printf.sprintf "%s: baseline %d, fresh %d" name want got))
                 [
                   ("linearized", get_int (member "linearized" verdicts),
                    fresh.Torture.linearized);
                   ("not_linearized", get_int (member "not_linearized" verdicts),
                    fresh.Torture.not_linearized);
                   ("incomplete", get_int (member "incomplete" verdicts),
                    fresh.Torture.incomplete);
                   ("crashes.injected",
                    get_int (member "injected" (member "crashes" base)),
                    fresh.Torture.crashes_injected);
                   ("recoveries.returned",
                    get_int (member "returned" (member "recoveries" base)),
                    fresh.Torture.rec_returned);
                   ("recoveries.fail_verdicts",
                    get_int (member "fail_verdicts" (member "recoveries" base)),
                    fresh.Torture.rec_failed);
                   ("steps.total", get_int (member "total" (member "steps" base)),
                    fresh.Torture.steps.Torture.d_total);
                   ("steps.max", get_int (member "max" (member "steps" base)),
                    fresh.Torture.steps.Torture.d_max);
                   ("max_shared_bits.max",
                    get_int (member "max" (member "max_shared_bits" base)),
                    fresh.Torture.max_shared_bits.Torture.d_max);
                 ]
             in
             let perf = member "perf" campaign in
             let base_tps = get_num (member "trials_per_sec" perf) in
             let ratio = fresh.Torture.trials_per_sec /. Float.max base_tps 1e-9 in
             (* v2 gates; absent from v1-era baselines, then not enforced *)
             let tps_floor =
               if mem "min_trials_per_sec" perf then
                 get_num (member "min_trials_per_sec" perf)
               else 0.0
             in
             let bytes_ceiling =
               if mem "max_bytes_per_trial" perf then
                 Some (get_num (member "max_bytes_per_trial" perf))
               else None
             in
             if mismatches <> [] then begin
               incr fail_cnt;
               Printf.printf "%-16s DETERMINISM MISMATCH\n" label;
               List.iter (Printf.printf "  %s\n") mismatches;
               Printf.printf
                 "  (behavioral change: regenerate the baseline with \
                  --baseline and explain it in the PR)\n"
             end
             else if
               match bytes_ceiling with
               | Some c -> fresh.Torture.bytes_per_trial > c
               | None -> false
             then begin
               (* allocation counts are machine-independent: no tolerance *)
               incr fail_cnt;
               Printf.printf
                 "%-16s ALLOC REGRESSION: %.0f bytes/trial over the recorded \
                  ceiling %.0f\n"
                 label fresh.Torture.bytes_per_trial
                 (Option.value bytes_ceiling ~default:0.0)
             end
             else if fresh.Torture.trials_per_sec *. tolerance < tps_floor
             then begin
               incr fail_cnt;
               Printf.printf
                 "%-16s THROUGHPUT GATE: %.1f trials/sec under the recorded \
                  floor %.1f even at tolerance %.0fx\n"
                 label fresh.Torture.trials_per_sec tps_floor tolerance
             end
             else if ratio < 1.0 /. tolerance then begin
               incr fail_cnt;
               Printf.printf
                 "%-16s PERF REGRESSION: %.1f trials/sec vs baseline %.1f \
                  (%.2fx, tolerance %.0fx)\n"
                 label fresh.Torture.trials_per_sec base_tps ratio tolerance
             end
             else
               Printf.printf
                 "%-16s ok: counters exact, %.1f trials/sec vs baseline %.1f \
                  (%.2fx), %.0f bytes/trial%s\n"
                 label fresh.Torture.trials_per_sec base_tps ratio
                 fresh.Torture.bytes_per_trial
                 (match bytes_ceiling with
                 | Some c -> Printf.sprintf " (ceiling %.0f)" c
                 | None -> ""))
       (get_list (member "campaigns" j))
   with Tiny_json.Error m ->
     Printf.eprintf "bench --compare: %s: %s\n" file m;
     exit 1);
  if !fail_cnt = 0 then print_endline "torture baseline comparison: ok"
  else begin
    Printf.printf "torture baseline comparison: %d campaign(s) failed\n"
      !fail_cnt;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Fault-model matrix baseline (BENCH_fault.json, schema
   detectable-bench/fault-v1).

   One torture campaign per (object, fault model) cell: the three
   single-word detectable objects of the paper, the two broken
   ablations, crossed with every fault model.  Non-atomic fault models
   only bite when a crash can lose volatile state, so those cells run
   the object on a shared-cache machine with a persist after every
   shared access (the Section 6 transformation); atomic cells keep the
   historical private-cache setup.  The verdict counters per cell are a
   pure function of (cell, root_seed, trials), so `--compare`
   exact-matches them; the documented expectations (docs/TORTURE.md):
   Drw/Dcas/Dmax survive drop and reorder by design, the broken
   ablations are flagged under every model, and torn — which breaks the
   per-word atomic-persistence assumption the paper's model makes —
   additionally tears Dcas's composite words. *)

let fault_matrix_faults =
  [
    Fault_model.Atomic;
    Fault_model.Drop { keep_prob = 0.7 };
    Fault_model.Torn { granularity = 1 };
    Fault_model.Reorder;
  ]

let fault_matrix_objects = function
  | "drw" ->
      Some
        ( (fun ~model ~persist () ->
            let m = Machine.create ~model () in
            (m, Detectable.Drw.instance (Detectable.Drw.create ~persist m ~n:3 ~init:(i 0)))),
          fun s -> Workload.register (Prng.create s) ~procs:3 ~ops_per_proc:3 ~values:3 )
  | "dcas" ->
      Some
        ( (fun ~model ~persist () ->
            let m = Machine.create ~model () in
            (m, Detectable.Dcas.instance (Detectable.Dcas.create ~persist m ~n:3 ~init:(i 0)))),
          fun s -> Workload.cas (Prng.create s) ~procs:3 ~ops_per_proc:3 ~values:3 )
  | "dmax" ->
      Some
        ( (fun ~model ~persist () ->
            let m = Machine.create ~model () in
            (m, Detectable.Dmax.instance (Detectable.Dmax.create ~persist m ~n:3 ~init:0))),
          fun s ->
            Workload.max_register (Prng.create s) ~procs:3 ~ops_per_proc:3 ~values:8 )
  | "broken_drw_no_toggle" ->
      Some
        ( (fun ~model ~persist () ->
            let m = Machine.create ~model () in
            (m, Baselines.Broken.drw_no_toggle ~persist m ~n:3 ~init:(i 0))),
          fun s -> Workload.register (Prng.create s) ~procs:3 ~ops_per_proc:3 ~values:3 )
  | "broken_dcas_no_vec" ->
      Some
        ( (fun ~model ~persist () ->
            let m = Machine.create ~model () in
            (m, Baselines.Broken.dcas_no_vec ~persist m ~n:3 ~init:(i 0))),
          fun s -> Workload.cas (Prng.create s) ~procs:3 ~ops_per_proc:3 ~values:3 )
  | _ -> None

let fault_matrix_labels =
  [ "drw"; "dcas"; "dmax"; "broken_drw_no_toggle"; "broken_dcas_no_vec" ]

let fault_run_cell ~label ~fault ~root_seed ~trials ~domains =
  let mk, workloads_of_seed =
    match fault_matrix_objects label with
    | Some mw -> mw
    | None -> failwith ("unknown fault matrix object " ^ label)
  in
  let model, persist =
    match (fault : Fault_model.t) with
    | Fault_model.Atomic -> (Machine.Private_cache, false)
    | _ -> (Machine.Shared_cache, true)
  in
  let spec =
    Torture.default_spec_of ~label ~mk:(mk ~model ~persist) ~workloads_of_seed
      ~fault ()
  in
  Torture.run ~domains ~root_seed ~trials ~shrink:false spec

let fault_cell_json ~label ~fault (r : Torture.report) =
  Printf.sprintf
    "    { \"object\": %S, \"fault\": %S,\n\
    \      \"verdicts\": { \"linearized\": %d, \"not_linearized\": %d, \
     \"incomplete\": %d, \"budget_exhausted\": %d, \"engine_faults\": %d },\n\
    \      \"crashes_injected\": %d, \"steps_total\": %d,\n\
    \      \"perf\": { \"elapsed_s\": %.6f, \"trials_per_sec\": %.1f, \
     \"domains\": %d } }"
    label
    (Fault_model.to_string fault)
    r.Torture.linearized r.Torture.not_linearized r.Torture.incomplete
    r.Torture.budget_exhausted r.Torture.engine_faults
    r.Torture.crashes_injected r.Torture.steps.Torture.d_total
    r.Torture.elapsed_s r.Torture.trials_per_sec r.Torture.domains_used

let fault_baseline ~out ~trials ~root_seed ~domains =
  let cells =
    List.concat_map
      (fun label ->
        List.map
          (fun fault ->
            let r = fault_run_cell ~label ~fault ~root_seed ~trials ~domains in
            Printf.printf "%-22s %-16s flagged %d / %d trials\n%!" label
              (Fault_model.to_string fault)
              r.Torture.not_linearized trials;
            fault_cell_json ~label ~fault r)
          fault_matrix_faults)
      fault_matrix_labels
  in
  let doc =
    Printf.sprintf
      "{\n\
      \  \"schema\": \"detectable-bench/fault-v1\",\n\
      \  \"root_seed\": %d,\n\
      \  \"trials\": %d,\n\
      \  \"cells\": [\n%s\n  ]\n}\n"
      root_seed trials
      (String.concat ",\n" cells)
  in
  let oc = open_out out in
  output_string oc doc;
  close_out oc;
  Printf.printf "fault baseline (%d cells, %d trials each) written to %s\n"
    (List.length cells) trials out

let fault_compare ~j ~file ~tolerance ~domains =
  let open Tiny_json in
  let fail_cnt = ref 0 in
  (try
     let root_seed = get_int (member "root_seed" j) in
     let trials = get_int (member "trials" j) in
     List.iter
       (fun cell ->
         let label = get_str (member "object" cell) in
         let fault_s = get_str (member "fault" cell) in
         let tag = Printf.sprintf "%s / %s" label fault_s in
         match
           (fault_matrix_objects label, Fault_model.of_string fault_s)
         with
         | None, _ | _, Error _ ->
             incr fail_cnt;
             Printf.printf
               "%-36s UNKNOWN cell (renamed/removed?) — regenerate the \
                baseline with --baseline\n"
               tag
         | Some _, Ok fault ->
             let fresh =
               fault_run_cell ~label ~fault ~root_seed ~trials ~domains
             in
             let verdicts = member "verdicts" cell in
             let mismatches =
               List.filter_map
                 (fun (name, want, got) ->
                   if want = got then None
                   else
                     Some
                       (Printf.sprintf "%s: baseline %d, fresh %d" name want got))
                 [
                   ("linearized", get_int (member "linearized" verdicts),
                    fresh.Torture.linearized);
                   ("not_linearized", get_int (member "not_linearized" verdicts),
                    fresh.Torture.not_linearized);
                   ("incomplete", get_int (member "incomplete" verdicts),
                    fresh.Torture.incomplete);
                   ("budget_exhausted",
                    get_int (member "budget_exhausted" verdicts),
                    fresh.Torture.budget_exhausted);
                   ("engine_faults", get_int (member "engine_faults" verdicts),
                    fresh.Torture.engine_faults);
                   ("crashes_injected", get_int (member "crashes_injected" cell),
                    fresh.Torture.crashes_injected);
                   ("steps_total", get_int (member "steps_total" cell),
                    fresh.Torture.steps.Torture.d_total);
                 ]
             in
             let base_tps =
               get_num (member "trials_per_sec" (member "perf" cell))
             in
             let ratio = fresh.Torture.trials_per_sec /. Float.max base_tps 1e-9 in
             if mismatches <> [] then begin
               incr fail_cnt;
               Printf.printf "%-36s DETERMINISM MISMATCH\n" tag;
               List.iter (Printf.printf "  %s\n") mismatches;
               Printf.printf
                 "  (behavioral change: regenerate the baseline with \
                  --baseline and explain it in the PR)\n"
             end
             else if ratio < 1.0 /. tolerance then begin
               incr fail_cnt;
               Printf.printf
                 "%-36s PERF REGRESSION: %.1f trials/sec vs baseline %.1f \
                  (%.2fx, tolerance %.0fx)\n"
                 tag fresh.Torture.trials_per_sec base_tps ratio tolerance
             end
             else
               Printf.printf
                 "%-36s ok: counters exact, %.1f trials/sec vs baseline %.1f \
                  (%.2fx)\n"
                 tag fresh.Torture.trials_per_sec base_tps ratio)
       (get_list (member "cells" j))
   with Tiny_json.Error m ->
     Printf.eprintf "bench --compare: %s: %s\n" file m;
     exit 1);
  if !fail_cnt = 0 then print_endline "fault baseline comparison: ok"
  else begin
    Printf.printf "fault baseline comparison: %d cell(s) failed\n" !fail_cnt;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Modelcheck engine baselines (BENCH_modelcheck.json, schema
   detectable-modelcheck/v3).

   `--baseline` also runs each modelcheck case under BOTH execution
   substrates (`Replay and `Undo) at the same budgets, asserts the
   deterministic counters are byte-identical (engine equivalence is part
   of the recorded contract, not just a test), and writes per-substrate
   throughput and allocation profile, the measured undo/replay speedup,
   and the two ISSUE 8 perf gates: "min_nodes_per_sec" (the undo-engine
   floor, 1.3x what the artifact recorded before the allocation
   overhaul) and "max_bytes_per_node" (4x the measured undo-loop
   allocation).  `--compare` on a file with this schema reruns the cases
   at the file's recorded budgets and diffs: counters exactly,
   throughput within the tolerance of the recorded value and above the
   floor scaled by the tolerance, the fresh speedup against the file's
   "min_speedup" gate (set below the measured speedup so slower CI
   machines don't flake; the committed baseline records the real
   measured number), and the fresh undo bytes/node under the ceiling
   exactly (allocation counts are machine-independent).

   v3 adds the "reduction_cases" section defined further down: the same
   config explored under every reduction mode on each engine, with
   exact violation parity and a minimum none/dpor+sym-memo node-count
   ratio as recorded gates. *)

let mc_speedup_gate = 3.0

let mc_cases ~budget =
  [
    ("drw_n2_write_read", budget, 1);
    ("dcas_n3_one_cas_each", max 1 (budget - 2), 1);
  ]

let mc_factory = function
  | "drw_n2_write_read" -> Some (mk_drw_n2, drw_n2_workload)
  | "dcas_n3_one_cas_each" -> Some (mk_dcas_n3, dcas_n3_workload)
  | _ -> None

type mc_counters = {
  c_executions : int;
  c_truncated : int;
  c_nodes : int;
  c_violations : int;
  c_configs : int;
}

let mc_run_case ~label ~switches ~crashes =
  let mk, workloads =
    match mc_factory label with
    | Some mw -> mw
    | None -> failwith ("unknown modelcheck bench case " ^ label)
  in
  let cfg engine =
    {
      Modelcheck.Explore.default_config with
      switch_budget = switches;
      crash_budget = crashes;
      engine;
    }
  in
  (* Measure undo BEFORE replay: the replay engine rebuilds from the
     root at every node and churns tens of GB through the major heap,
     which stays expanded afterwards (OCaml 5.1 has no compaction), so
     an undo run timed after it pays replay's GC damage — ~3x slower
     than the same search on a clean heap.  Undo's own churn is small
     enough to leave replay's measurement unaffected.  [settle] eagerly
     finishes outstanding major cycles before each engine run, paying
     the previous run's sweep debt off the measured clock — without it
     the SECOND case's undo run still inherits the first case's replay
     damage. *)
  let settle () =
    Gc.full_major ();
    Gc.full_major ();
    Gc.full_major ()
  in
  settle ();
  let undo = Modelcheck.Explore.explore ~mk ~workloads (cfg `Undo) in
  settle ();
  let replay = Modelcheck.Explore.explore ~mk ~workloads (cfg `Replay) in
  let counters (o : Modelcheck.Explore.outcome) =
    {
      c_executions = o.Modelcheck.Explore.executions;
      c_truncated = o.Modelcheck.Explore.truncated;
      c_nodes = o.Modelcheck.Explore.nodes;
      c_violations = o.Modelcheck.Explore.total_violations;
      c_configs = o.Modelcheck.Explore.distinct_shared_configs;
    }
  in
  let cr = counters replay and cu = counters undo in
  if cr <> cu then
    failwith
      (Printf.sprintf
         "ENGINE DIVERGENCE on %s (sw=%d cr=%d): replay \
          ex=%d/tr=%d/nodes=%d/viol=%d/cfgs=%d vs undo \
          ex=%d/tr=%d/nodes=%d/viol=%d/cfgs=%d"
         label switches crashes cr.c_executions cr.c_truncated cr.c_nodes
         cr.c_violations cr.c_configs cu.c_executions cu.c_truncated cu.c_nodes
         cu.c_violations cu.c_configs);
  (cr, replay, undo)

let mc_engine_json (o : Modelcheck.Explore.outcome) =
  let m = o.Modelcheck.Explore.metrics in
  Printf.sprintf
    {|        { "engine": %S, "elapsed_s": %.6f, "nodes_per_sec": %.1f,
          "rewound_cells": %d, "rewound_cells_per_sec": %.1f,
          "intern_hit_rate": %.4f,
          "alloc": { "minor_words": %.0f, "promoted_words": %.0f, "minor_collections": %d, "bytes_per_node": %.1f } }|}
    m.Modelcheck.Explore.engine m.Modelcheck.Explore.elapsed_s
    m.Modelcheck.Explore.nodes_per_sec m.Modelcheck.Explore.rewound_cells
    m.Modelcheck.Explore.rewound_cells_per_sec
    m.Modelcheck.Explore.intern_hit_rate m.Modelcheck.Explore.minor_words
    m.Modelcheck.Explore.promoted_words m.Modelcheck.Explore.minor_collections
    m.Modelcheck.Explore.bytes_per_node

let mc_speedup (replay : Modelcheck.Explore.outcome)
    (undo : Modelcheck.Explore.outcome) =
  undo.Modelcheck.Explore.metrics.Modelcheck.Explore.nodes_per_sec
  /. Float.max replay.Modelcheck.Explore.metrics.Modelcheck.Explore.nodes_per_sec
       1e-9

(* --- reduction-ratio cases (schema v3) ------------------------------

   One config explored under every reduction mode on each engine: the
   committed rows pin the node counts of [`None]/[`Dpor]/[`Dpor_sym]/
   [`Dpor_sym_memo] on the same search, the violation counters must
   agree exactly across all modes (reduction prunes interleavings,
   never the bug), and "min_node_reduction" gates how much smaller the
   strongest mode's tree must stay relative to the unreduced one.  Two
   configs: a healthy uniform dcas (the canonical-memo mode fully
   active, violation parity at zero) and the no-vec ablation (parity on
   a real violation count). *)

let mc_reductions : Modelcheck.Explore.reduction list =
  [ `None; `Dpor; `Dpor_sym; `Dpor_sym_memo ]

let mk_dcas_no_vec_n2 () =
  let m = Machine.create () in
  (m, Baselines.Broken.dcas_no_vec m ~n:2 ~init:(i 0))

let mc_red_factory = function
  | "dcas_n3_uniform_cas" ->
      Some
        ( mk_dcas_n3,
          Array.make 3 [ Spec.cas_op (i 0) (i 1); Spec.cas_op (i 1) (i 2) ] )
  | "dcas_no_vec_n2_cas_race" ->
      Some
        ( mk_dcas_no_vec_n2,
          [| [ Spec.cas_op (i 0) (i 1) ]; [ Spec.cas_op (i 1) (i 0) ] |] )
  | _ -> None

(* (label, switch budget, crash budget) *)
let mc_red_cases =
  [ ("dcas_n3_uniform_cas", 2, 0); ("dcas_no_vec_n2_cas_race", 2, 1) ]

let mc_red_run ~label ~switches ~crashes ~engine red =
  let mk, workloads =
    match mc_red_factory label with
    | Some mw -> mw
    | None -> failwith ("unknown reduction bench case " ^ label)
  in
  Modelcheck.Explore.explore ~mk ~workloads
    {
      Modelcheck.Explore.default_config with
      switch_budget = switches;
      crash_budget = crashes;
      engine;
      reduction = red;
    }

(* all four modes on one engine; enforces verdict parity in-process so
   a parity break can never even be recorded as a baseline.  Parity is
   on the verdict (does a violation exist), not on the raw count of
   violating executions: a reduced search keeps one representative per
   equivalence class, so it legitimately reaches fewer of the
   equivalent violating interleavings (the recorded per-mode counts are
   still pinned exactly by --compare).  A reduced mode must also never
   do more work than the unreduced one. *)
let mc_red_engine ~label ~switches ~crashes ~engine =
  let outs =
    List.map (fun red -> mc_red_run ~label ~switches ~crashes ~engine red)
      mc_reductions
  in
  let engine_name = match engine with `Undo -> "undo" | `Replay -> "replay" in
  let violates (o : Modelcheck.Explore.outcome) =
    o.Modelcheck.Explore.total_violations > 0
  in
  let unreduced = List.hd outs in
  let base = violates unreduced in
  List.iter2
    (fun red o ->
      if violates o <> base then
        failwith
          (Printf.sprintf
             "REDUCTION PARITY DIVERGENCE on %s (%s, %s): %d violations vs \
              %d under none"
             label engine_name
             (Modelcheck.Explore.reduction_name red)
             o.Modelcheck.Explore.total_violations
             unreduced.Modelcheck.Explore.total_violations);
      if o.Modelcheck.Explore.executions
         > unreduced.Modelcheck.Explore.executions
      then
        failwith
          (Printf.sprintf
             "REDUCTION BLOWUP on %s (%s, %s): %d executions vs %d under none"
             label engine_name
             (Modelcheck.Explore.reduction_name red)
             o.Modelcheck.Explore.executions
             unreduced.Modelcheck.Explore.executions))
    mc_reductions outs;
  outs

let mc_red_nodes (o : Modelcheck.Explore.outcome) = o.Modelcheck.Explore.nodes

let mc_red_ratio outs =
  let nodes = List.map mc_red_nodes outs in
  float_of_int (List.hd nodes)
  /. Float.max (float_of_int (List.nth nodes (List.length nodes - 1))) 1.0

let mc_red_run_json red (o : Modelcheck.Explore.outcome) =
  Printf.sprintf
    {|          { "reduction": %S, "nodes": %d, "executions": %d,
            "total_violations": %d, "distinct_shared_configs": %d }|}
    (Modelcheck.Explore.reduction_name red)
    o.Modelcheck.Explore.nodes o.Modelcheck.Explore.executions
    o.Modelcheck.Explore.total_violations
    o.Modelcheck.Explore.distinct_shared_configs

let mc_red_engine_json ~label ~switches ~crashes ~engine =
  let outs = mc_red_engine ~label ~switches ~crashes ~engine in
  let ratio = mc_red_ratio outs in
  let engine_name = match engine with `Undo -> "undo" | `Replay -> "replay" in
  Printf.printf
    "%-24s %s: %s nodes, %.1fx node reduction (none -> dpor+sym-memo)\n%!"
    label engine_name
    (String.concat "/" (List.map (fun o -> string_of_int (mc_red_nodes o)) outs))
    ratio;
  Printf.sprintf
    "        { \"engine\": %S,\n\
     \          \"runs\": [\n%s\n          ],\n\
     \          \"node_reduction\": %.2f, \"min_node_reduction\": %.2f }"
    engine_name
    (String.concat ",\n" (List.map2 mc_red_run_json mc_reductions outs))
    ratio
    (* the gate is deterministic (node counts are machine-independent)
       but left slack so future reduction work only trips it by
       genuinely regressing, not by re-shaping the tree *)
    (Float.max 1.0 (ratio *. 0.7))

let mc_red_case_json (label, switches, crashes) =
  Printf.sprintf
    "    { \"object\": %S, \"switch_budget\": %d, \"crash_budget\": %d,\n\
     \      \"engines\": [\n%s,\n%s\n      ] }"
    label switches crashes
    (mc_red_engine_json ~label ~switches ~crashes ~engine:`Replay)
    (mc_red_engine_json ~label ~switches ~crashes ~engine:`Undo)

let modelcheck_baseline ~out ~budget =
  let cases =
    List.map
      (fun (label, switches, crashes) ->
        let c, replay, undo = mc_run_case ~label ~switches ~crashes in
        let speedup = mc_speedup replay undo in
        Printf.printf "%-24s sw=%d cr=%d: undo %.2fx over replay (%.0f vs %.0f \
                       nodes/sec)\n%!"
          label switches crashes speedup
          undo.Modelcheck.Explore.metrics.Modelcheck.Explore.nodes_per_sec
          replay.Modelcheck.Explore.metrics.Modelcheck.Explore.nodes_per_sec;
        let undo_bpn =
          undo.Modelcheck.Explore.metrics.Modelcheck.Explore.bytes_per_node
        in
        Printf.sprintf
          "    { \"object\": %S, \"switch_budget\": %d, \"crash_budget\": %d,\n\
          \      \"domains\": 1,\n\
          \      \"counters\": { \"executions\": %d, \"truncated\": %d, \
           \"nodes\": %d,\n\
          \        \"total_violations\": %d, \"distinct_shared_configs\": %d },\n\
          \      \"engines\": [\n%s,\n%s\n      ],\n\
          \      \"undo_speedup\": %.2f, \"min_speedup\": %.1f,\n\
          \      \"min_nodes_per_sec\": %.0f, \"max_bytes_per_node\": %.0f }"
          label switches crashes c.c_executions c.c_truncated c.c_nodes
          c.c_violations c.c_configs (mc_engine_json replay)
          (mc_engine_json undo) speedup mc_speedup_gate (mc_nps_floor label)
          (* keep the ceiling meaningful even for a (nearly)
             allocation-free undo loop: never below one cache line *)
          (Float.max 64.0 (undo_bpn *. alloc_ceiling_factor)))
      (mc_cases ~budget)
  in
  let red_cases = List.map mc_red_case_json mc_red_cases in
  let doc =
    Printf.sprintf
      "{\n\
      \  \"schema\": \"detectable-modelcheck/v3\",\n\
      \  \"cases\": [\n%s\n  ],\n\
      \  \"reduction_cases\": [\n%s\n  ]\n}\n"
      (String.concat ",\n" cases)
      (String.concat ",\n" red_cases)
  in
  let oc = open_out out in
  output_string oc doc;
  close_out oc;
  Printf.printf
    "modelcheck baseline (%d cases + %d reduction cases, both engines) \
     written to %s\n"
    (List.length cases) (List.length red_cases) out

let modelcheck_compare ~j ~file ~tolerance =
  let open Tiny_json in
  let fail_cnt = ref 0 in
  (try
     List.iter
       (fun case ->
         let label = get_str (member "object" case) in
         match mc_factory label with
         | None ->
             incr fail_cnt;
             Printf.printf
               "%-24s UNKNOWN case (renamed/removed?) — regenerate the \
                baseline with --baseline\n"
               label
         | Some _ ->
             let switches = get_int (member "switch_budget" case) in
             let crashes = get_int (member "crash_budget" case) in
             let c, replay, undo = mc_run_case ~label ~switches ~crashes in
             let base = member "counters" case in
             let mismatches =
               List.filter_map
                 (fun (name, want, got) ->
                   if want = got then None
                   else
                     Some
                       (Printf.sprintf "%s: baseline %d, fresh %d" name want
                          got))
                 [
                   ("executions", get_int (member "executions" base),
                    c.c_executions);
                   ("truncated", get_int (member "truncated" base), c.c_truncated);
                   ("nodes", get_int (member "nodes" base), c.c_nodes);
                   ("total_violations",
                    get_int (member "total_violations" base), c.c_violations);
                   ("distinct_shared_configs",
                    get_int (member "distinct_shared_configs" base), c.c_configs);
                 ]
             in
             let base_undo_nps =
               List.fold_left
                 (fun acc e ->
                   if get_str (member "engine" e) = "undo" then
                     get_num (member "nodes_per_sec" e)
                   else acc)
                 0.0
                 (get_list (member "engines" case))
             in
             let fresh_undo_nps =
               undo.Modelcheck.Explore.metrics.Modelcheck.Explore.nodes_per_sec
             in
             let fresh_undo_bpn =
               undo.Modelcheck.Explore.metrics.Modelcheck.Explore.bytes_per_node
             in
             let min_speedup = get_num (member "min_speedup" case) in
             (* v2 gates; absent from v1-era baselines, then not enforced *)
             let nps_floor =
               if mem "min_nodes_per_sec" case then
                 get_num (member "min_nodes_per_sec" case)
               else 0.0
             in
             let bpn_ceiling =
               if mem "max_bytes_per_node" case then
                 Some (get_num (member "max_bytes_per_node" case))
               else None
             in
             let speedup = mc_speedup replay undo in
             let ratio = fresh_undo_nps /. Float.max base_undo_nps 1e-9 in
             if mismatches <> [] then begin
               incr fail_cnt;
               Printf.printf "%-24s DETERMINISM MISMATCH\n" label;
               List.iter (Printf.printf "  %s\n") mismatches;
               Printf.printf
                 "  (behavioral change: regenerate the baseline with \
                  --baseline and explain it in the PR)\n"
             end
             else if speedup < min_speedup then begin
               incr fail_cnt;
               Printf.printf
                 "%-24s SPEEDUP REGRESSION: undo %.2fx over replay \
                  (baseline gate %.1fx, recorded %.2fx)\n"
                 label speedup min_speedup
                 (get_num (member "undo_speedup" case))
             end
             else if
               match bpn_ceiling with
               | Some c -> fresh_undo_bpn > c
               | None -> false
             then begin
               (* allocation counts are machine-independent: no tolerance *)
               incr fail_cnt;
               Printf.printf
                 "%-24s ALLOC REGRESSION: undo %.0f bytes/node over the \
                  recorded ceiling %.0f\n"
                 label fresh_undo_bpn
                 (Option.value bpn_ceiling ~default:0.0)
             end
             else if fresh_undo_nps *. tolerance < nps_floor then begin
               incr fail_cnt;
               Printf.printf
                 "%-24s THROUGHPUT GATE: undo %.0f nodes/sec under the \
                  recorded floor %.0f even at tolerance %.0fx\n"
                 label fresh_undo_nps nps_floor tolerance
             end
             else if ratio < 1.0 /. tolerance then begin
               incr fail_cnt;
               Printf.printf
                 "%-24s PERF REGRESSION: undo %.0f nodes/sec vs baseline \
                  %.0f (%.2fx, tolerance %.0fx)\n"
                 label fresh_undo_nps base_undo_nps ratio tolerance
             end
             else
               Printf.printf
                 "%-24s ok: counters exact, undo %.2fx over replay, %.0f \
                  nodes/sec vs baseline %.0f (%.2fx), %.1f bytes/node%s\n"
                 label speedup fresh_undo_nps base_undo_nps ratio
                 fresh_undo_bpn
                 (match bpn_ceiling with
                 | Some c -> Printf.sprintf " (ceiling %.0f)" c
                 | None -> ""))
       (get_list (member "cases" j));
     (* v3: reduction-ratio cases.  Node counts are machine-independent,
        so every recorded counter must reproduce exactly, and the fresh
        none/dpor+sym-memo node ratio must clear the recorded gate.
        Absent from v2-era baselines, then not enforced. *)
     if mem "reduction_cases" j then
       List.iter
         (fun case ->
           let label = get_str (member "object" case) in
           let switches = get_int (member "switch_budget" case) in
           let crashes = get_int (member "crash_budget" case) in
           if mc_red_factory label = None then begin
             incr fail_cnt;
             Printf.printf
               "%-24s UNKNOWN reduction case (renamed/removed?) — \
                regenerate the baseline with --baseline\n"
               label
           end
           else
             List.iter
               (fun eng ->
                 let engine_name = get_str (member "engine" eng) in
                 let engine =
                   match engine_name with
                   | "replay" -> `Replay
                   | "undo" -> `Undo
                   | other ->
                       raise
                         (Tiny_json.Error ("unknown engine \"" ^ other ^ "\""))
                 in
                 match
                   mc_red_engine ~label ~switches ~crashes ~engine
                 with
                 | exception Failure msg ->
                     (* in-process parity check tripped on the re-run *)
                     incr fail_cnt;
                     Printf.printf "%-24s %s\n" label msg
                 | outs ->
                     let runs = get_list (member "runs" eng) in
                     if List.length runs <> List.length outs then
                       raise
                         (Tiny_json.Error
                            (Printf.sprintf
                               "%s/%s: %d recorded runs, expected %d \
                                reduction modes"
                               label engine_name (List.length runs)
                               (List.length outs)));
                     let mismatches = ref [] in
                     List.iter2
                       (fun run o ->
                         let red = get_str (member "reduction" run) in
                         List.iter
                           (fun (name, want, got) ->
                             if want <> got then
                               mismatches :=
                                 Printf.sprintf
                                   "%s/%s %s: baseline %d, fresh %d"
                                   engine_name red name want got
                                 :: !mismatches)
                           [
                             ("nodes", get_int (member "nodes" run),
                              mc_red_nodes o);
                             ("executions",
                              get_int (member "executions" run),
                              o.Modelcheck.Explore.executions);
                             ("total_violations",
                              get_int (member "total_violations" run),
                              o.Modelcheck.Explore.total_violations);
                             ("distinct_shared_configs",
                              get_int
                                (member "distinct_shared_configs" run),
                              o.Modelcheck.Explore.distinct_shared_configs);
                           ])
                       runs outs;
                     let ratio = mc_red_ratio outs in
                     let gate = get_num (member "min_node_reduction" eng) in
                     if !mismatches <> [] then begin
                       incr fail_cnt;
                       Printf.printf "%-24s REDUCTION DETERMINISM MISMATCH\n"
                         label;
                       List.iter (Printf.printf "  %s\n")
                         (List.rev !mismatches)
                     end
                     else if ratio < gate then begin
                       incr fail_cnt;
                       Printf.printf
                         "%-24s REDUCTION REGRESSION (%s): %.2fx node \
                          reduction under the recorded gate %.2fx\n"
                         label engine_name ratio gate
                     end
                     else
                       Printf.printf
                         "%-24s %s reduction ok: counters exact, %.2fx \
                          node reduction (gate %.2fx)\n"
                         label engine_name ratio gate)
               (get_list (member "engines" case)))
         (get_list (member "reduction_cases" j))
   with Tiny_json.Error m ->
     Printf.eprintf "bench --compare: %s: %s\n" file m;
     exit 1);
  if !fail_cnt = 0 then print_endline "modelcheck baseline comparison: ok"
  else begin
    Printf.printf "modelcheck baseline comparison: %d case(s) failed\n"
      !fail_cnt;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Lincheck engine baselines (BENCH_lincheck.json, schema
   detectable-lincheck/v1).

   Two cases, one per way the incremental checker is used:

   - "modelcheck_leaves": the DRW model-check workload is explored twice,
     once per checker engine, with everything else identical.  All
     exploration counters (plus leaf_checks and the total leaf-history
     event count) must be byte-identical — checker-engine equivalence is
     part of the recorded contract — and the speedup is the ratio of
     checker-attributable wall time (batch re-checks every leaf from
     scratch; incremental reuses the frontier of the shared prefix along
     the decision stack).

   - "torture_histories": long random crash histories (> Lin_check.word_ops
     operation instances, so both engines run on chunked bitsets) are
     generated once with the driver, then each is checked from scratch by
     both engines; verdicts — including violation messages — must agree
     history by history.  No prefix sharing here, so this measures the
     engines' raw one-shot cost on deep histories.

   `--compare` reruns both cases at the recorded parameters and diffs:
   counters exactly (any divergence between the engines hard-fails the
   run itself), the fresh speedup against the recorded min_speedup gate,
   and incremental throughput against the baseline within the
   tolerance. *)

(* Recalibrated from 3.0 alongside the allocation-discipline work: (a)
   the leaf-case measurement now settles the heap between engines (see
   lc_run_leaf_case) — previously whichever engine ran second inherited
   the other's major-GC sweep debt inside its checker-time window,
   inflating the recorded ratio; (b) the small-int intern cache speeds
   the batch reference disproportionately, since batch re-interns every
   leaf history from scratch while incremental reuses its frontier.
   Honestly measured, the stable ratio is ~1.9x; 1.5 keeps headroom for
   noise while still failing if frontier reuse stops paying at all. *)
let lc_leaf_gate = 1.5

(* The long-history case has no prefix sharing, so the incremental
   engine's eager frontier closure makes it somewhat slower than batch
   one-shot checking; the case is recorded for verdict parity on > 62-op
   histories and to catch pathological regressions, and its gate only
   guards against the incremental engine collapsing (timings are a few
   ms, so the ratio is noisy). *)
let lc_hist_gate = 0.25

type lc_counters = { l_checks : int; l_events : int; l_violations : int }

type lc_engine_row = {
  l_name : string;
  l_elapsed : float;
  l_pushed : int;
  l_reuse : float;
}

let lc_checks_per_sec c row =
  float_of_int c.l_checks /. Float.max row.l_elapsed 1e-9

(* modelcheck-leaf case: same exploration under both checker engines.
   Slightly longer histories than drw_n2_workload so the per-leaf batch
   re-check has real work to redo. *)
let lc_leaf_workload =
  [|
    [ Spec.write_op (i 1); Spec.read_op ];
    [ Spec.write_op (i 2); Spec.read_op ];
  |]

let lc_run_leaf_case ~switches ~crashes =
  let cfg lin_engine =
    {
      Modelcheck.Explore.default_config with
      switch_budget = switches;
      crash_budget = crashes;
      lin_engine;
    }
  in
  let run eng =
    Modelcheck.Explore.explore ~mk:mk_drw_n2 ~workloads:lc_leaf_workload
      (cfg eng)
  in
  (* Same measurement hygiene as [mc_run_case]: the batch checker churns
     far more garbage than the incremental one (every leaf re-checked
     from scratch), and whichever engine runs while the other's major
     cycles are still being swept pays that debt inside its own
     checker-time window — enough to swing the recorded ratio 2-3x on a
     single-core box.  Settle the heap before each engine and run the
     low-churn incremental engine first. *)
  let settle () =
    Gc.full_major ();
    Gc.full_major ();
    Gc.full_major ()
  in
  settle ();
  let inc = run `Incremental in
  settle ();
  let batch = run `Batch in
  let signature (o : Modelcheck.Explore.outcome) =
    ( o.Modelcheck.Explore.executions,
      o.Modelcheck.Explore.truncated,
      o.Modelcheck.Explore.nodes,
      o.Modelcheck.Explore.total_violations,
      o.Modelcheck.Explore.distinct_shared_configs,
      o.Modelcheck.Explore.metrics.Modelcheck.Explore.leaf_checks,
      o.Modelcheck.Explore.metrics.Modelcheck.Explore.lin_events_total,
      List.map
        (fun (v : Modelcheck.Explore.violation) -> v.Modelcheck.Explore.msg)
        o.Modelcheck.Explore.violations )
  in
  if signature batch <> signature inc then
    failwith
      (Printf.sprintf
         "LIN ENGINE DIVERGENCE on drw_n2_leaf_reuse (sw=%d cr=%d): the \
          batch and incremental checkers disagree on the exploration outcome"
         switches crashes);
  let row eng (o : Modelcheck.Explore.outcome) =
    let m = o.Modelcheck.Explore.metrics in
    {
      l_name = eng;
      l_elapsed = m.Modelcheck.Explore.lin_elapsed_s;
      l_pushed = m.Modelcheck.Explore.lin_events_pushed;
      l_reuse = m.Modelcheck.Explore.lin_reuse_rate;
    }
  in
  let m = batch.Modelcheck.Explore.metrics in
  let counters =
    {
      l_checks = m.Modelcheck.Explore.leaf_checks;
      l_events = m.Modelcheck.Explore.lin_events_total;
      l_violations = batch.Modelcheck.Explore.total_violations;
    }
  in
  (counters, row "batch" batch, row "incremental" inc)

(* torture-history case: long random crash histories, checked one-shot *)
let lc_histories ~trials ~procs ~ops_per_proc ~seed =
  List.init trials (fun index ->
      let prng = Prng.stream seed ~index in
      let wseed =
        Int64.to_int (Int64.shift_right_logical (Prng.next_int64 prng) 2)
      in
      let machine, inst =
        let m = Machine.create () in
        (m, Detectable.Drw.instance (Detectable.Drw.create m ~n:procs ~init:(i 0)))
      in
      let workloads =
        Workload.register (Prng.create wseed) ~procs ~ops_per_proc ~values:3
      in
      let cfg =
        {
          Driver.schedule = Schedule.random (Prng.split prng);
          crash_plan =
            Crash_plan.random ~max_crashes:2 ~prob:0.002 (Prng.split prng);
          policy = Session.Retry;
          max_steps = 1_000_000;
        }
      in
      let res = Driver.run machine inst ~workloads cfg in
      (inst.Obj_inst.spec, res.Driver.history))

let lc_run_hist_case ~trials ~procs ~ops_per_proc ~seed =
  let histories = lc_histories ~trials ~procs ~ops_per_proc ~seed in
  let time_engine eng =
    (* settle so neither engine's window inherits the other's sweep
       debt (see lc_run_leaf_case) *)
    Gc.full_major ();
    Gc.full_major ();
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let verdicts =
      List.map
        (fun (spec, h) -> Lin_check.check_with eng spec h)
        histories
    in
    (Unix.gettimeofday () -. t0, verdicts)
  in
  let b_elapsed, b_verdicts = time_engine `Batch in
  let i_elapsed, i_verdicts = time_engine `Incremental in
  List.iteri
    (fun k (vb, vi) ->
      let tag = function
        | Lin_check.Ok_linearizable _ -> "ok"
        | Lin_check.Violation m -> "violation: " ^ m
      in
      if tag vb <> tag vi then
        failwith
          (Printf.sprintf
             "LIN ENGINE DIVERGENCE on drw_long_histories trial %d: batch %S \
              vs incremental %S"
             k (tag vb) (tag vi)))
    (List.combine b_verdicts i_verdicts);
  let events =
    List.fold_left (fun acc (_, h) -> acc + List.length h) 0 histories
  in
  let violations =
    List.fold_left
      (fun acc v ->
        match v with Lin_check.Violation _ -> acc + 1 | _ -> acc)
      0 b_verdicts
  in
  let counters =
    { l_checks = trials; l_events = events; l_violations = violations }
  in
  let row name elapsed =
    { l_name = name; l_elapsed = elapsed; l_pushed = events; l_reuse = 0.0 }
  in
  (counters, row "batch" b_elapsed, row "incremental" i_elapsed)

let lc_engine_json c row =
  Printf.sprintf
    {|        { "lin_engine": %S, "elapsed_s": %.6f, "checks_per_sec": %.1f,
          "events_pushed": %d, "reuse_rate": %.4f }|}
    row.l_name row.l_elapsed (lc_checks_per_sec c row) row.l_pushed row.l_reuse

let lc_speedup batch inc = batch.l_elapsed /. Float.max inc.l_elapsed 1e-9

let lc_case_json ~label ~kind ~params (c, batch, inc) ~gate =
  let speedup = lc_speedup batch inc in
  Printf.printf
    "%-24s %s: incremental %.2fx over batch (%.4fs vs %.4fs checker time, \
     reuse %.1f%%)\n\
     %!"
    label params speedup batch.l_elapsed inc.l_elapsed (100.0 *. inc.l_reuse);
  Printf.sprintf
    "    { \"object\": %S, \"kind\": %S, %s,\n\
    \      \"counters\": { \"checks\": %d, \"events_total\": %d, \
     \"violations\": %d },\n\
    \      \"engines\": [\n%s,\n%s\n      ],\n\
    \      \"incremental_speedup\": %.2f, \"min_speedup\": %.1f }"
    label kind params c.l_checks c.l_events c.l_violations
    (lc_engine_json c batch) (lc_engine_json c inc) speedup gate

let lincheck_baseline ~out ~budget ~trials =
  let leaf =
    lc_case_json ~label:"drw_n2_leaf_reuse" ~kind:"modelcheck_leaves"
      ~params:(Printf.sprintf "\"switch_budget\": %d, \"crash_budget\": 1" budget)
      (lc_run_leaf_case ~switches:budget ~crashes:1)
      ~gate:lc_leaf_gate
  in
  let hist =
    lc_case_json ~label:"drw_long_histories" ~kind:"torture_histories"
      ~params:
        (Printf.sprintf
           "\"trials\": %d, \"procs\": 3, \"ops_per_proc\": 40, \"seed\": 7"
           trials)
      (lc_run_hist_case ~trials ~procs:3 ~ops_per_proc:40 ~seed:7)
      ~gate:lc_hist_gate
  in
  let doc =
    Printf.sprintf
      "{\n\
      \  \"schema\": \"detectable-lincheck/v1\",\n\
      \  \"cases\": [\n%s,\n%s\n  ]\n}\n"
      leaf hist
  in
  let oc = open_out out in
  output_string oc doc;
  close_out oc;
  Printf.printf "lincheck baseline (2 cases, both engines) written to %s\n" out

let lincheck_compare ~j ~file ~tolerance =
  let open Tiny_json in
  let fail_cnt = ref 0 in
  (try
     List.iter
       (fun case ->
         let label = get_str (member "object" case) in
         let rerun =
           match get_str (member "kind" case) with
           | "modelcheck_leaves" ->
               Some
                 (lc_run_leaf_case
                    ~switches:(get_int (member "switch_budget" case))
                    ~crashes:(get_int (member "crash_budget" case)))
           | "torture_histories" ->
               Some
                 (lc_run_hist_case
                    ~trials:(get_int (member "trials" case))
                    ~procs:(get_int (member "procs" case))
                    ~ops_per_proc:(get_int (member "ops_per_proc" case))
                    ~seed:(get_int (member "seed" case)))
           | k ->
               incr fail_cnt;
               Printf.printf
                 "%-24s UNKNOWN kind %S (renamed/removed?) — regenerate the \
                  baseline with --baseline\n"
                 label k;
               None
         in
         match rerun with
         | None -> ()
         | Some (c, batch, inc) ->
             let base = member "counters" case in
             let mismatches =
               List.filter_map
                 (fun (name, want, got) ->
                   if want = got then None
                   else
                     Some
                       (Printf.sprintf "%s: baseline %d, fresh %d" name want
                          got))
                 [
                   ("checks", get_int (member "checks" base), c.l_checks);
                   ("events_total", get_int (member "events_total" base),
                    c.l_events);
                   ("violations", get_int (member "violations" base),
                    c.l_violations);
                 ]
             in
             let base_cps =
               List.fold_left
                 (fun acc e ->
                   if get_str (member "lin_engine" e) = "incremental" then
                     get_num (member "checks_per_sec" e)
                   else acc)
                 0.0
                 (get_list (member "engines" case))
             in
             let fresh_cps = lc_checks_per_sec c inc in
             let min_speedup = get_num (member "min_speedup" case) in
             let speedup = lc_speedup batch inc in
             let ratio = fresh_cps /. Float.max base_cps 1e-9 in
             if mismatches <> [] then begin
               incr fail_cnt;
               Printf.printf "%-24s DETERMINISM MISMATCH\n" label;
               List.iter (Printf.printf "  %s\n") mismatches;
               Printf.printf
                 "  (behavioral change: regenerate the baseline with \
                  --baseline and explain it in the PR)\n"
             end
             else if speedup < min_speedup then begin
               incr fail_cnt;
               Printf.printf
                 "%-24s SPEEDUP REGRESSION: incremental %.2fx over batch \
                  (baseline gate %.1fx, recorded %.2fx)\n"
                 label speedup min_speedup
                 (get_num (member "incremental_speedup" case))
             end
             else if ratio < 1.0 /. tolerance then begin
               incr fail_cnt;
               Printf.printf
                 "%-24s PERF REGRESSION: incremental %.0f checks/sec vs \
                  baseline %.0f (%.2fx, tolerance %.0fx)\n"
                 label fresh_cps base_cps ratio tolerance
             end
             else
               Printf.printf
                 "%-24s ok: counters exact, incremental %.2fx over batch, \
                  %.0f checks/sec vs baseline %.0f (%.2fx)\n"
                 label speedup fresh_cps base_cps ratio)
       (get_list (member "cases" j))
   with Tiny_json.Error m ->
     Printf.eprintf "bench --compare: %s: %s\n" file m;
     exit 1);
  if !fail_cnt = 0 then print_endline "lincheck baseline comparison: ok"
  else begin
    Printf.printf "lincheck baseline comparison: %d case(s) failed\n" !fail_cnt;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Theorem 1 lower-bound experiment (BENCH_lowerbound.json, schema
   detectable-bench/lowerbound-v2; the full story is docs/LOWERBOUND.md).

   The paper's Theorem 1: a detectable CAS object for N processes
   reaches at least 2^(N-1) pairwise non-memory-equivalent
   configurations.  The experiment certifies the bound mechanically:
   the reduced explorer enumerates distinct shared-memory
   configurations of Algorithm 2 (`Dcas`), and every counted
   configuration is a certified lower bound (every configuration was
   either physically reached, or — under the canonical-counting mode —
   is the permutation image of one that was; reduction never adds
   states).

   Two workload shapes, recorded per case:

   - "graded_cas_chains" (N <= 6): process p runs cas(0,1); …;
     cas(p, p+1), so for any subset S of processes there is a schedule
     in which exactly the members of S each perform one successful CAS
     and the configuration C_S is visited.  Subsets of size k cost k-1
     preemptions, so switch budget s exhibits every C_S with
     |S| <= s+1.  Each case runs [`Dpor] and [`None] under the SAME
     node budget: the reduced search completes and certifies the bound
     while from N=5 the unreduced search caps out below it.

   - "uniform_cas_chain" (N >= 7): every process runs the identical
     chain cas(0,1); …; cas(N-1,N) — the uniformity that activates
     [`Dpor_sym_memo]'s orbit-size-weighted canonical counting, whose
     weighted total equals the cardinality of the (permutation-closed)
     budget-limited reachable set.  Each case runs [`Dpor_sym_memo]
     and [`Dpor_sym] under the SAME node budget, chosen between the
     two searches' measured needs: the canonical-memo search completes
     and certifies 2^(N-1), while plain [`Dpor_sym] exhausts the
     budget — and, counting only unweighted orbit representatives,
     stays far below the bound regardless.  That pair of rows is the
     committed evidence that canonical memoisation, not just symmetry
     skipping, is what scales the certificate past N=6.

   N=7/8 cases carry "recheck": false — a full re-run takes minutes,
   so --compare validates their recorded arithmetic (bound value,
   which rows certify, the memo-vs-sym contrast) without re-running;
   regenerate with --baseline to refresh the measurements. *)

let lb_workload ~shape n =
  match shape with
  | `Graded ->
      Array.init n (fun p ->
          List.init (p + 1) (fun k -> Spec.cas_op (i k) (i (k + 1))))
  | `Uniform ->
      Array.init n (fun _ ->
          List.init n (fun k -> Spec.cas_op (i k) (i (k + 1))))

let lb_shape_name = function
  | `Graded -> "graded_cas_chains"
  | `Uniform -> "uniform_cas_chain"

let lb_shape_of_name = function
  | "graded_cas_chains" -> `Graded
  | "uniform_cas_chain" -> `Uniform
  | s -> failwith ("unknown lowerbound workload in baseline: " ^ s)

(* (n, switch budget, shared node budget, workload shape, reductions,
   recheck under --compare); graded budgets are ~20% above the measured
   reduced-search need so the reduced run completes while the unreduced
   run caps out (from N=5); uniform budgets sit BETWEEN the measured
   dpor+sym-memo and dpor+sym needs (6.61M vs 7.21M nodes at N=7,
   17.93M vs 19.48M at N=8) so the memo search completes while
   dpor+sym gets capped.  2..4 are smoke-sized. *)
let lb_cases =
  [
    (2, 1, 10_000, `Graded, [ `Dpor; `None ], true);
    (3, 1, 10_000, `Graded, [ `Dpor; `None ], true);
    (4, 1, 100_000, `Graded, [ `Dpor; `None ], true);
    (5, 2, 1_000_000, `Graded, [ `Dpor; `None ], true);
    (6, 2, 5_000_000, `Graded, [ `Dpor; `None ], true);
    (7, 2, 7_000_000, `Uniform, [ `Dpor_sym_memo; `Dpor_sym ], false);
    (8, 2, 19_000_000, `Uniform, [ `Dpor_sym_memo; `Dpor_sym ], false);
  ]

let lb_run ~n ~switches ~node_budget ~shape reduction =
  let mk () =
    let m = Machine.create () in
    (m, Detectable.Dcas.instance (Detectable.Dcas.create m ~n ~init:(i 0)))
  in
  let cfg =
    {
      Modelcheck.Explore.default_config with
      switch_budget = switches;
      crash_budget = 0;
      max_steps = 50_000;
      node_budget;
      reduction;
    }
  in
  Modelcheck.Explore.explore ~mk ~workloads:(lb_workload ~shape n) cfg

type lb_counters = {
  lb_configs : int;
  lb_nodes : int;
  lb_execs : int;
  lb_capped : bool;
}

let lb_counters (o : Modelcheck.Explore.outcome) =
  {
    lb_configs = o.Modelcheck.Explore.distinct_shared_configs;
    lb_nodes = o.Modelcheck.Explore.nodes;
    lb_execs = o.Modelcheck.Explore.executions;
    lb_capped = o.Modelcheck.Explore.capped;
  }

let lb_run_json ~bound (o : Modelcheck.Explore.outcome) =
  let m = o.Modelcheck.Explore.metrics in
  let c = lb_counters o in
  Printf.sprintf
    {|        { "reduction": %S, "configs": %d, "nodes": %d,
          "executions": %d, "sleep_skips": %d, "sym_skips": %d,
          "source_skips": %d, "canonical_orbits": %d, "capped": %b,
          "meets_bound": %b,
          "elapsed_s": %.6f, "nodes_per_sec": %.1f }|}
    m.Modelcheck.Explore.reduction c.lb_configs c.lb_nodes c.lb_execs
    m.Modelcheck.Explore.sleep_skips m.Modelcheck.Explore.sym_skips
    m.Modelcheck.Explore.source_skips m.Modelcheck.Explore.canonical_orbits
    c.lb_capped
    (c.lb_configs >= bound)
    m.Modelcheck.Explore.elapsed_s m.Modelcheck.Explore.nodes_per_sec

(* [min_n]/[node_cap] exist for the CI smoke: `--lb-min-n 7 --lb-max-n 7
   --lb-node-cap 200000` runs just the N=7 uniform case with its budget
   overridden to something a CI runner finishes in seconds — both runs
   cap out, their counters are partial lower bounds, and json_check
   still validates the file (capped certifying runs are exempt from the
   bound gate; a capped dpor+sym row still counts as miss evidence). *)
let lowerbound_baseline ~out ?(min_n = 2) ?(node_cap = 0) ~max_n () =
  let cases =
    List.filter_map
      (fun (n, switches, node_budget, shape, reds, recheck) ->
        if n > max_n || n < min_n then None
        else begin
          let node_budget =
            if node_cap > 0 then min node_budget node_cap else node_budget
          in
          let bound = 1 lsl (n - 1) in
          let outs =
            List.map (fun red -> lb_run ~n ~switches ~node_budget ~shape red) reds
          in
          List.iter2
            (fun red (o : Modelcheck.Explore.outcome) ->
              let c = lb_counters o in
              Printf.printf
                "lowerbound N=%d sw=%d budget=%d %s: bound %d, %-13s %d \
                 configs (%d nodes%s)\n%!"
                n switches node_budget (lb_shape_name shape) bound
                (Modelcheck.Explore.reduction_name red)
                c.lb_configs c.lb_nodes
                (if c.lb_capped then ", CAPPED" else ""))
            reds outs;
          Some
            (Printf.sprintf
               "    { \"n\": %d, \"switch_budget\": %d, \"node_budget\": %d,\n\
               \      \"workload\": %S, \"recheck\": %b,\n\
               \      \"bound\": %d,\n\
               \      \"runs\": [\n%s\n      ] }"
               n switches node_budget (lb_shape_name shape) recheck bound
               (String.concat ",\n" (List.map (lb_run_json ~bound) outs)))
        end)
      lb_cases
  in
  let doc =
    Printf.sprintf
      "{\n\
      \  \"schema\": \"detectable-bench/lowerbound-v2\",\n\
      \  \"object\": \"dcas\",\n\
      \  \"crash_budget\": 0,\n\
      \  \"cases\": [\n%s\n  ]\n}\n"
      (String.concat ",\n" cases)
  in
  let oc = open_out out in
  output_string oc doc;
  close_out oc;
  Printf.printf "lowerbound baseline (%d cases) written to %s\n"
    (List.length cases) out

(* Which reductions carry the certification obligation: [`Dpor] on the
   graded cases and [`Dpor_sym_memo] on the uniform ones must clear
   2^(N-1) at every N >= 4; [`None] and plain [`Dpor_sym] are committed
   precisely as the rows that fail to. *)
let lb_must_certify = function
  | `Dpor | `Dpor_sym_memo -> true
  | `None | `Dpor_sym -> false

let lowerbound_compare ~j ~file ~tolerance =
  let open Tiny_json in
  let get_bool what v =
    match v with
    | Bool b -> b
    | _ -> failwith (Printf.sprintf "lowerbound compare: %s is not a bool" what)
  in
  let fail_cnt = ref 0 in
  (* the committed memo-vs-sym contrast: once any plain dpor+sym row is
     present, at least one must miss the bound its sibling memo row
     certifies — losing that row silently would gut the evidence *)
  let sym_rows = ref 0 and sym_misses = ref 0 in
  (try
     List.iter
       (fun case ->
         let n = get_int (member "n" case) in
         let switches = get_int (member "switch_budget" case) in
         let node_budget = get_int (member "node_budget" case) in
         let bound = get_int (member "bound" case) in
         (* v1 has a file-wide graded workload and no recheck marker *)
         let shape =
           if mem "workload" case then
             lb_shape_of_name (get_str (member "workload" case))
           else `Graded
         in
         let recheck =
           if mem "recheck" case then get_bool "recheck" (member "recheck" case)
           else true
         in
         if bound <> 1 lsl (n - 1) then begin
           incr fail_cnt;
           Printf.printf "lowerbound N=%d: recorded bound %d is not 2^(N-1)\n"
             n bound
         end;
         List.iter
           (fun run ->
             let red =
               match get_str (member "reduction" run) with
               | "none" -> `None
               | "dpor" -> `Dpor
               | "dpor+sym" -> `Dpor_sym
               | "dpor+sym-memo" -> `Dpor_sym_memo
               | s -> failwith ("unknown reduction in baseline: " ^ s)
             in
             let label =
               Printf.sprintf "lowerbound N=%d %s" n
                 (Modelcheck.Explore.reduction_name red)
             in
             let rec_configs = get_int (member "configs" run) in
             let rec_capped = get_bool "capped" (member "capped" run) in
             let rec_meets = get_bool "meets_bound" (member "meets_bound" run) in
             if red = `Dpor_sym then begin
               incr sym_rows;
               if rec_configs < bound then incr sym_misses
             end;
             if rec_meets <> (rec_configs >= bound) then begin
               incr fail_cnt;
               Printf.printf
                 "%-30s RECORD INCONSISTENT: meets_bound %b but %d configs \
                  vs bound %d\n"
                 label rec_meets rec_configs bound
             end
             else if not recheck then begin
               (* frozen certificate rows (N >= 7 take minutes to re-run):
                  the arithmetic above plus the certification gate run on
                  the recorded values; --baseline refreshes them *)
               if lb_must_certify red && n >= 4 && rec_configs < bound then begin
                 incr fail_cnt;
                 Printf.printf
                   "%-30s BOUND VIOLATION (recorded): %d configs < 2^(N-1) = \
                    %d\n"
                   label rec_configs bound
               end
               else
                 Printf.printf
                   "%-30s recorded: %d configs (bound %d%s)%s — not re-run\n"
                   label rec_configs bound
                   (if rec_meets then ", certified" else ", missed")
                   (if rec_capped then ", capped" else "")
             end
             else begin
               let fresh = lb_run ~n ~switches ~node_budget ~shape red in
               let c = lb_counters fresh in
               let mismatches =
                 List.filter_map
                   (fun (name, want, got) ->
                     if want = got then None
                     else
                       Some
                         (Printf.sprintf "%s: baseline %d, fresh %d" name want
                            got))
                   [
                     ("configs", rec_configs, c.lb_configs);
                     ("nodes", get_int (member "nodes" run), c.lb_nodes);
                     ("executions", get_int (member "executions" run), c.lb_execs);
                   ]
                 @ (if rec_capped = c.lb_capped then []
                    else
                      [
                        Printf.sprintf "capped: baseline %b, fresh %b"
                          rec_capped c.lb_capped;
                      ])
               in
               let base_nps = get_num (member "nodes_per_sec" run) in
               let fresh_nps =
                 fresh.Modelcheck.Explore.metrics
                   .Modelcheck.Explore.nodes_per_sec
               in
               let ratio = fresh_nps /. Float.max base_nps 1e-9 in
               if mismatches <> [] then begin
                 incr fail_cnt;
                 Printf.printf "%-30s DETERMINISM MISMATCH\n" label;
                 List.iter (Printf.printf "  %s\n") mismatches;
                 Printf.printf
                   "  (behavioral change: regenerate the baseline with \
                    --baseline and explain it in the PR)\n"
               end
               else if lb_must_certify red && n >= 4 && c.lb_configs < bound
               then begin
                 (* the acceptance gate: the certifying reduction must clear
                    the Theorem 1 bound at every N >= 4 in the table *)
                 incr fail_cnt;
                 Printf.printf
                   "%-30s BOUND VIOLATION: %d configs < 2^(N-1) = %d\n" label
                   c.lb_configs bound
               end
               else if ratio < 1.0 /. tolerance then begin
                 incr fail_cnt;
                 Printf.printf
                   "%-30s PERF REGRESSION: %.0f nodes/sec vs baseline %.0f \
                    (%.2fx, tolerance %.0fx)\n"
                   label fresh_nps base_nps ratio tolerance
               end
               else
                 Printf.printf
                   "%-30s ok: counters exact, %d configs (bound %d), %.0f \
                    nodes/sec vs baseline %.0f (%.2fx)\n"
                   label c.lb_configs bound fresh_nps base_nps ratio
             end)
           (get_list (member "runs" case)))
       (get_list (member "cases" j));
     if !sym_rows > 0 && !sym_misses = 0 then begin
       incr fail_cnt;
       print_endline
         "lowerbound EVIDENCE MISSING: no committed dpor+sym row misses the \
          bound — the memo-vs-sym contrast is gone; regenerate with \
          --baseline and pick budgets per the lb_cases comment"
     end
   with Tiny_json.Error m | Failure m ->
     Printf.eprintf "bench --compare: %s: %s\n" file m;
     exit 1);
  if !fail_cnt = 0 then print_endline "lowerbound baseline comparison: ok"
  else begin
    Printf.printf "lowerbound baseline comparison: %d case(s) failed\n"
      !fail_cnt;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* entry point: ad-hoc flag scan (no cmdliner dependency here)

   --json [--budget N] [--smoke]   checker-throughput JSON to stdout
                                   (--smoke skips the slow DRW@4
                                   replay/undo substrate rows)
   --baseline [--out FILE] [--trials N] [--seed S] [--domains D]
              [--fault-out FILE] [--fault-trials N]
              [--mc-out FILE] [--mc-budget N]
              [--lin-out FILE] [--lin-budget N] [--lin-trials N]
              [--lb-out FILE] [--lb-max-n N]
                                   writes the torture baseline (--out),
                                   the fault-model matrix baseline
                                   (--fault-out), the modelcheck engine
                                   baseline (--mc-out), the lincheck
                                   engine baseline (--lin-out) and the
                                   Theorem 1 lower-bound baseline
                                   (--lb-out; --lb-max-n caps the
                                   process-count sweep, e.g. 4 for a
                                   smoke run)
   --lowerbound [--lb-out FILE] [--lb-max-n N]
                                   writes only the lower-bound baseline
   --compare FILE [--tolerance X] [--domains D]
                                   dispatches on the file's "schema"
                                   (torture-v1/v2, fault-v1,
                                   modelcheck/v1/v2, lincheck/v1 or
                                   lowerbound-v1)
   (no flags)                      full experiment + bench suite *)

let flag_value name =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then None
    else if Sys.argv.(i) = name then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let int_flag name default =
  match flag_value name with
  | None -> default
  | Some v -> (
      match int_of_string_opt v with
      | Some n when n >= 0 -> n
      | _ ->
          Printf.eprintf "bench: %s expects a non-negative integer\n" name;
          exit 2)

let float_flag name default =
  match flag_value name with
  | None -> default
  | Some v -> (
      match float_of_string_opt v with
      | Some f when f > 0.0 -> f
      | _ ->
          Printf.eprintf "bench: %s expects a positive number\n" name;
          exit 2)

let () =
  if Array.exists (( = ) "--json") Sys.argv then
    checker_json ~budget:(int_flag "--budget" 1)
      ~smoke:(Array.exists (( = ) "--smoke") Sys.argv)
  else if Array.exists (( = ) "--baseline") Sys.argv then begin
    torture_baseline
      ~out:(Option.value (flag_value "--out") ~default:"BENCH_torture.json")
      ~trials:(int_flag "--trials" 2_000)
      ~root_seed:(int_flag "--seed" 1)
      ~domains:(int_flag "--domains" 1);
    fault_baseline
      ~out:(Option.value (flag_value "--fault-out") ~default:"BENCH_fault.json")
      ~trials:(int_flag "--fault-trials" 300)
      ~root_seed:(int_flag "--seed" 1)
      ~domains:(int_flag "--domains" 1);
    modelcheck_baseline
      ~out:
        (Option.value (flag_value "--mc-out") ~default:"BENCH_modelcheck.json")
      ~budget:(int_flag "--mc-budget" 4);
    lincheck_baseline
      ~out:(Option.value (flag_value "--lin-out") ~default:"BENCH_lincheck.json")
      ~budget:(int_flag "--lin-budget" 4)
      ~trials:(int_flag "--lin-trials" 30);
    lowerbound_baseline
      ~out:
        (Option.value (flag_value "--lb-out") ~default:"BENCH_lowerbound.json")
      ~min_n:(int_flag "--lb-min-n" 2)
      ~node_cap:(int_flag "--lb-node-cap" 0)
      ~max_n:(int_flag "--lb-max-n" 6) ()
  end
  else if Array.exists (( = ) "--lowerbound") Sys.argv then
    lowerbound_baseline
      ~out:
        (Option.value (flag_value "--lb-out") ~default:"BENCH_lowerbound.json")
      ~min_n:(int_flag "--lb-min-n" 2)
      ~node_cap:(int_flag "--lb-node-cap" 0)
      ~max_n:(int_flag "--lb-max-n" 6) ()
  else if Array.exists (( = ) "--compare") Sys.argv then
    let file =
      match flag_value "--compare" with
      | Some f -> f
      | None ->
          prerr_endline "bench: --compare expects a baseline file";
          exit 2
    in
    let j =
      match Tiny_json.of_file file with
      | j -> j
      | exception Tiny_json.Error m ->
          Printf.eprintf "bench --compare: %s: %s\n" file m;
          exit 1
      | exception Sys_error m ->
          Printf.eprintf "bench --compare: %s\n" m;
          exit 1
    in
    let tolerance = float_flag "--tolerance" 10.0 in
    match Tiny_json.get_str (Tiny_json.member "schema" j) with
    | "detectable-bench/torture-v1" | "detectable-bench/torture-v2" ->
        torture_compare ~j ~file ~tolerance ~domains:(int_flag "--domains" 1)
    | "detectable-bench/fault-v1" ->
        fault_compare ~j ~file ~tolerance ~domains:(int_flag "--domains" 1)
    | "detectable-modelcheck/v1" | "detectable-modelcheck/v2"
    | "detectable-modelcheck/v3" ->
        modelcheck_compare ~j ~file ~tolerance
    | "detectable-lincheck/v1" -> lincheck_compare ~j ~file ~tolerance
    | "detectable-bench/lowerbound-v1" | "detectable-bench/lowerbound-v2" ->
        lowerbound_compare ~j ~file ~tolerance
    | s ->
        Printf.eprintf "bench --compare: unexpected schema %S\n" s;
        exit 1
    | exception Tiny_json.Error m ->
        Printf.eprintf "bench --compare: %s: %s\n" file m;
        exit 1
  else begin
    Experiments.Registry.run_all ();
    print_newline ();
    Table.print (steps_table ());
    Table.print (drw_scaling_table ());
    run_bechamel ();
    print_endline "done."
  end
