(* Minimal dependency-free JSON parser shared by the bench harness
   (baseline comparison in main.ml), the schema validator
   (json_check.ml) and the torture engine's checkpoint reader.  String
   escapes decode exactly (the checkpoint resume path re-emits parsed
   violation messages and must reproduce the original report
   byte-for-byte); \uXXXX escapes outside ASCII are encoded as UTF-8. *)

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

type t =
  | Null
  | Bool of bool
  | Int of int
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let error msg = fail "json parse error at byte %d: %s" !pos msg in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> error (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some (('"' | '\\' | '/') as c) ->
              Buffer.add_char b c;
              advance ()
          | Some 'b' ->
              Buffer.add_char b '\b';
              advance ()
          | Some 'f' ->
              Buffer.add_char b '\012';
              advance ()
          | Some 'n' ->
              Buffer.add_char b '\n';
              advance ()
          | Some 'r' ->
              Buffer.add_char b '\r';
              advance ()
          | Some 't' ->
              Buffer.add_char b '\t';
              advance ()
          | Some 'u' ->
              advance ();
              let code = ref 0 in
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' as c) ->
                    code := (!code * 16) + (Char.code c - Char.code '0');
                    advance ()
                | Some ('a' .. 'f' as c) ->
                    code := (!code * 16) + (Char.code c - Char.code 'a' + 10);
                    advance ()
                | Some ('A' .. 'F' as c) ->
                    code := (!code * 16) + (Char.code c - Char.code 'A' + 10);
                    advance ()
                | _ -> error "bad \\u escape"
              done;
              let cp = !code in
              (* UTF-8 encode; surrogates round-trip as-is for our
                 emitters, which only escape control bytes *)
              if cp < 0x80 then Buffer.add_char b (Char.chr cp)
              else if cp < 0x800 then begin
                Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
              end
          | _ -> error "bad escape");
          go ()
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    let lexeme = String.sub s start (!pos - start) in
    (* integer lexemes keep exact precision: a 63-bit seed does not
       survive a round-trip through float *)
    match int_of_string_opt lexeme with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt lexeme with
        | Some f -> Num f
        | None -> error "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> error "expected , or } in object"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); List [])
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> error "expected , or ] in array"
          in
          elems []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> error "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then error "trailing garbage";
  v

let of_file path =
  let contents =
    (* read by chunks: works for pipes and /dev/stdin, where
       [in_channel_length] cannot seek *)
    let ic = open_in_bin path in
    let b = Buffer.create 4096 in
    let chunk = Bytes.create 4096 in
    let rec go () =
      let k = input ic chunk 0 (Bytes.length chunk) in
      if k > 0 then begin
        Buffer.add_subbytes b chunk 0 k;
        go ()
      end
    in
    go ();
    close_in ic;
    Buffer.contents b
  in
  parse contents

(* accessors; all raise {!Error} with the offending key in the message *)

let member k = function
  | Obj fields -> (
      match List.assoc_opt k fields with
      | Some v -> v
      | None -> fail "missing key %S" k)
  | _ -> fail "looked up %S in a non-object" k

let mem k = function Obj fields -> List.mem_assoc k fields | _ -> false

let get_str = function Str s -> s | _ -> fail "expected a string"

let get_num = function
  | Num f -> f
  | Int i -> float_of_int i
  | _ -> fail "expected a number"

let get_int = function
  | Int i -> i
  | Num f -> int_of_float f
  | _ -> fail "expected a number"

let get_list = function List l -> l | _ -> fail "expected an array"
