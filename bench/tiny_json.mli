(** Minimal dependency-free JSON parser shared by the bench harness,
    the schema validator and the torture engine's checkpoint reader.
    String escapes decode exactly (quote, backslash, slash, backspace,
    formfeed, newline, return, tab, and [\uXXXX] as UTF-8), so a string
    emitted with the repo's JSON escapers parses back to the original
    bytes — which the checkpoint/resume byte-identity contract relies
    on. *)

exception Error of string

type t =
  | Null
  | Bool of bool
  | Int of int  (** integer lexemes, kept exact (63-bit seeds) *)
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> t
(** Raises {!Error} on malformed input (with a byte offset). *)

val of_file : string -> t
(** Chunked read (works for pipes), then {!parse}. *)

val member : string -> t -> t
(** Field lookup; raises {!Error} naming the missing key. *)

val mem : string -> t -> bool

val get_str : t -> string
val get_num : t -> float
val get_int : t -> int
val get_list : t -> t list
