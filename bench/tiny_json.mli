(** Minimal dependency-free JSON parser shared by the bench harness and
    the schema validator.  String escapes decode approximately (each
    escaped character becomes ['?']): the bench schemas depend only on
    keys, numbers and plain-ASCII markers. *)

exception Error of string

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> t
(** Raises {!Error} on malformed input (with a byte offset). *)

val of_file : string -> t
(** Chunked read (works for pipes), then {!parse}. *)

val member : string -> t -> t
(** Field lookup; raises {!Error} naming the missing key. *)

val mem : string -> t -> bool

val get_str : t -> string
val get_num : t -> float
val get_int : t -> int
val get_list : t -> t list
