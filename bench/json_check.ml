(* Schema validator for the bench/CLI JSON artefacts, run from the
   tier-1 test alias (and from @bench-check).  Parses the file with the
   dependency-free Tiny_json parser and dispatches on the "schema"
   marker:

   - "detectable-bench/checker-v1"  — `bench/main.exe --json` (model
     checker throughput trajectory);
   - "detectable-torture/v1"        — one torture run report from the
     pre-fault-model engine (still validated so archived reports keep
     checking);
   - "detectable-torture/v2"        — one torture run report: v1 plus
     the fault-model and watchdog config, the budget_exhausted /
     engine_faults verdict counters and the first_engine_fault record;
   - "detectable-torture/v3"        — one torture run report from the
     pre-supervisor engine: v2 plus the per-campaign allocation profile
     ("timing.alloc": minor/promoted words, minor collections,
     bytes_per_trial);
   - "detectable-torture/v4"        — one torture run report, as written
     by `detect_cli torture/campaign --json/--report`: v3 plus the
     "timing.supervision" block (worker spawn/death/hang, rescue,
     retry, degradation and in-process-fallback counters, and the
     chaos-injection parameters) — all-zero for a plain single-process
     torture run, and checkable with --chaos-active (see below) for a
     run that must demonstrably have exercised the supervisor;
   - "detectable-bench/torture-v1"  — a torture bench baseline
     (`bench/main.exe --baseline`), i.e. header + one embedded torture
     report per campaign (any report version, detected per report);
   - "detectable-bench/torture-v2"  — v1 plus, per campaign, the "perf"
     allocation block and the ISSUE 8 gates ("min_trials_per_sec"
     throughput floor, "max_bytes_per_trial" allocation ceiling) — the
     committed BENCH_torture.json;
   - "detectable-bench/fault-v1"    — the fault-model matrix baseline
     (`bench/main.exe --baseline`, the committed BENCH_fault.json):
     one cell per (object, fault model) with the five verdict counters
     and throughput;
   - "detectable-modelcheck/v1"     — a modelcheck engine baseline
     (`bench/main.exe --baseline`):
     per case the engine-independent counters plus one throughput record
     per execution substrate and the measured undo/replay speedup;
   - "detectable-modelcheck/v2"     — v1 plus, per substrate record, an
     "alloc" block (bytes_per_node), and per case the ISSUE 8 gates
     ("min_nodes_per_sec" undo floor, "max_bytes_per_node" allocation
     ceiling);
   - "detectable-modelcheck/v3"     — v2 plus a top-level
     "reduction_cases" array: per config and engine one run under every
     reduction mode (none / dpor / dpor+sym / dpor+sym-memo) with exact
     node and violation counters and the "min_node_reduction" gate —
     the committed BENCH_modelcheck.json;
   - "detectable-lincheck/v1"       — a linearizability-checker engine
     baseline (`bench/main.exe --baseline`, the committed
     BENCH_lincheck.json): per case the engine-independent counters plus
     one record per checker engine and the measured incremental/batch
     speedup;
   - "detectable-bench/lowerbound-v1" — the Theorem 1 lower-bound
     baseline (`bench/main.exe --lowerbound`): per process count N one
     reduced and one unreduced exploration under a shared node budget,
     with the distinct-configuration counts checked against the 2^(N-1)
     bound (this validator re-checks the arithmetic, not just the keys);
   - "detectable-bench/lowerbound-v2" — v1 plus per-case "workload" and
     "recheck" markers and per-run symmetry counters
     (sym_skips / source_skips / canonical_orbits); cases may now run
     any reduction-mode pair, and only the certifying modes (dpor,
     dpor+sym-memo) are held to the bound — dpor+sym rows are the
     committed evidence that plain symmetry reduction under-counts, so
     at least one of them must miss — the committed
     BENCH_lowerbound.json.

   With --chaos-active (valid only for detectable-torture/v4 files) the
   validator additionally requires the supervision counters to show a
   non-trivial supervision history — rescues, retries and degradations
   all strictly positive — which is how the bench chaos gate proves the
   byte-identity comparison actually covered the failure paths rather
   than a campaign where no worker ever died.

   Keeping every producer behind this one validator is what lets future
   PRs treat the JSON artefacts as a stable machine-readable surface. *)

open Tiny_json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let require_keys what j keys =
  List.iter
    (fun k -> if not (mem k j) then fail "json_check: %s missing %S" what k)
    keys

let check_engine e =
  require_keys "engine record" e
    [
      "engine"; "switch_budget"; "crash_budget"; "domains"; "reduction";
      "executions"; "nodes"; "total_violations"; "distinct_shared_configs";
      "dedup_hit_rate"; "nodes_per_sec"; "elapsed_s"; "lin_engine";
      "leaf_checks"; "lin_elapsed_s"; "lin_checks_per_sec"; "lin_reuse_rate";
    ]

let check_checker j =
  match get_list (member "engines" j) with
  | [] -> fail "json_check: \"engines\" must be a non-empty array"
  | engines -> List.iter check_engine engines

let check_dist what d =
  require_keys what d [ "min"; "max"; "mean"; "total" ]

(* one torture report; [v] selects the report version (2 adds the
   fault-model config, the extra verdict counters and
   first_engine_fault; 3 adds the timing.alloc block; 4 adds
   timing.supervision); [top] says whether the "schema" and "timing"
   markers are required (they are omitted for reports embedded in a
   baseline file, whose timing lives in "perf") *)
let check_alloc what a =
  require_keys what a
    [ "minor_words"; "promoted_words"; "minor_collections" ]

let supervision_counter_keys =
  [
    "workers_spawned"; "worker_deaths"; "worker_hangs"; "rescues"; "retries";
    "degradations"; "inproc_trials";
  ]

let check_supervision s =
  require_keys "timing supervision" s (supervision_counter_keys @ [ "chaos" ]);
  require_keys "supervision chaos" (member "chaos" s)
    [ "kill"; "hang"; "seed" ]

let check_torture_report ?(top = true) ~v j =
  require_keys "torture report" j
    ([
       "object"; "root_seed"; "trials"; "config"; "verdicts"; "recoveries";
       "crashes"; "steps"; "max_shared_bits"; "first_failure";
     ]
    @ if v >= 2 then [ "first_engine_fault" ] else []);
  require_keys "torture config" (member "config" j)
    ([ "policy"; "crash_prob"; "max_crashes"; "max_steps" ]
    @ if v >= 2 then [ "fault"; "watchdog" ] else []);
  require_keys "torture verdicts" (member "verdicts" j)
    ([ "linearized"; "not_linearized"; "incomplete" ]
    @ if v >= 2 then [ "budget_exhausted"; "engine_faults" ] else []);
  require_keys "torture recoveries" (member "recoveries" j)
    [ "returned"; "fail_verdicts" ];
  let crashes = member "crashes" j in
  require_keys "torture crashes" crashes
    [ "injected"; "bucket_width"; "histogram" ];
  List.iter
    (fun b -> require_keys "histogram bucket" b [ "from_step"; "count" ])
    (get_list (member "histogram" crashes));
  check_dist "steps dist" (member "steps" j);
  check_dist "max_shared_bits dist" (member "max_shared_bits" j);
  (match member "first_failure" j with
  | Null -> ()
  | f ->
      require_keys "first_failure" f
        [ "trial"; "seed"; "msg"; "schedule"; "minimised"; "shrink_attempts" ]);
  (if v >= 2 then
     match member "first_engine_fault" j with
     | Null -> ()
     | f -> require_keys "first_engine_fault" f [ "trial"; "seed"; "msg" ]);
  (* v4 reports written with --no-timing drop the whole timing block —
     that is what makes them byte-comparable across torture / campaign /
     chaos / resume runs — so for v4 its absence is legal *)
  if top && (v < 4 || mem "timing" j) then begin
    let timing = member "timing" j in
    require_keys "torture timing" timing
      ([ "elapsed_s"; "trials_per_sec"; "domains" ]
      @ (if v >= 2 then [ "shards_rescued" ] else [])
      @ if v >= 3 then [ "alloc" ] else []);
    if v >= 3 then begin
      let a = member "alloc" timing in
      check_alloc "torture timing alloc" a;
      require_keys "torture timing alloc" a [ "bytes_per_trial" ]
    end;
    if v >= 4 then begin
      require_keys "torture timing" timing [ "supervision" ];
      check_supervision (member "supervision" timing)
    end
  end

(* --chaos-active: the report must record a supervision history where
   workers actually died and the supervisor actually rescued, retried
   and degraded — the teeth of the bench chaos gate *)
let check_chaos_active j =
  if not (mem "timing" j) then
    fail
      "json_check: --chaos-active needs the timing.supervision block, but \
       this report was written with --no-timing";
  let s = member "supervision" (member "timing" j) in
  List.iter
    (fun k ->
      if get_int (member k s) < 0 then
        fail "json_check: supervision counter %S is negative" k)
    supervision_counter_keys;
  List.iter
    (fun k ->
      if get_int (member k s) = 0 then
        fail
          "json_check: --chaos-active but supervision counter %S is 0 — the \
           chaos run never exercised that failure path"
          k)
    [ "rescues"; "retries"; "degradations" ]

(* embedded baseline reports carry no "schema" key; sniff the version
   from the config block *)
let torture_report_version j = if mem "fault" (member "config" j) then 2 else 1

let check_torture_baseline ~v j =
  require_keys "torture baseline" j [ "root_seed"; "trials"; "campaigns" ];
  match get_list (member "campaigns" j) with
  | [] -> fail "json_check: \"campaigns\" must be a non-empty array"
  | campaigns ->
      List.iter
        (fun c ->
          require_keys "campaign" c [ "report"; "perf" ];
          let r = member "report" c in
          check_torture_report ~top:false ~v:(torture_report_version r) r;
          let perf = member "perf" c in
          require_keys "campaign perf" perf
            ([ "elapsed_s"; "trials_per_sec"; "domains" ]
            @
            if v >= 2 then
              [ "alloc"; "min_trials_per_sec"; "max_bytes_per_trial" ]
            else []);
          if v >= 2 then begin
            let a = member "alloc" perf in
            check_alloc "campaign perf alloc" a;
            require_keys "campaign perf alloc" a [ "bytes_per_trial" ]
          end)
        campaigns

let check_fault_baseline j =
  require_keys "fault baseline" j [ "root_seed"; "trials"; "cells" ];
  match get_list (member "cells" j) with
  | [] -> fail "json_check: \"cells\" must be a non-empty array"
  | cells ->
      List.iter
        (fun c ->
          require_keys "fault cell" c
            [ "object"; "fault"; "verdicts"; "crashes_injected"; "steps_total";
              "perf" ];
          require_keys "fault cell verdicts" (member "verdicts" c)
            [
              "linearized"; "not_linearized"; "incomplete"; "budget_exhausted";
              "engine_faults";
            ];
          require_keys "fault cell perf" (member "perf" c)
            [ "elapsed_s"; "trials_per_sec"; "domains" ])
        cells

let check_modelcheck_baseline ~v j =
  match get_list (member "cases" j) with
  | [] -> fail "json_check: \"cases\" must be a non-empty array"
  | cases ->
      List.iter
        (fun c ->
          require_keys "modelcheck case" c
            ([
               "object"; "switch_budget"; "crash_budget"; "domains";
               "counters"; "engines"; "undo_speedup"; "min_speedup";
             ]
            @
            if v >= 2 then [ "min_nodes_per_sec"; "max_bytes_per_node" ]
            else []);
          require_keys "modelcheck counters" (member "counters" c)
            [
              "executions"; "truncated"; "nodes"; "total_violations";
              "distinct_shared_configs";
            ];
          match get_list (member "engines" c) with
          | [] -> fail "json_check: case \"engines\" must be a non-empty array"
          | engines ->
              List.iter
                (fun e ->
                  require_keys "substrate record" e
                    [
                      "engine"; "elapsed_s"; "nodes_per_sec"; "rewound_cells";
                      "rewound_cells_per_sec"; "intern_hit_rate";
                    ];
                  if v >= 2 then begin
                    let a = member "alloc" e in
                    check_alloc "substrate alloc" a;
                    require_keys "substrate alloc" a [ "bytes_per_node" ]
                  end)
                engines)
        cases

(* v3 reduction-ratio section: every engine entry must carry one run per
   reduction mode, the verdicts must agree across the modes of an entry
   (a reduced search keeps one representative per equivalence class, so
   the raw count of violating executions may shrink, but whether a
   violation exists may not — reduction soundness is visible in the
   committed artefact itself), and the recorded node_reduction must
   clear its own gate *)
let check_modelcheck_reductions j =
  match get_list (member "reduction_cases" j) with
  | [] -> fail "json_check: \"reduction_cases\" must be a non-empty array"
  | cases ->
      List.iter
        (fun c ->
          require_keys "reduction case" c
            [ "object"; "switch_budget"; "crash_budget"; "engines" ];
          let label = get_str (member "object" c) in
          match get_list (member "engines" c) with
          | [] ->
              fail "json_check: reduction case \"engines\" must be non-empty"
          | engines ->
              List.iter
                (fun e ->
                  require_keys "reduction engine entry" e
                    [
                      "engine"; "runs"; "node_reduction"; "min_node_reduction";
                    ];
                  let engine = get_str (member "engine" e) in
                  let runs = get_list (member "runs" e) in
                  if List.length runs < 2 then
                    fail
                      "json_check: reduction case %s/%s needs at least an \
                       unreduced and a reduced run"
                      label engine;
                  let viols = ref [] in
                  List.iter
                    (fun r ->
                      require_keys "reduction run" r
                        [
                          "reduction"; "nodes"; "executions";
                          "total_violations"; "distinct_shared_configs";
                        ];
                      viols :=
                        ( get_str (member "reduction" r),
                          get_int (member "total_violations" r) )
                        :: !viols)
                    runs;
                  (match !viols with
                  | [] -> ()
                  | (_, v0) :: _ ->
                      List.iter
                        (fun (red, v) ->
                          if v > 0 <> (v0 > 0) then
                            fail
                              "json_check: reduction case %s/%s: %s records \
                               %d violations where another mode records %d \
                               — verdict parity broken in the committed \
                               artefact"
                              label engine red v v0)
                        !viols);
                  let ratio = get_num (member "node_reduction" e) in
                  let gate = get_num (member "min_node_reduction" e) in
                  if ratio < gate then
                    fail
                      "json_check: reduction case %s/%s records \
                       node_reduction %.2f under its own gate %.2f"
                      label engine ratio gate)
                engines)
        cases

(* The lower-bound validator checks the arithmetic, not just the keys:
   every case's "bound" must be 2^(n-1), every run's "meets_bound" must
   agree with its configs-vs-bound comparison, and every certifying run
   — "dpor" and "dpor+sym-memo", the modes whose config counters are
   sound lower bounds on the reachable set — must meet the bound for
   n >= 4 (the Theorem 1 acceptance gate).  Two evidence obligations on
   full sweeps (smoke runs may stop earlier): when the sweep reaches
   n >= 5, at least one case must show the unreduced search missing the
   bound under the shared node budget; and when any "dpor+sym" rows are
   present (v2), at least one must miss it — otherwise the committed
   artefact no longer demonstrates why the canonical-memo counters are
   needed. *)
let check_lowerbound_baseline ~v j =
  require_keys "lowerbound baseline" j
    ([ "object"; "crash_budget"; "cases" ]
    @ if v >= 2 then [] else [ "workload" ]);
  let get_bool what x =
    match x with
    | Bool b -> b
    | _ -> fail "json_check: %s is not a bool" what
  in
  let certifying = function "dpor" | "dpor+sym-memo" -> true | _ -> false in
  let unreduced_rows = ref 0 in
  let unreduced_miss = ref false in
  let sym_rows = ref 0 in
  let sym_misses = ref 0 in
  let max_n = ref 0 in
  (match get_list (member "cases" j) with
  | [] -> fail "json_check: \"cases\" must be a non-empty array"
  | cases ->
      List.iter
        (fun c ->
          require_keys "lowerbound case" c
            ([ "n"; "switch_budget"; "node_budget"; "bound"; "runs" ]
            @ if v >= 2 then [ "workload"; "recheck" ] else []);
          let n = get_int (member "n" c) in
          let bound = get_int (member "bound" c) in
          if n < 2 then fail "json_check: lowerbound case has n=%d < 2" n;
          max_n := max !max_n n;
          if bound <> 1 lsl (n - 1) then
            fail "json_check: lowerbound N=%d records bound %d, not 2^(N-1)=%d"
              n bound
              (1 lsl (n - 1));
          match get_list (member "runs" c) with
          | [] -> fail "json_check: case \"runs\" must be a non-empty array"
          | runs ->
              List.iter
                (fun r ->
                  require_keys "lowerbound run" r
                    ([
                       "reduction"; "configs"; "nodes"; "executions";
                       "sleep_skips"; "capped"; "meets_bound"; "elapsed_s";
                       "nodes_per_sec";
                     ]
                    @
                    if v >= 2 then
                      [ "sym_skips"; "source_skips"; "canonical_orbits" ]
                    else []);
                  let red = get_str (member "reduction" r) in
                  let configs = get_int (member "configs" r) in
                  let meets = get_bool "meets_bound" (member "meets_bound" r) in
                  if meets <> (configs >= bound) then
                    fail
                      "json_check: lowerbound N=%d %s: meets_bound=%b but \
                       configs=%d vs bound=%d"
                      n red meets configs bound;
                  (* v1 predates the non-certifying dpor+sym contrast
                     rows, so there every reduced run is held to the
                     bound; v2 also exempts capped certifying runs —
                     their counters are partial (CI smokes run the N=7
                     case under a tiny node cap), so a miss is absence
                     of evidence, not evidence of absence *)
                  let capped =
                    v >= 2 && get_bool "capped" (member "capped" r)
                  in
                  let must_certify =
                    if v >= 2 then certifying red && not capped
                    else red <> "none"
                  in
                  if must_certify && n >= 4 && not meets then
                    fail
                      "json_check: lowerbound N=%d %s misses the Theorem 1 \
                       bound (%d configs < %d)"
                      n red configs bound;
                  if red = "none" then begin
                    incr unreduced_rows;
                    if not meets then unreduced_miss := true
                  end;
                  if red = "dpor+sym" then begin
                    incr sym_rows;
                    if not meets then incr sym_misses
                  end)
                runs)
        cases);
  (* the v2 sweep may legitimately contain no unreduced rows at all
     (the N>=7 uniform cases and the CI smoke run reduced pairs only);
     the obligation applies as soon as any are present *)
  if
    !max_n >= 5
    && not !unreduced_miss
    && (v < 2 || !unreduced_rows > 0)
  then
    fail
      "json_check: lowerbound baseline shows no case where the unreduced \
       search misses the bound — the budget comparison lost its teeth";
  if v >= 2 && !sym_rows > 0 && !sym_misses = 0 then
    fail
      "json_check: lowerbound baseline has dpor+sym rows but none misses \
       the bound — the canonical-memo contrast evidence is gone"

let check_lincheck_baseline j =
  match get_list (member "cases" j) with
  | [] -> fail "json_check: \"cases\" must be a non-empty array"
  | cases ->
      List.iter
        (fun c ->
          require_keys "lincheck case" c
            [
              "object"; "kind"; "counters"; "engines"; "incremental_speedup";
              "min_speedup";
            ];
          (match get_str (member "kind" c) with
          | "modelcheck_leaves" ->
              require_keys "modelcheck_leaves case" c
                [ "switch_budget"; "crash_budget" ]
          | "torture_histories" ->
              require_keys "torture_histories case" c
                [ "trials"; "procs"; "ops_per_proc"; "seed" ]
          | k -> fail "json_check: unknown lincheck case kind %S" k);
          require_keys "lincheck counters" (member "counters" c)
            [ "checks"; "events_total"; "violations" ];
          match get_list (member "engines" c) with
          | [] -> fail "json_check: case \"engines\" must be a non-empty array"
          | engines ->
              List.iter
                (fun e ->
                  require_keys "lin engine record" e
                    [
                      "lin_engine"; "elapsed_s"; "checks_per_sec";
                      "events_pushed"; "reuse_rate";
                    ])
                engines)
        cases

let () =
  let chaos_active, path =
    match Array.to_list Sys.argv with
    | [ _; p ] -> (false, p)
    | [ _; "--chaos-active"; p ] | [ _; p; "--chaos-active" ] -> (true, p)
    | _ -> fail "usage: json_check [--chaos-active] FILE"
  in
  match of_file path with
  | exception Error m -> fail "json_check: %s: %s" path m
  | j -> (
      let schema =
        match get_str (member "schema" j) with
        | s -> s
        | exception Error m -> fail "json_check: %s: %s" path m
      in
      if chaos_active && schema <> "detectable-torture/v4" then
        fail
          "json_check: --chaos-active only applies to detectable-torture/v4 \
           reports, not %S"
          schema;
      match schema with
      | "detectable-bench/checker-v1" ->
          check_checker j;
          print_endline "bench --json output: valid"
      | "detectable-torture/v1" ->
          check_torture_report ~v:1 j;
          print_endline "torture report: valid"
      | "detectable-torture/v2" ->
          check_torture_report ~v:2 j;
          print_endline "torture report: valid"
      | "detectable-torture/v3" ->
          check_torture_report ~v:3 j;
          print_endline "torture report: valid"
      | "detectable-torture/v4" ->
          check_torture_report ~v:4 j;
          if chaos_active then check_chaos_active j;
          print_endline
            (if chaos_active then "torture report: valid, chaos active"
             else "torture report: valid")
      | "detectable-bench/torture-v1" ->
          check_torture_baseline ~v:1 j;
          print_endline "torture baseline: valid"
      | "detectable-bench/torture-v2" ->
          check_torture_baseline ~v:2 j;
          print_endline "torture baseline: valid"
      | "detectable-bench/fault-v1" ->
          check_fault_baseline j;
          print_endline "fault baseline: valid"
      | "detectable-modelcheck/v1" ->
          check_modelcheck_baseline ~v:1 j;
          print_endline "modelcheck baseline: valid"
      | "detectable-modelcheck/v2" ->
          check_modelcheck_baseline ~v:2 j;
          print_endline "modelcheck baseline: valid"
      | "detectable-modelcheck/v3" ->
          check_modelcheck_baseline ~v:3 j;
          check_modelcheck_reductions j;
          print_endline "modelcheck baseline: valid"
      | "detectable-lincheck/v1" ->
          check_lincheck_baseline j;
          print_endline "lincheck baseline: valid"
      | "detectable-bench/lowerbound-v1" ->
          check_lowerbound_baseline ~v:1 j;
          print_endline "lowerbound baseline: valid"
      | "detectable-bench/lowerbound-v2" ->
          check_lowerbound_baseline ~v:2 j;
          print_endline "lowerbound baseline: valid"
      | s -> fail "json_check: unknown schema %S" s
      | exception Error m -> fail "json_check: %s: %s" path m)
