open Nvm
open Runtime
open History

type t = { ctx : Base.ctx; mr : Loc.t array; init : int }

let create ?persist machine ~n ~init =
  let ctx = Base.make_ctx ?persist machine ~n in
  let mr =
    Array.init n (fun i ->
        Machine.alloc_shared machine (Printf.sprintf "MR[%d]" i)
          (Value.Int init))
  in
  { ctx; mr; init }

let write_max t ~pid v =
  (* lines 47-49 *)
  if Value.to_int (Base.rd t.ctx t.mr.(pid)) < v then
    Base.wr t.ctx t.mr.(pid) (Value.Int v);
  Spec.ack

let collect t =
  Array.map (fun loc -> Value.to_int (Base.rd t.ctx loc)) t.mr

let read t ~pid:_ =
  (* lines 50-55: double collect *)
  let rec loop a =
    let b = collect t in
    if a = b then Value.Int (Array.fold_left max t.init b) else loop b
  in
  loop (Array.make (Array.length t.mr) t.init)

let instance t =
  let dispatch ~pid (op : Spec.op) =
    match (op.Spec.name, op.Spec.args) with
    | "read", [||] -> read t ~pid
    | "write_max", [| Value.Int v |] -> write_max t ~pid v
    | _ -> Base.bad_op "Dmax" op
  in
  {
    Sched.Obj_inst.descr = "dmax (Algorithm 3, no auxiliary state)";
    spec = Spec.max_register t.init;
    announce = Base.std_announce t.ctx;
    invoke = dispatch;
    (* recovery simply re-invokes the operation — no auxiliary state *)
    recover = dispatch;
    clear = (fun ~pid -> Base.std_clear t.ctx ~pid);
    pending = (fun ~pid -> Base.std_pending t.ctx ~pid);
    strict_recovery = false;
    id_symmetric = false;
  }

let shared_locs t = Array.to_list t.mr
