open Nvm
open Runtime
open History

type t = {
  ctx : Base.ctx;
  r : Loc.t;  (* the register R: (value, writer pid, toggle index) *)
  a : Loc.t array array array;  (* A.(i).(q).(b): toggle bits *)
  rd_p : Loc.t array;  (* RD_p: recovery data *)
  t_p : Loc.t array;  (* T_p: next toggle index *)
  init : Value.t;
}

let create ?persist machine ~n ~init =
  let ctx = Base.make_ctx ?persist machine ~n in
  let r =
    Machine.alloc_shared machine "R"
      (Value.triple init (Value.Int 0) (Value.Int 0))
  in
  let a =
    Array.init n (fun i ->
        Array.init n (fun q ->
            Array.init 2 (fun b ->
                Machine.alloc_shared machine
                  (Printf.sprintf "A[%d][%d][%d]" i q b)
                  (Value.Bool false))))
  in
  let rd_p =
    Array.init n (fun pid -> Machine.alloc_private machine ~pid "RD" Value.Bot)
  in
  let t_p =
    Array.init n (fun pid ->
        Machine.alloc_private machine ~pid "T" (Value.Int 0))
  in
  { ctx; r; a; rd_p; t_p; init }

(* Lines 8-13 / 22-27: raise all own toggle bits of [mtoggle], switch the
   toggle index, persist and return the response. *)
let complete t ~pid ~mtoggle =
  let ctx = t.ctx in
  Base.set_cp ctx ~pid 2;
  for i = 0 to ctx.Base.n - 1 do
    Base.wr ctx t.a.(i).(pid).(mtoggle) (Value.Bool true)
  done;
  Base.wr ctx t.t_p.(pid) (Value.Int (1 - mtoggle));
  Base.set_resp ctx ~pid Spec.ack;
  Spec.ack

let write_body t ~pid value =
  let ctx = t.ctx in
  let rv = Base.rd ctx t.r in (* line 1 *)
  let q = Value.to_int (Value.nth rv 1) in
  let qtoggle = Value.to_int (Value.nth rv 2) in
  Base.wr ctx t.a.(pid).(q).(1 - qtoggle) (Value.Bool false); (* line 2 *)
  let mtoggle = Value.to_int (Base.rd ctx t.t_p.(pid)) in (* line 3 *)
  Base.wr ctx t.rd_p.(pid) (Value.pair (Value.Int mtoggle) rv); (* line 4 *)
  let rv' = Base.rd ctx t.r in (* line 5 *)
  if Value.equal rv' rv then begin
    Base.set_cp ctx ~pid 1; (* line 6 *)
    Base.wr ctx t.r (Value.triple value (Value.Int pid) (Value.Int mtoggle))
    (* line 7 *)
  end;
  complete t ~pid ~mtoggle (* lines 8-13 *)

let write_recover t ~pid =
  let ctx = t.ctx in
  let rdv = Base.rd ctx t.rd_p.(pid) in (* line 14 *)
  if not (Value.equal (Base.get_resp ctx ~pid) Value.Bot) then Spec.ack
    (* lines 15-16 *)
  else if Base.get_cp ctx ~pid = 0 then Sched.Obj_inst.fail (* lines 17-18 *)
  else begin
    let mtoggle = Value.to_int (Value.nth rdv 0) in
    let old_r = Value.nth rdv 1 in
    let q = Value.to_int (Value.nth old_r 1) in
    let qtoggle = Value.to_int (Value.nth old_r 2) in
    if
      Base.get_cp ctx ~pid = 1 (* line 19 *)
      && Value.equal (Base.rd ctx t.r) old_r (* line 20 *)
      && Value.equal
           (Base.rd ctx t.a.(pid).(q).(1 - qtoggle))
           (Value.Bool false)
    then Sched.Obj_inst.fail (* line 21 *)
    else complete t ~pid ~mtoggle (* lines 22-27 *)
  end

let read_body t ~pid =
  let ctx = t.ctx in
  let v = Value.nth (Base.rd ctx t.r) 0 in
  Base.set_resp ctx ~pid v;
  v

let read_recover t ~pid =
  let resp = Base.get_resp t.ctx ~pid in
  if Value.equal resp Value.Bot then read_body t ~pid else resp

let instance t =
  let ctx = t.ctx in
  let invoke ~pid (op : Spec.op) =
    match (op.Spec.name, op.Spec.args) with
    | "read", [||] -> read_body t ~pid
    | "write", [| v |] -> write_body t ~pid v
    | _ -> Base.bad_op "Drw" op
  in
  let recover ~pid (op : Spec.op) =
    match (op.Spec.name, op.Spec.args) with
    | "read", [||] -> read_recover t ~pid
    | "write", [| _ |] -> write_recover t ~pid
    | _ -> Base.bad_op "Drw" op
  in
  {
    Sched.Obj_inst.descr = "drw (Algorithm 1, bounded space)";
    spec = Spec.register t.init;
    announce = Base.std_announce ctx;
    invoke;
    recover;
    clear = (fun ~pid -> Base.std_clear ctx ~pid);
    pending = (fun ~pid -> Base.std_pending ctx ~pid);
    strict_recovery = true;
    id_symmetric = false;
  }

let shared_locs t =
  t.r
  :: List.concat_map
       (fun plane -> List.concat_map Array.to_list (Array.to_list plane))
       (Array.to_list t.a)
