open Nvm
open Runtime
open History

type t = {
  ctx : Base.ctx;
  mode : [ `Durable | `Detectable ];
  spec : Spec.t;
  log_next : Loc.t;  (* lagging hint of the first free slot *)
  slots : Loc.t array;  (* ⊥ or (name, args, tag); write-once *)
  seq_p : Loc.t array;  (* per-process persistent invocation counter *)
  capacity : int;
}

let create ?persist ?(mode = `Detectable) machine ~n ~capacity ~spec =
  if capacity < 1 then invalid_arg "Ulog.create: capacity must be >= 1";
  let ctx = Base.make_ctx ?persist machine ~n in
  {
    ctx;
    mode;
    spec;
    log_next = Machine.alloc_shared machine "log_next" (Value.Int 0);
    slots =
      Array.init capacity (fun i ->
          Machine.alloc_shared machine (Printf.sprintf "log[%d]" i) Value.Bot);
    seq_p =
      Array.init n (fun pid ->
          Machine.alloc_private machine ~pid "useq" (Value.Int 0));
    capacity;
  }

let encode (op : Spec.op) tag =
  Value.triple (Value.Str op.Spec.name) (Value.Tup op.Spec.args) tag

let decode entry =
  ( { Spec.name = Value.to_str (Value.nth entry 0);
      args = Value.to_tup (Value.nth entry 1) },
    Value.nth entry 2 )

(* Claim the first free slot with a CAS; helping keeps [log_next] moving. *)
let rec append t entry =
  let ctx = t.ctx in
  let slot = Value.to_int (Base.rd ctx t.log_next) in
  if slot >= t.capacity then
    invalid_arg "Ulog: log full (raise ~capacity)";
  if Base.casl ctx t.slots.(slot) Value.Bot entry then begin
    ignore (Base.casl ctx t.log_next (Value.Int slot) (Value.Int (slot + 1)));
    slot
  end
  else begin
    (* someone else owns this slot: help advance and retry *)
    ignore (Base.casl ctx t.log_next (Value.Int slot) (Value.Int (slot + 1)));
    append t entry
  end

(* Replay the immutable prefix [0..slot] and return entry [slot]'s
   response.  Each slot read is a primitive step: the replay cost is the
   construction's documented per-operation price. *)
let response_at t ~slot =
  let ctx = t.ctx in
  let state = ref t.spec.Spec.init in
  let resp = ref Value.Bot in
  for k = 0 to slot do
    let entry = Base.rd ctx t.slots.(k) in
    let op, _ = decode entry in
    let state', r = t.spec.Spec.step !state op in
    state := state';
    if k = slot then resp := r
  done;
  !resp

let my_tag t ~pid =
  Value.pair (Value.Int pid) (Base.rd t.ctx t.seq_p.(pid))

let invoke t ~pid (op : Spec.op) =
  let tag = match t.mode with `Durable -> Value.Bot | `Detectable -> my_tag t ~pid in
  let slot = append t (encode op tag) in
  let resp = response_at t ~slot in
  Base.set_resp t.ctx ~pid resp;
  resp

(* Scan the filled prefix for this invocation's tag. *)
let find_tag t tag =
  let ctx = t.ctx in
  let rec go k =
    if k >= t.capacity then None
    else
      let entry = Base.rd ctx t.slots.(k) in
      if Value.equal entry Value.Bot then None
      else
        let _, etag = decode entry in
        if Value.equal etag tag then Some k else go (k + 1)
  in
  go 0

let recover t ~pid (_op : Spec.op) =
  let resp = Base.get_resp t.ctx ~pid in
  if not (Value.equal resp Value.Bot) then resp
  else
    match t.mode with
    | `Durable ->
        (* state is consistent, but nothing identifies this invocation *)
        Sched.Obj_inst.unknown
    | `Detectable -> (
        match find_tag t (my_tag t ~pid) with
        | Some slot ->
            let resp = response_at t ~slot in
            Base.set_resp t.ctx ~pid resp;
            resp
        | None -> Sched.Obj_inst.fail)

let instance t =
  let ctx = t.ctx in
  (* the unique tag is assigned (and persisted) by the announcement — the
     auxiliary state Theorem 2 requires, provided via NVM *)
  let announce ~pid op =
    Base.announce_with ctx ~pid
      ~extra:(fun () ->
        match t.mode with
        | `Durable -> ()
        | `Detectable ->
            let s = Value.to_int (Base.rd ctx t.seq_p.(pid)) + 1 in
            Base.wr ctx t.seq_p.(pid) (Value.Int s))
      op
  in
  {
    Sched.Obj_inst.descr =
      (match t.mode with
      | `Durable -> "ulog (universal construction, durable only)"
      | `Detectable -> "ulog (universal construction, detectable, unbounded)");
    spec = t.spec;
    announce;
    invoke = (fun ~pid op -> invoke t ~pid op);
    recover = (fun ~pid op -> recover t ~pid op);
    clear = (fun ~pid -> Base.std_clear ctx ~pid);
    pending = (fun ~pid -> Base.std_pending ctx ~pid);
    strict_recovery = (match t.mode with `Durable -> false | `Detectable -> true);
    id_symmetric = false;
  }

let log_length machine t =
  let rec go k =
    if k >= t.capacity then k
    else if Value.equal (Machine.peek machine t.slots.(k)) Value.Bot then k
    else go (k + 1)
  in
  go 0

let shared_locs t = t.log_next :: Array.to_list t.slots
