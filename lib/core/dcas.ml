open Nvm
open Runtime
open History

type cells = { resp : Loc.t; cp : Loc.t; rdp : Loc.t }

let alloc_cells machine ~pid ~tag =
  {
    resp = Machine.alloc_private machine ~pid (tag ^ ".resp") Value.Bot;
    cp = Machine.alloc_private machine ~pid (tag ^ ".cp") (Value.Int 0);
    rdp = Machine.alloc_private machine ~pid (tag ^ ".rd") Value.Bot;
  }

type core = { ctx : Base.ctx; c : Loc.t; cells : cells array }

let alloc_core ctx ~name ~init cells =
  let c =
    Machine.alloc_shared ctx.Base.machine name
      (Value.pair init (Value.bool_vec ctx.Base.n))
  in
  { ctx; c; cells }

let core_loc core = core.c

let reset_cells core ~pid =
  let cl = core.cells.(pid) in
  Base.wr core.ctx cl.resp Value.Bot;
  Base.wr core.ctx cl.cp (Value.Int 0)

let cas_core core ~pid ~old_v ~new_v =
  let ctx = core.ctx in
  let cl = core.cells.(pid) in
  if Value.equal old_v new_v then begin
    (* Identity CAS (old = new): executed read-only.  The paper's code
       would attempt the full pair CAS here, but then a concurrent
       successful CAS that only churns the flip vector can fail an
       identity CAS whose abstract precondition held throughout — a
       non-linearizable outcome our checker found.  An identity CAS has
       no abstract effect, so reading [C] and persisting the comparison
       is both correct and detectable (an unpersisted response recovers
       as [fail], which is always sound for an effect-free operation). *)
    let cv = Base.rd ctx core.c in
    let res = Value.equal (Value.nth cv 0) old_v in
    Base.wr ctx cl.resp (Value.Bool res);
    res
  end
  else begin
  let cv = Base.rd ctx core.c in (* line 28 *)
  let value = Value.nth cv 0 and vec = Value.nth cv 1 in
  if not (Value.equal value old_v) then begin
    (* lines 29-31: CAS fails *)
    Base.wr ctx cl.resp (Value.Bool false);
    false
  end
  else begin
    let newbit = Value.Bool (not (Value.to_bool (Value.nth vec pid))) in
    let newvec = Value.set_nth vec pid newbit in (* line 32 *)
    Base.wr ctx cl.rdp newbit; (* line 33 *)
    Base.wr ctx cl.cp (Value.Int 1); (* line 34 *)
    let res = Base.casl ctx core.c cv (Value.pair new_v newvec) in (* line 35 *)
    Base.wr ctx cl.resp (Value.Bool res); (* line 36 *)
    res (* line 37 *)
  end
  end

let recover_core core ~pid =
  let ctx = core.ctx in
  let cl = core.cells.(pid) in
  let resp = Base.rd ctx cl.resp in
  if not (Value.equal resp Value.Bot) then resp (* lines 38-39 *)
  else if Value.to_int (Base.rd ctx cl.cp) = 0 then Sched.Obj_inst.fail
    (* lines 40-41 *)
  else begin
    let cv = Base.rd ctx core.c in (* line 42 *)
    let vec = Value.nth cv 1 in
    if not (Value.equal (Value.nth vec pid) (Base.rd ctx cl.rdp)) then
      Sched.Obj_inst.fail (* lines 43-44: CAS failed or not performed *)
    else begin
      Base.wr ctx cl.resp (Value.Bool true); (* line 45 *)
      Value.Bool true (* line 46 *)
    end
  end

let read_core core ~pid:_ = Value.nth (Base.rd core.ctx core.c) 0

type t = { core : core; init : Value.t }

let create ?persist machine ~n ~init =
  let ctx = Base.make_ctx ?persist machine ~n in
  (* The object's per-process cells are the top-level announcement's
     [resp] and [cp] fields plus a dedicated RD_p bit. *)
  let cells =
    Array.init n (fun pid ->
        let a = ctx.Base.ann.(pid) in
        {
          resp = a.Ann.resp;
          cp = a.Ann.cp;
          rdp = Machine.alloc_private machine ~pid "RD" Value.Bot;
        })
  in
  let core = alloc_core ctx ~name:"C" ~init cells in
  { core; init }

let instance t =
  let ctx = t.core.ctx in
  let invoke ~pid (op : Spec.op) =
    match (op.Spec.name, op.Spec.args) with
    | "read", [||] ->
        let v = read_core t.core ~pid in
        Base.set_resp ctx ~pid v;
        v
    | "cas", [| old_v; new_v |] -> Value.Bool (cas_core t.core ~pid ~old_v ~new_v)
    | _ -> Base.bad_op "Dcas" op
  in
  let recover ~pid (op : Spec.op) =
    match (op.Spec.name, op.Spec.args) with
    | "read", [||] ->
        let resp = Base.get_resp ctx ~pid in
        if Value.equal resp Value.Bot then begin
          let v = read_core t.core ~pid in
          Base.set_resp ctx ~pid v;
          v
        end
        else resp
    | "cas", [| _; _ |] -> recover_core t.core ~pid
    | _ -> Base.bad_op "Dcas" op
  in
  {
    Sched.Obj_inst.descr = "dcas (Algorithm 2, bounded space)";
    spec = Spec.cas_cell t.init;
    announce = Base.std_announce ctx;
    invoke;
    recover;
    clear = (fun ~pid -> Base.std_clear ctx ~pid);
    pending = (fun ~pid -> Base.std_pending ctx ~pid);
    strict_recovery = true;
    id_symmetric = true;
  }

let shared_locs t = [ t.core.c ]
