open Nvm
open Runtime
open History

type t = {
  ctx : Base.ctx;
  lock : Rlock.t;
  a : Loc.t;  (* the counter *)
  b : Loc.t;  (* deliberately redundant mirror: makes updates two-step *)
  old_p : Loc.t array;  (* recovery data: the value read before updating *)
  init : int;
}

let create ?persist machine ~n ~init =
  let ctx = Base.make_ctx ?persist machine ~n in
  {
    ctx;
    lock = Rlock.create ?persist machine;
    a = Machine.alloc_shared machine "prot.a" (Value.Int init);
    b = Machine.alloc_shared machine "prot.b" (Value.Int init);
    old_p =
      Array.init n (fun pid -> Machine.alloc_private machine ~pid "old" Value.Bot);
    init;
  }

(* Critical-section body, also used (idempotently) by recovery when the
   crash struck while holding the lock. *)
let finish_cs t ~pid ~old =
  let ctx = t.ctx in
  if Value.equal (Base.rd ctx t.a) (Value.Int old) then
    Base.wr ctx t.a (Value.Int (old + 1));
  if not (Value.equal (Base.rd ctx t.b) (Base.rd ctx t.a)) then
    Base.wr ctx t.b (Value.Int (old + 1));
  Base.set_resp ctx ~pid Spec.ack;
  Rlock.release t.lock ~pid;
  Spec.ack

let inc_body t ~pid =
  let ctx = t.ctx in
  Rlock.acquire t.lock ~pid;
  let old = Value.to_int (Base.rd ctx t.a) in
  Base.wr ctx t.old_p.(pid) (Value.Int old);
  finish_cs t ~pid ~old

let inc_recover t ~pid =
  let ctx = t.ctx in
  if not (Value.equal (Base.get_resp ctx ~pid) Value.Bot) then begin
    (* the crash may have struck between persisting the response and the
       release: let go of the lock before reporting completion *)
    if Rlock.holds_f t.lock ~pid then Rlock.release t.lock ~pid;
    Spec.ack
  end
  else if Rlock.holds_f t.lock ~pid then begin
    (* crashed inside the critical section: [old_p] was persisted before
       any update (the acquire and the [old_p] write precede both), so
       finishing is exactly-once *)
    match Base.rd ctx t.old_p.(pid) with
    | Value.Int old -> finish_cs t ~pid ~old
    | _ ->
        (* crashed between acquire and persisting old: nothing updated *)
        let old = Value.to_int (Base.rd ctx t.a) in
        Base.wr ctx t.old_p.(pid) (Value.Int old);
        finish_cs t ~pid ~old
  end
  else
    (* no response and not holding the lock: the increment never entered
       its critical section, hence never took effect *)
    Sched.Obj_inst.fail

let read_body t ~pid =
  let v = Base.rd t.ctx t.a in
  Base.set_resp t.ctx ~pid v;
  v

let instance t =
  let ctx = t.ctx in
  (* old_p must be invalidated before a new operation commits, or a stale
     value could mislead a recovery that holds the lock *)
  let announce ~pid op =
    Base.announce_with ctx ~pid
      ~extra:(fun () -> Base.wr ctx t.old_p.(pid) Value.Bot)
      op
  in
  let invoke ~pid (op : Spec.op) =
    match (op.Spec.name, op.Spec.args) with
    | "read", [||] -> read_body t ~pid
    | "inc", [||] -> inc_body t ~pid
    | _ -> Base.bad_op "Dprotected" op
  in
  let recover ~pid (op : Spec.op) =
    match (op.Spec.name, op.Spec.args) with
    | "read", [||] ->
        let resp = Base.get_resp ctx ~pid in
        if Value.equal resp Value.Bot then read_body t ~pid else resp
    | "inc", [||] -> inc_recover t ~pid
    | _ -> Base.bad_op "Dprotected" op
  in
  {
    Sched.Obj_inst.descr = "dprotected (lock-based detectable counter)";
    spec = Spec.counter t.init;
    announce;
    invoke;
    recover;
    clear = (fun ~pid -> Base.std_clear ctx ~pid);
    pending = (fun ~pid -> Base.std_pending ctx ~pid);
    strict_recovery = true;
    id_symmetric = false;
  }

let shared_locs t = [ Rlock.owner_loc t.lock; t.a; t.b ]
