open Nvm
open Runtime
open History

type t = {
  ctx : Base.ctx;
  core : Dcas.core;
  att : Loc.t array;  (* att_p: (old, new) of the attempt in flight, or ⊥ *)
  init : Value.t;
  spec : Spec.t;
  descr : string;
  apply : Spec.op -> Value.t -> (Value.t * Value.t) option;
}

let rmw ?persist machine ~n ~init ~spec ~descr ~apply =
  let ctx = Base.make_ctx ?persist machine ~n in
  let cells =
    Array.init n (fun pid -> Dcas.alloc_cells machine ~pid ~tag:"sub")
  in
  let core = Dcas.alloc_core ctx ~name:"C" ~init cells in
  let att =
    Array.init n (fun pid -> Machine.alloc_private machine ~pid "att" Value.Bot)
  in
  { ctx; core; att; init; spec; descr; apply }

(* The lock-free update loop: each iteration is one recoverable CAS
   attempt with its own announcement. *)
let rec update_loop t ~pid (op : Spec.op) =
  let cur = Dcas.read_core t.core ~pid in
  match t.apply op cur with
  | None -> Base.bad_op t.descr op
  | Some (new_v, resp) ->
      (* announce the attempt: invalidate the previous one first, commit
         the new one last *)
      Base.wr t.ctx t.att.(pid) Value.Bot;
      Dcas.reset_cells t.core ~pid;
      Base.wr t.ctx t.att.(pid) (Value.pair cur new_v);
      if Dcas.cas_core t.core ~pid ~old_v:cur ~new_v then begin
        Base.set_resp t.ctx ~pid resp;
        resp
      end
      else update_loop t ~pid op

let read_body t ~pid =
  let v = Dcas.read_core t.core ~pid in
  Base.set_resp t.ctx ~pid v;
  v

let invoke t ~pid (op : Spec.op) =
  match t.apply op t.init with
  | Some _ -> update_loop t ~pid op
  | None -> (
      match (op.Spec.name, op.Spec.args) with
      | "read", [||] -> read_body t ~pid
      | _ -> Base.bad_op t.descr op)

let recover t ~pid (op : Spec.op) =
  let resp = Base.get_resp t.ctx ~pid in
  if not (Value.equal resp Value.Bot) then resp
  else
    match t.apply op t.init with
    | None ->
        (* a crashed read that never persisted its response was not
           linearized in any way the caller can rely on *)
        Sched.Obj_inst.fail
    | Some _ -> (
        let att = Base.rd t.ctx t.att.(pid) in
        if Value.equal att Value.Bot then Sched.Obj_inst.fail
        else
          let r = Dcas.recover_core t.core ~pid in
          match r with
          | Value.Bool true ->
              (* the committed attempt's CAS succeeded: the operation was
                 linearized there; rebuild the response from the attempt's
                 [old] value *)
              let old_v = Value.nth att 0 in
              let resp =
                match t.apply op old_v with
                | Some (_, resp) -> resp
                | None -> assert false
              in
              Base.set_resp t.ctx ~pid resp;
              resp
          | _ ->
              (* attempt failed, never ran, or recovery said fail: nothing
                 took effect *)
              Sched.Obj_inst.fail)

let instance t =
  (* the attempt register must be invalidated before a new operation's
     announcement commits: recovery trusts [att_p] only for the current
     operation *)
  let announce ~pid op =
    Base.announce_with t.ctx ~pid
      ~extra:(fun () -> Base.wr t.ctx t.att.(pid) Value.Bot)
      op
  in
  {
    Sched.Obj_inst.descr = t.descr;
    spec = t.spec;
    announce;
    invoke = (fun ~pid op -> invoke t ~pid op);
    recover = (fun ~pid op -> recover t ~pid op);
    clear = (fun ~pid -> Base.std_clear t.ctx ~pid);
    pending = (fun ~pid -> Base.std_pending t.ctx ~pid);
    strict_recovery = true;
    id_symmetric = false;
  }

let shared_locs t = [ Dcas.core_loc t.core ]

let counter ?persist machine ~n ~init =
  let apply (op : Spec.op) cur =
    match (op.Spec.name, op.Spec.args) with
    | "inc", [||] -> Some (Value.Int (Value.to_int cur + 1), Spec.ack)
    | _ -> None
  in
  rmw ?persist machine ~n ~init:(Value.Int init) ~spec:(Spec.counter init)
    ~descr:"dcounter (capsule over detectable CAS)" ~apply

let faa ?persist machine ~n ~init =
  let apply (op : Spec.op) cur =
    match (op.Spec.name, op.Spec.args) with
    | "faa", [| Value.Int d |] -> Some (Value.Int (Value.to_int cur + d), cur)
    | _ -> None
  in
  rmw ?persist machine ~n ~init:(Value.Int init) ~spec:(Spec.faa_cell init)
    ~descr:"dfaa (capsule over detectable CAS)" ~apply

let swap ?persist machine ~n ~init =
  let apply (op : Spec.op) cur =
    match (op.Spec.name, op.Spec.args) with
    | "swap", [| v |] -> Some (v, cur)
    | _ -> None
  in
  rmw ?persist machine ~n ~init ~spec:(Spec.swap_cell init)
    ~descr:"dswap (capsule over detectable CAS)" ~apply

(* a [tas] whose flag is already set, and a [reset] of a clear flag, are
   identity attempts: the CAS core runs them read-only, so they linearize
   without flip-vector churn *)
let tas ?persist machine ~n =
  let apply (op : Spec.op) cur =
    match (op.Spec.name, op.Spec.args) with
    | "tas", [||] -> Some (Value.Bool true, cur)
    | "reset", [||] -> Some (Value.Bool false, Spec.ack)
    | _ -> None
  in
  rmw ?persist machine ~n ~init:(Value.Bool false) ~spec:(Spec.resettable_tas ())
    ~descr:"dtas (capsule over detectable CAS)" ~apply

let bounded_counter ?persist machine ~n ~lo ~hi ~init =
  if not (lo <= init && init <= hi) then
    invalid_arg "Transform.bounded_counter";
  let apply (op : Spec.op) cur =
    match (op.Spec.name, op.Spec.args) with
    | "inc", [||] -> Some (Value.Int (min hi (Value.to_int cur + 1)), Spec.ack)
    | _ -> None
  in
  rmw ?persist machine ~n ~init:(Value.Int init)
    ~spec:(Spec.bounded_counter ~lo ~hi init)
    ~descr:"dbounded-counter (capsule over detectable CAS)" ~apply
