open Nvm
open Runtime
open History

type t = {
  ctx : Base.ctx;
  head : Loc.t;  (* id of the last consumed (dummy) node *)
  tail : Loc.t;  (* lagging append hint *)
  alloc_idx : Loc.t;  (* next free pool slot (FAA) *)
  node_val : Loc.t array;
  node_next : Loc.t array;  (* ⊥ or Int id; write-once *)
  node_deq : Loc.t array;  (* ⊥ or Int pid; write-once *)
  node_p : Loc.t array;  (* per process: id of the node being enqueued *)
  att_p : Loc.t array;  (* per process: predecessor of the link attempt *)
  datt_p : Loc.t array;  (* per process: node of the claim attempt *)
  capacity : int;
}

let create ?persist machine ~n ~capacity =
  if capacity < 1 then invalid_arg "Dqueue.create: capacity must be >= 1";
  let ctx = Base.make_ctx ?persist machine ~n in
  let cap = capacity + 1 (* slot 0 is the initial dummy *) in
  let shared fmt = Printf.ksprintf (fun s -> Machine.alloc_shared machine s) fmt in
  {
    ctx;
    head = Machine.alloc_shared machine "head" (Value.Int 0);
    tail = Machine.alloc_shared machine "tail" (Value.Int 0);
    alloc_idx = Machine.alloc_shared machine "alloc_idx" (Value.Int 1);
    node_val = Array.init cap (fun i -> shared "node[%d].val" i Value.Bot);
    node_next = Array.init cap (fun i -> shared "node[%d].next" i Value.Bot);
    node_deq = Array.init cap (fun i -> shared "node[%d].deq" i Value.Bot);
    node_p =
      Array.init n (fun pid -> Machine.alloc_private machine ~pid "node" Value.Bot);
    att_p =
      Array.init n (fun pid -> Machine.alloc_private machine ~pid "att" Value.Bot);
    datt_p =
      Array.init n (fun pid -> Machine.alloc_private machine ~pid "datt" Value.Bot);
    capacity = cap;
  }

let empty_resp = Value.Str "empty"

let enq t ~pid v =
  let ctx = t.ctx in
  let idx = Base.faal ctx t.alloc_idx 1 in
  if idx >= t.capacity then
    invalid_arg "Dqueue: node pool exhausted (raise ~capacity)";
  Base.wr ctx t.node_val.(idx) v;
  Base.wr ctx t.node_p.(pid) (Value.Int idx);
  let rec loop () =
    let last = Value.to_int (Base.rd ctx t.tail) in
    let nxt = Base.rd ctx t.node_next.(last) in
    if Value.equal nxt Value.Bot then begin
      Base.wr ctx t.att_p.(pid) (Value.Int last);
      if Base.casl ctx t.node_next.(last) Value.Bot (Value.Int idx) then begin
        (* linearized; advance the tail hint, best effort *)
        ignore (Base.casl ctx t.tail (Value.Int last) (Value.Int idx));
        Base.set_resp ctx ~pid Spec.ack;
        Spec.ack
      end
      else loop ()
    end
    else begin
      (* help a slow appender: swing the tail forward *)
      ignore (Base.casl ctx t.tail (Value.Int last) nxt);
      loop ()
    end
  in
  loop ()

let enq_recover t ~pid =
  let ctx = t.ctx in
  let resp = Base.get_resp ctx ~pid in
  if not (Value.equal resp Value.Bot) then resp
  else
    let node = Base.rd ctx t.node_p.(pid) in
    if Value.equal node Value.Bot then Sched.Obj_inst.fail
    else
      let att = Base.rd ctx t.att_p.(pid) in
      if
        (not (Value.equal att Value.Bot))
        && Value.equal (Base.rd ctx t.node_next.(Value.to_int att)) node
      then begin
        (* the link CAS took effect: [next] fields are write-once, so this
           equality can only come from our own successful CAS *)
        Base.set_resp ctx ~pid Spec.ack;
        Spec.ack
      end
      else Sched.Obj_inst.fail

let deq t ~pid =
  let ctx = t.ctx in
  let rec loop () =
    let first = Value.to_int (Base.rd ctx t.head) in
    let nxt = Base.rd ctx t.node_next.(first) in
    if Value.equal nxt Value.Bot then begin
      Base.set_resp ctx ~pid empty_resp;
      empty_resp
    end
    else begin
      let n = Value.to_int nxt in
      let claimed = Base.rd ctx t.node_deq.(n) in
      if Value.equal claimed Value.Bot then begin
        Base.wr ctx t.datt_p.(pid) (Value.Int n);
        if Base.casl ctx t.node_deq.(n) Value.Bot (Value.Int pid) then begin
          ignore (Base.casl ctx t.head (Value.Int first) (Value.Int n));
          let v = Base.rd ctx t.node_val.(n) in
          Base.set_resp ctx ~pid v;
          v
        end
        else begin
          ignore (Base.casl ctx t.head (Value.Int first) (Value.Int n));
          loop ()
        end
      end
      else begin
        (* node already consumed: help advance head past it *)
        ignore (Base.casl ctx t.head (Value.Int first) (Value.Int n));
        loop ()
      end
    end
  in
  loop ()

let deq_recover t ~pid =
  let ctx = t.ctx in
  let resp = Base.get_resp ctx ~pid in
  if not (Value.equal resp Value.Bot) then resp
  else
    let datt = Base.rd ctx t.datt_p.(pid) in
    if Value.equal datt Value.Bot then Sched.Obj_inst.fail
    else
      let n = Value.to_int datt in
      if Value.equal (Base.rd ctx t.node_deq.(n)) (Value.Int pid) then begin
        let v = Base.rd ctx t.node_val.(n) in
        Base.set_resp ctx ~pid v;
        v
      end
      else Sched.Obj_inst.fail

let instance t =
  let ctx = t.ctx in
  let announce ~pid op =
    Base.announce_with ctx ~pid
      ~extra:(fun () ->
        Base.wr ctx t.node_p.(pid) Value.Bot;
        Base.wr ctx t.att_p.(pid) Value.Bot;
        Base.wr ctx t.datt_p.(pid) Value.Bot)
      op
  in
  let invoke ~pid (op : Spec.op) =
    match (op.Spec.name, op.Spec.args) with
    | "enq", [| v |] -> enq t ~pid v
    | "deq", [||] -> deq t ~pid
    | _ -> Base.bad_op "Dqueue" op
  in
  let recover ~pid (op : Spec.op) =
    match (op.Spec.name, op.Spec.args) with
    | "enq", [| _ |] -> enq_recover t ~pid
    | "deq", [||] -> deq_recover t ~pid
    | _ -> Base.bad_op "Dqueue" op
  in
  {
    Sched.Obj_inst.descr = "dqueue (detectable durable FIFO queue)";
    spec = Spec.fifo_queue ();
    announce;
    invoke;
    recover;
    clear = (fun ~pid -> Base.std_clear ctx ~pid);
    pending = (fun ~pid -> Base.std_pending ctx ~pid);
    strict_recovery = true;
    id_symmetric = false;
  }

let shared_locs t =
  [ t.head; t.tail; t.alloc_idx ]
  @ Array.to_list t.node_val
  @ Array.to_list t.node_next
  @ Array.to_list t.node_deq
