open Nvm
open History
open Sched

let sep = '/'

let lift name (op : Spec.op) =
  { op with Spec.name = name ^ String.make 1 sep ^ op.Spec.name }

let split_op (op : Spec.op) =
  match String.index_opt op.Spec.name sep with
  | None -> None
  | Some k ->
      let owner = String.sub op.Spec.name 0 k in
      let inner =
        String.sub op.Spec.name (k + 1) (String.length op.Spec.name - k - 1)
      in
      Some (owner, { op with Spec.name = inner })

let product_spec components =
  let init =
    Value.Tup
      (Array.of_list (List.map (fun (_, s) -> s.Spec.init) components))
  in
  let index name =
    let rec go k = function
      | [] -> None
      | (n, spec) :: rest -> if String.equal n name then Some (k, spec) else go (k + 1) rest
    in
    go 0 components
  in
  let step state op =
    match split_op op with
    | None ->
        invalid_arg
          (Format.asprintf "product spec: operation %a has no component prefix"
             Spec.pp_op op)
    | Some (owner, inner) -> (
        match index owner with
        | None ->
            invalid_arg
              (Format.asprintf "product spec: unknown component %S" owner)
        | Some (k, spec) ->
            let sub_state = Value.nth state k in
            let sub_state', resp = spec.Spec.step sub_state inner in
            (Value.set_nth state k sub_state', resp))
  in
  {
    Spec.obj_name =
      "product(" ^ String.concat "," (List.map fst components) ^ ")";
    init;
    step;
  }

let combine components =
  (match components with
  | [] -> invalid_arg "Compose.combine: no components"
  | _ -> ());
  List.iter
    (fun (name, _) ->
      if String.length name = 0 || String.contains name sep then
        invalid_arg "Compose.combine: component names must be non-empty and /-free")
    components;
  let distinct = List.sort_uniq String.compare (List.map fst components) in
  if List.length distinct <> List.length components then
    invalid_arg "Compose.combine: duplicate component names";
  let owner_of op =
    match split_op op with
    | None ->
        invalid_arg
          (Format.asprintf "Compose: operation %a has no component prefix"
             Spec.pp_op op)
    | Some (owner, inner) -> (
        match List.assoc_opt owner components with
        | None ->
            invalid_arg (Format.asprintf "Compose: unknown component %S" owner)
        | Some inst -> (inst, inner))
  in
  let spec = product_spec (List.map (fun (n, i) -> (n, i.Obj_inst.spec)) components) in
  {
    Obj_inst.descr =
      "compose("
      ^ String.concat ", "
          (List.map (fun (n, i) -> n ^ ":" ^ i.Obj_inst.descr) components)
      ^ ")";
    spec;
    announce =
      (fun ~pid op ->
        let inst, inner = owner_of op in
        inst.Obj_inst.announce ~pid inner);
    invoke =
      (fun ~pid op ->
        let inst, inner = owner_of op in
        inst.Obj_inst.invoke ~pid inner);
    recover =
      (fun ~pid op ->
        let inst, inner = owner_of op in
        inst.Obj_inst.recover ~pid inner);
    clear =
      (fun ~pid ->
        (* only the component with a live announcement needs clearing; the
           peek costs no step *)
        List.iter
          (fun (_, inst) ->
            if inst.Obj_inst.pending ~pid <> None then inst.Obj_inst.clear ~pid)
          components);
    pending =
      (fun ~pid ->
        List.fold_left
          (fun acc (name, inst) ->
            match acc with
            | Some _ -> acc
            | None -> (
                match inst.Obj_inst.pending ~pid with
                | Some inner -> Some (lift name inner)
                | None -> None))
          None components);
    strict_recovery =
      List.for_all (fun (_, i) -> i.Obj_inst.strict_recovery) components;
    (* a composition is layout-symmetric iff every component is: the
       components' cells are interleaved but each keeps its own
       contract *)
    id_symmetric =
      List.for_all (fun (_, i) -> i.Obj_inst.id_symmetric) components;
  }
