open Nvm

(** Process-symmetry canonicalisation of memory configurations.

    The core objects' layout contract ({!Sched.Obj_inst.id_symmetric})
    says process-id-dependent data lives only in per-process private
    cells (allocated in the same slot order for every process) and in
    the pid-indexed entries of shared length-N {!Value.Tup} vectors.
    Under that contract a permutation π of process ids acts on a
    configuration by permuting each process's private-cell block and
    each length-N vector's entries; two configurations in the same
    orbit are reachable from each other by renaming processes, so an
    explorer needs to visit only one representative per orbit.

    This module provides the two memory-side ingredients:

    - {!swap_invariant} decides whether transposing two given pids
      leaves the configuration bytewise unchanged — the cheap runtime
      check the explorer's [`Dpor_sym] reduction performs before
      pruning a never-stepped process in favour of an interchangeable
      representative;
    - {!canonical_fingerprint} digests a configuration {e modulo all
      of S_N} (a true quotient up to 63-bit hash collisions): π-related
      configurations always collide, and the quotient tests use it to
      certify that the canonicalisation respects exactly the orbit
      relation.

    Nested vectors are handled recursively.  A tuple is classified as
    a pid-indexed vector when it has length N {e and} all its entries
    share one structural skeleton (constructor shape, ignoring scalar
    values) — so a flip vector [(true, false)] is a vector at N = 2
    while Algorithm 2's heterogeneous pair [(value, flip-vector)] is
    not.  The classification is invariant under the permutation action
    (permuting equal-skeleton entries preserves every skeleton), which
    is what makes the fingerprints commute with it.  A genuine
    homogeneous N-tuple that is not pid-indexed is still
    over-approximated as one; that only makes {!swap_invariant} more
    conservative (fewer prunes — still sound) and
    {!canonical_fingerprint} coarser, which is why the explorer
    additionally requires the instance's [id_symmetric] declaration
    before acting on either. *)

val swap_invariant : n:int -> Mem.t -> int -> int -> bool
(** [swap_invariant ~n mem p q] — is the current configuration invariant
    under transposing process ids [p] and [q]?  True iff every shared
    length-[n] vector (recursively) holds equal values at indices [p]
    and [q], and the private-cell blocks of [p] and [q] have the same
    length and equal values slot by slot.  [p = q] is rejected with
    [Invalid_argument]. *)

val canonical_fingerprint : n:int -> Mem.t -> int * int
(** Two-word digest of the full configuration modulo process-id
    permutation: the per-process views (private block + pid-indexed
    vector entries, position-tagged) are hashed individually and folded
    as a sorted multiset, the pid-independent remainder positionally.
    π-related configurations get equal fingerprints for every π ∈ S_N;
    distinct orbits collide only with 63-bit-hash probability. *)

val canonical_fingerprint_shared : n:int -> Mem.t -> int * int
(** {!canonical_fingerprint} restricted to the shared cells — the
    quotient of the paper's memory-equivalence by S_N.  This is the key
    the explorer's [`Dpor_sym_memo] configuration counting uses: one
    entry per reachable {e orbit} of shared configurations, with
    {!orbit_size_shared} supplying each orbit's exact cardinality. *)

val orbit_size_shared : n:int -> Mem.t -> int
(** Exact size of the current shared configuration's orbit under S_N:
    [N! / prod(class sizes!)], where two pids are in one class iff the
    configuration is invariant under transposing them restricted to
    shared cells (the stabiliser is exactly that partition's Young
    subgroup, so the count is not an estimate).  Raises
    [Invalid_argument] for [n > 20] ([N!] would overflow). *)

val self_key : n:int -> pid:int -> seed:int -> Value.t -> int
(** One process's view of a value: its pid-independent shape mixed with
    the [pid]-th slice of every pid-indexed vector.  Equivariant under
    the action ([self_key ~pid:(π p) (π v) = self_key ~pid:p v]), which
    is what lets the explorer rank processes π-consistently {e before}
    any permutation has been chosen. *)

val hash_perm : n:int -> inv:int array -> seed:int -> Value.t -> int
(** Digest of a value under an explicit process relabeling: pid-indexed
    vectors contribute their entries in the order [inv.(0), inv.(1),
    ...] (canonical rank order) instead of pid order.  When two
    configurations are π-images and [inv] carries their matching
    canonical orders, the digests agree; used by the explorer to fold
    memory contents and logged response values into its
    symmetry-canonical memo key. *)

(** {1 Snapshot-side variants}

    Audit/test-path equivalents over {!Mem.snapshot_cells} arrays, used
    by {!Config_set}'s canonical Exact mode to audit the fingerprint
    quotient: same digests and weights as the live versions. *)

val cells_fingerprint_shared : n:int -> (Loc.t * Value.t) array -> int * int
val cells_orbit_size_shared : n:int -> (Loc.t * Value.t) array -> int

val related_shared :
  n:int -> (Loc.t * Value.t) array -> (Loc.t * Value.t) array -> bool
(** [related_shared ~n ca cb] — is some π ∈ S_N's action on [ca]'s
    shared cells memory-equivalent to [cb]?  Decided exactly, by trying
    all [n!] permutations — audit/test path only.  Two snapshots with
    equal {!cells_fingerprint_shared} that are {e not} related witness a
    canonicalisation collision (the quotient test's failure event). *)
