open Nvm

(** Process-symmetry canonicalisation of memory configurations.

    The core objects' layout contract ({!Sched.Obj_inst.id_symmetric})
    says process-id-dependent data lives only in per-process private
    cells (allocated in the same slot order for every process) and in
    the pid-indexed entries of shared length-N {!Value.Tup} vectors.
    Under that contract a permutation π of process ids acts on a
    configuration by permuting each process's private-cell block and
    each length-N vector's entries; two configurations in the same
    orbit are reachable from each other by renaming processes, so an
    explorer needs to visit only one representative per orbit.

    This module provides the two memory-side ingredients:

    - {!swap_invariant} decides whether transposing two given pids
      leaves the configuration bytewise unchanged — the cheap runtime
      check the explorer's [`Dpor_sym] reduction performs before
      pruning a never-stepped process in favour of an interchangeable
      representative;
    - {!canonical_fingerprint} digests a configuration {e modulo all
      of S_N} (a true quotient up to 63-bit hash collisions): π-related
      configurations always collide, and the quotient tests use it to
      certify that the canonicalisation respects exactly the orbit
      relation.

    Nested vectors are handled recursively.  A tuple is classified as
    a pid-indexed vector when it has length N {e and} all its entries
    share one structural skeleton (constructor shape, ignoring scalar
    values) — so a flip vector [(true, false)] is a vector at N = 2
    while Algorithm 2's heterogeneous pair [(value, flip-vector)] is
    not.  The classification is invariant under the permutation action
    (permuting equal-skeleton entries preserves every skeleton), which
    is what makes the fingerprints commute with it.  A genuine
    homogeneous N-tuple that is not pid-indexed is still
    over-approximated as one; that only makes {!swap_invariant} more
    conservative (fewer prunes — still sound) and
    {!canonical_fingerprint} coarser, which is why the explorer
    additionally requires the instance's [id_symmetric] declaration
    before acting on either. *)

val swap_invariant : n:int -> Mem.t -> int -> int -> bool
(** [swap_invariant ~n mem p q] — is the current configuration invariant
    under transposing process ids [p] and [q]?  True iff every shared
    length-[n] vector (recursively) holds equal values at indices [p]
    and [q], and the private-cell blocks of [p] and [q] have the same
    length and equal values slot by slot.  [p = q] is rejected with
    [Invalid_argument]. *)

val canonical_fingerprint : n:int -> Mem.t -> int * int
(** Two-word digest of the full configuration modulo process-id
    permutation: the per-process views (private block + pid-indexed
    vector entries, position-tagged) are hashed individually and folded
    as a sorted multiset, the pid-independent remainder positionally.
    π-related configurations get equal fingerprints for every π ∈ S_N;
    distinct orbits collide only with 63-bit-hash probability. *)
