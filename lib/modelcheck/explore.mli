open Nvm
open History
open Sched

(** Bounded exhaustive exploration of interleavings and crash points.

    Because process programs are deterministic given the values their
    primitive steps return, an execution is fully determined by its
    {e decision sequence}: at each point, either some process takes its
    next primitive step or the system crashes.  The explorer re-executes
    the workload from scratch along every decision sequence in a bounded
    family and checks every resulting history with {!Lin_check}.

    Full interleaving exploration explodes combinatorially, so the family
    is {e delay-bounded} (Emmi–Qadeer–Rakamarić style): a run may switch
    the running process at most [switch_budget] times and crash at most
    [crash_budget] times, but switches and crashes may occur {e between
    any two primitive steps}.  Small budgets already cover the executions
    the paper's proofs construct (Figures 1 and 2 use two to three context
    switches), and every scheduling bug this repository's ablations plant
    is found with budgets ≤ 3.

    Two engine features keep larger budgets affordable (see DESIGN.md,
    "Scaling the checker"):

    - {b Pruning} ([prune], on by default): each DFS node is keyed by a
      compact fingerprint of (full memory contents, session state
      digest, scheduler state) and its subtree summary is memoised.
      Revisiting an equivalent node adds the cached
      executions/violations counts instead of re-exploring, so pruning
      is {e exact}: [executions], [truncated], [total_violations] and
      [distinct_shared_configs] are identical to the unpruned engine's;
      only [nodes] (physical replays) shrinks.  Commuting interleavings
      of non-interfering steps all land on the same key, which is where
      the savings come from.
    - {b Parallelism} ([domains] > 1): the top-level decision frontier is
      dealt round-robin to that many OCaml domains, each running the
      replay-based DFS on its share with its own machines, memo table
      and configuration set; outcomes merge at the join.  [mk] must
      therefore be safe to call concurrently (a pure constructor of
      fresh machines — which every existing factory already is).

    The explorer also accumulates the set of pairwise
    non-memory-equivalent shared-memory configurations visited, which is
    how experiment E1 measures reachable configurations against
    Theorem 1's 2^(N−1) bound. *)

type decision = Step of int  (** process [pid] takes one step *) | Crash

val pp_decision : Format.formatter -> decision -> unit

type engine = [ `Replay | `Undo ]
(** Execution substrate of the DFS.

    [`Replay] rebuilds machine + session from the root for every node
    (the historical engine, O(depth) per node).  [`Undo] keeps ONE
    machine/session pair and backtracks by [Session.mark]/[rewind] over
    the store's write journal — O(work-since-mark) per node, with
    discarded fibers rebuilt lazily by ghost replay.  Both engines
    visit the same nodes in the same order with identical state
    digests, so [executions]/[truncated]/[total_violations]/
    [distinct_shared_configs] and the violation samples are identical;
    only speed (and the engine-specific metrics) differ. *)

type reduction = [ `None | `Dpor | `Dpor_sym | `Dpor_sym_memo ]
(** Search-space reduction applied during child generation (default
    [`None] — the committed baselines and every parity contract above
    are stated for the unreduced search).

    [`Dpor]: dynamic partial-order reduction with sleep sets over the
    per-cell dependency relation, strengthened by a {e source-set}
    rule.  After a step [t] is explored at a node, [t] is {e slept} for
    the later sibling subtrees and stays slept through independent
    steps (two steps are dependent iff they may touch the same cell
    with at least one writer; crashes are dependent with everything),
    so commuting interleavings of independent steps are pruned
    {e before} being replayed rather than merely deduplicated
    afterwards.  A step is only slept when executing it emitted no
    history events, which keeps the linearizability checker's event
    order out of the commutation.  The source-set rule goes further
    when the {e running} process's pending step touches at most its own
    private cell, is sleepable, proves event-silent, and the path has
    no crash budget left: that single child is then a sufficient
    {e source set} — every maximal execution from the node must
    eventually take the step, commuting it to the front crosses only
    steps it is independent of, costs no switch (the process is already
    running) and can only {e lower} later siblings' preemption counts,
    so the entire remaining sibling frontier is skipped (counted in
    [source_skips]).

    [`Dpor_sym]: additionally prunes process symmetry.  A runnable
    process [p] that has never stepped is skipped when some
    already-explored runnable [q < p] has also never stepped, runs a
    statically identical workload, and the configuration is invariant
    under transposing [p] and [q] ({!Sym.swap_invariant}) — subtrees
    then identical up to renaming.  Requires the instance to declare
    {!Sched.Obj_inst.id_symmetric}; otherwise behaves exactly like
    [`Dpor].

    [`Dpor_sym_memo]: additionally keys the subtree memo table and the
    configuration set on {e symmetry-canonical} digests, so a node that
    is a π-image (π ∈ S_N) of an already-explored node hits the memo
    instead of being re-explored, and [distinct_shared_configs] counts
    whole orbits at once via exact orbit-size weighting
    ({!Config_set.create}'s [~canonical] mode) while physically
    visiting one representative per orbit.  Canonical keys demand more
    than [`Dpor_sym]'s pairwise pruning: the instance must declare
    [id_symmetric], all workloads must be equal and non-empty, N ≤ 20,
    pruning must be on, and a node's path must have spent no crash
    budget (crashed paths fall back to raw keys — still sound, just
    unmerged).  When any gate fails the mode degrades to exactly
    [`Dpor_sym].  The delay-bounded switch accounting is
    permutation-equivariant (a step's cost depends only on whether its
    process {e is} the running process, never on pid values) and every
    budget component is part of the canonical key, so transferring a
    memoised subtree summary across an orbit is structurally sound —
    with one caveat: which nodes get memoised depends on exploration
    order, so reduced-vs-unreduced {e node} counts differ by
    construction while executions/violations/configs transfer exactly
    per key.  A hash collision between non-π-related nodes would merge
    them ([Config_set]'s Exact mode audits exactly this event for the
    configuration set; the quotient property tests drive it).

    Soundness contract: every node the reduced search visits is a node
    the unreduced search visits, so [distinct_shared_configs] is always
    a certified {e lower bound} on the reachable count (what Theorem 1's
    experiment needs; note [`Dpor_sym] visits only one representative
    per symmetry orbit without weighting, so configuration {e counts}
    should be read from [`Dpor] or [`Dpor_sym_memo]).  Because a pruned
    execution's representative can cost a different number of switches
    under [`Dpor_sym]'s unweighted pairwise rule, reduction is NOT
    guaranteed to preserve verdicts or counts exactly at tight budgets;
    the reduction parity tests pin verdict agreement empirically on the
    ablations and random workloads. *)

val reduction_name : reduction -> string
(** ["none"] / ["dpor"] / ["dpor+sym"] / ["dpor+sym-memo"] — the label
    used in metrics and JSON. *)

type config = {
  switch_budget : int;  (** max context switches per execution *)
  crash_budget : int;  (** max crashes per execution *)
  max_steps : int;  (** per-execution step bound (safety) *)
  policy : Session.policy;
  keep : Loc.t -> bool;  (** write-back mask applied at crashes *)
  wipe : Fault_model.wipe option;
      (** when [Some w], crashes apply fault-model wipe [w] instead of
          the [keep] mask (see {!Nvm.Fault_model}); [Seeded] wipes key
          their randomness on the session's crash counter, which the
          undo engine rewinds, so both engines replay identical crash
          outcomes.  Default [None]. *)
  max_violations : int;  (** stop collecting after this many samples *)
  prune : bool;  (** memoise subtrees by state fingerprint (exact) *)
  domains : int;  (** worker domains; 1 = sequential *)
  exact_configs : bool;
      (** audit config-set fingerprints with full snapshots *)
  engine : engine;  (** execution substrate; default [`Undo] *)
  lin_engine : Lin_check.engine;
      (** linearizability-checker engine; default [`Incremental].
          [`Incremental] keeps one {!Lin_check.Session} synced along
          the decision stack (frontier marked/extended/rewound in step
          with the DFS), so a leaf verdict costs O(new events since the
          shared prefix) instead of a whole-history Wing–Gong restart.
          [`Batch] re-checks every leaf from scratch with
          {!Lin_check.check} — the reference the parity tests and the
          committed lincheck benchmark compare against.  Verdicts (and
          so all outcome counters and violation messages) are identical
          under both. *)
  reduction : reduction;  (** see {!reduction}; default [`None] *)
  node_budget : int;
      (** stop after physically visiting this many DFS nodes (0 = no
          bound, the default).  A capped run sets [outcome.capped]; its
          counters are partial but remain valid lower bounds.  With
          [domains > 1] the budget applies per worker domain.  The cap
          is on {e physical} nodes, which is what makes reduced and
          unreduced searches comparable under the same budget. *)
  gc : Dtc_util.Gc_tune.t;
      (** per-domain GC tuning applied to every domain the exploration
          runs on: inside each spawned worker when [domains > 1], and
          around (with restore-after) the sequential search otherwise.
          Default {!Dtc_util.Gc_tune.none} — GC parameters untouched. *)
}

val default_config : config
(** switch budget 3, crash budget 1, 2_000 steps, [Retry], keep-all,
    collect up to 3 violations; pruning on, 1 domain, fingerprint-mode
    configuration counting, undo engine, incremental checker, no
    reduction, no node budget. *)

val engine_name : engine -> string
(** ["replay"] / ["undo"] — the label used in metrics and JSON. *)

type violation = {
  decisions : decision list;  (** the schedule that exhibits it *)
  history : Event.t list;
  msg : string;
}

type metrics = {
  engine : string;  (** {!engine_name} of the engine that ran *)
  dedup_hits : int;  (** nodes answered from the visited set *)
  nodes_saved : int;
      (** logical nodes the memo hits avoided replaying; the unpruned
          engine would have visited [nodes + nodes_saved] nodes *)
  peak_visited : int;  (** total memo-table entries (summed over domains) *)
  fingerprint_collisions : int;
      (** {!Config_set.collisions} of the merged set; always 0 unless
          [exact_configs] *)
  elapsed_s : float;
  nodes_per_sec : float;  (** physically visited nodes per wall-clock second *)
  replay_depth_hist : (int * int) list;
      (** (decision-sequence length, visited nodes at that depth),
          ascending — the work profile of the search *)
  domains_used : int;
  rewound_cells : int;
      (** undo engine: total cell restorations performed by rewinds *)
  rewound_cells_per_sec : float;
  journal_depth_hist : (int * int) list;
      (** undo engine: (log2 bucket of journal depth, nodes sampled at
          that depth), ascending; bucket [b] covers depths
          [2^(b-1) .. 2^b - 1] (bucket 0 = empty journal) *)
  intern_hits : int;  (** {!Nvm.Value.intern} table hits during the run *)
  intern_misses : int;
  intern_hit_rate : float;  (** hits / (hits + misses), 0 if no traffic *)
  lin_engine : string;  (** {!Lin_check.engine_name} of the checker used *)
  leaf_checks : int;  (** leaf histories submitted to the checker *)
  lin_elapsed_s : float;
      (** checker-attributable wall time: event pushes, frontier
          rewinds and verdicts (incremental), or whole-history checks
          (batch) *)
  lin_checks_per_sec : float;  (** [leaf_checks / lin_elapsed_s] *)
  lin_events_pushed : int;
      (** events actually fed to the checker; under the incremental
          engine each shared-prefix event is pushed once, not once per
          leaf below it *)
  lin_events_total : int;  (** sum of leaf history lengths *)
  lin_reuse_rate : float;
      (** [1 - pushed/total]: the fraction of per-leaf checker work the
          frontier reuse avoided (0 under batch) *)
  frontier_hist : (int * int) list;
      (** incremental checker: (log2 bucket of frontier size, nodes
          sampled at that size), ascending; same bucket convention as
          [journal_depth_hist] *)
  reduction : string;  (** {!reduction_name} of the reduction that ran *)
  sleep_skips : int;  (** children pruned by the DPOR sleep set *)
  sym_skips : int;  (** children pruned by symmetry canonicalisation *)
  source_skips : int;
      (** siblings pruned by the source-set rule (the running process's
          local silent step was a sufficient singleton source set) *)
  canonical_orbits : int;
      (** [`Dpor_sym_memo] with the canonical gates satisfied: distinct
          S_N orbits of shared configurations actually stored, of which
          [distinct_shared_configs] is the orbit-size-weighted
          expansion.  0 under every other mode (the configuration set
          is then unweighted). *)
  minor_words : float;
      (** words allocated on the minor heap during the search, summed
          over worker domains ({!Dtc_util.Alloc_stats}) *)
  promoted_words : float;  (** minor-heap words promoted to the major heap *)
  minor_collections : int;  (** minor GCs triggered by the search *)
  bytes_per_node : float;
      (** total allocated bytes (minor + major − promoted, in words ×
          word size) divided by physically visited nodes — the
          allocation-discipline figure the bench gates bound *)
}

type outcome = {
  executions : int;  (** complete executions explored (incl. memoised) *)
  truncated : int;  (** executions cut off by [max_steps] *)
  nodes : int;  (** DFS nodes physically replayed *)
  violations : violation list;  (** sample, capped at [max_violations] *)
  total_violations : int;  (** all violating executions, uncapped *)
  distinct_shared_configs : int;
      (** pairwise non-memory-equivalent shared-memory configurations
          seen anywhere in the exploration *)
  capped : bool;
      (** the [node_budget] stopped the search; all counters are partial
          (valid lower bounds over what was actually visited) *)
  metrics : metrics;
}

val explore :
  mk:(unit -> Runtime.Machine.t * Obj_inst.t) ->
  workloads:Spec.op list array ->
  config ->
  outcome
(** [mk] must build a fresh machine and instance on every call (the
    explorer re-executes from the initial configuration once per DFS
    node) and, when [domains > 1], must tolerate concurrent calls from
    different domains. *)

val crash_points :
  mk:(unit -> Runtime.Machine.t * Obj_inst.t) ->
  workloads:Spec.op list array ->
  schedule:(unit -> Schedule.t) ->
  ?policy:Session.policy ->
  ?keep:(Loc.t -> bool) ->
  ?max_steps:int ->
  unit ->
  outcome
(** One crash at every possible step of the given deterministic schedule
    (including "no crash"), recovery run to completion under the same
    schedule.  The schedule factory is invoked once per run, so stateful
    schedules like round-robin start fresh each time.  Cheap — linear in
    the schedule length — and exactly the shape of the Figure 2
    construction: it is how experiment E3 exhibits the auxiliary-state
    impossibility on the ablated objects.  Its [metrics] carry timing
    only (no pruning happens here). *)
