open Nvm

(** A set of shared-memory configurations up to the paper's
    memory-equivalence (equal contents of every shared variable; private
    NVM and local state ignored).

    Theorem 1 counts reachable pairwise non-memory-equivalent
    configurations; both the explorer and experiment E1 accumulate
    configurations here.  The default representation stores only a
    two-word {!Mem.fingerprint_shared} digest per configuration — O(1)
    space per member and allocation-free insertion from a live store —
    which is what lets the explorer call {!add_live} at every DFS node.
    [Exact] mode additionally keeps full snapshots bucketed by
    fingerprint, turning silent fingerprint collisions into an audited
    {!collisions} count; use it to validate fingerprint-mode results on
    workloads small enough to afford the snapshots. *)

type mode =
  | Fingerprint  (** digests only: O(1) space/member, no false splits *)
  | Exact  (** digests + snapshots: counts exactly, audits collisions *)

type t

val create : ?mode:mode -> ?canonical:int -> unit -> t
(** Default mode: [Fingerprint].

    [~canonical:n] makes the set count configurations {e modulo} the
    S_N process-permutation action instead of one by one: members are
    keyed on {!Sym.canonical_fingerprint_shared} (one key per orbit)
    and each new orbit contributes its exact {!Sym.orbit_size_shared}
    to {!cardinal}.  Under an id-symmetric layout every π-image of a
    reachable configuration is itself reachable, so the weighted total
    remains a certified lower bound on the reachable
    pairwise-non-memory-equivalent count — this is what lets the
    [`Dpor_sym_memo] explorer report Theorem 1 counts while visiting
    only one representative per orbit.  A canonicalisation collision
    (distinct orbits, equal fingerprint) merges in [Fingerprint] mode
    and can only {e under}-count; [Exact] mode audits exactly that
    event, with orbit membership ({!Sym.related_shared}) as the bucket
    equality.  Raises [Invalid_argument] if [n] is outside [1..20]
    ([N!] weights would overflow). *)

val mode : t -> mode

val canonical : t -> int option
(** [Some n] iff the set counts orbit-weighted canonical keys. *)

val add : t -> Mem.snapshot -> unit
(** No-op if a memory-equivalent snapshot is already present. *)

val insert : t -> Mem.snapshot -> bool
(** Like {!add}, but reports whether the configuration was new. *)

val add_live : t -> Mem.t -> bool
(** Insert the store's current shared configuration.  In [Fingerprint]
    mode this allocates nothing; in [Exact] mode it snapshots. *)

val cardinal : t -> int
(** Number of distinct configurations.  O(1): a running count is
    maintained so per-step callers (e.g. {!Explore.crash_points}) never
    pay a table fold.  Canonical sets return the orbit-size-weighted
    total (see {!create}); plain sets count members. *)

val orbits : t -> int
(** Distinct keys actually stored ([Exact] mode: plus audited
    collisions).  Equals {!cardinal} for plain sets; for canonical sets
    it is the number of distinct orbits, of which {!cardinal} is the
    weighted expansion. *)

val collisions : t -> int
(** [Exact] mode: how many inserted configurations shared a fingerprint
    with a previously inserted, non-memory-equivalent one.  Any non-zero
    value means fingerprint-mode counts would have under-reported.
    Always 0 in [Fingerprint] mode (collisions are invisible there). *)

val merge_into : dst:t -> src:t -> unit
(** Union [src] into [dst] (the parallel explorer's join); orbit
    weights transfer with their keys.  Merging a [Fingerprint] source
    into an [Exact] destination is rejected with [Invalid_argument] —
    the snapshots needed for auditing are gone — as is merging across
    different [canonical] settings (the key spaces differ). *)
