open History
open Sched

(** Counterexample minimisation (delta debugging over decision
    sequences).

    A violation found by {!Explore} comes with the decision sequence that
    produced it.  [minimise] greedily deletes decisions — steps and
    crashes — re-executing after each deletion and keeping any shorter
    sequence that still yields a checker violation, until no single
    deletion preserves the failure (1-minimality).

    Replay of a candidate sequence is {e tolerant}: a [Step pid] whose
    process is not currently runnable is skipped rather than an error
    (deleting an early decision shifts everything after it), and the
    run is completed after the prefix by round-robin so the history is
    closed.  The result therefore reproduces a violation under "prefix
    then free run", which is how the minimised schedule should be read.

    Like {!Explore.explore}, the shrinker has two execution substrates
    selected by [?engine].  [`Replay] builds a fresh machine + session
    per candidate.  [`Undo] (the default) keeps one session in undo
    mode: the greedy pass advances the session through the kept prefix
    and evaluates each deletion candidate by mark / run-tail / rewind,
    so a candidate costs O(its tail) instead of O(the whole sequence).
    Both engines try the same candidates in the same order and return
    identical results, including [attempts].

    Orthogonally, [?lin_engine] selects the linearizability-checker
    engine (default [`Incremental]).  Under [`Undo] + [`Incremental] a
    {!Lin_check.Session} shadows the undo session mark-for-mark, so each
    candidate's verdict reuses the frontier of the kept prefix instead
    of re-checking the whole history; verdicts are identical to
    [`Batch]'s, so the search trajectory and result do not depend on the
    choice. *)

type result = {
  decisions : Explore.decision list;  (** the minimised prefix *)
  history : Event.t list;
  msg : string;
  attempts : int;  (** replays performed while shrinking *)
}

val reproduces :
  mk:(unit -> Runtime.Machine.t * Obj_inst.t) ->
  workloads:Spec.op list array ->
  ?policy:Session.policy ->
  ?keep:(Nvm.Loc.t -> bool) ->
  ?wipe:Nvm.Fault_model.wipe ->
  ?max_steps:int ->
  ?lin_engine:Lin_check.engine ->
  Explore.decision list ->
  (Event.t list * string) option
(** Run "prefix then free run" for a decision sequence; [Some] iff the
    checker rejects the resulting history.  [wipe] overrides [keep] when
    given: crashes in the sequence then apply that fault-model wipe
    (a [Seeded] wipe keys on the crash index, so the exact faulted run
    that produced the violation is replayed). *)

val minimise :
  mk:(unit -> Runtime.Machine.t * Obj_inst.t) ->
  workloads:Spec.op list array ->
  ?policy:Session.policy ->
  ?keep:(Nvm.Loc.t -> bool) ->
  ?wipe:Nvm.Fault_model.wipe ->
  ?max_steps:int ->
  ?engine:Explore.engine ->
  ?lin_engine:Lin_check.engine ->
  ?reduction:Explore.reduction ->
  Explore.decision list ->
  result option
(** [None] if the input sequence does not reproduce a violation under
    tolerant replay (shrinking needs a reproducible starting point).
    [wipe] as in {!reproduces}.

    [reduction] names the search that found the witness (default
    [`None]).  Shrinking replays single concrete schedules, so no
    sleep-set or symmetry pruning can apply to a candidate and the
    minimised result is {e invariant} in this argument — the same
    1-minimal witness comes back whichever reduction found the
    violation.  The parameter exists to keep that contract explicit at
    call sites (and under test) rather than silently discarded. *)
