open History
open Sched

type result = {
  decisions : Explore.decision list;
  history : Event.t list;
  msg : string;
  attempts : int;
}

(* "prefix then free run": tolerantly apply the decisions, then round-robin
   until done or budget, then judge the closed history *)

let apply_decision session ~wipe d =
  match (d : Explore.decision) with
  | Explore.Crash -> Session.crash_wipe session wipe
  | Explore.Step pid ->
      if List.mem pid (Session.runnable session) then Session.step session pid

let free_run session ~max_steps =
  let continue = ref true in
  while !continue do
    match Session.runnable session with
    | [] -> continue := false
    | pid :: _ ->
        if Session.steps session >= max_steps then continue := false
        else Session.step session pid
  done

let judge ~lin_engine session (inst : Obj_inst.t) =
  let verdict =
    match Session.anomalies session with
    | a :: _ -> Lin_check.Violation ("driver anomaly: " ^ a)
    | [] ->
        Lin_check.check_with lin_engine inst.Obj_inst.spec
          (Session.history session)
  in
  match verdict with
  | Lin_check.Ok_linearizable _ -> None
  | Lin_check.Violation msg -> Some (Session.history session, msg)

let run_candidate ~mk ~workloads ~policy ~wipe ~max_steps ~lin_engine decisions
    =
  let machine, inst = mk () in
  let session = Session.create ~policy machine inst ~workloads in
  ignore machine;
  List.iter (apply_decision session ~wipe) decisions;
  free_run session ~max_steps;
  judge ~lin_engine session inst

let reproduces ~mk ~workloads ?(policy = Session.Retry)
    ?(keep = fun (_ : Nvm.Loc.t) -> true) ?wipe ?(max_steps = 5_000)
    ?(lin_engine = (`Incremental : Lin_check.engine)) decisions =
  let wipe =
    match wipe with Some w -> w | None -> Nvm.Fault_model.Keep keep
  in
  run_candidate ~mk ~workloads ~policy ~wipe ~max_steps ~lin_engine decisions

(* Both engines perform the same greedy single-deletion search with the
   same memoisation, so they try the same candidates in the same order
   and return identical results (decisions, history, msg, attempts);
   they differ only in how a candidate execution is realised. *)

let minimise_replay ~mk ~workloads ~policy ~wipe ~max_steps ~lin_engine
    decisions =
  let attempts = ref 0 in
  (* successive deletion passes can regenerate a candidate already tried
     (deleting i then j yields the same list as deleting j then i); the
     outcome is a pure function of the decision list, so memoise it and
     only count physical replays in [attempts] *)
  let seen = Hashtbl.create 64 in
  let try_candidate ds =
    match Hashtbl.find_opt seen ds with
    | Some cached -> cached
    | None ->
        incr attempts;
        let outcome =
          run_candidate ~mk ~workloads ~policy ~wipe ~max_steps ~lin_engine ds
        in
        Hashtbl.replace seen ds outcome;
        outcome
  in
  match try_candidate decisions with
  | None -> None
  | Some (history0, msg0) ->
      (* greedy single-deletion passes until no deletion preserves the
         violation (1-minimality) *)
      let rec shrink (cur, history, msg) =
        let n = List.length cur in
        let rec try_deletions k =
          if k >= n then None
          else
            let candidate = List.filteri (fun idx _ -> idx <> k) cur in
            match try_candidate candidate with
            | Some (h, m) -> Some (candidate, h, m)
            | None -> try_deletions (k + 1)
        in
        match try_deletions 0 with
        | Some shorter -> shrink shorter
        | None -> (cur, history, msg)
      in
      let ds, history, msg = shrink (decisions, history0, msg0) in
      Some { decisions = ds; history; msg; attempts = !attempts }

(* Incremental engine: ONE undo session for the whole search.  Deleting
   index [k] leaves the first [k] decisions of the current sequence
   unchanged, and the greedy pass walks [k] upward, so the session is
   simply advanced through the kept prefix one decision at a time; a
   candidate is then evaluated by taking a mark where the session stands,
   running only its tail plus the free run, and rewinding.  Candidate
   cost drops from O(whole sequence) to O(its tail), and nothing is ever
   replayed from the root.  Marks stay LIFO: the only outstanding mark is
   the candidate-local one, plus the root mark used to restart passes.

   Under the incremental checker a [Lin_check.Session] shadows the undo
   session mark-for-mark: kept-prefix events are pushed below the
   candidate mark (so their frontier survives the rewind and is shared by
   every later candidate of the pass), the candidate's own tail events
   above it. *)

let minimise_undo ~mk ~workloads ~policy ~wipe ~max_steps ~lin_engine decisions
    =
  let machine, inst = mk () in
  let session = Session.create ~policy ~undo:true machine inst ~workloads in
  ignore machine;
  let lin =
    match lin_engine with
    | `Batch -> None
    | `Incremental -> Some (Lin_check.Session.create inst.Obj_inst.spec)
  in
  (* push the sched-session events the checker session has not seen yet
     (the two rewind in lockstep, so the gap is always a suffix) *)
  let sync () =
    match lin with
    | None -> ()
    | Some ls ->
        let missing =
          Session.event_count session - Lin_check.Session.events ls
        in
        let rec take_rev k acc l =
          if k = 0 then acc
          else
            match l with
            | [] -> acc
            | e :: tl -> take_rev (k - 1) (e :: acc) tl
        in
        Lin_check.Session.push_history ls
          (take_rev missing [] (Session.events_rev session))
  in
  let lin_mark () =
    sync ();
    Option.map (fun ls -> (ls, Lin_check.Session.mark ls)) lin
  in
  let lin_rewind = function
    | None -> ()
    | Some (ls, m) -> Lin_check.Session.rewind ls m
  in
  let judge () =
    let verdict =
      match Session.anomalies session with
      | a :: _ -> Lin_check.Violation ("driver anomaly: " ^ a)
      | [] -> (
          match lin with
          | Some ls ->
              sync ();
              Lin_check.Session.verdict ls
          | None ->
              Lin_check.check inst.Obj_inst.spec (Session.history session))
    in
    match verdict with
    | Lin_check.Ok_linearizable _ -> None
    | Lin_check.Violation msg -> Some (Session.history session, msg)
  in
  let root = Session.mark session in
  let lin_root = lin_mark () in
  let attempts = ref 0 in
  let seen = Hashtbl.create 64 in
  (* session stands at the state reached by [candidate]'s first decisions;
     [tail] is the rest of [candidate].  Leaves the session where it
     stood. *)
  let try_candidate ~tail candidate =
    match Hashtbl.find_opt seen candidate with
    | Some cached -> cached
    | None ->
        incr attempts;
        let m = Session.mark session in
        let lm = lin_mark () in
        List.iter (apply_decision session ~wipe) tail;
        free_run session ~max_steps;
        let outcome = judge () in
        Session.rewind session m;
        lin_rewind lm;
        Hashtbl.replace seen candidate outcome;
        outcome
  in
  match try_candidate ~tail:decisions decisions with
  | None -> None
  | Some (history0, msg0) ->
      let rec shrink (cur, history, msg) =
        (* session stands at the root here *)
        let arr = Array.of_list cur in
        let n = Array.length arr in
        let rec try_deletions k =
          (* session stands after arr.(0..k-1) *)
          if k >= n then None
          else
            let candidate = List.filteri (fun idx _ -> idx <> k) cur in
            let tail = Array.to_list (Array.sub arr (k + 1) (n - k - 1)) in
            match try_candidate ~tail candidate with
            | Some (h, m) -> Some (candidate, h, m)
            | None ->
                apply_decision session ~wipe arr.(k);
                try_deletions (k + 1)
        in
        let next = try_deletions 0 in
        Session.rewind session root;
        lin_rewind lin_root;
        match next with
        | Some shorter -> shrink shorter
        | None -> (cur, history, msg)
      in
      let ds, history, msg = shrink (decisions, history0, msg0) in
      Some { decisions = ds; history; msg; attempts = !attempts }

let minimise ~mk ~workloads ?(policy = Session.Retry)
    ?(keep = fun (_ : Nvm.Loc.t) -> true) ?wipe ?(max_steps = 5_000)
    ?(engine = (`Undo : Explore.engine))
    ?(lin_engine = (`Incremental : Lin_check.engine))
    ?(reduction = (`None : Explore.reduction)) decisions =
  (* [reduction] records which search produced the witness; candidate
     replays are single concrete schedules, so no pruning can apply and
     the minimised result is invariant in it (the reduction tests pin
     this) — that covers every mode, including the source-set rule and
     the canonical memo keys of [`Dpor_sym_memo], which only ever cut
     branches of a search tree and never alter a concrete replay.
     Accepting it here keeps call sites honest about the contract
     instead of silently dropping the search configuration. *)
  ignore (Explore.reduction_name reduction);
  let wipe =
    match wipe with Some w -> w | None -> Nvm.Fault_model.Keep keep
  in
  match engine with
  | `Replay ->
      minimise_replay ~mk ~workloads ~policy ~wipe ~max_steps ~lin_engine
        decisions
  | `Undo ->
      minimise_undo ~mk ~workloads ~policy ~wipe ~max_steps ~lin_engine
        decisions
