open Nvm
open History
open Sched

type decision = Step of int | Crash

let pp_decision fmt = function
  | Step pid -> Format.fprintf fmt "p%d" pid
  | Crash -> Format.fprintf fmt "CRASH"

type engine = [ `Replay | `Undo ]

type reduction = [ `None | `Dpor | `Dpor_sym | `Dpor_sym_memo ]

let reduction_name = function
  | `None -> "none"
  | `Dpor -> "dpor"
  | `Dpor_sym -> "dpor+sym"
  | `Dpor_sym_memo -> "dpor+sym-memo"

type config = {
  switch_budget : int;
  crash_budget : int;
  max_steps : int;
  policy : Session.policy;
  keep : Loc.t -> bool;
  wipe : Fault_model.wipe option;
  max_violations : int;
  prune : bool;
  domains : int;
  exact_configs : bool;
  engine : engine;
  lin_engine : Lin_check.engine;
  reduction : reduction;
  node_budget : int;
  gc : Dtc_util.Gc_tune.t;
}

(* the wipe actually applied at a Crash decision: an explicit fault
   model wins over the legacy keep mask *)
let config_wipe cfg =
  match cfg.wipe with Some w -> w | None -> Fault_model.Keep cfg.keep

let default_config =
  {
    switch_budget = 3;
    crash_budget = 1;
    max_steps = 2_000;
    policy = Session.Retry;
    keep = (fun _ -> true);
    wipe = None;
    max_violations = 3;
    prune = true;
    domains = 1;
    exact_configs = false;
    engine = `Undo;
    lin_engine = `Incremental;
    reduction = `None;
    node_budget = 0;
    gc = Dtc_util.Gc_tune.none;
  }

let engine_name = function `Replay -> "replay" | `Undo -> "undo"

(* ---- dynamic partial-order reduction --------------------------------

   Sleep sets over the per-cell dependency relation: after exploring a
   step [t] at a node, [t] is slept for the later sibling subtrees; in
   a child reached by [u], only the slept entries independent of [u]
   survive.  Two candidate steps are dependent iff they may touch the
   same cell with at least one writer; a crash is dependent with
   everything (it is never slept and flushes the sleep set of its
   child).  A step is only slept if executing it emitted no history
   events, so commuting it with independent steps permutes neither
   memory effects nor the event order the linearizability checker sees.

   Under the delay-bounded budgets the commuted representative of a
   pruned execution can cost a different number of context switches, so
   reduction is NOT exactly verdict-preserving in general (the parity
   tests pin it empirically on the ablations and random workloads);
   what always holds is that every visited configuration is reachable,
   so reduced distinct-config counts are certified lower bounds — which
   is exactly what the Theorem 1 experiment needs. *)

exception Node_cap
(* raised when [node_budget] physical nodes have been visited; the
   partial counters remain valid lower bounds (nothing is ever counted
   that was not actually explored) *)

let req_writes = function
  | Runtime.Prim.Read _ -> false
  | Runtime.Prim.Write _ | Runtime.Prim.Cas _ | Runtime.Prim.Faa _
  | Runtime.Prim.Persist _ | Runtime.Prim.Fence ->
      true
  | Runtime.Prim.Yield -> false

let independent r1 r2 =
  match (r1, r2) with
  | Runtime.Prim.Yield, _ | _, Runtime.Prim.Yield -> true
  | Runtime.Prim.Fence, _ | _, Runtime.Prim.Fence -> false
  | _ -> (
      match (Runtime.Prim.touches r1, Runtime.Prim.touches r2) with
      | Some l1, Some l2 ->
          l1.Loc.id <> l2.Loc.id || not (req_writes r1 || req_writes r2)
      | _ -> false)

(* Fence conflicts with everything, so sleeping it can never prune *)
let sleepable = function Runtime.Prim.Fence -> false | _ -> true

let sleep_mask sleep =
  List.fold_left (fun m (pid, _) -> m lor (1 lsl pid)) 0 sleep

(* ---- source sets ----------------------------------------------------

   The persistent-set side of the reduction: when the running process's
   pending step touches only state no other process can ever conflict
   with — its own private cell, or nothing (Yield) — then {that step}
   is a persistent (source) set at the node, and after exploring it the
   remaining siblings need not be explored at all.  Soundness: the step
   stays pending and enabled while others run (nothing blocks in this
   model), every maximal execution from the node eventually takes it,
   and commuting it to the front crosses only steps it is independent
   of, so each sibling subtree's executions are covered by the explored
   child.  Three path conditions keep the commutation honest:

   - the step must be event-silent (checked after executing it, like
     sleep sets), so the linearizability checker sees the same event
     orders;
   - it must belong to the {e current} process: moving a zero-cost step
     to the front of a schedule merges the segments around its old
     position and can only lower the preemption count, so every covered
     execution still fits the switch budget — this is the
     permutation-safe half of the delay-bounded accounting;
   - no crash budget may remain on the path (a write cannot be commuted
     across a crash that might drop it).

   Unlike sleep sets — which prune one already-explored step from
   sibling subtrees — a fired source set prunes the {e entire} rest of
   the sibling frontier, which is where the bulk of the node reduction
   on private-step-rich workloads comes from.  Even the Theorem 1 CAS
   chains are such workloads — every operation brackets its shared CAS
   with private announcement/response writes, on which the rule fires
   constantly (it roughly halves the dpor node counts of the committed
   N=5/6 lower-bound rows).  Certified configuration counts are
   untouched: only covered executions are cut, never states. *)

let req_local pid = function
  | Runtime.Prim.Yield -> true
  | Runtime.Prim.Fence -> false
  | r -> (
      match Runtime.Prim.touches r with
      | Some l -> ( match l.Loc.kind with Loc.Private p -> p = pid | Loc.Shared -> false)
      | None -> false)

(* does the source-set fast path apply to [cur]'s pending step at a
   node with no crash budget left?  (Silence is checked by the caller
   after the step executes.) *)
let source_eligible ~reduction ~crash_budget ~cur ~crashes session =
  reduction <> `None
  && crashes >= crash_budget
  &&
  match cur with
  | None -> false
  | Some c -> (
      match Session.pending_request session c with
      | Some r -> req_local c r && sleepable r
      | None -> false)

type violation = {
  decisions : decision list;
  history : Event.t list;
  msg : string;
}

type metrics = {
  engine : string;
  dedup_hits : int;
  nodes_saved : int;
  peak_visited : int;
  fingerprint_collisions : int;
  elapsed_s : float;
  nodes_per_sec : float;
  replay_depth_hist : (int * int) list;
  domains_used : int;
  rewound_cells : int;
  rewound_cells_per_sec : float;
  journal_depth_hist : (int * int) list;
  intern_hits : int;
  intern_misses : int;
  intern_hit_rate : float;
  lin_engine : string;
  leaf_checks : int;
  lin_elapsed_s : float;
  lin_checks_per_sec : float;
  lin_events_pushed : int;
  lin_events_total : int;
  lin_reuse_rate : float;
  frontier_hist : (int * int) list;
  reduction : string;
  sleep_skips : int;
  sym_skips : int;
  source_skips : int;
  canonical_orbits : int;
  minor_words : float;
  promoted_words : float;
  minor_collections : int;
  bytes_per_node : float;
}

type outcome = {
  executions : int;
  truncated : int;
  nodes : int;
  violations : violation list;
  total_violations : int;
  distinct_shared_configs : int;
  capped : bool;
  metrics : metrics;
}

(* Memoised summary of one DFS subtree: what the unpruned engine would
   have accumulated at-and-below a node with this state (excluding the
   node's own replay, which every hit performs anyway to learn the
   state).  Adding a cached summary instead of re-exploring reproduces
   the unpruned counters exactly — pruning changes [nodes] (physical
   replays) but never [executions]/[truncated]/[total_violations].

   The table is open-addressed over flat int arrays (keys plus 4-int
   payload slots: logical nodes strictly below, executions, truncated,
   violations) instead of a Hashtbl: the memo is probed at every node
   and extended at every miss, and the Hashtbl's bucket conses +
   per-entry summary records were the hot loop's largest remaining
   allocation.  Keys are the sign-masked {!mk_key} words, so [-1] is
   free to mark empty slots, and they are already uniformly mixed, so
   [key land mask] indexes directly — no hash call on the probe. *)
module Memo_tbl = struct
  type t = {
    mutable keys : int array;  (* [empty] marks a free slot *)
    mutable vals : int array;  (* 4 ints per slot: nodes/execs/trunc/viols *)
    mutable mask : int;  (* capacity - 1; capacity is a power of two *)
    mutable count : int;
  }

  let empty = -1

  let create cap =
    {
      keys = Array.make cap empty;
      vals = Array.make (4 * cap) 0;
      mask = cap - 1;
      count = 0;
    }

  let length t = t.count

  (* slot holding [k], or the free slot where it would go *)
  let rec probe keys mask k i =
    let ki = keys.(i) in
    if ki = k || ki = empty then i else probe keys mask k ((i + 1) land mask)

  let find t k =
    let i = probe t.keys t.mask k (k land t.mask) in
    if t.keys.(i) = k then i else -1

  let nodes_at t i = t.vals.(4 * i)
  let execs_at t i = t.vals.((4 * i) + 1)
  let trunc_at t i = t.vals.((4 * i) + 2)
  let viols_at t i = t.vals.((4 * i) + 3)

  let grow t =
    let old_keys = t.keys and old_vals = t.vals in
    let cap = 2 * (t.mask + 1) in
    t.keys <- Array.make cap empty;
    t.vals <- Array.make (4 * cap) 0;
    t.mask <- cap - 1;
    Array.iteri
      (fun i k ->
        if k <> empty then begin
          let j = probe t.keys t.mask k (k land t.mask) in
          t.keys.(j) <- k;
          Array.blit old_vals (4 * i) t.vals (4 * j) 4
        end)
      old_keys

  let set t k ~nodes ~execs ~trunc ~viols =
    if 2 * (t.count + 1) > t.mask + 1 then grow t;
    let i = probe t.keys t.mask k (k land t.mask) in
    if t.keys.(i) = empty then begin
      t.keys.(i) <- k;
      t.count <- t.count + 1
    end;
    let b = 4 * i in
    t.vals.(b) <- nodes;
    t.vals.(b + 1) <- execs;
    t.vals.(b + 2) <- trunc;
    t.vals.(b + 3) <- viols
end

(* Visited-set key: full-memory fingerprint (private NVM drives
   recovery, so shared cells alone would merge states with different
   futures), the session's state digest, and the scheduler state the
   delay-bounded DFS branches on (running process, spent budgets).  Two
   nodes with equal keys have identical subtrees — see the soundness
   note on {!Session.state_digest} and DESIGN.md.

   Under reduction two more components join the key, both constant 0
   when the reduction is off (so default-path memo behavior — and every
   committed counter — is unchanged): the sleep-set pid mask (a slept
   subtree summary must not be replayed at a sleep-free revisit), and,
   under symmetry, the ever-stepped pid mask (interchangeability of two
   processes depends on neither having stepped on the path).

   The components are mixed into ONE 63-bit word rather than kept as a
   tuple: hashing and chain-comparing an 8-field boxed tuple was the
   single most expensive line of the hot loop (polymorphic hash
   traverses the tuple on every probe), while an immediate-int key
   probes in O(1) words.  The digest and memory fingerprints are
   already 63-bit hashes, so the memo was always exact only up to hash
   collisions; mixing adds nothing new in kind, and the bench --compare
   gate pins the resulting counters against the committed baselines
   exactly. *)
(* [land max_int] drops the sign bit so [Memo_tbl.empty = -1] can never
   be a real key; 62 bits of key keep the collision odds negligible. *)
let mk_key ~fa ~fb ~dg ~c ~switches ~crashes ~smask ~stepped =
  let m = Value.mix in
  m (m (m (m (m (m (m fa fb) dg) c) switches) crashes) smask) stepped
  land max_int

type state = {
  cfg : config;
  mk : unit -> Runtime.Machine.t * Obj_inst.t;
  workloads : Spec.op list array;
  configs : Config_set.t;
  visited : Memo_tbl.t;
  (* Histograms are dense int arrays indexed by bucket — a Hashtbl
     bump per node was measurable allocation in the hot loop.
     [depth_hist] grows on demand; the log2-bucketed ones are bounded
     by the word size. *)
  mutable depth_hist : int array;
  journal_hist : int array;
      (* undo engine: log2-bucketed journal depth sampled at each node *)
  frontier_hist : int array;
      (* incremental checker: log2-bucketed frontier size per node *)
  mutable lin : Lin_check.Session.t option;
      (* the one incremental checker session, synced along the decision
         stack; None under `Batch (and at parallel roots, which fall
         back to whole-history checks) *)
  mutable leaf_checks : int;
  mutable lin_pushed : int;  (* events fed to the checker *)
  mutable lin_total : int;  (* sum of leaf history lengths *)
  mutable lin_elapsed : float;  (* checker-attributable wall time *)
  mutable executions : int;
  mutable truncated : int;
  mutable nodes : int;
  mutable violations : violation list;
  mutable n_violations : int;
  mutable dedup_hits : int;
  mutable nodes_saved : int;
  mutable rewound : int;  (* undo engine: cells restored by rewinds *)
  mutable intern_hits : int;
  mutable intern_misses : int;
  mutable sleep_skips : int;  (* children pruned by the sleep set *)
  mutable sym_skips : int;  (* children pruned by symmetry *)
  mutable source_skips : int;  (* sibling frontiers cut by source sets *)
  mutable capped : bool;  (* node budget exhausted; counters are partial *)
  mutable alloc : Dtc_util.Alloc_stats.delta;
      (* GC-counter delta attributable to this state's worker *)
  mutable rbufs : int array array;
      (* per-depth runnable-pid buffers: slot [d] is reused by every
         node at depth [d] (safe — recursion only visits deeper slots
         while a node's buffer is live) *)
  mutable mbufs : Session.mark_buf array;
      (* per-depth pooled session marks for the undo engine, same
         reuse discipline; distinct buffers in slots 0..mbufs_n-1 *)
  mutable mbufs_n : int;
  n_procs : int;
  wl_class : int array;
      (* wl_class.(p) = least q with workloads.(q) = workloads.(p):
         symmetry candidates must run statically identical programs *)
  sym_memo : bool;
      (* canonical memo keys + orbit-weighted config counting active:
         reduction is [`Dpor_sym_memo], the instance declared
         [id_symmetric], the workloads are uniform and non-empty (so
         ranks and creation uids relabel cleanly), pruning is on, and
         N <= 20 (orbit weights must not overflow).  When any gate
         fails the mode degrades to exactly [`Dpor_sym]. *)
  (* per-node scratch for the canonical process order (sym_memo only;
     [||] otherwise).  All length n_procs: *)
  c_evr : int array;  (* first-occurrence event rank, max_int if none *)
  c_flags : int array;  (* (stepped << 1) lor slept *)
  c_key : int array;  (* pi-invariant per-process signature *)
  c_ord : int array;  (* sort scratch: canonical position -> pid *)
  c_inv : int array;  (* rank -> pid (the chosen permutation) *)
  c_rank : int array;  (* pid -> rank *)
  c_pacc : int array;  (* per-process private-cell digest accumulator *)
  c_slot : int array;  (* per-process private-slot counter *)
  (* per-process digest caches keyed on {!Session.mut_stamp}: a process
     whose stamp is unchanged since the cached entry has an identical
     logged state (stamps are restored exactly by rewinds and drawn
     from a never-rewound counter), so its [proc_sym_sig] walk can be
     skipped.  Stamps are only meaningful within one session, so the
     caches are flushed whenever the session identity changes — the
     undo engines keep one session for the whole search and hit almost
     always; the replay engine makes a session per node and never hits.
     [-1] marks an empty slot (real stamps are >= 0). *)
  mutable c_sess : Session.t option;
  c_self_stamp : int array;
  c_self_val : int array;  (* self-relabeled signature, for [canon_order] *)
  c_perm_stamp : int array;
  c_perm_sig : int array;  (* hash of the permutation the entry was cut for *)
  c_perm_val : int array;  (* rank-relabeled digest, for [canon_key] *)
}

let mk_state ?(sym_memo = false) cfg mk workloads =
  let n_procs = Array.length workloads in
  let scr () = if sym_memo then Array.make n_procs 0 else [||] in
  let scr_empty () = if sym_memo then Array.make n_procs (-1) else [||] in
  {
    cfg;
    mk;
    workloads;
    configs =
      Config_set.create
        ~mode:(if cfg.exact_configs then Config_set.Exact else Config_set.Fingerprint)
        ?canonical:(if sym_memo then Some n_procs else None)
        ();
    visited = Memo_tbl.create 65536;
    depth_hist = Array.make 64 0;
    journal_hist = Array.make 64 0;
    frontier_hist = Array.make 64 0;
    lin = None;
    leaf_checks = 0;
    lin_pushed = 0;
    lin_total = 0;
    lin_elapsed = 0.;
    executions = 0;
    truncated = 0;
    nodes = 0;
    violations = [];
    n_violations = 0;
    dedup_hits = 0;
    nodes_saved = 0;
    rewound = 0;
    intern_hits = 0;
    intern_misses = 0;
    sleep_skips = 0;
    sym_skips = 0;
    source_skips = 0;
    capped = false;
    alloc = Dtc_util.Alloc_stats.zero;
    rbufs = [||];
    mbufs = [||];
    mbufs_n = 0;
    n_procs;
    wl_class =
      Array.init n_procs (fun p ->
          let rec first q =
            if workloads.(q) = workloads.(p) then q else first (q + 1)
          in
          first 0);
    sym_memo;
    c_evr = scr ();
    c_flags = scr ();
    c_key = scr ();
    c_ord = scr ();
    c_inv = scr ();
    c_rank = scr ();
    c_pacc = scr ();
    c_slot = scr ();
    c_sess = None;
    c_self_stamp = scr_empty ();
    c_self_val = scr ();
    c_perm_stamp = scr_empty ();
    c_perm_sig = scr ();
    c_perm_val = scr ();
  }


(* log2-bucketed histograms fit in 64 slots by construction *)
let bump_fixed (h : int array) b = h.(b) <- h.(b) + 1

let bump_depth st d =
  let h = st.depth_hist in
  if d < Array.length h then h.(d) <- h.(d) + 1
  else begin
    let b = Array.make (max (d + 1) (2 * Array.length h)) 0 in
    Array.blit h 0 b 0 (Array.length h);
    b.(d) <- 1;
    st.depth_hist <- b
  end

let get_rbuf st depth =
  if depth >= Array.length st.rbufs then begin
    let b = Array.make (max (depth + 1) ((2 * Array.length st.rbufs) + 8)) [||] in
    Array.blit st.rbufs 0 b 0 (Array.length st.rbufs);
    st.rbufs <- b
  end;
  if Array.length st.rbufs.(depth) < st.n_procs then
    st.rbufs.(depth) <- Array.make st.n_procs 0;
  st.rbufs.(depth)

let get_mbuf st session depth =
  if depth >= Array.length st.mbufs then begin
    let b =
      Array.make
        (max (depth + 1) ((2 * Array.length st.mbufs) + 8))
        (Session.make_mark_buf session)
    in
    Array.blit st.mbufs 0 b 0 st.mbufs_n;
    st.mbufs <- b
  end;
  (* slots past [mbufs_n] alias the growth filler: materialise distinct
     buffers up to [depth] before handing one out *)
  while st.mbufs_n <= depth do
    st.mbufs.(st.mbufs_n) <- Session.make_mark_buf session;
    st.mbufs_n <- st.mbufs_n + 1
  done;
  st.mbufs.(depth)

(* ascending-index scan membership over the filled prefix of a runnable
   buffer — the allocation-free [List.mem] of the hot loop *)
let buf_mem buf n x =
  let rec go i = i < n && (buf.(i) = x || go (i + 1)) in
  go 0

(* ---- symmetry-canonical memo keys -----------------------------------

   Under [sym_memo] a node whose path spent no crash budget is keyed on
   a digest constant on its whole S_N orbit, so π-images of an explored
   subtree hit the memo instead of being re-explored.  The digest is
   built by choosing ONE canonical process order per node and
   relabeling everything through it:

   1. rank processes by (post-creation first-occurrence event rank,
      stepped-on-path bit, slept bit, π-invariant per-process
      signature, pid).  Every component except the final pid tiebreak
      is assigned identically by two π-related executions, so related
      nodes choose matching orders; a tie broken by pid either involves
      genuinely interchangeable processes (any order digests equally)
      or hash-collided ones (the digests then differ — a missed dedup,
      never a false merge).
   2. fold, in rank order, each process's full logged interaction
      signature ({!Session.proc_sym_sig}) and private-cell block, with
      pid-indexed vectors and creation uids relabeled through the rank
      ({!Sym.hash_perm}); shared cells fold positionally; the event
      stream folds via the session's incrementally-maintained
      {!Session.sym_events_sig}.
   3. fold the scheduler state — rank of the running process, budgets,
      rank-relabeled sleep and stepped masks.  The delay-bounded switch
      accounting is itself permutation-equivariant (a step's cost
      depends only on whether its process IS the running one and
      whether the running one is still runnable — never on pid values),
      and every budget-relevant quantity is in the key, which is what
      makes transferring a memo summary across the orbit structurally
      sound rather than empirically pinned.

   Nodes on crashed paths fall back to the raw key (recovery event
   batches would break the positional correspondence), and the two key
   families are tag-separated so they can share the memo table. *)

let canon_order st session ~smask ~stepped =
  let n = st.n_procs in
  let evr = st.c_evr
  and fl = st.c_flags
  and ky = st.c_key
  and ord = st.c_ord
  and inv = st.c_inv
  and rank = st.c_rank in
  (* stamps only identify states within one session: flush the digest
     caches if this state object last served a different session *)
  (match st.c_sess with
  | Some s when s == session -> ()
  | _ ->
      st.c_sess <- Some session;
      Array.fill st.c_self_stamp 0 n (-1);
      Array.fill st.c_perm_stamp 0 n (-1));
  for p = 0 to n - 1 do
    let r = Session.sym_rank session p in
    evr.(p) <- (if r < 0 then max_int else r);
    fl.(p) <-
      (if stepped land (1 lsl p) <> 0 then 2 else 0)
      lor (if smask land (1 lsl p) <> 0 then 1 else 0);
    (let stamp = Session.mut_stamp session p in
     if st.c_self_stamp.(p) = stamp then ky.(p) <- st.c_self_val.(p)
     else begin
       let v =
         Session.proc_sym_sig session p
           ~hash_value:(fun v -> Sym.self_key ~n ~pid:p ~seed:5 v)
           ~hash_uid:(fun u -> if u < n then -1 else u)
       in
       st.c_self_stamp.(p) <- stamp;
       st.c_self_val.(p) <- v;
       ky.(p) <- v
     end);
    ord.(p) <- p
  done;
  (* lexicographic (evr, flags, key, pid) insertion sort — n is tiny *)
  let lt p q =
    evr.(p) < evr.(q)
    || (evr.(p) = evr.(q)
       && (fl.(p) < fl.(q)
          || (fl.(p) = fl.(q)
             && (ky.(p) < ky.(q) || (ky.(p) = ky.(q) && p < q)))))
  in
  for i = 1 to n - 1 do
    let x = ord.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && lt x ord.(!j) do
      ord.(!j + 1) <- ord.(!j);
      decr j
    done;
    ord.(!j + 1) <- x
  done;
  for r = 0 to n - 1 do
    inv.(r) <- ord.(r);
    rank.(ord.(r)) <- r
  done

let canon_mem_digest st mem =
  let n = st.n_procs in
  let inv = st.c_inv in
  let pacc = st.c_pacc and slot = st.c_slot in
  Array.fill pacc 0 n 0x9e37;
  Array.fill slot 0 n 0;
  let glob = ref 0x51f0 in
  let shared_ix = ref 0 in
  for i = 0 to Mem.n_locs mem - 1 do
    let loc = Mem.loc_by_id mem i in
    let v = Mem.read mem loc in
    match loc.Loc.kind with
    | Loc.Shared ->
        glob :=
          Value.mix !glob
            (Value.mix !shared_ix (Sym.hash_perm ~n ~inv ~seed:3 v));
        incr shared_ix
    | Loc.Private p when p < n ->
        let s = slot.(p) in
        slot.(p) <- s + 1;
        pacc.(p) <-
          Value.mix pacc.(p) (Value.mix s (Sym.hash_perm ~n ~inv ~seed:3 v))
    | Loc.Private _ -> ()
  done;
  let acc = ref !glob in
  for r = 0 to n - 1 do
    acc := Value.mix !acc pacc.(inv.(r))
  done;
  !acc

let canon_key st session machine ~cur ~switches ~crashes ~sleep ~stepped =
  let n = st.n_procs in
  canon_order st session ~smask:(sleep_mask sleep) ~stepped;
  let inv = st.c_inv and rank = st.c_rank in
  let hv v = Sym.hash_perm ~n ~inv ~seed:7 v in
  let hu u = if u < n then rank.(u) else u in
  let acc = ref 0x5ca90 in
  acc := Value.mix !acc (Session.sym_events_sig session);
  acc := Value.mix !acc (Session.uids session);
  acc := Value.mix !acc (Session.steps session);
  (* the rank-relabeled digest of a process depends on its own log AND
     on the whole permutation (relabeling runs through [inv]/[rank]),
     so cache entries are keyed on (stamp, permutation hash).  A hash
     collision here merely reuses a digest cut for another permutation
     — the same 63-bit collision class the memo key already lives in. *)
  let psig = ref 0x7fb5 in
  for r = 0 to n - 1 do
    psig := Value.mix !psig inv.(r)
  done;
  let psig = !psig in
  for r = 0 to n - 1 do
    let pid = inv.(r) in
    let stamp = Session.mut_stamp session pid in
    let d =
      if st.c_perm_stamp.(pid) = stamp && st.c_perm_sig.(pid) = psig then
        st.c_perm_val.(pid)
      else begin
        let d = Session.proc_sym_sig session pid ~hash_value:hv ~hash_uid:hu in
        st.c_perm_stamp.(pid) <- stamp;
        st.c_perm_sig.(pid) <- psig;
        st.c_perm_val.(pid) <- d;
        d
      end
    in
    acc := Value.mix !acc d
  done;
  acc := Value.mix !acc (canon_mem_digest st (Runtime.Machine.mem machine));
  let c = match cur with None -> -1 | Some pid -> rank.(pid) in
  let rsleep =
    List.fold_left (fun m (pid, _) -> m lor (1 lsl rank.(pid))) 0 sleep
  in
  let rstepped = ref 0 in
  for p = 0 to n - 1 do
    if stepped land (1 lsl p) <> 0 then rstepped := !rstepped lor (1 lsl rank.(p))
  done;
  let m = Value.mix in
  m (m (m (m (m !acc c) switches) crashes) rsleep) !rstepped land max_int

(* [decisions] is kept newest-first during the DFS; replay applies it
   oldest-first. *)
let replay st decisions =
  let machine, inst = st.mk () in
  (* sym-memo keys read the per-process interaction logs, which only
     undo-mode sessions keep; the replay engine's behavior is otherwise
     untouched by the journaling *)
  let session =
    Session.create ~policy:st.cfg.policy ~undo:st.sym_memo machine inst
      ~workloads:st.workloads
  in
  List.iter
    (function
      | Step pid -> Session.step session pid
      | Crash -> Session.crash_wipe session (config_wipe st.cfg))
    (List.rev decisions);
  (machine, inst, session)

let log2_bucket n =
  let rec go acc n = if n = 0 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

(* ---- incremental-checker plumbing ----------------------------------

   Under [lin_engine = `Incremental] the state carries ONE
   [Lin_check.Session] whose history mirrors the decision stack: on
   entering a DFS node whose parent had [hlen] events, the checker is
   marked and fed the [event_count - hlen] events this node's decision
   added (the session spine is newest-first, so the delta is its
   prefix); on leaving, it is rewound.  A leaf verdict then reads the
   already-maintained frontier instead of re-running Wing–Gong over the
   whole history.  All checker-attributable wall time is accumulated in
   [lin_elapsed] so engines can be compared on checker work alone. *)

let take_rev k l =
  let rec go k l acc =
    if k = 0 then acc
    else match l with [] -> acc | x :: tl -> go (k - 1) tl (x :: acc)
  in
  go k l []

let lin_enter st ~inst ~session ~hlen =
  match st.cfg.lin_engine with
  | `Batch -> None
  | `Incremental ->
      let ls =
        match st.lin with
        | Some ls -> ls
        | None ->
            let ls = Lin_check.Session.create inst.Obj_inst.spec in
            st.lin <- Some ls;
            ls
      in
      let t0 = Unix.gettimeofday () in
      let m = Lin_check.Session.mark ls in
      let here = Session.event_count session in
      List.iter
        (Lin_check.Session.push_event ls)
        (take_rev (here - hlen) (Session.events_rev session));
      st.lin_pushed <- st.lin_pushed + (here - hlen);
      st.lin_elapsed <- st.lin_elapsed +. (Unix.gettimeofday () -. t0);
      bump_fixed st.frontier_hist
        (log2_bucket (Lin_check.Session.frontier_size ls));
      Some (ls, m)

let lin_leave st = function
  | None -> ()
  | Some (ls, m) ->
      let t0 = Unix.gettimeofday () in
      Lin_check.Session.rewind ls m;
      st.lin_elapsed <- st.lin_elapsed +. (Unix.gettimeofday () -. t0)

(* Leaf verdict: driver anomalies short-circuit; otherwise the synced
   incremental session answers in O(frontier), falling back to a
   whole-history check when no session is synced (parallel roots). *)
let leaf_verdict st ~inst ~session =
  match Session.anomalies session with
  | a :: _ -> Lin_check.Violation ("driver anomaly: " ^ a)
  | [] ->
      st.leaf_checks <- st.leaf_checks + 1;
      st.lin_total <- st.lin_total + Session.event_count session;
      let t0 = Unix.gettimeofday () in
      let v =
        match st.lin with
        | Some ls -> Lin_check.Session.verdict ls
        | None ->
            st.lin_pushed <- st.lin_pushed + Session.event_count session;
            Lin_check.check_with st.cfg.lin_engine inst.Obj_inst.spec
              (Session.history session)
      in
      st.lin_elapsed <- st.lin_elapsed +. (Unix.gettimeofday () -. t0);
      v

(* [decisions] arrives newest-first (the DFS stack as-is); it is only
   materialised oldest-first when a violation sample is actually kept,
   so the common all-green leaf allocates no reversed copy. *)
let record_execution st ~decisions ~inst ~session ~truncated =
  if truncated then st.truncated <- st.truncated + 1
  else st.executions <- st.executions + 1;
  match leaf_verdict st ~inst ~session with
  | Lin_check.Ok_linearizable _ -> ()
  | Lin_check.Violation msg ->
      st.n_violations <- st.n_violations + 1;
      if List.length st.violations < st.cfg.max_violations then
        st.violations <-
          { decisions = List.rev decisions;
            history = Session.history session;
            msg }
          :: st.violations

(* DFS over decision sequences: [cur] is the running process (switching
   away from it costs budget; after a crash any process is free),
   [switches]/[crashes] are budget spent so far, [depth] the length of
   [decisions].  [sleep] is the DPOR sleep set ((pid, pending request)
   pairs; always [] when the reduction is off) and [stepped] the mask of
   pids that have taken a step anywhere on the path (only consulted by
   the symmetry reduction).  Returns the node's entry event count so the
   parent can tell whether the decision that reached it was silent. *)
(* [hlen] is the parent node's history length: what the incremental
   checker session has already been fed when this node is entered. *)
let rec dfs st decisions ~depth ~hlen ~sleep ~stepped cur switches crashes =
  if st.cfg.node_budget > 0 && st.nodes >= st.cfg.node_budget then
    raise Node_cap;
  st.nodes <- st.nodes + 1;
  bump_depth st depth;
  let machine, inst, session = replay st decisions in
  ignore (Config_set.add_live st.configs (Runtime.Machine.mem machine) : bool);
  let here = Session.event_count session in
  let red = st.cfg.reduction in
  let sym_active =
    match red with
    | `Dpor_sym | `Dpor_sym_memo -> inst.Obj_inst.id_symmetric
    | `None | `Dpor -> false
  in
  let key =
    if st.cfg.prune then
      Some
        (if st.sym_memo && crashes = 0 then
           canon_key st session machine ~cur ~switches ~crashes ~sleep ~stepped
         else begin
           let fa, fb =
             Mem.live_fingerprint_full (Runtime.Machine.mem machine)
           in
           let c = match cur with None -> -1 | Some pid -> pid in
           mk_key ~fa ~fb ~dg:(Session.state_digest session) ~c ~switches
             ~crashes ~smask:(sleep_mask sleep)
             ~stepped:(if sym_active then stepped else 0)
         end)
    else None
  in
  let mslot =
    match key with Some k -> Memo_tbl.find st.visited k | None -> -1
  in
  (if mslot >= 0 then begin
     let v = st.visited in
     st.dedup_hits <- st.dedup_hits + 1;
     st.nodes_saved <- st.nodes_saved + Memo_tbl.nodes_at v mslot;
     st.executions <- st.executions + Memo_tbl.execs_at v mslot;
     st.truncated <- st.truncated + Memo_tbl.trunc_at v mslot;
     st.n_violations <- st.n_violations + Memo_tbl.viols_at v mslot
   end
   else begin
      let nodes0 = st.nodes
      and saved0 = st.nodes_saved
      and execs0 = st.executions
      and trunc0 = st.truncated
      and viols0 = st.n_violations in
      let lm = lin_enter st ~inst ~session ~hlen in
      let runnable = Session.runnable session in
      if runnable = [] then
        record_execution st ~decisions ~inst ~session ~truncated:false
      else if Session.steps session >= st.cfg.max_steps then
        record_execution st ~decisions ~inst ~session ~truncated:true
      else begin
        (* crash move: dependent with everything, so it is never slept
           and its child starts with an empty sleep set *)
        if crashes < st.cfg.crash_budget then
          ignore
            (dfs st (Crash :: decisions) ~depth:(depth + 1) ~hlen:here
               ~sleep:[] ~stepped None switches (crashes + 1)
              : int);
        (* step moves *)
        let sleep = ref sleep in
        let explored = ref 0 (* pid mask; reduction is off past 62 procs *) in
        let source_ok =
          source_eligible ~reduction:red ~crash_budget:st.cfg.crash_budget ~cur
            ~crashes session
        in
        let source_stop = ref false in
        List.iter
          (fun pid ->
            (* only a preemption costs budget: switching away from a process
               that finished (or crashed) is free *)
            let cost =
              match cur with
              | None -> 0
              | Some c -> if c = pid || not (List.mem c runnable) then 0 else 1
            in
            if !source_stop then begin
              if switches + cost <= st.cfg.switch_budget then
                st.source_skips <- st.source_skips + 1
            end
            else if switches + cost <= st.cfg.switch_budget then begin
              if red <> `None && List.mem_assoc pid !sleep then
                st.sleep_skips <- st.sleep_skips + 1
              else if
                sym_active
                && stepped land (1 lsl pid) = 0
                && List.exists
                     (fun q ->
                       q < pid
                       && stepped land (1 lsl q) = 0
                       && st.wl_class.(q) = st.wl_class.(pid)
                       && !explored land (1 lsl q) <> 0
                       && Sym.swap_invariant ~n:st.n_procs
                            (Runtime.Machine.mem machine) pid q)
                     runnable
              then st.sym_skips <- st.sym_skips + 1
              else begin
                let req =
                  if red <> `None then Session.pending_request session pid
                  else None
                in
                let child_sleep =
                  match req with
                  | Some r -> List.filter (fun (_, r') -> independent r r') !sleep
                  | None -> []
                in
                let child_here =
                  dfs st (Step pid :: decisions) ~depth:(depth + 1) ~hlen:here
                    ~sleep:child_sleep
                    ~stepped:(stepped lor (1 lsl pid))
                    (Some pid) (switches + cost) crashes
                in
                explored := !explored lor (1 lsl pid);
                (* source set: the running process's local silent step is a
                   sufficient singleton — siblings are covered by the child
                   subtree (see the source-set comment above) *)
                if source_ok && cur = Some pid && child_here = here then
                  source_stop := true;
                (match req with
                | Some r when child_here = here && sleepable r ->
                    sleep := (pid, r) :: !sleep
                | _ -> ())
              end
            end)
          runnable
      end;
      lin_leave st lm;
      match key with
      | Some k ->
          Memo_tbl.set st.visited k
            ~nodes:(st.nodes - nodes0 + (st.nodes_saved - saved0))
            ~execs:(st.executions - execs0)
            ~trunc:(st.truncated - trunc0)
            ~viols:(st.n_violations - viols0)
      | None -> ()
   end);
  here

(* ---- undo engine ----------------------------------------------------

   Same node structure, child generation and memoisation as [dfs], but
   over ONE machine/session pair: each child is explored by
   Session.mark → apply the decision → recurse → Session.rewind, so a
   node costs O(work in its own subtree edge) instead of a full replay
   of the decision prefix.  Because decisions are applied to a
   configuration that is (by Session.rewind's contract) byte-identical
   to what a fresh replay would produce, every counter, digest, memo
   key and violation sample comes out identical to the replay engine's. *)

let rec dfs_undo st session machine inst decisions ~depth ~hlen ~sleep ~stepped
    cur switches crashes =
  if st.cfg.node_budget > 0 && st.nodes >= st.cfg.node_budget then
    raise Node_cap;
  st.nodes <- st.nodes + 1;
  bump_depth st depth;
  bump_fixed st.journal_hist
    (log2_bucket (Mem.journal_depth (Runtime.Machine.mem machine)));
  ignore (Config_set.add_live st.configs (Runtime.Machine.mem machine) : bool);
  let red = st.cfg.reduction in
  let sym_active =
    match red with
    | `Dpor_sym | `Dpor_sym_memo -> inst.Obj_inst.id_symmetric
    | `None | `Dpor -> false
  in
  let key =
    if st.cfg.prune then
      Some
        (if st.sym_memo && crashes = 0 then
           canon_key st session machine ~cur ~switches ~crashes ~sleep ~stepped
         else begin
           let m = Runtime.Machine.mem machine in
           let c = match cur with None -> -1 | Some pid -> pid in
           mk_key ~fa:(Mem.live_full_a m) ~fb:(Mem.live_full_b m)
             ~dg:(Session.state_digest session) ~c ~switches ~crashes
             ~smask:(sleep_mask sleep)
             ~stepped:(if sym_active then stepped else 0)
         end)
    else None
  in
  let mslot =
    match key with Some k -> Memo_tbl.find st.visited k | None -> -1
  in
  if mslot >= 0 then begin
    let v = st.visited in
    st.dedup_hits <- st.dedup_hits + 1;
    st.nodes_saved <- st.nodes_saved + Memo_tbl.nodes_at v mslot;
    st.executions <- st.executions + Memo_tbl.execs_at v mslot;
    st.truncated <- st.truncated + Memo_tbl.trunc_at v mslot;
    st.n_violations <- st.n_violations + Memo_tbl.viols_at v mslot
  end
  else begin
      let nodes0 = st.nodes
      and saved0 = st.nodes_saved
      and execs0 = st.executions
      and trunc0 = st.truncated
      and viols0 = st.n_violations in
      let here = Session.event_count session in
      let lm = lin_enter st ~inst ~session ~hlen in
      let rbuf = get_rbuf st depth in
      let n_run = Session.runnable_into session rbuf in
      if n_run = 0 then
        record_execution st ~decisions ~inst ~session ~truncated:false
      else if Session.steps session >= st.cfg.max_steps then
        record_execution st ~decisions ~inst ~session ~truncated:true
      else begin
        (* crash move: dependent with everything, so it is never slept
           and its child starts with an empty sleep set *)
        if crashes < st.cfg.crash_budget then begin
          let mb = get_mbuf st session depth in
          Session.mark_into session mb;
          Session.crash_wipe session (config_wipe st.cfg);
          dfs_undo st session machine inst (Crash :: decisions)
            ~depth:(depth + 1) ~hlen:here ~sleep:[] ~stepped None switches
            (crashes + 1);
          Session.rewind_buf session mb
        end;
        (* step moves *)
        let sleep = ref sleep in
        let explored = ref 0 (* pid mask; reduction is off past 62 procs *) in
        let source_ok =
          source_eligible ~reduction:red ~crash_budget:st.cfg.crash_budget ~cur
            ~crashes session
        in
        let source_stop = ref false in
        for ri = 0 to n_run - 1 do
          let pid = rbuf.(ri) in
          (* only a preemption costs budget: switching away from a process
             that finished (or crashed) is free *)
          let cost =
            match cur with
            | None -> 0
            | Some c -> if c = pid || not (buf_mem rbuf n_run c) then 0 else 1
          in
          if !source_stop then begin
            if switches + cost <= st.cfg.switch_budget then
              st.source_skips <- st.source_skips + 1
          end
          else if switches + cost <= st.cfg.switch_budget then begin
            if red <> `None && List.mem_assoc pid !sleep then
              st.sleep_skips <- st.sleep_skips + 1
            else if
              sym_active
              && stepped land (1 lsl pid) = 0
              && (let rec any q =
                    q < n_run
                    && ((let j = rbuf.(q) in
                         j < pid
                         && stepped land (1 lsl j) = 0
                         && st.wl_class.(j) = st.wl_class.(pid)
                         && !explored land (1 lsl j) <> 0
                         && Sym.swap_invariant ~n:st.n_procs
                              (Runtime.Machine.mem machine) pid j)
                       || any (q + 1))
                  in
                  any 0)
            then st.sym_skips <- st.sym_skips + 1
            else begin
              let req =
                if red <> `None then Session.pending_request session pid
                else None
              in
              let child_sleep =
                match req with
                | Some r -> List.filter (fun (_, r') -> independent r r') !sleep
                | None -> []
              in
              let mb = get_mbuf st session depth in
              Session.mark_into session mb;
              Session.step session pid;
              let silent = Session.event_count session = here in
              dfs_undo st session machine inst (Step pid :: decisions)
                ~depth:(depth + 1) ~hlen:here ~sleep:child_sleep
                ~stepped:(stepped lor (1 lsl pid))
                (Some pid) (switches + cost) crashes;
              Session.rewind_buf session mb;
              explored := !explored lor (1 lsl pid);
              (* source set: the running process's local silent step is a
                 sufficient singleton — siblings are covered by the child
                 subtree (see the source-set comment above) *)
              if source_ok && cur = Some pid && silent then source_stop := true;
              (match req with
              | Some r when silent && sleepable r ->
                  sleep := (pid, r) :: !sleep
              | _ -> ())
            end
          end
        done
      end;
      lin_leave st lm;
      match key with
      | Some k ->
          Memo_tbl.set st.visited k
            ~nodes:(st.nodes - nodes0 + (st.nodes_saved - saved0))
            ~execs:(st.executions - execs0)
            ~trunc:(st.truncated - trunc0)
            ~viols:(st.n_violations - viols0)
      | None -> ()
  end

(* Merge worker states (worker order, so results are deterministic for a
   fixed [domains]) into the final outcome. *)
let finish ~t0 ~domains_used sts =
  let base = List.hd sts in
  let merge_fixed (dst : int array) (src : int array) =
    for i = 0 to Array.length src - 1 do
      dst.(i) <- dst.(i) + src.(i)
    done
  in
  List.iter
    (fun st ->
      Config_set.merge_into ~dst:base.configs ~src:st.configs;
      (if Array.length st.depth_hist > Array.length base.depth_hist then begin
         let b = Array.make (Array.length st.depth_hist) 0 in
         Array.blit base.depth_hist 0 b 0 (Array.length base.depth_hist);
         base.depth_hist <- b
       end);
      merge_fixed base.depth_hist st.depth_hist;
      merge_fixed base.journal_hist st.journal_hist;
      merge_fixed base.frontier_hist st.frontier_hist;
      base.alloc <- Dtc_util.Alloc_stats.add base.alloc st.alloc)
    (List.tl sts);
  let sum f = List.fold_left (fun acc st -> acc + f st) 0 sts in
  let sumf f = List.fold_left (fun acc st -> acc +. f st) 0. sts in
  let nodes = sum (fun st -> st.nodes) in
  let leaf_checks = sum (fun st -> st.leaf_checks) in
  let lin_pushed = sum (fun st -> st.lin_pushed) in
  let lin_total = sum (fun st -> st.lin_total) in
  let lin_elapsed = sumf (fun st -> st.lin_elapsed) in
  let rewound = sum (fun st -> st.rewound) in
  let intern_hits = sum (fun st -> st.intern_hits) in
  let intern_misses = sum (fun st -> st.intern_misses) in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let violations =
    let all = List.concat_map (fun st -> List.rev st.violations) sts in
    List.filteri (fun i _ -> i < base.cfg.max_violations) all
  in
  (* same (bucket, count) ascending assoc shape the Hashtbl version
     produced: zero buckets are skipped *)
  let sorted_hist (h : int array) =
    let acc = ref [] in
    for i = Array.length h - 1 downto 0 do
      if h.(i) <> 0 then acc := (i, h.(i)) :: !acc
    done;
    !acc
  in
  let alloc = base.alloc in
  {
    executions = sum (fun st -> st.executions);
    truncated = sum (fun st -> st.truncated);
    nodes;
    violations;
    total_violations = sum (fun st -> st.n_violations);
    distinct_shared_configs = Config_set.cardinal base.configs;
    capped = List.exists (fun st -> st.capped) sts;
    metrics =
      {
        engine = engine_name base.cfg.engine;
        dedup_hits = sum (fun st -> st.dedup_hits);
        nodes_saved = sum (fun st -> st.nodes_saved);
        peak_visited = sum (fun st -> Memo_tbl.length st.visited);
        fingerprint_collisions = Config_set.collisions base.configs;
        elapsed_s;
        nodes_per_sec = float_of_int nodes /. Float.max elapsed_s 1e-9;
        replay_depth_hist = sorted_hist base.depth_hist;
        domains_used;
        rewound_cells = rewound;
        rewound_cells_per_sec = float_of_int rewound /. Float.max elapsed_s 1e-9;
        journal_depth_hist = sorted_hist base.journal_hist;
        intern_hits;
        intern_misses;
        intern_hit_rate =
          (let total = intern_hits + intern_misses in
           if total = 0 then 0.
           else float_of_int intern_hits /. float_of_int total);
        lin_engine = Lin_check.engine_name base.cfg.lin_engine;
        leaf_checks;
        lin_elapsed_s = lin_elapsed;
        lin_checks_per_sec =
          float_of_int leaf_checks /. Float.max lin_elapsed 1e-9;
        lin_events_pushed = lin_pushed;
        lin_events_total = lin_total;
        lin_reuse_rate =
          (if lin_total = 0 then 0.
           else 1. -. (float_of_int lin_pushed /. float_of_int lin_total));
        frontier_hist = sorted_hist base.frontier_hist;
        reduction = reduction_name base.cfg.reduction;
        sleep_skips = sum (fun st -> st.sleep_skips);
        sym_skips = sum (fun st -> st.sym_skips);
        source_skips = sum (fun st -> st.source_skips);
        canonical_orbits =
          (match Config_set.canonical base.configs with
          | Some _ -> Config_set.orbits base.configs
          | None -> 0);
        minor_words = alloc.Dtc_util.Alloc_stats.d_minor_words;
        promoted_words = alloc.Dtc_util.Alloc_stats.d_promoted_words;
        minor_collections = alloc.Dtc_util.Alloc_stats.d_minor_collections;
        bytes_per_node = Dtc_util.Alloc_stats.bytes_per alloc nodes;
      };
  }

(* Intern-table traffic attributable to this state's work: delta in the
   calling domain's counters around [f ()]. *)
let with_intern_stats st f =
  let h0, m0 = Value.intern_stats () in
  let r = f () in
  let h1, m1 = Value.intern_stats () in
  st.intern_hits <- st.intern_hits + (h1 - h0);
  st.intern_misses <- st.intern_misses + (m1 - m0);
  r

(* Attribute the calling domain's allocation over [f ()] to [st]. *)
let with_alloc_stats st f =
  let r, d = Dtc_util.Alloc_stats.measure f in
  st.alloc <- Dtc_util.Alloc_stats.add st.alloc d;
  r

let explore_sequential ~t0 ~mk ~workloads ~sym_memo cfg =
  let st = mk_state ~sym_memo cfg mk workloads in
  Dtc_util.Gc_tune.with_applied cfg.gc (fun () ->
      with_alloc_stats st (fun () ->
          with_intern_stats st (fun () ->
              try
                ignore
                  (dfs st [] ~depth:0 ~hlen:0 ~sleep:[] ~stepped:0 None 0 0
                    : int)
              with Node_cap -> st.capped <- true)));
  finish ~t0 ~domains_used:1 [ st ]

let explore_undo_sequential ~t0 ~mk ~workloads ~sym_memo cfg =
  let st = mk_state ~sym_memo cfg mk workloads in
  Dtc_util.Gc_tune.with_applied cfg.gc (fun () ->
      with_alloc_stats st (fun () ->
          with_intern_stats st (fun () ->
              let machine, inst = mk () in
              let session =
                Session.create ~policy:cfg.policy ~undo:true machine inst
                  ~workloads
              in
              (try
                 dfs_undo st session machine inst [] ~depth:0 ~hlen:0 ~sleep:[]
                   ~stepped:0 None 0 0
               with Node_cap -> st.capped <- true);
              st.rewound <- Mem.rewound_cells (Runtime.Machine.mem machine))));
  finish ~t0 ~domains_used:1 [ st ]

(* Parallel exploration: replay the root once to learn the top-level
   decision frontier, deal the frontier round-robin to worker domains,
   and let each worker run the ordinary replay-based DFS on its share.
   Replay shares no mutable state across workers — every node rebuilds
   its machine through [mk] — so the only cross-domain traffic is the
   final merge.  Memo tables are per-worker; because cached summaries
   are exact, missing cross-worker dedup costs only replays, never
   accuracy. *)
(* Root-level reduction for the parallel explorers: mirror [dfs]'s own
   sibling walk when generating the top-level task list.  Symmetric
   never-stepped siblings are skipped outright (counted in the root
   state's [sym_skips]), and each step task carries the sibling sleep
   set an in-line DFS would have handed its child.  Sleeping needs each
   earlier sibling's silence, which an in-line DFS only learns after
   taking the step — here [probe_silent] answers it at dispatch time
   (one extra machine step per root child; the probes are not counted
   as explored nodes).  [explored]/[sleep] accumulate left-to-right
   exactly as in [dfs], so the reduction decisions match the
   sequential engines' root node decision for decision. *)
let root_step_tasks root (cfg : config) inst mem session runnable ~probe_silent
    =
  let red = cfg.reduction in
  let sym_active =
    match red with
    | `Dpor_sym | `Dpor_sym_memo -> inst.Obj_inst.id_symmetric
    | `None | `Dpor -> false
  in
  let sleep = ref [] in
  let explored = ref 0 in
  List.filter_map
    (fun pid ->
      if
        sym_active
        && List.exists
             (fun q ->
               q < pid
               && root.wl_class.(q) = root.wl_class.(pid)
               && !explored land (1 lsl q) <> 0
               && Sym.swap_invariant ~n:root.n_procs mem pid q)
             runnable
      then begin
        root.sym_skips <- root.sym_skips + 1;
        None
      end
      else begin
        let req =
          if red <> `None then Session.pending_request session pid else None
        in
        let task_sleep =
          match req with
          | Some r -> List.filter (fun (_, r') -> independent r r') !sleep
          | None -> []
        in
        explored := !explored lor (1 lsl pid);
        (match req with
        | Some r when sleepable r && probe_silent pid ->
            sleep := (pid, r) :: !sleep
        | _ -> ());
        Some (Step pid, Some pid, 0, 0, task_sleep)
      end)
    runnable

let explore_parallel ~t0 ~mk ~workloads ~sym_memo cfg ~domains =
  let root = mk_state ~sym_memo cfg mk workloads in
  root.nodes <- 1;
  bump_depth root 0;
  let machine, inst, session = replay root [] in
  ignore (Config_set.add_live root.configs (Runtime.Machine.mem machine) : bool);
  let runnable = Session.runnable session in
  if runnable = [] then begin
    record_execution root ~decisions:[] ~inst ~session ~truncated:false;
    finish ~t0 ~domains_used:1 [ root ]
  end
  else if Session.steps session >= cfg.max_steps then begin
    record_execution root ~decisions:[] ~inst ~session ~truncated:true;
    finish ~t0 ~domains_used:1 [ root ]
  end
  else begin
    (* mirror [dfs]'s child generation at the root: cur = None, so every
       step child is free and a crash child spends one crash budget *)
    let here0 = Session.event_count session in
    let probe_silent pid =
      let _, _, s' = replay root [ Step pid ] in
      Session.event_count s' = here0
    in
    let tasks =
      (if cfg.crash_budget > 0 then [ (Crash, None, 0, 1, []) ] else [])
      @ root_step_tasks root cfg inst
          (Runtime.Machine.mem machine)
          session runnable ~probe_silent
    in
    let n_workers = min domains (List.length tasks) in
    let chunks = Array.make n_workers [] in
    List.iteri
      (fun i task -> chunks.(i mod n_workers) <- task :: chunks.(i mod n_workers))
      tasks;
    let worker idx () =
      (* worker domains are fresh: GC tuning applies to this domain only
         and dies with it *)
      Dtc_util.Gc_tune.apply cfg.gc;
      let st = mk_state ~sym_memo cfg mk workloads in
      (* root-level sleeping and symmetry ride in on the task list (see
         [root_step_tasks]); the node budget stays per worker *)
      with_alloc_stats st (fun () ->
          try
            List.iter
              (fun (d, cur, switches, crashes, sleep) ->
                let stepped = match d with Step pid -> 1 lsl pid | Crash -> 0 in
                ignore
                  (dfs st [ d ] ~depth:1 ~hlen:0 ~sleep ~stepped cur switches
                     crashes
                    : int))
              (List.rev chunks.(idx))
          with Node_cap -> st.capped <- true);
      st
    in
    let handles = Array.init n_workers (fun i -> Domain.spawn (worker i)) in
    let sts = Array.to_list (Array.map Domain.join handles) in
    finish ~t0 ~domains_used:n_workers (root :: sts)
  end

(* Parallel undo engine: same frontier dealing as [explore_parallel],
   but each worker owns ONE undo session — it marks the root
   configuration once and explores its whole share of the frontier by
   apply/recurse/rewind, never replaying. *)
let explore_undo_parallel ~t0 ~mk ~workloads ~sym_memo cfg ~domains =
  let root = mk_state ~sym_memo cfg mk workloads in
  root.nodes <- 1;
  bump_depth root 0;
  bump_fixed root.journal_hist 0;
  let machine, inst, session =
    with_intern_stats root (fun () ->
        let machine, inst = mk () in
        let session =
          Session.create ~policy:cfg.policy ~undo:true machine inst ~workloads
        in
        (machine, inst, session))
  in
  ignore (Config_set.add_live root.configs (Runtime.Machine.mem machine) : bool);
  let runnable = Session.runnable session in
  if runnable = [] then begin
    record_execution root ~decisions:[] ~inst ~session ~truncated:false;
    finish ~t0 ~domains_used:1 [ root ]
  end
  else if Session.steps session >= cfg.max_steps then begin
    record_execution root ~decisions:[] ~inst ~session ~truncated:true;
    finish ~t0 ~domains_used:1 [ root ]
  end
  else begin
    (* mirror [dfs]'s child generation at the root: cur = None, so every
       step child is free and a crash child spends one crash budget *)
    let here0 = Session.event_count session in
    let root_mark0 = Session.mark session in
    let probe_silent pid =
      Session.step session pid;
      let silent = Session.event_count session = here0 in
      Session.rewind session root_mark0;
      silent
    in
    let tasks =
      (if cfg.crash_budget > 0 then [ (Crash, None, 0, 1, []) ] else [])
      @ root_step_tasks root cfg inst
          (Runtime.Machine.mem machine)
          session runnable ~probe_silent
    in
    let n_workers = min domains (List.length tasks) in
    let chunks = Array.make n_workers [] in
    List.iteri
      (fun i task -> chunks.(i mod n_workers) <- task :: chunks.(i mod n_workers))
      tasks;
    let worker idx () =
      (* worker domains are fresh: GC tuning applies to this domain only
         and dies with it *)
      Dtc_util.Gc_tune.apply cfg.gc;
      let st = mk_state ~sym_memo cfg mk workloads in
      with_alloc_stats st (fun () ->
          let machine, inst = mk () in
          let session =
            Session.create ~policy:cfg.policy ~undo:true machine inst
              ~workloads
          in
          let root_mark = Session.mark session in
          (* root-level sleeping and symmetry ride in on the task list
             (see [root_step_tasks]); the node budget stays per worker *)
          (try
             List.iter
               (fun (d, cur, switches, crashes, sleep) ->
                 (match d with
                 | Step pid -> Session.step session pid
                 | Crash -> Session.crash_wipe session (config_wipe cfg));
                 let stepped =
                   match d with Step pid -> 1 lsl pid | Crash -> 0
                 in
                 dfs_undo st session machine inst [ d ] ~depth:1 ~hlen:0 ~sleep
                   ~stepped cur switches crashes;
                 Session.rewind session root_mark)
               (List.rev chunks.(idx))
           with Node_cap -> st.capped <- true);
          st.rewound <- Mem.rewound_cells (Runtime.Machine.mem machine));
      (* worker domains are fresh, so absolute counters = this worker's *)
      let h, m = Value.intern_stats () in
      st.intern_hits <- h;
      st.intern_misses <- m;
      st
    in
    let handles = Array.init n_workers (fun i -> Domain.spawn (worker i)) in
    let sts = Array.to_list (Array.map Domain.join handles) in
    finish ~t0 ~domains_used:n_workers (root :: sts)
  end

let explore ~mk ~workloads (cfg : config) =
  let t0 = Unix.gettimeofday () in
  (* the pid masks in the memo key are single-word bitsets *)
  let cfg =
    if Array.length workloads > 62 then { cfg with reduction = `None } else cfg
  in
  (* sym-memo eligibility: all the gates the canonical key's soundness
     argument needs.  id-symmetric layout (π-images of reachable states
     are reachable), uniform non-empty workloads (π-images run the same
     program, and process ranks are well-defined), N ≤ 20 (orbit
     weights are exact in 63-bit ints), and pruning on (the canonical
     key IS the memo key).  When any gate fails the mode degrades to
     exactly [`Dpor_sym] semantics: symmetric-sibling skipping still
     runs, keys stay raw. *)
  let sym_memo =
    match cfg.reduction with
    | `Dpor_sym_memo ->
        let n = Array.length workloads in
        cfg.prune && n > 0 && n <= 20
        && workloads.(0) <> []
        && Array.for_all (fun w -> w = workloads.(0)) workloads
        &&
        let _, inst = mk () in
        inst.Obj_inst.id_symmetric
    | `None | `Dpor | `Dpor_sym -> false
  in
  let domains = max 1 cfg.domains in
  match cfg.engine with
  | `Replay ->
      if domains = 1 then explore_sequential ~t0 ~mk ~workloads ~sym_memo cfg
      else explore_parallel ~t0 ~mk ~workloads ~sym_memo cfg ~domains
  | `Undo ->
      if domains = 1 then
        explore_undo_sequential ~t0 ~mk ~workloads ~sym_memo cfg
      else explore_undo_parallel ~t0 ~mk ~workloads ~sym_memo cfg ~domains

let no_metrics ~elapsed_s ~nodes =
  {
    engine = "replay";
    dedup_hits = 0;
    nodes_saved = 0;
    peak_visited = 0;
    fingerprint_collisions = 0;
    elapsed_s;
    nodes_per_sec = float_of_int nodes /. Float.max elapsed_s 1e-9;
    replay_depth_hist = [];
    domains_used = 1;
    rewound_cells = 0;
    rewound_cells_per_sec = 0.;
    journal_depth_hist = [];
    intern_hits = 0;
    intern_misses = 0;
    intern_hit_rate = 0.;
    lin_engine = "batch";
    leaf_checks = 0;
    lin_elapsed_s = 0.;
    lin_checks_per_sec = 0.;
    lin_events_pushed = 0;
    lin_events_total = 0;
    lin_reuse_rate = 0.;
    frontier_hist = [];
    reduction = "none";
    sleep_skips = 0;
    sym_skips = 0;
    source_skips = 0;
    canonical_orbits = 0;
    minor_words = 0.;
    promoted_words = 0.;
    minor_collections = 0;
    bytes_per_node = 0.;
  }

let crash_points ~mk ~workloads ~schedule ?(policy = Session.Retry)
    ?(keep = fun (_ : Loc.t) -> true) ?(max_steps = 2_000) () =
  let t0 = Unix.gettimeofday () in
  let configs = Config_set.create () in
  let executions = ref 0 in
  let truncated = ref 0 in
  let violations = ref [] in
  (* [run_with_crash (Some k)] crashes just before global step k *)
  let run_with_crash crash_at =
    let machine, inst = mk () in
    let sched = schedule () in
    let session = Session.create ~policy machine inst ~workloads in
    let decisions = ref [] in
    let cut = ref false in
    let continue = ref true in
    while !continue do
      ignore (Config_set.add_live configs (Runtime.Machine.mem machine) : bool);
      match Session.runnable session with
      | [] -> continue := false
      | runnable ->
          let step = Session.steps session in
          if step >= max_steps then begin
            cut := true;
            continue := false
          end
          else if crash_at = Some (step, Session.crashes session = 0) then begin
            (* fire exactly once *)
            decisions := Crash :: !decisions;
            Session.crash session ~keep
          end
          else begin
            let pid = sched.Schedule.choose ~runnable ~step in
            decisions := Step pid :: !decisions;
            Session.step session pid
          end
    done;
    if !cut then incr truncated else incr executions;
    let verdict =
      match Session.anomalies session with
      | a :: _ -> Lin_check.Violation ("driver anomaly: " ^ a)
      | [] -> Lin_check.check inst.Obj_inst.spec (Session.history session)
    in
    (match verdict with
    | Lin_check.Ok_linearizable _ -> ()
    | Lin_check.Violation msg ->
        violations :=
          {
            decisions = List.rev !decisions;
            history = Session.history session;
            msg;
          }
          :: !violations);
    Session.steps session
  in
  (* dry run without crash to learn the step count, checking it too *)
  let total = run_with_crash None in
  for k = 0 to total - 1 do
    ignore (run_with_crash (Some (k, true)))
  done;
  let nodes = !executions + !truncated in
  {
    executions = !executions;
    truncated = !truncated;
    nodes;
    violations = List.rev !violations;
    total_violations = List.length !violations;
    distinct_shared_configs = Config_set.cardinal configs;
    capped = false;
    metrics = no_metrics ~elapsed_s:(Unix.gettimeofday () -. t0) ~nodes;
  }
