open Nvm

(* The permutation action on a value: π permutes the entries of every
   pid-indexed vector (recursively) and fixes everything else.  A
   vector is a length-n tuple whose entries all share one structural
   skeleton (constructor shape, not values) — see [skel].  Both
   fingerprint functions below are defined against that action; the
   .mli explains why over-approximating vector-ness is safe. *)

(* Structural skeleton: constructor tags only, so [Bool true] and
   [Bool false] agree while [Int _] and [Tup _] differ.  Because the
   permutation action only ever permutes entries that share a skeleton,
   skeletons — and with them the vector classification — are invariant
   under the action, which is what lets [shape]/[slice] commute with
   it.  Without the skeleton check a 2-tuple like Algorithm 2's
   C = (value, flip-vector) would collide with a 2-process pid-vector
   and be sliced apart. *)
let rec skel ~n v =
  match (v : Value.t) with
  | Value.Unit -> 1
  | Value.Bool _ -> 2
  | Value.Int _ -> 3
  | Value.Str _ -> 4
  | Value.Bot -> 5
  | Value.Tup a ->
      let ks = Array.map (skel ~n) a in
      if is_vec_skels ~n a ks then Value.mix 7 ks.(0)
      else Array.fold_left (fun h k -> Value.mix h k) 11 ks

and is_vec_skels ~n a ks =
  Array.length a = n && Array.for_all (fun k -> k = ks.(0)) ks

let is_vec ~n a = is_vec_skels ~n a (Array.map (skel ~n) a)

(* is [v] fixed by the transposition (p q)? *)
let rec swap_ok ~n ~p ~q v =
  match (v : Value.t) with
  | Value.Tup a ->
      (if is_vec ~n a then Value.equal a.(p) a.(q) else true)
      && Array.for_all (swap_ok ~n ~p ~q) a
  | Value.Unit | Value.Bool _ | Value.Int _ | Value.Str _ | Value.Bot -> true

let swap_invariant ~n mem p q =
  if p = q then invalid_arg "Sym.swap_invariant: p = q";
  let ok = ref true in
  let privs_p = ref [] and privs_q = ref [] in
  for i = 0 to Mem.n_locs mem - 1 do
    let loc = Mem.loc_by_id mem i in
    let v = Mem.read mem loc in
    (match loc.Loc.kind with
    | Loc.Private k when k = p -> privs_p := v :: !privs_p
    | Loc.Private k when k = q -> privs_q := v :: !privs_q
    | Loc.Private _ -> ()
    | Loc.Shared -> if not (swap_ok ~n ~p ~q v) then ok := false);
    (* nested vectors inside private cells must be fixed too *)
    (match loc.Loc.kind with
    | Loc.Private k when k = p || k = q ->
        if not (swap_ok ~n ~p ~q v) then ok := false
    | _ -> ())
  done;
  !ok
  && List.length !privs_p = List.length !privs_q
  && List.for_all2 Value.equal (List.rev !privs_p) (List.rev !privs_q)

(* [shape] digests the pid-independent part of a value (vectors
   contribute only a marker and their common skeleton), [slice ~pid]
   the view of one process (each vector contributes only its pid-th
   entry).  Both commute with the permutation action:
   shape (π v) = shape v  and  slice ~pid:(π p) (π v) = slice ~pid:p v,
   by induction on the value, using that π preserves skeletons and so
   the vector classification. *)
let rec shape ~n ~seed v =
  match (v : Value.t) with
  | Value.Tup a when is_vec ~n a -> Value.mix seed (Value.mix 0x5eed7 (skel ~n v))
  | Value.Tup a ->
      snd
        (Array.fold_left
           (fun (i, h) x -> (i + 1, Value.mix h (shape ~n ~seed:(seed + i) x)))
           (0, Value.mix seed 0x7ab1e) a)
  | v -> Value.hash_seeded seed v

and slice ~n ~pid ~seed v =
  match (v : Value.t) with
  | Value.Tup a when is_vec ~n a ->
      Value.mix 0x511ce
        (Value.mix (shape ~n ~seed a.(pid)) (slice ~n ~pid ~seed a.(pid)))
  | Value.Tup a ->
      snd
        (Array.fold_left
           (fun (i, h) x ->
             (i + 1, Value.mix h (slice ~n ~pid ~seed:(seed + i) x)))
           (0, Value.mix seed 0x7ab1e) a)
  | Value.Unit | Value.Bool _ | Value.Int _ | Value.Str _ | Value.Bot -> 0

(* One process's view of a value: the pid-independent shape plus that
   process's slice.  Equivariant under the action —
   [self_key ~pid:(π p) (π v) = self_key ~pid:p v] — so it can rank
   processes π-consistently before any permutation is known. *)
let self_key ~n ~pid ~seed v =
  Value.mix (shape ~n ~seed v) (slice ~n ~pid ~seed v)

(* Digest of a value under an explicit relabeling: pid-indexed vectors
   contribute their entries in canonical rank order — entry [inv.(r)]
   at position [r] — instead of pid order, so two values that are
   images of each other under the permutation digest equally when
   [inv] carries the matching canonical orders.  Everything else is
   hashed as [Value.hash_seeded] does. *)
let rec hash_perm ~n ~inv ~seed v =
  match (v : Value.t) with
  | Value.Tup a when is_vec ~n a ->
      let h = ref (Value.mix seed 0x9ec70) in
      for r = 0 to n - 1 do
        h := Value.mix !h (hash_perm ~n ~inv ~seed a.(inv.(r)))
      done;
      !h
  | Value.Tup a ->
      snd
        (Array.fold_left
           (fun (i, h) x ->
             (i + 1, Value.mix h (hash_perm ~n ~inv ~seed:(seed + i) x)))
           (0, Value.mix seed 0x7ab1e) a)
  | v -> Value.hash_seeded seed v

(* one fingerprint half from one seed; [shared_only] restricts to the
   shared cells (the paper's memory-equivalence ignores private NVM) *)
let half ?(shared_only = false) ~n ~seed mem =
  let views = Array.make n (seed lxor 0x1e3779b97f4a7c15) in
  let priv_slot = Array.make n 0 in
  let global = ref seed in
  let shared_ix = ref 0 in
  for i = 0 to Mem.n_locs mem - 1 do
    let loc = Mem.loc_by_id mem i in
    let v = Mem.read mem loc in
    match loc.Loc.kind with
    | Loc.Shared ->
        let tag = !shared_ix in
        incr shared_ix;
        global := Value.mix !global (Value.mix tag (shape ~n ~seed v));
        for p = 0 to n - 1 do
          views.(p) <-
            Value.mix views.(p) (Value.mix tag (slice ~n ~pid:p ~seed v))
        done
    | Loc.Private p when p < n && not shared_only ->
        (* slot-positional: the contract says every process allocates
           its private cells in the same order *)
        let slot = priv_slot.(p) in
        priv_slot.(p) <- slot + 1;
        views.(p) <-
          Value.mix views.(p)
            (Value.mix slot
               (Value.mix (shape ~n ~seed v) (slice ~n ~pid:p ~seed v)))
    | Loc.Private _ -> ()
  done;
  (* commutative fold over the per-process views: sort, then chain *)
  Array.sort compare views;
  Array.fold_left Value.mix !global views

let canonical_fingerprint ~n mem = (half ~n ~seed:1 mem, half ~n ~seed:2 mem)

let canonical_fingerprint_shared ~n mem =
  (half ~shared_only:true ~n ~seed:1 mem, half ~shared_only:true ~n ~seed:2 mem)

(* ------------------------------------------------------------------ *)
(* Orbit sizes.

   The stabiliser of a shared configuration under the S_N action is
   exactly the Young subgroup of the partition of pids into classes
   with pairwise-equal "columns" (the tuple of p-th entries over every
   shared vector, recursively): a permutation fixes every vector iff it
   permutes pids only within such classes.  Column equality of p and q
   is precisely [swap_ok] over all shared cells, and it is transitive,
   so |orbit| = N! / prod(class sizes!), computed exactly. *)

let rec fact k = if k <= 1 then 1 else k * fact (k - 1)

let orbit_size_classes ~n same =
  if n > 20 then invalid_arg "Sym.orbit_size: N! overflows past N = 20";
  let rep = Array.make n (-1) in
  let sizes = Array.make n 0 in
  for p = 0 to n - 1 do
    let c = ref (-1) in
    (try
       for q = 0 to p - 1 do
         if rep.(q) = q && same p q then begin
           c := q;
           raise Exit
         end
       done
     with Exit -> ());
    if !c < 0 then begin
      rep.(p) <- p;
      sizes.(p) <- 1
    end
    else begin
      rep.(p) <- !c;
      sizes.(!c) <- sizes.(!c) + 1
    end
  done;
  let denom = ref 1 in
  for p = 0 to n - 1 do
    if rep.(p) = p then denom := !denom * fact sizes.(p)
  done;
  fact n / !denom

let orbit_size_shared ~n mem =
  orbit_size_classes ~n (fun p q ->
      let ok = ref true in
      (try
         for i = 0 to Mem.n_locs mem - 1 do
           let loc = Mem.loc_by_id mem i in
           if Loc.is_shared loc && not (swap_ok ~n ~p ~q (Mem.read mem loc))
           then begin
             ok := false;
             raise Exit
           end
         done
       with Exit -> ());
      !ok)

(* ------------------------------------------------------------------ *)
(* Snapshot-side variants, for Config_set's canonical Exact audit mode:
   same digests/weights as the live versions, computed from
   [Mem.snapshot_cells] arrays instead of a live store. *)

let cells_half ~shared_only ~n ~seed cells =
  let views = Array.make n (seed lxor 0x1e3779b97f4a7c15) in
  let priv_slot = Array.make n 0 in
  let global = ref seed in
  let shared_ix = ref 0 in
  Array.iter
    (fun ((loc : Loc.t), v) ->
      match loc.Loc.kind with
      | Loc.Shared ->
          let tag = !shared_ix in
          incr shared_ix;
          global := Value.mix !global (Value.mix tag (shape ~n ~seed v));
          for p = 0 to n - 1 do
            views.(p) <-
              Value.mix views.(p) (Value.mix tag (slice ~n ~pid:p ~seed v))
          done
      | Loc.Private p when p < n && not shared_only ->
          let slot = priv_slot.(p) in
          priv_slot.(p) <- slot + 1;
          views.(p) <-
            Value.mix views.(p)
              (Value.mix slot
                 (Value.mix (shape ~n ~seed v) (slice ~n ~pid:p ~seed v)))
      | Loc.Private _ -> ())
    cells;
  Array.sort compare views;
  Array.fold_left Value.mix !global views

let cells_fingerprint_shared ~n cells =
  ( cells_half ~shared_only:true ~n ~seed:1 cells,
    cells_half ~shared_only:true ~n ~seed:2 cells )

let cells_orbit_size_shared ~n cells =
  orbit_size_classes ~n (fun p q ->
      Array.for_all
        (fun ((loc : Loc.t), v) ->
          (not (Loc.is_shared loc)) || swap_ok ~n ~p ~q v)
        cells)

(* the action of one permutation on a value: entry r of a vector comes
   from entry [perm.(r)] (the direction is irrelevant to the callers —
   they quantify over all of S_N) *)
let rec permute ~n ~perm v =
  match (v : Value.t) with
  | Value.Tup a when is_vec ~n a ->
      Value.Tup (Array.init n (fun r -> permute ~n ~perm a.(perm.(r))))
  | Value.Tup a -> Value.Tup (Array.map (permute ~n ~perm) a)
  | Value.Unit | Value.Bool _ | Value.Int _ | Value.Str _ | Value.Bot -> v

let related_shared ~n ca cb =
  let shared cells =
    Array.to_list cells |> List.filter (fun ((l : Loc.t), _) -> Loc.is_shared l)
  in
  let sa = shared ca and sb = shared cb in
  List.length sa = List.length sb
  && List.for_all2 (fun ((la : Loc.t), _) ((lb : Loc.t), _) -> la.Loc.id = lb.Loc.id) sa sb
  &&
  (* try every permutation of 0..n-1 (audit/test path: n is tiny) *)
  let perm = Array.make n (-1) in
  let used = Array.make n false in
  let rec go r =
    if r = n then
      List.for_all2
        (fun (_, va) (_, vb) -> Value.equal (permute ~n ~perm va) vb)
        sa sb
    else
      let rec try_p p =
        p < n
        && ((not used.(p))
            && begin
                 perm.(r) <- p;
                 used.(p) <- true;
                 let ok = go (r + 1) in
                 used.(p) <- false;
                 ok
               end
           || try_p (p + 1))
      in
      try_p 0
  in
  go 0
