open Nvm

(* The permutation action on a value: π permutes the entries of every
   pid-indexed vector (recursively) and fixes everything else.  A
   vector is a length-n tuple whose entries all share one structural
   skeleton (constructor shape, not values) — see [skel].  Both
   fingerprint functions below are defined against that action; the
   .mli explains why over-approximating vector-ness is safe. *)

(* Structural skeleton: constructor tags only, so [Bool true] and
   [Bool false] agree while [Int _] and [Tup _] differ.  Because the
   permutation action only ever permutes entries that share a skeleton,
   skeletons — and with them the vector classification — are invariant
   under the action, which is what lets [shape]/[slice] commute with
   it.  Without the skeleton check a 2-tuple like Algorithm 2's
   C = (value, flip-vector) would collide with a 2-process pid-vector
   and be sliced apart. *)
let rec skel ~n v =
  match (v : Value.t) with
  | Value.Unit -> 1
  | Value.Bool _ -> 2
  | Value.Int _ -> 3
  | Value.Str _ -> 4
  | Value.Bot -> 5
  | Value.Tup a ->
      let ks = Array.map (skel ~n) a in
      if is_vec_skels ~n a ks then Value.mix 7 ks.(0)
      else Array.fold_left (fun h k -> Value.mix h k) 11 ks

and is_vec_skels ~n a ks =
  Array.length a = n && Array.for_all (fun k -> k = ks.(0)) ks

let is_vec ~n a = is_vec_skels ~n a (Array.map (skel ~n) a)

(* is [v] fixed by the transposition (p q)? *)
let rec swap_ok ~n ~p ~q v =
  match (v : Value.t) with
  | Value.Tup a ->
      (if is_vec ~n a then Value.equal a.(p) a.(q) else true)
      && Array.for_all (swap_ok ~n ~p ~q) a
  | Value.Unit | Value.Bool _ | Value.Int _ | Value.Str _ | Value.Bot -> true

let swap_invariant ~n mem p q =
  if p = q then invalid_arg "Sym.swap_invariant: p = q";
  let ok = ref true in
  let privs_p = ref [] and privs_q = ref [] in
  for i = 0 to Mem.n_locs mem - 1 do
    let loc = Mem.loc_by_id mem i in
    let v = Mem.read mem loc in
    (match loc.Loc.kind with
    | Loc.Private k when k = p -> privs_p := v :: !privs_p
    | Loc.Private k when k = q -> privs_q := v :: !privs_q
    | Loc.Private _ -> ()
    | Loc.Shared -> if not (swap_ok ~n ~p ~q v) then ok := false);
    (* nested vectors inside private cells must be fixed too *)
    (match loc.Loc.kind with
    | Loc.Private k when k = p || k = q ->
        if not (swap_ok ~n ~p ~q v) then ok := false
    | _ -> ())
  done;
  !ok
  && List.length !privs_p = List.length !privs_q
  && List.for_all2 Value.equal (List.rev !privs_p) (List.rev !privs_q)

(* [shape] digests the pid-independent part of a value (vectors
   contribute only a marker and their common skeleton), [slice ~pid]
   the view of one process (each vector contributes only its pid-th
   entry).  Both commute with the permutation action:
   shape (π v) = shape v  and  slice ~pid:(π p) (π v) = slice ~pid:p v,
   by induction on the value, using that π preserves skeletons and so
   the vector classification. *)
let rec shape ~n ~seed v =
  match (v : Value.t) with
  | Value.Tup a when is_vec ~n a -> Value.mix seed (Value.mix 0x5eed7 (skel ~n v))
  | Value.Tup a ->
      snd
        (Array.fold_left
           (fun (i, h) x -> (i + 1, Value.mix h (shape ~n ~seed:(seed + i) x)))
           (0, Value.mix seed 0x7ab1e) a)
  | v -> Value.hash_seeded seed v

and slice ~n ~pid ~seed v =
  match (v : Value.t) with
  | Value.Tup a when is_vec ~n a ->
      Value.mix 0x511ce
        (Value.mix (shape ~n ~seed a.(pid)) (slice ~n ~pid ~seed a.(pid)))
  | Value.Tup a ->
      snd
        (Array.fold_left
           (fun (i, h) x ->
             (i + 1, Value.mix h (slice ~n ~pid ~seed:(seed + i) x)))
           (0, Value.mix seed 0x7ab1e) a)
  | Value.Unit | Value.Bool _ | Value.Int _ | Value.Str _ | Value.Bot -> 0

(* one fingerprint half from one seed *)
let half ~n ~seed mem =
  let views = Array.make n (seed lxor 0x1e3779b97f4a7c15) in
  let priv_slot = Array.make n 0 in
  let global = ref seed in
  let shared_ix = ref 0 in
  for i = 0 to Mem.n_locs mem - 1 do
    let loc = Mem.loc_by_id mem i in
    let v = Mem.read mem loc in
    match loc.Loc.kind with
    | Loc.Shared ->
        let tag = !shared_ix in
        incr shared_ix;
        global := Value.mix !global (Value.mix tag (shape ~n ~seed v));
        for p = 0 to n - 1 do
          views.(p) <-
            Value.mix views.(p) (Value.mix tag (slice ~n ~pid:p ~seed v))
        done
    | Loc.Private p when p < n ->
        (* slot-positional: the contract says every process allocates
           its private cells in the same order *)
        let slot = priv_slot.(p) in
        priv_slot.(p) <- slot + 1;
        views.(p) <-
          Value.mix views.(p)
            (Value.mix slot
               (Value.mix (shape ~n ~seed v) (slice ~n ~pid:p ~seed v)))
    | Loc.Private _ -> ()
  done;
  (* commutative fold over the per-process views: sort, then chain *)
  Array.sort compare views;
  Array.fold_left Value.mix !global views

let canonical_fingerprint ~n mem = (half ~n ~seed:1 mem, half ~n ~seed:2 mem)
