open Nvm

type mode = Fingerprint | Exact

(* Open-addressed set of fingerprint pairs over two flat int arrays.
   [add_live] runs at every DFS node of the explorer, and a Hashtbl
   keyed on [(int * int)] paid a pair allocation plus a polymorphic
   hash traversal per probe; here membership is two array reads per
   probe step and insertion allocates nothing.  The probe index mixes
   both halves, the slot stores both, so equality stays the full
   126-bit pair — no weakening of the collision guarantee.  Each slot
   also carries an int payload ([wv]): canonical sets store the orbit
   weight there (1 for plain sets), so the parallel join can transfer
   weights without re-deriving them from snapshots it no longer has. *)
module Pair_set = struct
  type t = {
    mutable ka : int array;  (* first halves; [empty] marks a free slot *)
    mutable kb : int array;
    mutable wv : int array;  (* per-slot weight payload *)
    mutable mask : int;  (* capacity - 1; capacity is a power of two *)
    mutable count : int;
  }

  (* Fingerprint halves range over all of [int], so one value must be
     sacrificed as the free-slot marker: a first half equal to [empty]
     is nudged up by one in [sanitize].  This merges pairs that differ
     only in that one bit of one half — a 2^-126 artefact, far below
     the scheme's own collision odds. *)
  let empty = min_int

  let sanitize fa = if fa = empty then empty + 1 else fa

  let create cap =
    {
      ka = Array.make cap empty;
      kb = Array.make cap 0;
      wv = Array.make cap 0;
      mask = cap - 1;
      count = 0;
    }

  (* slot holding [(fa, fb)], or the free slot where it would go *)
  let rec probe s fa fb i =
    let a = s.ka.(i) in
    if a = empty || (a = fa && s.kb.(i) = fb) then i
    else probe s fa fb ((i + 1) land s.mask)

  let grow s =
    let old_ka = s.ka and old_kb = s.kb and old_wv = s.wv in
    let cap = 2 * (s.mask + 1) in
    s.ka <- Array.make cap empty;
    s.kb <- Array.make cap 0;
    s.wv <- Array.make cap 0;
    s.mask <- cap - 1;
    Array.iteri
      (fun i a ->
        if a <> empty then begin
          let b = old_kb.(i) in
          let j = probe s a b (Value.mix a b land s.mask) in
          s.ka.(j) <- a;
          s.kb.(j) <- b;
          s.wv.(j) <- old_wv.(i)
        end)
      old_ka

  (* true iff the pair was new *)
  let add_w s fa fb w =
    let fa = sanitize fa in
    if 2 * (s.count + 1) > s.mask + 1 then grow s;
    let i = probe s fa fb (Value.mix fa fb land s.mask) in
    if s.ka.(i) = empty then begin
      s.ka.(i) <- fa;
      s.kb.(i) <- fb;
      s.wv.(i) <- w;
      s.count <- s.count + 1;
      true
    end
    else false

  let iter_w f s =
    Array.iteri (fun i a -> if a <> empty then f a s.kb.(i) s.wv.(i)) s.ka
end

type t = {
  mode : mode;
  canonical : int option;
      (* Some n: keys are full-S_N canonical fingerprints of the shared
         configuration and [cardinal] is orbit-size-weighted *)
  fps : Pair_set.t;
  (* Exact mode only: full snapshots bucketed by fingerprint, so a
     fingerprint collision between non-equivalent configurations is
     caught and counted instead of silently merging them.  Under a
     canonical set the bucket equality is orbit membership
     ({!Sym.related_shared}), so the audit checks exactly the quotient
     property: equal canonical fingerprints imply π-relatedness. *)
  exact : (int * int, Mem.snapshot list) Hashtbl.t;
  mutable collisions : int;
  mutable weighted : int;  (* canonical: running sum of orbit sizes *)
  (* canonical live-insertion guard: raw (per-pid) fingerprints already
     seen.  Canonicalising a configuration walks every cell once per
     process and computing its orbit weight is O(N^2) cell scans — far
     too hot for a per-DFS-node call — but the explorer revisits the
     same few raw configurations millions of times.  A raw repeat can
     neither open a new orbit nor change any weight, so [add_live] pays
     the canonical work only when the raw fingerprint is fresh: at most
     once per distinct raw configuration, of which there are orders of
     magnitude fewer than nodes. *)
  seen_raw : Pair_set.t;
}

let create ?(mode = Fingerprint) ?canonical () =
  (match canonical with
  | Some n when n < 1 || n > 20 ->
      invalid_arg "Config_set.create: canonical N out of range"
  | _ -> ());
  {
    mode;
    canonical;
    fps = Pair_set.create 1024;
    exact = Hashtbl.create (match mode with Exact -> 1024 | Fingerprint -> 1);
    collisions = 0;
    weighted = 0;
    seen_raw =
      Pair_set.create (match canonical with Some _ -> 1024 | None -> 2);
  }

let mode set = set.mode
let canonical set = set.canonical

let insert_fp_w set fa fb w =
  let fresh = Pair_set.add_w set.fps fa fb w in
  if fresh then set.weighted <- set.weighted + w;
  fresh

(* snapshot-bucket equality: plain sets use memory-equivalence,
   canonical sets orbit membership *)
let snap_equiv set a b =
  match set.canonical with
  | None -> Mem.equal_shared a b
  | Some n ->
      Sym.related_shared ~n (Mem.snapshot_cells a) (Mem.snapshot_cells b)

let insert_exact set ((fa, fb) as fp) ~weight snap =
  let bucket = try Hashtbl.find set.exact fp with Not_found -> [] in
  if List.exists (snap_equiv set snap) bucket then false
  else begin
    if bucket <> [] then set.collisions <- set.collisions + 1;
    Hashtbl.replace set.exact fp (snap :: bucket);
    (* a colliding configuration occupies no fresh pair-set slot, but
       its weight still counts toward the (audited) total *)
    ignore (Pair_set.add_w set.fps fa fb weight : bool);
    set.weighted <- set.weighted + weight;
    true
  end

let insert set snap =
  match set.canonical with
  | None -> (
      let fa, fb = Mem.fingerprint_shared snap in
      match set.mode with
      | Fingerprint -> insert_fp_w set fa fb 1
      | Exact -> insert_exact set (fa, fb) ~weight:1 snap)
  | Some n -> (
      let cells = Mem.snapshot_cells snap in
      let fp = Sym.cells_fingerprint_shared ~n cells in
      let weight = Sym.cells_orbit_size_shared ~n cells in
      match set.mode with
      | Fingerprint -> insert_fp_w set (fst fp) (snd fp) weight
      | Exact -> insert_exact set fp ~weight snap)

let add set snap = ignore (insert set snap : bool)

let add_live set mem =
  match (set.canonical, set.mode) with
  | None, Fingerprint ->
      insert_fp_w set (Mem.live_shared_a mem) (Mem.live_shared_b mem) 1
  | Some n, Fingerprint ->
      if
        Pair_set.add_w set.seen_raw (Mem.live_shared_a mem)
          (Mem.live_shared_b mem) 0
      then begin
        let fa, fb = Sym.canonical_fingerprint_shared ~n mem in
        insert_fp_w set fa fb (Sym.orbit_size_shared ~n mem)
      end
      else false
  | _, Exact -> insert set (Mem.snapshot mem)

(* In exact mode collisions make the snapshot count authoritative: a
   colliding pair occupies ONE pair-set slot but counts as two distinct
   configurations (two distinct orbits, under a canonical set). *)
let cardinal set =
  match set.canonical with
  | None -> set.fps.Pair_set.count + set.collisions
  | Some _ -> set.weighted

let orbits set = set.fps.Pair_set.count + set.collisions

let collisions set = set.collisions

let merge_into ~dst ~src =
  if dst.canonical <> src.canonical then
    invalid_arg "Config_set.merge_into: canonical modes differ";
  match (dst.mode, src.mode) with
  | Fingerprint, _ ->
      Pair_set.iter_w
        (fun fa fb w -> ignore (insert_fp_w dst fa fb w : bool))
        src.fps;
      (* keep the canonical live-insertion guard exact across the join *)
      Pair_set.iter_w
        (fun fa fb _ -> ignore (Pair_set.add_w dst.seen_raw fa fb 0 : bool))
        src.seen_raw
  | Exact, Exact ->
      Hashtbl.iter
        (fun fp bucket ->
          List.iter
            (fun snap ->
              let weight =
                match dst.canonical with
                | None -> 1
                | Some n ->
                    Sym.cells_orbit_size_shared ~n (Mem.snapshot_cells snap)
              in
              ignore (insert_exact dst fp ~weight snap : bool))
            bucket)
        src.exact
  | Exact, Fingerprint ->
      invalid_arg
        "Config_set.merge_into: cannot merge fingerprints into an exact set"
