open Nvm

type mode = Fingerprint | Exact

(* Open-addressed set of fingerprint pairs over two flat int arrays.
   [add_live] runs at every DFS node of the explorer, and a Hashtbl
   keyed on [(int * int)] paid a pair allocation plus a polymorphic
   hash traversal per probe; here membership is two array reads per
   probe step and insertion allocates nothing.  The probe index mixes
   both halves, the slot stores both, so equality stays the full
   126-bit pair — no weakening of the collision guarantee. *)
module Pair_set = struct
  type t = {
    mutable ka : int array;  (* first halves; [empty] marks a free slot *)
    mutable kb : int array;
    mutable mask : int;  (* capacity - 1; capacity is a power of two *)
    mutable count : int;
  }

  (* Fingerprint halves range over all of [int], so one value must be
     sacrificed as the free-slot marker: a first half equal to [empty]
     is nudged up by one in [sanitize].  This merges pairs that differ
     only in that one bit of one half — a 2^-126 artefact, far below
     the scheme's own collision odds. *)
  let empty = min_int

  let sanitize fa = if fa = empty then empty + 1 else fa

  let create cap =
    {
      ka = Array.make cap empty;
      kb = Array.make cap 0;
      mask = cap - 1;
      count = 0;
    }

  (* slot holding [(fa, fb)], or the free slot where it would go *)
  let rec probe s fa fb i =
    let a = s.ka.(i) in
    if a = empty || (a = fa && s.kb.(i) = fb) then i
    else probe s fa fb ((i + 1) land s.mask)

  let grow s =
    let old_ka = s.ka and old_kb = s.kb in
    let cap = 2 * (s.mask + 1) in
    s.ka <- Array.make cap empty;
    s.kb <- Array.make cap 0;
    s.mask <- cap - 1;
    Array.iteri
      (fun i a ->
        if a <> empty then begin
          let b = old_kb.(i) in
          let j = probe s a b (Value.mix a b land s.mask) in
          s.ka.(j) <- a;
          s.kb.(j) <- b
        end)
      old_ka

  (* true iff the pair was new *)
  let add s fa fb =
    let fa = sanitize fa in
    if 2 * (s.count + 1) > s.mask + 1 then grow s;
    let i = probe s fa fb (Value.mix fa fb land s.mask) in
    if s.ka.(i) = empty then begin
      s.ka.(i) <- fa;
      s.kb.(i) <- fb;
      s.count <- s.count + 1;
      true
    end
    else false

  let iter f s =
    Array.iteri (fun i a -> if a <> empty then f a s.kb.(i)) s.ka
end

type t = {
  mode : mode;
  fps : Pair_set.t;
  (* Exact mode only: full snapshots bucketed by fingerprint, so a
     fingerprint collision between non-memory-equivalent configurations
     is caught and counted instead of silently merging them. *)
  exact : (int * int, Mem.snapshot list) Hashtbl.t;
  mutable collisions : int;
}

let create ?(mode = Fingerprint) () =
  {
    mode;
    fps = Pair_set.create 1024;
    exact = Hashtbl.create (match mode with Exact -> 1024 | Fingerprint -> 1);
    collisions = 0;
  }

let mode set = set.mode

let insert_fp set fa fb = Pair_set.add set.fps fa fb

let insert_exact set ((fa, fb) as fp) snap =
  let bucket = try Hashtbl.find set.exact fp with Not_found -> [] in
  if List.exists (Mem.equal_shared snap) bucket then false
  else begin
    if bucket <> [] then set.collisions <- set.collisions + 1;
    Hashtbl.replace set.exact fp (snap :: bucket);
    ignore (insert_fp set fa fb : bool);
    true
  end

let insert set snap =
  let fa, fb = Mem.fingerprint_shared snap in
  match set.mode with
  | Fingerprint -> insert_fp set fa fb
  | Exact -> insert_exact set (fa, fb) snap

let add set snap = ignore (insert set snap : bool)

let add_live set mem =
  match set.mode with
  | Fingerprint ->
      insert_fp set (Mem.live_shared_a mem) (Mem.live_shared_b mem)
  | Exact ->
      let snap = Mem.snapshot mem in
      insert_exact set (Mem.fingerprint_shared snap) snap

(* In exact mode collisions make the snapshot count authoritative: a
   colliding pair occupies ONE pair-set slot but counts as two distinct
   configurations. *)
let cardinal set = set.fps.Pair_set.count + set.collisions

let collisions set = set.collisions

let merge_into ~dst ~src =
  match (dst.mode, src.mode) with
  | Fingerprint, _ ->
      Pair_set.iter (fun fa fb -> ignore (insert_fp dst fa fb : bool)) src.fps
  | Exact, Exact ->
      Hashtbl.iter
        (fun fp bucket ->
          List.iter (fun snap -> ignore (insert_exact dst fp snap : bool)) bucket)
        src.exact
  | Exact, Fingerprint ->
      invalid_arg "Config_set.merge_into: cannot merge fingerprints into an exact set"
