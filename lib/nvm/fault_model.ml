type t =
  | Atomic
  | Drop of { keep_prob : float }
  | Torn of { granularity : int }
  | Reorder

type wipe =
  | Keep of (Loc.t -> bool)
  | Seeded of t * int

let default = Atomic
let keep_all = Keep (fun _ -> true)

let to_string = function
  | Atomic -> "atomic"
  | Drop { keep_prob } -> Printf.sprintf "drop(keep=%.2f)" keep_prob
  | Torn { granularity } -> Printf.sprintf "torn(g=%d)" granularity
  | Reorder -> "reorder"

let pp fmt f = Format.pp_print_string fmt (to_string f)

(* Accepts both the bare names and the parameterised spellings
   ("drop:0.5", "torn:2"); [to_string] output parses back too, so the
   CLI, the checkpoint header and the report config all round-trip. *)
let of_string s =
  let num_suffix ~prefix s =
    (* "prefix:X", "prefix=X", "prefix(..=X)" all yield X *)
    let n = String.length s and p = String.length prefix in
    if n <= p then None
    else
      let rest = String.sub s p (n - p) in
      let rest =
        match String.index_opt rest '=' with
        | Some i -> String.sub rest (i + 1) (String.length rest - i - 1)
        | None -> rest
      in
      let rest =
        String.concat ""
          (String.split_on_char ')' (String.concat "" (String.split_on_char ':' rest)))
      in
      Some rest
  in
  let s = String.lowercase_ascii (String.trim s) in
  if s = "atomic" then Ok Atomic
  else if s = "reorder" then Ok Reorder
  else if s = "drop" then Ok (Drop { keep_prob = 0.5 })
  else if s = "torn" then Ok (Torn { granularity = 1 })
  else if String.length s >= 4 && String.sub s 0 4 = "drop" then
    match Option.bind (num_suffix ~prefix:"drop" s) float_of_string_opt with
    | Some p when p >= 0.0 && p <= 1.0 -> Ok (Drop { keep_prob = p })
    | _ -> Error (Printf.sprintf "bad drop keep probability in %S" s)
  else if String.length s >= 4 && String.sub s 0 4 = "torn" then
    match Option.bind (num_suffix ~prefix:"torn" s) int_of_string_opt with
    | Some g when g >= 1 -> Ok (Torn { granularity = g })
    | _ -> Error (Printf.sprintf "bad torn granularity in %S" s)
  else
    Error
      (Printf.sprintf
         "unknown fault model %S (expected atomic, drop[:KEEP], torn[:G] or \
          reorder)"
         s)
