(** The simulated non-volatile memory store.

    A store is a flat array of {!Value.t} cells addressed by {!Loc.t}
    handles.  It survives crashes by construction (the crash machinery
    only discards process continuations and caches, never the store).

    The store also keeps the bookkeeping needed by the paper's
    space-complexity experiments: for every location it tracks the largest
    value (in bits) ever resident, so an implementation's footprint can be
    measured as it runs. *)

type t

val create : ?capacity:int -> unit -> t
(** [create ()] makes an empty store.  [capacity] pre-sizes the cell
    arena (default 64, clamped to at least 1); the arena still grows by
    doubling when allocation outruns it, so this is purely a hot-loop
    pre-sizing knob. *)

val alloc : t -> name:string -> kind:Loc.kind -> Value.t -> Loc.t
(** [alloc mem ~name ~kind init] allocates a fresh cell holding [init].
    The initial value is remembered so {!reset} can restore it. *)

val read : t -> Loc.t -> Value.t
val write : t -> Loc.t -> Value.t -> unit

val cas : t -> Loc.t -> Value.t -> Value.t -> bool
(** [cas mem loc expected desired] atomically (w.r.t. the simulation)
    replaces the contents with [desired] iff the current contents equal
    [expected]; returns whether the swap happened. *)

val faa : t -> Loc.t -> int -> int
(** [faa mem loc delta] fetch-and-adds on an integer cell, returning the
    previous value. *)

val reset : t -> unit
(** Restore every cell to its initial value and clear statistics.  Used by
    the model checker to re-execute programs from the initial
    configuration. *)

val n_locs : t -> int

val loc_by_id : t -> int -> Loc.t
(** Inverse of allocation order; raises [Invalid_argument] if out of
    range. *)

(** {1 Write journal}

    The undo-engine's backtracking substrate.  While journaling is on,
    every mutation ([write], successful [cas], [faa], and the cells
    changed by [reset]/[restore]) pushes [(cell id, old contents, old
    max_bits)] onto a log; {!rewind} pops back to a {!mark} in
    O(writes-since-mark), restoring contents {e and} the [max_bits]
    high-water marks (the bf9564b stale-accounting class of bug).

    Marks are LIFO: rewinding to a mark invalidates every mark taken
    after it.  Rewinding past an allocation is rejected (the explorer
    never allocates mid-exploration). *)

type mark

val set_journal : t -> bool -> unit
(** Turn journaling on or off.  Turning it off discards the log (and
    invalidates all marks). *)

val journaling : t -> bool

val mark : t -> mark
(** O(1).  Raises [Invalid_argument] if journaling is off. *)

val rewind : t -> mark -> unit
(** Pop the journal back to [mark], restoring each logged cell's
    contents and high-water mark.  Raises [Invalid_argument] if
    journaling is off, if allocations happened since the mark, or if
    the mark is stale (deeper than the current log). *)

val rewind_to : t -> len:int -> j:int -> unit
(** Raw-coordinate {!rewind}: a mark is exactly the pair
    [(n_locs, journal_depth)] captured while journaling, and callers
    that pool their own mutable mark buffers (the undo explorer) rewind
    through this without allocating a [mark].  Same checks and
    semantics as {!rewind}. *)

val journal_depth : t -> int
(** Current number of live journal entries. *)

val rewound_cells : t -> int
(** Cumulative number of cell restorations performed by {!rewind} over
    this store's lifetime (the undo-engine throughput metric). *)

(** {1 Snapshots and memory-equivalence} *)

type snapshot

val snapshot : t -> snapshot
(** Captures every cell's contents {e and} its [max_bits] high-water
    mark, so a later {!restore} rewinds the space accounting along with
    the values. *)

val restore : t -> snapshot -> unit
(** Restore cell contents and high-water marks to the snapshotted state.
    Raises [Invalid_argument] if the allocation state differs. *)

val snapshot_cells : snapshot -> (Loc.t * Value.t) array
(** The snapshotted cells as [(location, contents)] pairs in allocation
    order — the representation {!Modelcheck.Sym}'s snapshot-side
    canonicalisation and relatedness checks work over.  Allocates a
    fresh array; audit/test paths only. *)

val equal_shared : snapshot -> snapshot -> bool
(** The paper's memory-equivalence: two configurations are
    memory-equivalent when every {e shared} variable has the same value in
    both.  Private NVM and local state are excluded. *)

val hash_shared : snapshot -> int
(** Hash consistent with {!equal_shared}. *)

val equal_full : snapshot -> snapshot -> bool
(** Equality over all cells, shared and private. *)

(** {1 Fingerprints}

    Compact (two-word) digests used by the model checker's visited set
    and by {!Modelcheck.Config_set}'s fingerprint mode.  Each half is
    the XOR of a per-cell term mixed from the cell index and the
    value-digest cached at interning time (a Zobrist scheme); the two
    halves use the independent [da]/[db] digest streams, so a pair
    collision between distinct configurations needs both 63-bit streams
    to collide at once.  XOR terms make the digest incrementally
    maintainable: every mutation adjusts accumulators in O(1), and the
    [live_] variants below just read them — two loads, no scan, no
    allocation — which is what the model checker's per-node hot path
    costs. *)

val fingerprint_shared : snapshot -> int * int
(** Digest of the shared cells only, consistent with {!equal_shared}:
    memory-equivalent snapshots have equal fingerprints. *)

val live_fingerprint_shared : t -> int * int
(** [fingerprint_shared] of the current contents, without materialising
    a snapshot. *)

val live_fingerprint_full : t -> int * int
(** Digest over {e all} cells, shared and private — the memory half of
    the explorer's visited-set key (recovery reads private NVM, so
    pruning must distinguish private differences). *)

val live_shared_a : t -> int
val live_shared_b : t -> int

val live_full_a : t -> int

val live_full_b : t -> int
(** The halves of {!live_fingerprint_shared} / {!live_fingerprint_full}
    as scalars: the explorer reads them at every DFS node, and the pair
    returns would allocate just to be deconstructed. *)

val pp_snapshot : Format.formatter -> snapshot -> unit

(** {1 Space accounting} *)

val shared_bits : t -> int
(** Current footprint: sum of {!Value.bits} over shared cells. *)

val max_shared_bits : t -> int
(** High-water mark of per-cell maxima: sum over shared cells of the
    largest size each has held since creation/{!reset}.  This is the
    honest measure of how much NVM the implementation must provision. *)

val max_bits_of : t -> Loc.t -> int
(** High-water mark of one cell. *)
