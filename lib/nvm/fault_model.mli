(** Fault models for the NVM crash engine.

    A fault model describes what happens to the {e dirty} (written but
    not yet explicitly persisted) cache lines when a crash is injected
    under {!Machine.Shared_cache} semantics:

    - {!Atomic} — every dirty line persists whole, in [Loc.id] order.
      This is the historical behaviour and the model the paper assumes
      (each object field is a single CAS-able word whose persist is
      all-or-nothing).
    - [Drop {keep_prob}] — each dirty line independently persists whole
      with probability [keep_prob] and is lost otherwise.  Subsumes the
      old [Crash_plan.random ~keep_prob].
    - [Torn {granularity}] — a dirty composite {!Value.Tup} persists
      component-wise: contiguous chunks of [granularity] fields each
      independently land as the new or the old value.  Non-tuple values
      (or tuples whose arity changed) fall back to a whole-line coin
      flip.  This deliberately steps {e outside} the paper's model,
      where the composite word persists atomically.
    - {!Reorder} — dirty lines persist in an adversarially chosen order
      and an adversarially chosen prefix of that order survives; the
      suffix is lost.

    All randomness is drawn from a dedicated {!Dtc_util.Prng} stream
    derived from a seed recorded in the {!wipe}, never from the
    schedule's PRNG, so crash outcomes are a pure function of
    [(fault, seed, crash index, dirty set)] — the determinism contract
    torture campaigns and the shrinker rely on. *)

type t =
  | Atomic
  | Drop of { keep_prob : float }
  | Torn of { granularity : int }
  | Reorder

(** What a crash does to the dirty set.  [Keep pred] is the legacy
    per-location predicate (pred true = line persists whole); [Seeded
    (fault, seed)] applies [fault] with randomness from
    [Prng.stream seed ~index:k] at the k-th crash (0-based), making
    every crash's write-back independently replayable. *)
type wipe =
  | Keep of (Loc.t -> bool)
  | Seeded of t * int

val default : t
(** [Atomic]. *)

val keep_all : wipe
(** [Keep (fun _ -> true)] — every dirty line persists whole. *)

val to_string : t -> string
(** ["atomic"], ["drop(keep=0.50)"], ["torn(g=1)"], ["reorder"] —
    stable spellings used in reports, checkpoints and baselines;
    {!of_string} parses them back. *)

val of_string : string -> (t, string) result
(** Parses {!to_string} output as well as the CLI shorthands
    ["drop"], ["drop:0.7"], ["torn"], ["torn:2"]. *)

val pp : Format.formatter -> t -> unit
