type t = {
  backing : Mem.t;
  dirty : (int, Loc.t * Value.t) Hashtbl.t; (* loc id -> newest unpersisted value *)
}

let create backing = { backing; dirty = Hashtbl.create 64 }

let mem c = c.backing

let read c (loc : Loc.t) =
  match Hashtbl.find_opt c.dirty loc.Loc.id with
  | Some (_, v) -> v
  | None -> Mem.read c.backing loc

let write c (loc : Loc.t) v = Hashtbl.replace c.dirty loc.Loc.id (loc, v)

let cas c loc expected desired =
  let cur = read c loc in
  if Value.equal cur expected then (
    write c loc desired;
    true)
  else false

let faa c loc delta =
  let old = Value.to_int (read c loc) in
  write c loc (Value.Int (old + delta));
  old

let persist c (loc : Loc.t) =
  match Hashtbl.find_opt c.dirty loc.Loc.id with
  | Some (_, v) ->
      Mem.write c.backing loc v;
      Hashtbl.remove c.dirty loc.Loc.id
  | None -> ()

let dirty_locs c =
  Hashtbl.fold (fun _ (loc, _) acc -> loc :: acc) c.dirty []
  |> List.sort (fun (a : Loc.t) (b : Loc.t) -> Int.compare a.Loc.id b.Loc.id)

let persist_all c = List.iter (persist c) (dirty_locs c)

let crash c ~keep =
  List.iter (fun loc -> if keep loc then persist c loc) (dirty_locs c);
  Hashtbl.reset c.dirty

let entries c = Hashtbl.fold (fun _ e acc -> e :: acc) c.dirty []

let restore_entries c entries =
  Hashtbl.reset c.dirty;
  List.iter
    (fun ((loc : Loc.t), v) -> Hashtbl.replace c.dirty loc.Loc.id (loc, v))
    entries
