type t = {
  backing : Mem.t;
  dirty : (int, Loc.t * Value.t) Hashtbl.t; (* loc id -> newest unpersisted value *)
}

let create backing = { backing; dirty = Hashtbl.create 64 }

let mem c = c.backing

let read c (loc : Loc.t) =
  match Hashtbl.find_opt c.dirty loc.Loc.id with
  | Some (_, v) -> v
  | None -> Mem.read c.backing loc

let write c (loc : Loc.t) v = Hashtbl.replace c.dirty loc.Loc.id (loc, v)

let cas c loc expected desired =
  let cur = read c loc in
  if Value.equal cur expected then (
    write c loc desired;
    true)
  else false

let faa c loc delta =
  let old = Value.to_int (read c loc) in
  write c loc (Value.Int (old + delta));
  old

let persist c (loc : Loc.t) =
  match Hashtbl.find_opt c.dirty loc.Loc.id with
  | Some (_, v) ->
      Mem.write c.backing loc v;
      Hashtbl.remove c.dirty loc.Loc.id
  | None -> ()

let dirty_locs c =
  Hashtbl.fold (fun _ (loc, _) acc -> loc :: acc) c.dirty []
  |> List.sort (fun (a : Loc.t) (b : Loc.t) -> Int.compare a.Loc.id b.Loc.id)

let persist_all c = List.iter (persist c) (dirty_locs c)

let crash c ~keep =
  List.iter (fun loc -> if keep loc then persist c loc) (dirty_locs c);
  Hashtbl.reset c.dirty

(* Dirty lines are always visited in [dirty_locs] (allocation-id) order
   so that the PRNG consumption — and hence the post-crash NVM image —
   is a pure function of (fault, prng state, dirty set). *)
let crash_faulted c ~fault ~prng =
  let open Dtc_util in
  (match fault with
  | Fault_model.Atomic -> List.iter (persist c) (dirty_locs c)
  | Fault_model.Drop { keep_prob } ->
      List.iter
        (fun loc ->
          if keep_prob >= 1.0 || Prng.float prng < keep_prob then persist c loc)
        (dirty_locs c)
  | Fault_model.Torn { granularity } ->
      List.iter
        (fun (loc : Loc.t) ->
          match Hashtbl.find_opt c.dirty loc.Loc.id with
          | None -> ()
          | Some (_, nv) -> (
              let ov = Mem.read c.backing loc in
              match (ov, nv) with
              | Value.Tup olds, Value.Tup news
                when Array.length olds = Array.length news ->
                  let k = Array.length news in
                  let out = Array.copy olds in
                  let i = ref 0 in
                  while !i < k do
                    let stop = min k (!i + granularity) in
                    if Prng.bool prng then
                      for j = !i to stop - 1 do
                        out.(j) <- news.(j)
                      done;
                    i := stop
                  done;
                  Mem.write c.backing loc (Value.Tup out)
              | _ -> if Prng.bool prng then Mem.write c.backing loc nv))
        (dirty_locs c)
  | Fault_model.Reorder ->
      let locs = Array.of_list (dirty_locs c) in
      Prng.shuffle prng locs;
      let cut = Prng.int prng (Array.length locs + 1) in
      for i = 0 to cut - 1 do
        persist c locs.(i)
      done);
  Hashtbl.reset c.dirty

let entries c =
  Hashtbl.fold (fun _ e acc -> e :: acc) c.dirty []
  |> List.sort (fun ((a : Loc.t), _) ((b : Loc.t), _) ->
         Int.compare a.Loc.id b.Loc.id)

let restore_entries c entries =
  Hashtbl.reset c.dirty;
  List.iter
    (fun ((loc : Loc.t), v) -> Hashtbl.replace c.dirty loc.Loc.id (loc, v))
    entries
