(** The shared-cache persistency model (paper, Section 6).

    In the private-cache model, primitive operations apply directly to the
    NVM.  In the more realistic shared-cache model there is a single
    volatile shared cache: primitive operations hit the cache, and values
    only reach the NVM when explicitly persisted (or when the cache
    happens to write a line back).  On a crash the cache contents are
    lost — except that the hardware may have silently written back any
    subset of the dirty lines, so a correct algorithm must tolerate every
    write-back subset.

    This module layers such a cache over a {!Mem.t}.  The crash operation
    takes a per-line decision function so that tests and the model checker
    can explore adversarial write-back choices. *)

type t

val create : Mem.t -> t

val mem : t -> Mem.t
(** The backing non-volatile store. *)

val read : t -> Loc.t -> Value.t
val write : t -> Loc.t -> Value.t -> unit
val cas : t -> Loc.t -> Value.t -> Value.t -> bool
val faa : t -> Loc.t -> int -> int

val persist : t -> Loc.t -> unit
(** Write the location's cache line (if dirty) back to NVM. *)

val persist_all : t -> unit
(** Full fence: write back every dirty line. *)

val dirty_locs : t -> Loc.t list
(** Locations whose newest value has not yet been persisted, in
    allocation-id order (deterministic). *)

val crash : t -> keep:(Loc.t -> bool) -> unit
(** [crash c ~keep] simulates a power failure: each dirty line is written
    back to NVM iff [keep] returns [true] for it, then the whole cache is
    discarded.  [keep] models the hardware's arbitrary write-back
    behaviour at the instant of failure. *)

val crash_faulted : t -> fault:Fault_model.t -> prng:Dtc_util.Prng.t -> unit
(** [crash_faulted c ~fault ~prng] simulates a power failure under a
    {!Fault_model.t}: the dirty lines reach (or miss, or partially
    reach) NVM as the model dictates, drawing every random decision
    from [prng], then the whole cache is discarded.  Lines are visited
    in allocation-id order so the outcome is a deterministic function
    of [(fault, prng, dirty set)].  [~fault:Atomic] is equivalent to
    [crash ~keep:(fun _ -> true)] and consumes no randomness. *)

val entries : t -> (Loc.t * Value.t) list
(** The dirty set, in allocation-id order (deterministic) — a
    checkpoint token for {!restore_entries}.  The undo engine snapshots
    the cache with this when it marks a configuration. *)

val restore_entries : t -> (Loc.t * Value.t) list -> unit
(** Replace the dirty set with a previously captured {!entries} list. *)
