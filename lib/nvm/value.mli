(** Dynamic values stored in the simulated non-volatile memory.

    The paper's algorithms store heterogeneous contents in shared
    variables — e.g. Algorithm 1's register [R] holds a triple
    [(value, writer id, toggle index)] and Algorithm 2's variable [C]
    holds [(value, N-bit vector)].  A single dynamic value universe keeps
    the simulator generic over implemented objects and makes
    memory-equivalence (Theorem 1) and bit accounting (space-complexity
    experiments) uniform. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Tup of t array  (** tuples and fixed-size vectors *)
  | Bot  (** the paper's ⊥: "unset" *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val mix : int -> int -> int
(** [mix h x] folds [x] into accumulator [h] with a 63-bit avalanche
    mixer.  Chains of [mix] are how the model checker fingerprints
    configurations; the mixer spreads single-bit differences across the
    whole word so independent seeds give near-independent digests. *)

val hash_seeded : int -> t -> int
(** [hash_seeded seed v] is a structural 63-bit digest of [v] chained
    from [seed].  Unlike {!hash} (a bucketing hash), this recurses with
    full-width mixing, so two [hash_seeded] streams started from
    different seeds act as independent fingerprint halves. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val bits : t -> int
(** Size of the value in bits, as counted by the space-complexity
    experiments: booleans cost 1 bit, an integer [n] costs the number of
    bits in the binary representation of [abs n] (at least 1), strings
    cost 8 bits per byte, tuples cost the sum of their components, and
    [Bot]/[Unit] cost 1/0 bits respectively. *)

val pair : t -> t -> t
val triple : t -> t -> t -> t

val bool_vec : int -> t
(** [bool_vec n] is an all-[false] vector of [n] booleans, the initial
    value of Algorithm 2's per-process flip vector. *)

(** Accessors: raise [Invalid_argument] on a dynamic type mismatch, which
    in this codebase always indicates a bug in an algorithm
    implementation, never a recoverable condition. *)

val to_bool : t -> bool
val to_int : t -> int
val to_str : t -> string
val to_tup : t -> t array

val nth : t -> int -> t
(** [nth v i] is component [i] of tuple [v]. *)

val set_nth : t -> int -> t -> t
(** [set_nth v i x] is tuple [v] with component [i] replaced by [x]
    (functional update; the original is unchanged). *)

(** {1 Hash-consing}

    Memory cells store interned values so that equality (the [cas] hot
    path) and configuration fingerprinting become O(1) per cell.  The
    intern table is domain-local: within one domain, [intern] returns
    the same physical node for structurally equal inputs, so [==]
    certifies equality; across domains use {!hc_equal}, which falls
    back to a (hash-gated) structural comparison.  The cached digests
    [da]/[db] are computed with fixed seeds, hence identical for the
    same structural value in every domain. *)

type hc = private {
  node : t;  (** the underlying structural value *)
  h : int;  (** [hash node], cached *)
  da : int;  (** fixed-seed fingerprint half-digest A *)
  db : int;  (** fixed-seed fingerprint half-digest B *)
  bits : int;  (** [bits node], cached — space accounting without a walk *)
}

val intern : t -> hc
(** Canonical interned node for [v] in the calling domain.  O(1)
    expected; a hit costs one hash + one (physical-equality-biased)
    structural comparison.  Small immediates ([Unit], [Bot], booleans,
    [Int 0..255]) hit a preallocated table-free cache — no hashing, no
    allocation — and count as intern hits in {!intern_stats}. *)

val hc_equal : hc -> hc -> bool
(** Structural equality on interned nodes.  Same-domain nodes compare
    by pointer; the fallback compares cached hashes first, so a
    mismatch is almost always O(1) too. *)

val intern_stats : unit -> int * int
(** [(hits, misses)] of the calling domain's intern table since domain
    start (or the last {!intern_reset}). *)

val intern_reset : unit -> unit
(** Clear the calling domain's intern table and zero its counters.
    Existing [hc] nodes stay valid (they just stop being canonical), so
    this is only safe between explorations, e.g. to bound table growth
    in a long-lived process. *)
