(* Cells hold interned values ([Value.hc]) so that equality on the
   [cas] hot path and per-cell fingerprint folding are O(1).  All
   public read/write traffic stays in plain [Value.t]; interning is an
   internal representation choice. *)

type t = {
  mutable cells : Value.hc array;
  mutable inits : Value.hc array;
  mutable locs : Loc.t array;
  mutable max_bits : int array;
  mutable len : int;
  (* write journal: parallel stacks of (cell id, old contents, old
     max_bits), pushed by every mutation while [journal_on].  [rewind]
     pops back to a [mark] in O(writes-since-mark). *)
  mutable journal_on : bool;
  mutable j_ids : int array;
  mutable j_cells : Value.hc array;
  mutable j_bits : int array;
  mutable j_len : int;
  mutable rewound : int;  (** cumulative cells restored by [rewind] *)
  (* Incrementally maintained fingerprint accumulators (see the
     Fingerprints section below): XOR of per-cell terms over all cells
     ([fpf_*]) and over the shared cells only ([fps_*]).  Every cell
     mutation updates them in O(1), so the model checker's per-node
     fingerprint reads cost two loads instead of an O(cells) scan. *)
  mutable fpf_a : int;
  mutable fpf_b : int;
  mutable fps_a : int;
  mutable fps_b : int;
}

let initial_capacity = 64
let bot () = Value.intern Value.Bot

(* Fingerprint half seeds; the per-cell terms below are already keyed on
   the independent [da]/[db] digests cached at interning time, the seeds
   just separate the empty-memory digests of the two halves. *)
let seed_a = 0x2545F4914F6CDD1
let seed_b = 0x6A09E667F3BCC90

let create ?(capacity = initial_capacity) () =
  let capacity = max 1 capacity in
  let b = bot () in
  {
    cells = Array.make capacity b;
    inits = Array.make capacity b;
    locs = Array.make capacity (Loc.make ~id:(-1) ~name:"" ~kind:Loc.Shared);
    max_bits = Array.make capacity 0;
    len = 0;
    journal_on = false;
    j_ids = [||];
    j_cells = [||];
    j_bits = [||];
    j_len = 0;
    rewound = 0;
    fpf_a = seed_a;
    fpf_b = seed_b;
    fps_a = seed_a;
    fps_b = seed_b;
  }

let grow mem =
  let cap = Array.length mem.cells in
  let cap' = 2 * cap in
  let extend a fill =
    let b = Array.make cap' fill in
    Array.blit a 0 b 0 cap;
    b
  in
  let b = bot () in
  mem.cells <- extend mem.cells b;
  mem.inits <- extend mem.inits b;
  mem.locs <- extend mem.locs (Loc.make ~id:(-1) ~name:"" ~kind:Loc.Shared);
  mem.max_bits <- extend mem.max_bits 0

(* Per-cell fingerprint terms.  A configuration's digest is the XOR of
   [term_* id cell] over its cells (a Zobrist scheme): XOR is invertible,
   so a cell update adjusts the accumulators with the old and new terms
   in O(1), and a rewind restores them exactly by construction. *)
let term_a id (c : Value.hc) = Value.mix id c.Value.da
let term_b id (c : Value.hc) = Value.mix id c.Value.db

(* The one choke point through which every cell mutation goes: swaps the
   old contents' fingerprint terms for the new ones.  Does NOT journal —
   callers journal first when appropriate (rewind must not).

   Maintenance is gated on [journal_on]: it is the undo engine's
   signature, and that engine is exactly the caller whose hot loop
   reads a fingerprint at every node, where an O(1) accumulator read
   beats the O(cells) scan.  The replay engine re-executes whole
   decision prefixes per node, so per-write maintenance would cost it
   O(depth) where one scan per node is cheaper — with the gate off it
   keeps the scan (see the [live_] readers below).  [set_journal]
   recomputes the accumulators when journaling turns on. *)
let fp_set mem id (c' : Value.hc) =
  if mem.journal_on then begin
    let c = mem.cells.(id) in
    let da = term_a id c lxor term_a id c'
    and db = term_b id c lxor term_b id c' in
    mem.fpf_a <- mem.fpf_a lxor da;
    mem.fpf_b <- mem.fpf_b lxor db;
    if Loc.is_shared mem.locs.(id) then begin
      mem.fps_a <- mem.fps_a lxor da;
      mem.fps_b <- mem.fps_b lxor db
    end
  end;
  mem.cells.(id) <- c'

let alloc mem ~name ~kind init =
  if mem.len = Array.length mem.cells then grow mem;
  let id = mem.len in
  let loc = Loc.make ~id ~name ~kind in
  let init = Value.intern init in
  mem.cells.(id) <- init;
  mem.inits.(id) <- init;
  mem.locs.(id) <- loc;
  mem.max_bits.(id) <- init.Value.bits;
  mem.len <- id + 1;
  (* the new cell enters the fingerprint domain with its initial value *)
  let ta = term_a id init and tb = term_b id init in
  mem.fpf_a <- mem.fpf_a lxor ta;
  mem.fpf_b <- mem.fpf_b lxor tb;
  if Loc.is_shared loc then begin
    mem.fps_a <- mem.fps_a lxor ta;
    mem.fps_b <- mem.fps_b lxor tb
  end;
  loc

let check mem (loc : Loc.t) =
  if loc.Loc.id < 0 || loc.Loc.id >= mem.len then
    invalid_arg (Printf.sprintf "Mem: foreign location %s" loc.Loc.name)

let read mem (loc : Loc.t) =
  check mem loc;
  mem.cells.(loc.Loc.id).Value.node

(* ---- journal ---- *)

let grow_journal mem =
  let cap = Array.length mem.j_ids in
  let cap' = if cap = 0 then 256 else 2 * cap in
  let extend a fill =
    let b = Array.make cap' fill in
    Array.blit a 0 b 0 cap;
    b
  in
  mem.j_ids <- extend mem.j_ids 0;
  mem.j_cells <- extend mem.j_cells (bot ());
  mem.j_bits <- extend mem.j_bits 0

let journal mem id =
  if mem.journal_on then begin
    if mem.j_len = Array.length mem.j_ids then grow_journal mem;
    mem.j_ids.(mem.j_len) <- id;
    mem.j_cells.(mem.j_len) <- mem.cells.(id);
    mem.j_bits.(mem.j_len) <- mem.max_bits.(id);
    mem.j_len <- mem.j_len + 1
  end

(* Rebuild all four fingerprint accumulators from the current contents
   (the maintained values are only current while [journal_on]). *)
let recompute_fps mem =
  let fa = ref seed_a
  and fb = ref seed_b
  and sa = ref seed_a
  and sb = ref seed_b in
  for i = 0 to mem.len - 1 do
    let c = mem.cells.(i) in
    let ta = term_a i c and tb = term_b i c in
    fa := !fa lxor ta;
    fb := !fb lxor tb;
    if Loc.is_shared mem.locs.(i) then begin
      sa := !sa lxor ta;
      sb := !sb lxor tb
    end
  done;
  mem.fpf_a <- !fa;
  mem.fpf_b <- !fb;
  mem.fps_a <- !sa;
  mem.fps_b <- !sb

let set_journal mem on =
  let was_on = mem.journal_on in
  mem.journal_on <- on;
  if not on then mem.j_len <- 0
  else begin
    if not was_on then recompute_fps mem;
    if Array.length mem.j_ids = 0 then
      (* pre-size eagerly so the first writes of an undo exploration don't
         pay the 0 -> 256 growth inside the hot loop *)
      grow_journal mem
  end

let journaling mem = mem.journal_on
let journal_depth mem = mem.j_len
let rewound_cells mem = mem.rewound

type mark = { m_len : int; m_j : int }

let mark mem =
  if not mem.journal_on then invalid_arg "Mem.mark: journaling is off";
  { m_len = mem.len; m_j = mem.j_len }

(* Raw-coordinate rewind: [mark] is just the pair (len, j_len), and the
   explorer's pooled mark buffers store those two ints in mutable fields
   instead of allocating a [mark] record per node.  Same checks, same
   semantics. *)
let rewind_to mem ~len ~j =
  if not mem.journal_on then invalid_arg "Mem.rewind: journaling is off";
  if len <> mem.len then invalid_arg "Mem.rewind: allocations since mark";
  if j > mem.j_len then invalid_arg "Mem.rewind: stale mark";
  for k = mem.j_len - 1 downto j do
    let id = mem.j_ids.(k) in
    fp_set mem id mem.j_cells.(k);
    mem.max_bits.(id) <- mem.j_bits.(k)
  done;
  mem.rewound <- mem.rewound + (mem.j_len - j);
  mem.j_len <- j

let rewind mem m = rewind_to mem ~len:m.m_len ~j:m.m_j

(* ---- mutation ---- *)

(* Interned nodes carry their bit width ([Value.hc.bits]), so the
   high-water update is a cached compare, not a value walk. *)
let note_hc_bits mem id (c : Value.hc) =
  if c.Value.bits > mem.max_bits.(id) then mem.max_bits.(id) <- c.Value.bits

let write mem (loc : Loc.t) v =
  check mem loc;
  journal mem loc.Loc.id;
  let c = Value.intern v in
  fp_set mem loc.Loc.id c;
  note_hc_bits mem loc.Loc.id c

let cas mem (loc : Loc.t) expected desired =
  check mem loc;
  let cur = mem.cells.(loc.Loc.id) in
  (* structural compare against the live cell; interning [expected]
     (whose only use is this one comparison) would pollute the table and
     allocate on every failed cas *)
  if Value.equal cur.Value.node expected then (
    journal mem loc.Loc.id;
    let c = Value.intern desired in
    fp_set mem loc.Loc.id c;
    note_hc_bits mem loc.Loc.id c;
    true)
  else false

let faa mem (loc : Loc.t) delta =
  check mem loc;
  let old = Value.to_int mem.cells.(loc.Loc.id).Value.node in
  let c = Value.intern (Value.Int (old + delta)) in
  journal mem loc.Loc.id;
  fp_set mem loc.Loc.id c;
  note_hc_bits mem loc.Loc.id c;
  old

let reset mem =
  for i = 0 to mem.len - 1 do
    journal mem i;
    fp_set mem i mem.inits.(i);
    mem.max_bits.(i) <- mem.inits.(i).Value.bits
  done

let n_locs mem = mem.len

let loc_by_id mem id =
  if id < 0 || id >= mem.len then invalid_arg "Mem.loc_by_id: out of range";
  mem.locs.(id)

type snapshot = {
  s_cells : Value.hc array;
  s_locs : Loc.t array;
  s_max_bits : int array;
}

let snapshot mem =
  {
    s_cells = Array.sub mem.cells 0 mem.len;
    s_locs = Array.sub mem.locs 0 mem.len;
    s_max_bits = Array.sub mem.max_bits 0 mem.len;
  }

let snapshot_cells snap =
  Array.init (Array.length snap.s_cells) (fun i ->
      (snap.s_locs.(i), snap.s_cells.(i).Value.node))

let restore mem snap =
  if Array.length snap.s_cells <> mem.len then
    invalid_arg "Mem.restore: snapshot from a different allocation state";
  (* roll the high-water marks back too: a restore rewinds the whole
     store, and leaving [max_bits] at the post-rollback peak would make
     [max_shared_bits] over-report the Theorem 1 footprint.  While the
     journal is on, each changed cell is journaled so an enclosing
     [rewind] still sees a consistent log. *)
  if mem.journal_on then
    for i = 0 to mem.len - 1 do
      if
        (not (Value.hc_equal mem.cells.(i) snap.s_cells.(i)))
        || mem.max_bits.(i) <> snap.s_max_bits.(i)
      then begin
        journal mem i;
        fp_set mem i snap.s_cells.(i);
        mem.max_bits.(i) <- snap.s_max_bits.(i)
      end
    done
  else begin
    for i = 0 to mem.len - 1 do
      fp_set mem i snap.s_cells.(i)
    done;
    Array.blit snap.s_max_bits 0 mem.max_bits 0 mem.len
  end

let equal_shared a b =
  let n = Array.length a.s_cells in
  n = Array.length b.s_cells
  &&
  let rec go i =
    i >= n
    || ((not (Loc.is_shared a.s_locs.(i)))
        || Value.hc_equal a.s_cells.(i) b.s_cells.(i))
       && go (i + 1)
  in
  go 0

let hash_shared a =
  let h = ref 5381 in
  Array.iteri
    (fun i loc ->
      if Loc.is_shared loc then h := (!h * 1000003) lxor a.s_cells.(i).Value.h)
    a.s_locs;
  !h

(* The two fingerprint halves are Zobrist XORs of the [term_a]/[term_b]
   per-cell terms (see above).  The model checker treats a pair
   collision as "same configuration", so the halves must be wide and
   independent; Config_set's exact mode audits them.  Terms use the
   digests cached at interning time ([Value.hc.da]/[db]), so each cell
   costs O(1) regardless of value size — and the [live_] variants just
   read the accumulators the mutation path maintains. *)

let fingerprint_shared snap =
  let a = ref seed_a and b = ref seed_b in
  Array.iteri
    (fun i loc ->
      if Loc.is_shared loc then begin
        let c = snap.s_cells.(i) in
        a := !a lxor term_a i c;
        b := !b lxor term_b i c
      end)
    snap.s_locs;
  (!a, !b)

(* While journaling the accumulators are authoritative (maintained by
   [fp_set]); otherwise fold the terms directly — same values either
   way, one O(cells) scan per call. *)
let scan_shared_a mem =
  let a = ref seed_a in
  for i = 0 to mem.len - 1 do
    if Loc.is_shared mem.locs.(i) then a := !a lxor term_a i mem.cells.(i)
  done;
  !a

let scan_shared_b mem =
  let b = ref seed_b in
  for i = 0 to mem.len - 1 do
    if Loc.is_shared mem.locs.(i) then b := !b lxor term_b i mem.cells.(i)
  done;
  !b

let scan_full_a mem =
  let a = ref seed_a in
  for i = 0 to mem.len - 1 do
    a := !a lxor term_a i mem.cells.(i)
  done;
  !a

let scan_full_b mem =
  let b = ref seed_b in
  for i = 0 to mem.len - 1 do
    b := !b lxor term_b i mem.cells.(i)
  done;
  !b

(* Scalar accessors for the per-node hot paths, which would otherwise
   allocate a pair per call just to deconstruct it. *)
let live_shared_a mem = if mem.journal_on then mem.fps_a else scan_shared_a mem
let live_shared_b mem = if mem.journal_on then mem.fps_b else scan_shared_b mem
let live_full_a mem = if mem.journal_on then mem.fpf_a else scan_full_a mem
let live_full_b mem = if mem.journal_on then mem.fpf_b else scan_full_b mem
let live_fingerprint_shared mem =
  if mem.journal_on then (mem.fps_a, mem.fps_b)
  else begin
    let a = ref seed_a and b = ref seed_b in
    for i = 0 to mem.len - 1 do
      if Loc.is_shared mem.locs.(i) then begin
        let c = mem.cells.(i) in
        a := !a lxor term_a i c;
        b := !b lxor term_b i c
      end
    done;
    (!a, !b)
  end

let live_fingerprint_full mem =
  if mem.journal_on then (mem.fpf_a, mem.fpf_b)
  else begin
    let a = ref seed_a and b = ref seed_b in
    for i = 0 to mem.len - 1 do
      let c = mem.cells.(i) in
      a := !a lxor term_a i c;
      b := !b lxor term_b i c
    done;
    (!a, !b)
  end

let equal_full a b =
  let n = Array.length a.s_cells in
  n = Array.length b.s_cells
  &&
  let rec go i =
    i >= n || (Value.hc_equal a.s_cells.(i) b.s_cells.(i) && go (i + 1))
  in
  go 0

let pp_snapshot fmt snap =
  Array.iteri
    (fun i loc ->
      Format.fprintf fmt "%a = %a@." Loc.pp loc Value.pp
        snap.s_cells.(i).Value.node)
    snap.s_locs

let shared_bits mem =
  let total = ref 0 in
  for i = 0 to mem.len - 1 do
    if Loc.is_shared mem.locs.(i) then
      total := !total + Value.bits mem.cells.(i).Value.node
  done;
  !total

let max_shared_bits mem =
  let total = ref 0 in
  for i = 0 to mem.len - 1 do
    if Loc.is_shared mem.locs.(i) then total := !total + mem.max_bits.(i)
  done;
  !total

let max_bits_of mem (loc : Loc.t) =
  check mem loc;
  mem.max_bits.(loc.Loc.id)
