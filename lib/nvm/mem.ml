(* Cells hold interned values ([Value.hc]) so that equality on the
   [cas] hot path and per-cell fingerprint folding are O(1).  All
   public read/write traffic stays in plain [Value.t]; interning is an
   internal representation choice. *)

type t = {
  mutable cells : Value.hc array;
  mutable inits : Value.hc array;
  mutable locs : Loc.t array;
  mutable max_bits : int array;
  mutable len : int;
  (* write journal: parallel stacks of (cell id, old contents, old
     max_bits), pushed by every mutation while [journal_on].  [rewind]
     pops back to a [mark] in O(writes-since-mark). *)
  mutable journal_on : bool;
  mutable j_ids : int array;
  mutable j_cells : Value.hc array;
  mutable j_bits : int array;
  mutable j_len : int;
  mutable rewound : int;  (** cumulative cells restored by [rewind] *)
}

let initial_capacity = 64
let bot () = Value.intern Value.Bot

let create () =
  let b = bot () in
  {
    cells = Array.make initial_capacity b;
    inits = Array.make initial_capacity b;
    locs = Array.make initial_capacity (Loc.make ~id:(-1) ~name:"" ~kind:Loc.Shared);
    max_bits = Array.make initial_capacity 0;
    len = 0;
    journal_on = false;
    j_ids = [||];
    j_cells = [||];
    j_bits = [||];
    j_len = 0;
    rewound = 0;
  }

let grow mem =
  let cap = Array.length mem.cells in
  let cap' = 2 * cap in
  let extend a fill =
    let b = Array.make cap' fill in
    Array.blit a 0 b 0 cap;
    b
  in
  let b = bot () in
  mem.cells <- extend mem.cells b;
  mem.inits <- extend mem.inits b;
  mem.locs <- extend mem.locs (Loc.make ~id:(-1) ~name:"" ~kind:Loc.Shared);
  mem.max_bits <- extend mem.max_bits 0

let alloc mem ~name ~kind init =
  if mem.len = Array.length mem.cells then grow mem;
  let id = mem.len in
  let loc = Loc.make ~id ~name ~kind in
  let init = Value.intern init in
  mem.cells.(id) <- init;
  mem.inits.(id) <- init;
  mem.locs.(id) <- loc;
  mem.max_bits.(id) <- Value.bits init.Value.node;
  mem.len <- id + 1;
  loc

let check mem (loc : Loc.t) =
  if loc.Loc.id < 0 || loc.Loc.id >= mem.len then
    invalid_arg (Printf.sprintf "Mem: foreign location %s" loc.Loc.name)

let read mem (loc : Loc.t) =
  check mem loc;
  mem.cells.(loc.Loc.id).Value.node

(* ---- journal ---- *)

let grow_journal mem =
  let cap = Array.length mem.j_ids in
  let cap' = if cap = 0 then 256 else 2 * cap in
  let extend a fill =
    let b = Array.make cap' fill in
    Array.blit a 0 b 0 cap;
    b
  in
  mem.j_ids <- extend mem.j_ids 0;
  mem.j_cells <- extend mem.j_cells (bot ());
  mem.j_bits <- extend mem.j_bits 0

let journal mem id =
  if mem.journal_on then begin
    if mem.j_len = Array.length mem.j_ids then grow_journal mem;
    mem.j_ids.(mem.j_len) <- id;
    mem.j_cells.(mem.j_len) <- mem.cells.(id);
    mem.j_bits.(mem.j_len) <- mem.max_bits.(id);
    mem.j_len <- mem.j_len + 1
  end

let set_journal mem on =
  mem.journal_on <- on;
  if not on then mem.j_len <- 0

let journaling mem = mem.journal_on
let journal_depth mem = mem.j_len
let rewound_cells mem = mem.rewound

type mark = { m_len : int; m_j : int }

let mark mem =
  if not mem.journal_on then invalid_arg "Mem.mark: journaling is off";
  { m_len = mem.len; m_j = mem.j_len }

let rewind mem m =
  if not mem.journal_on then invalid_arg "Mem.rewind: journaling is off";
  if m.m_len <> mem.len then
    invalid_arg "Mem.rewind: allocations since mark";
  if m.m_j > mem.j_len then invalid_arg "Mem.rewind: stale mark";
  for k = mem.j_len - 1 downto m.m_j do
    let id = mem.j_ids.(k) in
    mem.cells.(id) <- mem.j_cells.(k);
    mem.max_bits.(id) <- mem.j_bits.(k)
  done;
  mem.rewound <- mem.rewound + (mem.j_len - m.m_j);
  mem.j_len <- m.m_j

(* ---- mutation ---- *)

let note_bits mem id v =
  let b = Value.bits v in
  if b > mem.max_bits.(id) then mem.max_bits.(id) <- b

let write mem (loc : Loc.t) v =
  check mem loc;
  journal mem loc.Loc.id;
  mem.cells.(loc.Loc.id) <- Value.intern v;
  note_bits mem loc.Loc.id v

let cas mem (loc : Loc.t) expected desired =
  check mem loc;
  let cur = mem.cells.(loc.Loc.id) in
  if Value.hc_equal cur (Value.intern expected) then (
    journal mem loc.Loc.id;
    mem.cells.(loc.Loc.id) <- Value.intern desired;
    note_bits mem loc.Loc.id desired;
    true)
  else false

let faa mem (loc : Loc.t) delta =
  check mem loc;
  let old = Value.to_int mem.cells.(loc.Loc.id).Value.node in
  let v = Value.Int (old + delta) in
  journal mem loc.Loc.id;
  mem.cells.(loc.Loc.id) <- Value.intern v;
  note_bits mem loc.Loc.id v;
  old

let reset mem =
  for i = 0 to mem.len - 1 do
    journal mem i;
    mem.cells.(i) <- mem.inits.(i);
    mem.max_bits.(i) <- Value.bits mem.inits.(i).Value.node
  done

let n_locs mem = mem.len

let loc_by_id mem id =
  if id < 0 || id >= mem.len then invalid_arg "Mem.loc_by_id: out of range";
  mem.locs.(id)

type snapshot = {
  s_cells : Value.hc array;
  s_locs : Loc.t array;
  s_max_bits : int array;
}

let snapshot mem =
  {
    s_cells = Array.sub mem.cells 0 mem.len;
    s_locs = Array.sub mem.locs 0 mem.len;
    s_max_bits = Array.sub mem.max_bits 0 mem.len;
  }

let restore mem snap =
  if Array.length snap.s_cells <> mem.len then
    invalid_arg "Mem.restore: snapshot from a different allocation state";
  (* roll the high-water marks back too: a restore rewinds the whole
     store, and leaving [max_bits] at the post-rollback peak would make
     [max_shared_bits] over-report the Theorem 1 footprint.  While the
     journal is on, each changed cell is journaled so an enclosing
     [rewind] still sees a consistent log. *)
  if mem.journal_on then
    for i = 0 to mem.len - 1 do
      if
        (not (Value.hc_equal mem.cells.(i) snap.s_cells.(i)))
        || mem.max_bits.(i) <> snap.s_max_bits.(i)
      then begin
        journal mem i;
        mem.cells.(i) <- snap.s_cells.(i);
        mem.max_bits.(i) <- snap.s_max_bits.(i)
      end
    done
  else begin
    Array.blit snap.s_cells 0 mem.cells 0 mem.len;
    Array.blit snap.s_max_bits 0 mem.max_bits 0 mem.len
  end

let equal_shared a b =
  let n = Array.length a.s_cells in
  n = Array.length b.s_cells
  &&
  let rec go i =
    i >= n
    || ((not (Loc.is_shared a.s_locs.(i)))
        || Value.hc_equal a.s_cells.(i) b.s_cells.(i))
       && go (i + 1)
  in
  go 0

let hash_shared a =
  let h = ref 5381 in
  Array.iteri
    (fun i loc ->
      if Loc.is_shared loc then h := (!h * 1000003) lxor a.s_cells.(i).Value.h)
    a.s_locs;
  !h

(* Two fingerprint halves chained from independent seeds.  The model
   checker treats a pair collision as "same configuration", so the halves
   must be wide and independent; Config_set's exact mode audits them.
   Per-cell folding uses the digests cached at interning time
   ([Value.hc.da]/[db]), so each cell costs O(1) regardless of value
   size. *)
let seed_a = 0x2545F4914F6CDD1
let seed_b = 0x6A09E667F3BCC90

let fingerprint_shared snap =
  let a = ref seed_a and b = ref seed_b in
  Array.iteri
    (fun i loc ->
      if Loc.is_shared loc then begin
        let c = snap.s_cells.(i) in
        a := Value.mix (Value.mix !a i) c.Value.da;
        b := Value.mix (Value.mix !b i) c.Value.db
      end)
    snap.s_locs;
  (!a, !b)

let live_fingerprint_shared mem =
  let a = ref seed_a and b = ref seed_b in
  for i = 0 to mem.len - 1 do
    if Loc.is_shared mem.locs.(i) then begin
      let c = mem.cells.(i) in
      a := Value.mix (Value.mix !a i) c.Value.da;
      b := Value.mix (Value.mix !b i) c.Value.db
    end
  done;
  (!a, !b)

let live_fingerprint_full mem =
  let a = ref seed_a and b = ref seed_b in
  for i = 0 to mem.len - 1 do
    let c = mem.cells.(i) in
    a := Value.mix (Value.mix !a i) c.Value.da;
    b := Value.mix (Value.mix !b i) c.Value.db
  done;
  (!a, !b)

let equal_full a b =
  let n = Array.length a.s_cells in
  n = Array.length b.s_cells
  &&
  let rec go i =
    i >= n || (Value.hc_equal a.s_cells.(i) b.s_cells.(i) && go (i + 1))
  in
  go 0

let pp_snapshot fmt snap =
  Array.iteri
    (fun i loc ->
      Format.fprintf fmt "%a = %a@." Loc.pp loc Value.pp
        snap.s_cells.(i).Value.node)
    snap.s_locs

let shared_bits mem =
  let total = ref 0 in
  for i = 0 to mem.len - 1 do
    if Loc.is_shared mem.locs.(i) then
      total := !total + Value.bits mem.cells.(i).Value.node
  done;
  !total

let max_shared_bits mem =
  let total = ref 0 in
  for i = 0 to mem.len - 1 do
    if Loc.is_shared mem.locs.(i) then total := !total + mem.max_bits.(i)
  done;
  !total

let max_bits_of mem (loc : Loc.t) =
  check mem loc;
  mem.max_bits.(loc.Loc.id)
