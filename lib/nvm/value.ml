type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Tup of t array
  | Bot

let rec equal a b =
  a == b
  ||
  match (a, b) with
  | Unit, Unit | Bot, Bot -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Str x, Str y -> String.equal x y
  | Tup x, Tup y ->
      let n = Array.length x in
      n = Array.length y
      &&
      let rec go i = i >= n || (equal x.(i) y.(i) && go (i + 1)) in
      go 0
  | (Unit | Bool _ | Int _ | Str _ | Tup _ | Bot), _ -> false

let tag = function
  | Unit -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Str _ -> 3
  | Tup _ -> 4
  | Bot -> 5

let rec compare a b =
  match (a, b) with
  | Unit, Unit | Bot, Bot -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Tup x, Tup y ->
      let lx = Array.length x and ly = Array.length y in
      let rec go i =
        if i >= lx && i >= ly then 0
        else if i >= lx then -1
        else if i >= ly then 1
        else
          let c = compare x.(i) y.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0
  | _, _ -> Int.compare (tag a) (tag b)

let rec hash v =
  match v with
  | Unit -> 17
  | Bot -> 31
  | Bool b -> if b then 83 else 97
  | Int n -> Hashtbl.hash n
  | Str s -> Hashtbl.hash s
  | Tup xs -> Array.fold_left (fun acc x -> (acc * 1000003) lxor hash x) 7919 xs

(* 63-bit avalanche combine (xor-multiply-shift, splitmix-style).  The
   model checker keys its visited-set on chains of [mix], so the mixer
   must spread single-bit input differences across the whole word. *)
let mix h x =
  let h = h lxor x in
  let h = h * 0x9E3779B97F4A7C1 in
  let h = h lxor (h lsr 29) in
  let h = h * 0xBF58476D1CE4E5B in
  h lxor (h lsr 32)

let rec hash_seeded seed v =
  match v with
  | Unit -> mix seed 17
  | Bot -> mix seed 31
  | Bool b -> mix seed (if b then 83 else 97)
  | Int n -> mix (mix seed 2) n
  | Str s -> mix (mix seed 3) (Hashtbl.hash s)
  | Tup xs -> Array.fold_left hash_seeded (mix seed 4099) xs

let rec pp fmt = function
  | Unit -> Format.fprintf fmt "()"
  | Bot -> Format.fprintf fmt "⊥"
  | Bool b -> Format.fprintf fmt "%b" b
  | Int n -> Format.fprintf fmt "%d" n
  | Str s -> Format.fprintf fmt "%S" s
  | Tup xs ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_array ~pp_sep:(fun f () -> Format.fprintf f ", ") pp)
        xs

let to_string v = Format.asprintf "%a" pp v

let int_bits n =
  let n = abs n in
  let rec go acc n = if n = 0 then acc else go (acc + 1) (n lsr 1) in
  max 1 (go 0 n)

let rec bits = function
  | Unit -> 0
  | Bot -> 1
  | Bool _ -> 1
  | Int n -> int_bits n
  | Str s -> 8 * String.length s
  | Tup xs -> Array.fold_left (fun acc x -> acc + bits x) 0 xs

let pair a b = Tup [| a; b |]
let triple a b c = Tup [| a; b; c |]
let bool_vec n = Tup (Array.make n (Bool false))

let type_error expected v =
  invalid_arg
    (Printf.sprintf "Value: expected %s, got %s" expected (to_string v))

let to_bool = function Bool b -> b | v -> type_error "bool" v
let to_int = function Int n -> n | v -> type_error "int" v
let to_str = function Str s -> s | v -> type_error "string" v
let to_tup = function Tup xs -> xs | v -> type_error "tuple" v

let nth v i =
  match v with
  | Tup xs when i >= 0 && i < Array.length xs -> xs.(i)
  | v -> type_error (Printf.sprintf "tuple with component %d" i) v

let set_nth v i x =
  match v with
  | Tup xs when i >= 0 && i < Array.length xs ->
      let ys = Array.copy xs in
      ys.(i) <- x;
      Tup ys
  | v -> type_error (Printf.sprintf "tuple with component %d" i) v

(* ------------------------------------------------------------------ *)
(* Hash-consing.

   The undo-engine's hot loop fingerprints whole configurations and
   compares cell contents on every [cas], so values that live in
   memory cells are interned: one canonical [hc] node per structural
   value (per domain), carrying its bucketing hash and the two
   fixed-seed fingerprint half-digests used by [Mem.fingerprint_*].
   Interning makes same-domain equality a pointer comparison and
   fingerprint folding a single table lookup per cell.

   Tables are domain-local ([Domain.DLS]): the parallel explorer's
   workers each intern into their own table, so no locking is needed.
   Consequently [==] on [hc] certifies equality only within a domain —
   cross-domain comparisons must fall back to [hc_equal], which is why
   it first compares the cached hashes.  The interned seeds are fixed
   (below) so the cached digests agree across domains. *)

type hc = { node : t; h : int; da : int; db : int; bits : int }

(* Distinct from Mem's chain seeds; only the per-value digests matter,
   the chain seeds stay in Mem. *)
let digest_seed_a = 0x71C94A2F3E609D1
let digest_seed_b = 0x2B992DDFA23249D

let mk_hc v h =
  {
    node = v;
    h;
    da = hash_seeded digest_seed_a v;
    db = hash_seeded digest_seed_b v;
    bits = bits v;
  }

(* Tiny immediate values dominate cell traffic (counters, toggles,
   process ids), so they get a table-free constant-time path: one
   preallocated node each, shared by every [intern] call on the domain.
   They are never entered in [tbl] and survive [intern_reset], which
   keeps them canonical for the domain's whole lifetime. *)
let small_int_cache_size = 256

type intern_state = {
  tbl : (int, hc list) Hashtbl.t;
  small_int : hc array;  (* [Int 0] .. [Int (small_int_cache_size - 1)] *)
  c_unit : hc;
  c_bot : hc;
  c_true : hc;
  c_false : hc;
  mutable hits : int;
  mutable misses : int;
}

let intern_key : intern_state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let mk v = mk_hc v (hash v) in
      {
        tbl = Hashtbl.create 8192;
        small_int =
          Array.init small_int_cache_size (fun i -> mk (Int i));
        c_unit = mk Unit;
        c_bot = mk Bot;
        c_true = mk (Bool true);
        c_false = mk (Bool false);
        hits = 0;
        misses = 0;
      })

let intern v =
  let st = Domain.DLS.get intern_key in
  match v with
  | Int n when n >= 0 && n < small_int_cache_size ->
      st.hits <- st.hits + 1;
      st.small_int.(n)
  | Unit ->
      st.hits <- st.hits + 1;
      st.c_unit
  | Bot ->
      st.hits <- st.hits + 1;
      st.c_bot
  | Bool b ->
      st.hits <- st.hits + 1;
      if b then st.c_true else st.c_false
  | _ ->
      let h = hash v in
      let bucket = try Hashtbl.find st.tbl h with Not_found -> [] in
      let rec find = function
        | [] ->
            st.misses <- st.misses + 1;
            let c = mk_hc v h in
            Hashtbl.replace st.tbl h (c :: bucket);
            c
        | c :: rest ->
            if equal c.node v then (st.hits <- st.hits + 1; c) else find rest
      in
      find bucket

let hc_equal a b = a == b || (a.h = b.h && equal a.node b.node)

let intern_stats () =
  let st = Domain.DLS.get intern_key in
  (st.hits, st.misses)

let intern_reset () =
  let st = Domain.DLS.get intern_key in
  Hashtbl.reset st.tbl;
  st.hits <- 0;
  st.misses <- 0
