(** Durable-linearizability + detectability checker.

    Given a crash-history recorded by the driver and a sequential
    specification, the checker searches for a linearization that
    witnesses correctness in the paper's sense:

    - every operation that completed normally, and every crashed operation
      whose recovery returned a response, must be linearized exactly once,
      within its real-time interval, with exactly the observed response
      (durable linearizability + the success half of detectability);
    - every crashed operation whose recovery returned the [fail] verdict
      must {e not} be linearized at all (the failure half of
      detectability: "the operation was not linearized");
    - operations still pending when the history ends may be linearized or
      not, with any specification-consistent response.

    Two engines implement the same judgment:

    - {!check}, the batch reference: a Wing–Gong style interleaving
      exploration over one whole history, with memoization on
      (set of linearized operations, abstract state) keyed on
      {!Nvm.Value.intern} fingerprints.  Exact, exponential in the worst
      case, O(whole history) even on success.
    - {!Session}, the incremental engine: events are pushed one at a
      time and the reachable Wing–Gong frontier is maintained as state,
      so a verdict after k new events costs O(k · frontier), and
      {!Session.mark}/{!Session.rewind} let a DFS (the model checker,
      the shrinker) reuse the frontier of a shared history prefix across
      all sibling leaves instead of restarting from the empty history.

    Both engines agree on every verdict, including violation messages
    (property-tested in [test/test_lin_check.ml]); they may differ in
    which witness linearization they return where several exist.
    Histories are no longer bounded by a word size: sets of more than
    {!word_ops} operations transparently switch to chunked {!Bitset}s. *)

type verdict =
  | Ok_linearizable of Spec.op list
      (** a witness linearization (operations in linearization order) *)
  | Violation of string  (** human-readable reason *)

val check : Spec.t -> Event.t list -> verdict
(** The batch reference engine. *)

val is_ok : verdict -> bool

val check_exn : Spec.t -> Event.t list -> unit
(** Raises [Failure] with the violation message and the pretty-printed
    history on a violation; for tests. *)

val word_ops : int
(** Histories of at most this many operation instances (62) run on the
    historical one-word bitmask fast path; longer histories use chunked
    bitsets.  No history is rejected for size. *)

type engine = [ `Batch | `Incremental ]

val engine_name : engine -> string
(** ["batch"] / ["incremental"] — the label used in metrics and JSON. *)

val check_with : engine -> Spec.t -> Event.t list -> verdict
(** [check_with `Batch] is {!check}; [check_with `Incremental] runs a
    fresh {!Session} over the whole history.  Same verdicts either
    way. *)

(** The incremental checker engine. *)
module Session : sig
  type t

  val create : Spec.t -> t
  (** A session over the empty history (verdict: linearizable). *)

  val push_event : t -> Event.t -> unit
  (** Append one event to the history and update the frontier.  A
      malformed event (duplicate invocation, outcome for an unknown
      operation, second outcome) does not raise: it latches the
      violation, exactly as {!check} reports it, and further pushes
      become no-ops until rewound past the offending event. *)

  val push_history : t -> Event.t list -> unit
  (** [push_event] for each event, oldest first. *)

  val verdict : t -> verdict
  (** Verdict for the history pushed so far.  O(frontier); on success
      the witness is read off the surviving configuration's parent
      chain.  Once a prefix is violating, every extension is too. *)

  type mark

  val mark : t -> mark
  (** O(1) checkpoint of the current history position. *)

  val rewind : t -> mark -> unit
  (** Pop events back to [mark].  Marks are positions and strictly
      LIFO, mirroring the [Nvm.Mem] journal contract: rewinding to a
      mark invalidates every mark taken after it, and rewinding to such
      a stale mark raises [Invalid_argument]. *)

  val events : t -> int
  (** Events currently in the history prefix. *)

  val frontier_size : t -> int
  (** Configurations currently in the frontier (0 iff violating). *)

  (** Monotone counters over the session's whole life — deliberately not
      rewound, for metrics. *)

  val peak_frontier : t -> int
  val events_pushed : t -> int
  val spec_steps : t -> int
end

val check_incremental : Spec.t -> Event.t list -> verdict
(** Fresh session, push the whole history, verdict. *)
