open Nvm

type verdict = Ok_linearizable of Spec.op list | Violation of string

let is_ok = function Ok_linearizable _ -> true | Violation _ -> false

let no_lin_msg =
  "no linearization satisfies durable linearizability + detectability"

(* What the history requires of one operation instance. *)
type kind =
  | Must of Value.t  (* must linearize with this response *)
  | Must_not  (* recovery said fail: must not linearize *)
  | May  (* pending at end of history: free choice *)

type op_record = {
  uid : int;
  op : Spec.op;
  inv : int;  (* history index of the invocation *)
  out : int option;  (* history index of the outcome event, if any *)
  kind : kind;
}

exception Malformed of string

let malformed fmt = Format.kasprintf (fun s -> raise (Malformed s)) fmt

let analyze events =
  let tbl : (int, op_record) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iteri
    (fun i event ->
      match (event : Event.t) with
      | Crash -> ()
      | Inv { uid; op; _ } ->
          if Hashtbl.mem tbl uid then malformed "duplicate invocation #%d" uid;
          Hashtbl.add tbl uid { uid; op; inv = i; out = None; kind = May };
          order := uid :: !order
      | Ret { uid; v; _ } | Rec_ret { uid; v; _ } -> (
          match Hashtbl.find_opt tbl uid with
          | None -> malformed "response for unknown operation #%d" uid
          | Some r ->
              if r.out <> None then malformed "two outcomes for #%d" uid;
              Hashtbl.replace tbl uid { r with out = Some i; kind = Must v })
      | Rec_fail { uid; _ } -> (
          match Hashtbl.find_opt tbl uid with
          | None -> malformed "fail verdict for unknown operation #%d" uid
          | Some r ->
              if r.out <> None then malformed "two outcomes for #%d" uid;
              Hashtbl.replace tbl uid { r with out = Some i; kind = Must_not }))
    events;
  List.rev_map (Hashtbl.find tbl) !order

(* ------------------------------------------------------------------ *)
(* Batch reference checker: Wing–Gong DFS over (linearized set, abstract
   state), generic in the linearized-set representation so histories of
   up to 62 operations keep the historical one-word bitmask while longer
   ones fall back to chunked {!Bitset}s.

   DFS node identity: which ops are linearized plus the {e interned}
   abstract state.  Interning ([Value.intern]) gives every state an O(1)
   cached fingerprint, so the visited table neither truncates deep
   states (the polymorphic [Hashtbl.hash] only samples a bounded prefix
   of the structure — on large abstract states, e.g. long queues, every
   node landed in a handful of buckets) nor rehashes them per probe.
   Ops with a [fail] verdict are excluded up-front (they may never
   linearize), and ops pending at the end of the history are simply
   never required — they have no outcome event, so they block nobody. *)

module type MASK = sig
  type t

  val empty : t
  val set : t -> int -> t
  val mem : t -> int -> bool
  val union : t -> t -> t
  val subset : t -> t -> bool
  val equal : t -> t -> bool
  val hash : t -> int
end

module Int_mask : MASK with type t = int = struct
  type t = int

  let empty = 0
  let set m i = m lor (1 lsl i)
  let mem m i = m land (1 lsl i) <> 0
  let union = ( lor )
  let subset a b = a land lnot b = 0
  let equal = Int.equal
  let hash m = m
end

module Dfs (M : MASK) = struct
  module Node_tbl = Hashtbl.Make (struct
    type t = M.t * Value.hc

    let equal (la, sa) (lb, sb) = M.equal la lb && Value.hc_equal sa sb
    let hash (l, s) = Value.mix (M.hash l) s.Value.da
  end)

  let run spec (records : op_record array) =
    let n = Array.length records in
    (* ops that must never linearize are discarded from the start *)
    let excluded = ref M.empty in
    Array.iteri
      (fun i r -> if r.kind = Must_not then excluded := M.set !excluded i)
      records;
    let must = ref M.empty in
    Array.iteri
      (fun i r ->
        match r.kind with
        | Must _ -> must := M.set !must i
        | Must_not | May -> ())
      records;
    (* preds.(i): set of ops whose outcome precedes i's invocation *)
    let preds = Array.make n M.empty in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        match records.(j).out with
        | Some out_j when j <> i && out_j < records.(i).inv ->
            preds.(i) <- M.set preds.(i) j
        | Some _ | None -> ()
      done
    done;
    let excluded = !excluded in
    let must = !must in
    let visited = Node_tbl.create 4096 in
    let witness = ref [] in
    (* DFS: returns true iff all Must ops can be linearized from here *)
    let rec go lin (state : Value.hc) =
      if M.subset must lin then true
      else
        let node = (lin, state) in
        if Node_tbl.mem visited node then false
        else begin
          Node_tbl.add visited node ();
          let settled = M.union lin excluded in
          let found = ref false in
          let i = ref 0 in
          while (not !found) && !i < n do
            (* candidate: unsettled, and every real-time predecessor is
               settled (linearized or excluded) *)
            if (not (M.mem settled !i)) && M.subset preds.(!i) settled
            then begin
              let r = records.(!i) in
              let state', resp = spec.Spec.step state.Value.node r.op in
              let resp_ok =
                match r.kind with
                | Must v -> Value.equal resp v
                | May -> true
                | Must_not -> assert false
              in
              if resp_ok && go (M.set lin !i) (Value.intern state') then begin
                witness := r.op :: !witness;
                found := true
              end
            end;
            incr i
          done;
          !found
        end
    in
    if go M.empty (Value.intern spec.Spec.init) then Ok_linearizable !witness
    else Violation no_lin_msg
end

(* Histories up to [word_ops] operations run on the one-word fast path. *)
let word_ops = Bitset.word_bits

module Dfs_small = Dfs (Int_mask)
module Dfs_big = Dfs (Bitset)

let check spec events =
  match analyze events with
  | exception Malformed msg -> Violation ("malformed history: " ^ msg)
  | records ->
      let records = Array.of_list records in
      if Array.length records <= word_ops then Dfs_small.run spec records
      else Dfs_big.run spec records

let check_exn spec events =
  match check spec events with
  | Ok_linearizable _ -> ()
  | Violation msg ->
      failwith
        (Format.asprintf "%s@.history:@.%a" msg Event.pp_history events)

(* ------------------------------------------------------------------ *)
(* Incremental engine.

   A session consumes the history one event at a time and maintains the
   {e frontier}: the set of Wing–Gong configurations consistent with the
   prefix so far, eagerly closed under speculatively linearizing any
   currently-pending operation.  A configuration is

     (linearized set, abstract state, promises)

   where [promises] records, for every linearized op whose outcome event
   has not arrived yet, the response the specification produced when it
   was linearized — the outcome event then either confirms the promise
   (the configuration survives, the promise is discharged) or refutes it
   (the configuration dies).  Configurations are deduplicated on all
   three components, keyed on interned-value fingerprints.

   Event rules, each preserving the closure invariant ("for every
   configuration in the frontier and every pending op not in it, the
   successor configuration is in the frontier too"):

   - [Inv]: register the op as pending, re-close the frontier (worklist
     over the newly reachable configurations);
   - [Ret]/[Rec_ret v]: keep exactly the configurations that linearized
     the op with promised response [v], discharging the promise.
     Survivors of a filter stay closed: a successor of a survivor
     contains the same (op, promise) pair, so it survives too;
   - [Rec_fail]: keep exactly the configurations that did {e not}
     linearize the op; it leaves the pending set, so the closure never
     resurrects it;
   - [Crash]: no constraint (crashes act through the Rec_* events).

   The verdict is O(frontier): nonempty means linearizable (a witness
   is read off the chosen configuration's parent chain), empty means no
   linearization of the {e prefix} exists — and since events only ever
   filter, none will exist for any extension either.

   The frontier for a shared prefix is reused across all siblings via
   [mark]/[rewind]: every event pushes one frame holding the previous
   frontier/pending/op bookkeeping (immutable spines, so a frame is a
   few words), and rewinding pops frames.  Marks are positions and
   strictly LIFO, mirroring the [Nvm.Mem] journal contract: rewinding
   to a mark invalidates every mark taken after it, and using such a
   stale mark raises [Invalid_argument]. *)

type engine = [ `Batch | `Incremental ]

let engine_name = function `Batch -> "batch" | `Incremental -> "incremental"

module Session = struct
  type fnode = {
    f_lin : Bitset.t;
    f_state : Value.hc;
    f_promises : (int * Value.hc) list;  (* ascending op index *)
    f_parent : fnode option;
    f_opidx : int;  (* op linearized to create this node; -1 at the root *)
  }

  let rec promises_equal a b =
    match (a, b) with
    | [], [] -> true
    | (i, p) :: a', (j, q) :: b' ->
        i = j && Value.hc_equal p q && promises_equal a' b'
    | _ -> false

  let rec promise_add ps i p =
    match ps with
    | [] -> [ (i, p) ]
    | ((j, _) as hd) :: tl ->
        if i < j then (i, p) :: ps else hd :: promise_add tl i p

  let rec promise_find ps i =
    match ps with
    | [] -> None
    | (j, p) :: tl -> if i = j then Some p else promise_find tl i

  let rec promise_remove ps i =
    match ps with
    | [] -> []
    | ((j, _) as hd) :: tl ->
        if i = j then tl else hd :: promise_remove tl i

  module Ftbl = Hashtbl.Make (struct
    type t = fnode

    let equal a b =
      Bitset.equal a.f_lin b.f_lin
      && Value.hc_equal a.f_state b.f_state
      && promises_equal a.f_promises b.f_promises

    let hash nd =
      List.fold_left
        (fun h (i, p) -> Value.mix h (Value.mix i p.Value.da))
        (Value.mix (Bitset.hash nd.f_lin) nd.f_state.Value.da)
        nd.f_promises
  end)

  type outcome_state = O_pending | O_done | O_failed

  type opinfo = {
    oi_uid : int;
    oi_op : Spec.op;
    mutable oi_state : outcome_state;
  }

  (* Everything one [push_event] changed, for [rewind].  The frontier and
     pending lists are immutable cons spines, so storing the previous
     heads IS the undo record. *)
  type frame = {
    fr_frontier : fnode list;
    fr_n_frontier : int;
    fr_pending : int list;
    fr_new_op : bool;  (* the event registered a new op instance *)
    fr_outcome : (int * outcome_state) option;  (* previous op outcome *)
    fr_malformed : string option;
  }

  type t = {
    spec : Spec.t;
    mutable frontier : fnode list;  (* deduped, deterministic order *)
    mutable n_frontier : int;
    mutable pending : int list;  (* invoked, outcome unseen; ascending *)
    mutable ops : opinfo array;  (* indices 0 .. n_ops-1 live *)
    mutable n_ops : int;
    uid_tbl : (int, int) Hashtbl.t;  (* uid -> op index *)
    mutable malformed : string option;  (* sticky first malformation *)
    mutable frames : frame list;  (* newest-first, one per event *)
    mutable n_events : int;
    (* monotone statistics — deliberately not rewound *)
    mutable pushed_total : int;
    mutable steps_total : int;
    mutable peak_frontier : int;
  }

  let create spec =
    let root =
      {
        f_lin = Bitset.empty;
        f_state = Value.intern spec.Spec.init;
        f_promises = [];
        f_parent = None;
        f_opidx = -1;
      }
    in
    {
      spec;
      frontier = [ root ];
      n_frontier = 1;
      pending = [];
      ops = [||];
      n_ops = 0;
      uid_tbl = Hashtbl.create 32;
      malformed = None;
      frames = [];
      n_events = 0;
      pushed_total = 0;
      steps_total = 0;
      peak_frontier = 1;
    }

  let add_op t uid op =
    if t.n_ops = Array.length t.ops then begin
      let cap = max 16 (2 * Array.length t.ops) in
      let b =
        Array.init cap (fun i ->
            if i < t.n_ops then t.ops.(i)
            else { oi_uid = -1; oi_op = op; oi_state = O_pending })
      in
      t.ops <- b
    end;
    t.ops.(t.n_ops) <- { oi_uid = uid; oi_op = op; oi_state = O_pending };
    Hashtbl.replace t.uid_tbl uid t.n_ops;
    t.n_ops <- t.n_ops + 1

  (* Worklist closure after op [fresh] became pending.  The frontier was
     closed under the previous pending set, so only configurations whose
     linearized set contains [fresh] can be new: existing configurations
     try [fresh] alone, newly created ones try every pending op.  FIFO
     processing and ascending [pending] make the resulting frontier
     order (old nodes first, then discovery order) deterministic. *)
  let close t ~fresh =
    match t.frontier with
    | [] -> ()
    | frontier ->
        let tbl = Ftbl.create (4 * t.n_frontier) in
        List.iter (fun nd -> Ftbl.replace tbl nd ()) frontier;
        let q = Queue.create () in
        let added = ref [] in
        let n_added = ref 0 in
        let extend nd i =
          if not (Bitset.mem nd.f_lin i) then begin
            let oi = t.ops.(i) in
            let st', resp = t.spec.Spec.step nd.f_state.Value.node oi.oi_op in
            t.steps_total <- t.steps_total + 1;
            let nd' =
              {
                f_lin = Bitset.set nd.f_lin i;
                f_state = Value.intern st';
                f_promises = promise_add nd.f_promises i (Value.intern resp);
                f_parent = Some nd;
                f_opidx = i;
              }
            in
            if not (Ftbl.mem tbl nd') then begin
              Ftbl.add tbl nd' ();
              Queue.add nd' q;
              added := nd' :: !added;
              incr n_added
            end
          end
        in
        List.iter (fun nd -> extend nd fresh) frontier;
        while not (Queue.is_empty q) do
          let nd = Queue.pop q in
          List.iter (extend nd) t.pending
        done;
        if !n_added > 0 then begin
          t.frontier <- frontier @ List.rev !added;
          t.n_frontier <- t.n_frontier + !n_added;
          if t.n_frontier > t.peak_frontier then
            t.peak_frontier <- t.n_frontier
        end

  let set_frontier t frontier n =
    t.frontier <- frontier;
    t.n_frontier <- n

  let push_event t (e : Event.t) =
    let fr =
      {
        fr_frontier = t.frontier;
        fr_n_frontier = t.n_frontier;
        fr_pending = t.pending;
        fr_new_op = false;
        fr_outcome = None;
        fr_malformed = t.malformed;
      }
    in
    t.pushed_total <- t.pushed_total + 1;
    t.n_events <- t.n_events + 1;
    let push fr = t.frames <- fr :: t.frames in
    let fail fmt =
      Format.kasprintf
        (fun m ->
          t.malformed <- Some m;
          push fr)
        fmt
    in
    match t.malformed with
    | Some _ -> push fr  (* sticky: the first malformation wins *)
    | None -> (
        match e with
        | Crash -> push fr
        | Inv { uid; op; _ } ->
            if Hashtbl.mem t.uid_tbl uid then
              fail "duplicate invocation #%d" uid
            else begin
              add_op t uid op;
              t.pending <- t.pending @ [ t.n_ops - 1 ];
              close t ~fresh:(t.n_ops - 1);
              push { fr with fr_new_op = true }
            end
        | Ret { uid; v; _ } | Rec_ret { uid; v; _ } -> (
            match Hashtbl.find_opt t.uid_tbl uid with
            | None -> fail "response for unknown operation #%d" uid
            | Some idx ->
                let oi = t.ops.(idx) in
                if oi.oi_state <> O_pending then fail "two outcomes for #%d" uid
                else begin
                  oi.oi_state <- O_done;
                  t.pending <- List.filter (fun j -> j <> idx) t.pending;
                  let vh = Value.intern v in
                  let n = ref 0 in
                  let survivors =
                    List.filter_map
                      (fun nd ->
                        if Bitset.mem nd.f_lin idx then
                          match promise_find nd.f_promises idx with
                          | Some p when Value.hc_equal p vh ->
                              incr n;
                              Some
                                {
                                  nd with
                                  f_promises = promise_remove nd.f_promises idx;
                                }
                          | Some _ -> None
                          | None ->
                              (* linearized while pending ⇒ promised *)
                              assert false
                        else None)
                      t.frontier
                  in
                  set_frontier t survivors !n;
                  push { fr with fr_outcome = Some (idx, O_pending) }
                end)
        | Rec_fail { uid; _ } -> (
            match Hashtbl.find_opt t.uid_tbl uid with
            | None -> fail "fail verdict for unknown operation #%d" uid
            | Some idx ->
                let oi = t.ops.(idx) in
                if oi.oi_state <> O_pending then fail "two outcomes for #%d" uid
                else begin
                  oi.oi_state <- O_failed;
                  t.pending <- List.filter (fun j -> j <> idx) t.pending;
                  let n = ref 0 in
                  let survivors =
                    List.filter
                      (fun nd ->
                        let keep = not (Bitset.mem nd.f_lin idx) in
                        if keep then incr n;
                        keep)
                      t.frontier
                  in
                  set_frontier t survivors !n;
                  push { fr with fr_outcome = Some (idx, O_pending) }
                end))

  let push_history t events = List.iter (push_event t) events

  let verdict t =
    match t.malformed with
    | Some m -> Violation ("malformed history: " ^ m)
    | None -> (
        match t.frontier with
        | [] -> Violation no_lin_msg
        | nd :: _ ->
            let rec collect nd acc =
              match nd.f_parent with
              | None -> acc
              | Some p -> collect p (t.ops.(nd.f_opidx).oi_op :: acc)
            in
            Ok_linearizable (collect nd []))

  type mark = { mk_n_events : int }

  let mark t = { mk_n_events = t.n_events }

  let rewind t m =
    if m.mk_n_events > t.n_events then
      invalid_arg
        "Lin_check.Session.rewind: stale mark (marks must be used in LIFO \
         order)";
    while t.n_events > m.mk_n_events do
      match t.frames with
      | [] -> assert false  (* n_events = List.length frames *)
      | fr :: rest ->
          t.frames <- rest;
          t.n_events <- t.n_events - 1;
          t.frontier <- fr.fr_frontier;
          t.n_frontier <- fr.fr_n_frontier;
          t.pending <- fr.fr_pending;
          t.malformed <- fr.fr_malformed;
          (match fr.fr_outcome with
          | Some (idx, prev) -> t.ops.(idx).oi_state <- prev
          | None -> ());
          if fr.fr_new_op then begin
            t.n_ops <- t.n_ops - 1;
            Hashtbl.remove t.uid_tbl t.ops.(t.n_ops).oi_uid
          end
    done

  let events t = t.n_events
  let frontier_size t = t.n_frontier
  let peak_frontier t = t.peak_frontier
  let events_pushed t = t.pushed_total
  let spec_steps t = t.steps_total
end

let check_incremental spec events =
  let s = Session.create spec in
  Session.push_history s events;
  Session.verdict s

let check_with engine spec events =
  match engine with
  | `Batch -> check spec events
  | `Incremental -> check_incremental spec events
