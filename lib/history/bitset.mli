(** Functional bitsets over operation indices.

    The linearizability checker historically packed the set of linearized
    operations into one [int], capping histories at 62 operations.  This
    module keeps that representation as the fast path ([Small], a single
    immediate word, all the hot operations a couple of machine
    instructions) and adds a chunked slow path ([Big], 62 bits per array
    word) that kicks in only for indices ≥ 62 — long torture histories
    are no longer rejected, short ones pay nothing new.

    Values are immutable; [set]/[union] return fresh sets.  [Small w] and
    a zero-padded [Big] denoting the same set are {e equal} and hash
    identically — observations are representation-blind. *)

type t = private
  | Small of int  (** indices 0..61 packed into one word *)
  | Big of int array  (** word [k] holds indices [62k .. 62k+61] *)

val word_bits : int
(** Bits per word (62 — keeps every word a non-negative OCaml int). *)

val empty : t
val is_empty : t -> bool

val mem : t -> int -> bool
(** Raises [Invalid_argument] on a negative index. *)

val set : t -> int -> t
(** [set t i] is [t] with index [i] added (functional; [t] unchanged). *)

val union : t -> t -> t
(** Allocation-free when both operands are [Small] and one already
    contains the other (the physical operand is returned); otherwise a
    [Small]/[Small] union stays [Small]. *)

val inter : t -> t -> t
(** Set intersection, with the same [Small]-in/[Small]-out guarantee and
    operand-reuse fast path as {!union}. *)

val subset : t -> t -> bool
(** [subset a b] iff every index of [a] is in [b].  [Small]/[Small] is a
    single word test. *)

val equal : t -> t -> bool
(** [Small]/[Small] is one integer compare (the representation invariant
    — a [Big] is never demoted and [Small]/[Big] compare through
    zero-padding — keeps this sound). *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold f t acc] folds [f] over the member indices in ascending order.
    The [Small] path is a single-word bit scan that allocates nothing
    itself. *)

val hash : t -> int
(** Mixes every nonzero word with its position ({!Nvm.Value.mix}), so
    hash quality does not degrade with set width. *)

val cardinal : t -> int
