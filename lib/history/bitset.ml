open Nvm

(* 62 bits per word keeps every word non-negative (OCaml ints are 63-bit)
   and makes [Small] bit-compatible with the historical one-word bitmask
   of the checker, whose op indices were bounded by 62. *)
let word_bits = 62

type t =
  | Small of int  (* indices 0..61 — the overwhelmingly common case *)
  | Big of int array  (* word [k] holds indices [k*62 .. k*62+61] *)

let empty = Small 0

(* [Small w] and [Big [| w; 0; ... |]] denote the same set: a [Big] is
   never demoted, so every observation below must be length-blind. *)
let nwords = function Small _ -> 1 | Big a -> Array.length a

let word t i =
  match t with
  | Small w -> if i = 0 then w else 0
  | Big a -> if i < Array.length a then a.(i) else 0

let is_empty t =
  match t with
  | Small w -> w = 0
  | Big a -> Array.for_all (fun w -> w = 0) a

let mem t i =
  if i < 0 then invalid_arg "Bitset.mem: negative index";
  word t (i / word_bits) land (1 lsl (i mod word_bits)) <> 0

let set t i =
  if i < 0 then invalid_arg "Bitset.set: negative index";
  match t with
  | Small w when i < word_bits -> Small (w lor (1 lsl i))
  | _ ->
      let wi = i / word_bits in
      let n = max (nwords t) (wi + 1) in
      let a = Array.init n (word t) in
      a.(wi) <- a.(wi) lor (1 lsl (i mod word_bits));
      Big a

(* Every binary operation below dispatches on [Small, Small] first: both
   operands in one word means pure integer arithmetic — no array, no
   closure.  [union]/[inter] additionally return a physical operand
   whenever the result equals it (the common case for the checker's
   monotone lin-sets), so the fast path allocates nothing at all; only a
   genuinely new [Small] word pays its 2-word constructor block. *)

let union a b =
  match (a, b) with
  | Small x, Small y ->
      if x lor y = x then a else if x lor y = y then b else Small (x lor y)
  | _ ->
      let n = max (nwords a) (nwords b) in
      Big (Array.init n (fun i -> word a i lor word b i))

let inter a b =
  match (a, b) with
  | Small x, Small y ->
      if x land y = x then a else if x land y = y then b else Small (x land y)
  | _ ->
      (* intersection never needs more words than the narrower side, but
         keeping [nwords a] words stays length-blind like [union] *)
      let n = max (nwords a) (nwords b) in
      Big (Array.init n (fun i -> word a i land word b i))

let subset a b =
  match (a, b) with
  | Small x, Small y -> x land lnot y = 0
  | _ ->
      let n = max (nwords a) (nwords b) in
      let rec go i =
        i >= n || (word a i land lnot (word b i) = 0 && go (i + 1))
      in
      go 0

let equal a b =
  match (a, b) with
  | Small x, Small y -> x = y
  | _ ->
      let n = max (nwords a) (nwords b) in
      let rec go i = i >= n || (word a i = word b i && go (i + 1)) in
      go 0

(* [fold f t acc] visits member indices in ascending order.  The Small
   path is a single-word bit scan: no array access, no allocation beyond
   whatever [f] itself does.  [fold_word] and [ilog2] are top-level and
   take [f] as a parameter precisely so that path builds no closure and
   no ref cells (a local [let fold_word = ...] capturing [f] costs a
   heap block per call without flambda). *)
let rec ilog2 i b = if b = 1 then i else ilog2 (i + 1) (b lsr 1)

let rec fold_word f base w acc =
  if w = 0 then acc
  else
    let bit = w land -w in
    fold_word f base (w land (w - 1)) (f (base + ilog2 0 bit) acc)

let fold f t acc =
  match t with
  | Small w -> fold_word f 0 w acc
  | Big a ->
      let n = Array.length a in
      let rec go k acc =
        if k >= n then acc
        else
          let w = a.(k) in
          go (k + 1)
            (if w = 0 then acc else fold_word f (k * word_bits) w acc)
      in
      go 0 acc

(* Representation-independent: trailing zero words contribute nothing, a
   nonzero word contributes (index, word), so [Small w] and any
   zero-padded [Big] of the same set hash identically. *)
let hash t =
  match t with
  | Small w -> if w = 0 then 0 else Value.mix 0 w
  | Big a ->
      let h = ref 0 in
      Array.iteri (fun i w -> if w <> 0 then h := Value.mix !h (Value.mix i w)) a;
      !h

let cardinal t =
  let pop w =
    let rec go acc w = if w = 0 then acc else go (acc + 1) (w land (w - 1)) in
    go 0 w
  in
  match t with
  | Small w -> pop w
  | Big a -> Array.fold_left (fun acc w -> acc + pop w) 0 a
