open History
open Sched

(** The sharded, deterministic crash-torture engine.

    A torture {e campaign} runs [trials] independent seeded executions of
    one object under random schedules and random crash injection, checks
    every history for durable linearizability + detectability, and merges
    everything into one structured {!report}: verdict counts, a
    crash-point histogram, recovery-verdict counts, step and
    [max_shared_bits] distributions, throughput, and — when a trial
    fails — the first failing trial's schedule, minimised with
    {!Modelcheck.Shrink}.

    {2 Determinism contract}

    Trial [i] of a campaign with root seed [r] {e always} runs on the
    child generator [Dtc_util.Prng.stream r ~index:i], computed in O(1)
    from [(r, i)] alone.  Shards own disjoint trial-index sets and every
    trial builds its own machine, so no state crosses trials; the merge
    folds per-trial records in trial-index order.  Hence the merged
    report — every field except the [timing] block — is a pure function
    of [(spec, root_seed, trials)]: bit-identical for any [domains],
    including 1.  {!to_json} with [~timing:false] renders exactly the
    deterministic fields, which is what the determinism regression test
    and the bench baseline comparison rely on.

    The full JSON schema is documented field-by-field in
    [docs/TORTURE.md]. *)

type spec = {
  label : string;  (** object / campaign name, e.g. ["dcas"] *)
  mk : unit -> Runtime.Machine.t * Obj_inst.t;
      (** fresh machine + instance per trial *)
  workloads_of_seed : int -> Spec.op list array;
      (** per-trial workload from the trial's derived seed *)
  policy : Session.policy;
  crash_prob : float;  (** per-step crash probability *)
  max_crashes : int;  (** crash budget per trial *)
  max_steps : int;  (** step budget per trial; exceeding it is [incomplete] *)
  lin_engine : Lin_check.engine;
      (** checker engine for per-trial verdicts; both engines agree on
          every verdict, so the report is identical either way *)
}

val default_spec_of :
  ?policy:Session.policy ->
  ?crash_prob:float ->
  ?max_crashes:int ->
  ?max_steps:int ->
  ?lin_engine:Lin_check.engine ->
  label:string ->
  mk:(unit -> Runtime.Machine.t * Obj_inst.t) ->
  workloads_of_seed:(int -> Spec.op list array) ->
  unit ->
  spec
(** Spec with the E6 torture defaults: [Retry], crash probability 0.05,
    at most 2 crashes, 50_000 steps, incremental checker. *)

type dist = {
  d_min : int;
  d_max : int;
  d_mean : float;
  d_total : int;
}
(** Distribution summary of a per-trial integer measure (all zero when
    [trials = 0]). *)

type failure = {
  trial : int;  (** lowest failing trial index *)
  seed : int;  (** the trial's derived workload seed *)
  msg : string;  (** checker verdict or escaped exception message *)
  schedule : Modelcheck.Explore.decision list;
      (** the full decision trace of the failing trial, oldest first *)
  minimised : Modelcheck.Explore.decision list option;
      (** 1-minimal prefix from {!Modelcheck.Shrink.minimise} ([None] if
          the failure does not reproduce under tolerant replay, or
          shrinking was disabled) *)
  shrink_attempts : int;  (** replays the minimiser performed *)
}

type report = {
  label : string;
  root_seed : int;
  trials : int;
  policy : Session.policy;
  crash_prob : float;
  max_crashes : int;
  max_steps : int;
  linearized : int;  (** trials whose history checked OK *)
  not_linearized : int;  (** trials with a checker violation or anomaly *)
  incomplete : int;  (** trials cut by the step budget (verdict OK) *)
  crashes_injected : int;  (** total crash events across all trials *)
  crash_hist : (int * int) list;
      (** crash-point histogram: [(bucket_lo, count)], ascending, bucket
          width {!crash_bucket}; a crash at global step [s] lands in the
          bucket [s / crash_bucket * crash_bucket] *)
  rec_returned : int;
      (** recovery verdicts "was linearized, here is the response"
          ([Event.Rec_ret]) across all trials *)
  rec_failed : int;
      (** recovery [fail] verdicts ([Event.Rec_fail]) across all trials *)
  steps : dist;  (** per-trial primitive-step counts *)
  max_shared_bits : dist;
      (** per-trial shared-NVM high-water marks ({!Nvm.Mem.max_shared_bits}) *)
  first_failure : failure option;
  elapsed_s : float;  (** wall-clock of the trial phase (shrinking excluded) *)
  trials_per_sec : float;
  domains_used : int;
}

val crash_bucket : int
(** Width of the crash-point histogram buckets (16 steps). *)

val run :
  ?domains:int -> ?root_seed:int -> ?trials:int -> ?shrink:bool -> spec -> report
(** Run a campaign.  [domains] (default 1) shards the trial indices
    round-robin over that many OCaml domains; [shrink] (default [true])
    minimises the first failing trial's schedule after the merge.
    Defaults: [root_seed = 1], [trials = 200]. *)

val to_json : ?timing:bool -> report -> string
(** Render the report as the [detectable-torture/v1] JSON document.
    [~timing:false] (default [true]) omits the [timing] block, leaving
    exactly the fields the determinism contract covers. *)

val pp : Format.formatter -> report -> unit
(** Human-readable multi-line summary. *)
