open History
open Sched

(** The sharded, deterministic, fault-model-aware crash-torture engine.

    A torture {e campaign} runs [trials] independent seeded executions of
    one object under random schedules and random crash injection — with
    the crash's NVM write-back behaviour drawn from a configurable
    {!Nvm.Fault_model.t} — checks every history for durable
    linearizability + detectability, and merges everything into one
    structured {!report}: verdict counts, a crash-point histogram,
    recovery-verdict counts, step and [max_shared_bits] distributions,
    throughput, and — when a trial fails — the first failing trial's
    schedule, minimised with {!Modelcheck.Shrink} under the trial's
    exact fault stream.

    {2 Determinism contract}

    Trial [i] of a campaign with root seed [r] {e always} runs on the
    child generator [Dtc_util.Prng.stream r ~index:i], computed in O(1)
    from [(r, i)] alone; the trial's fault stream is seeded from that
    same generator, and each crash's write-back keys on the crash index
    within the trial.  Shards own disjoint trial-index sets and every
    trial builds its own machine, so no state crosses trials; the merge
    folds per-trial records in trial-index order.  Hence the merged
    report — every field except the [timing] block — is a pure function
    of [(spec, root_seed, trials)]: bit-identical for any [domains],
    including 1, and for any interruption/resume split.  {!to_json} with
    [~timing:false] renders exactly the deterministic fields, which is
    what the determinism regression tests and the bench baseline
    comparison rely on.

    {2 Containment}

    The engine survives the object under test: a raise out of object
    code becomes that trial's [engine_fault] verdict (message +
    backtrace, campaign continues), a spinning operation or recovery is
    cut by the [watchdog] step budget into a [budget_exhausted] verdict,
    and a shard whose domain dies has its trial range re-run on the
    joining domain from the same seed stream (reported as
    [shards_rescued] in the timing block).

    {2 Checkpointing}

    With [~checkpoint:path] the campaign journals one JSONL line per
    completed trial (schema [detectable-torture-checkpoint/v1]: a header
    echoing the campaign parameters, then per-trial records).  With
    [~resume:true] an existing journal's completed trials are loaded and
    only the missing indices run; the merged report is byte-identical to
    an uninterrupted campaign's.  The journal validates the header
    against the current parameters and rejects mismatches.

    The full JSON schemas are documented field-by-field in
    [docs/TORTURE.md]. *)

type spec = {
  label : string;  (** object / campaign name, e.g. ["dcas"] *)
  mk : unit -> Runtime.Machine.t * Obj_inst.t;
      (** fresh machine + instance per trial *)
  workloads_of_seed : int -> Spec.op list array;
      (** per-trial workload from the trial's derived seed *)
  policy : Session.policy;
  crash_prob : float;  (** per-step crash probability *)
  max_crashes : int;  (** crash budget per trial *)
  max_steps : int;  (** step budget per trial; exceeding it is [incomplete] *)
  lin_engine : Lin_check.engine;
      (** checker engine for per-trial verdicts; both engines agree on
          every verdict, so the report is identical either way *)
  fault : Nvm.Fault_model.t;
      (** what a crash does to dirty cache lines (shared-cache model);
          [Atomic] reproduces the historical engine draw-for-draw *)
  watchdog : int;
      (** per-operation step budget ({!Sched.Driver.run}'s [watchdog]):
          a single operation/recovery exceeding it turns the trial into
          a [budget_exhausted] verdict instead of spinning to
          [max_steps] *)
}

val default_spec_of :
  ?policy:Session.policy ->
  ?crash_prob:float ->
  ?max_crashes:int ->
  ?max_steps:int ->
  ?lin_engine:Lin_check.engine ->
  ?fault:Nvm.Fault_model.t ->
  ?watchdog:int ->
  label:string ->
  mk:(unit -> Runtime.Machine.t * Obj_inst.t) ->
  workloads_of_seed:(int -> Spec.op list array) ->
  unit ->
  spec
(** Spec with the E6 torture defaults: [Retry], crash probability 0.05,
    at most 2 crashes, 50_000 steps, incremental checker, [Atomic]
    fault model, watchdog 10_000. *)

type dist = {
  d_min : int;
  d_max : int;
  d_mean : float;
  d_total : int;
}
(** Distribution summary of a per-trial integer measure (all zero when
    [trials = 0]). *)

type failure = {
  trial : int;  (** lowest failing trial index *)
  seed : int;  (** the trial's derived workload seed *)
  msg : string;  (** checker verdict or escaped exception message *)
  schedule : Modelcheck.Explore.decision list;
      (** the full decision trace of the failing trial, oldest first *)
  minimised : Modelcheck.Explore.decision list option;
      (** 1-minimal prefix from {!Modelcheck.Shrink.minimise}, replayed
          under the trial's exact fault stream ([None] if the failure
          does not reproduce under tolerant replay, or shrinking was
          disabled) *)
  shrink_attempts : int;  (** replays the minimiser performed *)
}

type engine_fault = {
  ef_trial : int;  (** lowest engine-faulting trial index *)
  ef_seed : int;  (** that trial's derived workload seed *)
  ef_msg : string;  (** exception text, plus backtrace when recorded *)
}

type report = {
  label : string;
  root_seed : int;
  trials : int;
  policy : Session.policy;
  crash_prob : float;
  max_crashes : int;
  max_steps : int;
  fault : Nvm.Fault_model.t;
  watchdog : int;
  linearized : int;  (** trials whose history checked OK *)
  not_linearized : int;  (** trials with a checker violation or anomaly *)
  incomplete : int;  (** trials cut by the step budget (verdict OK) *)
  budget_exhausted : int;
      (** trials cut by the per-operation watchdog — a runaway
          operation/recovery, distinct from a merely short [max_steps] *)
  engine_faults : int;
      (** trials whose object code raised an exception other than the
          [Invalid_argument]/[Failure] correctness convention; contained
          per-trial, the campaign completes *)
  crashes_injected : int;  (** total crash events across all trials *)
  crash_hist : (int * int) list;
      (** crash-point histogram: [(bucket_lo, count)], ascending, bucket
          width {!crash_bucket}; a crash at global step [s] lands in the
          bucket [s / crash_bucket * crash_bucket] *)
  rec_returned : int;
      (** recovery verdicts "was linearized, here is the response"
          ([Event.Rec_ret]) across all trials *)
  rec_failed : int;
      (** recovery [fail] verdicts ([Event.Rec_fail]) across all trials *)
  steps : dist;  (** per-trial primitive-step counts *)
  max_shared_bits : dist;
      (** per-trial shared-NVM high-water marks ({!Nvm.Mem.max_shared_bits}) *)
  first_failure : failure option;
  first_engine_fault : engine_fault option;
  elapsed_s : float;  (** wall-clock of the trial phase (shrinking excluded) *)
  trials_per_sec : float;
  domains_used : int;
  shards_rescued : int;
      (** shard domains that died and had their range re-run on the
          joining domain (0 in a healthy campaign) *)
  alloc_minor_words : float;
      (** words allocated on the minor heaps of the trial loops, summed
          over worker domains ({!Dtc_util.Alloc_stats}); measured around
          each worker's whole trial range, so the per-trial machine and
          session construction is included, the merge/shrink phases are
          not *)
  alloc_promoted_words : float;
  alloc_minor_collections : int;
  bytes_per_trial : float;
      (** [Alloc_stats.allocated_bytes / trials executed] — trials
          preloaded from a resumed checkpoint are excluded from the
          denominator since they never ran *)
}

val crash_bucket : int
(** Width of the crash-point histogram buckets (16 steps). *)

val run :
  ?domains:int ->
  ?root_seed:int ->
  ?trials:int ->
  ?shrink:bool ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?gc:Dtc_util.Gc_tune.t ->
  spec ->
  report
(** Run a campaign.  [domains] (default 1) shards the trial indices
    round-robin over that many OCaml domains; [shrink] (default [true])
    minimises the first failing trial's schedule after the merge.
    [checkpoint] journals completed trials to that path as they finish;
    [resume] (default [false], requires [checkpoint]) first loads the
    journal's completed trials and runs only the missing indices —
    producing a report byte-identical ({!to_json} [~timing:false]) to an
    uninterrupted campaign.  Raises [Invalid_argument] if the journal
    was written by a campaign with different parameters.
    [gc] (default {!Dtc_util.Gc_tune.none}: parameters untouched) is
    applied inside every worker domain for the duration of its trial
    loop — GC tuning can only change timing, never a verdict, so the
    determinism contract is unaffected.
    Each worker reuses one {!Sched.Session.scratch} across its whole
    trial range and meters its own allocation; the report's
    [alloc_*]/[bytes_per_trial] fields are the per-domain sums.
    Defaults: [root_seed = 1], [trials = 200]. *)

val to_json : ?timing:bool -> report -> string
(** Render the report as the [detectable-torture/v3] JSON document (v2
    plus the [timing.alloc] block).  [~timing:false] (default [true])
    omits the [timing] block, leaving exactly the fields the determinism
    contract covers. *)

val pp : Format.formatter -> report -> unit
(** Human-readable multi-line summary. *)
