open History
open Sched

(** The sharded, deterministic, fault-model-aware crash-torture engine.

    A torture {e campaign} runs [trials] independent seeded executions of
    one object under random schedules and random crash injection — with
    the crash's NVM write-back behaviour drawn from a configurable
    {!Nvm.Fault_model.t} — checks every history for durable
    linearizability + detectability, and merges everything into one
    structured {!report}: verdict counts, a crash-point histogram,
    recovery-verdict counts, step and [max_shared_bits] distributions,
    throughput, and — when a trial fails — the first failing trial's
    schedule, minimised with {!Modelcheck.Shrink} under the trial's
    exact fault stream.

    {2 Determinism contract}

    Trial [i] of a campaign with root seed [r] {e always} runs on the
    child generator [Dtc_util.Prng.stream r ~index:i], computed in O(1)
    from [(r, i)] alone; the trial's fault stream is seeded from that
    same generator, and each crash's write-back keys on the crash index
    within the trial.  Shards own disjoint trial-index sets and every
    trial builds its own machine, so no state crosses trials; the merge
    folds per-trial records in trial-index order.  Hence the merged
    report — every field except the [timing] block — is a pure function
    of [(spec, root_seed, trials)]: bit-identical for any [domains],
    including 1, for any interruption/resume split, and for any
    process-level supervision schedule ({!Campaign}).  {!to_json} with
    [~timing:false] renders exactly the deterministic fields, which is
    what the determinism regression tests and the bench baseline
    comparison rely on.

    {2 Containment}

    The engine survives the object under test: a raise out of object
    code becomes that trial's [engine_fault] verdict (message +
    backtrace, campaign continues), a spinning operation or recovery is
    cut by the [watchdog] step budget into a [budget_exhausted] verdict,
    and a shard whose domain dies has its trial range re-run on the
    joining domain from the same seed stream (reported as
    [shards_rescued] in the timing block).

    {2 Checkpointing}

    With [~checkpoint:path] the campaign journals one JSONL line per
    completed trial (schema [detectable-torture-checkpoint/v2]: a header
    echoing the campaign parameters, then per-trial records, optionally
    interleaved with supervisor lifecycle event lines; v1 journals — the
    same format without event lines — are still readable).  With
    [~resume:true] an existing journal's completed trials are loaded and
    only the missing indices run; the merged report is byte-identical to
    an uninterrupted campaign's.  The journal validates the header
    against the current parameters and rejects mismatches; duplicate
    trial records are deduplicated when identical and rejected (naming
    the offending lines) when they conflict, so overlapping shard ranges
    can never silently double-count a trial.

    The full JSON schemas are documented field-by-field in
    [docs/TORTURE.md]. *)

type spec = {
  label : string;  (** object / campaign name, e.g. ["dcas"] *)
  mk : unit -> Runtime.Machine.t * Obj_inst.t;
      (** fresh machine + instance per trial *)
  workloads_of_seed : int -> Spec.op list array;
      (** per-trial workload from the trial's derived seed *)
  policy : Session.policy;
  crash_prob : float;  (** per-step crash probability *)
  max_crashes : int;  (** crash budget per trial *)
  max_steps : int;  (** step budget per trial; exceeding it is [incomplete] *)
  lin_engine : Lin_check.engine;
      (** checker engine for per-trial verdicts; both engines agree on
          every verdict, so the report is identical either way *)
  fault : Nvm.Fault_model.t;
      (** what a crash does to dirty cache lines (shared-cache model);
          [Atomic] reproduces the historical engine draw-for-draw *)
  watchdog : int;
      (** per-operation step budget ({!Sched.Driver.run}'s [watchdog]):
          a single operation/recovery exceeding it turns the trial into
          a [budget_exhausted] verdict instead of spinning to
          [max_steps] *)
}

val default_spec_of :
  ?policy:Session.policy ->
  ?crash_prob:float ->
  ?max_crashes:int ->
  ?max_steps:int ->
  ?lin_engine:Lin_check.engine ->
  ?fault:Nvm.Fault_model.t ->
  ?watchdog:int ->
  label:string ->
  mk:(unit -> Runtime.Machine.t * Obj_inst.t) ->
  workloads_of_seed:(int -> Spec.op list array) ->
  unit ->
  spec
(** Spec with the E6 torture defaults: [Retry], crash probability 0.05,
    at most 2 crashes, 50_000 steps, incremental checker, [Atomic]
    fault model, watchdog 10_000. *)

type dist = {
  d_min : int;
  d_max : int;
  d_mean : float;
  d_total : int;
}
(** Distribution summary of a per-trial integer measure (all zero when
    [trials = 0]). *)

type failure = {
  trial : int;  (** lowest failing trial index *)
  seed : int;  (** the trial's derived workload seed *)
  msg : string;  (** checker verdict or escaped exception message *)
  schedule : Modelcheck.Explore.decision list;
      (** the full decision trace of the failing trial, oldest first *)
  minimised : Modelcheck.Explore.decision list option;
      (** 1-minimal prefix from {!Modelcheck.Shrink.minimise}, replayed
          under the trial's exact fault stream ([None] if the failure
          does not reproduce under tolerant replay, or shrinking was
          disabled) *)
  shrink_attempts : int;  (** replays the minimiser performed *)
}

type engine_fault = {
  ef_trial : int;  (** lowest engine-faulting trial index *)
  ef_seed : int;  (** that trial's derived workload seed *)
  ef_msg : string;  (** exception text, plus backtrace when recorded *)
}

type report = {
  label : string;
  root_seed : int;
  trials : int;
  policy : Session.policy;
  crash_prob : float;
  max_crashes : int;
  max_steps : int;
  fault : Nvm.Fault_model.t;
  watchdog : int;
  linearized : int;  (** trials whose history checked OK *)
  not_linearized : int;  (** trials with a checker violation or anomaly *)
  incomplete : int;  (** trials cut by the step budget (verdict OK) *)
  budget_exhausted : int;
      (** trials cut by the per-operation watchdog — a runaway
          operation/recovery, distinct from a merely short [max_steps] *)
  engine_faults : int;
      (** trials whose object code raised an exception other than the
          [Invalid_argument]/[Failure] correctness convention; contained
          per-trial, the campaign completes *)
  crashes_injected : int;  (** total crash events across all trials *)
  crash_hist : (int * int) list;
      (** crash-point histogram: [(bucket_lo, count)], ascending, bucket
          width {!crash_bucket}; a crash at global step [s] lands in the
          bucket [s / crash_bucket * crash_bucket] *)
  rec_returned : int;
      (** recovery verdicts "was linearized, here is the response"
          ([Event.Rec_ret]) across all trials *)
  rec_failed : int;
      (** recovery [fail] verdicts ([Event.Rec_fail]) across all trials *)
  steps : dist;  (** per-trial primitive-step counts *)
  max_shared_bits : dist;
      (** per-trial shared-NVM high-water marks ({!Nvm.Mem.max_shared_bits}) *)
  first_failure : failure option;
  first_engine_fault : engine_fault option;
  elapsed_s : float;  (** wall-clock of the trial phase (shrinking excluded) *)
  trials_per_sec : float;
  domains_used : int;
  shards_rescued : int;
      (** shard domains that died and had their range re-run on the
          joining domain (0 in a healthy campaign) *)
  alloc_minor_words : float;
      (** words allocated on the minor heaps of the trial loops, summed
          over worker domains ({!Dtc_util.Alloc_stats}); measured around
          each worker's whole trial range, so the per-trial machine and
          session construction is included, the merge/shrink phases are
          not *)
  alloc_promoted_words : float;
  alloc_minor_collections : int;
  bytes_per_trial : float;
      (** [Alloc_stats.allocated_bytes / trials executed] — trials
          preloaded from a resumed checkpoint are excluded from the
          denominator since they never ran *)
}

val crash_bucket : int
(** Width of the crash-point histogram buckets (16 steps). *)

(** {2 Per-trial interface}

    These are the building blocks {!run} composes, exposed so external
    schedulers — most importantly the multi-process {!Campaign}
    supervisor — can run, serialise and merge trials themselves while
    keeping the determinism contract. *)

type verdict =
  | V_ok
  | V_violation of string
  | V_incomplete
  | V_budget
  | V_engine_fault of string

type trial = {
  t_seed : int;  (** derived workload seed *)
  t_fault_seed : int;  (** seed of the trial's dedicated fault stream *)
  t_steps : int;
  t_crashes : int;
  t_crash_steps : int list;  (** ascending *)
  t_rec_returned : int;
  t_rec_failed : int;
  t_bits : int;
  t_verdict : verdict;
  t_trace : Modelcheck.Explore.decision list;  (** oldest first *)
}

val run_trial :
  spec -> scratch:Session.scratch -> root:int -> index:int -> trial
(** Run trial [index] of the campaign seeded by [root].  A pure function
    of [(spec, root, index)]; [scratch] is reusable across calls. *)

val merge :
  spec -> root_seed:int -> trials:int -> shrink:bool -> trial array -> report
(** Fold the per-trial records (element [i] = trial [i]) into a report,
    shrinking the first failure when [shrink].  The timing-block fields
    ([elapsed_s], [trials_per_sec], [domains_used], [shards_rescued],
    [alloc_*], [bytes_per_trial]) are zeroed; callers that measured them
    record-update the result. *)

(** {2 Checkpoint journal} *)

val checkpoint_schema : string
(** Schema written to fresh journals ([detectable-torture-checkpoint/v2]). *)

val header_line : spec -> root_seed:int -> trials:int -> string
val trial_line : int -> trial -> string

val trial_of_json : Tiny_json.t -> int * trial
(** Inverse of {!trial_line} ∘ [Tiny_json.parse]; raises on records that
    are not trial lines. *)

val read_checkpoint :
  string -> spec -> root_seed:int -> trials:int -> (int * trial) list
(** Completed trials recorded in a (possibly interrupted) journal, in
    file order with duplicates removed.  Accepts v1 and v2 headers;
    skips lifecycle event lines (objects with an ["event"] key);
    tolerates one torn {e trailing} line (a writer died mid-write).
    Raises [Invalid_argument] naming the offending line(s) when the
    header parameters mismatch, a non-trailing line is unreadable, a
    trial index is out of range, or two lines record {e different}
    results for the same trial (overlapping shard ranges) — identical
    duplicates are deduplicated silently, so replayed writes stay
    idempotent. *)

module Journal : sig
  type t
  (** An append-only JSONL checkpoint stream.  Thread-safe; every line
      is flushed as written, so a crash loses at most the line in
      flight. *)

  val create : path:string -> resume:bool -> spec -> root_seed:int ->
    trials:int -> t
  (** Fresh journals ([resume = false], or the path does not exist) are
      truncated and start with {!header_line}.  Resumed journals are
      opened for append after truncating any torn trailing line, so the
      next write always starts at a line boundary. *)

  val write : t -> string -> unit
  (** Append one line (the newline is added). *)

  val close : t -> unit
end

(** {2 Campaign driver} *)

exception Interrupted of { completed : int; total : int }
(** Raised by {!run} (and by {!Campaign.run}) when [should_stop] turned
    true before every trial completed.  All completed trials are already
    journaled and an ["interrupted"] event line has been flushed, so a
    later [~resume:true] run finishes the campaign byte-identically. *)

val run :
  ?domains:int ->
  ?root_seed:int ->
  ?trials:int ->
  ?shrink:bool ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?gc:Dtc_util.Gc_tune.t ->
  ?should_stop:(unit -> bool) ->
  spec ->
  report
(** Run a campaign.  [domains] (default 1) shards the trial indices
    round-robin over that many OCaml domains; [shrink] (default [true])
    minimises the first failing trial's schedule after the merge.
    [checkpoint] journals completed trials to that path as they finish;
    [resume] (default [false], requires [checkpoint]) first loads the
    journal's completed trials and runs only the missing indices —
    producing a report byte-identical ({!to_json} [~timing:false]) to an
    uninterrupted campaign.  Raises [Invalid_argument] if the journal
    was written by a campaign with different parameters.
    [gc] (default {!Dtc_util.Gc_tune.none}: parameters untouched) is
    applied inside every worker domain for the duration of its trial
    loop — GC tuning can only change timing, never a verdict, so the
    determinism contract is unaffected.
    [should_stop] (default [fun () -> false]) is polled between trials
    on every worker domain (it must therefore be thread-safe — an
    [Atomic.t] flag flipped by a signal handler is the intended use);
    once it turns true the campaign stops issuing trials and raises
    {!Interrupted} after journaling what completed.
    Each worker reuses one {!Sched.Session.scratch} across its whole
    trial range and meters its own allocation; the report's
    [alloc_*]/[bytes_per_trial] fields are the per-domain sums.
    Defaults: [root_seed = 1], [trials = 200]. *)

(** {2 Supervision metadata}

    Process-supervision counters rendered into the report's
    [timing.supervision] block by campaign runs ({!Campaign.run} fills
    them; plain {!run} reports, and the [~timing:false] rendering, use
    the all-zero {!no_supervision}).  They live in the timing block
    because — unlike every other report field — they depend on the
    failure schedule, not on [(spec, root_seed, trials)]. *)

type supervision = {
  s_workers_spawned : int;  (** worker processes forked, incl. respawns *)
  s_worker_deaths : int;  (** workers that exited before finishing *)
  s_worker_hangs : int;  (** workers killed after a heartbeat timeout *)
  s_rescues : int;  (** range reassignments after a death/hang *)
  s_retries : int;  (** respawns of a previously-failed range *)
  s_degradations : int;  (** parallelism halvings after budget exhaustion *)
  s_inproc_trials : int;  (** trials run in-process as the final fallback *)
  s_chaos_kill : float;  (** injected kill probability (0 = no chaos) *)
  s_chaos_hang : float;  (** injected hang probability *)
  s_chaos_seed : int;  (** chaos plan seed *)
}

val no_supervision : supervision

(** {2 Rendering} *)

val to_json : ?timing:bool -> ?supervision:supervision -> report -> string
(** Render the report as the [detectable-torture/v4] JSON document (v3
    plus the [timing.supervision] block).  [~timing:false] (default
    [true]) omits the [timing] block, leaving exactly the fields the
    determinism contract covers; [supervision] (default
    {!no_supervision}) fills [timing.supervision]. *)

val pp_report :
  ?timing:bool ->
  ?supervision:supervision ->
  unit ->
  Format.formatter ->
  report ->
  unit
(** Human-readable multi-line summary.  [~timing:false] omits the
    throughput/alloc/supervision lines, leaving exactly the
    deterministic fields (the text analogue of
    {!to_json}[ ~timing:false]). *)

val pp : Format.formatter -> report -> unit
(** [pp_report ()] — the historical full rendering. *)
