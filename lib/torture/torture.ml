open History
open Sched

type spec = {
  label : string;
  mk : unit -> Runtime.Machine.t * Obj_inst.t;
  workloads_of_seed : int -> Spec.op list array;
  policy : Session.policy;
  crash_prob : float;
  max_crashes : int;
  max_steps : int;
  lin_engine : Lin_check.engine;
}

let default_spec_of ?(policy = Session.Retry) ?(crash_prob = 0.05)
    ?(max_crashes = 2) ?(max_steps = 50_000)
    ?(lin_engine = (`Incremental : Lin_check.engine)) ~label ~mk
    ~workloads_of_seed () =
  {
    label;
    mk;
    workloads_of_seed;
    policy;
    crash_prob;
    max_crashes;
    max_steps;
    lin_engine;
  }

type dist = { d_min : int; d_max : int; d_mean : float; d_total : int }

type failure = {
  trial : int;
  seed : int;
  msg : string;
  schedule : Modelcheck.Explore.decision list;
  minimised : Modelcheck.Explore.decision list option;
  shrink_attempts : int;
}

type report = {
  label : string;
  root_seed : int;
  trials : int;
  policy : Session.policy;
  crash_prob : float;
  max_crashes : int;
  max_steps : int;
  linearized : int;
  not_linearized : int;
  incomplete : int;
  crashes_injected : int;
  crash_hist : (int * int) list;
  rec_returned : int;
  rec_failed : int;
  steps : dist;
  max_shared_bits : dist;
  first_failure : failure option;
  elapsed_s : float;
  trials_per_sec : float;
  domains_used : int;
}

let crash_bucket = 16

(* ------------------------------------------------------------------ *)
(* one trial *)

type trial = {
  t_seed : int;  (* derived workload seed *)
  t_steps : int;
  t_crashes : int;
  t_crash_steps : int list;  (* ascending *)
  t_rec_returned : int;
  t_rec_failed : int;
  t_bits : int;
  t_incomplete : bool;
  t_violation : string option;
  t_trace : Modelcheck.Explore.decision list;  (* oldest first *)
}

(* Everything random in a trial — workload, schedule, crash points —
   derives from [Prng.stream root ~index], so the trial is a pure
   function of (spec, root, index) no matter which domain runs it. *)
let run_trial spec ~root ~index =
  let prng = Dtc_util.Prng.stream root ~index in
  let wseed =
    Int64.to_int (Int64.shift_right_logical (Dtc_util.Prng.next_int64 prng) 2)
  in
  let workloads = spec.workloads_of_seed wseed in
  let machine, inst = spec.mk () in
  (* record the decision sequence (for Shrink) and the crash points (for
     the histogram) by wrapping the schedule and the crash plan *)
  let trace = ref [] in
  let crash_steps = ref [] in
  let random_sched = Schedule.random (Dtc_util.Prng.split prng) in
  let sched =
    {
      Schedule.choose =
        (fun ~runnable ~step ->
          let pid = random_sched.Schedule.choose ~runnable ~step in
          trace := Modelcheck.Explore.Step pid :: !trace;
          pid);
    }
  in
  let base_plan =
    Crash_plan.random ~max_crashes:spec.max_crashes ~prob:spec.crash_prob
      (Dtc_util.Prng.split prng)
  in
  let plan =
    {
      base_plan with
      Crash_plan.should_crash =
        (fun ~step ->
          let fire = base_plan.Crash_plan.should_crash ~step in
          if fire then begin
            crash_steps := step :: !crash_steps;
            trace := Modelcheck.Explore.Crash :: !trace
          end;
          fire);
    }
  in
  let cfg =
    {
      Driver.schedule = sched;
      crash_plan = plan;
      policy = spec.policy;
      max_steps = spec.max_steps;
    }
  in
  let finish ~steps ~crashes ~rec_returned ~rec_failed ~incomplete ~violation =
    {
      t_seed = wseed;
      t_steps = steps;
      t_crashes = crashes;
      t_crash_steps = List.rev !crash_steps;
      t_rec_returned = rec_returned;
      t_rec_failed = rec_failed;
      t_bits = Nvm.Mem.max_shared_bits (Runtime.Machine.mem machine);
      t_incomplete = incomplete;
      t_violation = violation;
      t_trace = List.rev !trace;
    }
  in
  match Driver.run machine inst ~workloads cfg with
  | res ->
      let rec_returned, rec_failed =
        List.fold_left
          (fun (r, f) -> function
            | Event.Rec_ret _ -> (r + 1, f)
            | Event.Rec_fail _ -> (r, f + 1)
            | _ -> (r, f))
          (0, 0) res.Driver.history
      in
      let violation =
        match Driver.check ~lin_engine:spec.lin_engine inst res with
        | Lin_check.Ok_linearizable _ -> None
        | Lin_check.Violation msg -> Some msg
      in
      finish ~steps:res.Driver.steps ~crashes:res.Driver.crashes ~rec_returned
        ~rec_failed ~incomplete:res.Driver.incomplete ~violation
  | exception (Invalid_argument msg | Failure msg) ->
      (* an algorithm choked on inconsistent NVM state (possible for the
         deliberately broken variants): a correctness violation, not a
         harness failure — same convention as E6 *)
      finish
        ~steps:
          (List.length
             (List.filter
                (function Modelcheck.Explore.Step _ -> true | _ -> false)
                !trace))
        ~crashes:(List.length !crash_steps)
        ~rec_returned:0 ~rec_failed:0 ~incomplete:false
        ~violation:(Some ("exception: " ^ msg))

(* ------------------------------------------------------------------ *)
(* campaign = shard + merge *)

let dist_of xs =
  match xs with
  | [] -> { d_min = 0; d_max = 0; d_mean = 0.0; d_total = 0 }
  | x :: rest ->
      let mn, mx, total =
        List.fold_left
          (fun (mn, mx, total) v -> (min mn v, max mx v, total + v))
          (x, x, x) rest
      in
      {
        d_min = mn;
        d_max = mx;
        d_mean = float_of_int total /. float_of_int (List.length xs);
        d_total = total;
      }

let run ?(domains = 1) ?(root_seed = 1) ?(trials = 200) ?(shrink = true) spec =
  if trials < 0 then invalid_arg "Torture.run: trials must be non-negative";
  let t0 = Unix.gettimeofday () in
  let domains = max 1 (min domains (max 1 trials)) in
  (* shard d owns trial indices { i | i mod domains = d }; trials share
     nothing, so the only cross-domain traffic is the join *)
  let worker d () =
    let acc = ref [] in
    let i = ref d in
    while !i < trials do
      acc := (!i, run_trial spec ~root:root_seed ~index:!i) :: !acc;
      i := !i + domains
    done;
    !acc
  in
  let shards =
    if domains = 1 then [ worker 0 () ]
    else
      let handles = Array.init domains (fun d -> Domain.spawn (worker d)) in
      Array.to_list (Array.map Domain.join handles)
  in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let by_index = Array.make trials None in
  List.iter (List.iter (fun (i, tr) -> by_index.(i) <- Some tr)) shards;
  let ordered =
    Array.to_list
      (Array.map
         (function
           | Some tr -> tr
           | None -> invalid_arg "Torture.run: shard lost a trial")
         by_index)
  in
  (* merge in trial-index order: every aggregate below is a fold over
     [ordered], so the report is independent of shard layout *)
  let linearized = ref 0 and not_linearized = ref 0 and incomplete = ref 0 in
  let crashes_injected = ref 0 in
  let rec_returned = ref 0 and rec_failed = ref 0 in
  let hist = Hashtbl.create 32 in
  List.iter
    (fun tr ->
      (match tr.t_violation with
      | Some _ -> incr not_linearized
      | None -> if tr.t_incomplete then incr incomplete else incr linearized);
      crashes_injected := !crashes_injected + tr.t_crashes;
      rec_returned := !rec_returned + tr.t_rec_returned;
      rec_failed := !rec_failed + tr.t_rec_failed;
      List.iter
        (fun s ->
          let b = s / crash_bucket * crash_bucket in
          Hashtbl.replace hist b
            (1 + try Hashtbl.find hist b with Not_found -> 0))
        tr.t_crash_steps)
    ordered;
  let crash_hist =
    Hashtbl.fold (fun b n acc -> (b, n) :: acc) hist [] |> List.sort compare
  in
  let first_failure =
    let rec find i = function
      | [] -> None
      | tr :: rest -> (
          match tr.t_violation with
          | Some msg -> Some (i, tr, msg)
          | None -> find (i + 1) rest)
    in
    match find 0 ordered with
    | None -> None
    | Some (i, tr, msg) ->
        let minimised, shrink_attempts =
          if not shrink then (None, 0)
          else
            (* tolerant replay of an exception-raising trial can re-raise
               inside the minimiser; losing the minimisation then is fine,
               the raw schedule is still reported *)
            match
              try
                Modelcheck.Shrink.minimise ~mk:spec.mk
                  ~workloads:(spec.workloads_of_seed tr.t_seed)
                  ~policy:spec.policy ~max_steps:spec.max_steps ~engine:`Undo
                  tr.t_trace
              with Invalid_argument _ | Failure _ -> None
            with
            | Some r ->
                (Some r.Modelcheck.Shrink.decisions, r.Modelcheck.Shrink.attempts)
            | None -> (None, 0)
        in
        Some
          {
            trial = i;
            seed = tr.t_seed;
            msg;
            schedule = tr.t_trace;
            minimised;
            shrink_attempts;
          }
  in
  {
    label = spec.label;
    root_seed;
    trials;
    policy = spec.policy;
    crash_prob = spec.crash_prob;
    max_crashes = spec.max_crashes;
    max_steps = spec.max_steps;
    linearized = !linearized;
    not_linearized = !not_linearized;
    incomplete = !incomplete;
    crashes_injected = !crashes_injected;
    crash_hist;
    rec_returned = !rec_returned;
    rec_failed = !rec_failed;
    steps = dist_of (List.map (fun tr -> tr.t_steps) ordered);
    max_shared_bits = dist_of (List.map (fun tr -> tr.t_bits) ordered);
    first_failure;
    elapsed_s;
    trials_per_sec = float_of_int trials /. Float.max elapsed_s 1e-9;
    domains_used = domains;
  }

(* ------------------------------------------------------------------ *)
(* rendering *)

let policy_string = function
  | Session.Retry -> "retry"
  | Session.Give_up -> "giveup"

let decision_string = function
  | Modelcheck.Explore.Step pid -> Printf.sprintf "p%d" pid
  | Modelcheck.Explore.Crash -> "CRASH"

(* JSON string escaping (the checker's violation messages are the only
   free-form strings; keep them valid whatever they contain) *)
let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let dist_json d =
  Printf.sprintf {|{ "min": %d, "max": %d, "mean": %.4f, "total": %d }|}
    d.d_min d.d_max d.d_mean d.d_total

let schedule_json ds =
  "[ "
  ^ String.concat ", "
      (List.map (fun d -> Printf.sprintf "%S" (decision_string d)) ds)
  ^ " ]"

let to_json ?(timing = true) r =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"schema\": \"detectable-torture/v1\",\n";
  add "  \"object\": \"%s\",\n" (escape r.label);
  add "  \"root_seed\": %d,\n" r.root_seed;
  add "  \"trials\": %d,\n" r.trials;
  add
    "  \"config\": { \"policy\": %S, \"crash_prob\": %.4f, \"max_crashes\": \
     %d, \"max_steps\": %d },\n"
    (policy_string r.policy) r.crash_prob r.max_crashes r.max_steps;
  add
    "  \"verdicts\": { \"linearized\": %d, \"not_linearized\": %d, \
     \"incomplete\": %d },\n"
    r.linearized r.not_linearized r.incomplete;
  add "  \"recoveries\": { \"returned\": %d, \"fail_verdicts\": %d },\n"
    r.rec_returned r.rec_failed;
  add
    "  \"crashes\": { \"injected\": %d, \"bucket_width\": %d, \"histogram\": \
     [ %s ] },\n"
    r.crashes_injected crash_bucket
    (String.concat ", "
       (List.map
          (fun (b0, n) ->
            Printf.sprintf {|{ "from_step": %d, "count": %d }|} b0 n)
          r.crash_hist));
  add "  \"steps\": %s,\n" (dist_json r.steps);
  add "  \"max_shared_bits\": %s,\n" (dist_json r.max_shared_bits);
  (match r.first_failure with
  | None -> add "  \"first_failure\": null"
  | Some f ->
      add "  \"first_failure\": {\n";
      add "    \"trial\": %d,\n" f.trial;
      add "    \"seed\": %d,\n" f.seed;
      add "    \"msg\": \"%s\",\n" (escape f.msg);
      add "    \"schedule\": %s,\n" (schedule_json f.schedule);
      (match f.minimised with
      | None -> add "    \"minimised\": null,\n"
      | Some ds -> add "    \"minimised\": %s,\n" (schedule_json ds));
      add "    \"shrink_attempts\": %d\n" f.shrink_attempts;
      add "  }");
  if timing then
    add
      ",\n  \"timing\": { \"elapsed_s\": %.6f, \"trials_per_sec\": %.1f, \
       \"domains\": %d }\n"
      r.elapsed_s r.trials_per_sec r.domains_used
  else add "\n";
  add "}\n";
  Buffer.contents b

let pp fmt r =
  Format.fprintf fmt "torture: %s — %d trials, root seed %d, policy %s, %d domain(s)@."
    r.label r.trials r.root_seed (policy_string r.policy) r.domains_used;
  Format.fprintf fmt
    "verdicts:   %d linearized, %d not-linearized, %d incomplete@." r.linearized
    r.not_linearized r.incomplete;
  Format.fprintf fmt
    "crashes:    %d injected; recoveries: %d returned, %d fail verdicts@."
    r.crashes_injected r.rec_returned r.rec_failed;
  Format.fprintf fmt "steps:      min %d, mean %.1f, max %d (total %d)@."
    r.steps.d_min r.steps.d_mean r.steps.d_max r.steps.d_total;
  Format.fprintf fmt "space:      max_shared_bits min %d, mean %.1f, max %d@."
    r.max_shared_bits.d_min r.max_shared_bits.d_mean r.max_shared_bits.d_max;
  Format.fprintf fmt "throughput: %.1f trials/sec (%.3fs elapsed)@."
    r.trials_per_sec r.elapsed_s;
  (match r.crash_hist with
  | [] -> ()
  | hist ->
      let widest = List.fold_left (fun acc (_, n) -> max acc n) 1 hist in
      Format.fprintf fmt "crash-point histogram (bucket width %d):@."
        crash_bucket;
      List.iter
        (fun (b0, n) ->
          let bar = max 1 (n * 40 / widest) in
          Format.fprintf fmt "  [%5d,%5d) %s %d@." b0 (b0 + crash_bucket)
            (String.make bar '#') n)
        hist);
  match r.first_failure with
  | None -> ()
  | Some f ->
      Format.fprintf fmt "first failure: trial %d (seed %d): %s@." f.trial
        f.seed f.msg;
      Format.fprintf fmt "  schedule (%d decisions): %s@."
        (List.length f.schedule)
        (String.concat " " (List.map decision_string f.schedule));
      (match f.minimised with
      | Some ds ->
          Format.fprintf fmt
            "  minimised to %d decisions (%d replays): %s  [prefix, then free \
             run]@."
            (List.length ds) f.shrink_attempts
            (String.concat " " (List.map decision_string ds))
      | None ->
          Format.fprintf fmt
            "  (no minimisation: failure did not reproduce under tolerant \
             replay)@.")
