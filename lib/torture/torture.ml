open History
open Sched

type spec = {
  label : string;
  mk : unit -> Runtime.Machine.t * Obj_inst.t;
  workloads_of_seed : int -> Spec.op list array;
  policy : Session.policy;
  crash_prob : float;
  max_crashes : int;
  max_steps : int;
  lin_engine : Lin_check.engine;
  fault : Nvm.Fault_model.t;
  watchdog : int;
}

let default_spec_of ?(policy = Session.Retry) ?(crash_prob = 0.05)
    ?(max_crashes = 2) ?(max_steps = 50_000)
    ?(lin_engine = (`Incremental : Lin_check.engine))
    ?(fault = Nvm.Fault_model.Atomic) ?(watchdog = 10_000) ~label ~mk
    ~workloads_of_seed () =
  {
    label;
    mk;
    workloads_of_seed;
    policy;
    crash_prob;
    max_crashes;
    max_steps;
    lin_engine;
    fault;
    watchdog;
  }

type dist = { d_min : int; d_max : int; d_mean : float; d_total : int }

type failure = {
  trial : int;
  seed : int;
  msg : string;
  schedule : Modelcheck.Explore.decision list;
  minimised : Modelcheck.Explore.decision list option;
  shrink_attempts : int;
}

type engine_fault = { ef_trial : int; ef_seed : int; ef_msg : string }

type report = {
  label : string;
  root_seed : int;
  trials : int;
  policy : Session.policy;
  crash_prob : float;
  max_crashes : int;
  max_steps : int;
  fault : Nvm.Fault_model.t;
  watchdog : int;
  linearized : int;
  not_linearized : int;
  incomplete : int;
  budget_exhausted : int;
  engine_faults : int;
  crashes_injected : int;
  crash_hist : (int * int) list;
  rec_returned : int;
  rec_failed : int;
  steps : dist;
  max_shared_bits : dist;
  first_failure : failure option;
  first_engine_fault : engine_fault option;
  elapsed_s : float;
  trials_per_sec : float;
  domains_used : int;
  shards_rescued : int;
  alloc_minor_words : float;
  alloc_promoted_words : float;
  alloc_minor_collections : int;
  bytes_per_trial : float;
}

let crash_bucket = 16

(* ------------------------------------------------------------------ *)
(* rendering primitives (also used by the checkpoint journal) *)

let policy_string = function
  | Session.Retry -> "retry"
  | Session.Give_up -> "giveup"

let decision_string = function
  | Modelcheck.Explore.Step pid -> Printf.sprintf "p%d" pid
  | Modelcheck.Explore.Crash -> "CRASH"

let decision_of_string s =
  if s = "CRASH" then Modelcheck.Explore.Crash
  else if String.length s >= 2 && s.[0] = 'p' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some pid -> Modelcheck.Explore.Step pid
    | None -> failwith ("Torture: bad decision " ^ s)
  else failwith ("Torture: bad decision " ^ s)

(* JSON string escaping (checker violation messages and engine-fault
   backtraces are the only free-form strings; keep them valid whatever
   they contain).  Tiny_json.parse inverts this exactly, which the
   checkpoint/resume byte-identity contract relies on. *)
let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let dist_json d =
  Printf.sprintf {|{ "min": %d, "max": %d, "mean": %.4f, "total": %d }|}
    d.d_min d.d_max d.d_mean d.d_total

let schedule_json ds =
  "[ "
  ^ String.concat ", "
      (List.map (fun d -> Printf.sprintf "%S" (decision_string d)) ds)
  ^ " ]"

(* ------------------------------------------------------------------ *)
(* one trial *)

type verdict =
  | V_ok
  | V_violation of string
  | V_incomplete
  | V_budget
  | V_engine_fault of string

type trial = {
  t_seed : int;  (* derived workload seed *)
  t_fault_seed : int;  (* seed of the trial's dedicated fault stream *)
  t_steps : int;
  t_crashes : int;
  t_crash_steps : int list;  (* ascending *)
  t_rec_returned : int;
  t_rec_failed : int;
  t_bits : int;
  t_verdict : verdict;
  t_trace : Modelcheck.Explore.decision list;  (* oldest first *)
}

(* Everything random in a trial — workload, schedule, crash points, and
   (via the fault seed recorded in the crash plan) every crash's
   write-back — derives from [Prng.stream root ~index], so the trial is
   a pure function of (spec, root, index) no matter which domain runs
   it.  For [fault = Atomic] the draws are identical to the historical
   engine, so atomic campaigns reproduce pre-fault-model reports. *)
let run_trial spec ~scratch ~root ~index =
  let prng = Dtc_util.Prng.stream root ~index in
  let wseed =
    Int64.to_int (Int64.shift_right_logical (Dtc_util.Prng.next_int64 prng) 2)
  in
  let workloads = spec.workloads_of_seed wseed in
  let machine, inst = spec.mk () in
  (* record the decision sequence (for Shrink) and the crash points (for
     the histogram) by wrapping the schedule and the crash plan *)
  let trace = ref [] in
  let crash_steps = ref [] in
  let random_sched = Schedule.random (Dtc_util.Prng.split prng) in
  let sched =
    {
      Schedule.choose =
        (fun ~runnable ~step ->
          let pid = random_sched.Schedule.choose ~runnable ~step in
          trace := Modelcheck.Explore.Step pid :: !trace;
          pid);
    }
  in
  let base_plan =
    Crash_plan.faulted ~max_crashes:spec.max_crashes ~fault:spec.fault
      ~prob:spec.crash_prob
      (Dtc_util.Prng.split prng)
  in
  let fault_seed = Crash_plan.fault_seed base_plan in
  let plan =
    {
      base_plan with
      Crash_plan.should_crash =
        (fun ~step ->
          let fire = base_plan.Crash_plan.should_crash ~step in
          if fire then begin
            crash_steps := step :: !crash_steps;
            trace := Modelcheck.Explore.Crash :: !trace
          end;
          fire);
    }
  in
  let cfg =
    {
      Driver.schedule = sched;
      crash_plan = plan;
      policy = spec.policy;
      max_steps = spec.max_steps;
    }
  in
  let finish ~steps ~crashes ~rec_returned ~rec_failed ~verdict =
    {
      t_seed = wseed;
      t_fault_seed = fault_seed;
      t_steps = steps;
      t_crashes = crashes;
      t_crash_steps = List.rev !crash_steps;
      t_rec_returned = rec_returned;
      t_rec_failed = rec_failed;
      t_bits = Nvm.Mem.max_shared_bits (Runtime.Machine.mem machine);
      t_verdict = verdict;
      t_trace = List.rev !trace;
    }
  in
  let trace_steps () =
    List.length
      (List.filter
         (function Modelcheck.Explore.Step _ -> true | _ -> false)
         !trace)
  in
  match
    let res =
      Driver.run ~watchdog:spec.watchdog ~scratch machine inst ~workloads cfg
    in
    let rec_returned, rec_failed =
      List.fold_left
        (fun (r, f) -> function
          | Event.Rec_ret _ -> (r + 1, f)
          | Event.Rec_fail _ -> (r, f + 1)
          | _ -> (r, f))
        (0, 0) res.Driver.history
    in
    let verdict =
      match Driver.check ~lin_engine:spec.lin_engine inst res with
      | Lin_check.Violation msg -> V_violation msg
      | Lin_check.Ok_linearizable _ ->
          if res.Driver.budget_exhausted then V_budget
          else if res.Driver.incomplete then V_incomplete
          else V_ok
    in
    (res, rec_returned, rec_failed, verdict)
  with
  | res, rec_returned, rec_failed, verdict ->
      finish ~steps:res.Driver.steps ~crashes:res.Driver.crashes ~rec_returned
        ~rec_failed ~verdict
  | exception (Invalid_argument msg | Failure msg) ->
      (* an algorithm choked on inconsistent NVM state (possible for the
         deliberately broken variants): a correctness violation, not a
         harness failure — same convention as E6 *)
      finish ~steps:(trace_steps ())
        ~crashes:(List.length !crash_steps)
        ~rec_returned:0 ~rec_failed:0
        ~verdict:(V_violation ("exception: " ^ msg))
  | exception e ->
      (* anything else is a fault of the object under test or the engine
         itself: contain it in this trial's verdict — with the exception
         text and any recorded backtrace — and let the campaign go on *)
      let bt = Printexc.get_backtrace () in
      let msg =
        Printexc.to_string e
        ^ if String.trim bt = "" then "" else "\n" ^ String.trim bt
      in
      finish ~steps:(trace_steps ())
        ~crashes:(List.length !crash_steps)
        ~rec_returned:0 ~rec_failed:0 ~verdict:(V_engine_fault msg)

(* ------------------------------------------------------------------ *)
(* checkpoint journal *)

let checkpoint_schema = "detectable-torture-checkpoint/v2"

(* v1 journals are v2 without lifecycle event lines; reading them needs
   nothing extra, so resume accepts both *)
let checkpoint_schema_v1 = "detectable-torture-checkpoint/v1"

let header_line (spec : spec) ~root_seed ~trials =
  Printf.sprintf
    {|{ "schema": %S, "object": "%s", "root_seed": %d, "trials": %d, "policy": %S, "crash_prob": %.4f, "max_crashes": %d, "max_steps": %d, "fault": %S, "watchdog": %d }|}
    checkpoint_schema (escape spec.label) root_seed trials
    (policy_string spec.policy)
    spec.crash_prob spec.max_crashes spec.max_steps
    (Nvm.Fault_model.to_string spec.fault)
    spec.watchdog

let verdict_tag = function
  | V_ok -> "ok"
  | V_violation _ -> "violation"
  | V_incomplete -> "incomplete"
  | V_budget -> "budget_exhausted"
  | V_engine_fault _ -> "engine_fault"

let verdict_msg = function
  | V_violation m | V_engine_fault m -> Some m
  | V_ok | V_incomplete | V_budget -> None

let trial_line i tr =
  Printf.sprintf
    {|{ "i": %d, "seed": %d, "fault_seed": %d, "steps": %d, "crashes": %d, "crash_steps": [ %s ], "rec_returned": %d, "rec_failed": %d, "bits": %d, "verdict": %S%s, "trace": %s }|}
    i tr.t_seed tr.t_fault_seed tr.t_steps tr.t_crashes
    (String.concat ", " (List.map string_of_int tr.t_crash_steps))
    tr.t_rec_returned tr.t_rec_failed tr.t_bits (verdict_tag tr.t_verdict)
    (match verdict_msg tr.t_verdict with
    | None -> ""
    | Some m -> Printf.sprintf {|, "msg": "%s"|} (escape m))
    (schedule_json tr.t_trace)

let trial_of_json j =
  let int k = Tiny_json.get_int (Tiny_json.member k j) in
  let verdict =
    let msg () = Tiny_json.get_str (Tiny_json.member "msg" j) in
    match Tiny_json.get_str (Tiny_json.member "verdict" j) with
    | "ok" -> V_ok
    | "violation" -> V_violation (msg ())
    | "incomplete" -> V_incomplete
    | "budget_exhausted" -> V_budget
    | "engine_fault" -> V_engine_fault (msg ())
    | v -> failwith ("Torture: unknown checkpoint verdict " ^ v)
  in
  ( int "i",
    {
      t_seed = int "seed";
      t_fault_seed = int "fault_seed";
      t_steps = int "steps";
      t_crashes = int "crashes";
      t_crash_steps =
        List.map Tiny_json.get_int
          (Tiny_json.get_list (Tiny_json.member "crash_steps" j));
      t_rec_returned = int "rec_returned";
      t_rec_failed = int "rec_failed";
      t_bits = int "bits";
      t_verdict = verdict;
      t_trace =
        List.map
          (fun d -> decision_of_string (Tiny_json.get_str d))
          (Tiny_json.get_list (Tiny_json.member "trace" j));
    } )

(* Completed trials recorded in a (possibly interrupted) journal.  The
   header must match this campaign exactly — resuming under different
   parameters would silently mix incompatible seed streams.  A torn
   trailing line (the writer died mid-write) is ignored; any complete
   trial line is trusted because trials are pure functions of their
   index.  Supervisor lifecycle events (v2 journals) are skipped.  A
   line that is unreadable anywhere but the tail, records an
   out-of-range index, or conflicts with an earlier record of the same
   trial is a hard error naming the line — overlapping shard ranges
   must never silently double-count or mix results. *)
let read_checkpoint path (spec : spec) ~root_seed ~trials =
  let contents =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  in
  match String.split_on_char '\n' contents with
  | [] -> []
  | header :: rest when String.trim header <> "" ->
      let h =
        try Tiny_json.parse header
        with Tiny_json.Error m ->
          invalid_arg ("Torture.run: unreadable checkpoint header: " ^ m)
      in
      let str k = Tiny_json.get_str (Tiny_json.member k h) in
      let int k = Tiny_json.get_int (Tiny_json.member k h) in
      let num k = Tiny_json.get_num (Tiny_json.member k h) in
      let mismatch what =
        invalid_arg
          (Printf.sprintf
             "Torture.run: checkpoint %s was written by a different campaign \
              (%s differs)"
             path what)
      in
      let schema = str "schema" in
      if schema <> checkpoint_schema && schema <> checkpoint_schema_v1 then
        mismatch "schema";
      if str "object" <> spec.label then mismatch "object";
      if int "root_seed" <> root_seed then mismatch "root_seed";
      if int "trials" <> trials then mismatch "trials";
      if str "policy" <> policy_string spec.policy then mismatch "policy";
      if abs_float (num "crash_prob" -. spec.crash_prob) > 1e-9 then
        mismatch "crash_prob";
      if int "max_crashes" <> spec.max_crashes then mismatch "max_crashes";
      if int "max_steps" <> spec.max_steps then mismatch "max_steps";
      if str "fault" <> Nvm.Fault_model.to_string spec.fault then
        mismatch "fault";
      if int "watchdog" <> spec.watchdog then mismatch "watchdog";
      (* the header is line 1; line numbers below are file line numbers *)
      let last_content =
        let r = ref 1 in
        List.iteri (fun k l -> if String.trim l <> "" then r := k + 2) rest;
        !r
      in
      let bad lineno what =
        invalid_arg
          (Printf.sprintf "Torture.run: checkpoint %s line %d: %s" path lineno
             what)
      in
      let seen = Hashtbl.create 64 in
      let acc = ref [] in
      List.iteri
        (fun k line ->
          let lineno = k + 2 in
          if String.trim line = "" then ()
          else
            match Tiny_json.parse line with
            | exception Tiny_json.Error m ->
                (* only the final line may be torn — the writer flushes
                   line-atomically, so mid-file garbage means real
                   corruption, not an interrupted write *)
                if lineno <> last_content then
                  bad lineno ("unreadable record (" ^ m ^ ")")
            | j ->
                if Tiny_json.mem "event" j then ()
                else (
                  match trial_of_json j with
                  | exception _ ->
                      if lineno <> last_content then
                        bad lineno "malformed trial record"
                  | i, tr ->
                      if i < 0 || i >= trials then
                        bad lineno
                          (Printf.sprintf
                             "trial index %d out of range [0, %d)" i trials);
                      (match Hashtbl.find_opt seen i with
                      | Some (lineno0, tr0) ->
                          (* identical duplicates are idempotent replays
                             (e.g. two shards raced on the same range) —
                             keep the first; conflicting duplicates mean
                             overlapping shard ranges wrote different
                             results and the journal cannot be trusted *)
                          if tr0 <> tr then
                            bad lineno
                              (Printf.sprintf
                                 "trial %d conflicts with the record on \
                                  line %d (overlapping shard ranges wrote \
                                  different results)"
                                 i lineno0)
                      | None ->
                          Hashtbl.add seen i (lineno, tr);
                          acc := (i, tr) :: !acc)))
        rest;
      List.rev !acc
  | _ -> []

(* ------------------------------------------------------------------ *)
(* journal writer *)

module Journal = struct
  type t = { mu : Mutex.t; oc : out_channel }

  let create ~path ~resume (spec : spec) ~root_seed ~trials =
    let fresh = not (resume && Sys.file_exists path) in
    let oc =
      if fresh then
        open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 path
      else begin
        (* heal a torn trailing line (a writer died mid-write) before
           appending: truncate back to the last complete line so the new
           writes start at a line boundary and the journal stays
           parseable on the next resume *)
        let keep =
          let ic = open_in_bin path in
          let len = in_channel_length ic in
          let s = really_input_string ic len in
          close_in ic;
          match String.rindex_opt s '\n' with Some i -> i + 1 | None -> 0
        in
        let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
        Unix.ftruncate fd keep;
        ignore (Unix.lseek fd keep Unix.SEEK_SET);
        Unix.out_channel_of_descr fd
      end
    in
    if fresh then begin
      output_string oc (header_line spec ~root_seed ~trials);
      output_char oc '\n';
      flush oc
    end;
    { mu = Mutex.create (); oc }

  let write t line =
    Mutex.lock t.mu;
    output_string t.oc line;
    output_char t.oc '\n';
    flush t.oc;
    Mutex.unlock t.mu

  let close t =
    Mutex.lock t.mu;
    close_out t.oc;
    Mutex.unlock t.mu
end

exception Interrupted of { completed : int; total : int }

(* ------------------------------------------------------------------ *)
(* campaign = shard + merge *)

let dist_of xs =
  match xs with
  | [] -> { d_min = 0; d_max = 0; d_mean = 0.0; d_total = 0 }
  | x :: rest ->
      let mn, mx, total =
        List.fold_left
          (fun (mn, mx, total) v -> (min mn v, max mx v, total + v))
          (x, x, x) rest
      in
      {
        d_min = mn;
        d_max = mx;
        d_mean = float_of_int total /. float_of_int (List.length xs);
        d_total = total;
      }

(* merge in trial-index order: every aggregate below is a fold over
   [ordered], so the report is independent of shard layout — and of
   which trials were preloaded from a checkpoint, rescued from a dead
   domain, or replayed by a respawned worker process *)
let merge (spec : spec) ~root_seed ~trials ~shrink (by_trial : trial array) =
  if Array.length by_trial <> trials then
    invalid_arg "Torture.merge: need exactly one record per trial";
  let ordered = Array.to_list by_trial in
  let linearized = ref 0
  and not_linearized = ref 0
  and incomplete = ref 0
  and budget_exhausted = ref 0
  and engine_faults = ref 0 in
  let crashes_injected = ref 0 in
  let rec_returned = ref 0 and rec_failed = ref 0 in
  let hist = Hashtbl.create 32 in
  List.iter
    (fun tr ->
      (match tr.t_verdict with
      | V_ok -> incr linearized
      | V_violation _ -> incr not_linearized
      | V_incomplete -> incr incomplete
      | V_budget -> incr budget_exhausted
      | V_engine_fault _ -> incr engine_faults);
      crashes_injected := !crashes_injected + tr.t_crashes;
      rec_returned := !rec_returned + tr.t_rec_returned;
      rec_failed := !rec_failed + tr.t_rec_failed;
      List.iter
        (fun s ->
          let b = s / crash_bucket * crash_bucket in
          Hashtbl.replace hist b
            (1 + try Hashtbl.find hist b with Not_found -> 0))
        tr.t_crash_steps)
    ordered;
  let crash_hist =
    Hashtbl.fold (fun b n acc -> (b, n) :: acc) hist [] |> List.sort compare
  in
  let find_first pred =
    let rec go i = function
      | [] -> None
      | tr :: rest -> (
          match pred tr with
          | Some x -> Some (i, tr, x)
          | None -> go (i + 1) rest)
    in
    go 0 ordered
  in
  let first_failure =
    match
      find_first (function
        | { t_verdict = V_violation msg; _ } -> Some msg
        | _ -> None)
    with
    | None -> None
    | Some (i, tr, msg) ->
        let minimised, shrink_attempts =
          if not shrink then (None, 0)
          else
            (* replay the failing trial's exact fault stream: crash k of
               a candidate replays wipe stream k of the original run *)
            let wipe =
              match spec.fault with
              | Nvm.Fault_model.Atomic -> Nvm.Fault_model.keep_all
              | f -> Nvm.Fault_model.Seeded (f, tr.t_fault_seed)
            in
            (* tolerant replay of an exception-raising trial can re-raise
               inside the minimiser; losing the minimisation then is fine,
               the raw schedule is still reported *)
            match
              try
                Modelcheck.Shrink.minimise ~mk:spec.mk
                  ~workloads:(spec.workloads_of_seed tr.t_seed)
                  ~policy:spec.policy ~wipe ~max_steps:spec.max_steps
                  ~engine:`Undo tr.t_trace
              with _ -> None
            with
            | Some r ->
                (Some r.Modelcheck.Shrink.decisions, r.Modelcheck.Shrink.attempts)
            | None -> (None, 0)
        in
        Some
          {
            trial = i;
            seed = tr.t_seed;
            msg;
            schedule = tr.t_trace;
            minimised;
            shrink_attempts;
          }
  in
  let first_engine_fault =
    match
      find_first (function
        | { t_verdict = V_engine_fault msg; _ } -> Some msg
        | _ -> None)
    with
    | None -> None
    | Some (i, tr, msg) -> Some { ef_trial = i; ef_seed = tr.t_seed; ef_msg = msg }
  in
  {
    label = spec.label;
    root_seed;
    trials;
    policy = spec.policy;
    crash_prob = spec.crash_prob;
    max_crashes = spec.max_crashes;
    max_steps = spec.max_steps;
    fault = spec.fault;
    watchdog = spec.watchdog;
    linearized = !linearized;
    not_linearized = !not_linearized;
    incomplete = !incomplete;
    budget_exhausted = !budget_exhausted;
    engine_faults = !engine_faults;
    crashes_injected = !crashes_injected;
    crash_hist;
    rec_returned = !rec_returned;
    rec_failed = !rec_failed;
    steps = dist_of (List.map (fun tr -> tr.t_steps) ordered);
    max_shared_bits = dist_of (List.map (fun tr -> tr.t_bits) ordered);
    first_failure;
    first_engine_fault;
    (* timing is the caller's to measure: merge is pure *)
    elapsed_s = 0.0;
    trials_per_sec = 0.0;
    domains_used = 0;
    shards_rescued = 0;
    alloc_minor_words = 0.0;
    alloc_promoted_words = 0.0;
    alloc_minor_collections = 0;
    bytes_per_trial = 0.0;
  }

let run ?(domains = 1) ?(root_seed = 1) ?(trials = 200) ?(shrink = true)
    ?checkpoint ?(resume = false) ?(gc = Dtc_util.Gc_tune.none)
    ?(should_stop = fun () -> false) spec =
  if trials < 0 then invalid_arg "Torture.run: trials must be non-negative";
  if resume && checkpoint = None then
    invalid_arg "Torture.run: resume requires a checkpoint path";
  let t0 = Unix.gettimeofday () in
  let by_index = Array.make (max 1 trials) None in
  (match checkpoint with
  | Some path when resume && Sys.file_exists path ->
      List.iter
        (fun (i, tr) -> by_index.(i) <- Some tr)
        (read_checkpoint path spec ~root_seed ~trials)
  | _ -> ());
  let missing =
    Array.of_list
      (List.filter (fun i -> by_index.(i) = None) (List.init trials Fun.id))
  in
  let n_missing = Array.length missing in
  let journal =
    match checkpoint with
    | None -> None
    | Some path -> Some (Journal.create ~path ~resume spec ~root_seed ~trials)
  in
  let record i tr =
    match journal with
    | None -> ()
    | Some j -> Journal.write j (trial_line i tr)
  in
  let domains = max 1 (min domains (max 1 n_missing)) in
  (* shard d owns the missing positions { k | k mod domains = d }; trials
     share nothing, so the only cross-domain traffic is the join.  Each
     worker builds one {!Session.scratch} and reuses it across its whole
     trial range, applies the (opt-in) GC tuning on its own domain —
     [Gc.control] is per-domain in OCaml 5, so tuning must happen inside
     the worker, and [with_applied] restores the caller's settings on the
     domains = 1 / rescue paths that run on the joining domain — and
     meters its own allocation: [Gc.quick_stat] counters are per-domain
     too, so the snapshots bracket the loop inside the worker and the
     shard deltas are summed after the join.  [should_stop] is polled
     between trials, so an interrupt loses at most the trials in
     flight — everything completed is already journaled. *)
  let worker d () =
    Dtc_util.Gc_tune.with_applied gc @@ fun () ->
    let scratch = Session.make_scratch () in
    let a0 = Dtc_util.Alloc_stats.snap () in
    let acc = ref [] in
    let k = ref d in
    while !k < n_missing && not (should_stop ()) do
      let i = missing.(!k) in
      let tr = run_trial spec ~scratch ~root:root_seed ~index:i in
      record i tr;
      acc := (i, tr) :: !acc;
      k := !k + domains
    done;
    let alloc =
      Dtc_util.Alloc_stats.delta ~before:a0 ~after:(Dtc_util.Alloc_stats.snap ())
    in
    (!acc, alloc)
  in
  let rescued = ref 0 in
  let shards =
    if domains = 1 then [ worker 0 () ]
    else
      (* a shard whose domain dies (spawn failure or an escaped
         exception — run_trial contains per-trial faults, so this is a
         last line of defence) is re-run on the joining domain: trials
         are pure functions of their index, so the re-run is
         bit-identical to what the lost domain would have produced *)
      let spawned =
        Array.init domains (fun d ->
            match Domain.spawn (worker d) with
            | h -> Some h
            | exception _ -> None)
      in
      Array.to_list
        (Array.mapi
           (fun d h ->
             match h with
             | None ->
                 incr rescued;
                 worker d ()
             | Some h -> (
                 match Domain.join h with
                 | shard -> shard
                 | exception _ ->
                     incr rescued;
                     worker d ()))
           spawned)
  in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let alloc =
    List.fold_left
      (fun acc (_, d) -> Dtc_util.Alloc_stats.add acc d)
      Dtc_util.Alloc_stats.zero shards
  in
  List.iter
    (fun (shard, _) -> List.iter (fun (i, tr) -> by_index.(i) <- Some tr) shard)
    shards;
  let completed = ref 0 in
  for i = 0 to trials - 1 do
    if by_index.(i) <> None then incr completed
  done;
  if !completed < trials && should_stop () then begin
    (match journal with
    | Some j ->
        Journal.write j
          (Printf.sprintf
             {|{ "event": "interrupted", "completed": %d, "total": %d }|}
             !completed trials);
        Journal.close j
    | None -> ());
    raise (Interrupted { completed = !completed; total = trials })
  end;
  (match journal with Some j -> Journal.close j | None -> ());
  if !completed < trials then invalid_arg "Torture.run: shard lost a trial";
  let ordered = Array.init trials (fun i -> Option.get by_index.(i)) in
  let report = merge spec ~root_seed ~trials ~shrink ordered in
  {
    report with
    elapsed_s;
    trials_per_sec = float_of_int trials /. Float.max elapsed_s 1e-9;
    domains_used = domains;
    shards_rescued = !rescued;
    alloc_minor_words = alloc.Dtc_util.Alloc_stats.d_minor_words;
    alloc_promoted_words = alloc.Dtc_util.Alloc_stats.d_promoted_words;
    alloc_minor_collections = alloc.Dtc_util.Alloc_stats.d_minor_collections;
    (* per trial actually executed this run: preloaded checkpoint trials
       allocate nothing, so dividing by [trials] would flatter resumes *)
    bytes_per_trial = Dtc_util.Alloc_stats.bytes_per alloc n_missing;
  }

(* ------------------------------------------------------------------ *)
(* rendering *)

type supervision = {
  s_workers_spawned : int;
  s_worker_deaths : int;
  s_worker_hangs : int;
  s_rescues : int;
  s_retries : int;
  s_degradations : int;
  s_inproc_trials : int;
  s_chaos_kill : float;
  s_chaos_hang : float;
  s_chaos_seed : int;
}

let no_supervision =
  {
    s_workers_spawned = 0;
    s_worker_deaths = 0;
    s_worker_hangs = 0;
    s_rescues = 0;
    s_retries = 0;
    s_degradations = 0;
    s_inproc_trials = 0;
    s_chaos_kill = 0.0;
    s_chaos_hang = 0.0;
    s_chaos_seed = 0;
  }

let supervision_json s =
  Printf.sprintf
    {|{ "workers_spawned": %d, "worker_deaths": %d, "worker_hangs": %d, "rescues": %d, "retries": %d, "degradations": %d, "inproc_trials": %d, "chaos": { "kill": %.4f, "hang": %.4f, "seed": %d } }|}
    s.s_workers_spawned s.s_worker_deaths s.s_worker_hangs s.s_rescues
    s.s_retries s.s_degradations s.s_inproc_trials s.s_chaos_kill s.s_chaos_hang
    s.s_chaos_seed

let to_json ?(timing = true) ?(supervision = no_supervision) r =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"schema\": \"detectable-torture/v4\",\n";
  add "  \"object\": \"%s\",\n" (escape r.label);
  add "  \"root_seed\": %d,\n" r.root_seed;
  add "  \"trials\": %d,\n" r.trials;
  add
    "  \"config\": { \"policy\": %S, \"crash_prob\": %.4f, \"max_crashes\": \
     %d, \"max_steps\": %d, \"fault\": %S, \"watchdog\": %d },\n"
    (policy_string r.policy) r.crash_prob r.max_crashes r.max_steps
    (Nvm.Fault_model.to_string r.fault)
    r.watchdog;
  add
    "  \"verdicts\": { \"linearized\": %d, \"not_linearized\": %d, \
     \"incomplete\": %d, \"budget_exhausted\": %d, \"engine_faults\": %d },\n"
    r.linearized r.not_linearized r.incomplete r.budget_exhausted
    r.engine_faults;
  add "  \"recoveries\": { \"returned\": %d, \"fail_verdicts\": %d },\n"
    r.rec_returned r.rec_failed;
  add
    "  \"crashes\": { \"injected\": %d, \"bucket_width\": %d, \"histogram\": \
     [ %s ] },\n"
    r.crashes_injected crash_bucket
    (String.concat ", "
       (List.map
          (fun (b0, n) ->
            Printf.sprintf {|{ "from_step": %d, "count": %d }|} b0 n)
          r.crash_hist));
  add "  \"steps\": %s,\n" (dist_json r.steps);
  add "  \"max_shared_bits\": %s,\n" (dist_json r.max_shared_bits);
  (match r.first_failure with
  | None -> add "  \"first_failure\": null"
  | Some f ->
      add "  \"first_failure\": {\n";
      add "    \"trial\": %d,\n" f.trial;
      add "    \"seed\": %d,\n" f.seed;
      add "    \"msg\": \"%s\",\n" (escape f.msg);
      add "    \"schedule\": %s,\n" (schedule_json f.schedule);
      (match f.minimised with
      | None -> add "    \"minimised\": null,\n"
      | Some ds -> add "    \"minimised\": %s,\n" (schedule_json ds));
      add "    \"shrink_attempts\": %d\n" f.shrink_attempts;
      add "  }");
  (match r.first_engine_fault with
  | None -> add ",\n  \"first_engine_fault\": null"
  | Some ef ->
      add
        ",\n  \"first_engine_fault\": { \"trial\": %d, \"seed\": %d, \"msg\": \
         \"%s\" }"
        ef.ef_trial ef.ef_seed (escape ef.ef_msg));
  if timing then
    add
      ",\n  \"timing\": { \"elapsed_s\": %.6f, \"trials_per_sec\": %.1f, \
       \"domains\": %d, \"shards_rescued\": %d, \"alloc\": { \"minor_words\": \
       %.0f, \"promoted_words\": %.0f, \"minor_collections\": %d, \
       \"bytes_per_trial\": %.1f }, \"supervision\": %s }\n"
      r.elapsed_s r.trials_per_sec r.domains_used r.shards_rescued
      r.alloc_minor_words r.alloc_promoted_words r.alloc_minor_collections
      r.bytes_per_trial (supervision_json supervision)
  else add "\n";
  add "}\n";
  Buffer.contents b

let pp_report ?(timing = true) ?(supervision = no_supervision) () fmt r =
  (* the non-timing lines below are pure functions of the deterministic
     report fields — with [~timing:false] this rendering is the text
     analogue of [to_json ~timing:false], byte-identical across domain
     counts, resume splits and supervision schedules *)
  if timing then
    Format.fprintf fmt
      "torture: %s — %d trials, root seed %d, policy %s, fault %s, %d \
       domain(s)@."
      r.label r.trials r.root_seed (policy_string r.policy)
      (Nvm.Fault_model.to_string r.fault)
      r.domains_used
  else
    Format.fprintf fmt
      "torture: %s — %d trials, root seed %d, policy %s, fault %s@." r.label
      r.trials r.root_seed (policy_string r.policy)
      (Nvm.Fault_model.to_string r.fault);
  Format.fprintf fmt
    "verdicts:   %d linearized, %d not-linearized, %d incomplete, %d \
     budget-exhausted, %d engine faults@."
    r.linearized r.not_linearized r.incomplete r.budget_exhausted
    r.engine_faults;
  Format.fprintf fmt
    "crashes:    %d injected; recoveries: %d returned, %d fail verdicts@."
    r.crashes_injected r.rec_returned r.rec_failed;
  Format.fprintf fmt "steps:      min %d, mean %.1f, max %d (total %d)@."
    r.steps.d_min r.steps.d_mean r.steps.d_max r.steps.d_total;
  Format.fprintf fmt "space:      max_shared_bits min %d, mean %.1f, max %d@."
    r.max_shared_bits.d_min r.max_shared_bits.d_mean r.max_shared_bits.d_max;
  if timing then begin
    Format.fprintf fmt "throughput: %.1f trials/sec (%.3fs elapsed%s)@."
      r.trials_per_sec r.elapsed_s
      (if r.shards_rescued > 0 then
         Printf.sprintf ", %d shard(s) rescued" r.shards_rescued
       else "");
    Format.fprintf fmt
      "alloc:      %.0f bytes/trial (%.0f minor words, %.0f promoted, %d \
       minor GCs)@."
      r.bytes_per_trial r.alloc_minor_words r.alloc_promoted_words
      r.alloc_minor_collections;
    if supervision.s_workers_spawned > 0 then
      Format.fprintf fmt
        "supervise:  %d worker(s) spawned, %d death(s), %d hang(s), %d \
         rescue(s), %d retry(ies), %d degradation(s), %d in-process trial(s)@."
        supervision.s_workers_spawned supervision.s_worker_deaths
        supervision.s_worker_hangs supervision.s_rescues supervision.s_retries
        supervision.s_degradations supervision.s_inproc_trials
  end;
  (match r.crash_hist with
  | [] -> ()
  | hist ->
      let widest = List.fold_left (fun acc (_, n) -> max acc n) 1 hist in
      Format.fprintf fmt "crash-point histogram (bucket width %d):@."
        crash_bucket;
      List.iter
        (fun (b0, n) ->
          let bar = max 1 (n * 40 / widest) in
          Format.fprintf fmt "  [%5d,%5d) %s %d@." b0 (b0 + crash_bucket)
            (String.make bar '#') n)
        hist);
  (match r.first_engine_fault with
  | None -> ()
  | Some ef ->
      Format.fprintf fmt "first engine fault: trial %d (seed %d): %s@."
        ef.ef_trial ef.ef_seed ef.ef_msg);
  match r.first_failure with
  | None -> ()
  | Some f ->
      Format.fprintf fmt "first failure: trial %d (seed %d): %s@." f.trial
        f.seed f.msg;
      Format.fprintf fmt "  schedule (%d decisions): %s@."
        (List.length f.schedule)
        (String.concat " " (List.map decision_string f.schedule));
      (match f.minimised with
      | Some ds ->
          Format.fprintf fmt
            "  minimised to %d decisions (%d replays): %s  [prefix, then free \
             run]@."
            (List.length ds) f.shrink_attempts
            (String.concat " " (List.map decision_string ds))
      | None ->
          Format.fprintf fmt
            "  (no minimisation: failure did not reproduce under tolerant \
             replay)@.")

let pp fmt r = pp_report () fmt r
