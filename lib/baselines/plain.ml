open Nvm
open Runtime
open History

let no_recovery_inst ~descr ~spec ~invoke =
  {
    Sched.Obj_inst.descr;
    spec;
    announce = (fun ~pid:_ _ -> ());
    invoke;
    recover =
      (fun ~pid:_ _ ->
        (* never reached: [pending] reports nothing in flight *)
        assert false);
    clear = (fun ~pid:_ -> ());
    pending = (fun ~pid:_ -> None);
    strict_recovery = false;
    id_symmetric = false;
  }

let register machine ~init =
  let r = Machine.alloc_shared machine "R" init in
  let invoke ~pid:_ (op : Spec.op) =
    match (op.Spec.name, op.Spec.args) with
    | "read", [||] -> Fiber.read r
    | "write", [| v |] ->
        Fiber.write r v;
        Spec.ack
    | _ -> Detectable.Base.bad_op "Plain.register" op
  in
  no_recovery_inst ~descr:"plain register (not recoverable)"
    ~spec:(Spec.register init) ~invoke

let cas_cell machine ~init =
  let c = Machine.alloc_shared machine "C" init in
  let invoke ~pid:_ (op : Spec.op) =
    match (op.Spec.name, op.Spec.args) with
    | "read", [||] -> Fiber.read c
    | "cas", [| old_v; new_v |] -> Value.Bool (Fiber.cas c old_v new_v)
    | _ -> Detectable.Base.bad_op "Plain.cas" op
  in
  no_recovery_inst ~descr:"plain cas (not recoverable)"
    ~spec:(Spec.cas_cell init) ~invoke

let counter machine ~init =
  let c = Machine.alloc_shared machine "ctr" (Value.Int init) in
  let invoke ~pid:_ (op : Spec.op) =
    match (op.Spec.name, op.Spec.args) with
    | "read", [||] -> Fiber.read c
    | "inc", [||] ->
        ignore (Fiber.faa c 1);
        Spec.ack
    | _ -> Detectable.Base.bad_op "Plain.counter" op
  in
  no_recovery_inst ~descr:"plain counter (not recoverable)"
    ~spec:(Spec.counter init) ~invoke

let faa machine ~init =
  let c = Machine.alloc_shared machine "faa" (Value.Int init) in
  let invoke ~pid:_ (op : Spec.op) =
    match (op.Spec.name, op.Spec.args) with
    | "read", [||] -> Fiber.read c
    | "faa", [| Value.Int d |] -> Value.Int (Fiber.faa c d)
    | _ -> Detectable.Base.bad_op "Plain.faa" op
  in
  no_recovery_inst ~descr:"plain faa (not recoverable)" ~spec:(Spec.faa_cell init)
    ~invoke

let queue machine ~capacity =
  if capacity < 1 then invalid_arg "Plain.queue: capacity must be >= 1";
  let cap = capacity + 1 in
  let shared fmt = Printf.ksprintf (fun s -> Machine.alloc_shared machine s) fmt in
  let head = Machine.alloc_shared machine "head" (Value.Int 0) in
  let tail = Machine.alloc_shared machine "tail" (Value.Int 0) in
  let alloc_idx = Machine.alloc_shared machine "alloc_idx" (Value.Int 1) in
  let node_val = Array.init cap (fun i -> shared "node[%d].val" i Value.Bot) in
  let node_next = Array.init cap (fun i -> shared "node[%d].next" i Value.Bot) in
  let node_deq = Array.init cap (fun i -> shared "node[%d].deq" i Value.Bot) in
  let enq ~pid v =
    let idx = Fiber.faa alloc_idx 1 in
    if idx >= cap then invalid_arg "Plain.queue: pool exhausted";
    Fiber.write node_val.(idx) v;
    let rec loop () =
      let last = Value.to_int (Fiber.read tail) in
      let nxt = Fiber.read node_next.(last) in
      if Value.equal nxt Value.Bot then
        if Fiber.cas node_next.(last) Value.Bot (Value.Int idx) then begin
          ignore (Fiber.cas tail (Value.Int last) (Value.Int idx));
          Spec.ack
        end
        else loop ()
      else begin
        ignore (Fiber.cas tail (Value.Int last) nxt);
        loop ()
      end
    in
    ignore pid;
    loop ()
  in
  let deq ~pid =
    let rec loop () =
      let first = Value.to_int (Fiber.read head) in
      let nxt = Fiber.read node_next.(first) in
      if Value.equal nxt Value.Bot then Value.Str "empty"
      else
        let n = Value.to_int nxt in
        if
          Value.equal (Fiber.read node_deq.(n)) Value.Bot
          && Fiber.cas node_deq.(n) Value.Bot (Value.Int pid)
        then begin
          ignore (Fiber.cas head (Value.Int first) (Value.Int n));
          Fiber.read node_val.(n)
        end
        else begin
          ignore (Fiber.cas head (Value.Int first) (Value.Int n));
          loop ()
        end
    in
    loop ()
  in
  let invoke ~pid (op : Spec.op) =
    match (op.Spec.name, op.Spec.args) with
    | "enq", [| v |] -> enq ~pid v
    | "deq", [||] -> deq ~pid
    | _ -> Detectable.Base.bad_op "Plain.queue" op
  in
  no_recovery_inst ~descr:"plain queue (not recoverable)"
    ~spec:(Spec.fifo_queue ()) ~invoke
