open Nvm
open Runtime
open History
open Detectable

type t = {
  ctx : Base.ctx;
  c : Loc.t;  (* (value, (writer pid, writer seq)) *)
  rem : Loc.t array;  (* rem.(w): max seq of w's tuples observed in C *)
  seq_p : Loc.t array;
  rd_p : Loc.t array;  (* recovery data: C's content before the CAS *)
  init : Value.t;
}

let tag pid seq = Value.pair (Value.Int pid) (Value.Int seq)

let create ?persist machine ~n ~init =
  let ctx = Base.make_ctx ?persist machine ~n in
  {
    ctx;
    c = Machine.alloc_shared machine "C" (Value.pair init (tag 0 0));
    rem =
      Array.init n (fun w ->
          Machine.alloc_shared machine (Printf.sprintf "rem[%d]" w)
            (Value.Int 0));
    seq_p =
      Array.init n (fun pid ->
          Machine.alloc_private machine ~pid "seq" (Value.Int 0));
    rd_p =
      Array.init n (fun pid -> Machine.alloc_private machine ~pid "RD" Value.Bot);
    init;
  }

(* Raise rem.(w) to at least [s] (monotone maximum, lock-free). *)
let rec record_removal t ~w ~s =
  let cur = Base.rd t.ctx t.rem.(w) in
  if Value.to_int cur >= s then ()
  else if Base.casl t.ctx t.rem.(w) cur (Value.Int s) then ()
  else record_removal t ~w ~s

let cas_body t ~pid ~old_v ~new_v =
  let ctx = t.ctx in
  if Value.equal old_v new_v then begin
    (* identity CAS: read-only, same reasoning as in {!Detectable.Dcas} —
       the tagged pair CAS would spuriously fail under tag churn *)
    let cv = Base.rd ctx t.c in
    let res = Value.equal (Value.nth cv 0) old_v in
    Base.set_resp ctx ~pid (Value.Bool res);
    Value.Bool res
  end
  else begin
  let cv = Base.rd ctx t.c in
  let value = Value.nth cv 0 in
  if not (Value.equal value old_v) then begin
    Base.set_resp ctx ~pid (Value.Bool false);
    Value.Bool false
  end
  else begin
    let victim = Value.nth cv 1 in
    let w = Value.to_int (Value.nth victim 0) in
    let ws = Value.to_int (Value.nth victim 1) in
    let s = Value.to_int (Base.rd ctx t.seq_p.(pid)) + 1 in
    Base.wr ctx t.seq_p.(pid) (Value.Int s); (* burn a unique tag *)
    Base.wr ctx t.rd_p.(pid) cv;
    (* record the victim before attempting to remove it *)
    record_removal t ~w ~s:ws;
    Base.set_cp ctx ~pid 1;
    let res = Base.casl ctx t.c cv (Value.pair new_v (tag pid s)) in
    Base.set_resp ctx ~pid (Value.Bool res);
    Value.Bool res
  end
  end

let cas_recover t ~pid =
  let ctx = t.ctx in
  let resp = Base.get_resp ctx ~pid in
  if not (Value.equal resp Value.Bot) then resp
  else if Base.get_cp ctx ~pid = 0 then Sched.Obj_inst.fail
  else begin
    let s = Value.to_int (Base.rd ctx t.seq_p.(pid)) in
    let rv = Base.rd ctx t.rd_p.(pid) in
    let cur = Base.rd ctx t.c in
    if Value.equal (Value.nth cur 1) (tag pid s) then begin
      (* our tuple is still installed *)
      Base.set_resp ctx ~pid (Value.Bool true);
      Value.Bool true
    end
    else if Value.equal cur rv then
      (* unchanged since our read: with unique tags, the CAS certainly
         never executed *)
      Sched.Obj_inst.fail
    else if Value.to_int (Base.rd ctx t.rem.(pid)) >= s then begin
      (* our tuple was observed in C (and since removed): the CAS
         succeeded *)
      Base.set_resp ctx ~pid (Value.Bool true);
      Value.Bool true
    end
    else
      (* the CAS either failed or never executed: not linearized *)
      Sched.Obj_inst.fail
  end

let instance t =
  let ctx = t.ctx in
  let invoke ~pid (op : Spec.op) =
    match (op.Spec.name, op.Spec.args) with
    | "read", [||] ->
        let v = Value.nth (Base.rd ctx t.c) 0 in
        Base.set_resp ctx ~pid v;
        v
    | "cas", [| old_v; new_v |] -> cas_body t ~pid ~old_v ~new_v
    | _ -> Base.bad_op "Ucas" op
  in
  let recover ~pid (op : Spec.op) =
    match (op.Spec.name, op.Spec.args) with
    | "read", [||] ->
        let resp = Base.get_resp ctx ~pid in
        if Value.equal resp Value.Bot then begin
          let v = Value.nth (Base.rd ctx t.c) 0 in
          Base.set_resp ctx ~pid v;
          v
        end
        else resp
    | "cas", [| _; _ |] -> cas_recover t ~pid
    | _ -> Base.bad_op "Ucas" op
  in
  {
    Sched.Obj_inst.descr = "ucas (unbounded tags, after Ben-David et al.)";
    spec = Spec.cas_cell t.init;
    announce = Base.std_announce ctx;
    invoke;
    recover;
    clear = (fun ~pid -> Base.std_clear ctx ~pid);
    pending = (fun ~pid -> Base.std_pending ctx ~pid);
    strict_recovery = true;
    id_symmetric = false;
  }

let shared_locs t = t.c :: Array.to_list t.rem
