open Nvm
open Runtime
open History
open Detectable

type t = {
  ctx : Base.ctx;
  r : Loc.t;  (* (value, (writer pid, writer seq)) *)
  seq_p : Loc.t array;  (* per-process persistent sequence counter *)
  rd_p : Loc.t array;  (* recovery data: R's content before the write *)
  init : Value.t;
}

let tag pid seq = Value.pair (Value.Int pid) (Value.Int seq)

let create ?persist machine ~n ~init =
  let ctx = Base.make_ctx ?persist machine ~n in
  {
    ctx;
    (* the initial value is attributed to a fictitious write by process 0
       with sequence number 0 *)
    r = Machine.alloc_shared machine "R" (Value.pair init (tag 0 0));
    seq_p =
      Array.init n (fun pid ->
          Machine.alloc_private machine ~pid "seq" (Value.Int 0));
    rd_p =
      Array.init n (fun pid -> Machine.alloc_private machine ~pid "RD" Value.Bot);
    init;
  }

let write_body t ~pid value =
  let ctx = t.ctx in
  let s = Value.to_int (Base.rd ctx t.seq_p.(pid)) + 1 in
  Base.wr ctx t.seq_p.(pid) (Value.Int s); (* burn a unique tag *)
  let rv = Base.rd ctx t.r in
  Base.wr ctx t.rd_p.(pid) rv;
  Base.set_cp ctx ~pid 1;
  Base.wr ctx t.r (Value.pair value (tag pid s));
  Base.set_resp ctx ~pid Spec.ack;
  Spec.ack

let write_recover t ~pid =
  let ctx = t.ctx in
  if not (Value.equal (Base.get_resp ctx ~pid) Value.Bot) then Spec.ack
  else if Base.get_cp ctx ~pid = 0 then Sched.Obj_inst.fail
  else begin
    let s = Value.to_int (Base.rd ctx t.seq_p.(pid)) in
    let rv = Base.rd ctx t.rd_p.(pid) in
    let cur = Base.rd ctx t.r in
    if Value.equal (Value.nth cur 1) (tag pid s) then begin
      (* our tagged value is installed: the write was linearized *)
      Base.set_resp ctx ~pid Spec.ack;
      Spec.ack
    end
    else if Value.equal cur rv then
      (* unchanged since the pre-write read: with unique tags, our write
         certainly never executed *)
      Sched.Obj_inst.fail
    else begin
      (* some other write intervened: ours either executed and was
         overwritten, or linearizes immediately before the intervener *)
      Base.set_resp ctx ~pid Spec.ack;
      Spec.ack
    end
  end

let read_body t ~pid =
  let v = Value.nth (Base.rd t.ctx t.r) 0 in
  Base.set_resp t.ctx ~pid v;
  v

let instance t =
  let ctx = t.ctx in
  let invoke ~pid (op : Spec.op) =
    match (op.Spec.name, op.Spec.args) with
    | "read", [||] -> read_body t ~pid
    | "write", [| v |] -> write_body t ~pid v
    | _ -> Base.bad_op "Urw" op
  in
  let recover ~pid (op : Spec.op) =
    match (op.Spec.name, op.Spec.args) with
    | "read", [||] ->
        let resp = Base.get_resp ctx ~pid in
        if Value.equal resp Value.Bot then read_body t ~pid else resp
    | "write", [| _ |] -> write_recover t ~pid
    | _ -> Base.bad_op "Urw" op
  in
  {
    Sched.Obj_inst.descr = "urw (unbounded tags, after Attiya et al.)";
    spec = Spec.register t.init;
    announce = Base.std_announce ctx;
    invoke;
    recover;
    clear = (fun ~pid -> Base.std_clear ctx ~pid);
    pending = (fun ~pid -> Base.std_pending ctx ~pid);
    strict_recovery = true;
    id_symmetric = false;
  }

let shared_locs t = [ t.r ]
