open Nvm
open Runtime

(** Deliberately broken ablations.

    Each variant deletes exactly one mechanism the paper proves necessary,
    so that (a) the history checker demonstrably catches real violations —
    the test suite's sanity check on the whole oracle chain — and (b) the
    experiments can show each mechanism is load-bearing:

    - {!rw_no_aux_refail} / {!rw_no_aux_reexec}: a read/write object whose
      operations and recovery use {e no auxiliary state} (no checkpoint,
      no persisted response) — the hypothesis Theorem 2 forbids for
      doubly-perturbing objects.  Whatever the recovery answers, some
      crash point produces an inconsistent history: always answering
      [fail] denies a write that a concurrent read already observed;
      re-executing the write linearizes it twice around another process's
      write (the Figure 2 execution).
    - {!drw_no_toggle}: Algorithm 1 without the toggle-bit arrays — its
      recovery falls to the ABA problem the toggles exist to solve.
    - {!dcas_no_vec}: Algorithm 2 without the per-process flip vector —
      its recovery guesses from [C]'s current value and both
      false-positive and false-negative verdicts are reachable.

    Every variant still {e announces} operations (the system must know
    which recovery to dispatch); what is ablated is the state the
    operation itself reads.

    [?persist] (default [false]) follows every shared access with a
    persist of the touched line, as in {!Detectable.Base.make_ctx} — the
    standard Section 6 transformation for running these ablations on a
    shared-cache machine under a non-atomic fault model. *)

val rw_no_aux_refail :
  ?persist:bool -> Machine.t -> n:int -> init:Value.t -> Sched.Obj_inst.t
(** Recovery always answers [fail]. *)

val rw_no_aux_reexec :
  ?persist:bool -> Machine.t -> n:int -> init:Value.t -> Sched.Obj_inst.t
(** Recovery re-executes the operation and answers its response. *)

val drw_no_toggle :
  ?persist:bool -> Machine.t -> n:int -> init:Value.t -> Sched.Obj_inst.t
(** Algorithm 1 with the ABA defence removed. *)

val dcas_no_vec :
  ?persist:bool -> Machine.t -> n:int -> init:Value.t -> Sched.Obj_inst.t
(** Algorithm 2 with the flip vector removed. *)
