open Nvm
open Runtime
open History
open Detectable

type t = {
  ctx : Base.ctx;
  head : Loc.t;
  tail : Loc.t;
  alloc_idx : Loc.t;
  node_val : Loc.t array;
  node_next : Loc.t array;
  node_deq : Loc.t array;
  capacity : int;
}

let create ?persist machine ~n ~capacity =
  if capacity < 1 then invalid_arg "Dur_queue.create: capacity must be >= 1";
  let ctx = Base.make_ctx ?persist machine ~n in
  let cap = capacity + 1 in
  let shared fmt = Printf.ksprintf (fun s -> Machine.alloc_shared machine s) fmt in
  {
    ctx;
    head = Machine.alloc_shared machine "head" (Value.Int 0);
    tail = Machine.alloc_shared machine "tail" (Value.Int 0);
    alloc_idx = Machine.alloc_shared machine "alloc_idx" (Value.Int 1);
    node_val = Array.init cap (fun i -> shared "node[%d].val" i Value.Bot);
    node_next = Array.init cap (fun i -> shared "node[%d].next" i Value.Bot);
    node_deq = Array.init cap (fun i -> shared "node[%d].deq" i Value.Bot);
    capacity = cap;
  }

let enq t ~pid:_ v =
  let ctx = t.ctx in
  let idx = Base.faal ctx t.alloc_idx 1 in
  if idx >= t.capacity then
    invalid_arg "Dur_queue: node pool exhausted (raise ~capacity)";
  Base.wr ctx t.node_val.(idx) v;
  let rec loop () =
    let last = Value.to_int (Base.rd ctx t.tail) in
    let nxt = Base.rd ctx t.node_next.(last) in
    if Value.equal nxt Value.Bot then
      if Base.casl ctx t.node_next.(last) Value.Bot (Value.Int idx) then begin
        ignore (Base.casl ctx t.tail (Value.Int last) (Value.Int idx));
        Spec.ack
      end
      else loop ()
    else begin
      ignore (Base.casl ctx t.tail (Value.Int last) nxt);
      loop ()
    end
  in
  loop ()

let deq t ~pid =
  let ctx = t.ctx in
  let rec loop () =
    let first = Value.to_int (Base.rd ctx t.head) in
    let nxt = Base.rd ctx t.node_next.(first) in
    if Value.equal nxt Value.Bot then Value.Str "empty"
    else begin
      let n = Value.to_int nxt in
      let claimed = Base.rd ctx t.node_deq.(n) in
      if
        Value.equal claimed Value.Bot
        && Base.casl ctx t.node_deq.(n) Value.Bot (Value.Int pid)
      then begin
        ignore (Base.casl ctx t.head (Value.Int first) (Value.Int n));
        Base.rd ctx t.node_val.(n)
      end
      else begin
        ignore (Base.casl ctx t.head (Value.Int first) (Value.Int n));
        loop ()
      end
    end
  in
  loop ()

let instance t =
  let ctx = t.ctx in
  let invoke ~pid (op : Spec.op) =
    match (op.Spec.name, op.Spec.args) with
    | "enq", [| v |] -> enq t ~pid v
    | "deq", [||] -> deq t ~pid
    | _ -> Base.bad_op "Dur_queue" op
  in
  {
    Sched.Obj_inst.descr = "dur_queue (durable, NOT detectable)";
    spec = Spec.fifo_queue ();
    announce = Base.std_announce ctx;
    invoke;
    (* the structure is consistent after a crash, but nothing records
       whether the interrupted operation took effect *)
    recover = (fun ~pid:_ _ -> Sched.Obj_inst.unknown);
    clear = (fun ~pid -> Base.std_clear ctx ~pid);
    pending = (fun ~pid -> Base.std_pending ctx ~pid);
    strict_recovery = false;
    id_symmetric = false;
  }

let shared_locs t =
  [ t.head; t.tail; t.alloc_idx ]
  @ Array.to_list t.node_val
  @ Array.to_list t.node_next
  @ Array.to_list t.node_deq
