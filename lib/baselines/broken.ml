open Nvm
open Runtime
open History
open Detectable

(* A read/write object that keeps no auxiliary state: the write is a bare
   store followed by a "return instruction" (a yield step), so a crash can
   separate the store from the return exactly as in Figure 2.  Recovery
   decides from shared state alone — which Theorem 2 proves cannot work. *)
let rw_no_aux ?persist machine ~n ~init ~reexec =
  let ctx = Base.make_ctx ?persist machine ~n in
  let r = Machine.alloc_shared machine "R" init in
  let invoke ~pid:_ (op : Spec.op) =
    match (op.Spec.name, op.Spec.args) with
    | "read", [||] ->
        let v = Base.rd ctx r in
        Fiber.yield ();
        v
    | "write", [| v |] ->
        Base.wr ctx r v;
        Fiber.yield ();
        Spec.ack
    | _ -> Base.bad_op "Broken.rw_no_aux" op
  in
  let recover ~pid op =
    if reexec then invoke ~pid op else Sched.Obj_inst.fail
  in
  {
    Sched.Obj_inst.descr =
      (if reexec then "rw-no-aux (recovery re-executes)"
       else "rw-no-aux (recovery answers fail)");
    spec = Spec.register init;
    announce = Base.std_announce ctx;
    invoke;
    recover;
    clear = (fun ~pid -> Base.std_clear ctx ~pid);
    pending = (fun ~pid -> Base.std_pending ctx ~pid);
    strict_recovery = false;
    id_symmetric = false;
  }

let rw_no_aux_refail ?persist machine ~n ~init =
  rw_no_aux ?persist machine ~n ~init ~reexec:false

let rw_no_aux_reexec ?persist machine ~n ~init =
  rw_no_aux ?persist machine ~n ~init ~reexec:true

(* Algorithm 1 without the toggle-bit arrays: the register holds
   (value, writer) and recovery at checkpoint 1 concludes "not linearized"
   whenever R still holds what it held before the write — which the ABA
   problem makes wrong. *)
let drw_no_toggle ?persist machine ~n ~init =
  let ctx = Base.make_ctx ?persist machine ~n in
  let r = Machine.alloc_shared machine "R" (Value.pair init (Value.Int 0)) in
  let rd_p =
    Array.init n (fun pid -> Machine.alloc_private machine ~pid "RD" Value.Bot)
  in
  let complete ~pid =
    Base.set_cp ctx ~pid 2;
    Base.set_resp ctx ~pid Spec.ack;
    Spec.ack
  in
  let write_body ~pid value =
    let rv = Base.rd ctx r in
    Base.wr ctx rd_p.(pid) rv;
    let rv' = Base.rd ctx r in
    if Value.equal rv' rv then begin
      Base.set_cp ctx ~pid 1;
      Base.wr ctx r (Value.pair value (Value.Int pid))
    end;
    complete ~pid
  in
  let write_recover ~pid =
    if not (Value.equal (Base.get_resp ctx ~pid) Value.Bot) then Spec.ack
    else if Base.get_cp ctx ~pid = 0 then Sched.Obj_inst.fail
    else if
      Base.get_cp ctx ~pid = 1
      && Value.equal (Base.rd ctx r) (Base.rd ctx rd_p.(pid))
      (* missing: the toggle-bit check that rules out ABA *)
    then Sched.Obj_inst.fail
    else complete ~pid
  in
  let read_body ~pid =
    let v = Value.nth (Base.rd ctx r) 0 in
    Base.set_resp ctx ~pid v;
    v
  in
  let invoke ~pid (op : Spec.op) =
    match (op.Spec.name, op.Spec.args) with
    | "read", [||] -> read_body ~pid
    | "write", [| v |] -> write_body ~pid v
    | _ -> Base.bad_op "Broken.drw_no_toggle" op
  in
  let recover ~pid (op : Spec.op) =
    match (op.Spec.name, op.Spec.args) with
    | "read", [||] ->
        let resp = Base.get_resp ctx ~pid in
        if Value.equal resp Value.Bot then read_body ~pid else resp
    | "write", [| _ |] -> write_recover ~pid
    | _ -> Base.bad_op "Broken.drw_no_toggle" op
  in
  {
    Sched.Obj_inst.descr = "drw-no-toggle (ABA-unsafe ablation)";
    spec = Spec.register init;
    announce = Base.std_announce ctx;
    invoke;
    recover;
    clear = (fun ~pid -> Base.std_clear ctx ~pid);
    pending = (fun ~pid -> Base.std_pending ctx ~pid);
    strict_recovery = true;
    id_symmetric = false;
  }

(* Algorithm 2 without the flip vector: C holds the bare value and
   recovery guesses success iff C currently equals the CAS's new value. *)
let dcas_no_vec ?persist machine ~n ~init =
  let ctx = Base.make_ctx ?persist machine ~n in
  let c = Machine.alloc_shared machine "C" init in
  let cas_body ~pid ~old_v ~new_v =
    let cv = Base.rd ctx c in
    if not (Value.equal cv old_v) then begin
      Base.set_resp ctx ~pid (Value.Bool false);
      Value.Bool false
    end
    else begin
      Base.set_cp ctx ~pid 1;
      let res = Base.casl ctx c old_v new_v in
      Base.set_resp ctx ~pid (Value.Bool res);
      Value.Bool res
    end
  in
  let cas_recover ~pid ~new_v =
    let resp = Base.get_resp ctx ~pid in
    if not (Value.equal resp Value.Bot) then resp
    else if Base.get_cp ctx ~pid = 0 then Sched.Obj_inst.fail
    else if Value.equal (Base.rd ctx c) new_v then begin
      (* guess: C holds our new value, so "we must have succeeded" *)
      Base.set_resp ctx ~pid (Value.Bool true);
      Value.Bool true
    end
    else Sched.Obj_inst.fail
  in
  let invoke ~pid (op : Spec.op) =
    match (op.Spec.name, op.Spec.args) with
    | "read", [||] ->
        let v = Base.rd ctx c in
        Base.set_resp ctx ~pid v;
        v
    | "cas", [| old_v; new_v |] -> cas_body ~pid ~old_v ~new_v
    | _ -> Base.bad_op "Broken.dcas_no_vec" op
  in
  let recover ~pid (op : Spec.op) =
    match (op.Spec.name, op.Spec.args) with
    | "read", [||] ->
        let resp = Base.get_resp ctx ~pid in
        if Value.equal resp Value.Bot then begin
          let v = Base.rd ctx c in
          Base.set_resp ctx ~pid v;
          v
        end
        else resp
    | "cas", [| _; new_v |] -> cas_recover ~pid ~new_v
    | _ -> Base.bad_op "Broken.dcas_no_vec" op
  in
  {
    Sched.Obj_inst.descr = "dcas-no-vec (guessing ablation)";
    spec = Spec.cas_cell init;
    announce = Base.std_announce ctx;
    invoke;
    recover;
    clear = (fun ~pid -> Base.std_clear ctx ~pid);
    pending = (fun ~pid -> Base.std_pending ctx ~pid);
    strict_recovery = true;
    id_symmetric = true;
  }
