open Sched

type fault_plan = No_fault | Kill_after of int | Hang_after of int

type chaos = { kill_prob : float; hang_prob : float; chaos_seed : int }

let no_chaos = { kill_prob = 0.0; hang_prob = 0.0; chaos_seed = 0 }

let chaos_to_string c =
  Printf.sprintf "kill=%g,hang=%g,seed=%d" c.kill_prob c.hang_prob c.chaos_seed

let chaos_of_string s =
  let parse () =
    List.fold_left
      (fun c part ->
        let part = String.trim part in
        if part = "" then c
        else
          match String.index_opt part '=' with
          | None -> failwith part
          | Some eq -> (
              let k = String.trim (String.sub part 0 eq) in
              let v =
                String.trim
                  (String.sub part (eq + 1) (String.length part - eq - 1))
              in
              match k with
              | "kill" -> { c with kill_prob = float_of_string v }
              | "hang" -> { c with hang_prob = float_of_string v }
              | "seed" -> { c with chaos_seed = int_of_string v }
              | _ -> failwith k))
      no_chaos
      (String.split_on_char ',' s)
  in
  match parse () with
  | c ->
      let ok p = p >= 0.0 && p <= 1.0 in
      if not (ok c.kill_prob && ok c.hang_prob) then
        Error "chaos probabilities must lie in [0, 1]"
      else if c.kill_prob +. c.hang_prob > 1.0 then
        Error "chaos kill + hang must not exceed 1"
      else Ok c
  | exception _ ->
      Error
        (Printf.sprintf "bad chaos spec %S (expected kill=P,hang=Q,seed=S)" s)

type config = {
  workers : int;
  heartbeat_every : int;
  heartbeat_timeout : float;
  retry_budget : int;
  backoff_base : float;
  backoff_cap : float;
  chaos : chaos;
  chaos_plan : (spawn:int -> range_len:int -> fault_plan) option;
}

let default_config =
  {
    workers = 4;
    heartbeat_every = 16;
    heartbeat_timeout = 30.0;
    retry_budget = 3;
    backoff_base = 0.05;
    backoff_cap = 2.0;
    chaos = no_chaos;
    chaos_plan = None;
  }

type counters = {
  workers_spawned : int;
  worker_deaths : int;
  worker_hangs : int;
  rescues : int;
  retries : int;
  degradations : int;
  inproc_trials : int;
}

let supervision (c : counters) (chaos : chaos) : Torture.supervision =
  {
    Torture.s_workers_spawned = c.workers_spawned;
    s_worker_deaths = c.worker_deaths;
    s_worker_hangs = c.worker_hangs;
    s_rescues = c.rescues;
    s_retries = c.retries;
    s_degradations = c.degradations;
    s_inproc_trials = c.inproc_trials;
    s_chaos_kill = chaos.kill_prob;
    s_chaos_hang = chaos.hang_prob;
    s_chaos_seed = chaos.chaos_seed;
  }

(* ------------------------------------------------------------------ *)
(* worker side *)

let worker_main ?(fault = No_fault) ?(out = stdout) ~heartbeat_every ~root_seed
    ~lo ~hi spec =
  if lo < 0 || hi < lo then invalid_arg "Campaign.worker_main: bad range";
  let emit line =
    output_string out line;
    output_char out '\n';
    flush out
  in
  (* announce liveness before the (possibly slow) first trial, so the
     supervisor's hang detector starts from a real signal *)
  emit {|{ "event": "heartbeat", "done": 0 }|};
  let scratch = Session.make_scratch () in
  let completed = ref 0 in
  for i = lo to hi - 1 do
    (match fault with
    | Kill_after k when !completed = k ->
        (* chaos: an abrupt crash — no done marker, distinctive status *)
        exit 70
    | Hang_after k when !completed = k ->
        (* chaos: a wedged worker — alive but silent, forever *)
        while true do
          Unix.sleepf 3600.0
        done
    | _ -> ());
    let tr = Torture.run_trial spec ~scratch ~root:root_seed ~index:i in
    emit (Torture.trial_line i tr);
    incr completed;
    if heartbeat_every > 0 && !completed mod heartbeat_every = 0 then
      emit (Printf.sprintf {|{ "event": "heartbeat", "done": %d }|} !completed)
  done;
  emit (Printf.sprintf {|{ "event": "done", "lo": %d, "hi": %d }|} lo hi)

(* ------------------------------------------------------------------ *)
(* supervisor side *)

(* a pending (sub)range of trial indices [r_lo, r_hi), with its respawn
   history: attempt 1 is the first spawn, attempt n+1 the n-th respawn *)
type range = { r_lo : int; r_hi : int; r_attempt : int; r_not_before : float }

type worker = {
  w_pid : int;
  w_fd : Unix.file_descr;
  w_buf : Buffer.t;  (* partial-line carry between reads *)
  mutable w_last : float;  (* last byte seen (heartbeat or trial) *)
  w_lo : int;
  w_hi : int;
  mutable w_next : int;  (* first index not yet streamed by this worker *)
  w_attempt : int;
}

(* maximal contiguous runs of the missing trial indices *)
let coalesce missing =
  let rec go acc run = function
    | [] -> List.rev (match run with None -> acc | Some r -> r :: acc)
    | i :: rest -> (
        match run with
        | Some (lo, hi) when i = hi -> go acc (Some (lo, hi + 1)) rest
        | Some r -> go (r :: acc) (Some (i, i + 1)) rest
        | None -> go acc (Some (i, i + 1)) rest)
  in
  go [] None missing

(* split a run into near-equal pieces of at most [target] trials *)
let split_run (lo, hi) target =
  let len = hi - lo in
  let pieces = max 1 ((len + target - 1) / target) in
  List.filter_map
    (fun p ->
      let a = lo + (p * len / pieces) and b = lo + ((p + 1) * len / pieces) in
      if b > a then Some (a, b) else None)
    (List.init pieces Fun.id)

let run ?checkpoint ?(resume = false) ?(shrink = true) ?should_stop
    ?(config = default_config) ~worker_argv ~root_seed ~trials spec =
  if trials < 0 then invalid_arg "Campaign.run: trials must be non-negative";
  if resume && checkpoint = None then
    invalid_arg "Campaign.run: resume requires a checkpoint path";
  if config.workers < 1 then invalid_arg "Campaign.run: workers must be >= 1";
  let should_stop = Option.value should_stop ~default:(fun () -> false) in
  let now () = Unix.gettimeofday () in
  let t0 = now () in
  let by_index = Array.make (max 1 trials) None in
  (match checkpoint with
  | Some path when resume && Sys.file_exists path ->
      List.iter
        (fun (i, tr) -> by_index.(i) <- Some tr)
        (Torture.read_checkpoint path spec ~root_seed ~trials)
  | _ -> ());
  let journal =
    match checkpoint with
    | None -> None
    | Some path ->
        Some (Torture.Journal.create ~path ~resume spec ~root_seed ~trials)
  in
  let jline l = Option.iter (fun j -> Torture.Journal.write j l) journal in
  let jevent fmt = Printf.ksprintf jline fmt in
  (* counters *)
  let spawned = ref 0
  and deaths = ref 0
  and hangs = ref 0
  and rescues = ref 0
  and retries = ref 0
  and degradations = ref 0
  and inproc = ref 0 in
  let parallelism = ref config.workers in
  (* pending-range queue (never long: at most one entry per live failure
     chain), ordered by insertion; entries may carry a backoff deadline *)
  let queue = ref [] in
  let enqueue r = queue := !queue @ [ r ] in
  let take_ready () =
    let t = now () in
    let rec go acc = function
      | [] -> None
      | r :: rest ->
          if r.r_not_before <= t then begin
            queue := List.rev_append acc rest;
            Some r
          end
          else go (r :: acc) rest
    in
    go [] !queue
  in
  let earliest_not_before () =
    List.fold_left
      (fun acc r ->
        match acc with
        | None -> Some r.r_not_before
        | Some t -> Some (Float.min t r.r_not_before))
      None !queue
  in
  (* initial ranges: contiguous runs of missing indices, split so a clean
     run hands one chunk to each worker *)
  let missing =
    List.filter (fun i -> by_index.(i) = None) (List.init trials Fun.id)
  in
  let total_missing = List.length missing in
  if total_missing > 0 then begin
    let target = max 1 ((total_missing + config.workers - 1) / config.workers) in
    List.iter
      (fun run ->
        List.iter
          (fun (lo, hi) ->
            enqueue { r_lo = lo; r_hi = hi; r_attempt = 1; r_not_before = 0.0 })
          (split_run run target))
      (coalesce missing)
  end;
  let chaos_draw =
    match config.chaos_plan with
    | Some plan -> plan
    | None ->
        fun ~spawn ~range_len ->
          let c = config.chaos in
          if c.kill_prob = 0.0 && c.hang_prob = 0.0 then No_fault
          else
            let g = Dtc_util.Prng.stream c.chaos_seed ~index:spawn in
            let u = Dtc_util.Prng.float g in
            if u < c.kill_prob then
              Kill_after (Dtc_util.Prng.int g (max 1 range_len))
            else if u < c.kill_prob +. c.hang_prob then
              Hang_after (Dtc_util.Prng.int g (max 1 range_len))
            else No_fault
  in
  let workers : worker list ref = ref [] in
  let spawn_range r =
    let fault = chaos_draw ~spawn:!spawned ~range_len:(r.r_hi - r.r_lo) in
    let argv = worker_argv ~lo:r.r_lo ~hi:r.r_hi ~fault in
    let rd, wr = Unix.pipe () in
    let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
    let pid = Unix.create_process argv.(0) argv devnull wr Unix.stderr in
    Unix.close wr;
    Unix.close devnull;
    incr spawned;
    if r.r_attempt > 1 then incr retries;
    jevent {|{ "event": "spawn", "pid": %d, "lo": %d, "hi": %d, "attempt": %d }|}
      pid r.r_lo r.r_hi r.r_attempt;
    workers :=
      {
        w_pid = pid;
        w_fd = rd;
        w_buf = Buffer.create 4096;
        w_last = now ();
        w_lo = r.r_lo;
        w_hi = r.r_hi;
        w_next = r.r_lo;
        w_attempt = r.r_attempt;
      }
      :: !workers
  in
  let process_line w line =
    let line = String.trim line in
    if line <> "" then begin
      w.w_last <- now ();
      match Tiny_json.parse line with
      | exception Tiny_json.Error _ -> () (* garbage on the pipe *)
      | j ->
          if Tiny_json.mem "event" j then () (* heartbeat/done: liveness *)
          else (
            match Torture.trial_of_json j with
            | exception _ -> ()
            | i, tr ->
                if i >= 0 && i < trials && by_index.(i) = None then begin
                  by_index.(i) <- Some tr;
                  jline (Torture.trial_line i tr)
                end;
                if i >= w.w_next then w.w_next <- i + 1)
    end
  in
  let rdbuf = Bytes.create 65536 in
  let read_worker w =
    match Unix.read w.w_fd rdbuf 0 (Bytes.length rdbuf) with
    | 0 -> `Eof
    | n ->
        Buffer.add_subbytes w.w_buf rdbuf 0 n;
        let s = Buffer.contents w.w_buf in
        let rec go start =
          match String.index_from_opt s start '\n' with
          | Some nl ->
              process_line w (String.sub s start (nl - start));
              go (nl + 1)
          | None ->
              Buffer.clear w.w_buf;
              Buffer.add_substring w.w_buf s start (String.length s - start)
        in
        go 0;
        `More
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> `More
  in
  let backoff attempt =
    Float.min config.backoff_cap
      (config.backoff_base *. (2.0 ** float_of_int (max 0 (attempt - 1))))
  in
  let first_missing lo hi =
    let rec go i = if i >= hi || by_index.(i) = None then i else go (i + 1) in
    go lo
  in
  let range_complete lo hi = first_missing lo hi >= hi in
  let kill_worker w =
    try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ()
  in
  (* after a SIGKILL the write end closes: drain whatever completed
     trials were still in flight, then fall through to the reaper *)
  let drain w =
    let rec go () = match read_worker w with `Eof -> () | `More -> go () in
    try go () with Unix.Unix_error _ -> ()
  in
  let inproc_scratch = lazy (Session.make_scratch ()) in
  let reap w ~hung =
    (try Unix.close w.w_fd with Unix.Unix_error _ -> ());
    (try ignore (Unix.waitpid [] w.w_pid) with Unix.Unix_error _ -> ());
    workers := List.filter (fun x -> x != w) !workers;
    if range_complete w.w_lo w.w_hi then
      jevent {|{ "event": "exit", "pid": %d, "lo": %d, "hi": %d }|} w.w_pid
        w.w_lo w.w_hi
    else begin
      if hung then incr hangs else incr deaths;
      incr rescues;
      let rem_lo = first_missing w.w_lo w.w_hi in
      jevent
        {|{ "event": %S, "pid": %d, "lo": %d, "hi": %d, "remaining_lo": %d, "attempt": %d }|}
        (if hung then "hang" else "death")
        w.w_pid w.w_lo w.w_hi rem_lo w.w_attempt;
      let a = w.w_attempt in
      if a <= config.retry_budget then
        enqueue
          {
            r_lo = rem_lo;
            r_hi = w.w_hi;
            r_attempt = a + 1;
            r_not_before = now () +. backoff a;
          }
      else if !parallelism > 1 then begin
        (* the range keeps failing: assume resource pressure and halve
           the process parallelism before trying again *)
        parallelism := max 1 (!parallelism / 2);
        incr degradations;
        jevent {|{ "event": "degrade", "parallelism": %d }|} !parallelism;
        enqueue
          {
            r_lo = rem_lo;
            r_hi = w.w_hi;
            r_attempt = a + 1;
            r_not_before = now () +. backoff a;
          }
      end
      else begin
        (* last resort: run the remainder in-process (no chaos, no
           subprocess) so the campaign is guaranteed to terminate *)
        jevent {|{ "event": "inproc", "lo": %d, "hi": %d }|} rem_lo w.w_hi;
        let scratch = Lazy.force inproc_scratch in
        for i = rem_lo to w.w_hi - 1 do
          if by_index.(i) = None then begin
            let tr = Torture.run_trial spec ~scratch ~root:root_seed ~index:i in
            by_index.(i) <- Some tr;
            jline (Torture.trial_line i tr);
            incr inproc
          end
        done
      end
    end
  in
  let interrupted = ref false in
  while (not !interrupted) && (!workers <> [] || !queue <> []) do
    if should_stop () then interrupted := true
    else begin
      let rec fill () =
        if List.length !workers < !parallelism then
          match take_ready () with
          | Some r ->
              spawn_range r;
              fill ()
          | None -> ()
      in
      fill ();
      if !workers = [] then (
        (* every pending range is in backoff: sleep toward the earliest
           deadline (capped so should_stop stays responsive) *)
        match earliest_not_before () with
        | Some t ->
            let d = t -. now () in
            if d > 0.0 then Unix.sleepf (Float.min d 0.2)
        | None -> ())
      else begin
        let fds = List.map (fun w -> w.w_fd) !workers in
        let timeout =
          let hb_deadline =
            List.fold_left
              (fun acc w -> Float.min acc (w.w_last +. config.heartbeat_timeout))
              infinity !workers
          in
          let d = hb_deadline -. now () in
          let d =
            match earliest_not_before () with
            | Some t -> Float.min d (t -. now ())
            | None -> d
          in
          Float.max 0.01 (Float.min d 0.25)
        in
        let readable =
          match Unix.select fds [] [] timeout with
          | r, _, _ -> r
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
        in
        List.iter
          (fun w ->
            if List.mem w.w_fd readable then
              match read_worker w with
              | `Eof -> reap w ~hung:false
              | `More -> ())
          !workers;
        let t = now () in
        List.iter
          (fun w ->
            if t -. w.w_last > config.heartbeat_timeout then begin
              kill_worker w;
              drain w;
              reap w ~hung:true
            end)
          !workers
      end
    end
  done;
  let completed = ref 0 in
  for i = 0 to trials - 1 do
    if by_index.(i) <> None then incr completed
  done;
  if !interrupted then begin
    List.iter
      (fun w ->
        kill_worker w;
        (try Unix.close w.w_fd with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] w.w_pid) with Unix.Unix_error _ -> ())
      !workers;
    jevent {|{ "event": "interrupted", "completed": %d, "total": %d }|}
      !completed trials;
    (match journal with Some j -> Torture.Journal.close j | None -> ());
    raise (Torture.Interrupted { completed = !completed; total = trials })
  end;
  (match journal with Some j -> Torture.Journal.close j | None -> ());
  if !completed < trials then
    invalid_arg "Campaign.run: supervisor lost a trial";
  let ordered = Array.init trials (fun i -> Option.get by_index.(i)) in
  let report = Torture.merge spec ~root_seed ~trials ~shrink ordered in
  let elapsed_s = now () -. t0 in
  let report =
    {
      report with
      Torture.elapsed_s;
      trials_per_sec = float_of_int trials /. Float.max elapsed_s 1e-9;
      domains_used = config.workers;
    }
  in
  ( report,
    {
      workers_spawned = !spawned;
      worker_deaths = !deaths;
      worker_hangs = !hangs;
      rescues = !rescues;
      retries = !retries;
      degradations = !degradations;
      inproc_trials = !inproc;
    } )
