(** Multi-process torture campaign supervisor.

    {!Torture.run} shards a campaign over OCaml domains inside one
    process; this module promotes the same deterministic trial streams
    to OS {e processes}.  A supervisor forks workers (normally
    [detect_cli torture-worker]), hands each a contiguous
    [(root_seed, lo, hi)] slice, and reads per-trial JSONL records plus
    periodic heartbeats from each worker's pipe.

    {2 Supervision semantics}

    - {b Death}: a worker whose pipe reaches EOF before its range is
      complete (detected and reaped with [waitpid]) has its {e remaining}
      range reassigned — completed trials were already streamed, so
      nothing reruns.
    - {b Hang}: a worker that emits nothing (trials or heartbeats) for
      [heartbeat_timeout] seconds is SIGKILLed, drained, and treated as
      a death.
    - {b Retry/backoff}: each failed range is respawned with capped
      exponential backoff ([backoff_base * 2^(attempt-1)], capped at
      [backoff_cap]) up to [retry_budget] retries.
    - {b Graceful degradation}: once a range exhausts its retry budget
      the supervisor halves process parallelism (repeatedly, down to 1)
      and keeps going; if failures persist at parallelism 1 the range
      runs {e in-process} via {!Torture.run_trial} — chaos-free by
      construction — so a campaign always terminates with a verdict.

    Because trial [i] is a pure function of [(spec, root_seed, i)], the
    merged report's deterministic fields are byte-identical to
    {!Torture.run}'s whatever the failure schedule; only the
    {!Torture.supervision} counters (rendered in the report's timing
    block) reflect what the supervisor had to do.

    {2 Chaos}

    [chaos] injects deterministic worker faults for testing the
    supervisor itself: each spawn draws from
    [Prng.stream chaos_seed ~index:spawn_counter] and with probability
    [kill_prob] the worker self-kills (exit 70) after a seeded number of
    trials, or with probability [hang_prob] stops emitting instead.  The
    final report must be byte-identical to an undisturbed run — that
    assertion is the chaos harness's whole point.

    {2 Checkpointing}

    With [~checkpoint] the supervisor journals every streamed trial line
    {e and} every lifecycle event (spawn / exit / death / hang / rescue /
    degrade / inproc / interrupted) to the
    [detectable-torture-checkpoint/v2] stream; [~resume] reloads
    completed trials exactly like {!Torture.run}, so a campaign resumed
    after a supervisor crash still produces a byte-identical report. *)

type fault_plan =
  | No_fault
  | Kill_after of int  (** self-kill (exit 70) after this many trials *)
  | Hang_after of int  (** stop emitting after this many trials *)

type chaos = {
  kill_prob : float;
  hang_prob : float;
  chaos_seed : int;
}

val no_chaos : chaos

val chaos_of_string : string -> (chaos, string) result
(** Parse ["kill=P,hang=Q,seed=S"] (fields optional, any order).
    Probabilities must lie in [[0, 1]] with [kill + hang <= 1]. *)

val chaos_to_string : chaos -> string

type config = {
  workers : int;  (** initial process parallelism (>= 1) *)
  heartbeat_every : int;  (** worker heartbeat period, in trials *)
  heartbeat_timeout : float;  (** seconds of silence before a SIGKILL *)
  retry_budget : int;  (** per-range respawns before degradation *)
  backoff_base : float;  (** seconds; retry k waits base * 2^(k-1) *)
  backoff_cap : float;  (** ceiling on the backoff delay *)
  chaos : chaos;
  chaos_plan : (spawn:int -> range_len:int -> fault_plan) option;
      (** test hook: overrides the [chaos] draw per spawn when set *)
}

val default_config : config
(** 4 workers, heartbeat every 16 trials / 30 s timeout, retry budget 3,
    backoff 0.05 s capped at 2 s, no chaos. *)

type counters = {
  workers_spawned : int;
  worker_deaths : int;
  worker_hangs : int;
  rescues : int;
  retries : int;
  degradations : int;
  inproc_trials : int;
}

val supervision : counters -> chaos -> Torture.supervision
(** Package the counters (plus the chaos parameters) for
    {!Torture.to_json}'s [timing.supervision] block. *)

val worker_main :
  ?fault:fault_plan ->
  ?out:out_channel ->
  heartbeat_every:int ->
  root_seed:int ->
  lo:int ->
  hi:int ->
  Torture.spec ->
  unit
(** The worker half of the protocol (what [detect_cli torture-worker]
    runs): execute trials [lo .. hi-1] of the campaign, streaming to
    [out] (default [stdout]) one {!Torture.trial_line} per trial in
    index order, a [{"event":"heartbeat","done":n}] line immediately on
    start and then every [heartbeat_every] trials, and a
    [{"event":"done","lo":..,"hi":..}] line on completion.  [fault]
    injects the chaos behaviours above (testing only). *)

val run :
  ?checkpoint:string ->
  ?resume:bool ->
  ?shrink:bool ->
  ?should_stop:(unit -> bool) ->
  ?config:config ->
  worker_argv:(lo:int -> hi:int -> fault:fault_plan -> string array) ->
  root_seed:int ->
  trials:int ->
  Torture.spec ->
  Torture.report * counters
(** Supervise a campaign: split the missing trial indices into
    contiguous ranges (one per worker), spawn [worker_argv ~lo ~hi
    ~fault] for each ([argv.(0)] is the executable path; [fault] is the
    chaos plan drawn for that spawn — encode it into the child's
    command line), and merge the streamed trials into a report exactly
    as {!Torture.run} would.  The report's timing block carries
    wall-clock/throughput; its deterministic fields are byte-identical
    to a single-process run's.  [should_stop] is polled in the event
    loop; when it turns true the supervisor kills its workers, journals
    an interrupted event, and raises {!Torture.Interrupted}.  Raises
    [Invalid_argument] on a checkpoint header mismatch, like
    {!Torture.run}. *)
