open History
open Nvm

(** Step-level execution sessions.

    A session owns the fibers of all processes running a workload against
    one object instance, and exposes the two moves of the paper's
    adversary: advance one process by one primitive step, or crash the
    whole system.  {!Driver.run} is a policy loop over a session; the
    exhaustive model checker and the Theorem 2 adversary drive sessions
    directly to control interleavings and crash points exactly. *)

type policy = Retry | Give_up

type t

type scratch
(** Reusable per-domain session scratch: the two reporting hash tables
    ([op_steps]/[rec_steps]), pre-sized once and [Hashtbl.reset] between
    trials.  A torture worker makes one per domain and threads it
    through every trial's session, so per-trial table allocation
    disappears.  A scratch must not be shared by two live sessions. *)

val make_scratch : unit -> scratch

val create :
  ?policy:policy ->
  ?undo:bool ->
  ?scratch:scratch ->
  Runtime.Machine.t ->
  Obj_inst.t ->
  workloads:Spec.op list array ->
  t
(** Start a session: every process's fiber is launched up to its first
    primitive step (invocation events for first operations are emitted).
    Default policy: [Retry].

    [~undo:true] puts the session in {e undo mode}: the machine's write
    journal is enabled and every external input a process program
    consumes (step responses, uid draws, pending queries) is logged, so
    the whole configuration can be checkpointed with {!mark} and rolled
    back with {!rewind} in O(work-since-mark) instead of replaying the
    decision prefix from the root.  Outside undo mode the session
    behaves exactly as before, with zero bookkeeping overhead. *)

val runnable : t -> int list
(** Pids with a pending primitive step, ascending.  Empty iff the run is
    over. *)

val runnable_into : t -> int array -> int
(** [runnable_into s buf] writes the runnable pids (ascending, same set
    as {!runnable}) into [buf] and returns how many there are —
    allocation-free, for callers that scan the runnable set once per
    node/step.  Raises [Invalid_argument] if [buf] is shorter than the
    process count. *)

val finished : t -> bool

val n_procs : t -> int
(** Number of processes in the session (the workload array length). *)

val step : t -> int -> unit
(** [step s pid] executes [pid]'s pending primitive step.  Raises
    [Invalid_argument] if [pid] is not runnable. *)

val pending_request : t -> int -> Runtime.Prim.request option
(** [pending_request s pid] peeks at the primitive request [pid]'s fiber
    is suspended on — the step that [step s pid] would execute — without
    executing anything.  [None] if the process is not runnable.  In undo
    mode this may rebuild a stale fiber (ghost replay), which is a
    session-side cache effect only: memory, histories and digests are
    untouched.  The model checker's DPOR uses the request's cell
    footprint to decide independence between candidate steps. *)

val crash : t -> keep:(Loc.t -> bool) -> unit
(** System-wide crash: kill all fibers (volatile state lost), apply the
    memory model's write-back semantics with [keep], then restart every
    process on its recovery-then-resume program.  Equivalent to
    [crash_wipe s (Fault_model.Keep keep)]. *)

val crash_wipe : t -> Nvm.Fault_model.wipe -> unit
(** Fault-model-aware crash.  The crash index passed to
    {!Runtime.Machine.crash_wipe} is the session's crash counter before
    the increment, and {!rewind} restores that counter — so a crash
    re-executed after a rewind replays the identical wipe. *)

val steps : t -> int
(** Primitive steps executed so far. *)

val crashes : t -> int

val max_cur_steps : t -> int
(** The largest per-process step count since that process last started
    an operation or a recovery.  A wait-free detectable object keeps
    this bounded; a runaway (spinning) operation or recovery makes it
    grow without bound, which the driver's watchdog turns into a
    budget-exhausted verdict instead of a hang. *)

val history : t -> Event.t list
(** Events so far, in real-time order.  O(n) — it reverses the internal
    spine; incremental consumers should use {!events_rev} +
    {!event_count} to take only the suffix they have not seen. *)

val events_rev : t -> Event.t list
(** The raw internal event spine, {e newest first}.  O(1); the spine is
    an immutable cons list, so holding on to it is safe across
    {!mark}/{!rewind}.  The first [event_count s - k] elements are
    exactly the events emitted after the history had [k] events. *)

val event_count : t -> int
(** Events emitted so far (O(1); rewinds restore it). *)

val anomalies : t -> string list

val op_steps : t -> (string * int) list
(** Per operation name, max own-steps of a single crash-free stretch. *)

val rec_steps : t -> (string * int) list

(** {1 Undo-mode checkpointing}

    Available only on sessions created with [~undo:true].  {!mark} is
    O(N) (machine journal cursor + dirty-set snapshot + per-process
    driver fields and log positions; the event/anomaly lists are
    immutable cons spines, so their heads are snapshots already).
    {!rewind} restores memory in O(cells-written-since-mark) and kills
    only the fibers that actually moved past the mark; a killed fiber
    is rebuilt lazily, the next time its process is stepped, by
    {e ghost replay} — re-running its deterministic program against the
    logged inputs with all session side effects suppressed, at a cost
    of O(that process's own steps) and no memory traffic.

    Marks are LIFO: rewinding to a mark invalidates every mark taken
    after it.  The [op_steps]/[rec_steps] max-tables are deliberately
    not rewound — they are reporting-only monotone maxima over
    everything actually executed, and the checker's verdicts, digests
    and histories never read them. *)

type mark

val mark : t -> mark
(** Checkpoint the full configuration.  Raises [Invalid_argument]
    outside undo mode. *)

val rewind : t -> mark -> unit
(** Roll the configuration back to [mark].  Raises [Invalid_argument]
    outside undo mode; marks must be used in LIFO order. *)

type mark_buf
(** A caller-owned mutable {!mark}: {!mark_into} overwrites it in place
    and {!rewind_buf} restores from it, so a DFS that pools one buffer
    per recursion depth checkpoints every node allocation-free (the
    shared-cache dirty-set list is the one exception — it is [[]] in
    the private-cache model).  Same LIFO discipline as {!mark}: a
    buffer's contents are invalidated by rewinding to any earlier
    point, and each fill must be rewound before the buffer is refilled
    at the same or a shallower position. *)

val make_mark_buf : t -> mark_buf
(** A fresh buffer shaped for [t]'s process count. *)

val mark_into : t -> mark_buf -> unit
(** Overwrite [buf] with the current configuration.  Raises
    [Invalid_argument] outside undo mode or on a buffer of the wrong
    shape. *)

val rewind_buf : t -> mark_buf -> unit
(** {!rewind} from the buffer's contents. *)

(** {1 Symmetry-canonical digest ingredients}

    Support for the model checker's [`Dpor_sym_memo] reduction, which
    keys its memo table on a digest constant on process-permutation
    orbits.  The session maintains, incrementally and O(1) per event, a
    {e relabeled} digest of the post-creation event stream: process ids
    are replaced by their post-creation first-occurrence rank, a
    labelling that two executions related by a pid permutation assign
    identically position by position.  Creation-drawn uids relabel
    through the same ranks; later uids are drawn in event order and so
    are already position-invariant.  {!mark}/{!rewind} (and the buffer
    forms) checkpoint and restore all of it. *)

val uids : t -> int
(** Operation uids drawn so far (O(1); rewinds restore it). *)

val sym_events_sig : t -> int
(** The rolling relabeled digest of post-creation events.  The creation
    prefix is excluded: it is bytewise identical across every
    configuration one exploration compares. *)

val sym_rank : t -> int -> int
(** [sym_rank s pid] — [pid]'s post-creation first-occurrence rank, or
    [-1] if it has emitted no post-creation event yet. *)

val sym_ranked : t -> int
(** How many processes hold a first-occurrence rank. *)

val mut_stamp : t -> int -> int
(** [mut_stamp s pid] — [pid]'s mutation stamp.  Stamps are drawn from a
    strictly increasing per-session counter that is {e never} rewound:
    a process's stamp is refreshed whenever its logical state can have
    changed (its own step, any crash) and restored exactly by
    {!rewind}/{!rewind_buf}, so within one session two observations of
    an equal stamp for [pid] guarantee [pid]'s future-relevant state
    (everything {!proc_sym_sig} digests) is identical.  Distinct
    sessions share no counter — stamp-keyed caches must be per-session.
    Intended for memoising per-process digests across DFS siblings. *)

val proc_sym_sig :
  t -> int -> hash_value:(Value.t -> int) -> hash_uid:(int -> int) -> int
(** Relabelable digest of one process's future-relevant state: its
    incarnation boundaries, logged external inputs (step responses, uid
    draws, pending queries — the ghost-replay stream, which pins the
    fiber continuation exactly), driver status, remaining workload and
    step counter, with embedded response values hashed through
    [hash_value] and operation uids through [hash_uid].  Folding these
    per-process digests in a canonical process order — with
    [hash_value]/[hash_uid] relabeling pid-indexed data by the same
    order — yields a digest constant on permutation orbits.  Undo mode
    only (the logs are the undo engine's replay inputs); O(entries
    logged by [pid]). *)

val state_digest : t -> int
(** O(N) rolling digest of everything about the session that can affect
    its future behavior {e other than} memory contents: each process's
    full request/response interaction history (which, programs being
    deterministic, pins down its fiber continuation exactly), driver
    status, remaining workload, the real-time event order so far, and
    the step/crash/uid counters.  The model checker combines this with
    {!Nvm.Mem.live_fingerprint_full} to key its visited set: two
    configurations with equal digests and equal memory behave
    identically under every future decision sequence (up to 63-bit hash
    collisions). *)
