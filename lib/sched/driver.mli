open History

(** The execution driver: runs workloads against an object instance under
    a schedule and a crash plan, producing a checkable history.

    The driver is a policy loop over {!Session}: before each step it
    consults the crash plan, then asks the schedule which runnable process
    moves.  The resulting event list is exactly what {!Lin_check.check}
    consumes, so a full run-and-check round trip is two calls.  See
    {!Session} for the caller/recovery protocol semantics. *)

type config = {
  schedule : Schedule.t;
  crash_plan : Crash_plan.t;
  policy : Session.policy;
  max_steps : int;  (** hard step budget; exceeding it flags [incomplete] *)
}

val default_config : config
(** Round-robin, no crashes, [Retry], 100_000 steps. *)

type result = {
  history : Event.t list;
  steps : int;  (** primitive steps executed *)
  crashes : int;
  op_steps : (string * int) list;
      (** per operation name, the max primitive steps any single
          (crash-free stretch of an) invocation took — the empirical
          wait-freedom measure *)
  rec_steps : (string * int) list;  (** same for recovery functions *)
  anomalies : string list;
      (** driver-detected protocol violations (e.g. recovery of an
          already-completed operation disagreeing with its persisted
          response); empty for a correct implementation *)
  incomplete : bool;  (** step budget exhausted before all workloads done *)
  budget_exhausted : bool;
      (** the per-operation watchdog tripped: some single operation or
          recovery ran longer than the [watchdog] bound — a runaway
          trial, not merely a short global budget.  Implies
          [incomplete]. *)
}

val run :
  ?watchdog:int ->
  ?scratch:Session.scratch ->
  Runtime.Machine.t ->
  Obj_inst.t ->
  workloads:Spec.op list array ->
  config ->
  result
(** [run machine inst ~workloads config] — [workloads.(p)] is the sequence
    of abstract operations process [p] performs.  The machine must be the
    one the instance allocated its locations in.  [watchdog] bounds the
    steps any single operation/recovery may take
    ({!Session.max_cur_steps}); exceeding it stops the run with
    [budget_exhausted] set instead of spinning until [max_steps].
    [scratch] lets a trial loop reuse one {!Session.scratch} across many
    runs on the same domain (see {!Session.create}). *)

val check :
  ?lin_engine:Lin_check.engine -> Obj_inst.t -> result -> Lin_check.verdict
(** Check the run's history against the instance's specification; driver
    anomalies are reported as violations too.  [lin_engine] (default
    [`Incremental]) selects the checker engine; both agree on every
    verdict. *)
