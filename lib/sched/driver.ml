open History

type config = {
  schedule : Schedule.t;
  crash_plan : Crash_plan.t;
  policy : Session.policy;
  max_steps : int;
}

let default_config =
  {
    schedule = Schedule.round_robin ();
    crash_plan = Crash_plan.none;
    policy = Session.Retry;
    max_steps = 100_000;
  }

type result = {
  history : Event.t list;
  steps : int;
  crashes : int;
  op_steps : (string * int) list;
  rec_steps : (string * int) list;
  anomalies : string list;
  incomplete : bool;
  budget_exhausted : bool;
}

let run ?watchdog ?scratch machine inst ~workloads cfg =
  let session = Session.create ~policy:cfg.policy ?scratch machine inst ~workloads in
  let incomplete = ref false in
  let budget_exhausted = ref false in
  let continue = ref true in
  while !continue do
    match Session.runnable session with
    | [] -> continue := false
    | runnable ->
        let step = Session.steps session in
        if step >= cfg.max_steps then begin
          incomplete := true;
          continue := false
        end
        else if
          match watchdog with
          | Some w -> Session.max_cur_steps session > w
          | None -> false
        then begin
          (* some operation or recovery has run for more steps than any
             wait-free implementation could need: a runaway trial, not a
             slow one *)
          budget_exhausted := true;
          incomplete := true;
          continue := false
        end
        else if cfg.crash_plan.Crash_plan.should_crash ~step then
          Session.crash_wipe session cfg.crash_plan.Crash_plan.wipe
        else
          Session.step session (cfg.schedule.Schedule.choose ~runnable ~step)
  done;
  {
    history = Session.history session;
    steps = Session.steps session;
    crashes = Session.crashes session;
    op_steps = Session.op_steps session;
    rec_steps = Session.rec_steps session;
    anomalies = Session.anomalies session;
    incomplete = !incomplete;
    budget_exhausted = !budget_exhausted;
  }

let check ?(lin_engine = (`Incremental : Lin_check.engine)) inst
    (result : result) =
  match result.anomalies with
  | a :: _ -> Lin_check.Violation ("driver anomaly: " ^ a)
  | [] -> Lin_check.check_with lin_engine inst.Obj_inst.spec result.history
