open History

open Nvm

(** The interface every object-under-test presents to the driver.

    An instance bundles the fiber-side entry points of a recoverable
    object implementation (announce / invoke / recover / clear, all of
    which perform primitive memory steps) with the driver-side recovery
    dispatcher ([pending]) and the sequential specification used to check
    its histories.

    The split mirrors the paper's Section 2 protocol exactly:

    + the {e caller} announces the operation ([announce]), invokes it
      ([invoke]) and, once it has consumed the response, marks the process
      idle ([clear]);
    + after a crash, the {e system} inspects [Ann_p.op] ([pending]) and, if
      an operation was in flight, runs its recovery function ([recover]),
      which returns either the operation's response or the distinguished
      {!fail} value. *)

type t = {
  descr : string;  (** short human-readable implementation name *)
  spec : Spec.t;  (** sequential specification for history checking *)
  announce : pid:int -> Spec.op -> unit;  (** fiber context *)
  invoke : pid:int -> Spec.op -> Value.t;  (** fiber context *)
  recover : pid:int -> Spec.op -> Value.t;
      (** fiber context; called with the same arguments as the crashed
          invocation (read back from [Ann_p.op]); returns the response or
          {!fail} *)
  clear : pid:int -> unit;  (** fiber context *)
  pending : pid:int -> Spec.op option;  (** driver context, no step cost *)
  strict_recovery : bool;
      (** [true] for detectable implementations that persist their
          response: recovering an operation that had already completed
          must reproduce the persisted response exactly (the driver flags
          a mismatch as an anomaly).  [false] for re-invocation-style
          recoveries (e.g. the max register of Algorithm 3), where
          recovering a completed read-like operation may legitimately
          re-execute and observe a newer state. *)
  id_symmetric : bool;
      (** Declares that the implementation's {e memory layout} is
          invariant under any permutation of process ids: every process
          runs statically identical code, process-id-dependent data
          lives only in per-process {e private} cells (allocated in the
          same order for every process) or in the entries of shared
          length-N {!Nvm.Value.Tup} vectors indexed by pid, and no raw
          process id is ever stored anywhere else in memory.  The
          explorer's [`Dpor_sym] reduction trusts this declaration to
          prune never-stepped processes that are interchangeable with an
          already-explored one (see {!Modelcheck.Sym}); an instance that
          declares [false] is explored without symmetry pruning.
          Declare [true] only when the layout contract above genuinely
          holds — e.g. Algorithm 2's [C = (value, N-bit vector)] plus
          per-process announcements qualifies, while Algorithm 1's
          shared [(value, writer id, toggle)] register and Algorithm 3's
          pid-indexed array of {e shared} cells do not. *)
}

val fail : Value.t
(** The distinguished [fail] verdict returned by recovery functions of
    detectable objects ("the operation was not linearized"). *)

val is_fail : Value.t -> bool

val unknown : Value.t
(** The verdict of a {e durable-but-not-detectable} implementation
    (Section 6: universal constructions, the durable queue of Friedman et
    al.): object state is consistent after the crash, but the recovery
    cannot tell whether the interrupted operation was linearized.  The
    driver records {e no} outcome for such an operation — it stays
    pending in the history — and the caller must choose between possibly
    duplicating it (retry) and possibly losing it (give up), which is
    exactly the cost experiment E9 measures. *)

val is_unknown : Value.t -> bool
