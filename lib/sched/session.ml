open Nvm
open History
open Runtime

type policy = Retry | Give_up

(* Driver-side view of what a process is up to.  This is "application
   knowledge": it survives crashes (the application's script is durable),
   whereas everything inside the fiber is volatile. *)
type op_status =
  | Idle
  | Announced of int * Spec.op  (* uid, op: in flight, response not returned *)
  | Completed of int * Spec.op * Value.t  (* returned, announcement not yet cleared *)

(* ------------------------------------------------------------------ *)
(* Undo mode: incarnations and ghost replay.

   OCaml effect continuations are one-shot, so a fiber cannot be
   snapshotted for backtracking.  What CAN be replayed is the program
   itself: process programs are deterministic functions of (workload,
   pid) and of the external inputs they consume — primitive-step
   responses, fresh uids, and the driver-context [pending] query.  In
   undo mode the session records exactly those inputs, per process and
   per {e incarnation} (the program segment between two crashes), so a
   discarded fiber can be rebuilt at any logged position by re-running
   its program and feeding it the log ("ghost replay"), with all
   session side effects suppressed.  Ghost replay touches no memory —
   requests are answered from the log, not the machine — so it costs
   O(own steps of that one process) and nothing else. *)

type entry =
  | E_resp of Value.t  (* response fed to the fiber's pending request *)
  | E_uid of int  (* result of a [fresh_uid] draw *)
  | E_pending of Spec.op option  (* result of the driver-context pending query *)

type incarnation = {
  restart : bool;  (* restart_prog (post-crash) or client_prog (initial) *)
  i_todo : Spec.op list;  (* driver fields at incarnation start: the *)
  i_status : op_status;  (* program's behavior is a function of these *)
  i_rec_started : bool;  (* plus the logged entries *)
  mutable log : entry array;
  mutable log_len : int;
}

type ghost = { g_log : entry array; g_end : int; mutable g_pos : int }

type pstate = {
  pid : int;
  mutable todo : Spec.op list;
  mutable status : op_status;
  mutable fiber : Fiber.t option;
  mutable cur_steps : int;  (* own steps since current op/recovery started *)
  mutable in_recovery : bool;
  mutable rec_started : bool;
      (* has any recovery run for the current operation instance? *)
  mutable step_sig : int;
      (* rolling digest of every (request, response) this process has
         exchanged with the machine, with crash markers folded in.
         Programs are deterministic, so this pins down the fiber's
         continuation state exactly — see [state_digest]. *)
  mutable stamp : int;
      (* mutation stamp: refreshed from the session's never-reused
         counter whenever this process's driver state changes (own
         step, crash), and restored exactly by rewind.  Equal stamps
         therefore guarantee identical process state, which lets the
         explorer cache per-process digests across DFS nodes instead of
         re-walking the incarnation logs at every node. *)
  (* undo mode only: *)
  mutable l_runnable : bool;  (* logical fiber status, valid even when *)
  mutable l_done : bool;  (* the physical fiber has been discarded *)
  mutable stale : bool;  (* fiber discarded by [rewind]; rebuild on demand *)
  mutable incs : incarnation list;  (* head = current incarnation; [] outside undo mode *)
}

type t = {
  machine : Machine.t;
  inst : Obj_inst.t;
  policy : policy;
  undo : bool;
  procs : pstate array;
  mutable events : Event.t list;  (* reversed *)
  mutable n_events : int;  (* = List.length events *)
  mutable uid : int;
  mutable steps : int;
  mutable crashes : int;
  op_steps_tbl : (string, int) Hashtbl.t;
  rec_steps_tbl : (string, int) Hashtbl.t;
  mutable anomalies : string list;
  mutable hist_sig : int;  (* rolling digest of [events], oldest first *)
  mutable ghost : ghost option;  (* Some iff a ghost replay is running *)
  (* Symmetry-canonical event digest (see [sym_note]): *)
  mutable sym_base : int;  (* n_events at creation end; max_int until then *)
  mutable sym_sig : int;  (* rolling digest of post-creation events, relabeled *)
  mutable sym_seen : int;  (* pids holding a first-occurrence rank *)
  sym_rank_of : int array;  (* pid -> first-occurrence rank, -1 unseen *)
  mutable stamp_next : int;
      (* source for [pstate.stamp]: strictly increasing, NEVER rewound
         (a recycled stamp could alias two different process states in
         a cache keyed on stamps) *)
}

(* Relabeled digest of the post-creation event stream, for the model
   checker's symmetry-canonical memo key ([`Dpor_sym_memo]).  Process
   ids are replaced by their post-creation first-occurrence rank — two
   executions that are images of each other under a pid permutation
   assign these ranks identically, position by position, so the digest
   is constant on permutation orbits.  Creation-drawn uids (uid < N;
   the creation prefix announces one op per process in pid order, so
   such a uid equals its owner's pid) are relabeled through the same
   ranks; later uids are drawn in event order, hence already
   position-invariant across related executions, and fold raw.  Event
   payloads (ops, response values) fold raw too: under an id-symmetric
   layout a payload could in principle embed a pid-indexed vector,
   which would only make the digest finer than the orbit relation —
   a missed dedup for the memo table, never a false merge.  The
   creation prefix itself (indices < [sym_base]) is excluded: it is
   bytewise identical across everything one exploration compares. *)
let sym_note s e =
  let n = Array.length s.procs in
  let rank pid =
    let r = s.sym_rank_of.(pid) in
    if r >= 0 then r
    else begin
      let r = s.sym_seen in
      s.sym_rank_of.(pid) <- r;
      s.sym_seen <- r + 1;
      r
    end
  in
  let uidc uid = if uid < n then rank uid else uid in
  let h =
    match e with
    | Event.Inv { pid; uid; op } ->
        let r = rank pid in
        Value.mix 0x1e1 (Value.mix r (Value.mix (uidc uid) (Hashtbl.hash op)))
    | Event.Ret { pid; uid; v } ->
        let r = rank pid in
        Value.mix 0x1e2 (Value.mix r (Value.mix (uidc uid) (Value.hash v)))
    | Event.Crash -> 0x1e3
    | Event.Rec_ret { pid; uid; v } ->
        let r = rank pid in
        Value.mix 0x1e4 (Value.mix r (Value.mix (uidc uid) (Value.hash v)))
    | Event.Rec_fail { pid; uid } ->
        let r = rank pid in
        Value.mix 0x1e5 (Value.mix r (uidc uid))
  in
  s.sym_sig <- Value.mix s.sym_sig h

let emit s e =
  match s.ghost with
  | Some _ -> ()  (* already recorded when it happened for real *)
  | None ->
      if s.n_events >= s.sym_base then sym_note s e;
      s.events <- e :: s.events;
      s.n_events <- s.n_events + 1;
      s.hist_sig <- Value.mix s.hist_sig (Hashtbl.hash e)

let log_entry ps e =
  match ps.incs with
  | [] -> ()
  | inc :: _ ->
      if inc.log_len = Array.length inc.log then begin
        let cap = max 16 (2 * Array.length inc.log) in
        let b = Array.make cap e in
        Array.blit inc.log 0 b 0 inc.log_len;
        inc.log <- b
      end;
      inc.log.(inc.log_len) <- e;
      inc.log_len <- inc.log_len + 1

let desync what = failwith ("Session: ghost replay desync (" ^ what ^ ")")

let ghost_next g what =
  if g.g_pos >= g.g_end then desync what
  else begin
    let e = g.g_log.(g.g_pos) in
    g.g_pos <- g.g_pos + 1;
    e
  end

let fresh_uid s ps =
  match s.ghost with
  | Some g -> (
      match ghost_next g "uid" with E_uid u -> u | _ -> desync "uid")
  | None ->
      let u = s.uid in
      s.uid <- u + 1;
      if s.undo then log_entry ps (E_uid u);
      u

(* [Obj_inst.pending] reads memory in driver context; at ghost-replay
   time the store holds the {e rewound} contents, not what this
   incarnation's prologue originally observed, so the original answer
   must come from the log. *)
let query_pending s ps =
  match s.ghost with
  | Some g -> (
      match ghost_next g "pending" with E_pending p -> p | _ -> desync "pending")
  | None ->
      let p = s.inst.pending ~pid:ps.pid in
      if s.undo then log_entry ps (E_pending p);
      p

let anomaly s fmt =
  Format.kasprintf
    (fun msg ->
      match s.ghost with
      | Some _ -> ()
      | None -> s.anomalies <- msg :: s.anomalies)
    fmt

(* exception-pattern lookup: [find_opt] would box a [Some] per step *)
let note_max tbl key v =
  match Hashtbl.find tbl key with
  | m -> if v > m then Hashtbl.replace tbl key v
  | exception Not_found -> Hashtbl.add tbl key v

let pop ps = match ps.todo with [] -> () | _ :: rest -> ps.todo <- rest

(* The client program for one process: perform the remaining workload,
   operation by operation, with the full announce/invoke/clear protocol. *)
let rec client_prog s ps () =
  match ps.todo with
  | [] -> Value.Unit
  | op :: _ ->
      let uid = fresh_uid s ps in
      emit s (Event.Inv { pid = ps.pid; uid; op });
      ps.status <- Announced (uid, op);
      ps.cur_steps <- 0;
      ps.in_recovery <- false;
      ps.rec_started <- false;
      s.inst.announce ~pid:ps.pid op;
      let r = s.inst.invoke ~pid:ps.pid op in
      emit s (Event.Ret { pid = ps.pid; uid; v = r });
      ps.status <- Completed (uid, op, r);
      pop ps;
      s.inst.clear ~pid:ps.pid;
      ps.status <- Idle;
      client_prog s ps ()

(* The program a process runs when restarted after a crash: first recover
   the in-flight operation (if the announcement shows one), then resume
   the remaining workload. *)
(* A recovery verdict lives in the caller's volatile state until the
   caller takes a persistent action (here: clearing the announcement).  A
   crash before the clear voids the verdict — the next recovery produces a
   fresh (and binding, if it sticks) one — so the session emits the
   recovery outcome only after the clear has executed.  This is why a
   single operation instance never gets two outcome events no matter how
   many times its recovery is re-crashed. *)
let restart_prog s ps () =
  (match query_pending s ps with
  | None -> (
      match ps.status with
      | Idle -> ()
      | Announced (uid, _) ->
          if not ps.rec_started then begin
            (* The crash hit during announcement: the operation committed
               no announcement, took no step of its own, and was certainly
               not linearized. *)
            emit s (Event.Rec_fail { pid = ps.pid; uid });
            match s.policy with Retry -> () | Give_up -> pop ps
          end
          else begin
            (* A recovery delivered a verdict and the announcement was
               cleared, but the crash struck before the caller could act
               on (or record) it.  The outcome is unknowable: leave the
               instance pending in the history. *)
            match s.policy with Retry -> () | Give_up -> pop ps
          end;
          ps.status <- Idle
      | Completed (_, _, _) ->
          (* Crash between the announcement clear and the next
             announcement: the operation completed and was recorded. *)
          ps.status <- Idle)
  | Some op -> (
      ps.in_recovery <- true;
      ps.cur_steps <- 0;
      (match ps.status with
      | Announced _ -> ps.rec_started <- true
      | Idle | Completed _ -> ());
      let r = s.inst.recover ~pid:ps.pid op in
      ps.in_recovery <- false;
      match ps.status with
      | Completed (uid, _, resp) ->
          (* The operation had already returned before the crash; a strict
             detectable recovery must reproduce the persisted response. *)
          if s.inst.strict_recovery && not (Value.equal r resp) then
            anomaly s
              "p%d: recovery of completed op #%d returned %a, expected %a"
              ps.pid uid Value.pp r Value.pp resp;
          s.inst.clear ~pid:ps.pid;
          ps.status <- Idle
      | Announced (uid, _) ->
          (* clear first: if a crash voids this verdict mid-clear, the next
             recovery re-runs; the verdict becomes binding — and is
             emitted — only once the clear has executed *)
          s.inst.clear ~pid:ps.pid;
          if Obj_inst.is_fail r then begin
            emit s (Event.Rec_fail { pid = ps.pid; uid });
            match s.policy with Retry -> () | Give_up -> pop ps
          end
          else if Obj_inst.is_unknown r then begin
            (* durable-but-not-detectable recovery: no verdict exists, so
               no outcome is recorded — the instance stays pending in the
               history; retrying may duplicate it, giving up may lose it *)
            match s.policy with Retry -> () | Give_up -> pop ps
          end
          else begin
            emit s (Event.Rec_ret { pid = ps.pid; uid; v = r });
            pop ps
          end;
          ps.status <- Idle
      | Idle ->
          anomaly s "p%d: pending announcement %a but driver saw no op"
            ps.pid Spec.pp_op op;
          s.inst.clear ~pid:ps.pid));
  client_prog s ps ()

let op_name ps =
  match ps.status with
  | Announced (_, op) | Completed (_, op, _) -> op.Spec.name
  | Idle -> "idle"

(* Mirror the physical fiber status into the logical flags that survive
   the fiber's disposal.  Called after every fiber transition — never
   after [rewind], which restores the flags from the mark instead.
   Uses the allocation-free status probes: this runs once per step. *)
let sync_logical ps =
  match ps.fiber with
  | Some f ->
      ps.l_runnable <- Fiber.is_pending f;
      ps.l_done <- Fiber.is_done f
  | None ->
      ps.l_runnable <- false;
      ps.l_done <- false

let push_incarnation ps ~restart =
  ps.incs <-
    {
      restart;
      i_todo = ps.todo;
      i_status = ps.status;
      i_rec_started = ps.rec_started;
      log = [||];
      log_len = 0;
    }
    :: ps.incs

(* Reusable per-domain scratch: the reporting tables are the only
   session-owned hash tables, and a torture campaign creates one session
   per trial — resetting two pre-sized tables beats allocating fresh
   ones millions of times. *)
type scratch = {
  sc_op_steps : (string, int) Hashtbl.t;
  sc_rec_steps : (string, int) Hashtbl.t;
}

let make_scratch () =
  { sc_op_steps = Hashtbl.create 64; sc_rec_steps = Hashtbl.create 64 }

let create ?(policy = Retry) ?(undo = false) ?scratch machine inst ~workloads =
  if undo then Machine.set_journal machine true;
  let op_steps_tbl, rec_steps_tbl =
    match scratch with
    | None -> (Hashtbl.create 8, Hashtbl.create 8)
    | Some sc ->
        Hashtbl.reset sc.sc_op_steps;
        Hashtbl.reset sc.sc_rec_steps;
        (sc.sc_op_steps, sc.sc_rec_steps)
  in
  let s =
    {
      machine;
      inst;
      policy;
      undo;
      procs =
        Array.mapi
          (fun pid todo ->
            {
              pid;
              todo;
              status = Idle;
              fiber = None;
              cur_steps = 0;
              in_recovery = false;
              rec_started = false;
              step_sig = Value.mix 0 pid;
              stamp = pid;
              l_runnable = false;
              l_done = false;
              stale = false;
              incs = [];
            })
          workloads;
      events = [];
      n_events = 0;
      uid = 0;
      steps = 0;
      crashes = 0;
      op_steps_tbl;
      rec_steps_tbl;
      anomalies = [];
      hist_sig = 0;
      ghost = None;
      sym_base = max_int;
      sym_sig = 0;
      sym_seen = 0;
      sym_rank_of = Array.make (Array.length workloads) (-1);
      stamp_next = Array.length workloads;
    }
  in
  Array.iter
    (fun ps ->
      if undo then push_incarnation ps ~restart:false;
      ps.fiber <- Some (Fiber.start (client_prog s ps));
      sync_logical ps)
    s.procs;
  (* the creation prefix is over: later events feed the sym digest *)
  s.sym_base <- s.n_events;
  s

(* One predicate, three consumers ([runnable], [runnable_into],
   [finished]): allocation-free per probe. *)
let pid_runnable s ps =
  if s.undo then ps.l_runnable
  else match ps.fiber with Some f -> Fiber.is_pending f | None -> false

let runnable s =
  (* single descending pass: exactly one cons per runnable pid, no
     intermediate Array.to_list / filter_map spines *)
  let rec go i acc =
    if i < 0 then acc
    else
      let ps = s.procs.(i) in
      go (i - 1) (if pid_runnable s ps then ps.pid :: acc else acc)
  in
  go (Array.length s.procs - 1) []

let runnable_into s buf =
  let n = Array.length s.procs in
  if Array.length buf < n then
    invalid_arg "Session.runnable_into: buffer too small";
  let k = ref 0 in
  for i = 0 to n - 1 do
    if pid_runnable s s.procs.(i) then begin
      buf.(!k) <- s.procs.(i).pid;
      incr k
    end
  done;
  !k

let finished s =
  let n = Array.length s.procs in
  let rec go i = i >= n || ((not (pid_runnable s s.procs.(i))) && go (i + 1)) in
  go 0

let n_procs s = Array.length s.procs

(* Rebuild a stale fiber at its authoritative position: re-run the
   current incarnation's program, feeding it the logged inputs, with
   session side effects suppressed ([s.ghost]).  The program re-mutates
   the driver fields as it replays, so the authoritative (rewound)
   values are saved around the run — the replay necessarily converges
   back to them, but restoring is cheap insurance and keeps this code
   obviously correct. *)
let rebuild s ps =
  let inc = match ps.incs with inc :: _ -> inc | [] -> desync "incarnation" in
  let save_todo = ps.todo
  and save_status = ps.status
  and save_cur_steps = ps.cur_steps
  and save_in_recovery = ps.in_recovery
  and save_rec_started = ps.rec_started in
  ps.todo <- inc.i_todo;
  ps.status <- inc.i_status;
  ps.rec_started <- inc.i_rec_started;
  let g = { g_log = inc.log; g_end = inc.log_len; g_pos = 0 } in
  s.ghost <- Some g;
  Fun.protect
    ~finally:(fun () -> s.ghost <- None)
    (fun () ->
      (* the whole logged prefix runs as ONE straight-line execution:
         step responses come from the fiber's ghost feed (no per-step
         suspension) and uid/pending draws from [s.ghost], both off the
         same stream, so entry order is enforced exactly as when the
         prefix originally ran *)
      let f =
        Fiber.with_ghost_feed
          (fun _req ->
            if g.g_pos >= g.g_end then None
            else
              match ghost_next g "resume" with
              | E_resp v -> Some v
              | E_uid _ | E_pending _ -> desync "entry order")
          (fun () ->
            Fiber.start
              ((if inc.restart then restart_prog else client_prog) s ps))
      in
      if g.g_pos < g.g_end then desync "resume";
      ps.fiber <- Some f);
  ps.stale <- false;
  ps.todo <- save_todo;
  ps.status <- save_status;
  ps.cur_steps <- save_cur_steps;
  ps.in_recovery <- save_in_recovery;
  ps.rec_started <- save_rec_started;
  (* the rebuilt fiber must land on the logical status the mark promised *)
  match (ps.fiber, ps.l_runnable) with
  | Some f, true -> (
      match Fiber.status f with Fiber.Pending _ -> () | _ -> desync "status")
  | _ -> desync "status"

let bump_stamp s ps =
  ps.stamp <- s.stamp_next;
  s.stamp_next <- s.stamp_next + 1

let do_step s ps f req =
  let v = Machine.apply s.machine req in
  bump_stamp s ps;
  ps.step_sig <-
    Value.mix ps.step_sig
      (Value.mix (Hashtbl.hash req) (Value.hash_seeded 11 v));
  s.steps <- s.steps + 1;
  ps.cur_steps <- ps.cur_steps + 1;
  let tbl = if ps.in_recovery then s.rec_steps_tbl else s.op_steps_tbl in
  note_max tbl (op_name ps) ps.cur_steps;
  if s.undo then log_entry ps (E_resp v);
  Fiber.resume f v;
  if s.undo then sync_logical ps

let step s pid =
  if pid < 0 || pid >= Array.length s.procs then
    invalid_arg "Session.step: no such process";
  let ps = s.procs.(pid) in
  if s.undo then begin
    if not ps.l_runnable then invalid_arg "Session.step: process is not runnable";
    if ps.stale then rebuild s ps;
    match ps.fiber with
    | Some f when Fiber.is_pending f -> do_step s ps f (Fiber.pending_request f)
    | Some _ | None -> invalid_arg "Session.step: process is not runnable"
  end
  else
    match ps.fiber with
    | Some f when Fiber.is_pending f -> do_step s ps f (Fiber.pending_request f)
    | Some _ | None -> invalid_arg "Session.step: process is not runnable"

let pending_request s pid =
  if pid < 0 || pid >= Array.length s.procs then
    invalid_arg "Session.pending_request: no such process";
  let ps = s.procs.(pid) in
  if s.undo && not ps.l_runnable then None
  else begin
    (* in undo mode a rewound fiber may be stale: rebuild it first, just
       as [step] would, so the peek agrees with what stepping would do *)
    if s.undo && ps.stale then rebuild s ps;
    match ps.fiber with
    | Some f when Fiber.is_pending f -> Some (Fiber.pending_request f)
    | Some _ | None -> None
  end

let crash_wipe s wipe =
  (* The crash index is the pre-increment counter: crash k of the run
     uses fault stream k, and since rewind restores [s.crashes], a
     re-executed crash replays the identical wipe. *)
  let index = s.crashes in
  emit s Event.Crash;
  s.crashes <- s.crashes + 1;
  Array.iter
    (fun ps ->
      (match ps.fiber with Some f -> Fiber.kill f | None -> ());
      ps.fiber <- None;
      ps.stale <- false;
      bump_stamp s ps;
      (* crash marker: restart_prog's behavior depends on everything
         step_sig already covers, so keep rolling across the restart *)
      ps.step_sig <- Value.mix ps.step_sig 0xC0FFEE)
    s.procs;
  Machine.crash_wipe s.machine ~index wipe;
  Array.iter
    (fun ps ->
      (* snapshot the driver fields BEFORE the restart program runs: its
         prologue (pending query, possibly a give-up pop) mutates them *)
      if s.undo then push_incarnation ps ~restart:true;
      ps.fiber <- Some (Fiber.start (restart_prog s ps));
      sync_logical ps)
    s.procs

let crash s ~keep = crash_wipe s (Fault_model.Keep keep)

let steps s = s.steps
let crashes s = s.crashes
let max_cur_steps s =
  Array.fold_left (fun acc ps -> max acc ps.cur_steps) 0 s.procs
let history s = List.rev s.events
let events_rev s = s.events
let event_count s = s.n_events
let anomalies s = List.rev s.anomalies

let dump tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let op_steps s = dump s.op_steps_tbl
let rec_steps s = dump s.rec_steps_tbl

(* ------------------------------------------------------------------ *)
(* Undo-mode checkpointing.

   A mark is O(N): machine mark (a journal cursor + the shared-cache
   dirty set), the cons-list heads of [events]/[anomalies] (immutable
   spines, so a pointer IS a snapshot), the scalar counters, and per
   process the driver fields plus the incarnation-list head and its log
   length.  Rewind restores all of it and decides, per process, whether
   the physical fiber is still positioned exactly at the mark — if so
   it survives (the common case for processes the explored branch never
   stepped); otherwise it is killed and lazily rebuilt by ghost replay
   the next time the process is stepped.

   Marks are LIFO: rewinding to a mark invalidates every mark taken
   after it (their journal suffixes and log suffixes are gone).

   Deliberately NOT rewound: [op_steps_tbl]/[rec_steps_tbl], the
   max-own-steps report tables.  They are monotone maxima used only for
   reporting — the model checker's verdicts, histories and digests never
   read them — and a branch that was explored did execute those steps,
   so the maxima stay honest as "over everything tried". *)

type pmark = {
  pm_todo : Spec.op list;
  pm_status : op_status;
  pm_cur_steps : int;
  pm_in_recovery : bool;
  pm_rec_started : bool;
  pm_step_sig : int;
  pm_stamp : int;
  pm_runnable : bool;
  pm_done : bool;
  pm_incs : incarnation list;
  pm_log_len : int;
}

type mark = {
  mk_machine : Machine.mark;
  mk_events : Event.t list;
  mk_n_events : int;
  mk_anoms : string list;
  mk_hist_sig : int;
  mk_uid : int;
  mk_steps : int;
  mk_crashes : int;
  mk_sym_sig : int;
  mk_sym_seen : int;
  mk_procs : pmark array;
}

(* First-occurrence ranks are assigned monotonically ([sym_seen] only
   grows, each pid's rank is written once), so restoring them needs no
   copy of the array: every rank >= the checkpointed [sym_seen] was
   assigned after the mark and is simply cleared. *)
let rewind_sym s ~sym_sig ~sym_seen =
  s.sym_sig <- sym_sig;
  if s.sym_seen <> sym_seen then begin
    let r = s.sym_rank_of in
    for p = 0 to Array.length r - 1 do
      if r.(p) >= sym_seen then r.(p) <- -1
    done;
    s.sym_seen <- sym_seen
  end

let mark s =
  if not s.undo then invalid_arg "Session.mark: session is not in undo mode";
  {
    mk_machine = Machine.mark s.machine;
    mk_events = s.events;
    mk_n_events = s.n_events;
    mk_anoms = s.anomalies;
    mk_hist_sig = s.hist_sig;
    mk_uid = s.uid;
    mk_steps = s.steps;
    mk_crashes = s.crashes;
    mk_sym_sig = s.sym_sig;
    mk_sym_seen = s.sym_seen;
    mk_procs =
      Array.map
        (fun ps ->
          {
            pm_todo = ps.todo;
            pm_status = ps.status;
            pm_cur_steps = ps.cur_steps;
            pm_in_recovery = ps.in_recovery;
            pm_rec_started = ps.rec_started;
            pm_step_sig = ps.step_sig;
            pm_stamp = ps.stamp;
            pm_runnable = ps.l_runnable;
            pm_done = ps.l_done;
            pm_incs = ps.incs;
            pm_log_len =
              (match ps.incs with inc :: _ -> inc.log_len | [] -> 0);
          })
        s.procs;
  }

let rewind s m =
  if not s.undo then invalid_arg "Session.rewind: session is not in undo mode";
  Machine.rewind s.machine m.mk_machine;
  s.events <- m.mk_events;
  s.n_events <- m.mk_n_events;
  s.anomalies <- m.mk_anoms;
  s.hist_sig <- m.mk_hist_sig;
  s.uid <- m.mk_uid;
  s.steps <- m.mk_steps;
  s.crashes <- m.mk_crashes;
  rewind_sym s ~sym_sig:m.mk_sym_sig ~sym_seen:m.mk_sym_seen;
  Array.iteri
    (fun i pm ->
      let ps = s.procs.(i) in
      (* the physical fiber is exactly at the mark iff the process is in
         the same incarnation and has consumed the same number of logged
         inputs; then it survives (still [stale] if it already was).
         Otherwise its continuation has advanced past the mark — one-shot
         continuations cannot run backwards, so discard it and let
         [rebuild] ghost-replay it on demand. *)
      let same_pos =
        ps.incs == pm.pm_incs
        &&
        match ps.incs with
        | inc :: _ -> inc.log_len = pm.pm_log_len
        | [] -> true
      in
      ps.todo <- pm.pm_todo;
      ps.status <- pm.pm_status;
      ps.cur_steps <- pm.pm_cur_steps;
      ps.in_recovery <- pm.pm_in_recovery;
      ps.rec_started <- pm.pm_rec_started;
      ps.step_sig <- pm.pm_step_sig;
      ps.stamp <- pm.pm_stamp;
      ps.l_runnable <- pm.pm_runnable;
      ps.l_done <- pm.pm_done;
      if not same_pos then begin
        (match ps.fiber with Some f -> Fiber.kill f | None -> ());
        ps.fiber <- None;
        ps.stale <- true;
        ps.incs <- pm.pm_incs;
        match ps.incs with
        | inc :: _ -> inc.log_len <- pm.pm_log_len
        | [] -> ()
      end)
    m.mk_procs

(* ------------------------------------------------------------------ *)
(* Pooled mark buffers.

   [mark] allocates ~10 words per process per call, and the undo
   explorer takes one mark per DFS node.  A [mark_buf] is the mutable
   mirror of [mark]: the caller allocates one per recursion depth and
   [mark_into]/[rewind_buf] reuse it for every node at that depth.  The
   semantics (including the LIFO discipline and the fiber-survival
   check) are identical to [mark]/[rewind] — the machine side goes
   through [Machine.rewind_raw] on the same raw coordinates a
   [Machine.mark] would have captured. *)

type pmark_buf = {
  mutable pb_todo : Spec.op list;
  mutable pb_status : op_status;
  mutable pb_cur_steps : int;
  mutable pb_in_recovery : bool;
  mutable pb_rec_started : bool;
  mutable pb_step_sig : int;
  mutable pb_stamp : int;
  mutable pb_runnable : bool;
  mutable pb_done : bool;
  mutable pb_incs : incarnation list;
  mutable pb_log_len : int;
}

type mark_buf = {
  mutable mb_mem_len : int;
  mutable mb_mem_j : int;
  mutable mb_msteps : int;
  mutable mb_dirty : (Loc.t * Value.t) list;
  mutable mb_events : Event.t list;
  mutable mb_n_events : int;
  mutable mb_anoms : string list;
  mutable mb_hist_sig : int;
  mutable mb_uid : int;
  mutable mb_steps : int;
  mutable mb_crashes : int;
  mutable mb_sym_sig : int;
  mutable mb_sym_seen : int;
  mb_procs : pmark_buf array;
}

let make_mark_buf s =
  {
    mb_mem_len = 0;
    mb_mem_j = 0;
    mb_msteps = 0;
    mb_dirty = [];
    mb_events = [];
    mb_n_events = 0;
    mb_anoms = [];
    mb_hist_sig = 0;
    mb_uid = 0;
    mb_steps = 0;
    mb_crashes = 0;
    mb_sym_sig = 0;
    mb_sym_seen = 0;
    mb_procs =
      Array.map
        (fun _ ->
          {
            pb_todo = [];
            pb_status = Idle;
            pb_cur_steps = 0;
            pb_in_recovery = false;
            pb_rec_started = false;
            pb_step_sig = 0;
            pb_stamp = 0;
            pb_runnable = false;
            pb_done = false;
            pb_incs = [];
            pb_log_len = 0;
          })
        s.procs;
  }

let mark_into s mb =
  if not s.undo then invalid_arg "Session.mark: session is not in undo mode";
  if Array.length mb.mb_procs <> Array.length s.procs then
    invalid_arg "Session.mark_into: buffer from a different session shape";
  mb.mb_mem_len <- Machine.arena_len s.machine;
  mb.mb_mem_j <- Machine.journal_depth s.machine;
  mb.mb_msteps <- Machine.steps s.machine;
  mb.mb_dirty <- Machine.dirty_entries s.machine;
  mb.mb_events <- s.events;
  mb.mb_n_events <- s.n_events;
  mb.mb_anoms <- s.anomalies;
  mb.mb_hist_sig <- s.hist_sig;
  mb.mb_uid <- s.uid;
  mb.mb_steps <- s.steps;
  mb.mb_crashes <- s.crashes;
  mb.mb_sym_sig <- s.sym_sig;
  mb.mb_sym_seen <- s.sym_seen;
  Array.iteri
    (fun i ps ->
      let pb = mb.mb_procs.(i) in
      pb.pb_todo <- ps.todo;
      pb.pb_status <- ps.status;
      pb.pb_cur_steps <- ps.cur_steps;
      pb.pb_in_recovery <- ps.in_recovery;
      pb.pb_rec_started <- ps.rec_started;
      pb.pb_step_sig <- ps.step_sig;
      pb.pb_stamp <- ps.stamp;
      pb.pb_runnable <- ps.l_runnable;
      pb.pb_done <- ps.l_done;
      pb.pb_incs <- ps.incs;
      pb.pb_log_len <-
        (match ps.incs with inc :: _ -> inc.log_len | [] -> 0))
    s.procs

let rewind_buf s mb =
  if not s.undo then invalid_arg "Session.rewind: session is not in undo mode";
  Machine.rewind_raw s.machine ~mem_len:mb.mb_mem_len ~mem_j:mb.mb_mem_j
    ~steps:mb.mb_msteps ~dirty:mb.mb_dirty;
  s.events <- mb.mb_events;
  s.n_events <- mb.mb_n_events;
  s.anomalies <- mb.mb_anoms;
  s.hist_sig <- mb.mb_hist_sig;
  s.uid <- mb.mb_uid;
  s.steps <- mb.mb_steps;
  s.crashes <- mb.mb_crashes;
  rewind_sym s ~sym_sig:mb.mb_sym_sig ~sym_seen:mb.mb_sym_seen;
  Array.iteri
    (fun i pb ->
      let ps = s.procs.(i) in
      let same_pos =
        ps.incs == pb.pb_incs
        &&
        match ps.incs with
        | inc :: _ -> inc.log_len = pb.pb_log_len
        | [] -> true
      in
      ps.todo <- pb.pb_todo;
      ps.status <- pb.pb_status;
      ps.cur_steps <- pb.pb_cur_steps;
      ps.in_recovery <- pb.pb_in_recovery;
      ps.rec_started <- pb.pb_rec_started;
      ps.step_sig <- pb.pb_step_sig;
      ps.stamp <- pb.pb_stamp;
      ps.l_runnable <- pb.pb_runnable;
      ps.l_done <- pb.pb_done;
      if not same_pos then begin
        (match ps.fiber with Some f -> Fiber.kill f | None -> ());
        ps.fiber <- None;
        ps.stale <- true;
        ps.incs <- pb.pb_incs;
        match ps.incs with
        | inc :: _ -> inc.log_len <- pb.pb_log_len
        | [] -> ()
      end)
    mb.mb_procs

(* Cheap exact digest of the session's future-relevant state.

   Process programs are deterministic: a fiber's continuation is a pure
   function of (workload, pid, the request/response sequence it has
   exchanged, crash restarts) — exactly what [step_sig] rolls up.  The
   driver-visible fields ([status], [todo], recovery flags) are functions
   of the same sequence, but folding them in costs nothing and guards the
   digest against future session features that might mutate them out of
   band.  [hist_sig] pins the real-time order of emitted events (the
   linearizability verdict of any extension depends on it), and [uid] /
   [steps] / [crashes] pin the counters that feed events and truncation.

   Two sessions over the same workloads with equal digests (and equal
   full-memory contents, which the caller checks separately) therefore
   behave identically under every future decision sequence. *)
let state_digest s =
  let acc = ref (Value.mix s.hist_sig (Value.mix s.uid s.steps)) in
  acc := Value.mix !acc s.crashes;
  Array.iter
    (fun ps ->
      let status_h =
        match ps.status with
        | Idle -> 1
        | Announced (uid, _) -> Value.mix 2 uid
        | Completed (uid, _, v) -> Value.mix (Value.mix 3 uid) (Value.hash v)
      in
      let flags =
        (if ps.in_recovery then 1 else 0)
        lor (if ps.rec_started then 2 else 0)
        lor (match ps.fiber with
            | Some f ->
                if Fiber.is_pending f then 4
                else if Fiber.is_done f then 8
                else 12
            | None ->
                (* a stale undo-mode fiber is logically alive: digest the
                   status it will have once rebuilt, so replay- and
                   undo-engine digests of the same configuration agree *)
                if s.undo && ps.stale then
                  if ps.l_runnable then 4 else if ps.l_done then 8 else 12
                else 16)
      in
      acc := Value.mix !acc ps.step_sig;
      acc := Value.mix !acc status_h;
      acc := Value.mix !acc (Value.mix (List.length ps.todo) flags))
    s.procs;
  !acc

(* ------------------------------------------------------------------ *)
(* Symmetry-canonical digest ingredients (Modelcheck.Explore's
   [`Dpor_sym_memo] memo key).  [sym_events_sig] is the rolling
   relabeled digest maintained by [sym_note]; [sym_rank] exposes the
   first-occurrence ranks so the caller can build its canonical process
   order without walking the event list. *)

let uids s = s.uid
let sym_events_sig s = s.sym_sig
let sym_ranked s = s.sym_seen

let sym_rank s pid =
  if pid < 0 || pid >= Array.length s.procs then
    invalid_arg "Session.sym_rank: no such process";
  s.sym_rank_of.(pid)

let mut_stamp s pid =
  if pid < 0 || pid >= Array.length s.procs then
    invalid_arg "Session.mut_stamp: no such process";
  s.procs.(pid).stamp

let proc_sym_sig s pid ~hash_value ~hash_uid =
  if not s.undo then
    invalid_arg "Session.proc_sym_sig: session is not in undo mode";
  if pid < 0 || pid >= Array.length s.procs then
    invalid_arg "Session.proc_sym_sig: no such process";
  let ps = s.procs.(pid) in
  let acc = ref 0 in
  let fold_status st =
    match st with
    | Idle -> 1
    | Announced (uid, op) ->
        Value.mix (Value.mix 2 (hash_uid uid)) (Hashtbl.hash op)
    | Completed (uid, op, v) ->
        Value.mix
          (Value.mix (Value.mix 3 (hash_uid uid)) (Hashtbl.hash op))
          (hash_value v)
  in
  let fold_ops ops =
    acc := Value.mix !acc (List.length ops);
    List.iter (fun op -> acc := Value.mix !acc (Hashtbl.hash op)) ops
  in
  let fold_inc inc =
    acc := Value.mix !acc (if inc.restart then 0x21 else 0x22);
    fold_ops inc.i_todo;
    acc := Value.mix !acc (fold_status inc.i_status);
    acc := Value.mix !acc (if inc.i_rec_started then 1 else 0);
    for i = 0 to inc.log_len - 1 do
      match inc.log.(i) with
      | E_resp v -> acc := Value.mix !acc (Value.mix 0x31 (hash_value v))
      | E_uid u -> acc := Value.mix !acc (Value.mix 0x32 (hash_uid u))
      | E_pending p -> acc := Value.mix !acc (Value.mix 0x33 (Hashtbl.hash p))
    done
  in
  (* incs head = current incarnation; fold oldest first *)
  let rec go = function
    | [] -> ()
    | inc :: tl ->
        go tl;
        fold_inc inc
  in
  go ps.incs;
  acc := Value.mix !acc (fold_status ps.status);
  let flags =
    (if ps.in_recovery then 1 else 0)
    lor (if ps.rec_started then 2 else 0)
    lor (if ps.l_runnable then 4 else 0)
    lor if ps.l_done then 8 else 0
  in
  fold_ops ps.todo;
  acc := Value.mix !acc (Value.mix ps.cur_steps flags);
  !acc
