open History
open Nvm

type t = {
  descr : string;
  spec : Spec.t;
  announce : pid:int -> Spec.op -> unit;
  invoke : pid:int -> Spec.op -> Value.t;
  recover : pid:int -> Spec.op -> Value.t;
  clear : pid:int -> unit;
  pending : pid:int -> Spec.op option;
  strict_recovery : bool;
  id_symmetric : bool;
}

let fail = Value.Str "__detectable_fail__"

let is_fail v = Value.equal v fail

let unknown = Value.Str "__recovery_unknown__"

let is_unknown v = Value.equal v unknown
