open Dtc_util
open Nvm

(** Crash-injection plans.

    A plan decides, before every scheduled step, whether a system-wide
    crash strikes now, and — for the shared-cache model — what happens
    to the dirty cache lines at the instant of failure (the {!wipe}).
    In the private-cache model the wipe is irrelevant. *)

type t = {
  should_crash : step:int -> bool;
      (** consulted with the global step count before each step; a plan is
          responsible for bounding its own number of crashes *)
  wipe : Fault_model.wipe;
      (** write-back behaviour for the dirty lines: a legacy per-location
          [Keep] predicate, or a [Seeded] fault model whose randomness is
          a pure function of the crash index (see
          {!Runtime.Machine.crash_wipe}) *)
}

val none : t
(** Never crash. *)

val at_steps : ?keep:(Loc.t -> bool) -> int list -> t
(** Crash immediately before global steps [ks].  Each listed step fires
    exactly once, including duplicates — [at_steps [4; 4]] crashes on
    two consecutive consultations once step 4 is reached.  Default wipe
    keeps everything (private-cache semantics). *)

val random : ?max_crashes:int -> ?keep_prob:float -> prob:float -> Prng.t -> t
(** Crash before each step with probability [prob], at most [max_crashes]
    times (default 3); each dirty line survives with probability
    [keep_prob] (default 1.0).  For [keep_prob < 1.0] the survival
    decisions are drawn from a dedicated fault stream seeded at
    construction from [prng] ([Seeded (Drop _, seed)]), never from
    [prng] itself — crash outcomes cannot perturb the crash/schedule
    stream.  With the default [keep_prob] nothing extra is drawn, so
    existing keep-everything plans consume identical randomness. *)

val faulted : ?max_crashes:int -> fault:Fault_model.t -> prob:float -> Prng.t -> t
(** Like {!random} but injecting crashes under an arbitrary
    {!Fault_model.t}.  A fault seed is drawn from [prng] at construction
    (except for [Atomic], which needs none); the plan's wipe is
    [Seeded (fault, seed)]. *)

val adversarial_keep_none : t -> t
(** Same crash times, but no dirty line ever survives. *)

val fault_seed : t -> int
(** The seed inside a [Seeded] wipe, or [0] for a [Keep] wipe — recorded
    in torture trial records so the shrinker can replay the exact fault
    stream. *)
