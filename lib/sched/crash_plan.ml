open Dtc_util
open Nvm

type t = { should_crash : step:int -> bool; wipe : Fault_model.wipe }

let none =
  { should_crash = (fun ~step:_ -> false); wipe = Fault_model.keep_all }

(* 62-bit non-negative seed for a dedicated fault stream, drawn from the
   plan's own PRNG at construction time. *)
let draw_seed prng = Int64.to_int (Int64.shift_right_logical (Prng.next_int64 prng) 2)

let at_steps ?keep ks =
  let wipe =
    match keep with
    | None -> Fault_model.keep_all
    | Some k -> Fault_model.Keep k
  in
  (* plain sort, not sort_uniq: two crashes requested at the same step
     must both fire (on consecutive consultations) *)
  let remaining = ref (List.sort Int.compare ks) in
  let should_crash ~step =
    match !remaining with
    | k :: rest when step >= k ->
        remaining := rest;
        true
    | _ -> false
  in
  { should_crash; wipe }

let random ?(max_crashes = 3) ?(keep_prob = 1.0) ~prob prng =
  (* The wipe randomness must not come from [prng]: the schedule PRNG's
     consumption would then depend on the dirty-set size at each crash,
     coupling crash times to memory contents.  A dedicated seed makes
     the wipe a pure function of (crash index, dirty set).  Nothing is
     drawn at all for keep_prob >= 1.0, so keep-everything plans (the
     default) consume exactly as much randomness as before. *)
  let wipe =
    if keep_prob >= 1.0 then Fault_model.keep_all
    else Fault_model.Seeded (Fault_model.Drop { keep_prob }, draw_seed prng)
  in
  let fired = ref 0 in
  let should_crash ~step:_ =
    if !fired >= max_crashes then false
    else if Prng.float prng < prob then (
      incr fired;
      true)
    else false
  in
  { should_crash; wipe }

let faulted ?(max_crashes = 3) ~fault ~prob prng =
  let wipe =
    match (fault : Fault_model.t) with
    | Fault_model.Atomic -> Fault_model.keep_all
    | _ -> Fault_model.Seeded (fault, draw_seed prng)
  in
  let fired = ref 0 in
  let should_crash ~step:_ =
    if !fired >= max_crashes then false
    else if Prng.float prng < prob then (
      incr fired;
      true)
    else false
  in
  { should_crash; wipe }

let adversarial_keep_none plan =
  { plan with wipe = Fault_model.Keep (fun _ -> false) }

let fault_seed plan =
  match plan.wipe with Fault_model.Seeded (_, s) -> s | Fault_model.Keep _ -> 0
