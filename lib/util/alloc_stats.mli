(** Per-domain allocation accounting via [Gc.quick_stat] deltas.

    Used by the torture and model-checking hot loops to make their
    allocation behaviour observable ([bytes_per_trial] /
    [bytes_per_node] in reports, CLI output and bench JSON) without
    perturbing it: [snap] never forces a collection.

    Counters are per-domain: take snapshots on the domain that runs the
    loop (inside the worker, not around [Domain.join]).  Deltas from
    different domains can be summed with [add]. *)

type snap
(** The current domain's GC counters at one instant. *)

val snap : unit -> snap

type delta = {
  d_minor_words : float;
  d_promoted_words : float;
  d_major_words : float;
  d_minor_collections : int;
}
(** Counter differences over a region of one domain's execution. *)

val zero : delta
val delta : before:snap -> after:snap -> delta
val add : delta -> delta -> delta

val allocated_words : delta -> float
(** [minor + major - promoted]: total words allocated, counting each
    word once regardless of promotion. *)

val word_bytes : int
(** Bytes per OCaml word on this platform (8 on 64-bit). *)

val allocated_bytes : delta -> float

val bytes_per : delta -> int -> float
(** [bytes_per d n] is [allocated_bytes d / n], or [0.] if [n <= 0]. *)

val measure : (unit -> 'a) -> 'a * delta
(** [measure f] runs [f ()] on the current domain and returns its result
    with the allocation delta of the call. *)
