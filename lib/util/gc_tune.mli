(** Opt-in per-domain GC tuning for worker loops.

    Defaults are untouched unless the user passes [--gc] (detect_cli) or
    a spec explicitly carries a [t].  GC parameters are per-domain in
    OCaml 5, so [apply] must run *inside* the domain whose loop is being
    tuned — the torture and explorer engines call it at the top of each
    spawned worker. *)

type t = { minor_heap : int option; space_overhead : int option }

val none : t
val is_none : t -> bool

val parse : string -> t
(** Parses ["minor-heap=8M,space-overhead=200"]-style specs.
    [minor-heap] is in words with optional [k]/[M] suffixes;
    [space-overhead] is the percentage from [Gc.control].
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Round-trips through {!parse} (sizes are printed in words). *)

val apply : t -> unit
(** Sets the requested fields of the calling domain's [Gc.control],
    leaving the others as they are.  No-op for {!none}. *)

val with_applied : t -> (unit -> 'a) -> 'a
(** [with_applied t f] applies [t], runs [f], and restores the previous
    control record (even on exceptions).  Used on the caller's own
    domain for single-domain runs. *)
