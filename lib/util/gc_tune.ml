(* Opt-in per-domain GC tuning.

   The defaults are never changed: a [t] is only built from an explicit
   [--gc] flag and only applied inside the worker domains of a run (or,
   for single-domain runs, applied-and-restored around the loop).  Both
   knobs map directly onto [Gc.control] fields:

     minor-heap=N       minor_heap_size, in words (suffixes k/M accepted,
                        meaning multiples of 2^10 / 2^20 words)
     space-overhead=N   space_overhead, a percentage

   Keeping the surface this small is deliberate: these are the two
   parameters that matter for allocation-heavy loops (minor heap sizing
   amortises minor collections; space overhead trades major-heap
   footprint for marking work). *)

type t = { minor_heap : int option; space_overhead : int option }

let none = { minor_heap = None; space_overhead = None }
let is_none t = t.minor_heap = None && t.space_overhead = None

let parse_size s =
  let fail () = invalid_arg (Printf.sprintf "Gc_tune: bad size %S" s) in
  let n = String.length s in
  if n = 0 then fail ();
  let mult, digits =
    match s.[n - 1] with
    | 'k' | 'K' -> (1024, String.sub s 0 (n - 1))
    | 'm' | 'M' -> (1024 * 1024, String.sub s 0 (n - 1))
    | _ -> (1, s)
  in
  match int_of_string_opt digits with
  | Some v when v > 0 -> v * mult
  | _ -> fail ()

(* "minor-heap=8M,space-overhead=200" *)
let parse s =
  let fields = String.split_on_char ',' (String.trim s) in
  List.fold_left
    (fun acc field ->
      let field = String.trim field in
      if field = "" then acc
      else
        match String.index_opt field '=' with
        | None -> invalid_arg (Printf.sprintf "Gc_tune: bad field %S" field)
        | Some i ->
            let key = String.sub field 0 i in
            let v = String.sub field (i + 1) (String.length field - i - 1) in
            (match key with
            | "minor-heap" -> { acc with minor_heap = Some (parse_size v) }
            | "space-overhead" -> (
                match int_of_string_opt v with
                | Some n when n > 0 -> { acc with space_overhead = Some n }
                | _ ->
                    invalid_arg
                      (Printf.sprintf "Gc_tune: bad space-overhead %S" v))
            | _ -> invalid_arg (Printf.sprintf "Gc_tune: unknown key %S" key)))
    none fields

let to_string t =
  let fields =
    (match t.minor_heap with
    | Some n -> [ Printf.sprintf "minor-heap=%d" n ]
    | None -> [])
    @
    match t.space_overhead with
    | Some n -> [ Printf.sprintf "space-overhead=%d" n ]
    | None -> []
  in
  String.concat "," fields

(* Applies on the *calling* domain: callers must invoke this inside the
   worker domain they want tuned. *)
let apply t =
  if not (is_none t) then begin
    let g = Gc.get () in
    Gc.set
      {
        g with
        Gc.minor_heap_size =
          (match t.minor_heap with
          | Some n -> n
          | None -> g.Gc.minor_heap_size);
        space_overhead =
          (match t.space_overhead with
          | Some n -> n
          | None -> g.Gc.space_overhead);
      }
  end

let with_applied t f =
  if is_none t then f ()
  else begin
    let saved = Gc.get () in
    apply t;
    Fun.protect ~finally:(fun () -> Gc.set saved) f
  end
