type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

(* splitmix64 finaliser (Steele, Lea & Flood). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* splitmix64 output function: advance by the golden gamma, then mix. *)
let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

(* Rejection sampling over 62-bit draws: a bare [r mod bound] skews low
   residues whenever [bound] does not divide 2^62.  Draws at or above the
   largest multiple of [bound] below 2^62 are rejected and redrawn, so
   every residue class is hit by exactly the same number of accepted
   draws.  The rejection probability is (2^62 mod bound) / 2^62 — for the
   small bounds schedules use it is essentially zero, so the stream is
   unchanged in practice and each call still costs one draw. *)
let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* keep 62 bits so the conversion to OCaml's 63-bit int stays positive;
     2^62 itself is unrepresentable (max_int = 2^62 - 1), so the cutoff is
     phrased as r <= max_int - (2^62 mod bound) *)
  let excess = ((max_int mod bound) + 1) mod bound in
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2) in
    if excess = 0 || r <= max_int - excess then r mod bound else draw ()
  in
  draw ()

let bool g = Int64.logand (next_int64 g) 1L = 1L

let float g =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 g) 11) in
  r /. 9007199254740992.0 (* 2^53 *)

let pick g = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | xs -> List.nth xs (int g (List.length xs))

let pick_arr g xs =
  if Array.length xs = 0 then invalid_arg "Prng.pick_arr: empty array";
  xs.(int g (Array.length xs))

let shuffle g xs =
  for i = Array.length xs - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = xs.(i) in
    xs.(i) <- xs.(j);
    xs.(j) <- tmp
  done

let split g =
  let seed = next_int64 g in
  { state = seed }

(* The [index]-th raw output of a generator with counter state [root] is
   [mix (root + (index+1) * gamma)], so any child stream of a root seed
   can be derived in O(1) without advancing a shared generator.  This is
   the determinism backbone of the sharded torture engine: shard layout
   never touches the per-trial streams. *)
let stream root ~index =
  if index < 0 then invalid_arg "Prng.stream: index must be non-negative";
  let raw =
    mix
      (Int64.add (Int64.of_int root)
         (Int64.mul golden_gamma (Int64.of_int (index + 1))))
  in
  { state = raw }

let stream_seed root ~index =
  Int64.to_int (Int64.shift_right_logical (stream root ~index).state 2)
