(* Per-domain allocation accounting for the hot loops.

   Everything here is a thin veneer over [Gc.quick_stat], which reads the
   *current domain's* counters without forcing a collection.  A [snap] is
   taken before and after a region of interest; the [delta] is the
   allocation attributable to that region on that domain.  Deltas from
   several domains can be [add]ed because the underlying counters are
   per-domain monotone.

   [allocated_words] follows the standard OCaml accounting identity:
   minor_words + major_words - promoted_words (promoted words would
   otherwise be counted twice, once in each heap). *)

type snap = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
}

let snap () =
  let s = Gc.quick_stat () in
  {
    minor_words = s.Gc.minor_words;
    promoted_words = s.Gc.promoted_words;
    major_words = s.Gc.major_words;
    minor_collections = s.Gc.minor_collections;
  }

type delta = {
  d_minor_words : float;
  d_promoted_words : float;
  d_major_words : float;
  d_minor_collections : int;
}

let zero =
  {
    d_minor_words = 0.;
    d_promoted_words = 0.;
    d_major_words = 0.;
    d_minor_collections = 0;
  }

let delta ~before ~after =
  {
    d_minor_words = after.minor_words -. before.minor_words;
    d_promoted_words = after.promoted_words -. before.promoted_words;
    d_major_words = after.major_words -. before.major_words;
    d_minor_collections = after.minor_collections - before.minor_collections;
  }

let add a b =
  {
    d_minor_words = a.d_minor_words +. b.d_minor_words;
    d_promoted_words = a.d_promoted_words +. b.d_promoted_words;
    d_major_words = a.d_major_words +. b.d_major_words;
    d_minor_collections = a.d_minor_collections + b.d_minor_collections;
  }

let allocated_words d = d.d_minor_words +. d.d_major_words -. d.d_promoted_words
let word_bytes = Sys.word_size / 8
let allocated_bytes d = allocated_words d *. float_of_int word_bytes

let bytes_per d n =
  if n <= 0 then 0. else allocated_bytes d /. float_of_int n

let measure f =
  let before = snap () in
  let r = f () in
  (r, delta ~before ~after:(snap ()))
