(** Deterministic pseudo-random number generator (splitmix64).

    Every source of randomness in the repository goes through this module so
    that a run is fully reproducible from a single printed seed.  The
    generator is the splitmix64 mixer of Steele, Lea and Flood, which has a
    full 2^64 period and excellent statistical quality for simulation
    purposes. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a generator from an integer seed.  Two generators
    created from the same seed produce identical streams. *)

val copy : t -> t
(** [copy g] is an independent generator starting from [g]'s current state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is {e exactly} uniform in [\[0, bound)] (rejection
    sampling over 62-bit draws, so there is no modulo bias even for
    bounds that do not divide 2^62).  Requires [bound > 0].  May consume
    more than one raw draw, with probability [2^62 mod bound / 2^62]. *)

val bool : t -> bool
(** Uniform boolean. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val pick : t -> 'a list -> 'a
(** [pick g xs] is a uniformly chosen element of [xs].
    Requires [xs] non-empty. *)

val pick_arr : t -> 'a array -> 'a
(** [pick_arr g xs] is a uniformly chosen element of array [xs].
    Requires [xs] non-empty. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val split : t -> t
(** [split g] derives a statistically independent generator and advances
    [g].  Used to give each process its own stream. *)

val stream : int -> index:int -> t
(** [stream root ~index] is the [index]-th child generator of the seed
    [root], derived in O(1) without materialising or advancing the root
    generator: its initial state is the [index]-th raw output of
    [create root].  Consequently [stream root ~index:i] behaves exactly
    like the generator obtained by calling {!split} on [create root]
    [i+1] times and keeping the last result — but any worker can compute
    any stream directly.  This is the determinism contract of the
    sharded torture engine: trial [i] always runs on
    [stream root ~index:i], no matter which domain executes it or how
    many domains exist.  Requires [index >= 0]. *)

val stream_seed : int -> index:int -> int
(** [stream_seed root ~index] is a non-negative integer seed (62 bits)
    deterministically derived from the [index]-th child stream, for APIs
    that take [int] seeds (e.g. workload generators). *)
