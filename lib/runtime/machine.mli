open Nvm

(** Memory-model dispatch: applies primitive requests to the store.

    The paper analyses its algorithms in the abstract {e private-cache}
    model (primitive operations persist immediately) and argues in
    Section 6 that the results carry over to the {e shared-cache} model
    after the standard persist-instruction transformation.  A [Machine.t]
    selects one of the two models and provides the single entry point
    ({!apply}) the scheduler uses to execute a process's next step. *)

type model = Private_cache | Shared_cache

type t

val create : ?model:model -> unit -> t
(** Fresh machine with an empty store.  Default model: [Private_cache]. *)

val model : t -> model
val mem : t -> Mem.t

val alloc_shared : t -> string -> Value.t -> Loc.t
val alloc_private : t -> pid:int -> string -> Value.t -> Loc.t

val apply : t -> Prim.request -> Value.t
(** Execute one primitive step.  In the private-cache model requests hit
    the NVM directly and [Persist]/[Fence] are no-ops; in the shared-cache
    model they go through the volatile cache. *)

val peek : t -> Loc.t -> Value.t
(** Read the current (cache-coherent) value without counting a step; for
    drivers, checkers and statistics only. *)

val poke : t -> Loc.t -> Value.t -> unit
(** Out-of-band write used by driver-level setup (e.g. resetting a
    process's announcement fields when modelling system-provided auxiliary
    state).  Writes through to NVM in both models. *)

val crash : t -> keep:(Loc.t -> bool) -> unit
(** Memory-side effect of a system-wide crash.  In the private-cache model
    this is a no-op (everything is already persistent); in the
    shared-cache model each dirty cache line is written back iff [keep]
    accepts it and the cache is discarded. *)

val crash_wipe : t -> index:int -> Fault_model.wipe -> unit
(** Fault-model-aware crash.  [crash_wipe t ~index w] behaves like
    {!crash} when [w] is [Keep keep]; for [Seeded (fault, seed)] it
    applies [fault] to the dirty set with randomness drawn from
    [Prng.stream seed ~index], where [index] is the 0-based crash
    number of the run — so every crash's write-back is independently
    replayable (the undo engine rewinds crash counters and gets the
    identical NVM image back).  No-op in the private-cache model. *)

val steps : t -> int
(** Number of primitive steps applied since creation/reset. *)

val reset : t -> unit
(** Restore all cells to their initial values, drop the cache and zero the
    step counter (for the model checker's re-executions). *)

val nvm_snapshot : t -> Mem.snapshot
(** Snapshot of the {e non-volatile} state only — what survives a crash.
    In the shared-cache model, dirty cache lines are not included. *)

(** {1 Incremental checkpointing}

    The undo engine's machine-level hooks.  With the store's write
    journal enabled ({!set_journal}), {!mark} captures the full machine
    state in O(dirty-cache-lines) — the NVM side is a journal cursor —
    and {!rewind} restores it in O(writes-since-mark).  Marks are LIFO,
    inheriting {!Nvm.Mem.rewind}'s discipline. *)

val set_journal : t -> bool -> unit
(** Enable/disable the store's write journal (see {!Nvm.Mem.set_journal}). *)

type mark

val mark : t -> mark
(** Capture journal cursor, step counter, and (shared-cache model) the
    volatile dirty set.  Requires the journal to be on. *)

val rewind : t -> mark -> unit
(** Roll the store, step counter and cache back to [mark]. *)

(** {2 Raw mark coordinates}

    A {!mark} is exactly the tuple [(arena_len, journal_depth, steps,
    dirty_entries)].  Callers that pool mutable mark buffers — the undo
    explorer takes a mark per DFS node — read the coordinates below into
    reusable fields and roll back through {!rewind_raw} instead of
    allocating a [mark] per node.  Same LIFO discipline and checks. *)

val arena_len : t -> int
(** [Nvm.Mem.n_locs] of the store. *)

val journal_depth : t -> int
(** [Nvm.Mem.journal_depth] of the store. *)

val dirty_entries : t -> (Loc.t * Value.t) list
(** Shared-cache dirty set ([Cache.entries]); [[]] in the private-cache
    model (where it allocates nothing). *)

val rewind_raw :
  t ->
  mem_len:int ->
  mem_j:int ->
  steps:int ->
  dirty:(Loc.t * Value.t) list ->
  unit
(** {!rewind} from raw coordinates previously read off this machine. *)
