open Nvm

type model = Private_cache | Shared_cache

type t = {
  model : model;
  mem : Mem.t;
  cache : Cache.t option;
  mutable steps : int;
}

let create ?(model = Private_cache) () =
  let mem = Mem.create () in
  let cache = match model with Private_cache -> None | Shared_cache -> Some (Cache.create mem) in
  { model; mem; cache; steps = 0 }

let model t = t.model
let mem t = t.mem

let alloc_shared t name init = Mem.alloc t.mem ~name ~kind:Loc.Shared init

let alloc_private t ~pid name init =
  Mem.alloc t.mem ~name ~kind:(Loc.Private pid) init

(* shared result constants: [apply] sits on the per-step hot path, and
   boxing a fresh [Bool] for every cas would allocate per step *)
let vtrue = Value.Bool true
let vfalse = Value.Bool false

let vbool b = if b then vtrue else vfalse

let apply t (req : Prim.request) =
  t.steps <- t.steps + 1;
  match t.cache with
  | None -> (
      match req with
      | Read l -> Mem.read t.mem l
      | Write (l, v) ->
          Mem.write t.mem l v;
          Value.Unit
      | Cas (l, e, d) -> vbool (Mem.cas t.mem l e d)
      | Faa (l, d) -> Value.Int (Mem.faa t.mem l d)
      | Persist _ | Fence | Yield -> Value.Unit)
  | Some c -> (
      match req with
      | Read l -> Cache.read c l
      | Write (l, v) ->
          Cache.write c l v;
          Value.Unit
      | Cas (l, e, d) -> vbool (Cache.cas c l e d)
      | Faa (l, d) -> Value.Int (Cache.faa c l d)
      | Persist l ->
          Cache.persist c l;
          Value.Unit
      | Fence ->
          Cache.persist_all c;
          Value.Unit
      | Yield -> Value.Unit)

let peek t l =
  match t.cache with None -> Mem.read t.mem l | Some c -> Cache.read c l

let poke t l v =
  (match t.cache with
  | None -> ()
  | Some c ->
      (* drop any stale dirty line so NVM and cache agree on [l] *)
      Cache.write c l v;
      Cache.persist c l);
  Mem.write t.mem l v

let crash t ~keep =
  match t.cache with None -> () | Some c -> Cache.crash c ~keep

let crash_wipe t ~index wipe =
  match t.cache with
  | None -> ()
  | Some c -> (
      match (wipe : Fault_model.wipe) with
      | Fault_model.Keep keep -> Cache.crash c ~keep
      | Fault_model.Seeded (fault, seed) ->
          (* one dedicated stream per crash: outcome depends only on
             (fault, seed, crash index, dirty set) *)
          let prng = Dtc_util.Prng.stream seed ~index in
          Cache.crash_faulted c ~fault ~prng)

let steps t = t.steps

let reset t =
  Mem.reset t.mem;
  (match t.cache with Some c -> Cache.crash c ~keep:(fun _ -> false) | None -> ());
  t.steps <- 0

let nvm_snapshot t = Mem.snapshot t.mem

(* ---- incremental checkpointing (undo engine) ---- *)

let set_journal t on = Mem.set_journal t.mem on

type mark = {
  k_mem : Mem.mark;
  k_steps : int;
  k_dirty : (Loc.t * Value.t) list; (* shared-cache dirty set; [] otherwise *)
}

let mark t =
  {
    k_mem = Mem.mark t.mem;
    k_steps = t.steps;
    k_dirty = (match t.cache with None -> [] | Some c -> Cache.entries c);
  }

let rewind t m =
  Mem.rewind t.mem m.k_mem;
  t.steps <- m.k_steps;
  match t.cache with
  | None -> ()
  | Some c -> Cache.restore_entries c m.k_dirty

(* Raw mark coordinates, for callers that pool mutable mark buffers
   (the undo explorer): a [mark] is exactly
   (Mem.n_locs, Mem.journal_depth, steps, dirty entries). *)

let journal_depth t = Mem.journal_depth t.mem
let arena_len t = Mem.n_locs t.mem

let dirty_entries t =
  match t.cache with None -> [] | Some c -> Cache.entries c

let rewind_raw t ~mem_len ~mem_j ~steps ~dirty =
  Mem.rewind_to t.mem ~len:mem_len ~j:mem_j;
  t.steps <- steps;
  match t.cache with
  | None -> ()
  | Some c -> Cache.restore_entries c dirty
