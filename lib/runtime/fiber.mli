open Nvm

(** Crash-interruptible process fibers.

    A process's program is ordinary OCaml code that performs its primitive
    memory operations through the effect operations below ({!read},
    {!write}, {!cas}, …).  Each primitive operation suspends the fiber and
    hands the pending {!Prim.request} to the scheduler, which applies it
    to the machine and resumes the fiber with the result.  This gives the
    simulation the exact granularity of the paper's model: a system-wide
    crash can be injected between any two primitive steps, and killing a
    fiber discards its continuation — i.e. all of the process's volatile
    local variables — while the simulated NVM survives.

    Programs must not catch the {!Crashed} exception: it is the mechanism
    by which a crash unwinds a fiber. *)

exception Crashed
(** Raised inside a fiber when it is {!kill}ed.  Never catch it. *)

(** {1 Effect operations — to be called only from inside a fiber} *)

val step : Prim.request -> Value.t
(** Perform one primitive step.  All the helpers below go through it. *)

val with_ghost_feed : (Prim.request -> Value.t option) -> (unit -> 'a) -> 'a
(** [with_ghost_feed f body] installs [f] as the current domain's ghost
    feed for the duration of [body]: every {!step} performed by fibers
    running inside [body] first asks [f] for the response, and only
    suspends on the effect when [f] returns [None].  This lets a ghost
    replay re-execute a logged prefix as one straight-line run (no
    per-step suspension); see [Session.rebuild].  Feeds nest by
    save/restore; the previous feed is restored even on exceptions. *)

val read : Loc.t -> Value.t
val write : Loc.t -> Value.t -> unit

val cas : Loc.t -> Value.t -> Value.t -> bool
(** Atomic compare-and-swap on a base object; returns success. *)

val faa : Loc.t -> int -> int
(** Atomic fetch-and-add on an integer base object; returns the old
    value. *)

val persist : Loc.t -> unit
(** Explicit persist instruction (no-op in the private-cache model). *)

val fence : unit -> unit
val yield : unit -> unit

(** {1 Fiber lifecycle — driver side} *)

type t
(** A started fiber.  Starting runs the program up to (and not including)
    its first primitive step: such prefix code is purely local computation
    and is invisible to other processes, so it costs no simulated step. *)

type status =
  | Pending of Prim.request  (** suspended, waiting for its next step *)
  | Done of Value.t  (** program returned *)
  | Killed  (** crashed; continuation discarded *)

val start : (unit -> Value.t) -> t
val status : t -> status

val is_pending : t -> bool
(** [is_pending f] iff [status f] is [Pending _], without allocating the
    [status] box — the scheduler's runnable-set scan runs once per
    simulated step. *)

val is_done : t -> bool
(** [is_done f] iff [status f] is [Done _], allocation-free. *)

val pending_request : t -> Prim.request
(** The pending request of a [Pending] fiber, without the [status] box.
    Raises [Invalid_argument] if the fiber is not pending. *)

val resume : t -> Value.t -> unit
(** [resume f result] feeds [result] to the pending primitive step and
    runs the fiber to its next suspension (or completion).  Raises
    [Invalid_argument] if the fiber is not pending. *)

val kill : t -> unit
(** Crash the fiber: its continuation is discontinued with {!Crashed} and
    the status becomes [Killed].  Idempotent on non-pending fibers. *)
