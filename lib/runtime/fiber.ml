open Nvm

exception Crashed

type _ Effect.t += Step : Prim.request -> Value.t Effect.t

(* Ghost-feed fast path: while a feed is installed on the current
   domain, [step] consumes pre-recorded responses directly instead of
   performing the effect — no suspension, no continuation traffic.  A
   ghost replay (Session.rebuild) re-executes a whole logged prefix as
   one straight-line run with a single final suspension, instead of two
   stack switches per logged step.  The feed returns [None] when its
   log is exhausted; the step then suspends normally. *)
let feed_key : (Prim.request -> Value.t option) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let step req =
  match !(Domain.DLS.get feed_key) with
  | Some f -> (
      match f req with Some v -> v | None -> Effect.perform (Step req))
  | None -> Effect.perform (Step req)

let with_ghost_feed f body =
  let cell = Domain.DLS.get feed_key in
  let saved = !cell in
  cell := Some f;
  Fun.protect ~finally:(fun () -> cell := saved) body

let read l = step (Prim.Read l)
let write l v = ignore (step (Prim.Write (l, v)))
let cas l e d = Value.to_bool (step (Prim.Cas (l, e, d)))
let faa l d = Value.to_int (step (Prim.Faa (l, d)))
let persist l = ignore (step (Prim.Persist l))
let fence () = ignore (step Prim.Fence)
let yield () = ignore (step Prim.Yield)

type outcome =
  | O_done of Value.t
  | O_pending of Prim.request * (Value.t, outcome) Effect.Deep.continuation

type status = Pending of Prim.request | Done of Value.t | Killed

type state =
  | S_pending of Prim.request * (Value.t, outcome) Effect.Deep.continuation
  | S_done of Value.t
  | S_killed

type t = { mutable state : state }

let handler : (Value.t, outcome) Effect.Deep.handler =
  {
    retc = (fun v -> O_done v);
    exnc = raise;
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Step req ->
            Some
              (fun (k : (a, outcome) Effect.Deep.continuation) ->
                O_pending (req, (k : (Value.t, outcome) Effect.Deep.continuation)))
        | _ -> None);
  }

let of_outcome = function
  | O_done v -> { state = S_done v }
  | O_pending (req, k) -> { state = S_pending (req, k) }

let start f = of_outcome (Effect.Deep.match_with f () handler)

let status t =
  match t.state with
  | S_pending (req, _) -> Pending req
  | S_done v -> Done v
  | S_killed -> Killed

(* Allocation-free status probes: [status] boxes a [Pending]/[Done]
   per call, which the scheduler would otherwise pay on every
   runnable-set scan of every step. *)

let is_pending t = match t.state with S_pending _ -> true | _ -> false
let is_done t = match t.state with S_done _ -> true | _ -> false

let pending_request t =
  match t.state with
  | S_pending (req, _) -> req
  | S_done _ | S_killed ->
      invalid_arg "Fiber.pending_request: fiber is not pending"

let resume t result =
  match t.state with
  | S_pending (_, k) -> (
      match Effect.Deep.continue k result with
      | O_done v -> t.state <- S_done v
      | O_pending (req, k') -> t.state <- S_pending (req, k'))
  | S_done _ | S_killed -> invalid_arg "Fiber.resume: fiber is not pending"

let kill t =
  match t.state with
  | S_done _ | S_killed -> t.state <- S_killed
  | S_pending (_, k) -> (
      t.state <- S_killed;
      (* Unwind the continuation so its resources are released.  A program
         that catches [Crashed] and keeps running is erroneous. *)
      match Effect.Deep.discontinue k Crashed with
      | _ -> failwith "Fiber.kill: program caught Crashed and kept running"
      | exception Crashed -> ())
