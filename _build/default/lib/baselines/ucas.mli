open Nvm
open Runtime

(** Unbounded-space detectable CAS, after Ben-David, Blelloch, Friedman
    and Wei [4] — the comparator Algorithm 2 improves on.

    The CAS-able variable [C] holds [(value, (writer pid, writer seq))]
    with a per-process persistent sequence counter making every installed
    tuple globally unique.  Detectability of a crashed CAS needs
    collaboration: before attempting to remove the tuple [(e, (w, s))]
    currently in [C], a process first records [s] into the victim's slot
    [rem[w]] (a monotone maximum maintained by a small CAS loop).  Upon
    recovery, [p] concludes its CAS succeeded iff its tag is still in [C]
    or [rem[p]] has reached its sequence number — the record always
    precedes the removal, so a successfully installed tuple can never
    disappear unrecorded.

    Both [C]'s tag and the [rem] slots grow without bound with the number
    of operations (experiment E2 measures this against Algorithm 2's Θ(N)
    bits).  The [rem] maximum-update loop makes operations lock-free
    rather than wait-free — a simplification of [4]'s wait-free scheme
    that preserves its space behaviour, which is what this baseline is
    for. *)

type t

val create : ?persist:bool -> Machine.t -> n:int -> init:Value.t -> t
val instance : t -> Sched.Obj_inst.t
(** Operations: [read], [cas old new]. *)

val shared_locs : t -> Loc.t list
