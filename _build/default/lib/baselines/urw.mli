open Nvm
open Runtime

(** Unbounded-space detectable read/write object, after Attiya, Ben-Baruch
    and Hendler [3] — the comparator Algorithm 1 improves on.

    Every write installs a value tagged with a globally unique
    [(pid, seq)] pair, where [seq] is a per-process persistent counter.
    Uniqueness kills the ABA problem outright: upon recovery at the
    checkpoint, register [R] unchanged since the pre-write read means the
    write certainly did not execute ([fail]), [R] holding the writer's own
    tag means it did, and any other content means some write intervened —
    in which case the crashed write either executed and was overwritten,
    or can be linearized immediately before the intervening write; both
    verdicts are [ack].

    The price is the unbounded tag: [seq] grows without bound with the
    number of operations, which is exactly what experiment E4 measures
    against Algorithm 1's flat footprint. *)

type t

val create : ?persist:bool -> Machine.t -> n:int -> init:Value.t -> t
val instance : t -> Sched.Obj_inst.t
(** Operations: [read], [write v]. *)

val shared_locs : t -> Loc.t list
