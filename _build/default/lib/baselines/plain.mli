open Nvm
open Runtime

(** Plain, {e non-recoverable} objects: the "original" implementations the
    paper's detectable algorithms are measured against.

    They keep no announcements, no checkpoints and no recovery data; their
    recovery dispatcher always reports "nothing pending", so after a crash
    an in-flight operation is simply lost.  Under a crash-free run they
    give the baseline time/space cost of each object; under crash torture
    they demonstrate (experiment E6's expected-failure rows) that
    detectability does not come for free: the driver, unable to learn
    whether a lost operation took effect, must guess, and the checker duly
    catches the guesses that were wrong. *)

val register : Machine.t -> init:Value.t -> Sched.Obj_inst.t
(** Ops: [read], [write v]. *)

val cas_cell : Machine.t -> init:Value.t -> Sched.Obj_inst.t
(** Ops: [read], [cas old new]. *)

val counter : Machine.t -> init:int -> Sched.Obj_inst.t
(** Ops: [read], [inc] (a primitive fetch-and-add). *)

val faa : Machine.t -> init:int -> Sched.Obj_inst.t
(** Ops: [read], [faa d]. *)

val queue : Machine.t -> capacity:int -> Sched.Obj_inst.t
(** Lock-free MS-style queue over a node pool.  Ops: [enq v], [deq]. *)
