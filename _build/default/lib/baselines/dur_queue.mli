open Nvm
open Runtime

(** The {e durable} (but not detectable) lock-free queue, after the first
    of Friedman et al.'s three queue variants — the paper's reference [9]
    presents the durable and the detectable queue precisely to exhibit
    the trade this module makes measurable.

    Structurally this is the same write-once linked list as
    {!Detectable.Dqueue}, with all the detectability state removed: no
    per-operation node/attempt records, no persisted responses.  After a
    crash the queue's {e state} is perfectly consistent (durable
    linearizability holds — every history this object produces passes the
    checker), but recovery answers {!Sched.Obj_inst.unknown}: the caller
    cannot learn whether its interrupted operation took effect.  Retrying
    may duplicate an enqueue or re-consume nothing; giving up may lose
    one.  Experiment E9 counts exactly those duplicated and lost
    operations against the detectable queue's zero. *)

type t

val create : ?persist:bool -> Machine.t -> n:int -> capacity:int -> t
val instance : t -> Sched.Obj_inst.t
(** Operations: [enq v], [deq]. *)

val shared_locs : t -> Loc.t list
