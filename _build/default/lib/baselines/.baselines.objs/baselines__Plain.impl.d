lib/baselines/plain.ml: Array Detectable Fiber History Machine Nvm Printf Runtime Sched Spec Value
