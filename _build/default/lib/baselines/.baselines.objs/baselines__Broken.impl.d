lib/baselines/broken.ml: Array Base Detectable Fiber History Machine Nvm Runtime Sched Spec Value
