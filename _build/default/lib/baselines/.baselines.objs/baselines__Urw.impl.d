lib/baselines/urw.ml: Array Base Detectable History Loc Machine Nvm Runtime Sched Spec Value
