lib/baselines/broken.mli: Machine Nvm Runtime Sched Value
