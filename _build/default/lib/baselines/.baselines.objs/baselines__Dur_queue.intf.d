lib/baselines/dur_queue.mli: Loc Machine Nvm Runtime Sched
