lib/baselines/plain.mli: Machine Nvm Runtime Sched Value
