lib/baselines/urw.mli: Loc Machine Nvm Runtime Sched Value
