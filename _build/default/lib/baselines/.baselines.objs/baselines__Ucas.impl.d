lib/baselines/ucas.ml: Array Base Detectable History Loc Machine Nvm Printf Runtime Sched Spec Value
