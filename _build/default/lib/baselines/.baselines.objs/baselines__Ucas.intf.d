lib/baselines/ucas.mli: Loc Machine Nvm Runtime Sched Value
