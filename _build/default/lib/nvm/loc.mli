(** Locations (named cells) in the simulated non-volatile memory.

    The paper's system model distinguishes shared variables — accessed by
    all processes and compared by memory-equivalence in Theorem 1 — from
    per-process private non-volatile variables such as [RD_p], [T_p] and
    the announcement structure [Ann_p].  The distinction matters for the
    space-complexity experiments (only shared bits count toward the lower
    bound) and for the memory-equivalence relation. *)

type kind =
  | Shared  (** accessible by every process *)
  | Private of int  (** private NVM of the given process id *)

type t = private { id : int; name : string; kind : kind }
(** A handle into a {!Mem.t} store.  Locations are only created by
    [Mem.alloc] and are valid only for the store that allocated them. *)

val make : id:int -> name:string -> kind:kind -> t
(** For use by {!Mem} only. *)

val is_shared : t -> bool
val pp : Format.formatter -> t -> unit
