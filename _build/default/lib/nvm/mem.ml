type t = {
  mutable cells : Value.t array;
  mutable inits : Value.t array;
  mutable locs : Loc.t array;
  mutable max_bits : int array;
  mutable len : int;
}

let initial_capacity = 64

let create () =
  {
    cells = Array.make initial_capacity Value.Bot;
    inits = Array.make initial_capacity Value.Bot;
    locs = Array.make initial_capacity (Loc.make ~id:(-1) ~name:"" ~kind:Loc.Shared);
    max_bits = Array.make initial_capacity 0;
    len = 0;
  }

let grow mem =
  let cap = Array.length mem.cells in
  let cap' = 2 * cap in
  let extend a fill =
    let b = Array.make cap' fill in
    Array.blit a 0 b 0 cap;
    b
  in
  mem.cells <- extend mem.cells Value.Bot;
  mem.inits <- extend mem.inits Value.Bot;
  mem.locs <- extend mem.locs (Loc.make ~id:(-1) ~name:"" ~kind:Loc.Shared);
  mem.max_bits <- extend mem.max_bits 0

let alloc mem ~name ~kind init =
  if mem.len = Array.length mem.cells then grow mem;
  let id = mem.len in
  let loc = Loc.make ~id ~name ~kind in
  mem.cells.(id) <- init;
  mem.inits.(id) <- init;
  mem.locs.(id) <- loc;
  mem.max_bits.(id) <- Value.bits init;
  mem.len <- id + 1;
  loc

let check mem (loc : Loc.t) =
  if loc.Loc.id < 0 || loc.Loc.id >= mem.len then
    invalid_arg (Printf.sprintf "Mem: foreign location %s" loc.Loc.name)

let read mem (loc : Loc.t) =
  check mem loc;
  mem.cells.(loc.Loc.id)

let note_bits mem id v =
  let b = Value.bits v in
  if b > mem.max_bits.(id) then mem.max_bits.(id) <- b

let write mem (loc : Loc.t) v =
  check mem loc;
  mem.cells.(loc.Loc.id) <- v;
  note_bits mem loc.Loc.id v

let cas mem (loc : Loc.t) expected desired =
  check mem loc;
  let cur = mem.cells.(loc.Loc.id) in
  if Value.equal cur expected then (
    mem.cells.(loc.Loc.id) <- desired;
    note_bits mem loc.Loc.id desired;
    true)
  else false

let faa mem (loc : Loc.t) delta =
  check mem loc;
  let old = Value.to_int mem.cells.(loc.Loc.id) in
  let v = Value.Int (old + delta) in
  mem.cells.(loc.Loc.id) <- v;
  note_bits mem loc.Loc.id v;
  old

let reset mem =
  for i = 0 to mem.len - 1 do
    mem.cells.(i) <- mem.inits.(i);
    mem.max_bits.(i) <- Value.bits mem.inits.(i)
  done

let n_locs mem = mem.len

let loc_by_id mem id =
  if id < 0 || id >= mem.len then invalid_arg "Mem.loc_by_id: out of range";
  mem.locs.(id)

type snapshot = {
  s_cells : Value.t array;
  s_locs : Loc.t array;
  s_max_bits : int array;
}

let snapshot mem =
  {
    s_cells = Array.sub mem.cells 0 mem.len;
    s_locs = Array.sub mem.locs 0 mem.len;
    s_max_bits = Array.sub mem.max_bits 0 mem.len;
  }

let restore mem snap =
  if Array.length snap.s_cells <> mem.len then
    invalid_arg "Mem.restore: snapshot from a different allocation state";
  Array.blit snap.s_cells 0 mem.cells 0 mem.len;
  (* roll the high-water marks back too: a restore rewinds the whole
     store, and leaving [max_bits] at the post-rollback peak would make
     [max_shared_bits] over-report the Theorem 1 footprint *)
  Array.blit snap.s_max_bits 0 mem.max_bits 0 mem.len

let equal_shared a b =
  Array.length a.s_cells = Array.length b.s_cells
  && (let ok = ref true in
      Array.iteri
        (fun i loc ->
          if Loc.is_shared loc && not (Value.equal a.s_cells.(i) b.s_cells.(i))
          then ok := false)
        a.s_locs;
      !ok)

let hash_shared a =
  let h = ref 5381 in
  Array.iteri
    (fun i loc ->
      if Loc.is_shared loc then h := (!h * 1000003) lxor Value.hash a.s_cells.(i))
    a.s_locs;
  !h

(* Two fingerprint halves chained from independent seeds.  The model
   checker treats a pair collision as "same configuration", so the halves
   must be wide and independent; Config_set's exact mode audits them. *)
let seed_a = 0x2545F4914F6CDD1
let seed_b = 0x6A09E667F3BCC90

let fingerprint_shared snap =
  let a = ref seed_a and b = ref seed_b in
  Array.iteri
    (fun i loc ->
      if Loc.is_shared loc then begin
        a := Value.hash_seeded (Value.mix !a i) snap.s_cells.(i);
        b := Value.hash_seeded (Value.mix !b i) snap.s_cells.(i)
      end)
    snap.s_locs;
  (!a, !b)

let live_fingerprint_shared mem =
  let a = ref seed_a and b = ref seed_b in
  for i = 0 to mem.len - 1 do
    if Loc.is_shared mem.locs.(i) then begin
      a := Value.hash_seeded (Value.mix !a i) mem.cells.(i);
      b := Value.hash_seeded (Value.mix !b i) mem.cells.(i)
    end
  done;
  (!a, !b)

let live_fingerprint_full mem =
  let a = ref seed_a and b = ref seed_b in
  for i = 0 to mem.len - 1 do
    a := Value.hash_seeded (Value.mix !a i) mem.cells.(i);
    b := Value.hash_seeded (Value.mix !b i) mem.cells.(i)
  done;
  (!a, !b)

let equal_full a b =
  Array.length a.s_cells = Array.length b.s_cells
  && (let ok = ref true in
      Array.iteri
        (fun i v -> if not (Value.equal v b.s_cells.(i)) then ok := false)
        a.s_cells;
      !ok)

let pp_snapshot fmt snap =
  Array.iteri
    (fun i loc ->
      Format.fprintf fmt "%a = %a@." Loc.pp loc Value.pp snap.s_cells.(i))
    snap.s_locs

let shared_bits mem =
  let total = ref 0 in
  for i = 0 to mem.len - 1 do
    if Loc.is_shared mem.locs.(i) then total := !total + Value.bits mem.cells.(i)
  done;
  !total

let max_shared_bits mem =
  let total = ref 0 in
  for i = 0 to mem.len - 1 do
    if Loc.is_shared mem.locs.(i) then total := !total + mem.max_bits.(i)
  done;
  !total

let max_bits_of mem (loc : Loc.t) =
  check mem loc;
  mem.max_bits.(loc.Loc.id)
