type kind = Shared | Private of int

type t = { id : int; name : string; kind : kind }

let make ~id ~name ~kind = { id; name; kind }

let is_shared l = l.kind = Shared

let pp fmt l =
  match l.kind with
  | Shared -> Format.fprintf fmt "%s" l.name
  | Private p -> Format.fprintf fmt "%s<p%d>" l.name p
