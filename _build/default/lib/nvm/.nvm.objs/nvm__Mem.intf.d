lib/nvm/mem.mli: Format Loc Value
