lib/nvm/cache.mli: Loc Mem Value
