lib/nvm/value.mli: Format
