lib/nvm/value.ml: Array Bool Format Hashtbl Int Printf String
