lib/nvm/cache.ml: Hashtbl Int List Loc Mem Value
