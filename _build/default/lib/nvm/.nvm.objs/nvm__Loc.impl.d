lib/nvm/loc.ml: Format
