lib/nvm/loc.mli: Format
