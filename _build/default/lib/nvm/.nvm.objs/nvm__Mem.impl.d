lib/nvm/mem.ml: Array Format Loc Printf Value
