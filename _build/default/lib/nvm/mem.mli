(** The simulated non-volatile memory store.

    A store is a flat array of {!Value.t} cells addressed by {!Loc.t}
    handles.  It survives crashes by construction (the crash machinery
    only discards process continuations and caches, never the store).

    The store also keeps the bookkeeping needed by the paper's
    space-complexity experiments: for every location it tracks the largest
    value (in bits) ever resident, so an implementation's footprint can be
    measured as it runs. *)

type t

val create : unit -> t

val alloc : t -> name:string -> kind:Loc.kind -> Value.t -> Loc.t
(** [alloc mem ~name ~kind init] allocates a fresh cell holding [init].
    The initial value is remembered so {!reset} can restore it. *)

val read : t -> Loc.t -> Value.t
val write : t -> Loc.t -> Value.t -> unit

val cas : t -> Loc.t -> Value.t -> Value.t -> bool
(** [cas mem loc expected desired] atomically (w.r.t. the simulation)
    replaces the contents with [desired] iff the current contents equal
    [expected]; returns whether the swap happened. *)

val faa : t -> Loc.t -> int -> int
(** [faa mem loc delta] fetch-and-adds on an integer cell, returning the
    previous value. *)

val reset : t -> unit
(** Restore every cell to its initial value and clear statistics.  Used by
    the model checker to re-execute programs from the initial
    configuration. *)

val n_locs : t -> int

val loc_by_id : t -> int -> Loc.t
(** Inverse of allocation order; raises [Invalid_argument] if out of
    range. *)

(** {1 Snapshots and memory-equivalence} *)

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit

val equal_shared : snapshot -> snapshot -> bool
(** The paper's memory-equivalence: two configurations are
    memory-equivalent when every {e shared} variable has the same value in
    both.  Private NVM and local state are excluded. *)

val hash_shared : snapshot -> int
(** Hash consistent with {!equal_shared}. *)

val equal_full : snapshot -> snapshot -> bool
(** Equality over all cells, shared and private. *)

val pp_snapshot : Format.formatter -> snapshot -> unit

(** {1 Space accounting} *)

val shared_bits : t -> int
(** Current footprint: sum of {!Value.bits} over shared cells. *)

val max_shared_bits : t -> int
(** High-water mark of per-cell maxima: sum over shared cells of the
    largest size each has held since creation/{!reset}.  This is the
    honest measure of how much NVM the implementation must provision. *)

val max_bits_of : t -> Loc.t -> int
(** High-water mark of one cell. *)
