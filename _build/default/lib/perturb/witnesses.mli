open History

(** The paper's concrete doubly-perturbing witnesses (Lemma 3 and appendix
    Lemmas 5–8), packaged for mechanical verification, plus the adversary
    workloads that realise each witness as a concurrent crash attack
    (Figure 2's shape).

    [attack] index 0 is the process [p] of the witness: it performs
    [p]'s share of H1 and then the witnessing operation; the other rows
    carry the perturbed operations and the p-free extension. *)

type entry = {
  obj_name : string;
  spec : Spec.t;
  witness : Perturbing.witness;
  attack : Spec.op list array;
}

val register : entry
(** Lemma 3: [write(v1)] witnesses that a read/write register is
    doubly-perturbing. *)

val counter : entry
(** Lemma 5: [inc]. *)

val bounded_counter : entry
(** Appendix remark after Lemma 5: a counter bounded to {0,1,2} is still
    doubly-perturbing (though not perturbable). *)

val cas : entry
(** Lemma 6: [cas(v0,v1)]. *)

val faa : entry
(** Lemma 7: [faa(1)]. *)

val queue : entry
(** Lemma 8: [deq] after [enq v0; enq v1]. *)

val swap : entry
(** Section 5 remark: [swap v1]. *)

val tas : entry
(** Section 5's resettable test-and-set: [tas]. *)

val all : entry list

val max_register_has_no_witness : alphabet:Spec.op list -> max_h1:int -> max_ext:int -> bool
(** Lemma 4, as bounded-exhaustive evidence: no doubly-perturbing witness
    exists for the max register within the search bound. *)
