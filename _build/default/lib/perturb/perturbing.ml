open Nvm
open History

let response_after spec history op =
  let state = Spec.final_state spec history in
  snd (spec.Spec.step state op)

let is_perturbing spec ~history ~op ~wrt =
  let with_op = response_after spec (history @ [ op ]) wrt in
  let without = response_after spec history wrt in
  not (Value.equal with_op without)

type witness = {
  h1 : Spec.op list;
  op_p : Spec.op;
  wrt1 : Spec.op;
  ext : Spec.op list;
  wrt2 : Spec.op;
}

let pp_ops fmt ops =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.fprintf f "; ")
       Spec.pp_op)
    ops

let pp_witness fmt w =
  Format.fprintf fmt
    "H1 = %a, OP_p = %a perturbs %a; ext = %a; second OP_p perturbs %a"
    pp_ops w.h1 Spec.pp_op w.op_p Spec.pp_op w.wrt1 pp_ops w.ext Spec.pp_op
    w.wrt2

let verify_witness spec w =
  if not (is_perturbing spec ~history:w.h1 ~op:w.op_p ~wrt:w.wrt1) then
    Error
      (Format.asprintf "condition 1 fails: %a does not perturb %a after %a"
         Spec.pp_op w.op_p Spec.pp_op w.wrt1 pp_ops w.h1)
  else
    let h2 = w.h1 @ [ w.op_p; w.wrt1 ] @ w.ext in
    if not (is_perturbing spec ~history:h2 ~op:w.op_p ~wrt:w.wrt2) then
      Error
        (Format.asprintf
           "condition 2 fails: a second %a does not perturb %a after H2 = %a"
           Spec.pp_op w.op_p Spec.pp_op w.wrt2 pp_ops h2)
    else Ok ()

(* All sequences over [alphabet] of length <= n, shortest first. *)
let sequences alphabet n =
  let rec go n =
    if n = 0 then [ [] ]
    else
      let shorter = go (n - 1) in
      shorter
      @ List.concat_map
          (fun seq ->
            if List.length seq = n - 1 then
              List.map (fun op -> seq @ [ op ]) alphabet
            else [])
          shorter
  in
  go n

let search spec ~alphabet ~max_h1 ~max_ext =
  let h1s = sequences alphabet max_h1 in
  let exts = sequences alphabet max_ext in
  let found = ref None in
  List.iter
    (fun h1 ->
      if !found = None then
        List.iter
          (fun op_p ->
            List.iter
              (fun wrt1 ->
                if
                  !found = None
                  && is_perturbing spec ~history:h1 ~op:op_p ~wrt:wrt1
                then
                  List.iter
                    (fun ext ->
                      List.iter
                        (fun wrt2 ->
                          if !found = None then
                            let w = { h1; op_p; wrt1; ext; wrt2 } in
                            match verify_witness spec w with
                            | Ok () -> found := Some w
                            | Error _ -> ())
                        alphabet)
                    exts)
              alphabet)
          alphabet)
    h1s;
  !found
