lib/perturb/witnesses.mli: History Perturbing Spec
