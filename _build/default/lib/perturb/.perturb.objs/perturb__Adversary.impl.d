lib/perturb/adversary.ml: List Modelcheck Sched Session
