lib/perturb/witnesses.ml: History Nvm Perturbing Spec Value
