lib/perturb/perturbing.ml: Format History List Nvm Spec Value
