lib/perturb/perturbing.mli: Format History Spec
