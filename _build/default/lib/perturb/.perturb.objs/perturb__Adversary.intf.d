lib/perturb/adversary.mli: History Modelcheck Obj_inst Runtime Sched Session Spec
