open History

(** Executable versions of the paper's perturbation definitions
    (Section 5, Definition 3).

    The definitions are stated over sequential histories of the abstract
    object, so they are decidable questions about the {!Spec.t} transition
    function.  Process identities only enter through disjointness
    constraints ("an operation by a different process", "a p-free
    extension"); since our specifications are process-oblivious, any
    assignment of distinct processes to the quantified operations
    satisfies them, and the definitions reduce to response comparisons —
    which is what this module computes. *)

val is_perturbing :
  Spec.t -> history:Spec.op list -> op:Spec.op -> wrt:Spec.op -> bool
(** [is_perturbing spec ~history ~op ~wrt]: does [wrt] return different
    responses in [history ∘ op ∘ wrt] and [history ∘ wrt]?  (Definition 3,
    "OP is perturbing with respect to OP' after H".) *)

type witness = {
  h1 : Spec.op list;  (** the sequential history H1 *)
  op_p : Spec.op;  (** the witnessing operation of process p *)
  wrt1 : Spec.op;  (** the operation OP' it perturbs after H1 *)
  ext : Spec.op list;  (** p-free extension of H1 ∘ OP_p ∘ OP' giving H2 *)
  wrt2 : Spec.op;  (** the operation a second OP_p perturbs after H2 *)
}

val pp_witness : Format.formatter -> witness -> unit

val verify_witness : Spec.t -> witness -> (unit, string) result
(** Check both conditions of Definition 3 for the candidate witness. *)

val search :
  Spec.t -> alphabet:Spec.op list -> max_h1:int -> max_ext:int -> witness option
(** Bounded-exhaustive search for a doubly-perturbing witness: all
    histories over [alphabet] up to length [max_h1] for H1, all
    single-operation choices for OP_p/OP'/OP'', all extensions up to
    [max_ext].  [None] means the object has no witness within the bound —
    the evidence behind Lemma 4 (max register) in experiment E7. *)
