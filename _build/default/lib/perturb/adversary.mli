open History
open Sched

(** The Theorem 2 adversary: turn a doubly-perturbing witness into a
    concurrent crash attack and measure whether an implementation
    survives it.

    The attack realises the execution of Figure 2: process [p] performs
    the witnessing operation; a crash may strike between any two of its
    primitive steps (in particular between the operation's effect and its
    return); the other process drives the perturbed operations and the
    p-free extension around [p]'s recovery.  All interleavings within a
    small delay bound and all single-crash placements are explored, under
    both recovery policies (retrying a [fail]ed operation, and giving up
    on it).

    For an implementation {e without} auxiliary state, Theorem 2
    guarantees some schedule in this family yields an inconsistent
    history; for the paper's algorithms (which receive auxiliary state
    through the announcement) and for the max register (not
    doubly-perturbing), the attack comes back clean. *)

type report = {
  policy : Session.policy;
  executions : int;
  violations : int;
  sample : Modelcheck.Explore.violation option;
}

val attack :
  mk:(unit -> Runtime.Machine.t * Obj_inst.t) ->
  workloads:Spec.op list array ->
  ?switch_budget:int ->
  ?max_steps:int ->
  unit ->
  report list
(** One report per policy ([Retry] and [Give_up]).  Default switch budget
    3. *)

val survives : report list -> bool
(** No violation under either policy. *)
