open Nvm
open History

type entry = {
  obj_name : string;
  spec : Spec.t;
  witness : Perturbing.witness;
  attack : Spec.op list array;
}

let v0 = Value.Int 0
let v1 = Value.Int 1

(* Lemma 3: write_p(v1) perturbs read_q after the empty history, and again
   after H2 = write_p(v1) ∘ read_q ∘ write_q(v0). *)
let register =
  {
    obj_name = "register";
    spec = Spec.register v0;
    witness =
      {
        h1 = [];
        op_p = Spec.write_op v1;
        wrt1 = Spec.read_op;
        ext = [ Spec.write_op v0 ];
        wrt2 = Spec.read_op;
      };
    attack =
      [|
        [ Spec.write_op v1 ];
        [ Spec.read_op; Spec.write_op v0; Spec.read_op ];
      |];
  }

(* Lemma 5: inc_p perturbs read_q after the empty history and again after
   H2 = inc_p ∘ read_q (empty p-free extension). *)
let counter =
  {
    obj_name = "counter";
    spec = Spec.counter 0;
    witness =
      { h1 = []; op_p = Spec.inc_op; wrt1 = Spec.read_op; ext = []; wrt2 = Spec.read_op };
    attack = [| [ Spec.inc_op ]; [ Spec.read_op; Spec.read_op ] |];
  }

(* The appendix's bounded counter over {0,1,2}: the same witness works, so
   it is doubly-perturbing despite not being perturbable. *)
let bounded_counter =
  {
    obj_name = "bounded_counter";
    spec = Spec.bounded_counter ~lo:0 ~hi:2 0;
    witness =
      { h1 = []; op_p = Spec.inc_op; wrt1 = Spec.read_op; ext = []; wrt2 = Spec.read_op };
    attack = [| [ Spec.inc_op ]; [ Spec.read_op; Spec.read_op ] |];
  }

(* Lemma 6: cas_p(v0,v1) perturbs cas_q(v0,v1), and again after
   H2 = cas_p(v0,v1) ∘ cas_q(v0,v1) ∘ cas_q(v1,v0). *)
let cas =
  {
    obj_name = "cas";
    spec = Spec.cas_cell v0;
    witness =
      {
        h1 = [];
        op_p = Spec.cas_op v0 v1;
        wrt1 = Spec.cas_op v0 v1;
        ext = [ Spec.cas_op v1 v0 ];
        wrt2 = Spec.cas_op v0 v1;
      };
    attack =
      [|
        [ Spec.cas_op v0 v1 ];
        [ Spec.cas_op v0 v1; Spec.cas_op v1 v0; Spec.cas_op v0 v1 ];
      |];
  }

(* Lemma 7: faa_p(1) perturbs read_q, empty extension. *)
let faa =
  {
    obj_name = "faa";
    spec = Spec.faa_cell 0;
    witness =
      { h1 = []; op_p = Spec.faa_op 1; wrt1 = Spec.read_op; ext = []; wrt2 = Spec.read_op };
    attack = [| [ Spec.faa_op 1 ]; [ Spec.read_op; Spec.read_op ] |];
  }

(* Lemma 8: after H1 = enq_p(v0) ∘ enq_p(v1), deq_p perturbs deq_q, and
   again after the extension enq_q(v0) ∘ enq_q(v1). *)
let queue =
  {
    obj_name = "queue";
    spec = Spec.fifo_queue ();
    witness =
      {
        h1 = [ Spec.enq_op v0; Spec.enq_op v1 ];
        op_p = Spec.deq_op;
        wrt1 = Spec.deq_op;
        ext = [ Spec.enq_op v0; Spec.enq_op v1 ];
        wrt2 = Spec.deq_op;
      };
    attack =
      [|
        [ Spec.enq_op v0; Spec.enq_op v1; Spec.deq_op ];
        [ Spec.deq_op; Spec.enq_op v0; Spec.enq_op v1; Spec.deq_op ];
      |];
  }

(* Section 5 lists swap among the common doubly-perturbing objects:
   swap_p(v1) perturbs read_q after the empty history, and again after the
   extension swap_q(v0). *)
let swap =
  {
    obj_name = "swap";
    spec = Spec.swap_cell v0;
    witness =
      {
        h1 = [];
        op_p = Spec.swap_op v1;
        wrt1 = Spec.read_op;
        ext = [ Spec.swap_op v0 ];
        wrt2 = Spec.read_op;
      };
    attack =
      [| [ Spec.swap_op v1 ]; [ Spec.read_op; Spec.swap_op v0; Spec.read_op ] |];
  }

(* The resettable TAS of Section 5's class: tas_p perturbs tas_q after the
   empty history, and again after the extension reset_q. *)
let tas =
  {
    obj_name = "tas";
    spec = Spec.resettable_tas ();
    witness =
      {
        h1 = [];
        op_p = Spec.tas_op;
        wrt1 = Spec.tas_op;
        ext = [ Spec.reset_op ];
        wrt2 = Spec.tas_op;
      };
    attack =
      [| [ Spec.tas_op ]; [ Spec.tas_op; Spec.reset_op; Spec.tas_op ] |];
  }

let all = [ register; counter; bounded_counter; cas; faa; queue; swap; tas ]

let max_register_has_no_witness ~alphabet ~max_h1 ~max_ext =
  Perturbing.search (Spec.max_register 0) ~alphabet ~max_h1 ~max_ext = None
