open Sched

type report = {
  policy : Session.policy;
  executions : int;
  violations : int;
  sample : Modelcheck.Explore.violation option;
}

let attack ~mk ~workloads ?(switch_budget = 3) ?(max_steps = 2_000) () =
  List.map
    (fun policy ->
      let cfg =
        {
          Modelcheck.Explore.default_config with
          switch_budget;
          crash_budget = 1;
          max_steps;
          policy;
        }
      in
      let out = Modelcheck.Explore.explore ~mk ~workloads cfg in
      {
        policy;
        executions = out.Modelcheck.Explore.executions;
        violations = out.Modelcheck.Explore.total_violations;
        sample =
          (match out.Modelcheck.Explore.violations with
          | v :: _ -> Some v
          | [] -> None);
      })
    [ Session.Retry; Session.Give_up ]

let survives reports = List.for_all (fun r -> r.violations = 0) reports
