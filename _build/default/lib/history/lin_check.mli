(** Durable-linearizability + detectability checker.

    Given a crash-history recorded by the driver and a sequential
    specification, the checker searches for a linearization that
    witnesses correctness in the paper's sense:

    - every operation that completed normally, and every crashed operation
      whose recovery returned a response, must be linearized exactly once,
      within its real-time interval, with exactly the observed response
      (durable linearizability + the success half of detectability);
    - every crashed operation whose recovery returned the [fail] verdict
      must {e not} be linearized at all (the failure half of
      detectability: "the operation was not linearized");
    - operations still pending when the history ends may be linearized or
      not, with any specification-consistent response.

    The search is a Wing–Gong style interleaving exploration with
    memoization on (set of linearized operations, set of discarded pending
    operations, abstract state).  It is exact, and exponential in the
    worst case, so histories fed to it should stay small (tens of
    operations) — which the test and experiment harnesses ensure. *)

type verdict =
  | Ok_linearizable of Spec.op list
      (** a witness linearization (operations in linearization order) *)
  | Violation of string  (** human-readable reason *)

val check : Spec.t -> Event.t list -> verdict

val is_ok : verdict -> bool

val check_exn : Spec.t -> Event.t list -> unit
(** Raises [Failure] with the violation message and the pretty-printed
    history on a violation; for tests. *)

val max_ops : int
(** Upper bound on operation instances per history (bitmask width). *)
