open Nvm

type op_outcome =
  | Completed of Value.t
  | Recovered of Value.t
  | Failed
  | Pending

type op_info = { uid : int; pid : int; op : Spec.op; outcome : op_outcome }

type stats = {
  invocations : int;
  completed : int;
  recovered : int;
  failed : int;
  pending : int;
  crashes : int;
}

let well_formed events =
  let seen = Hashtbl.create 32 in
  let outcome = Hashtbl.create 32 in
  let rec go = function
    | [] -> Ok ()
    | e :: rest -> (
        match (e : Event.t) with
        | Event.Crash -> go rest
        | Event.Inv { uid; _ } ->
            if Hashtbl.mem seen uid then
              Error (Printf.sprintf "duplicate invocation #%d" uid)
            else begin
              Hashtbl.add seen uid ();
              go rest
            end
        | Event.Ret { uid; _ } | Event.Rec_ret { uid; _ } | Event.Rec_fail { uid; _ }
          ->
            if not (Hashtbl.mem seen uid) then
              Error (Printf.sprintf "outcome for unknown operation #%d" uid)
            else if Hashtbl.mem outcome uid then
              Error (Printf.sprintf "two outcomes for #%d" uid)
            else begin
              Hashtbl.add outcome uid ();
              go rest
            end)
  in
  go events

let ops events =
  (match well_formed events with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Hist.ops: " ^ msg));
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun e ->
      match (e : Event.t) with
      | Event.Crash -> ()
      | Event.Inv { pid; uid; op } ->
          Hashtbl.replace tbl uid { uid; pid; op; outcome = Pending };
          order := uid :: !order
      | Event.Ret { uid; v; _ } ->
          let r = Hashtbl.find tbl uid in
          Hashtbl.replace tbl uid { r with outcome = Completed v }
      | Event.Rec_ret { uid; v; _ } ->
          let r = Hashtbl.find tbl uid in
          Hashtbl.replace tbl uid { r with outcome = Recovered v }
      | Event.Rec_fail { uid; _ } ->
          let r = Hashtbl.find tbl uid in
          Hashtbl.replace tbl uid { r with outcome = Failed })
    events;
  List.rev_map (Hashtbl.find tbl) !order

let by_pid events =
  let infos = ops events in
  let pids = List.sort_uniq compare (List.map (fun i -> i.pid) infos) in
  List.map (fun pid -> (pid, List.filter (fun i -> i.pid = pid) infos)) pids

let responses events =
  List.filter_map
    (fun e ->
      match (e : Event.t) with
      | Event.Ret { v; _ } | Event.Rec_ret { v; _ } -> Some v
      | Event.Inv _ | Event.Crash | Event.Rec_fail _ -> None)
    events

let stats events =
  let infos = ops events in
  let count p = List.length (List.filter p infos) in
  {
    invocations = List.length infos;
    completed = count (fun i -> match i.outcome with Completed _ -> true | _ -> false);
    recovered = count (fun i -> match i.outcome with Recovered _ -> true | _ -> false);
    failed = count (fun i -> i.outcome = Failed);
    pending = count (fun i -> i.outcome = Pending);
    crashes = Event.crashes events;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "%d invocations: %d completed, %d recovered, %d failed, %d pending; %d crashes"
    s.invocations s.completed s.recovered s.failed s.pending s.crashes

let project events ~pid =
  List.filter
    (fun e ->
      match (e : Event.t) with
      | Event.Crash -> true
      | Event.Inv { pid = p; _ }
      | Event.Ret { pid = p; _ }
      | Event.Rec_ret { pid = p; _ }
      | Event.Rec_fail { pid = p; _ } ->
          p = pid)
    events
