open Nvm

(** Sequential specifications of the objects studied by the paper.

    A specification is a deterministic transition function over an
    abstract state encoded as a {!Value.t}: it is what the
    durable-linearizability checker replays candidate linearizations
    against, and what the doubly-perturbing analysis (Section 5 and the
    appendix) explores. *)

type op = { name : string; args : Value.t array }
(** An abstract operation instance, e.g. [{name = "cas"; args = [|Int 0;
    Int 1|]}].  Per Theorem 2's hypothesis, arguments contain only the
    data specified by the abstract object — auxiliary state, when an
    implementation needs it, travels through announcement structures, not
    through [args]. *)

val op : string -> Value.t list -> op
val equal_op : op -> op -> bool
val pp_op : Format.formatter -> op -> unit

type t = {
  obj_name : string;
  init : Value.t;  (** initial abstract state *)
  step : Value.t -> op -> Value.t * Value.t;
      (** [step state op] is [(state', response)].  Raises
          [Invalid_argument] on an operation the object does not
          support. *)
}

val run : t -> op list -> Value.t list
(** Responses of a sequential history run from the initial state. *)

val final_state : t -> op list -> Value.t
(** Abstract state after a sequential history. *)

(** {1 The paper's object menagerie} *)

val ack : Value.t
(** Response of operations that return no data ("ack" in the paper). *)

val register : Value.t -> t
(** Read/write register (Section 3).  Ops: [read], [write v]. *)

val cas_cell : Value.t -> t
(** CAS object (Section 4).  Ops: [read], [cas old new] returning
    [Bool]. *)

val counter : int -> t
(** Counter (Lemma 5).  Ops: [read], [inc] returning [ack]. *)

val bounded_counter : lo:int -> hi:int -> int -> t
(** Bounded counter over [{lo..hi}] (appendix: doubly-perturbing but not
    perturbable).  [inc] saturates at [hi]. *)

val faa_cell : int -> t
(** Fetch-and-add (Lemma 7).  Ops: [read], [faa d] returning the old
    value. *)

val max_register : int -> t
(** Max register (Lemma 4 / Algorithm 3).  Ops: [read], [write_max v]. *)

val resettable_tas : unit -> t
(** Resettable test-and-set (Section 5's object class; also the subject
    of Attiya et al.'s unbounded-space result the introduction cites).
    Ops: [read], [tas] returning the {e previous} flag, [reset]. *)

val swap_cell : Value.t -> t
(** Swap object (listed among the common perturbable/doubly-perturbing
    objects in Section 5).  Ops: [read], [swap v] returning the previous
    value. *)

val fifo_queue : unit -> t
(** FIFO queue (Lemma 8).  Ops: [enq v] returning [ack], [deq] returning
    the head or [Str "empty"] when the queue is empty ([Bot] is reserved
    for "response unset"). *)

(** {1 Operation constructors} *)

val read_op : op
val tas_op : op
val reset_op : op
val swap_op : Value.t -> op
val write_op : Value.t -> op
val cas_op : Value.t -> Value.t -> op
val inc_op : op
val faa_op : int -> op
val write_max_op : int -> op
val enq_op : Value.t -> op
val deq_op : op
