open Nvm

type op = { name : string; args : Value.t array }

let op name args = { name; args = Array.of_list args }

let equal_op a b =
  String.equal a.name b.name
  && Array.length a.args = Array.length b.args
  && (let ok = ref true in
      Array.iteri
        (fun i x -> if not (Value.equal x b.args.(i)) then ok := false)
        a.args;
      !ok)

let pp_op fmt o =
  if Array.length o.args = 0 then Format.fprintf fmt "%s" o.name
  else
    Format.fprintf fmt "%s(%a)" o.name
      (Format.pp_print_array
         ~pp_sep:(fun f () -> Format.fprintf f ", ")
         Value.pp)
      o.args

type t = {
  obj_name : string;
  init : Value.t;
  step : Value.t -> op -> Value.t * Value.t;
}

let run spec ops =
  let _, responses =
    List.fold_left
      (fun (state, acc) o ->
        let state', r = spec.step state o in
        (state', r :: acc))
      (spec.init, []) ops
  in
  List.rev responses

let final_state spec ops =
  List.fold_left (fun state o -> fst (spec.step state o)) spec.init ops

let ack = Value.Str "ack"

let bad_op obj o =
  invalid_arg
    (Format.asprintf "Spec(%s): unsupported operation %a" obj pp_op o)

let register v0 =
  {
    obj_name = "register";
    init = v0;
    step =
      (fun state o ->
        match (o.name, o.args) with
        | "read", [||] -> (state, state)
        | "write", [| v |] -> (v, ack)
        | _ -> bad_op "register" o);
  }

let cas_cell v0 =
  {
    obj_name = "cas";
    init = v0;
    step =
      (fun state o ->
        match (o.name, o.args) with
        | "read", [||] -> (state, state)
        | "cas", [| old_v; new_v |] ->
            if Value.equal state old_v then (new_v, Value.Bool true)
            else (state, Value.Bool false)
        | _ -> bad_op "cas" o);
  }

let counter v0 =
  {
    obj_name = "counter";
    init = Value.Int v0;
    step =
      (fun state o ->
        match (o.name, o.args) with
        | "read", [||] -> (state, state)
        | "inc", [||] -> (Value.Int (Value.to_int state + 1), ack)
        | _ -> bad_op "counter" o);
  }

let bounded_counter ~lo ~hi v0 =
  if not (lo <= v0 && v0 <= hi) then invalid_arg "Spec.bounded_counter";
  {
    obj_name = "bounded_counter";
    init = Value.Int v0;
    step =
      (fun state o ->
        match (o.name, o.args) with
        | "read", [||] -> (state, state)
        | "inc", [||] -> (Value.Int (min hi (Value.to_int state + 1)), ack)
        | _ -> bad_op "bounded_counter" o);
  }

let faa_cell v0 =
  {
    obj_name = "faa";
    init = Value.Int v0;
    step =
      (fun state o ->
        match (o.name, o.args) with
        | "read", [||] -> (state, state)
        | "faa", [| Value.Int d |] -> (Value.Int (Value.to_int state + d), state)
        | _ -> bad_op "faa" o);
  }

let max_register v0 =
  {
    obj_name = "max_register";
    init = Value.Int v0;
    step =
      (fun state o ->
        match (o.name, o.args) with
        | "read", [||] -> (state, state)
        | "write_max", [| Value.Int v |] ->
            (Value.Int (max (Value.to_int state) v), ack)
        | _ -> bad_op "max_register" o);
  }

let resettable_tas () =
  {
    obj_name = "tas";
    init = Value.Bool false;
    step =
      (fun state o ->
        match (o.name, o.args) with
        | "read", [||] -> (state, state)
        | "tas", [||] -> (Value.Bool true, state)
        | "reset", [||] -> (Value.Bool false, ack)
        | _ -> bad_op "tas" o);
  }

let swap_cell v0 =
  {
    obj_name = "swap";
    init = v0;
    step =
      (fun state o ->
        match (o.name, o.args) with
        | "read", [||] -> (state, state)
        | "swap", [| v |] -> (v, state)
        | _ -> bad_op "swap" o);
  }

let fifo_queue () =
  {
    obj_name = "queue";
    init = Value.Tup [||];
    step =
      (fun state o ->
        let elems = Value.to_tup state in
        match (o.name, o.args) with
        | "enq", [| v |] -> (Value.Tup (Array.append elems [| v |]), ack)
        | "deq", [||] ->
            if Array.length elems = 0 then (state, Value.Str "empty")
            else
              ( Value.Tup (Array.sub elems 1 (Array.length elems - 1)),
                elems.(0) )
        | _ -> bad_op "queue" o);
  }

let read_op = op "read" []
let tas_op = op "tas" []
let reset_op = op "reset" []
let swap_op v = op "swap" [ v ]
let write_op v = op "write" [ v ]
let cas_op old_v new_v = op "cas" [ old_v; new_v ]
let inc_op = op "inc" []
let faa_op d = op "faa" [ Value.Int d ]
let write_max_op v = op "write_max" [ Value.Int v ]
let enq_op v = op "enq" [ v ]
let deq_op = op "deq" []
