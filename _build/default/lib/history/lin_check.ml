open Nvm

type verdict = Ok_linearizable of Spec.op list | Violation of string

let is_ok = function Ok_linearizable _ -> true | Violation _ -> false

let max_ops = 62

(* What the history requires of one operation instance. *)
type kind =
  | Must of Value.t  (* must linearize with this response *)
  | Must_not  (* recovery said fail: must not linearize *)
  | May  (* pending at end of history: free choice *)

type op_record = {
  uid : int;
  op : Spec.op;
  inv : int;  (* history index of the invocation *)
  out : int option;  (* history index of the outcome event, if any *)
  kind : kind;
}

exception Malformed of string

let malformed fmt = Format.kasprintf (fun s -> raise (Malformed s)) fmt

let analyze events =
  let tbl : (int, op_record) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iteri
    (fun i event ->
      match (event : Event.t) with
      | Crash -> ()
      | Inv { uid; op; _ } ->
          if Hashtbl.mem tbl uid then malformed "duplicate invocation #%d" uid;
          Hashtbl.add tbl uid { uid; op; inv = i; out = None; kind = May };
          order := uid :: !order
      | Ret { uid; v; _ } | Rec_ret { uid; v; _ } -> (
          match Hashtbl.find_opt tbl uid with
          | None -> malformed "response for unknown operation #%d" uid
          | Some r ->
              if r.out <> None then malformed "two outcomes for #%d" uid;
              Hashtbl.replace tbl uid { r with out = Some i; kind = Must v })
      | Rec_fail { uid; _ } -> (
          match Hashtbl.find_opt tbl uid with
          | None -> malformed "fail verdict for unknown operation #%d" uid
          | Some r ->
              if r.out <> None then malformed "two outcomes for #%d" uid;
              Hashtbl.replace tbl uid { r with out = Some i; kind = Must_not }))
    events;
  List.rev_map (Hashtbl.find tbl) !order

(* DFS node identity: which ops are linearized plus the abstract state.
   Ops with a [fail] verdict are excluded up-front (they may never
   linearize), and ops pending at the end of the history are simply never
   required — they have no outcome event, so they block nobody. *)
type node = { lin : int; state : Value.t }

let check spec events =
  match analyze events with
  | exception Malformed msg -> Violation ("malformed history: " ^ msg)
  | records ->
      let records = Array.of_list records in
      let n = Array.length records in
      if n > max_ops then
        Violation (Printf.sprintf "history too large (%d ops > %d)" n max_ops)
      else begin
        (* ops that must never linearize are discarded from the start *)
        let initially_discarded = ref 0 in
        Array.iteri
          (fun i r ->
            if r.kind = Must_not then
              initially_discarded := !initially_discarded lor (1 lsl i))
          records;
        let must_mask = ref 0 in
        Array.iteri
          (fun i r ->
            match r.kind with
            | Must _ -> must_mask := !must_mask lor (1 lsl i)
            | Must_not | May -> ())
          records;
        (* preds.(i): bitmask of ops whose outcome precedes i's invocation *)
        let preds = Array.make n 0 in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            match records.(j).out with
            | Some out_j when j <> i && out_j < records.(i).inv ->
                preds.(i) <- preds.(i) lor (1 lsl j)
            | Some _ | None -> ()
          done
        done;
        let excluded = !initially_discarded in
        let visited : (node, unit) Hashtbl.t = Hashtbl.create 4096 in
        let witness = ref [] in
        (* DFS: returns true iff all Must ops can be linearized from here *)
        let rec go lin state =
          if lin land !must_mask = !must_mask then true
          else
            let node = { lin; state } in
            if Hashtbl.mem visited node then false
            else begin
              Hashtbl.add visited node ();
              let settled = lin lor excluded in
              let found = ref false in
              let i = ref 0 in
              while (not !found) && !i < n do
                let bit = 1 lsl !i in
                (* candidate: unsettled, and every real-time predecessor is
                   settled (linearized or excluded) *)
                if settled land bit = 0 && preds.(!i) land lnot settled = 0
                then begin
                  let r = records.(!i) in
                  let state', resp = spec.Spec.step state r.op in
                  let resp_ok =
                    match r.kind with
                    | Must v -> Value.equal resp v
                    | May -> true
                    | Must_not -> assert false
                  in
                  if resp_ok && go (lin lor bit) state' then begin
                    witness := r.op :: !witness;
                    found := true
                  end
                end;
                incr i
              done;
              !found
            end
        in
        if go 0 spec.Spec.init then Ok_linearizable !witness
        else
          Violation
            "no linearization satisfies durable linearizability + \
             detectability"
      end

let check_exn spec events =
  match check spec events with
  | Ok_linearizable _ -> ()
  | Violation msg ->
      failwith
        (Format.asprintf "%s@.history:@.%a" msg Event.pp_history events)
