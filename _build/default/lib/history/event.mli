open Nvm

(** Events of a concurrent execution history.

    The driver appends one event per invocation, response, system-wide
    crash, and recovery outcome.  Event order in the list is the
    real-time order of the execution.  Every operation {e instance}
    carries a unique id [uid], so an abstract operation retried after a
    [fail] verdict appears as a fresh instance. *)

type t =
  | Inv of { pid : int; uid : int; op : Spec.op }
      (** process [pid] invokes an operation *)
  | Ret of { pid : int; uid : int; v : Value.t }
      (** normal completion with response [v] *)
  | Crash  (** system-wide crash *)
  | Rec_ret of { pid : int; uid : int; v : Value.t }
      (** recovery inferred the crashed operation was linearized and
          obtained its response [v] (detectability, success case) *)
  | Rec_fail of { pid : int; uid : int }
      (** recovery inferred the crashed operation was {e not} linearized
          (the paper's [fail] verdict) *)

val pp : Format.formatter -> t -> unit
val pp_history : Format.formatter -> t list -> unit

val uid_of : t -> int option
(** The operation instance an event belongs to ([None] for [Crash]). *)

val crashes : t list -> int
(** Number of crash events in a history. *)
