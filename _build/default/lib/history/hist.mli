open Nvm

(** History utilities: projections, statistics and well-formedness.

    A history is the event list a {!Sched.Driver} run records.  These
    helpers answer the questions tests, experiments and the CLI keep
    asking of one — without re-walking the list by hand each time. *)

type op_outcome =
  | Completed of Value.t  (** normal response *)
  | Recovered of Value.t  (** response obtained by recovery *)
  | Failed  (** recovery's [fail] verdict: certainly not linearized *)
  | Pending  (** no outcome (still running, or lost to a crash) *)

type op_info = {
  uid : int;
  pid : int;
  op : Spec.op;
  outcome : op_outcome;
}

val ops : Event.t list -> op_info list
(** One record per operation instance, in invocation order.  Raises
    [Invalid_argument] on a malformed history (see {!well_formed}). *)

val by_pid : Event.t list -> (int * op_info list) list
(** Operations grouped by process, pids ascending. *)

val responses : Event.t list -> Value.t list
(** Responses of completed and recovered operations, in outcome order. *)

type stats = {
  invocations : int;
  completed : int;
  recovered : int;
  failed : int;
  pending : int;
  crashes : int;
}

val stats : Event.t list -> stats
val pp_stats : Format.formatter -> stats -> unit

val well_formed : Event.t list -> (unit, string) result
(** Structural validity: unique invocation uids, outcomes only for known
    invocations, at most one outcome per instance.  The checker enforces
    the same rules; this exposes them without running a linearizability
    search. *)

val project : Event.t list -> pid:int -> Event.t list
(** The sub-history of one process (crashes included — they are global
    events every process observes). *)
