open Nvm

type t =
  | Inv of { pid : int; uid : int; op : Spec.op }
  | Ret of { pid : int; uid : int; v : Value.t }
  | Crash
  | Rec_ret of { pid : int; uid : int; v : Value.t }
  | Rec_fail of { pid : int; uid : int }

let pp fmt = function
  | Inv { pid; uid; op } ->
      Format.fprintf fmt "p%d inv  #%d %a" pid uid Spec.pp_op op
  | Ret { pid; uid; v } ->
      Format.fprintf fmt "p%d ret  #%d -> %a" pid uid Value.pp v
  | Crash -> Format.fprintf fmt "== CRASH =="
  | Rec_ret { pid; uid; v } ->
      Format.fprintf fmt "p%d rec  #%d -> %a" pid uid Value.pp v
  | Rec_fail { pid; uid } -> Format.fprintf fmt "p%d rec  #%d -> fail" pid uid

let pp_history fmt events =
  List.iteri (fun i e -> Format.fprintf fmt "%3d  %a@." i pp e) events

let uid_of = function
  | Inv { uid; _ } | Ret { uid; _ } | Rec_ret { uid; _ } | Rec_fail { uid; _ }
    ->
      Some uid
  | Crash -> None

let crashes events =
  List.fold_left (fun n e -> match e with Crash -> n + 1 | _ -> n) 0 events
