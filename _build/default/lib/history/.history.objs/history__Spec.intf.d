lib/history/spec.mli: Format Nvm Value
