lib/history/lin_check.ml: Array Event Format Hashtbl List Nvm Printf Spec Value
