lib/history/hist.mli: Event Format Nvm Spec Value
