lib/history/spec.ml: Array Format List Nvm String Value
