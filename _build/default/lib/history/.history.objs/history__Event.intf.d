lib/history/event.mli: Format Nvm Spec Value
