lib/history/event.ml: Format List Nvm Spec Value
