lib/history/hist.ml: Event Format Hashtbl List Nvm Printf Spec Value
