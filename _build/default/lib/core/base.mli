open Nvm
open Runtime
open History

(** Shared plumbing for the detectable object implementations.

    A {!ctx} bundles the machine, the process count, the per-process
    announcement structures, and the persistency mode.  The memory helpers
    ({!rd}, {!wr}, {!casl}, {!faal}) apply the Section 6 syntactic
    transformation when [persist] is set: every shared-memory access is
    followed by an explicit persist of the touched line, which is what
    makes the algorithms correct in the shared-cache model. *)

type ctx = {
  machine : Machine.t;
  n : int;  (** number of processes *)
  persist : bool;  (** insert persist instructions (shared-cache model) *)
  ann : Ann.t array;  (** announcement structure of each process *)
}

val make_ctx : ?persist:bool -> Machine.t -> n:int -> ctx

(** {1 Persist-aware primitive steps (fiber context)} *)

val rd : ctx -> Loc.t -> Value.t
val wr : ctx -> Loc.t -> Value.t -> unit
val casl : ctx -> Loc.t -> Value.t -> Value.t -> bool
val faal : ctx -> Loc.t -> int -> int

(** {1 Announcement protocol helpers} *)

val std_announce : ctx -> pid:int -> Spec.op -> unit
(** Caller-side announcement: [resp := ⊥], [cp := 0], then the committing
    [op := (name, args)] write, all persist-aware. *)

val announce_with :
  ctx -> pid:int -> extra:(unit -> unit) -> Spec.op -> unit
(** Like {!std_announce}, but runs [extra] (fiber context) just before the
    committing [op] write — for objects that must reset additional
    per-operation auxiliary cells (a crash can strike between any two of
    these writes, so everything an operation's recovery consults must be
    reset {e before} the announcement commits). *)

val std_clear : ctx -> pid:int -> unit
val std_pending : ctx -> pid:int -> Spec.op option

val set_resp : ctx -> pid:int -> Value.t -> unit
val get_resp : ctx -> pid:int -> Value.t
val set_cp : ctx -> pid:int -> int -> unit
val get_cp : ctx -> pid:int -> int

val bad_op : string -> Spec.op -> 'a
(** Raise [Invalid_argument] for an operation the object does not
    implement (always a harness bug). *)
