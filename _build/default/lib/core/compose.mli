open History
open Sched

(** Composition of detectable objects (the paper's Section 6 makes the
    point that detectability — unlike bare durable linearizability — is
    what makes recoverable operations composable: a client that invokes
    several recoverable objects can, after a crash, resolve each in-flight
    operation independently).

    [combine] builds one object out of several named components.  An
    operation on the composite is a component operation with the
    component's name prefixed ("acct/cas", "log/enq"); announce, invoke,
    recover and clear route to the owning component, each of which keeps
    its own announcement structure.  Recovery after a crash therefore
    resolves exactly the component operation that was in flight — the
    composability detectability buys.

    The composite's sequential specification is the product of the
    component specifications, so the standard checker validates composite
    histories without modification. *)

val lift : string -> Spec.op -> Spec.op
(** [lift name op] prefixes [op] with the component name. *)

val product_spec : (string * Spec.t) list -> Spec.t
(** Product specification: the abstract state is the tuple of component
    states, operations are routed by prefix. *)

val combine : (string * Obj_inst.t) list -> Obj_inst.t
(** [combine components] — names must be distinct and non-empty, and all
    components must live in the same machine.  At most one component
    operation per process is in flight at a time (the composite presents
    one sequential interface per process, like any object). *)
