open Nvm
open Runtime

(** Algorithm 2: the bounded-space wait-free detectable CAS object.

    State: one shared variable [C] (supporting read and CAS primitives)
    holding the pair [(value, vec)] where [vec] is an N-bit vector with
    one flip bit per process, plus a private [RD_p] bit per process.

    A successful CAS by [p] atomically installs the new value {e and}
    flips [vec[p]]; no one else ever touches [vec[p]], so upon recovery
    [p] compares [C]'s current [vec[p]] with the flipped value it
    persisted before attempting the CAS (line 33): equal means the CAS
    succeeded (and will stay detectable until [p]'s next successful CAS),
    different means it either failed or never executed — in both cases
    the operation was not linearized and recovery may answer [fail].

    Space: Θ(N) shared bits beyond the value — asymptotically optimal by
    Theorem 1 (every obstruction-free detectable CAS needs ≥ N−1 shared
    bits; see experiment E1/E2).

    {b Deviation from the paper (identity CAS).}  Our checker found that
    the algorithm as published is not linearizable when a caller issues
    an {e identity} CAS ([old = new]): the primitive CAS of line 35
    compares the whole [(value, vec)] pair, so a concurrent successful
    CAS that only flips its own vector bit fails an identity CAS whose
    abstract precondition held throughout — yet a failed [cas(v,v)] can
    only linearize at a point where the value differs from [v].  The
    paper's Lemma 2 implicitly assumes [old ≠ new] ("the value of C after
    it must be other than old").  Since an identity CAS has no abstract
    effect, this implementation executes it read-only (never touching
    [vec]), which restores linearizability for the full operation domain;
    all other operations follow the paper line by line. *)

(** {1 Nestable core}

    The core exposes Algorithm 2 with caller-supplied announcement cells,
    so a higher-level recoverable operation (e.g. the counter/FAA
    transform of {!Transform}) can run {e per-attempt} detectable CASes
    with its own sub-announcement, independent of the process's top-level
    [Ann_p]. *)

type cells = { resp : Loc.t; cp : Loc.t; rdp : Loc.t }
(** Per-process announcement cells for one CAS attempt: the persisted
    response, the checkpoint, and the [RD_p] flip bit. *)

val alloc_cells : Machine.t -> pid:int -> tag:string -> cells
(** Fresh private cells for [pid], names prefixed with [tag]. *)

type core

val alloc_core :
  Base.ctx -> name:string -> init:Value.t -> cells array -> core
(** [alloc_core ctx ~name ~init cells] allocates [C] with value [init]
    and the all-zero flip vector; [cells.(p)] are [p]'s announcement
    cells. *)

val core_loc : core -> Loc.t
(** The shared variable [C] (for space accounting). *)

val reset_cells : core -> pid:int -> unit
(** Fiber context: [resp := ⊥], [cp := 0] — the caller-side announcement
    of one CAS attempt. *)

val cas_core : core -> pid:int -> old_v:Value.t -> new_v:Value.t -> bool
(** Lines 28–37.  Requires [reset_cells] (or a fresh top-level
    announcement) beforehand. *)

val recover_core : core -> pid:int -> Value.t
(** Lines 38–46: [Bool true], [Bool false], or {!Sched.Obj_inst.fail}. *)

val read_core : core -> pid:int -> Value.t
(** Read [C]'s value component (one primitive read, no announcement). *)

(** {1 The detectable CAS object} *)

type t

val create : ?persist:bool -> Machine.t -> n:int -> init:Value.t -> t
val instance : t -> Sched.Obj_inst.t
(** Operations: [read], [cas old new]. *)

val shared_locs : t -> Loc.t list
