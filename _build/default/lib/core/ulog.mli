open Nvm
open Runtime
open History

(** A persistent log-based universal construction (Section 6 discusses
    this family: Cohen et al.'s log-based construction and Berryhill et
    al.'s recoverable universal construction provide recoverability for
    {e any} object, at a logging cost, and — without extra help — no
    detectability).

    The object's state is an append-only NVM log of operations; an
    operation linearizes at the CAS that claims its log slot, and its
    response is computed deterministically by replaying the immutable
    prefix.  The construction is generic over any sequential
    specification.

    Two modes:
    - [`Durable]: log entries carry no identity.  Recovery sees a
      perfectly consistent object but answers
      {!Sched.Obj_inst.unknown} — exactly the paper's observation that a
      universal construction lets a process recover {e state} but "can
      not infer whether its last invoked operation was linearized".
    - [`Detectable]: the announcement assigns each invocation a unique
      (pid, seq) tag — auxiliary state provided via NVM, as Theorem 2
      demands — and recovery scans the log for the tag: found means
      linearized (response recomputed by replay), absent means certainly
      not.

    Costs, measured by experiment E9/T1: space grows with the number of
    operations (the log is never truncated — the "inherent cost of
    remembering"), and each operation pays a replay linear in the log
    length.  The bounded-space Algorithms 1-2 are the paper's answer to
    precisely this. *)

type t

val create :
  ?persist:bool ->
  ?mode:[ `Durable | `Detectable ] ->
  Machine.t ->
  n:int ->
  capacity:int ->
  spec:Spec.t ->
  t
(** [capacity] bounds the total number of operations (log slots are
    pre-allocated).  Default mode: [`Detectable]. *)

val instance : t -> Sched.Obj_inst.t
(** Accepts every operation of [spec] (it is appended and replayed). *)

val log_length : Machine.t -> t -> int
(** Driver-side: entries appended so far (the space that grows). *)

val shared_locs : t -> Loc.t list
