open Nvm
open Runtime

(** A detectable durable FIFO queue, in the style of Friedman, Herlihy,
    Marathe and Petrank's durable lock-free queue (the paper's reference
    [9]), adapted to the simulated NVM machine.

    Representation: a write-once linked list over a pre-allocated node
    pool.  [head] points at the last consumed (dummy) node; [tail] is a
    lagging hint for appenders.  Node fields [next] (⊥ → node id) and
    [deq_id] (⊥ → consumer pid) are written exactly once, and node ids
    are never recycled, so there is no ABA anywhere.

    Detectability:
    - {e enqueue}: before its link CAS, process [p] persists the
      prospective predecessor in [att_p] and its own node id in
      [node_p]; since [next] fields are write-once, recovery concludes
      the operation was linearized iff [pool[att_p].next = node_p];
    - {e dequeue}: a consumer claims a node by CASing its [deq_id] from ⊥
      to its pid, having first persisted the candidate node in [datt_p];
      recovery concludes success iff [pool[datt_p].deq_id = p] and then
      re-reads the claimed value;
    - the per-operation cells [node_p], [att_p], [datt_p] are invalidated
      inside the announcement, before it commits.

    Both operations are lock-free (they help advance [head]/[tail]).
    The pool bounds the number of enqueues of one run — a harness
    parameter, not a property of the algorithm. *)

type t

val create : ?persist:bool -> Machine.t -> n:int -> capacity:int -> t
(** [capacity] is the maximum number of enqueues the run may perform
    (nodes are never recycled). *)

val instance : t -> Sched.Obj_inst.t
(** Operations: [enq v], [deq] (returns [Str "empty"] on an empty
    queue). *)

val shared_locs : t -> Loc.t list
