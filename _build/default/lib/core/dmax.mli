open Nvm
open Runtime

(** Algorithm 3: a detectable max register that needs {e no} auxiliary
    state.

    The max register is the paper's counterpoint to Theorem 2: it is
    perturbable but {e not} doubly-perturbing (Lemma 4), and indeed its
    operations can recover by simply re-invoking themselves — neither the
    operation nor its recovery reads any state written outside the
    operation (no checkpoint, no persisted response, no operation tags).

    State: a shared integer array [MR[N]]; [WRITE-MAX(v)] raises [MR[p]]
    to [v] if below it (idempotent and monotone, which is exactly why
    re-invocation is safe); [READ] repeatedly collects [MR] until two
    consecutive collects agree (a double collect) and returns the maximum.
    [READ] is obstruction-free (a solo run terminates after two passes);
    [WRITE-MAX] is wait-free.

    The announcement structure is still {e written} by the caller — the
    system needs to know which recovery function to dispatch after a
    crash — but, unlike Algorithms 1 and 2, no operation or recovery code
    here ever {e reads} it: delete every [Ann] write except the dispatch
    tag and the algorithm is untouched. *)

type t

val create : ?persist:bool -> Machine.t -> n:int -> init:int -> t
val instance : t -> Sched.Obj_inst.t
(** Operations: [read], [write_max v]. *)

val shared_locs : t -> Loc.t list
