open Nvm
open Runtime

(** A lock-based detectable counter: the mutual-exclusion route to
    detectability, for contrast with the lock-free capsules of
    {!Transform}.

    The counter's state is deliberately {e torn-prone}: two NVM cells
    [a] and [b] that an increment must update one after the other.  The
    recoverable lock ({!Rlock}) makes the two-step update safe against
    interference, and a small amount of per-process recovery data makes
    it detectable against crashes:

    - before its first update, the increment persists the value it read
      ([old_p := a]), then performs [a := old+1], [b := old+1], persists
      its response, and only then releases;
    - recovery with the persisted response returns it; recovery while
      {e holding the lock} finishes the critical section exactly once
      (if [a] still equals [old_p] the update never started — redo it;
      otherwise it started — ensure [b] catches up) and releases;
    - recovery without the lock and without a response means the
      operation never acquired, hence never took effect: [fail].

    Progress is blocking (deadlock-free, not wait-free) — the trade the
    lock-based construction makes relative to Algorithms 1-2. *)

type t

val create : ?persist:bool -> Machine.t -> n:int -> init:int -> t
val instance : t -> Sched.Obj_inst.t
(** Operations: [read], [inc]. *)

val shared_locs : t -> Loc.t list
