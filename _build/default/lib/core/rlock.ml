open Nvm
open Runtime

type t = { owner : Loc.t; persist : bool }

let create ?(persist = false) machine =
  { owner = Machine.alloc_shared machine "lock.owner" Value.Bot; persist }

let rec acquire t ~pid =
  let won = Fiber.cas t.owner Value.Bot (Value.Int pid) in
  if t.persist then Fiber.persist t.owner;
  if won then ()
  else begin
    Fiber.yield ();
    acquire t ~pid
  end

let release t ~pid =
  (* the owner writes ⊥; a single atomic store, so ownership is never
     ambiguous across a crash *)
  ignore pid;
  Fiber.write t.owner Value.Bot;
  if t.persist then Fiber.persist t.owner

let holds machine t ~pid =
  Value.equal (Machine.peek machine t.owner) (Value.Int pid)

let holds_f t ~pid = Value.equal (Fiber.read t.owner) (Value.Int pid)

let owner_loc t = t.owner
