(** Nesting-safe recoverable linearizability by construction (Section 6).

    NRL (Attiya, Ben-Baruch, Hendler 2018) strengthens detectability: the
    recovery function must {e complete} the crashed operation and persist
    its response, never answering [fail].  The paper observes that any
    implementation satisfying durable linearizability + detectability
    converts to NRL by having the recovery re-invoke the operation instead
    of returning [fail] — which is exactly this wrapper.

    The wrapped recovery first runs the detectable recovery; on [fail]
    (the operation provably never linearized) it re-announces and re-runs
    the operation from scratch.  A crash during the re-run lands back in
    the same recovery, so the construction tolerates repeated failures. *)

val wrap : Sched.Obj_inst.t -> Sched.Obj_inst.t
(** [wrap inst] never returns [fail] from recovery.  Histories of the
    wrapped object contain [Rec_ret] but no [Rec_fail] events. *)
