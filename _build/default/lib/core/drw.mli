open Nvm
open Runtime

(** Algorithm 1: the bounded-space wait-free detectable read/write object.

    State (all non-volatile):
    - shared register [R] holding a triple [(v, q, b)] — the current
      value, the id of the process that last wrote it, and the index of
      the toggle-bit array that write used;
    - shared boolean array [A[N][N][2]] of toggle bits: [A[i][q][b]] is
      the flag process [q] raises toward process [i] when it completes a
      write that used toggle array [b];
    - private [RD_p] (recovery data: the triple read from [R] plus the
      writer's own toggle index) and [T_p] (which toggle array the next
      write uses).

    The toggle bits solve the ABA problem that bounded space re-opens:
    upon recovery at checkpoint 1, if [R] looks unchanged, process [p]
    knows a write really happened in between iff the bit it lowered at
    line 2 has been raised again — because the only way [q] can re-write
    the same triple is to complete an intervening write with the other
    toggle index, which raises all of that index's bits.

    Space: [R] carries [O(log N)] bits beyond the value; [A] is [2N²]
    bits — bounded, in contrast to the unbounded tags of Attiya et al.
    (see {!Baselines.Urw} for that comparator). *)

type t

val create : ?persist:bool -> Machine.t -> n:int -> init:Value.t -> t
(** Allocate the object for [n] processes with initial value [init].
    [persist] enables the shared-cache-model instrumentation. *)

val instance : t -> Sched.Obj_inst.t
(** Driver-facing instance.  Operations: [read], [write v]. *)

val shared_locs : t -> Loc.t list
(** The object's shared locations ([R] and all of [A]), for space
    accounting. *)
