open Nvm
open Runtime

(** A recoverable mutual-exclusion lock (RME).

    The paper's introduction cites recoverable mutual exclusion (Golab &
    Ramaraju; Golab & Hendler) as the other setting where crash-recovery
    needs help from outside the operation.  This is the simplest correct
    RME lock on our machine: ownership lives in one NVM cell, acquired by
    CAS and released by a single store, so a crash can never leave the
    cell ambiguous — upon recovery, [holds] tells a process with
    certainty whether it still owns the critical section (the defining
    RME obligation), and the owner's recovery may re-enter to finish or
    undo its critical-section work.

    Progress: deadlock-free under any fair schedule (a spinning acquirer
    takes a [yield] step between attempts, so other processes keep
    running); not FCFS — starvation-free FCFS recoverable locks need
    substantially more machinery (tickets leak if a crash separates the
    fetch-and-add from persisting the ticket), which is exactly the
    subtlety the RME literature addresses. *)

type t

val create : ?persist:bool -> Machine.t -> t
(** [persist] inserts explicit persist instructions after the ownership
    CAS and the release store (the Section 6 shared-cache
    transformation). *)

val acquire : t -> pid:int -> unit
(** Fiber context: spin until the CAS from ⊥ to [pid] succeeds. *)

val release : t -> pid:int -> unit
(** Fiber context: a single store of ⊥.  Only the owner may call it. *)

val holds : Machine.t -> t -> pid:int -> bool
(** Driver/recovery context (no step): does [pid] own the lock?  Exact
    across crashes — the CAS and the release store are both atomic. *)

val holds_f : t -> pid:int -> bool
(** Fiber context (one read step): same question from inside a program. *)

val owner_loc : t -> Loc.t
(** The ownership cell (for space accounting: one cell of O(log N) bits). *)
