open Nvm
open Runtime
open History

(** Detectable read-modify-write objects built from the detectable CAS
    core — the capsule construction sketched in Section 6 (after
    Ben-David et al.): a lock-free read/CAS loop in which every CAS
    attempt is its own little recoverable operation with per-attempt
    announcement cells.

    On a crash, the outer recovery first consults the persisted top-level
    response; failing that, it checks whether the {e last committed
    attempt} (persisted in [att_p] before the attempt's CAS) was a
    successful detectable CAS — if so the operation was linearized at
    that CAS and its response is reconstructed from the attempt's [old]
    value; otherwise nothing took effect and recovery answers [fail].

    The resulting objects are detectable and lock-free (wait-free when
    run solo; a CAS loop can starve under contention). *)

type t

val rmw :
  ?persist:bool ->
  Machine.t ->
  n:int ->
  init:Value.t ->
  spec:Spec.t ->
  descr:string ->
  apply:(Spec.op -> Value.t -> (Value.t * Value.t) option) ->
  t
(** [rmw … ~apply] builds an object whose update operations are defined by
    [apply op current = Some (new_value, response)]; [apply op _ = None]
    marks [op] as a plain read (returns the current value). *)

val instance : t -> Sched.Obj_inst.t
val shared_locs : t -> Loc.t list

(** {1 Ready-made objects} *)

val counter : ?persist:bool -> Machine.t -> n:int -> init:int -> t
(** Detectable counter: [read], [inc]. *)

val faa : ?persist:bool -> Machine.t -> n:int -> init:int -> t
(** Detectable fetch-and-add: [read], [faa d] returning the old value. *)

val swap : ?persist:bool -> Machine.t -> n:int -> init:Value.t -> t
(** Detectable swap: [read], [swap v] returning the previous value. *)

val tas : ?persist:bool -> Machine.t -> n:int -> t
(** Detectable resettable test-and-set: [read], [tas] returning the
    previous flag, [reset].  Built from read/CAS base objects, it is
    bounded-space — the companion positive result to Attiya et al.'s
    proof (cited in the paper's introduction) that detectable TAS from
    {e non-recoverable TAS} base objects needs unbounded space.  A [tas]
    on a set flag and a [reset] of a clear flag are identity attempts and
    run read-only. *)

val bounded_counter :
  ?persist:bool -> Machine.t -> n:int -> lo:int -> hi:int -> init:int -> t
(** Detectable saturating counter over [{lo..hi}] — the appendix's
    doubly-perturbing-but-not-perturbable example, as a live object:
    [read], [inc] (saturates at [hi], where it becomes an identity
    attempt). *)
