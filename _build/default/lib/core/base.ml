open Nvm
open Runtime
open History

type ctx = {
  machine : Machine.t;
  n : int;
  persist : bool;
  ann : Ann.t array;
}

let make_ctx ?(persist = false) machine ~n =
  {
    machine;
    n;
    persist;
    ann = Array.init n (fun pid -> Ann.alloc machine ~pid);
  }

(* In the shared-cache model every access is followed by a persist of the
   touched line: writes so the new value is durable before anything
   depends on it, reads so an observed (possibly still volatile) value is
   durable before the reader acts on it. *)

let rd ctx loc =
  let v = Fiber.read loc in
  if ctx.persist then Fiber.persist loc;
  v

let wr ctx loc v =
  Fiber.write loc v;
  if ctx.persist then Fiber.persist loc

let casl ctx loc expected desired =
  let ok = Fiber.cas loc expected desired in
  if ctx.persist then Fiber.persist loc;
  ok

let faal ctx loc delta =
  let old = Fiber.faa loc delta in
  if ctx.persist then Fiber.persist loc;
  old

let encode_op (op : Spec.op) = Value.Tup op.Spec.args

let decode_op name args = { Spec.name; args = Value.to_tup args }

let announce_with ctx ~pid ~extra (op : Spec.op) =
  let a = ctx.ann.(pid) in
  wr ctx a.Ann.resp Value.Bot;
  wr ctx a.Ann.cp (Value.Int 0);
  extra ();
  (* the [op] write commits the announcement: everything the recovery of
     the new operation will consult must be reset before it *)
  wr ctx a.Ann.op (Value.pair (Value.Str op.Spec.name) (encode_op op))

let std_announce ctx ~pid op = announce_with ctx ~pid ~extra:(fun () -> ()) op

let std_clear ctx ~pid = wr ctx ctx.ann.(pid).Ann.op Value.Bot

let std_pending ctx ~pid =
  match Ann.pending ctx.machine ctx.ann.(pid) with
  | None -> None
  | Some (name, args) -> Some (decode_op name args)

let set_resp ctx ~pid v = wr ctx ctx.ann.(pid).Ann.resp v
let get_resp ctx ~pid = rd ctx ctx.ann.(pid).Ann.resp
let set_cp ctx ~pid k = wr ctx ctx.ann.(pid).Ann.cp (Value.Int k)
let get_cp ctx ~pid = Value.to_int (rd ctx ctx.ann.(pid).Ann.cp)

let bad_op obj op =
  invalid_arg (Format.asprintf "%s: unsupported operation %a" obj Spec.pp_op op)
