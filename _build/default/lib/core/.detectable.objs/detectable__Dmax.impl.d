lib/core/dmax.ml: Array Base History Loc Machine Nvm Printf Runtime Sched Spec Value
