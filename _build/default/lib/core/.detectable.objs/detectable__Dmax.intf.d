lib/core/dmax.mli: Loc Machine Nvm Runtime Sched
