lib/core/dqueue.mli: Loc Machine Nvm Runtime Sched
