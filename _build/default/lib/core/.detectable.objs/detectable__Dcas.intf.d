lib/core/dcas.mli: Base Loc Machine Nvm Runtime Sched Value
