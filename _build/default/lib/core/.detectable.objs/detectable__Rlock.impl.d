lib/core/rlock.ml: Fiber Loc Machine Nvm Runtime Value
