lib/core/transform.ml: Array Base Dcas History Loc Machine Nvm Runtime Sched Spec Value
