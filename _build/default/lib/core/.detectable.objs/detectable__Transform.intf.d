lib/core/transform.mli: History Loc Machine Nvm Runtime Sched Spec Value
