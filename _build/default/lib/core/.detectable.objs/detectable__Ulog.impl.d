lib/core/ulog.ml: Array Base History Loc Machine Nvm Printf Runtime Sched Spec Value
