lib/core/nrl.ml: Sched
