lib/core/compose.mli: History Obj_inst Sched Spec
