lib/core/nrl.mli: Sched
