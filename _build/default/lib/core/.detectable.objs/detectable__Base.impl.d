lib/core/base.ml: Ann Array Fiber Format History Machine Nvm Runtime Spec Value
