lib/core/dprotected.ml: Array Base History Loc Machine Nvm Rlock Runtime Sched Spec Value
