lib/core/rlock.mli: Loc Machine Nvm Runtime
