lib/core/ulog.mli: History Loc Machine Nvm Runtime Sched Spec
