lib/core/base.mli: Ann History Loc Machine Nvm Runtime Spec Value
