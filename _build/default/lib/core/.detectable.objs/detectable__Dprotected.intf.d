lib/core/dprotected.mli: Loc Machine Nvm Runtime Sched
