lib/core/drw.ml: Array Base History List Loc Machine Nvm Printf Runtime Sched Spec Value
