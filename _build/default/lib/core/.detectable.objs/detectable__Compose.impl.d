lib/core/compose.ml: Array Format History List Nvm Obj_inst Sched Spec String Value
