lib/core/drw.mli: Loc Machine Nvm Runtime Sched Value
