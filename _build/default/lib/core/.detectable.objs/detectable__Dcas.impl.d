lib/core/dcas.ml: Ann Array Base History Loc Machine Nvm Runtime Sched Spec Value
