let wrap (inst : Sched.Obj_inst.t) =
  let recover ~pid op =
    let r = inst.Sched.Obj_inst.recover ~pid op in
    if Sched.Obj_inst.is_fail r then begin
      (* the crashed invocation provably never linearized: re-announce and
         re-execute it.  A crash inside the re-execution simply re-enters
         this recovery on restart. *)
      inst.Sched.Obj_inst.announce ~pid op;
      inst.Sched.Obj_inst.invoke ~pid op
    end
    else r
  in
  {
    inst with
    Sched.Obj_inst.descr = "nrl(" ^ inst.Sched.Obj_inst.descr ^ ")";
    recover;
  }
