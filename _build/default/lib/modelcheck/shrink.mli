open History
open Sched

(** Counterexample minimisation (delta debugging over decision
    sequences).

    A violation found by {!Explore} comes with the decision sequence that
    produced it.  [minimise] greedily deletes decisions — steps and
    crashes — re-executing after each deletion and keeping any shorter
    sequence that still yields a checker violation, until no single
    deletion preserves the failure (1-minimality).

    Replay of a candidate sequence is {e tolerant}: a [Step pid] whose
    process is not currently runnable is skipped rather than an error
    (deleting an early decision shifts everything after it), and the
    run is completed after the prefix by round-robin so the history is
    closed.  The result therefore reproduces a violation under "prefix
    then free run", which is how the minimised schedule should be read. *)

type result = {
  decisions : Explore.decision list;  (** the minimised prefix *)
  history : Event.t list;
  msg : string;
  attempts : int;  (** replays performed while shrinking *)
}

val reproduces :
  mk:(unit -> Runtime.Machine.t * Obj_inst.t) ->
  workloads:Spec.op list array ->
  ?policy:Session.policy ->
  ?keep:(Nvm.Loc.t -> bool) ->
  ?max_steps:int ->
  Explore.decision list ->
  (Event.t list * string) option
(** Run "prefix then free run" for a decision sequence; [Some] iff the
    checker rejects the resulting history. *)

val minimise :
  mk:(unit -> Runtime.Machine.t * Obj_inst.t) ->
  workloads:Spec.op list array ->
  ?policy:Session.policy ->
  ?keep:(Nvm.Loc.t -> bool) ->
  ?max_steps:int ->
  Explore.decision list ->
  result option
(** [None] if the input sequence does not reproduce a violation under
    tolerant replay (shrinking needs a reproducible starting point). *)
