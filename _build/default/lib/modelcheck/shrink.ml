open History
open Sched

type result = {
  decisions : Explore.decision list;
  history : Event.t list;
  msg : string;
  attempts : int;
}

let run_candidate ~mk ~workloads ~policy ~keep ~max_steps decisions =
  let machine, inst = mk () in
  let session = Session.create ~policy machine inst ~workloads in
  ignore machine;
  (* tolerant prefix replay *)
  List.iter
    (fun d ->
      match (d : Explore.decision) with
      | Explore.Crash -> Session.crash session ~keep
      | Explore.Step pid ->
          if List.mem pid (Session.runnable session) then Session.step session pid)
    decisions;
  (* close the run: round-robin until done or budget *)
  let continue = ref true in
  while !continue do
    match Session.runnable session with
    | [] -> continue := false
    | pid :: _ ->
        if Session.steps session >= max_steps then continue := false
        else Session.step session pid
  done;
  let verdict =
    match Session.anomalies session with
    | a :: _ -> Lin_check.Violation ("driver anomaly: " ^ a)
    | [] -> Lin_check.check inst.Obj_inst.spec (Session.history session)
  in
  match verdict with
  | Lin_check.Ok_linearizable _ -> None
  | Lin_check.Violation msg -> Some (Session.history session, msg)

let reproduces ~mk ~workloads ?(policy = Session.Retry)
    ?(keep = fun (_ : Nvm.Loc.t) -> true) ?(max_steps = 5_000) decisions =
  run_candidate ~mk ~workloads ~policy ~keep ~max_steps decisions

let minimise ~mk ~workloads ?(policy = Session.Retry)
    ?(keep = fun (_ : Nvm.Loc.t) -> true) ?(max_steps = 5_000) decisions =
  let attempts = ref 0 in
  (* successive deletion passes can regenerate a candidate already tried
     (deleting i then j yields the same list as deleting j then i); the
     outcome is a pure function of the decision list, so memoise it and
     only count physical replays in [attempts] *)
  let seen = Hashtbl.create 64 in
  let try_candidate ds =
    match Hashtbl.find_opt seen ds with
    | Some cached -> cached
    | None ->
        incr attempts;
        let outcome = run_candidate ~mk ~workloads ~policy ~keep ~max_steps ds in
        Hashtbl.replace seen ds outcome;
        outcome
  in
  match try_candidate decisions with
  | None -> None
  | Some (history0, msg0) ->
      (* greedy single-deletion passes until no deletion preserves the
         violation (1-minimality) *)
      let rec shrink (cur, history, msg) =
        let n = List.length cur in
        let rec try_deletions k =
          if k >= n then None
          else
            let candidate = List.filteri (fun idx _ -> idx <> k) cur in
            match try_candidate candidate with
            | Some (h, m) -> Some (candidate, h, m)
            | None -> try_deletions (k + 1)
        in
        match try_deletions 0 with
        | Some shorter -> shrink shorter
        | None -> (cur, history, msg)
      in
      let ds, history, msg = shrink (decisions, history0, msg0) in
      Some { decisions = ds; history; msg; attempts = !attempts }
