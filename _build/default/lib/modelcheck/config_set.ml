open Nvm

type mode = Fingerprint | Exact

type t = {
  mode : mode;
  fps : (int * int, unit) Hashtbl.t;
  (* Exact mode only: full snapshots bucketed by fingerprint, so a
     fingerprint collision between non-memory-equivalent configurations
     is caught and counted instead of silently merging them. *)
  exact : (int * int, Mem.snapshot list) Hashtbl.t;
  mutable count : int;
  mutable collisions : int;
}

let create ?(mode = Fingerprint) () =
  {
    mode;
    fps = Hashtbl.create 1024;
    exact = Hashtbl.create (match mode with Exact -> 1024 | Fingerprint -> 1);
    count = 0;
    collisions = 0;
  }

let mode set = set.mode

let insert_fp set fp =
  if Hashtbl.mem set.fps fp then false
  else begin
    Hashtbl.replace set.fps fp ();
    set.count <- set.count + 1;
    true
  end

let insert_exact set fp snap =
  let bucket = try Hashtbl.find set.exact fp with Not_found -> [] in
  if List.exists (Mem.equal_shared snap) bucket then false
  else begin
    if bucket <> [] then set.collisions <- set.collisions + 1;
    Hashtbl.replace set.exact fp (snap :: bucket);
    Hashtbl.replace set.fps fp ();
    set.count <- set.count + 1;
    true
  end

let insert set snap =
  let fp = Mem.fingerprint_shared snap in
  match set.mode with
  | Fingerprint -> insert_fp set fp
  | Exact -> insert_exact set fp snap

let add set snap = ignore (insert set snap : bool)

let add_live set mem =
  match set.mode with
  | Fingerprint -> insert_fp set (Mem.live_fingerprint_shared mem)
  | Exact ->
      let snap = Mem.snapshot mem in
      insert_exact set (Mem.fingerprint_shared snap) snap

let cardinal set = set.count

let collisions set = set.collisions

let merge_into ~dst ~src =
  match (dst.mode, src.mode) with
  | Fingerprint, _ ->
      Hashtbl.iter (fun fp () -> ignore (insert_fp dst fp : bool)) src.fps
  | Exact, Exact ->
      Hashtbl.iter
        (fun fp bucket ->
          List.iter (fun snap -> ignore (insert_exact dst fp snap : bool)) bucket)
        src.exact
  | Exact, Fingerprint ->
      invalid_arg "Config_set.merge_into: cannot merge fingerprints into an exact set"
