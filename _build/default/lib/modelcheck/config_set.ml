open Nvm

type t = (int, Mem.snapshot list) Hashtbl.t

let create () : t = Hashtbl.create 1024

let add set snap =
  let h = Mem.hash_shared snap in
  let bucket = try Hashtbl.find set h with Not_found -> [] in
  if not (List.exists (Mem.equal_shared snap) bucket) then
    Hashtbl.replace set h (snap :: bucket)

let cardinal set = Hashtbl.fold (fun _ b acc -> acc + List.length b) set 0
