open Nvm
open History
open Sched

type decision = Step of int | Crash

let pp_decision fmt = function
  | Step pid -> Format.fprintf fmt "p%d" pid
  | Crash -> Format.fprintf fmt "CRASH"

type config = {
  switch_budget : int;
  crash_budget : int;
  max_steps : int;
  policy : Session.policy;
  keep : Loc.t -> bool;
  max_violations : int;
}

let default_config =
  {
    switch_budget = 3;
    crash_budget = 1;
    max_steps = 2_000;
    policy = Session.Retry;
    keep = (fun _ -> true);
    max_violations = 3;
  }

type violation = {
  decisions : decision list;
  history : Event.t list;
  msg : string;
}

type outcome = {
  executions : int;
  truncated : int;
  nodes : int;
  violations : violation list;
  total_violations : int;
  distinct_shared_configs : int;
}

type state = {
  cfg : config;
  mk : unit -> Runtime.Machine.t * Obj_inst.t;
  workloads : Spec.op list array;
  configs : Config_set.t;
  mutable executions : int;
  mutable truncated : int;
  mutable nodes : int;
  mutable violations : violation list;
  mutable n_violations : int;
}

(* [decisions] is kept newest-first during the DFS; replay applies it
   oldest-first. *)
let replay st decisions =
  let machine, inst = st.mk () in
  let session = Session.create ~policy:st.cfg.policy machine inst ~workloads:st.workloads in
  List.iter
    (function
      | Step pid -> Session.step session pid
      | Crash -> Session.crash session ~keep:st.cfg.keep)
    (List.rev decisions);
  (machine, inst, session)

let record_execution st ~decisions ~inst ~session ~truncated =
  if truncated then st.truncated <- st.truncated + 1
  else st.executions <- st.executions + 1;
  let verdict =
    match Session.anomalies session with
    | a :: _ -> Lin_check.Violation ("driver anomaly: " ^ a)
    | [] -> Lin_check.check inst.Obj_inst.spec (Session.history session)
  in
  match verdict with
  | Lin_check.Ok_linearizable _ -> ()
  | Lin_check.Violation msg ->
      st.n_violations <- st.n_violations + 1;
      if List.length st.violations < st.cfg.max_violations then
        st.violations <-
          { decisions; history = Session.history session; msg }
          :: st.violations

(* DFS over decision sequences: [cur] is the running process (switching
   away from it costs budget; after a crash any process is free),
   [switches]/[crashes] are budget spent so far. *)
let rec dfs st decisions cur switches crashes =
  st.nodes <- st.nodes + 1;
  let machine, inst, session = replay st decisions in
  Config_set.add st.configs (Mem.snapshot (Runtime.Machine.mem machine));
  let runnable = Session.runnable session in
  if runnable = [] then
    record_execution st ~decisions:(List.rev decisions) ~inst ~session
      ~truncated:false
  else if Session.steps session >= st.cfg.max_steps then
    record_execution st ~decisions:(List.rev decisions) ~inst ~session
      ~truncated:true
  else begin
    (* crash move *)
    if crashes < st.cfg.crash_budget then
      dfs st (Crash :: decisions) None switches (crashes + 1);
    (* step moves *)
    List.iter
      (fun pid ->
        (* only a preemption costs budget: switching away from a process
           that finished (or crashed) is free *)
        let cost =
          match cur with
          | None -> 0
          | Some c -> if c = pid || not (List.mem c runnable) then 0 else 1
        in
        if switches + cost <= st.cfg.switch_budget then
          dfs st (Step pid :: decisions) (Some pid) (switches + cost) crashes)
      runnable
  end

let explore ~mk ~workloads cfg =
  let st =
    {
      cfg;
      mk;
      workloads;
      configs = Config_set.create ();
      executions = 0;
      truncated = 0;
      nodes = 0;
      violations = [];
      n_violations = 0;
    }
  in
  dfs st [] None 0 0;
  {
    executions = st.executions;
    truncated = st.truncated;
    nodes = st.nodes;
    violations = List.rev st.violations;
    total_violations = st.n_violations;
    distinct_shared_configs = Config_set.cardinal st.configs;
  }

let crash_points ~mk ~workloads ~schedule ?(policy = Session.Retry)
    ?(keep = fun (_ : Loc.t) -> true) ?(max_steps = 2_000) () =
  let configs = Config_set.create () in
  let executions = ref 0 in
  let truncated = ref 0 in
  let violations = ref [] in
  (* [run_with_crash (Some k)] crashes just before global step k *)
  let run_with_crash crash_at =
    let machine, inst = mk () in
    let sched = schedule () in
    let session = Session.create ~policy machine inst ~workloads in
    let decisions = ref [] in
    let cut = ref false in
    let continue = ref true in
    while !continue do
      Config_set.add configs (Mem.snapshot (Runtime.Machine.mem machine));
      match Session.runnable session with
      | [] -> continue := false
      | runnable ->
          let step = Session.steps session in
          if step >= max_steps then begin
            cut := true;
            continue := false
          end
          else if crash_at = Some (step, Session.crashes session = 0) then begin
            (* fire exactly once *)
            decisions := Crash :: !decisions;
            Session.crash session ~keep
          end
          else begin
            let pid = sched.Schedule.choose ~runnable ~step in
            decisions := Step pid :: !decisions;
            Session.step session pid
          end
    done;
    if !cut then incr truncated else incr executions;
    let verdict =
      match Session.anomalies session with
      | a :: _ -> Lin_check.Violation ("driver anomaly: " ^ a)
      | [] -> Lin_check.check inst.Obj_inst.spec (Session.history session)
    in
    (match verdict with
    | Lin_check.Ok_linearizable _ -> ()
    | Lin_check.Violation msg ->
        violations :=
          {
            decisions = List.rev !decisions;
            history = Session.history session;
            msg;
          }
          :: !violations);
    Session.steps session
  in
  (* dry run without crash to learn the step count, checking it too *)
  let total = run_with_crash None in
  for k = 0 to total - 1 do
    ignore (run_with_crash (Some (k, true)))
  done;
  {
    executions = !executions;
    truncated = !truncated;
    nodes = !executions + !truncated;
    violations = List.rev !violations;
    total_violations = List.length !violations;
    distinct_shared_configs = Config_set.cardinal configs;
  }
