lib/modelcheck/config_set.ml: Hashtbl List Mem Nvm
