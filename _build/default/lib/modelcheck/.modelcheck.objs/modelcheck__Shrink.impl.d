lib/modelcheck/shrink.ml: Event Explore History Lin_check List Nvm Obj_inst Sched Session
