lib/modelcheck/shrink.ml: Event Explore Hashtbl History Lin_check List Nvm Obj_inst Sched Session
