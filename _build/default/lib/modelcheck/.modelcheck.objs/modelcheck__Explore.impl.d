lib/modelcheck/explore.ml: Array Config_set Domain Event Float Format Hashtbl History Lin_check List Loc Mem Nvm Obj_inst Runtime Sched Schedule Session Spec Unix
