lib/modelcheck/explore.ml: Config_set Event Format History Lin_check List Loc Mem Nvm Obj_inst Runtime Sched Schedule Session Spec
