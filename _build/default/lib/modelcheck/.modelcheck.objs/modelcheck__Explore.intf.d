lib/modelcheck/explore.mli: Event Format History Loc Nvm Obj_inst Runtime Sched Schedule Session Spec
