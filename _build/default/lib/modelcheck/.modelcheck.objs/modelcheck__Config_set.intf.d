lib/modelcheck/config_set.mli: Mem Nvm
