lib/modelcheck/shrink.mli: Event Explore History Nvm Obj_inst Runtime Sched Session Spec
