open Nvm

(** A set of shared-memory configurations up to the paper's
    memory-equivalence (equal contents of every shared variable; private
    NVM and local state ignored).

    Theorem 1 counts reachable pairwise non-memory-equivalent
    configurations; both the explorer and experiment E1 accumulate
    snapshots here. *)

type t

val create : unit -> t

val add : t -> Mem.snapshot -> unit
(** No-op if a memory-equivalent snapshot is already present. *)

val cardinal : t -> int
