open Nvm

(** A set of shared-memory configurations up to the paper's
    memory-equivalence (equal contents of every shared variable; private
    NVM and local state ignored).

    Theorem 1 counts reachable pairwise non-memory-equivalent
    configurations; both the explorer and experiment E1 accumulate
    configurations here.  The default representation stores only a
    two-word {!Mem.fingerprint_shared} digest per configuration — O(1)
    space per member and allocation-free insertion from a live store —
    which is what lets the explorer call {!add_live} at every DFS node.
    [Exact] mode additionally keeps full snapshots bucketed by
    fingerprint, turning silent fingerprint collisions into an audited
    {!collisions} count; use it to validate fingerprint-mode results on
    workloads small enough to afford the snapshots. *)

type mode =
  | Fingerprint  (** digests only: O(1) space/member, no false splits *)
  | Exact  (** digests + snapshots: counts exactly, audits collisions *)

type t

val create : ?mode:mode -> unit -> t
(** Default mode: [Fingerprint]. *)

val mode : t -> mode

val add : t -> Mem.snapshot -> unit
(** No-op if a memory-equivalent snapshot is already present. *)

val insert : t -> Mem.snapshot -> bool
(** Like {!add}, but reports whether the configuration was new. *)

val add_live : t -> Mem.t -> bool
(** Insert the store's current shared configuration.  In [Fingerprint]
    mode this allocates nothing; in [Exact] mode it snapshots. *)

val cardinal : t -> int
(** Number of distinct configurations.  O(1): a running count is
    maintained so per-step callers (e.g. {!Explore.crash_points}) never
    pay a table fold. *)

val collisions : t -> int
(** [Exact] mode: how many inserted configurations shared a fingerprint
    with a previously inserted, non-memory-equivalent one.  Any non-zero
    value means fingerprint-mode counts would have under-reported.
    Always 0 in [Fingerprint] mode (collisions are invisible there). *)

val merge_into : dst:t -> src:t -> unit
(** Union [src] into [dst] (the parallel explorer's join).  Merging a
    [Fingerprint] source into an [Exact] destination is rejected with
    [Invalid_argument] — the snapshots needed for auditing are gone. *)
