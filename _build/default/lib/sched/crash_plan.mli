open Dtc_util
open Nvm

(** Crash-injection plans.

    A plan decides, before every scheduled step, whether a system-wide
    crash strikes now, and — for the shared-cache model — which dirty
    cache lines the hardware happens to write back at the instant of
    failure (the [keep] mask).  In the private-cache model the mask is
    irrelevant. *)

type t = {
  should_crash : step:int -> bool;
      (** consulted with the global step count before each step; a plan is
          responsible for bounding its own number of crashes *)
  keep : Loc.t -> bool;  (** write-back decision per dirty line *)
}

val none : t
(** Never crash. *)

val at_steps : ?keep:(Loc.t -> bool) -> int list -> t
(** Crash immediately before global steps [ks] (each fires once; default
    mask keeps everything — private-cache semantics). *)

val random : ?max_crashes:int -> ?keep_prob:float -> prob:float -> Prng.t -> t
(** Crash before each step with probability [prob], at most [max_crashes]
    times (default 3); each dirty line survives with probability
    [keep_prob] (default 1.0). *)

val adversarial_keep_none : t -> t
(** Same crash times, but no dirty line ever survives. *)
