open Dtc_util
open Nvm

type t = { should_crash : step:int -> bool; keep : Loc.t -> bool }

let none = { should_crash = (fun ~step:_ -> false); keep = (fun _ -> true) }

let at_steps ?(keep = fun (_ : Loc.t) -> true) ks =
  let remaining = ref (List.sort_uniq Int.compare ks) in
  let should_crash ~step =
    match !remaining with
    | k :: rest when step >= k ->
        remaining := rest;
        true
    | _ -> false
  in
  { should_crash; keep }

let random ?(max_crashes = 3) ?(keep_prob = 1.0) ~prob prng =
  let fired = ref 0 in
  let should_crash ~step:_ =
    if !fired >= max_crashes then false
    else if Prng.float prng < prob then (
      incr fired;
      true)
    else false
  in
  let keep _loc = keep_prob >= 1.0 || Prng.float prng < keep_prob in
  { should_crash; keep }

let adversarial_keep_none plan = { plan with keep = (fun _ -> false) }
