open Dtc_util

(** Scheduling policies: who takes the next primitive step.

    The paper's processes are fully asynchronous, so any interleaving of
    primitive steps is legal.  A schedule is an online chooser consulted
    by the driver at every step with the set of runnable process ids. *)

type t = { choose : runnable:int list -> step:int -> int }
(** [choose ~runnable ~step] picks one element of [runnable] (non-empty,
    sorted ascending). *)

val round_robin : unit -> t
(** Cycle through runnable processes in pid order. *)

val random : Prng.t -> t
(** Uniformly random runnable process at every step — the workhorse of the
    crash-torture tests. *)

val solo : int -> t
(** Always the given process when runnable, else round-robin among the
    rest.  Used for obstruction-free solo executions in the Theorem 2
    construction. *)

val scripted : int list -> t
(** Follow the given pid sequence, skipping entries that are not runnable;
    falls back to the smallest runnable pid when the script is exhausted.
    Used to drive the proof constructions step by step. *)
