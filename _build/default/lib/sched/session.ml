open Nvm
open History
open Runtime

type policy = Retry | Give_up

(* Driver-side view of what a process is up to.  This is "application
   knowledge": it survives crashes (the application's script is durable),
   whereas everything inside the fiber is volatile. *)
type op_status =
  | Idle
  | Announced of int * Spec.op  (* uid, op: in flight, response not returned *)
  | Completed of int * Spec.op * Value.t  (* returned, announcement not yet cleared *)

type pstate = {
  pid : int;
  mutable todo : Spec.op list;
  mutable status : op_status;
  mutable fiber : Fiber.t option;
  mutable cur_steps : int;  (* own steps since current op/recovery started *)
  mutable in_recovery : bool;
  mutable rec_started : bool;
      (* has any recovery run for the current operation instance? *)
  mutable step_sig : int;
      (* rolling digest of every (request, response) this process has
         exchanged with the machine, with crash markers folded in.
         Programs are deterministic, so this pins down the fiber's
         continuation state exactly — see [state_digest]. *)
}

type t = {
  machine : Machine.t;
  inst : Obj_inst.t;
  policy : policy;
  procs : pstate array;
  mutable events : Event.t list;  (* reversed *)
  mutable uid : int;
  mutable steps : int;
  mutable crashes : int;
  op_steps_tbl : (string, int) Hashtbl.t;
  rec_steps_tbl : (string, int) Hashtbl.t;
  mutable anomalies : string list;
  mutable hist_sig : int;  (* rolling digest of [events], oldest first *)
}

let emit s e =
  s.events <- e :: s.events;
  s.hist_sig <- Value.mix s.hist_sig (Hashtbl.hash e)

let fresh_uid s =
  let u = s.uid in
  s.uid <- u + 1;
  u

let anomaly s fmt =
  Format.kasprintf (fun msg -> s.anomalies <- msg :: s.anomalies) fmt

let note_max tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some m when m >= v -> ()
  | _ -> Hashtbl.replace tbl key v

let pop ps = match ps.todo with [] -> () | _ :: rest -> ps.todo <- rest

(* The client program for one process: perform the remaining workload,
   operation by operation, with the full announce/invoke/clear protocol. *)
let rec client_prog s ps () =
  match ps.todo with
  | [] -> Value.Unit
  | op :: _ ->
      let uid = fresh_uid s in
      emit s (Event.Inv { pid = ps.pid; uid; op });
      ps.status <- Announced (uid, op);
      ps.cur_steps <- 0;
      ps.in_recovery <- false;
      ps.rec_started <- false;
      s.inst.announce ~pid:ps.pid op;
      let r = s.inst.invoke ~pid:ps.pid op in
      emit s (Event.Ret { pid = ps.pid; uid; v = r });
      ps.status <- Completed (uid, op, r);
      pop ps;
      s.inst.clear ~pid:ps.pid;
      ps.status <- Idle;
      client_prog s ps ()

(* The program a process runs when restarted after a crash: first recover
   the in-flight operation (if the announcement shows one), then resume
   the remaining workload. *)
(* A recovery verdict lives in the caller's volatile state until the
   caller takes a persistent action (here: clearing the announcement).  A
   crash before the clear voids the verdict — the next recovery produces a
   fresh (and binding, if it sticks) one — so the session emits the
   recovery outcome only after the clear has executed.  This is why a
   single operation instance never gets two outcome events no matter how
   many times its recovery is re-crashed. *)
let restart_prog s ps () =
  (match s.inst.pending ~pid:ps.pid with
  | None -> (
      match ps.status with
      | Idle -> ()
      | Announced (uid, _) ->
          if not ps.rec_started then begin
            (* The crash hit during announcement: the operation committed
               no announcement, took no step of its own, and was certainly
               not linearized. *)
            emit s (Event.Rec_fail { pid = ps.pid; uid });
            match s.policy with Retry -> () | Give_up -> pop ps
          end
          else begin
            (* A recovery delivered a verdict and the announcement was
               cleared, but the crash struck before the caller could act
               on (or record) it.  The outcome is unknowable: leave the
               instance pending in the history. *)
            match s.policy with Retry -> () | Give_up -> pop ps
          end;
          ps.status <- Idle
      | Completed (_, _, _) ->
          (* Crash between the announcement clear and the next
             announcement: the operation completed and was recorded. *)
          ps.status <- Idle)
  | Some op -> (
      ps.in_recovery <- true;
      ps.cur_steps <- 0;
      (match ps.status with
      | Announced _ -> ps.rec_started <- true
      | Idle | Completed _ -> ());
      let r = s.inst.recover ~pid:ps.pid op in
      ps.in_recovery <- false;
      match ps.status with
      | Completed (uid, _, resp) ->
          (* The operation had already returned before the crash; a strict
             detectable recovery must reproduce the persisted response. *)
          if s.inst.strict_recovery && not (Value.equal r resp) then
            anomaly s
              "p%d: recovery of completed op #%d returned %a, expected %a"
              ps.pid uid Value.pp r Value.pp resp;
          s.inst.clear ~pid:ps.pid;
          ps.status <- Idle
      | Announced (uid, _) ->
          (* clear first: if a crash voids this verdict mid-clear, the next
             recovery re-runs; the verdict becomes binding — and is
             emitted — only once the clear has executed *)
          s.inst.clear ~pid:ps.pid;
          if Obj_inst.is_fail r then begin
            emit s (Event.Rec_fail { pid = ps.pid; uid });
            match s.policy with Retry -> () | Give_up -> pop ps
          end
          else if Obj_inst.is_unknown r then begin
            (* durable-but-not-detectable recovery: no verdict exists, so
               no outcome is recorded — the instance stays pending in the
               history; retrying may duplicate it, giving up may lose it *)
            match s.policy with Retry -> () | Give_up -> pop ps
          end
          else begin
            emit s (Event.Rec_ret { pid = ps.pid; uid; v = r });
            pop ps
          end;
          ps.status <- Idle
      | Idle ->
          anomaly s "p%d: pending announcement %a but driver saw no op"
            ps.pid Spec.pp_op op;
          s.inst.clear ~pid:ps.pid));
  client_prog s ps ()

let op_name ps =
  match ps.status with
  | Announced (_, op) | Completed (_, op, _) -> op.Spec.name
  | Idle -> "idle"

let create ?(policy = Retry) machine inst ~workloads =
  let s =
    {
      machine;
      inst;
      policy;
      procs =
        Array.mapi
          (fun pid todo ->
            {
              pid;
              todo;
              status = Idle;
              fiber = None;
              cur_steps = 0;
              in_recovery = false;
              rec_started = false;
              step_sig = Value.mix 0 pid;
            })
          workloads;
      events = [];
      uid = 0;
      steps = 0;
      crashes = 0;
      op_steps_tbl = Hashtbl.create 8;
      rec_steps_tbl = Hashtbl.create 8;
      anomalies = [];
      hist_sig = 0;
    }
  in
  Array.iter
    (fun ps -> ps.fiber <- Some (Fiber.start (client_prog s ps)))
    s.procs;
  s

let runnable s =
  Array.to_list s.procs
  |> List.filter_map (fun ps ->
         match ps.fiber with
         | Some f -> (
             match Fiber.status f with
             | Fiber.Pending _ -> Some ps.pid
             | Fiber.Done _ | Fiber.Killed -> None)
         | None -> None)

let finished s = runnable s = []

let step s pid =
  if pid < 0 || pid >= Array.length s.procs then
    invalid_arg "Session.step: no such process";
  let ps = s.procs.(pid) in
  match ps.fiber with
  | Some f -> (
      match Fiber.status f with
      | Fiber.Pending req ->
          let v = Machine.apply s.machine req in
          ps.step_sig <-
            Value.mix ps.step_sig
              (Value.mix (Hashtbl.hash req) (Value.hash_seeded 11 v));
          s.steps <- s.steps + 1;
          ps.cur_steps <- ps.cur_steps + 1;
          let tbl = if ps.in_recovery then s.rec_steps_tbl else s.op_steps_tbl in
          note_max tbl (op_name ps) ps.cur_steps;
          Fiber.resume f v
      | Fiber.Done _ | Fiber.Killed ->
          invalid_arg "Session.step: process is not runnable")
  | None -> invalid_arg "Session.step: process is not runnable"

let crash s ~keep =
  emit s Event.Crash;
  s.crashes <- s.crashes + 1;
  Array.iter
    (fun ps ->
      (match ps.fiber with Some f -> Fiber.kill f | None -> ());
      ps.fiber <- None;
      (* crash marker: restart_prog's behavior depends on everything
         step_sig already covers, so keep rolling across the restart *)
      ps.step_sig <- Value.mix ps.step_sig 0xC0FFEE)
    s.procs;
  Machine.crash s.machine ~keep;
  Array.iter
    (fun ps -> ps.fiber <- Some (Fiber.start (restart_prog s ps)))
    s.procs

let steps s = s.steps
let crashes s = s.crashes
let history s = List.rev s.events
let anomalies s = List.rev s.anomalies

let dump tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let op_steps s = dump s.op_steps_tbl
let rec_steps s = dump s.rec_steps_tbl

(* Cheap exact digest of the session's future-relevant state.

   Process programs are deterministic: a fiber's continuation is a pure
   function of (workload, pid, the request/response sequence it has
   exchanged, crash restarts) — exactly what [step_sig] rolls up.  The
   driver-visible fields ([status], [todo], recovery flags) are functions
   of the same sequence, but folding them in costs nothing and guards the
   digest against future session features that might mutate them out of
   band.  [hist_sig] pins the real-time order of emitted events (the
   linearizability verdict of any extension depends on it), and [uid] /
   [steps] / [crashes] pin the counters that feed events and truncation.

   Two sessions over the same workloads with equal digests (and equal
   full-memory contents, which the caller checks separately) therefore
   behave identically under every future decision sequence. *)
let state_digest s =
  let acc = ref (Value.mix s.hist_sig (Value.mix s.uid s.steps)) in
  acc := Value.mix !acc s.crashes;
  Array.iter
    (fun ps ->
      let status_h =
        match ps.status with
        | Idle -> 1
        | Announced (uid, _) -> Value.mix 2 uid
        | Completed (uid, _, v) -> Value.mix (Value.mix 3 uid) (Value.hash v)
      in
      let flags =
        (if ps.in_recovery then 1 else 0)
        lor (if ps.rec_started then 2 else 0)
        lor (match ps.fiber with
            | Some f -> (
                match Fiber.status f with
                | Fiber.Pending _ -> 4
                | Fiber.Done _ -> 8
                | Fiber.Killed -> 12)
            | None -> 16)
      in
      acc := Value.mix !acc ps.step_sig;
      acc := Value.mix !acc status_h;
      acc := Value.mix !acc (Value.mix (List.length ps.todo) flags))
    s.procs;
  !acc
