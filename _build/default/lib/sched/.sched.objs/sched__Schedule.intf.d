lib/sched/schedule.mli: Dtc_util Prng
