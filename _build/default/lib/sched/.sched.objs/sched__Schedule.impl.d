lib/sched/schedule.ml: Dtc_util List Prng
