lib/sched/driver.mli: Crash_plan Event History Lin_check Obj_inst Runtime Schedule Session Spec
