lib/sched/crash_plan.mli: Dtc_util Loc Nvm Prng
