lib/sched/session.ml: Array Event Fiber Format Hashtbl History List Machine Nvm Obj_inst Runtime Spec String Value
