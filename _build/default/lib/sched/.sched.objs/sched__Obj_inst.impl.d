lib/sched/obj_inst.ml: History Nvm Spec Value
