lib/sched/workload.ml: Array Dtc_util History List Nvm Prng Spec Value
