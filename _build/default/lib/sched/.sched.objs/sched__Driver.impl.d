lib/sched/driver.ml: Crash_plan Event History Lin_check Obj_inst Schedule Session
