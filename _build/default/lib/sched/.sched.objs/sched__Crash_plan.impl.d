lib/sched/crash_plan.ml: Dtc_util Int List Loc Nvm Prng
