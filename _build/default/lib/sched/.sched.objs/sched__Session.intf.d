lib/sched/session.mli: Event History Loc Nvm Obj_inst Runtime Spec
