lib/sched/obj_inst.mli: History Nvm Spec Value
