lib/sched/workload.mli: Dtc_util History Prng Spec
