open Dtc_util

type t = { choose : runnable:int list -> step:int -> int }

let round_robin () =
  let last = ref (-1) in
  let choose ~runnable ~step:_ =
    match List.find_opt (fun pid -> pid > !last) runnable with
    | Some pid ->
        last := pid;
        pid
    | None ->
        let pid = List.hd runnable in
        last := pid;
        pid
  in
  { choose }

let random prng =
  let choose ~runnable ~step:_ = Prng.pick prng runnable in
  { choose }

let solo pid =
  let fallback = round_robin () in
  let choose ~runnable ~step =
    if List.mem pid runnable then pid else fallback.choose ~runnable ~step
  in
  { choose }

let scripted pids =
  let script = ref pids in
  let choose ~runnable ~step:_ =
    (* drop script entries until one is runnable *)
    let rec next () =
      match !script with
      | [] -> List.hd runnable
      | pid :: rest ->
          script := rest;
          if List.mem pid runnable then pid else next ()
    in
    next ()
  in
  { choose }
