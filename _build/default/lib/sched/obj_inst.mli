open History

open Nvm

(** The interface every object-under-test presents to the driver.

    An instance bundles the fiber-side entry points of a recoverable
    object implementation (announce / invoke / recover / clear, all of
    which perform primitive memory steps) with the driver-side recovery
    dispatcher ([pending]) and the sequential specification used to check
    its histories.

    The split mirrors the paper's Section 2 protocol exactly:

    + the {e caller} announces the operation ([announce]), invokes it
      ([invoke]) and, once it has consumed the response, marks the process
      idle ([clear]);
    + after a crash, the {e system} inspects [Ann_p.op] ([pending]) and, if
      an operation was in flight, runs its recovery function ([recover]),
      which returns either the operation's response or the distinguished
      {!fail} value. *)

type t = {
  descr : string;  (** short human-readable implementation name *)
  spec : Spec.t;  (** sequential specification for history checking *)
  announce : pid:int -> Spec.op -> unit;  (** fiber context *)
  invoke : pid:int -> Spec.op -> Value.t;  (** fiber context *)
  recover : pid:int -> Spec.op -> Value.t;
      (** fiber context; called with the same arguments as the crashed
          invocation (read back from [Ann_p.op]); returns the response or
          {!fail} *)
  clear : pid:int -> unit;  (** fiber context *)
  pending : pid:int -> Spec.op option;  (** driver context, no step cost *)
  strict_recovery : bool;
      (** [true] for detectable implementations that persist their
          response: recovering an operation that had already completed
          must reproduce the persisted response exactly (the driver flags
          a mismatch as an anomaly).  [false] for re-invocation-style
          recoveries (e.g. the max register of Algorithm 3), where
          recovering a completed read-like operation may legitimately
          re-execute and observe a newer state. *)
}

val fail : Value.t
(** The distinguished [fail] verdict returned by recovery functions of
    detectable objects ("the operation was not linearized"). *)

val is_fail : Value.t -> bool

val unknown : Value.t
(** The verdict of a {e durable-but-not-detectable} implementation
    (Section 6: universal constructions, the durable queue of Friedman et
    al.): object state is consistent after the crash, but the recovery
    cannot tell whether the interrupted operation was linearized.  The
    driver records {e no} outcome for such an operation — it stays
    pending in the history — and the caller must choose between possibly
    duplicating it (retry) and possibly losing it (give up), which is
    exactly the cost experiment E9 measures. *)

val is_unknown : Value.t -> bool
