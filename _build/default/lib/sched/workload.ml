open Dtc_util
open Nvm
open History

let gen prng ~procs ~ops_per_proc pick_op =
  Array.init procs (fun _ -> List.init ops_per_proc (fun _ -> pick_op prng))

let register prng ~procs ~ops_per_proc ~values =
  gen prng ~procs ~ops_per_proc (fun g ->
      if Prng.bool g then Spec.read_op
      else Spec.write_op (Value.Int (Prng.int g values)))

let cas prng ~procs ~ops_per_proc ~values =
  gen prng ~procs ~ops_per_proc (fun g ->
      if Prng.int g 4 = 0 then Spec.read_op
      else
        Spec.cas_op
          (Value.Int (Prng.int g values))
          (Value.Int (Prng.int g values)))

let counter prng ~procs ~ops_per_proc =
  gen prng ~procs ~ops_per_proc (fun g ->
      if Prng.int g 3 = 0 then Spec.read_op else Spec.inc_op)

let faa prng ~procs ~ops_per_proc ~max_delta =
  gen prng ~procs ~ops_per_proc (fun g ->
      if Prng.int g 3 = 0 then Spec.read_op
      else Spec.faa_op (1 + Prng.int g max_delta))

let max_register prng ~procs ~ops_per_proc ~values =
  gen prng ~procs ~ops_per_proc (fun g ->
      if Prng.int g 3 = 0 then Spec.read_op
      else Spec.write_max_op (Prng.int g values))

let tas prng ~procs ~ops_per_proc =
  gen prng ~procs ~ops_per_proc (fun g ->
      match Prng.int g 4 with
      | 0 -> Spec.read_op
      | 1 -> Spec.reset_op
      | _ -> Spec.tas_op)

let swap prng ~procs ~ops_per_proc ~values =
  gen prng ~procs ~ops_per_proc (fun g ->
      if Prng.int g 4 = 0 then Spec.read_op
      else Spec.swap_op (Value.Int (Prng.int g values)))

let queue prng ~procs ~ops_per_proc ~values =
  gen prng ~procs ~ops_per_proc (fun g ->
      if Prng.int g 3 = 0 then Spec.deq_op
      else Spec.enq_op (Value.Int (Prng.int g values)))

let total_enqueues workloads =
  Array.fold_left
    (fun acc ops ->
      acc
      + List.length (List.filter (fun (o : Spec.op) -> o.Spec.name = "enq") ops))
    0 workloads
