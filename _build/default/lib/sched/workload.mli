open Dtc_util
open History

(** Random workload generation for torture tests and benchmarks.

    Every generator draws from a {!Prng.t}, so a workload is reproducible
    from its seed.  Values come from a small domain on purpose: collisions
    are what exercise the ABA machinery of Algorithms 1 and 2. *)

val register :
  Prng.t -> procs:int -> ops_per_proc:int -> values:int -> Spec.op list array
(** Mix of [read] and [write v], v ∈ [0, values). *)

val cas :
  Prng.t -> procs:int -> ops_per_proc:int -> values:int -> Spec.op list array
(** Mix of [read] and [cas old new] with arguments from the domain. *)

val counter : Prng.t -> procs:int -> ops_per_proc:int -> Spec.op list array
(** Mix of [read] and [inc]. *)

val faa :
  Prng.t -> procs:int -> ops_per_proc:int -> max_delta:int -> Spec.op list array
(** Mix of [read] and [faa d], d ∈ [1, max_delta]. *)

val max_register :
  Prng.t -> procs:int -> ops_per_proc:int -> values:int -> Spec.op list array
(** Mix of [read] and [write_max v]. *)

val tas : Prng.t -> procs:int -> ops_per_proc:int -> Spec.op list array
(** Mix of [tas], [reset] and [read], tas-biased. *)

val swap :
  Prng.t -> procs:int -> ops_per_proc:int -> values:int -> Spec.op list array
(** Mix of [read] and [swap v]. *)

val queue :
  Prng.t -> procs:int -> ops_per_proc:int -> values:int -> Spec.op list array
(** Mix of [enq v] and [deq], enqueue-biased so queues are usually
    non-empty. *)

val total_enqueues : Spec.op list array -> int
(** Capacity a {!Detectable.Dqueue} needs for the workload. *)
