lib/runtime/ann.ml: Fiber Loc Machine Nvm Printf Value
