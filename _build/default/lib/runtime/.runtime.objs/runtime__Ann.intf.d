lib/runtime/ann.mli: Loc Machine Nvm Value
