lib/runtime/fiber.ml: Effect Nvm Prim Value
