lib/runtime/machine.mli: Loc Mem Nvm Prim Value
