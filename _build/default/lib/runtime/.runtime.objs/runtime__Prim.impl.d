lib/runtime/prim.ml: Format Loc Nvm Value
