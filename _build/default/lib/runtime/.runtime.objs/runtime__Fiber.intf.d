lib/runtime/fiber.mli: Loc Nvm Prim Value
