lib/runtime/prim.mli: Format Loc Nvm Value
