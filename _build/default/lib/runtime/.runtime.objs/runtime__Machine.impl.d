lib/runtime/machine.ml: Cache Loc Mem Nvm Prim Value
