open Nvm

(** Primitive shared-memory operations.

    These are the atomic steps of the paper's system model: a process's
    execution is a sequence of primitive operations on base objects, and a
    system-wide crash may occur between any two of them.  [Persist] and
    [Fence] only have an effect in the shared-cache model (Section 6);
    [Yield] is a local no-op step used to give the scheduler (and crash
    injector) a hook at points of interest without touching memory. *)

type request =
  | Read of Loc.t
  | Write of Loc.t * Value.t
  | Cas of Loc.t * Value.t * Value.t  (** returns [Bool] *)
  | Faa of Loc.t * int  (** fetch-and-add, returns old [Int] *)
  | Persist of Loc.t  (** flush one cache line (shared-cache model) *)
  | Fence  (** flush all dirty lines (shared-cache model) *)
  | Yield

val pp : Format.formatter -> request -> unit

val touches : request -> Loc.t option
(** The location a request addresses, if any. *)

val is_shared_write : request -> bool
(** Does the request potentially modify a shared location?  ([Write],
    [Cas] and [Faa] on shared locations.) *)
