open Nvm

type request =
  | Read of Loc.t
  | Write of Loc.t * Value.t
  | Cas of Loc.t * Value.t * Value.t
  | Faa of Loc.t * int
  | Persist of Loc.t
  | Fence
  | Yield

let pp fmt = function
  | Read l -> Format.fprintf fmt "read %a" Loc.pp l
  | Write (l, v) -> Format.fprintf fmt "write %a := %a" Loc.pp l Value.pp v
  | Cas (l, e, d) ->
      Format.fprintf fmt "cas %a (%a -> %a)" Loc.pp l Value.pp e Value.pp d
  | Faa (l, d) -> Format.fprintf fmt "faa %a += %d" Loc.pp l d
  | Persist l -> Format.fprintf fmt "persist %a" Loc.pp l
  | Fence -> Format.fprintf fmt "fence"
  | Yield -> Format.fprintf fmt "yield"

let touches = function
  | Read l | Write (l, _) | Cas (l, _, _) | Faa (l, _) | Persist l -> Some l
  | Fence | Yield -> None

let is_shared_write = function
  | Write (l, _) | Cas (l, _, _) | Faa (l, _) -> Loc.is_shared l
  | Read _ | Persist _ | Fence | Yield -> false
