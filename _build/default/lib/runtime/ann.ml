open Nvm

type t = { op : Loc.t; resp : Loc.t; cp : Loc.t }

let alloc machine ~pid =
  let name field = Printf.sprintf "Ann.%s" field in
  {
    op = Machine.alloc_private machine ~pid (name "op") Value.Bot;
    resp = Machine.alloc_private machine ~pid (name "resp") Value.Bot;
    cp = Machine.alloc_private machine ~pid (name "cp") (Value.Int 0);
  }

(* [op] is written last: it commits the announcement, so a crash between
   these writes either shows no pending operation or a fully initialised
   one ([resp] = ⊥, [cp] = 0). *)
let announce t ~name ~args =
  Fiber.write t.resp Value.Bot;
  Fiber.write t.cp (Value.Int 0);
  Fiber.write t.op (Value.pair (Value.Str name) args)

let clear t = Fiber.write t.op Value.Bot

let pending machine t =
  match Machine.peek machine t.op with
  | Value.Bot -> None
  | v -> Some (Value.to_str (Value.nth v 0), Value.nth v 1)

let set_resp t v = Fiber.write t.resp v
let resp t = Fiber.read t.resp
let cp t = Value.to_int (Fiber.read t.cp)
let set_cp t n = Fiber.write t.cp (Value.Int n)
