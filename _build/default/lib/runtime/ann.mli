open Nvm

(** The per-process announcement structure [Ann_p] (paper, Section 2).

    Each process [p] owns a private non-volatile record with three fields:

    - [Ann_p.op] — which recoverable operation [p] is currently performing
      and with which arguments, written by the {e caller} immediately
      before invoking the operation;
    - [Ann_p.resp] — the operation's response, initialised to ⊥ by the
      caller and persisted by the operation before it returns;
    - [Ann_p.CP] — a checkpoint counter, set to 0 by the caller and
      advanced by the operation / its recovery function.

    The fields are the paper's {e auxiliary state}: Theorem 2 proves that
    detectable implementations of doubly-perturbing objects cannot do
    without writes like these occurring outside the operation itself.  The
    no-aux-state ablations used by experiment E3 are obtained by skipping
    the {!announce} writes. *)

type t = private { op : Loc.t; resp : Loc.t; cp : Loc.t }

val alloc : Machine.t -> pid:int -> t
(** Allocate the three private NVM fields for process [pid].  [op] and
    [resp] start at ⊥, [cp] at 0. *)

val announce : t -> name:string -> args:Value.t -> unit
(** Caller-side protocol, executed {e inside a fiber} as three primitive
    writes: [resp := ⊥], [cp := 0], and last [op := (name, args)] — the
    [op] write commits the announcement, so a crash mid-announcement never
    exposes a half-initialised one. *)

val clear : t -> unit
(** Caller-side: mark the process idle ([op := ⊥]) after a recoverable
    operation and its response handling are finished. *)

val pending : Machine.t -> t -> (string * Value.t) option
(** Driver-side (no fiber): the operation recorded in [op], if any — what
    the recovery dispatcher consults after a crash. *)

val set_resp : t -> Value.t -> unit
(** Operation-side: persist the response ([resp := v]), one write. *)

val resp : t -> Value.t
(** Operation-side read of [resp]. *)

val cp : t -> int
(** Operation-side read of [CP]. *)

val set_cp : t -> int -> unit
(** Operation-side write of [CP]. *)
