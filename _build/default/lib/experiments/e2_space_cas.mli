open Dtc_util

(** Experiment E2 — the space complexity of detectable CAS.

    Algorithm 2 uses Θ(N) shared bits beyond the value (the N-bit flip
    vector), matching Theorem 1's Ω(N) lower bound; the prior detectable
    CAS of Ben-David et al. tags values with unbounded sequence numbers
    whose footprint grows with the operation count.  Both claims measured
    on the simulator's exact bit accounting. *)

val dcas_extra_bits : n:int -> ops:int -> int
(** Shared bits of Algorithm 2's variable [C] beyond the value bits after
    a workload of [ops] operations per process. *)

val ucas_bits : n:int -> ops:int -> int
(** Total shared bits of the unbounded baseline after [ops] alternating
    CAS operations. *)

val table_bounded : unit -> Table.t
(** N vs Algorithm 2 extra bits vs the N−1 lower bound (flat in ops). *)

val table_unbounded : unit -> Table.t
(** Operation count vs footprints: Algorithm 2 flat, baseline growing. *)
