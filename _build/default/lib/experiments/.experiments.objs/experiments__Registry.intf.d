lib/experiments/registry.mli: Dtc_util Table
