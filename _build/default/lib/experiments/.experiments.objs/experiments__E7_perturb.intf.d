lib/experiments/e7_perturb.mli: Dtc_util Table
