lib/experiments/registry.ml: Dtc_util E10_tradeoff E1_configs E2_space_cas E3_aux_state E4_space_rw E5_steps E6_torture E7_perturb E8_transforms E9_detectability_value List Printf String Table
