lib/experiments/e4_space_rw.ml: Array Common Driver Dtc_util History List Mem Nvm Runtime Sched Spec Table
