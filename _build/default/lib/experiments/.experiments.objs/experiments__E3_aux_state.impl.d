lib/experiments/e3_aux_state.ml: Baselines Common Dtc_util History List Perturb Runtime Sched Spec Table
