lib/experiments/e9_detectability_value.mli: Dtc_util Table
