lib/experiments/e8_transforms.mli: Dtc_util Table
