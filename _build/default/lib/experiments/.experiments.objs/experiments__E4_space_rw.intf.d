lib/experiments/e4_space_rw.mli: Dtc_util Table
