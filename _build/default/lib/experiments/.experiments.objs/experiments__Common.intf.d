lib/experiments/common.mli: Driver History Nvm Obj_inst Runtime Sched Session Spec Value
