lib/experiments/e2_space_cas.mli: Dtc_util Table
