lib/experiments/e10_tradeoff.ml: Baselines Crash_plan Detectable Driver Dtc_util History List Machine Mem Nvm Obj_inst Printf Runtime Sched Schedule Session Spec Table Value Workload
