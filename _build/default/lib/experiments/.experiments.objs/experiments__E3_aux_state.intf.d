lib/experiments/e3_aux_state.mli: Dtc_util Table
