lib/experiments/common.ml: Baselines Crash_plan Detectable Driver Dtc_util History Lin_check Machine Nvm Runtime Sched Schedule Session Value
