lib/experiments/e1_configs.ml: Array Common Detectable Dtc_util Fun History List Modelcheck Runtime Sched Session Spec Table
