lib/experiments/e2_space_cas.ml: Array Baselines Common Detectable Driver Dtc_util History List Mem Nvm Runtime Sched Spec Table
