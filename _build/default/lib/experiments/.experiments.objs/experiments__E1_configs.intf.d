lib/experiments/e1_configs.mli: Dtc_util Table
