lib/experiments/e5_steps.mli: Dtc_util Table
