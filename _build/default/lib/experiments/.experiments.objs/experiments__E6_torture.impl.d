lib/experiments/e6_torture.ml: Baselines Common Dtc_util Event History Lin_check List Loc Mem Nvm Obj_inst Printf Runtime Sched Session Spec Table Value Workload
