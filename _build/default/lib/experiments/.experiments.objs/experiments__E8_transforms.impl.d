lib/experiments/e8_transforms.ml: Common Crash_plan Detectable Driver Dtc_util Event History Lin_check List Machine Obj_inst Printf Runtime Sched Schedule Session Table Workload
