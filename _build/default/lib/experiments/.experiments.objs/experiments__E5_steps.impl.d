lib/experiments/e5_steps.ml: Common Driver Dtc_util Hashtbl History List Obj_inst Runtime Sched Spec Table Workload
