lib/experiments/e6_torture.mli: Dtc_util Table
