lib/experiments/e10_tradeoff.mli: Dtc_util Table
