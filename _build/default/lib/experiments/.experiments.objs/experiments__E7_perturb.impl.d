lib/experiments/e7_perturb.ml: Dtc_util Format History List Perturb Spec Table
