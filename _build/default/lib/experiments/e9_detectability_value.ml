open Dtc_util
open Nvm
open Runtime
open History
open Sched

type stats = {
  mutable crashes : int;
  mutable duplicates : int;  (* values consumed more than once *)
  mutable unresolved : int;  (* op instances with no outcome *)
  mutable informed_fails : int;  (* fail verdicts (the caller knows) *)
  mutable violations : int;  (* checker rejections (must stay 0) *)
}

let run_one ~mk ~seed stats =
  let prng = Dtc_util.Prng.create seed in
  let machine, inst = mk () in
  let cfg =
    {
      Driver.schedule = Schedule.random (Dtc_util.Prng.split prng);
      crash_plan =
        Crash_plan.random ~max_crashes:3 ~prob:0.12 (Dtc_util.Prng.split prng);
      policy = Session.Retry;
      max_steps = 200_000;
    }
  in
  (* unique values so duplicates are identifiable; consumers over-poll so
     everything can drain in the crash-free suffix *)
  let workloads =
    [|
      List.init 3 (fun k -> Spec.enq_op (Common.i (100 + k)));
      List.init 3 (fun k -> Spec.enq_op (Common.i (200 + k)));
      List.init 10 (fun _ -> Spec.deq_op);
    |]
  in
  let res = Driver.run machine inst ~workloads cfg in
  stats.crashes <- stats.crashes + res.Driver.crashes;
  (if not (Lin_check.is_ok (Driver.check inst res)) then
     stats.violations <- stats.violations + 1);
  let consumed =
    List.filter_map
      (function
        | Event.Ret { v = Value.Int x; _ } | Event.Rec_ret { v = Value.Int x; _ }
          ->
            Some x
        | _ -> None)
      res.Driver.history
  in
  let sorted = List.sort compare consumed in
  let rec dups = function
    | a :: b :: rest when a = b -> 1 + dups (b :: rest)
    | _ :: rest -> dups rest
    | [] -> 0
  in
  stats.duplicates <- stats.duplicates + dups sorted;
  (* instances with an invocation but no outcome *)
  let outcomes = Hashtbl.create 32 in
  let invs = ref [] in
  List.iter
    (fun e ->
      match (e : Event.t) with
      | Event.Inv { uid; _ } -> invs := uid :: !invs
      | Event.Ret { uid; _ } | Event.Rec_ret { uid; _ } ->
          Hashtbl.replace outcomes uid ()
      | Event.Rec_fail { uid; _ } ->
          Hashtbl.replace outcomes uid ();
          stats.informed_fails <- stats.informed_fails + 1
      | Event.Crash -> ())
    res.Driver.history;
  List.iter
    (fun uid ->
      if not (Hashtbl.mem outcomes uid) then
        stats.unresolved <- stats.unresolved + 1)
    !invs

let table ?(trials = 60) () =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E9 (Sec.6): the application-level price of durable-only recovery \
            (%d producer/consumer runs, retry policy, unique values)"
           trials)
      [
        "implementation";
        "crashes";
        "duplicate consumptions";
        "unresolved ops";
        "informed fail verdicts";
        "checker violations";
      ]
  in
  let rows =
    [
      ( "dqueue (detectable)",
        fun () ->
          let m = Machine.create () in
          (m, Detectable.Dqueue.instance (Detectable.Dqueue.create m ~n:3 ~capacity:64)) );
      ( "dur_queue (durable only)",
        fun () ->
          let m = Machine.create () in
          (m, Baselines.Dur_queue.instance (Baselines.Dur_queue.create m ~n:3 ~capacity:64)) );
      ( "ulog queue (detectable mode)",
        fun () ->
          let m = Machine.create () in
          ( m,
            Detectable.Ulog.instance
              (Detectable.Ulog.create ~mode:`Detectable m ~n:3 ~capacity:64
                 ~spec:(Spec.fifo_queue ())) ) );
      ( "ulog queue (durable mode)",
        fun () ->
          let m = Machine.create () in
          ( m,
            Detectable.Ulog.instance
              (Detectable.Ulog.create ~mode:`Durable m ~n:3 ~capacity:64
                 ~spec:(Spec.fifo_queue ())) ) );
    ]
  in
  List.iter
    (fun (label, mk) ->
      let stats =
        { crashes = 0; duplicates = 0; unresolved = 0; informed_fails = 0; violations = 0 }
      in
      for seed = 1 to trials do
        run_one ~mk ~seed:(7_000 + seed) stats
      done;
      Table.add_row t
        [
          label;
          string_of_int stats.crashes;
          string_of_int stats.duplicates;
          string_of_int stats.unresolved;
          string_of_int stats.informed_fails;
          string_of_int stats.violations;
        ])
    rows;
  t
