open Dtc_util
open Nvm
open Runtime
open History
open Sched

type row = {
  label : string;
  mk : unit -> Machine.t * Obj_inst.t * (Machine.t -> int);
      (* instance plus a shared-bits probe *)
  workloads : int -> Spec.op list array;
  space_class : string;
  progress : string;
}

let n = 4
let ops = 8

let reg_wl seed =
  Workload.register (Dtc_util.Prng.create seed) ~procs:n ~ops_per_proc:ops
    ~values:3

let cas_wl seed =
  Workload.cas (Dtc_util.Prng.create seed) ~procs:n ~ops_per_proc:ops ~values:3

let counter_wl seed =
  Workload.counter (Dtc_util.Prng.create seed) ~procs:n ~ops_per_proc:ops

let all_shared machine = Mem.max_shared_bits (Machine.mem machine)

let rows () =
  [
    {
      label = "drw (Alg.1)";
      mk =
        (fun () ->
          let m = Machine.create () in
          ( m,
            Detectable.Drw.instance (Detectable.Drw.create m ~n ~init:(Value.Int 0)),
            all_shared ));
      workloads = reg_wl;
      space_class = "bounded (O(N^2) bits)";
      progress = "wait-free, O(N) write";
    };
    {
      label = "urw (unbounded tags)";
      mk =
        (fun () ->
          let m = Machine.create () in
          ( m,
            Baselines.Urw.instance (Baselines.Urw.create m ~n ~init:(Value.Int 0)),
            all_shared ));
      workloads = reg_wl;
      space_class = "unbounded (grows with ops)";
      progress = "wait-free, O(1)";
    };
    {
      label = "dcas (Alg.2)";
      mk =
        (fun () ->
          let m = Machine.create () in
          ( m,
            Detectable.Dcas.instance (Detectable.Dcas.create m ~n ~init:(Value.Int 0)),
            all_shared ));
      workloads = cas_wl;
      space_class = "bounded (Theta(N) bits)";
      progress = "wait-free, O(1)";
    };
    {
      label = "ucas (unbounded tags)";
      mk =
        (fun () ->
          let m = Machine.create () in
          ( m,
            Baselines.Ucas.instance (Baselines.Ucas.create m ~n ~init:(Value.Int 0)),
            all_shared ));
      workloads = cas_wl;
      space_class = "unbounded (grows with ops)";
      progress = "lock-free";
    };
    {
      label = "dcounter (capsule)";
      mk =
        (fun () ->
          let m = Machine.create () in
          ( m,
            Detectable.Transform.instance (Detectable.Transform.counter m ~n ~init:0),
            all_shared ));
      workloads = counter_wl;
      space_class = "bounded (Theta(N) bits)";
      progress = "lock-free";
    };
    {
      label = "dprotected (lock)";
      mk =
        (fun () ->
          let m = Machine.create () in
          ( m,
            Detectable.Dprotected.instance (Detectable.Dprotected.create m ~n ~init:0),
            all_shared ));
      workloads = counter_wl;
      space_class = "bounded (O(log N) bits)";
      progress = "blocking (deadlock-free)";
    };
    {
      label = "ulog counter (universal)";
      mk =
        (fun () ->
          let m = Machine.create () in
          ( m,
            Detectable.Ulog.instance
              (Detectable.Ulog.create m ~n ~capacity:(n * ops * 2)
                 ~spec:(Spec.counter 0)),
            all_shared ));
      workloads = counter_wl;
      space_class = "unbounded (log grows)";
      progress = "lock-free, O(history) replay";
    };
  ]

let table () =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E10 (open problem): the empirical time/space landscape (N = %d, %d ops/proc, 10 seeds)"
           n ops)
      [
        "implementation";
        "space class";
        "shared bits (measured)";
        "max op steps";
        "max recovery steps";
        "progress";
      ]
  in
  List.iter
    (fun r ->
      let bits = ref 0 in
      let op_steps = ref 0 in
      let rec_steps = ref 0 in
      for seed = 1 to 10 do
        let machine, inst, probe = r.mk () in
        let prng = Dtc_util.Prng.create (100 * seed) in
        let cfg =
          {
            Driver.schedule = Schedule.random (Dtc_util.Prng.split prng);
            crash_plan =
              Crash_plan.random ~max_crashes:2 ~prob:0.03
                (Dtc_util.Prng.split prng);
            policy = Session.Retry;
            max_steps = 500_000;
          }
        in
        let res = Driver.run machine inst ~workloads:(r.workloads seed) cfg in
        bits := max !bits (probe machine);
        List.iter
          (fun (name, s) -> if name <> "idle" then op_steps := max !op_steps s)
          res.Driver.op_steps;
        List.iter
          (fun (name, s) -> if name <> "idle" then rec_steps := max !rec_steps s)
          res.Driver.rec_steps
      done;
      Table.add_row t
        [
          r.label;
          r.space_class;
          string_of_int !bits;
          string_of_int !op_steps;
          string_of_int !rec_steps;
          r.progress;
        ])
    (rows ());
  t
