open Dtc_util

(** Experiment E6 — durable linearizability + detectability under crash
    torture (Lemmas 1-2 as a statistical test, plus exhaustive small
    cases).

    Every object runs many seeded random schedules with random crash
    injection and every history goes through the checker; the paper's
    algorithms must score zero violations.  The ablation rows (toggle
    bits removed, flip vector removed, plain non-recoverable objects)
    must score nonzero — they calibrate the oracle: the same harness that
    passes the real algorithms does catch broken ones. *)

val table : ?trials:int -> unit -> Table.t
(** Default 60 trials per row. *)
