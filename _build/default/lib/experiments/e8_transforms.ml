open Dtc_util
open Runtime
open History
open Sched

let i = Common.i

let nrl_run ~trials ~mk ~workloads_of_seed =
  let violations = ref 0 in
  let fail_answers = ref 0 in
  let never_started = ref 0 in
  let rec_rets = ref 0 in
  for seed = 1 to trials do
    let prng = Dtc_util.Prng.create seed in
    let machine, inst = mk () in
    (* count the recovery function's actual answers: an NRL recovery that
       runs must never answer fail *)
    let recover ~pid op =
      let r = inst.Obj_inst.recover ~pid op in
      if Obj_inst.is_fail r then incr fail_answers;
      r
    in
    let inst = { inst with Obj_inst.recover } in
    let cfg =
      {
        Driver.schedule = Schedule.random (Dtc_util.Prng.split prng);
        crash_plan =
          Crash_plan.random ~max_crashes:2 ~prob:0.08 (Dtc_util.Prng.split prng);
        policy = Session.Retry;
        max_steps = 50_000;
      }
    in
    let res = Driver.run machine inst ~workloads:(workloads_of_seed seed) cfg in
    if not (Lin_check.is_ok (Driver.check inst res)) then incr violations;
    List.iter
      (function
        | Event.Rec_fail _ -> incr never_started
        | Event.Rec_ret _ -> incr rec_rets
        | _ -> ())
      res.Driver.history
  done;
  (!violations, !fail_answers, !never_started, !rec_rets)

let table_nrl ?(trials = 60) () =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E8a (Sec.6): NRL wrapper — recovery completes the operation, never fails (%d runs)"
           trials)
      [
        "implementation";
        "violations";
        "recovery answered fail";
        "recovery answered response";
        "Rec_fail events (incl. never-started ops)";
      ]
  in
  let rows =
    [
      ( "nrl(drw)",
        (fun () ->
          let m = Machine.create () in
          ( m,
            Detectable.Nrl.wrap
              (Detectable.Drw.instance (Detectable.Drw.create m ~n:3 ~init:(i 0))) )),
        fun seed ->
          Workload.register (Dtc_util.Prng.create seed) ~procs:3 ~ops_per_proc:3
            ~values:2 );
      ( "nrl(dcas)",
        (fun () ->
          let m = Machine.create () in
          ( m,
            Detectable.Nrl.wrap
              (Detectable.Dcas.instance (Detectable.Dcas.create m ~n:3 ~init:(i 0))) )),
        fun seed ->
          Workload.cas (Dtc_util.Prng.create seed) ~procs:3 ~ops_per_proc:3
            ~values:2 );
      ( "dcas (unwrapped, for contrast)",
        (fun () -> Common.mk_dcas ()),
        fun seed ->
          Workload.cas (Dtc_util.Prng.create (77 + seed)) ~procs:3 ~ops_per_proc:3
            ~values:2 );
    ]
  in
  List.iter
    (fun (label, mk, wl) ->
      let violations, fail_answers, never_started, rec_rets =
        nrl_run ~trials ~mk ~workloads_of_seed:wl
      in
      Table.add_row t
        [
          label;
          string_of_int violations;
          string_of_int fail_answers;
          string_of_int rec_rets;
          string_of_int never_started;
        ])
    rows;
  t

let table_shared_cache ?(trials = 60) () =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E8b (Sec.6): shared-cache model, adversarial partial write-back (%d runs)"
           trials)
      [ "implementation"; "persist instrumented"; "violations"; "expected" ]
  in
  let row label ~persist ~expect_zero mk wl =
    let violations, _ =
      Common.torture_count ~keep_prob:0.5 ~crash_prob:0.08 ~trials ~mk
        ~workloads_of_seed:wl ()
    in
    Table.add_row t
      [
        label;
        (if persist then "yes" else "no");
        string_of_int violations;
        (if expect_zero then "0" else ">0");
      ]
  in
  let reg_wl base seed =
    Workload.register (Dtc_util.Prng.create (base + seed)) ~procs:3
      ~ops_per_proc:3 ~values:2
  in
  row "drw" ~persist:true ~expect_zero:true
    (fun () ->
      let m = Machine.create ~model:Machine.Shared_cache () in
      (m, Detectable.Drw.instance (Detectable.Drw.create ~persist:true m ~n:3 ~init:(i 0))))
    (reg_wl 0);
  row "drw (untransformed)" ~persist:false ~expect_zero:false
    (fun () ->
      let m = Machine.create ~model:Machine.Shared_cache () in
      (m, Detectable.Drw.instance (Detectable.Drw.create ~persist:false m ~n:3 ~init:(i 0))))
    (reg_wl 1000);
  row "dcas" ~persist:true ~expect_zero:true
    (fun () ->
      let m = Machine.create ~model:Machine.Shared_cache () in
      (m, Detectable.Dcas.instance (Detectable.Dcas.create ~persist:true m ~n:3 ~init:(i 0))))
    (fun seed ->
      Workload.cas (Dtc_util.Prng.create (2000 + seed)) ~procs:3 ~ops_per_proc:3
        ~values:2);
  row "dmax" ~persist:true ~expect_zero:true
    (fun () ->
      let m = Machine.create ~model:Machine.Shared_cache () in
      (m, Detectable.Dmax.instance (Detectable.Dmax.create ~persist:true m ~n:3 ~init:0)))
    (fun seed ->
      Workload.max_register (Dtc_util.Prng.create (3000 + seed)) ~procs:3
        ~ops_per_proc:3 ~values:5);
  row "dqueue" ~persist:true ~expect_zero:true
    (fun () ->
      let m = Machine.create ~model:Machine.Shared_cache () in
      (m, Detectable.Dqueue.instance (Detectable.Dqueue.create ~persist:true m ~n:3 ~capacity:64)))
    (fun seed ->
      Workload.queue (Dtc_util.Prng.create (4000 + seed)) ~procs:3
        ~ops_per_proc:3 ~values:3);
  t
