open Dtc_util
open Nvm
open History
open Sched

let run_writes ~mk ~n ~ops =
  let machine, inst = mk () in
  let workloads =
    Array.init n (fun p -> List.init ops (fun _ -> Spec.write_op (Common.i (p + 1))))
  in
  let cfg = { Driver.default_config with max_steps = 20_000_000 } in
  ignore (Driver.run machine inst ~workloads cfg);
  machine

let drw_bits ~n ~ops =
  let machine = run_writes ~mk:(fun () -> Common.mk_drw ~n ()) ~n ~ops in
  Mem.max_shared_bits (Runtime.Machine.mem machine)

let urw_bits ~n ~ops =
  let machine = run_writes ~mk:(fun () -> Common.mk_urw ~n ()) ~n ~ops in
  Mem.max_shared_bits (Runtime.Machine.mem machine)

let table () =
  let n = 3 in
  let t =
    Table.create
      ~title:"E4: read/write footprint vs operations (N = 3, bits)"
      [ "writes/proc"; "drw (Alg.1, bounded)"; "urw (unbounded tags)" ]
  in
  List.iter
    (fun ops ->
      Table.add_row t
        [
          string_of_int ops;
          string_of_int (drw_bits ~n ~ops);
          string_of_int (urw_bits ~n ~ops);
        ])
    [ 1; 10; 100; 1000; 10_000; 100_000 ];
  t
