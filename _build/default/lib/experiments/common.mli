open Nvm
open History
open Sched

(** Shared plumbing for the experiment harness. *)

val i : int -> Value.t

val mk_drw : ?n:int -> unit -> Runtime.Machine.t * Obj_inst.t
val mk_dcas : ?n:int -> unit -> Runtime.Machine.t * Obj_inst.t
val mk_dmax : ?n:int -> unit -> Runtime.Machine.t * Obj_inst.t
val mk_dcounter : ?n:int -> unit -> Runtime.Machine.t * Obj_inst.t
val mk_dfaa : ?n:int -> unit -> Runtime.Machine.t * Obj_inst.t
val mk_dqueue : ?n:int -> ?capacity:int -> unit -> Runtime.Machine.t * Obj_inst.t
val mk_urw : ?n:int -> unit -> Runtime.Machine.t * Obj_inst.t
val mk_ucas : ?n:int -> unit -> Runtime.Machine.t * Obj_inst.t

val torture_count :
  ?policy:Session.policy ->
  ?keep_prob:float ->
  ?crash_prob:float ->
  ?max_crashes:int ->
  trials:int ->
  mk:(unit -> Runtime.Machine.t * Obj_inst.t) ->
  workloads_of_seed:(int -> Spec.op list array) ->
  unit ->
  int * int
(** [(violations, crashes_injected)] over the given number of seeded
    random runs with random crash injection. *)

val run_steps :
  mk:(unit -> Runtime.Machine.t * Obj_inst.t) ->
  workloads:Spec.op list array ->
  seed:int ->
  Driver.result
(** One random-schedule run with light crash injection (for step
    accounting of operations and recoveries). *)
