open Dtc_util

(** Experiment E1 — Figure 1 / Theorem 1.

    Theorem 1: any obstruction-free detectable CAS over a domain of size
    ≥ N reaches at least 2^(N−1) pairwise non-memory-equivalent
    configurations.  The proof's induction (Figure 1) branches, per
    process, on whether its CAS's modifying step happened before the next
    process observes — yielding one distinct configuration per subset of
    processes.

    This experiment materialises exactly that configuration family on
    Algorithm 2: for every subset S of the N processes, the processes in
    S each complete one successful CAS sequentially; the final shared
    memories are pairwise distinct (the flip vector equals the
    characteristic vector of S), so Algorithm 2 realises 2^N ≥ 2^(N−1)
    reachable configurations — matching the lower bound and showing its
    Θ(N) bits are genuinely used.  For small N the bounded model checker
    cross-checks reachability over true interleavings. *)

val subset_configs : n:int -> int
(** Distinct (non-memory-equivalent) configurations reached by driving
    every subset of processes through one successful CAS each. *)

val exhaustive_configs : n:int -> int
(** Distinct configurations seen by delay-bounded exploration of an
    N-process one-CAS-each workload (with crashes). *)

val table : unit -> Table.t
(** Rows: N, subset-driven configs, 2^(N−1) lower bound, exhaustive
    small-N cross-check. *)
