open Dtc_util
open History

let table () =
  let t =
    Table.create
      ~title:"E7 (Lemmas 3-8): doubly-perturbing witnesses, verified mechanically"
      [ "object"; "lemma"; "witness"; "verdict" ]
  in
  let lemma_of = function
    | "register" -> "Lemma 3"
    | "counter" -> "Lemma 5"
    | "bounded_counter" -> "Lemma 5 (remark)"
    | "cas" -> "Lemma 6"
    | "faa" -> "Lemma 7"
    | "queue" -> "Lemma 8"
    | "swap" -> "Sec.5 remark"
    | "tas" -> "Sec.5 class"
    | _ -> "-"
  in
  List.iter
    (fun (e : Perturb.Witnesses.entry) ->
      let verdict =
        match Perturb.Perturbing.verify_witness e.spec e.witness with
        | Ok () -> "doubly-perturbing"
        | Error m -> "REJECTED: " ^ m
      in
      Table.add_row t
        [
          e.obj_name;
          lemma_of e.obj_name;
          Format.asprintf "%a" Perturb.Perturbing.pp_witness e.witness;
          verdict;
        ])
    Perturb.Witnesses.all;
  let alphabet = [ Spec.read_op; Spec.write_max_op 1; Spec.write_max_op 2 ] in
  let none =
    Perturb.Witnesses.max_register_has_no_witness ~alphabet ~max_h1:2 ~max_ext:2
  in
  Table.add_row t
    [
      "max_register";
      "Lemma 4";
      "(bounded-exhaustive search, |H1| <= 2, |ext| <= 2)";
      (if none then "no witness: NOT doubly-perturbing" else "WITNESS FOUND");
    ];
  t
