open Dtc_util
open History

type row = {
  label : string;
  mk : unit -> Runtime.Machine.t * Sched.Obj_inst.t;
  workloads : Spec.op list array;
  expect_violation : bool;
}

let rows () =
  let reg_attack = Perturb.Witnesses.register.Perturb.Witnesses.attack in
  let cas_attack = Perturb.Witnesses.cas.Perturb.Witnesses.attack in
  let max_attack =
    [|
      [ Spec.write_max_op 1 ];
      [ Spec.read_op; Spec.write_max_op 2; Spec.read_op ];
    |]
  in
  [
    {
      label = "register, no aux state, recovery=fail";
      mk =
        (fun () ->
          let m = Runtime.Machine.create () in
          (m, Baselines.Broken.rw_no_aux_refail m ~n:2 ~init:(Common.i 0)));
      workloads = reg_attack;
      expect_violation = true;
    };
    {
      label = "register, no aux state, recovery=re-execute";
      mk =
        (fun () ->
          let m = Runtime.Machine.create () in
          (m, Baselines.Broken.rw_no_aux_reexec m ~n:2 ~init:(Common.i 0)));
      workloads = reg_attack;
      expect_violation = true;
    };
    {
      label = "register, Algorithm 1 (aux via Ann)";
      mk = (fun () -> Common.mk_drw ~n:2 ());
      workloads = reg_attack;
      expect_violation = false;
    };
    {
      label = "register, unbounded tags (aux via Ann)";
      mk = (fun () -> Common.mk_urw ~n:2 ());
      workloads = reg_attack;
      expect_violation = false;
    };
    {
      label = "cas, Algorithm 2 (aux via Ann)";
      mk = (fun () -> Common.mk_dcas ~n:2 ());
      workloads = cas_attack;
      expect_violation = false;
    };
    {
      label = "max register, Algorithm 3 (NO aux state)";
      mk = (fun () -> Common.mk_dmax ~n:2 ());
      workloads = max_attack;
      expect_violation = false;
    };
  ]

let run_row r =
  let reports =
    Perturb.Adversary.attack ~mk:r.mk ~workloads:r.workloads ~switch_budget:2 ()
  in
  not (Perturb.Adversary.survives reports)

let table () =
  let t =
    Table.create
      ~title:"E3 (Fig.2/Thm.2): the auxiliary-state adversary"
      [ "implementation"; "theory predicts"; "adversary found"; "as predicted" ]
  in
  List.iter
    (fun r ->
      let violated = run_row r in
      Table.add_row t
        [
          r.label;
          (if r.expect_violation then "violation" else "clean");
          (if violated then "violation" else "clean");
          (if violated = r.expect_violation then "yes" else "NO");
        ])
    (rows ());
  t

let all_as_predicted () =
  List.for_all (fun r -> run_row r = r.expect_violation) (rows ())
