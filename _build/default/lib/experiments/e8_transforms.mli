open Dtc_util

(** Experiment E8 — Section 6 transformations.

    (a) NRL: wrapping a DL+detectable implementation so that recovery
    re-invokes instead of answering [fail] yields nesting-safe
    recoverable linearizability — measured as "no [Rec_fail] event ever
    appears and all histories check out".

    (b) Shared-cache model: after the syntactic persist transformation,
    Algorithms 1-3 (and the queue) survive crashes that lose arbitrary
    subsets of unpersisted cache lines; the untransformed Algorithm 1 run
    in the same model does not. *)

val table_nrl : ?trials:int -> unit -> Table.t
val table_shared_cache : ?trials:int -> unit -> Table.t
