open Dtc_util
open Nvm
open History
open Sched

let cas_workloads ~n ~ops =
  Array.init n (fun p ->
      List.init ops (fun k ->
          if k mod 2 = 0 then Spec.cas_op (Common.i 0) (Common.i (p + 1))
          else Spec.cas_op (Common.i (p + 1)) (Common.i 0)))

(* Extra bits = high-water footprint of Algorithm 2's variable [C] minus
   that of a plain CAS cell driven through the identical workload (same
   schedule, same values): what remains is exactly the space the
   detectability mechanism costs. *)
let dcas_extra_bits ~n ~ops =
  let run_dcas () =
    let machine = Runtime.Machine.create () in
    let dcas = Detectable.Dcas.create machine ~n ~init:(Common.i 0) in
    let inst = Detectable.Dcas.instance dcas in
    let cfg = { Driver.default_config with max_steps = 10_000_000 } in
    ignore (Driver.run machine inst ~workloads:(cas_workloads ~n ~ops) cfg);
    let c =
      match Detectable.Dcas.shared_locs dcas with [ c ] -> c | _ -> assert false
    in
    Mem.max_bits_of (Runtime.Machine.mem machine) c
  in
  let run_plain () =
    let machine = Runtime.Machine.create () in
    let inst = Baselines.Plain.cas_cell machine ~init:(Common.i 0) in
    let cfg = { Driver.default_config with max_steps = 10_000_000 } in
    ignore (Driver.run machine inst ~workloads:(cas_workloads ~n ~ops) cfg);
    Mem.max_shared_bits (Runtime.Machine.mem machine)
  in
  run_dcas () - run_plain ()

let ucas_bits ~n ~ops =
  let machine = Runtime.Machine.create () in
  let ucas = Baselines.Ucas.create machine ~n ~init:(Common.i 0) in
  let inst = Baselines.Ucas.instance ucas in
  let workloads =
    Array.init n (fun _ ->
        List.concat
          (List.init ops (fun _ ->
               [ Spec.cas_op (Common.i 0) (Common.i 1); Spec.cas_op (Common.i 1) (Common.i 0) ])))
  in
  let cfg = { Driver.default_config with max_steps = 10_000_000 } in
  ignore (Driver.run machine inst ~workloads cfg);
  Mem.max_shared_bits (Runtime.Machine.mem machine)

let table_bounded () =
  let t =
    Table.create
      ~title:"E2a (Thm.1): Algorithm 2 shared bits beyond the value, vs the lower bound"
      [
        "N";
        "measured extra bits (vs plain cell)";
        "flip vector bits (construction)";
        "lower bound N-1";
      ]
  in
  List.iter
    (fun n ->
      Table.add_row t
        [
          string_of_int n;
          string_of_int (dcas_extra_bits ~n ~ops:8);
          string_of_int n;
          string_of_int (n - 1);
        ])
    [ 2; 4; 8; 16; 24; 32 ];
  t

let table_unbounded () =
  let t =
    Table.create
      ~title:"E2b: footprint growth with operation count (N = 2)"
      [ "total CAS ops"; "dcas extra bits (flat)"; "ucas shared bits (grows)" ]
  in
  List.iter
    (fun ops ->
      Table.add_row t
        [
          string_of_int (4 * ops);
          string_of_int (dcas_extra_bits ~n:2 ~ops);
          string_of_int (ucas_bits ~n:2 ~ops);
        ])
    [ 4; 16; 64; 256; 1024 ];
  t
