open Dtc_util
open History
open Sched

type subject = {
  label : string;
  mk : unit -> Runtime.Machine.t * Obj_inst.t;
  workloads : int -> Spec.op list array;  (* seed -> workloads *)
  bound : string * string;  (* human-readable op / recovery bounds *)
  n : int;
}

let subjects =
  let n = 5 in
  [
    {
      label = "drw (Alg.1)";
      mk = (fun () -> Common.mk_drw ~n ());
      workloads =
        (fun seed ->
          Workload.register (Dtc_util.Prng.create seed) ~procs:n
            ~ops_per_proc:5 ~values:3);
      bound = ("write <= N+15 incl. protocol (wait-free)", "recover <= N+9 (wait-free)");
      n;
    };
    {
      label = "dcas (Alg.2)";
      mk = (fun () -> Common.mk_dcas ~n ());
      workloads =
        (fun seed ->
          Workload.cas (Dtc_util.Prng.create seed) ~procs:n ~ops_per_proc:5
            ~values:3);
      bound = ("cas: O(1) (wait-free)", "recover: O(1) (wait-free)");
      n;
    };
    {
      label = "dmax (Alg.3)";
      mk = (fun () -> Common.mk_dmax ~n ());
      workloads =
        (fun seed ->
          Workload.max_register (Dtc_util.Prng.create seed) ~procs:n
            ~ops_per_proc:5 ~values:6);
      bound = ("write-max: O(1); read: O(N) solo (obstr.-free)", "re-invoke");
      n;
    };
    {
      label = "dfaa (capsule)";
      mk = (fun () -> Common.mk_dfaa ~n ());
      workloads =
        (fun seed ->
          Workload.faa (Dtc_util.Prng.create seed) ~procs:n ~ops_per_proc:5
            ~max_delta:3);
      bound = ("faa: lock-free (O(1) solo)", "recover: O(1)");
      n;
    };
    {
      label = "dqueue";
      mk = (fun () -> Common.mk_dqueue ~n ~capacity:128 ());
      workloads =
        (fun seed ->
          Workload.queue (Dtc_util.Prng.create seed) ~procs:n ~ops_per_proc:5
            ~values:4);
      bound = ("enq/deq: lock-free (O(1) solo)", "recover: O(1)");
      n;
    };
  ]

let table () =
  let t =
    Table.create
      ~title:"E5 (Lemmas 1-2): max own-steps per operation over adversarial schedules (N = 5, 20 seeds)"
      [ "object"; "operation"; "max steps observed"; "analytic bound" ]
  in
  List.iter
    (fun s ->
      let acc : (string, int) Hashtbl.t = Hashtbl.create 8 in
      let racc : (string, int) Hashtbl.t = Hashtbl.create 8 in
      for seed = 1 to 20 do
        let res =
          Common.run_steps ~mk:s.mk ~workloads:(s.workloads seed) ~seed
        in
        List.iter
          (fun (name, steps) ->
            match Hashtbl.find_opt acc name with
            | Some m when m >= steps -> ()
            | _ -> Hashtbl.replace acc name steps)
          res.Driver.op_steps;
        List.iter
          (fun (name, steps) ->
            match Hashtbl.find_opt racc name with
            | Some m when m >= steps -> ()
            | _ -> Hashtbl.replace racc name steps)
          res.Driver.rec_steps
      done;
      let op_bound, rec_bound = s.bound in
      Hashtbl.iter
        (fun name steps ->
          if name <> "idle" then
            Table.add_row t [ s.label; name; string_of_int steps; op_bound ])
        acc;
      Hashtbl.iter
        (fun name steps ->
          if name <> "idle" then
            Table.add_row t
              [ s.label; name ^ ".recover"; string_of_int steps; rec_bound ])
        racc)
    subjects;
  t
