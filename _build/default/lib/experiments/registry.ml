open Dtc_util

type entry = {
  id : string;
  paper_artefact : string;
  descr : string;
  tables : unit -> Table.t list;
}

let all =
  [
    {
      id = "E1";
      paper_artefact = "Figure 1 / Theorem 1";
      descr =
        "reachable non-memory-equivalent configurations of Algorithm 2 vs \
         the 2^(N-1) lower bound";
      tables = (fun () -> [ E1_configs.table () ]);
    };
    {
      id = "E2";
      paper_artefact = "Theorem 1 + Algorithm 2";
      descr =
        "Θ(N) shared bits of detectable CAS vs the N-1 lower bound, and \
         footprint growth of the unbounded-tag baseline";
      tables =
        (fun () -> [ E2_space_cas.table_bounded (); E2_space_cas.table_unbounded () ]);
    };
    {
      id = "E3";
      paper_artefact = "Figure 2 / Theorem 2";
      descr =
        "the auxiliary-state adversary: no-aux ablations must violate, \
         announced algorithms and the max register must survive";
      tables = (fun () -> [ E3_aux_state.table () ]);
    };
    {
      id = "E4";
      paper_artefact = "Algorithm 1 vs Attiya et al.";
      descr = "bounded vs unbounded read/write footprint as operations accumulate";
      tables = (fun () -> [ E4_space_rw.table () ]);
    };
    {
      id = "E5";
      paper_artefact = "Lemmas 1-2 (wait-freedom)";
      descr = "maximum own-steps per operation and recovery over adversarial schedules";
      tables = (fun () -> [ E5_steps.table () ]);
    };
    {
      id = "E6";
      paper_artefact = "Lemmas 1-2 (correctness)";
      descr =
        "crash-torture statistics: zero violations for the paper's \
         algorithms, nonzero for the calibration ablations";
      tables = (fun () -> [ E6_torture.table () ]);
    };
    {
      id = "E7";
      paper_artefact = "Lemmas 3-8";
      descr = "mechanical verification of the doubly-perturbing witnesses";
      tables = (fun () -> [ E7_perturb.table () ]);
    };
    {
      id = "E8";
      paper_artefact = "Section 6 transformations";
      descr = "the NRL wrapper and the shared-cache persist transformation";
      tables =
        (fun () -> [ E8_transforms.table_nrl (); E8_transforms.table_shared_cache () ]);
    };
    {
      id = "E9";
      paper_artefact = "Section 6 (detectability vs durable-only)";
      descr =
        "the application-level price of durable-only recovery: duplicated \
         and unresolved operations under crash-retry, vs zero for the \
         detectable implementations";
      tables = (fun () -> [ E9_detectability_value.table () ]);
    };
    {
      id = "E10";
      paper_artefact = "Discussion (open problems)";
      descr =
        "the empirical time/space landscape across every implementation: \
         shared bits vs operation steps vs recovery steps";
      tables = (fun () -> [ E10_tradeoff.table () ]);
    };
  ]

let find id =
  let id = String.uppercase_ascii id in
  List.find_opt (fun e -> String.uppercase_ascii e.id = id) all

let run_one e =
  Printf.printf "---- %s — %s ----\n%s\n\n%!" e.id e.paper_artefact e.descr;
  List.iter Table.print (e.tables ())

let run_all () = List.iter run_one all
