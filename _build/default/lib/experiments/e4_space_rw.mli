open Dtc_util

(** Experiment E4 — bounded-space detectable read/write.

    Algorithm 1's shared footprint is fixed at allocation time: the
    register [R] carries O(log N) bits beyond the value and the toggle
    array [A] carries 2N² bits, independent of how many operations run.
    The unbounded baseline (after Attiya et al.) tags every write with a
    fresh sequence number, so its register grows with the operation
    count.  Measured with the simulator's exact bit accounting. *)

val drw_bits : n:int -> ops:int -> int
(** High-water shared footprint (bits) of Algorithm 1 after [ops] writes
    per process. *)

val urw_bits : n:int -> ops:int -> int
(** Same for the unbounded-tag baseline. *)

val table : unit -> Table.t
