open Dtc_util

(** Experiment E3 — Figure 2 / Theorem 2: detectable implementations of
    doubly-perturbing objects need auxiliary state.

    The Theorem 2 adversary (witness-derived workloads, every crash point,
    delay-bounded interleavings, both recovery policies) is launched
    against:

    - the no-auxiliary-state read/write ablations (both possible recovery
      strategies) — a violation {e must} be found;
    - Algorithms 1 and 2 and the unbounded baselines, which receive
      auxiliary state through announcements — no violation;
    - the max register (Algorithm 3), which needs no auxiliary state
      because it is not doubly-perturbing (Lemma 4) — no violation.

    The expected column states what the theory predicts; the verdict
    column is what the adversary measured. *)

val table : unit -> Table.t

val all_as_predicted : unit -> bool
(** True iff every row's verdict matches the theory's prediction. *)
