open Dtc_util

(** The experiment registry: every reproduced figure/table of the paper,
    addressable by id.  `bench/main.exe` prints all of them;
    `bin/detect_cli.exe exp <id>` prints one. *)

type entry = {
  id : string;  (** e.g. "E1" *)
  paper_artefact : string;  (** which figure/theorem/claim it regenerates *)
  descr : string;
  tables : unit -> Table.t list;
}

val all : entry list

val find : string -> entry option
(** Case-insensitive lookup by id. *)

val run_one : entry -> unit
(** Print the entry's header and tables to stdout. *)

val run_all : unit -> unit
